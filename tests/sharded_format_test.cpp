// Property/fuzz tests for the sharded container format: every corruption of
// the magic, the shard index, the CRCs or the payload must surface as the
// *correct* typed DecodeError naming the right shard -- and never as a
// wrong-but-passing decode. This extends the PR-1 corrupt-then-decode
// trichotomy sweep (clean / detected / provably-masked) to the sharded
// path, where the per-shard CRC upgrades "provably masked" to "detected"
// for every value-changing corruption.
#include "codec/sharded.h"

#include <gtest/gtest.h>

#include <random>

#include "codec/nine_coded.h"

namespace nc::codec {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

TestSet random_cubes(std::uint64_t seed, std::size_t patterns,
                     std::size_t width, double x_density) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  TestSet ts(patterns, width);
  for (std::size_t p = 0; p < patterns; ++p)
    for (std::size_t c = 0; c < width; ++c) {
      if (uni(rng) < x_density) continue;
      ts.set(p, c, bits::trit_from_bit(rng() & 1u));
    }
  return ts;
}

struct Fixture {
  NineCoded coder{8};
  TestSet td = random_cubes(11, 24, 64, 0.55);
  TritVector container = encode_sharded(coder, td, /*shards=*/6, /*jobs=*/2);
  ShardedHeader header = parse_sharded_header(container);
  TestSet clean = decode_sharded(coder, container, 2);
};

DecodeError expect_decode_error(const NineCoded& coder,
                                const TritVector& container) {
  try {
    (void)decode_sharded(coder, container, 2);
  } catch (const DecodeError& e) {
    return e;
  }
  ADD_FAILURE() << "decode of corrupted container succeeded";
  return DecodeError(DecodeFault::kTruncated, 0);
}

TEST(ShardedFormat, HeaderRoundTrips) {
  Fixture fx;
  EXPECT_TRUE(is_sharded(fx.container));
  EXPECT_EQ(fx.header.shard_count, 6u);
  EXPECT_EQ(fx.header.pattern_count, 24u);
  EXPECT_EQ(fx.header.pattern_width, 64u);
  ASSERT_EQ(fx.header.shards.size(), 6u);
  std::size_t offset = 0, patterns = 0;
  for (const ShardRecord& rec : fx.header.shards) {
    EXPECT_EQ(rec.payload_offset, offset);
    offset += rec.payload_length;
    patterns += rec.pattern_count;
    EXPECT_EQ(rec.crc,
              shard_crc(fx.container,
                        fx.header.header_symbols + rec.payload_offset,
                        rec.payload_length));
  }
  EXPECT_EQ(patterns, 24u);
  EXPECT_EQ(fx.header.header_symbols + offset, fx.container.size());
}

TEST(ShardedFormat, PlainStreamIsNotAContainer) {
  Fixture fx;
  const TritVector te = fx.coder.encode(fx.td.flatten());
  EXPECT_FALSE(is_sharded(te));
  // decode_sharded on a non-container must raise the typed magic error.
  const DecodeError e = expect_decode_error(fx.coder, te);
  EXPECT_EQ(e.fault(), DecodeFault::kBadMagic);
}

TEST(ShardedFormat, CorruptedMagicAndVersionRaiseBadMagic) {
  Fixture fx;
  for (std::size_t pos : {std::size_t{0}, std::size_t{7}, std::size_t{15}}) {
    TritVector bad = fx.container;
    bad.set(pos, bad.get(pos) == Trit::One ? Trit::Zero : Trit::One);
    EXPECT_EQ(expect_decode_error(fx.coder, bad).fault(),
              DecodeFault::kBadMagic) << "flip at " << pos;
    bad.set(pos, Trit::X);  // an X inside the magic region
    EXPECT_EQ(expect_decode_error(fx.coder, bad).fault(),
              DecodeFault::kBadMagic) << "X at " << pos;
  }
  TritVector bad_version = fx.container;
  bad_version.set(23, bad_version.get(23) == Trit::One ? Trit::Zero
                                                       : Trit::One);
  EXPECT_EQ(expect_decode_error(fx.coder, bad_version).fault(),
            DecodeFault::kBadMagic);
}

TEST(ShardedFormat, EveryTruncationRaisesTruncated) {
  Fixture fx;
  std::mt19937_64 rng(3);
  // Sample cut points across all regions (header, index, every shard) plus
  // the exact region boundaries.
  std::vector<std::size_t> cuts = {0, 1, 15, 16, 183,
                                   fx.header.header_symbols - 1,
                                   fx.header.header_symbols,
                                   fx.container.size() - 1};
  for (int i = 0; i < 40; ++i) cuts.push_back(rng() % fx.container.size());
  for (const std::size_t cut : cuts) {
    const TritVector truncated = fx.container.slice(0, cut);
    const DecodeError e = expect_decode_error(fx.coder, truncated);
    EXPECT_EQ(e.fault(), DecodeFault::kTruncated) << "cut at " << cut;
  }
}

TEST(ShardedFormat, TrailingSymbolsRaiseTrailingData) {
  Fixture fx;
  TritVector fat = fx.container;
  fat.push_back(Trit::Zero);
  const DecodeError e = expect_decode_error(fx.coder, fat);
  EXPECT_EQ(e.fault(), DecodeFault::kTrailingData);
  EXPECT_EQ(e.stream_offset(), fx.container.size());
}

TEST(ShardedFormat, ShardIndexCorruptionRaisesBadShardIndexWithShardId) {
  Fixture fx;
  const std::size_t records_start = 184;  // fixed header fields
  for (std::size_t shard = 0; shard < fx.header.shard_count; ++shard) {
    // Flip a bit inside shard `shard`'s offset field. Shard 0's offset must
    // be 0, so any flip is inconsistent at record 0; later offsets must
    // match the running sum.
    const std::size_t pos = records_start + shard * 96 + 20;
    TritVector bad = fx.container;
    bad.set(pos, bad.get(pos) == Trit::One ? Trit::Zero : Trit::One);
    const DecodeError e = expect_decode_error(fx.coder, bad);
    EXPECT_EQ(e.fault(), DecodeFault::kBadShardIndex) << "shard " << shard;
    EXPECT_EQ(e.shard(), shard) << "shard " << shard;

    // An X anywhere in the index region is kBadShardIndex too.
    TritVector with_x = fx.container;
    with_x.set(pos, Trit::X);
    EXPECT_EQ(expect_decode_error(fx.coder, with_x).fault(),
              DecodeFault::kBadShardIndex);
  }
}

TEST(ShardedFormat, CrcFieldFlipRaisesShardCrcNamingTheShard) {
  Fixture fx;
  const std::size_t records_start = 184;
  for (std::size_t shard = 0; shard < fx.header.shard_count; ++shard) {
    const std::size_t pos = records_start + shard * 96 + 64 + 5;  // CRC field
    TritVector bad = fx.container;
    bad.set(pos, bad.get(pos) == Trit::One ? Trit::Zero : Trit::One);
    const DecodeError e = expect_decode_error(fx.coder, bad);
    EXPECT_EQ(e.fault(), DecodeFault::kShardCrc) << "shard " << shard;
    EXPECT_EQ(e.shard(), shard) << "shard " << shard;
  }
}

TEST(ShardedFormat, PayloadCorruptionRaisesShardCrcNamingTheShard) {
  Fixture fx;
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    // Pick a shard, corrupt one of its payload symbols to a *different*
    // symbol value (0 -> 1, 1 -> X, X -> 0: every substitution class).
    const std::size_t shard = rng() % fx.header.shard_count;
    const ShardRecord& rec = fx.header.shards[shard];
    if (rec.payload_length == 0) continue;
    const std::size_t pos = fx.header.header_symbols + rec.payload_offset +
                            rng() % rec.payload_length;
    TritVector bad = fx.container;
    switch (bad.get(pos)) {
      case Trit::Zero: bad.set(pos, Trit::One); break;
      case Trit::One: bad.set(pos, Trit::X); break;
      case Trit::X: bad.set(pos, Trit::Zero); break;
    }
    const DecodeError e = expect_decode_error(fx.coder, bad);
    EXPECT_EQ(e.fault(), DecodeFault::kShardCrc) << "pos " << pos;
    EXPECT_EQ(e.shard(), shard) << "pos " << pos;
    EXPECT_EQ(e.stream_offset(),
              fx.header.header_symbols + rec.payload_offset)
        << "pos " << pos;
  }
}

TEST(ShardedFormat, TrichotomySweepNeverReturnsWrongData) {
  // The PR-1 trichotomy, sharpened by the CRC: a randomly corrupted
  // container either (a) raises a typed DecodeError, or (b) decodes to
  // exactly the clean result (the corruption was value-preserving). A
  // wrong-but-passing decode is the one forbidden outcome.
  Fixture fx;
  std::mt19937_64 rng(29);
  int detected = 0, clean = 0;
  for (int trial = 0; trial < 150; ++trial) {
    TritVector bad = fx.container;
    const int edits = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < edits; ++i) {
      const std::size_t pos = rng() % bad.size();
      bad.set(pos, static_cast<Trit>(rng() % 3));  // may be value-preserving
    }
    try {
      const TestSet out = decode_sharded(fx.coder, bad, 2);
      ASSERT_TRUE(out == fx.clean) << "wrong-but-passing decode, trial "
                                   << trial;
      ++clean;
    } catch (const DecodeError&) {
      ++detected;
    }
  }
  // Sanity: the sweep actually exercised both arms.
  EXPECT_GT(detected, 0);
  EXPECT_GT(clean + detected, 100);
}

TEST(ShardedFormat, DecodeErrorOffsetsAreContainerAbsolute) {
  // Corrupt a payload symbol *and* fix up the CRC so the shard parses; the
  // 9C-level error (if any) must then report a container-absolute offset
  // inside that shard's window. Easiest reliable case: truncate the last
  // shard's payload but keep the index claiming full length -> kTruncated
  // with offset at the container end.
  Fixture fx;
  const TritVector cut = fx.container.slice(0, fx.container.size() - 3);
  const DecodeError e = expect_decode_error(fx.coder, cut);
  EXPECT_EQ(e.fault(), DecodeFault::kTruncated);
  EXPECT_EQ(e.stream_offset(), cut.size());
}

TEST(ShardedFormat, WrongDecoderGeometryIsTyped) {
  // Decoding with a different K parses the container but mis-parses every
  // shard payload; the 9C layer must flag it as a typed error, never
  // return silently wrong data of the right shape.
  Fixture fx;
  const NineCoded wrong_k(16);
  EXPECT_THROW((void)decode_sharded(wrong_k, fx.container, 2), DecodeError);
}

TEST(ShardedFormat, CrcIsPositionSensitive) {
  // Swapping two different symbols keeps the multiset of values but must
  // change the CRC (a pure checksum would miss it).
  TritVector v = TritVector::from_string("0110X01X");
  const std::uint32_t before = shard_crc(v, 0, v.size());
  v.set(0, Trit::One);
  v.set(1, Trit::Zero);
  EXPECT_NE(shard_crc(v, 0, v.size()), before);
}

}  // namespace
}  // namespace nc::codec
