#include "decomp/single_scan.h"

#include <gtest/gtest.h>

#include "codec/nine_coded.h"
#include "decomp/timing.h"
#include "gen/cube_gen.h"

namespace nc::decomp {
namespace {

using bits::TritVector;
using codec::NineCoded;
using codec::NineCodedStats;

TEST(SingleScanDecoder, RejectsBadParameters) {
  EXPECT_THROW(SingleScanDecoder(7, 8), std::invalid_argument);
  EXPECT_THROW(SingleScanDecoder(8, 0), std::invalid_argument);
}

TEST(SingleScanDecoder, ReproducesSoftwareDecoder) {
  const NineCoded coder(8);
  const TritVector td = TritVector::from_string(
      "00000000" "11111111" "0X0001X0" "01XX10X1" "0000XXXX");
  const TritVector te = coder.encode(td);
  const SingleScanDecoder decoder(8, 4);
  const DecoderTrace trace = decoder.run(te, td.size());
  EXPECT_EQ(trace.scan_stream, coder.decode(te, td.size()));
  EXPECT_TRUE(td.covered_by(trace.scan_stream));
}

TEST(SingleScanDecoder, CountsCodewords) {
  const NineCoded coder(8);
  const TritVector td = TritVector::from_string("00000000" "11111111");
  const SingleScanDecoder decoder(8, 1);
  EXPECT_EQ(decoder.run(coder.encode(td), td.size()).codewords, 2u);
}

TEST(SingleScanDecoder, UniformBlockTiming) {
  // One C1 block, p=4: 1 codeword bit (4 SoC cycles) + 8 fill bits (8).
  const NineCoded coder(8);
  const TritVector td = TritVector::from_string("00000000");
  const SingleScanDecoder decoder(8, 4);
  const DecoderTrace trace = decoder.run(coder.encode(td), td.size());
  EXPECT_EQ(trace.ate_cycles, 1u);
  EXPECT_EQ(trace.soc_cycles, 1u * 4 + 8u);
}

TEST(SingleScanDecoder, MismatchBlockTiming) {
  // C9 block, p=4: 4 codeword bits + 8 payload bits, all at ATE rate.
  const NineCoded coder(8);
  const TritVector td = TritVector::from_string("01100110");
  const SingleScanDecoder decoder(8, 4);
  const DecoderTrace trace = decoder.run(coder.encode(td), td.size());
  EXPECT_EQ(trace.ate_cycles, 12u);
  EXPECT_EQ(trace.soc_cycles, 12u * 4);
}

TEST(SingleScanDecoder, MixedBlockTiming) {
  // C5 block, p=2: 5 codeword bits + 4 payload at ATE rate, 4 fill at SoC.
  const NineCoded coder(8);
  const TritVector td = TritVector::from_string("000001X0");
  const SingleScanDecoder decoder(8, 2);
  const DecoderTrace trace = decoder.run(coder.encode(td), td.size());
  EXPECT_EQ(trace.ate_cycles, 9u);
  EXPECT_EQ(trace.soc_cycles, 9u * 2 + 4u);
}

class TimingSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TimingSweep, SimulatorMatchesAnalyticModel) {
  const auto [k, p] = GetParam();
  gen::CubeGenConfig cfg;
  cfg.patterns = 24;
  cfg.width = 173;
  cfg.x_fraction = 0.8;
  cfg.seed = static_cast<std::uint64_t>(k * 10 + p);
  const TritVector td = gen::generate_cubes(cfg).flatten();

  const NineCoded coder(static_cast<std::size_t>(k));
  TritVector te;
  const NineCodedStats stats = coder.analyze(td, &te);

  const SingleScanDecoder decoder(static_cast<std::size_t>(k),
                                  static_cast<unsigned>(p));
  const DecoderTrace trace = decoder.run(te, td.size());

  EXPECT_EQ(trace.soc_cycles,
            comp_soc_cycles(stats, coder.table(), static_cast<unsigned>(p)));
  EXPECT_EQ(trace.ate_cycles, te.size());
  EXPECT_TRUE(td.covered_by(trace.scan_stream));
}

INSTANTIATE_TEST_SUITE_P(
    KAndP, TimingSweep,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(1, 2, 8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "K" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Timing, TatApproachesCompressionRatioAsPGrows) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 30;
  cfg.width = 400;
  cfg.x_fraction = 0.9;
  cfg.seed = 7;
  const TritVector td = gen::generate_cubes(cfg).flatten();
  const NineCoded coder(8);
  const NineCodedStats stats = coder.analyze(td);
  const double cr = stats.compression_ratio();
  double prev = -1e9;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 64u, 1024u}) {
    const double tat = tat_percent(stats, coder.table(), p);
    EXPECT_LT(tat, cr);          // TAT is bounded above by CR
    EXPECT_GE(tat, prev - 1e-9); // and approaches it monotonically
    prev = tat;
  }
  EXPECT_NEAR(tat_percent(stats, coder.table(), 1u << 20), cr, 0.1);
}

TEST(Timing, NocompCycles) {
  EXPECT_EQ(nocomp_soc_cycles(1000, 8), 8000u);
}

TEST(Timing, EmptyStats) {
  codec::NineCodedStats stats;
  stats.block_size = 8;
  EXPECT_EQ(comp_soc_cycles(stats, codec::CodewordTable::standard(), 4), 0u);
  EXPECT_DOUBLE_EQ(tat_percent(stats, codec::CodewordTable::standard(), 4),
                   0.0);
}

}  // namespace
}  // namespace nc::decomp
