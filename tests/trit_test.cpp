#include "bits/trit.h"

#include <gtest/gtest.h>

namespace nc::bits {
namespace {

TEST(Trit, IsCare) {
  EXPECT_TRUE(is_care(Trit::Zero));
  EXPECT_TRUE(is_care(Trit::One));
  EXPECT_FALSE(is_care(Trit::X));
}

TEST(Trit, CompatibleWithBit) {
  EXPECT_TRUE(compatible_with(Trit::Zero, false));
  EXPECT_FALSE(compatible_with(Trit::Zero, true));
  EXPECT_TRUE(compatible_with(Trit::One, true));
  EXPECT_FALSE(compatible_with(Trit::One, false));
  EXPECT_TRUE(compatible_with(Trit::X, false));
  EXPECT_TRUE(compatible_with(Trit::X, true));
}

TEST(Trit, PairwiseCompatibility) {
  EXPECT_TRUE(compatible(Trit::Zero, Trit::Zero));
  EXPECT_TRUE(compatible(Trit::One, Trit::One));
  EXPECT_FALSE(compatible(Trit::Zero, Trit::One));
  EXPECT_FALSE(compatible(Trit::One, Trit::Zero));
  EXPECT_TRUE(compatible(Trit::X, Trit::Zero));
  EXPECT_TRUE(compatible(Trit::One, Trit::X));
  EXPECT_TRUE(compatible(Trit::X, Trit::X));
}

TEST(Trit, CharRoundTrip) {
  for (Trit t : {Trit::Zero, Trit::One, Trit::X})
    EXPECT_EQ(trit_from_char(to_char(t)), t);
}

TEST(Trit, LowercaseXAccepted) { EXPECT_EQ(trit_from_char('x'), Trit::X); }

TEST(Trit, BadCharacterThrows) {
  EXPECT_THROW(trit_from_char('2'), std::invalid_argument);
  EXPECT_THROW(trit_from_char(' '), std::invalid_argument);
  EXPECT_THROW(trit_from_char('u'), std::invalid_argument);
}

TEST(Trit, FromBit) {
  EXPECT_EQ(trit_from_bit(false), Trit::Zero);
  EXPECT_EQ(trit_from_bit(true), Trit::One);
}

}  // namespace
}  // namespace nc::bits
