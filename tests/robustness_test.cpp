// Adversarial-input robustness: parsers and decoders must fail loudly
// (typed exceptions), never crash or hang, on malformed input.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "bits/serialize.h"
#include "circuit/bench_io.h"
#include "circuit/samples.h"
#include "codec/nine_coded.h"

namespace nc {
namespace {

using bits::Trit;
using bits::TritVector;

TEST(RobustBenchParser, RandomGarbageNeverCrashes) {
  std::mt19937 rng(17);
  const std::string alphabet =
      "ABCXYZabcxyz0123456789 =(),#\n\t_";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t len = rng() % 300;
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[rng() % alphabet.size()];
    try {
      circuit::parse_bench_string(text);
    } catch (const std::runtime_error&) {
      // expected for almost every input
    }
  }
  SUCCEED();
}

TEST(RobustBenchParser, MutatedValidNetlistNeverCrashes) {
  const std::string base = circuit::samples::s27_bench_text();
  std::mt19937 rng(29);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = base;
    // Flip, delete or insert a few characters.
    for (int edits = 0; edits < 3; ++edits) {
      const std::size_t pos = rng() % text.size();
      switch (rng() % 3) {
        case 0: text[pos] = static_cast<char>('!' + rng() % 90); break;
        case 1: text.erase(pos, 1); break;
        default: text.insert(pos, 1, static_cast<char>('!' + rng() % 90));
      }
    }
    try {
      const circuit::Netlist nl = circuit::parse_bench_string(text);
      (void)nl.levelize();
    } catch (const std::exception&) {
    }
  }
  SUCCEED();
}

TEST(RobustNineCoded, BitflippedStreamsFailLoudlyOrDecode) {
  std::mt19937 rng(5);
  const codec::NineCoded coder(8);
  TritVector td;
  for (int i = 0; i < 800; ++i)
    td.push_back(static_cast<Trit>(rng() % 3));
  const TritVector te = coder.encode(td);
  for (int trial = 0; trial < 200; ++trial) {
    TritVector corrupt = te;
    for (int flips = 0; flips < 3; ++flips) {
      const std::size_t pos = rng() % corrupt.size();
      corrupt.set(pos, static_cast<Trit>(rng() % 3));
    }
    try {
      const TritVector d = coder.decode(corrupt, td.size());
      EXPECT_EQ(d.size(), td.size());  // wrong data is fine; wrong size not
    } catch (const std::exception&) {
      // desynchronized stream: loud failure is the contract
    }
  }
}

TEST(RobustNineCoded, TruncatedStreamsThrow) {
  const codec::NineCoded coder(8);
  const TritVector td(256, Trit::Zero);
  const TritVector te = coder.encode(td);
  for (std::size_t cut = 0; cut < te.size(); cut += 3) {
    TritVector shortened = te.slice(0, cut);
    EXPECT_THROW(coder.decode(shortened, td.size()), std::exception)
        << "cut at " << cut;
  }
}

TEST(RobustSerializer, RandomBlobsNeverCrash) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    std::string blob;
    const std::size_t len = rng() % 128;
    for (std::size_t i = 0; i < len; ++i)
      blob += static_cast<char>(rng() & 0xFF);
    std::istringstream in(blob);
    try {
      bits::load_trits(in);
    } catch (const std::runtime_error&) {
    }
    std::istringstream in2(blob);
    try {
      bits::load_test_set(in2);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST(RobustSerializer, ValidHeaderHugeSizeThrowsNotAllocates) {
  // A stream claiming 2^60 trits must fail on payload read, not OOM.
  std::ostringstream out;
  out.write("NCT1", 4);
  out.put(0);
  const std::uint64_t huge = 1ull << 60;
  for (int i = 0; i < 8; ++i)
    out.put(static_cast<char>((huge >> (8 * i)) & 0xFF));
  out.put(0);  // one payload byte only
  std::istringstream in(out.str());
  EXPECT_THROW(bits::load_trits(in), std::exception);
}

TEST(RobustTestSetParser, RaggedAndJunkLines) {
  std::istringstream ragged("0101\n01\n");
  EXPECT_THROW(bits::TestSet::parse(ragged), std::exception);
  std::istringstream junk("0101\n01?1\n");
  EXPECT_THROW(bits::TestSet::parse(junk), std::exception);
}

}  // namespace
}  // namespace nc
