#include "synth/code_synth.h"

#include <gtest/gtest.h>

#include "codec/pattern_codec.h"
#include "synth/fsm_synth.h"

namespace nc::synth {
namespace {

TEST(CodeSynth, StandardTableMatchesHandcraftedStateCount) {
  // The 9-leaf standard trie has 8 internal nodes -> 8 recognition states,
  // plus HalfA/HalfB/Ack = 11 total, exactly the Fig. 2 FSM.
  const auto leaves = leaves_for_table(codec::CodewordTable::standard());
  const CodeSynthResult r = synthesize_code_fsm(leaves, 3);
  EXPECT_EQ(r.recognition_states, 8u);
  EXPECT_EQ(r.total_states, 11u);
  EXPECT_EQ(r.state_bits, 4u);
  EXPECT_EQ(r.plan_bits, 2u);
}

TEST(CodeSynth, StandardTableCostTracksHandcraftedFsm) {
  const auto leaves = leaves_for_table(codec::CodewordTable::standard());
  const CodeSynthResult generic = synthesize_code_fsm(leaves, 3);
  const FsmSynthesisResult handcrafted = synthesize_decoder_fsm();
  // Same machine, so within a small factor (state encodings differ).
  EXPECT_GT(generic.total_gate_equivalents(),
            handcrafted.total_gate_equivalents() / 2);
  EXPECT_LT(generic.total_gate_equivalents(),
            handcrafted.total_gate_equivalents() * 2);
}

TEST(CodeSynth, FrequencyDirectedTableSameSize) {
  // Re-assigned codewords permute the trie but keep its shape: identical
  // state count, similar cost.
  std::array<std::size_t, codec::kNumClasses> counts = {5, 9, 1, 1, 1,
                                                        1, 1, 20, 3};
  const auto table = codec::CodewordTable::frequency_directed(counts);
  const CodeSynthResult r = synthesize_code_fsm(leaves_for_table(table), 3);
  EXPECT_EQ(r.recognition_states, 8u);
  EXPECT_EQ(r.total_states, 11u);
}

TEST(CodeSynth, BiggerCodeCostsMoreGates) {
  // The paper's trade-off: more codewords => a more expensive decoder.
  // Build a 25-leaf balanced-ish code via Huffman over equal frequencies.
  const auto nine = synthesize_code_fsm(
      leaves_for_table(codec::CodewordTable::standard()), 3);

  const bits::HuffmanCode code =
      bits::HuffmanCode::build(std::vector<std::size_t>(25, 1));
  std::vector<CodeLeaf> leaves;
  for (std::size_t c = 0; c < 25; ++c) {
    CodeLeaf leaf;
    leaf.word = codec::Codeword{static_cast<std::uint32_t>(code.code(c)),
                                code.length(c)};
    leaf.plan_a = static_cast<unsigned>(c / 5);
    leaf.plan_b = static_cast<unsigned>(c % 5);
    leaves.push_back(leaf);
  }
  const CodeSynthResult ext = synthesize_code_fsm(leaves, 5);
  EXPECT_EQ(ext.recognition_states, 24u);
  EXPECT_GT(ext.total_gate_equivalents(), nine.total_gate_equivalents());
}

TEST(CodeSynth, RejectsNonPrefixFreeCode) {
  std::vector<CodeLeaf> leaves = {
      {codec::Codeword{0b0, 1}, 0, 0},
      {codec::Codeword{0b01, 2}, 1, 1},  // "0" prefixes "01"
  };
  EXPECT_THROW(synthesize_code_fsm(leaves, 3), std::invalid_argument);
}

TEST(CodeSynth, RejectsDegenerateInputs) {
  EXPECT_THROW(synthesize_code_fsm({}, 3), std::invalid_argument);
  std::vector<CodeLeaf> one = {{codec::Codeword{0, 1}, 0, 0}};
  EXPECT_THROW(synthesize_code_fsm(one, 1), std::invalid_argument);
}

TEST(CodeSynth, LeavesForTableCoverAllNineClasses) {
  const auto leaves = leaves_for_table(codec::CodewordTable::standard());
  ASSERT_EQ(leaves.size(), 9u);
  // C1: both halves fill-0; C9: both data (plan 2).
  EXPECT_EQ(leaves[0].plan_a, 0u);
  EXPECT_EQ(leaves[0].plan_b, 0u);
  EXPECT_EQ(leaves[8].plan_a, 2u);
  EXPECT_EQ(leaves[8].plan_b, 2u);
  // C6: left data, right fill-0.
  EXPECT_EQ(leaves[5].plan_a, 2u);
  EXPECT_EQ(leaves[5].plan_b, 0u);
}

}  // namespace
}  // namespace nc::synth
