// Timing-robustness tests of the serve tier, driven by a VirtualClock so
// every expiry is triggered by the test, not the wall: deadline-expired
// requests are shed with typed kDeadlineExceeded replies and never
// computed after expiry, dribbling and idle peers are disconnected with
// typed reasons, a stalled reply write is bounded, and stop() stays safe
// under concurrent callers.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "bits/test_set.h"
#include "codec/nine_coded.h"
#include "core/cancel.h"
#include "core/clock.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace nc::serve {
namespace {

using std::chrono::milliseconds;

bits::TestSet small_test_set() {
  return bits::TestSet::from_strings({
      "01XX10X0",
      "XX01XX11",
      "1X0X0X0X",
      "0110XXXX",
  });
}

Frame encode_request(std::uint64_t seq, const bits::TestSet& ts,
                     std::uint32_t deadline_ms = 0) {
  Frame f;
  f.type = FrameType::kEncodeRequest;
  f.seq = seq;
  f.deadline_ms = deadline_ms;
  f.payload = to_payload(EncodeRequest{CodecSpec{}, ts});
  return f;
}

/// Spins (bounded) until the server has admitted `n` requests, i.e. their
/// deadlines are computed and they sit in the scheduler queue.
void wait_accepted(Server& server, std::uint64_t n) {
  const auto give_up = std::chrono::steady_clock::now() + milliseconds(2000);
  while (server.metrics_snapshot().requests_accepted < n &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(milliseconds(1));
  ASSERT_GE(server.metrics_snapshot().requests_accepted, n);
}

/// Reads frames until one with `seq` arrives (fails the test otherwise).
Frame await_seq(FrameReader& reader, std::uint64_t seq,
                milliseconds timeout = milliseconds(5000)) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < give_up) {
    FrameReader::Result r = reader.read(milliseconds(100));
    if (r.status == FrameReader::Status::kFrame && r.frame.seq == seq)
      return r.frame;
    if (r.status == FrameReader::Status::kEof) break;
  }
  ADD_FAILURE() << "no frame for seq " << seq;
  return Frame{};
}

TEST(ServeTimingTest, ExpiredRequestShedBeforeComputeWithTypedError) {
  core::VirtualClock clock;
  ServerConfig config;
  config.worker_threads = 1;
  config.clock = &clock;
  // A long linger guarantees the request is still queued when the test
  // advances virtual time past its deadline.
  config.batch_window = milliseconds(500);
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));
  FrameReader reader(*client_end);

  write_frame(*client_end, encode_request(1, small_test_set(), 50));
  wait_accepted(server, 1);
  clock.advance(milliseconds(200));  // the 50 ms budget is now long gone

  const Frame reply = await_seq(reader, 1);
  ASSERT_EQ(reply.type, FrameType::kError);
  const ParsedError err = parse_error_payload(reply.payload);
  EXPECT_EQ(err.code, ErrorCode::kDeadlineExceeded);

  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_EQ(m.deadline_shed_queue, 1u);
  // Shed means shed: the request never reached a cache lookup or a coder,
  // so no hit/miss accounting may exist for it.
  EXPECT_EQ(m.l1_hits + m.l2_hits + m.misses, 0u);
  server.stop();
}

TEST(ServeTimingTest, ServerDefaultDeadlineAppliesToV1Frames) {
  core::VirtualClock clock;
  ServerConfig config;
  config.worker_threads = 1;
  config.clock = &clock;
  config.batch_window = milliseconds(500);
  config.default_deadline_ms = 80;  // frames carrying none inherit this
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));
  FrameReader reader(*client_end);

  write_frame(*client_end, encode_request(7, small_test_set(), 0));
  wait_accepted(server, 1);
  clock.advance(milliseconds(200));

  const Frame reply = await_seq(reader, 7);
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(reply.payload).code,
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(server.metrics_snapshot().deadline_shed_queue, 1u);
  server.stop();
}

TEST(ServeTimingTest, UnexpiredDeadlineStillComputesNormally) {
  core::VirtualClock clock;
  ServerConfig config;
  config.worker_threads = 1;
  config.clock = &clock;
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));
  FrameReader reader(*client_end);

  // Virtual time never advances, so the 50 ms budget never expires.
  write_frame(*client_end, encode_request(3, small_test_set(), 50));
  const Frame reply = await_seq(reader, 3);
  EXPECT_EQ(reply.type, FrameType::kEncodeReply);
  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_EQ(m.deadline_shed_queue + m.deadline_shed_decode +
                m.deadline_shed_write,
            0u);
  server.stop();
}

TEST(ServeTimingTest, DecodeAbortsViaWatchdogOnceDeadlineExpires) {
  // The mid-decode shed point: a Watchdog carrying an expired deadline must
  // abort the decode loop -- expired work is never computed to completion.
  // The input is large enough that the watchdog's periodic deadline poll
  // (every ~1024 steps) fires several times during the decode.
  core::VirtualClock clock;
  const codec::NineCoded coder = CodecSpec{}.make_coder();
  bits::TestSet ts(64, 64);
  for (std::size_t p = 0; p < 64; ++p)
    for (std::size_t c = 0; c < 64; ++c)
      ts.set(p, c, ((p * 131 + c * 7) % 3) == 0
                       ? bits::Trit::X
                       : (((p + c) & 1) != 0 ? bits::Trit::One
                                             : bits::Trit::Zero));
  const bits::TritVector te = coder.encode(ts.flatten());
  const std::size_t original = ts.pattern_count() * ts.pattern_length();

  core::Watchdog fresh(1u << 20,
                       core::Deadline::after(milliseconds(100), &clock));
  EXPECT_NO_THROW(coder.decode_checked(te, original, &fresh));

  core::Watchdog expired(1u << 20, core::Deadline::after(milliseconds(100),
                                                         &clock));
  clock.advance(milliseconds(200));
  EXPECT_THROW(coder.decode_checked(te, original, &expired),
               codec::DecodeError);
}

TEST(ServeTimingTest, DribblingClientBelowProgressFloorIsDisconnected) {
  core::VirtualClock clock;
  ServerConfig config;
  config.worker_threads = 1;
  config.clock = &clock;
  config.min_progress_bps = 1024;
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));

  // Commit to a frame (partial header buffered) and then stall: 2 virtual
  // seconds pass with 2 bytes delivered -- far below 1024 B/s.
  const std::uint8_t partial[2] = {'N', 'C'};
  client_end->write_all(partial, 2);
  std::this_thread::sleep_for(milliseconds(50));  // let the reader buffer it
  clock.advance(milliseconds(2000));

  FrameReader reader(*client_end);
  const auto give_up = std::chrono::steady_clock::now() + milliseconds(3000);
  bool saw_reason = false;
  bool saw_eof = false;
  while (std::chrono::steady_clock::now() < give_up && !saw_eof) {
    FrameReader::Result r = reader.read(milliseconds(100));
    if (r.status == FrameReader::Status::kFrame &&
        r.frame.type == FrameType::kError) {
      const ParsedError err = parse_error_payload(r.frame.payload);
      EXPECT_EQ(err.code, ErrorCode::kSlowClient);
      saw_reason = true;
    }
    if (r.status == FrameReader::Status::kEof) saw_eof = true;
  }
  EXPECT_TRUE(saw_eof) << "slow client was not disconnected";
  EXPECT_TRUE(saw_reason) << "disconnect carried no typed reason";
  EXPECT_EQ(server.metrics_snapshot().slow_client_disconnects, 1u);
  server.stop();
}

TEST(ServeTimingTest, IdleConnectionIsReapedAfterTimeout) {
  core::VirtualClock clock;
  ServerConfig config;
  config.worker_threads = 1;
  config.clock = &clock;
  config.idle_timeout = milliseconds(500);
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));

  std::this_thread::sleep_for(milliseconds(30));  // reader thread running
  clock.advance(milliseconds(1000));

  FrameReader reader(*client_end);
  const auto give_up = std::chrono::steady_clock::now() + milliseconds(3000);
  bool saw_eof = false;
  while (std::chrono::steady_clock::now() < give_up && !saw_eof) {
    FrameReader::Result r = reader.read(milliseconds(100));
    if (r.status == FrameReader::Status::kEof) saw_eof = true;
  }
  EXPECT_TRUE(saw_eof) << "idle connection was not reaped";
  EXPECT_EQ(server.metrics_snapshot().idle_disconnects, 1u);
  server.stop();
}

TEST(ServeTimingTest, ActiveConnectionSurvivesIdleAndProgressChecks) {
  core::VirtualClock clock;
  ServerConfig config;
  config.worker_threads = 1;
  config.clock = &clock;
  config.min_progress_bps = 1024;  // no partial frame -> never applies
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));
  FrameReader reader(*client_end);

  // A whole frame, then silence. No idle timeout configured and no partial
  // frame buffered: hours of virtual silence must not cost the connection.
  write_frame(*client_end, encode_request(9, small_test_set()));
  const Frame reply = await_seq(reader, 9);
  EXPECT_EQ(reply.type, FrameType::kEncodeReply);
  clock.advance(std::chrono::hours(1));
  std::this_thread::sleep_for(milliseconds(150));  // several reader polls

  write_frame(*client_end, encode_request(10, small_test_set()));
  const Frame again = await_seq(reader, 10);
  EXPECT_EQ(again.type, FrameType::kEncodeReply);
  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_EQ(m.slow_client_disconnects, 0u);
  EXPECT_EQ(m.idle_disconnects, 0u);
  server.stop();
}

TEST(ServeTimingTest, ReplyWriteToNonDrainingPeerIsBoundedAndDropped) {
  ServerConfig config;
  config.worker_threads = 1;
  config.write_deadline = milliseconds(200);  // real clock: short bound
  Server server(config);
  // A 16-byte pipe the client never drains: the reply cannot fit, so the
  // bounded write must give up and drop the connection instead of wedging
  // the worker forever.
  auto [client_end, server_end] = make_pipe(16);
  server.serve(std::move(server_end));

  write_frame(*client_end, encode_request(2, small_test_set()));
  const auto give_up = std::chrono::steady_clock::now() + milliseconds(5000);
  while (server.metrics_snapshot().write_timeouts == 0 &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(milliseconds(10));
  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_GE(m.write_timeouts, 1u);
  EXPECT_GE(m.slow_client_disconnects, 1u);
  server.stop();  // must not hang on the dropped connection
}

TEST(ServeTimingTest, ConcurrentStopCallersBothReturn) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  auto [client_end, server_end] = make_pipe();
  server.serve(std::move(server_end));
  write_frame(*client_end, encode_request(1, small_test_set()));

  std::thread a([&server] { server.stop(); });
  std::thread b([&server] { server.stop(); });
  a.join();
  b.join();
  server.stop();  // and it stays idempotent afterwards
}

TEST(ServeTimingTest, StoreBackoffIsCappedAndConfigDriven) {
  // The write-through retry backoff must honor the configured cap: with a
  // virtual clock the sleeps advance virtual time only, so total retry
  // delay is exactly observable. (The store is absent here; this pins the
  // config plumbing -- cap >= initial even when misconfigured.)
  ServerConfig config;
  config.store_backoff_initial = milliseconds(100);
  config.store_backoff_cap = milliseconds(20);  // below initial: clamped up
  core::VirtualClock clock;
  config.clock = &clock;
  Server server(config);  // must construct fine without a store
  EXPECT_FALSE(server.metrics_snapshot().store_put_retries > 0);
  server.stop();
}

}  // namespace
}  // namespace nc::serve
