// Decode-path fuzzing under the bounded-progress watchdog.
//
// The guarantee under test: for ANY input stream -- random noise, a
// truncated or padded valid stream, X symbols in arbitrary positions --
// every decode entry point (decoder FSM engine, single-scan model,
// multi-scan architectures, software block decoder) terminates within its
// step budget with either a successful decode or a typed DecodeError.
// No hang, no crash, and never a silently wrong "success" length.
#include <gtest/gtest.h>

#include <random>

#include "codec/decode_error.h"
#include "codec/nine_coded.h"
#include "core/cancel.h"
#include "decomp/decoder_fsm.h"
#include "decomp/multi_scan.h"
#include "decomp/single_scan.h"

namespace nc::decomp {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using codec::DecodeError;
using codec::DecodeFault;
using codec::NineCoded;

constexpr std::size_t kTrials = 400;  // >= 200 required by the guarantee

TritVector random_stream(std::mt19937_64& rng, std::size_t max_len,
                         double x_rate) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::bernoulli_distribution x(x_rate);
  std::bernoulli_distribution bit(0.5);
  TritVector out;
  const std::size_t len = len_dist(rng);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(x(rng) ? Trit::X : (bit(rng) ? Trit::One : Trit::Zero));
  return out;
}

/// Generous budget scaled like the fleet manager's automatic one: a clean
/// decode can never trip it, so any trip on garbage input still proves
/// bounded work rather than masking a hang.
std::size_t generous_budget(std::size_t original_bits, std::size_t te_bits) {
  return 64 + 8 * (original_bits + te_bits);
}

// -------------------------------------------------------- single_scan run

TEST(DecoderFuzz, RandomStreamsTerminateWithSuccessOrTypedError) {
  std::mt19937_64 rng(2024);
  const SingleScanDecoder decoder(8, 4);
  const NineCoded coder(8);
  std::size_t successes = 0, errors = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    // Pure noise essentially never parses to completion, so every tenth
    // trial streams a valid encode -- both exits stay exercised.
    TritVector te;
    std::size_t original;
    if (trial % 10 == 0) {
      const TritVector td = random_stream(rng, 200, 0.3);
      te = coder.encode(td);
      original = td.size();
    } else {
      te = random_stream(rng, 300, trial % 3 == 0 ? 0.1 : 0.0);
      original = std::uniform_int_distribution<std::size_t>(0, 200)(rng);
    }
    core::Watchdog watchdog(generous_budget(original, te.size()));
    try {
      const DecoderTrace trace = decoder.run(te, original, &watchdog);
      ++successes;
      EXPECT_EQ(trace.scan_stream.size(), original);
    } catch (const DecodeError&) {
      ++errors;  // typed: every corruption lands in the taxonomy
    }
    EXPECT_LE(watchdog.steps(), watchdog.max_steps() + 64)
        << "unbounded work on trial " << trial;
  }
  // Random noise must exercise both exits, or the fuzz proves nothing.
  EXPECT_GT(successes, 0u);
  EXPECT_GT(errors, 0u);
}

TEST(DecoderFuzz, TruncationsOfValidStreamAlwaysTerminate) {
  std::mt19937_64 rng(7);
  const NineCoded coder(8);
  const SingleScanDecoder decoder(8, 4);
  TritVector td;
  std::uniform_int_distribution<int> t(0, 2);
  for (int i = 0; i < 160; ++i)
    td.push_back(t(rng) == 0 ? Trit::X
                             : (t(rng) == 1 ? Trit::One : Trit::Zero));
  const TritVector te = coder.encode(td);
  for (std::size_t cut = 0; cut <= te.size(); ++cut) {
    TritVector prefix;
    for (std::size_t i = 0; i < cut; ++i) prefix.push_back(te.get(i));
    core::Watchdog watchdog(generous_budget(td.size(), te.size()));
    try {
      const DecoderTrace trace = decoder.run(prefix, td.size(), &watchdog);
      EXPECT_EQ(cut, te.size());  // only the full stream may succeed
      EXPECT_EQ(trace.scan_stream.size(), td.size());
    } catch (const DecodeError& e) {
      EXPECT_LT(cut, te.size());
      EXPECT_NE(e.fault(), DecodeFault::kWatchdogExpired);
    }
  }
}

TEST(DecoderFuzz, AppendedGarbageIsTrailingDataOrTypedError) {
  std::mt19937_64 rng(13);
  const NineCoded coder(8);
  const SingleScanDecoder decoder(8, 4);
  const TritVector td = random_stream(rng, 120, 0.3);
  const TritVector te = coder.encode(td);
  for (std::size_t extra = 1; extra <= 16; ++extra) {
    TritVector stream = te;
    for (std::size_t i = 0; i < extra; ++i)
      stream.push_back(i % 2 == 0 ? Trit::One : Trit::Zero);
    core::Watchdog watchdog(generous_budget(td.size(), stream.size()));
    EXPECT_THROW(decoder.run(stream, td.size(), &watchdog), DecodeError);
  }
}

TEST(DecoderFuzz, TinyBudgetRaisesWatchdogExpired) {
  std::mt19937_64 rng(31);
  const SingleScanDecoder decoder(8, 4);
  const NineCoded coder(8);
  const TritVector td = random_stream(rng, 200, 0.2);
  const TritVector te = coder.encode(td);
  ASSERT_GT(te.size(), 4u);
  core::Watchdog watchdog(3);
  try {
    decoder.run(te, td.size(), &watchdog);
    FAIL() << "a 3-step budget cannot finish this decode";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.fault(), DecodeFault::kWatchdogExpired);
  }
}

// ----------------------------------------------------- software decoder

TEST(DecoderFuzz, BlockDecoderTerminatesOnRandomStreams) {
  std::mt19937_64 rng(555);
  const NineCoded coder(8);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const TritVector te = random_stream(rng, 300, 0.05);
    const std::size_t original =
        std::uniform_int_distribution<std::size_t>(0, 200)(rng);
    core::Watchdog watchdog(generous_budget(original, te.size()));
    try {
      const auto outcome = coder.decode_checked(te, original, &watchdog);
      EXPECT_EQ(outcome.data.size(), original);
      EXPECT_EQ(outcome.consumed, te.size());
    } catch (const DecodeError&) {
    }
    EXPECT_LE(watchdog.steps(), watchdog.max_steps() + coder.block_size() + 5);
  }
}

TEST(DecoderFuzz, BlockDecoderTinyBudgetTripsAsWatchdogExpired) {
  const NineCoded coder(8);
  TritVector te;
  for (int i = 0; i < 64; ++i) te.push_back(Trit::Zero);  // all-C1 stream
  core::Watchdog watchdog(5);  // less than one block's k+5 charge
  try {
    coder.decode_checked(te, 64 * 8, &watchdog);
    FAIL() << "budget below one block cannot succeed";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.fault(), DecodeFault::kWatchdogExpired);
  }
}

// ------------------------------------------------------------ multi_scan

TEST(DecoderFuzz, MultiScanArchitecturesHonorTheSharedWatchdog) {
  std::mt19937_64 rng(77);
  const NineCoded coder(4);
  for (std::size_t trial = 0; trial < 50; ++trial) {
    // A well-formed test set; the budget is the attack here: a shared
    // watchdog must stop whichever bank is running when it expires.
    TestSet td(8, 16);
    std::bernoulli_distribution bit(0.5);
    for (std::size_t p = 0; p < td.pattern_count(); ++p) {
      TritVector row;
      for (std::size_t i = 0; i < 16; ++i)
        row.push_back(bit(rng) ? Trit::One : Trit::Zero);
      td.set_pattern(p, row);
    }
    core::Watchdog tiny(4);
    try {
      run_multi_scan_banked(td, 8, coder, 4, &tiny);
      FAIL() << "4 steps cannot decode 8x16 bits";
    } catch (const DecodeError& e) {
      EXPECT_EQ(e.fault(), DecodeFault::kWatchdogExpired);
      EXPECT_NE(e.pin(), DecodeError::kUnknown);
    }
    core::Watchdog roomy(generous_budget(8 * 16, 8 * 16) * 4);
    EXPECT_NO_THROW(run_multi_scan_banked(td, 8, coder, 4, &roomy));
    EXPECT_NO_THROW(
        run_multi_scan_single_pin(td, 8, coder, 4, nullptr));
  }
}

// ------------------------------------------------------------ FSM engine

TEST(DecoderFuzz, FsmEngineBoundsZeroProgressSpin) {
  // The pure transition table cannot loop, but a driver whose counter never
  // raises Done spins in kHalfA consuming no stream bits. The engine meters
  // exactly that: the spin trips the budget and freezes.
  core::Watchdog watchdog(32);
  FsmEngine engine(&watchdog);
  const FsmStep first = engine.step(false, false);  // "0" = C1, recognized
  ASSERT_TRUE(first.recognized);
  ASSERT_EQ(engine.state(), FsmState::kHalfA);
  for (int spin = 0; spin < 1000; ++spin) engine.step(false, false);
  EXPECT_EQ(engine.trip(), core::WatchdogTrip::kStepBudget);
  EXPECT_EQ(engine.state(), FsmState::kHalfA);  // frozen, not advanced
  EXPECT_LE(engine.steps(), 33u);               // bounded work, not 1000
}

TEST(DecoderFuzz, FsmEngineRandomDrivesNeverEscapeTheStateSpace) {
  std::mt19937_64 rng(123);
  std::bernoulli_distribution bit(0.5);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    FsmEngine engine;  // unmetered: the table itself must stay total
    for (int i = 0; i < 64; ++i) {
      engine.step(bit(rng), bit(rng));
      EXPECT_LT(static_cast<std::size_t>(engine.state()), kFsmStateCount);
    }
  }
}

// ------------------------------------------------------- watchdog itself

TEST(Watchdog, StepBudgetIsSticky) {
  core::Watchdog wd(10);
  EXPECT_EQ(wd.tick(10), core::WatchdogTrip::kNone);
  EXPECT_EQ(wd.tick(1), core::WatchdogTrip::kStepBudget);
  EXPECT_EQ(wd.tick(1), core::WatchdogTrip::kStepBudget);  // sticky
  EXPECT_EQ(wd.check(), core::WatchdogTrip::kStepBudget);
}

TEST(Watchdog, CancelTokenTripsOnCheck) {
  core::CancelToken cancel;
  core::Watchdog wd(0, core::Deadline{}, &cancel);
  EXPECT_EQ(wd.check(), core::WatchdogTrip::kNone);
  cancel.cancel();
  EXPECT_EQ(wd.check(), core::WatchdogTrip::kCancelled);
  EXPECT_EQ(wd.tick(), core::WatchdogTrip::kCancelled);
}

TEST(Watchdog, ExpiredDeadlineTripsWithinOnePollInterval) {
  core::Watchdog wd(0, core::Deadline::after(std::chrono::nanoseconds{0}));
  core::WatchdogTrip trip = core::WatchdogTrip::kNone;
  for (int i = 0; i < 2048 && trip == core::WatchdogTrip::kNone; ++i)
    trip = wd.tick();
  EXPECT_EQ(trip, core::WatchdogTrip::kDeadline);
}

TEST(Watchdog, UnlimitedNeverTrips) {
  core::Watchdog wd;
  EXPECT_FALSE(wd.limited());
  for (int i = 0; i < 5000; ++i)
    EXPECT_EQ(wd.tick(7), core::WatchdogTrip::kNone);
}

}  // namespace
}  // namespace nc::decomp
