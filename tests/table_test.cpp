#include "report/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nc::report {
namespace {

TEST(Table, RendersTitleHeaderAndRows) {
  Table t("TABLE II");
  t.set_header({"Circuit", "CR%"});
  t.row().add("s5378").add(51.6, 1);
  t.row().add("s9234").add(45.2, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("TABLE II"), std::string::npos);
  EXPECT_NE(s.find("Circuit"), std::string::npos);
  EXPECT_NE(s.find("s5378"), std::string::npos);
  EXPECT_NE(s.find("51.6"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t("T");
  t.set_header({"a", "bb"});
  t.row().add("wide-cell").add("x");
  t.row().add("y").add("z");
  std::istringstream in(t.to_string());
  std::string line;
  std::getline(in, line);  // title
  std::getline(in, line);  // rule
  std::getline(in, line);  // header
  const std::string header = line;
  std::getline(in, line);  // rule
  std::getline(in, line);  // first row
  // Second column starts at the same offset in header and row.
  EXPECT_EQ(header.find("bb"), line.find('x'));
}

TEST(Table, SeparatorInsertsRule) {
  Table t("T");
  t.set_header({"c"});
  t.row().add("v1");
  t.separator();
  t.row().add("Avg");
  const std::string s = t.to_string();
  // Expect a rule line between v1 and Avg.
  const auto v1 = s.find("v1");
  const auto avg = s.find("Avg");
  ASSERT_NE(v1, std::string::npos);
  ASSERT_NE(avg, std::string::npos);
  EXPECT_NE(s.substr(v1, avg - v1).find("---"), std::string::npos);
}

TEST(Table, NumericFormatting) {
  Table t("T");
  t.set_header({"n", "d", "s"});
  t.row().add(std::size_t{42}).add(3.14159, 3).add_signed(-7);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);
  EXPECT_NE(s.find("-7"), std::string::npos);
}

TEST(Table, AddWithoutRowStartsOne) {
  Table t("T");
  t.add("lone");
  EXPECT_NE(t.to_string().find("lone"), std::string::npos);
}

TEST(Table, PrintMatchesToString) {
  Table t("T");
  t.set_header({"c"});
  t.row().add("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace nc::report
