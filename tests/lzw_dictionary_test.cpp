// Tests for the LZ-family related-work coders: LZW [25] and the
// fixed-length-index dictionary scheme [26].
#include <gtest/gtest.h>

#include <random>

#include "baselines/dictionary.h"
#include "baselines/lzw.h"
#include "gen/cube_gen.h"

namespace nc::baselines {
namespace {

using bits::Trit;
using bits::TritVector;

// ------------------------------------------------------------------- LZW --

TEST(Lzw, RejectsBadWidth) {
  EXPECT_THROW(Lzw(1), std::invalid_argument);
  EXPECT_THROW(Lzw(21), std::invalid_argument);
}

TEST(Lzw, RoundTripShortStrings) {
  const Lzw lzw(4);
  for (const char* s : {"0", "1", "01", "0000", "010101010101",
                        "1111111100000000", "0110100110010110"}) {
    const TritVector td = TritVector::from_string(s);
    const TritVector d = lzw.decode(lzw.encode(td), td.size());
    EXPECT_EQ(d.to_string(), s);
  }
}

TEST(Lzw, KwKwKCase) {
  // "000...": phrases 0, 00, 000...; the decoder hits codes it has not
  // finished defining (the classic KwKwK corner).
  const Lzw lzw(4);
  TritVector td;
  td.append_run(100, Trit::Zero);
  const TritVector d = lzw.decode(lzw.encode(td), td.size());
  EXPECT_EQ(d, td);
}

TEST(Lzw, DictionaryFreezeStillRoundTrips) {
  // Width 3 -> dictionary caps at 8 entries almost immediately.
  const Lzw lzw(3);
  std::mt19937 rng(4);
  TritVector td;
  for (int i = 0; i < 2000; ++i) td.push_back(bits::trit_from_bit(rng() & 1u));
  EXPECT_TRUE(td.covered_by(lzw.decode(lzw.encode(td), td.size())));
}

TEST(Lzw, XFillsAsZero) {
  const Lzw lzw(4);
  EXPECT_EQ(lzw.encode(TritVector::from_string("0XX01")),
            lzw.encode(TritVector::from_string("00001")));
}

TEST(Lzw, RepetitiveDataCompresses) {
  const Lzw lzw(10);
  TritVector td;
  for (int i = 0; i < 500; ++i) {
    td.append_run(30, Trit::Zero);
    td.push_back(Trit::One);
  }
  // Fixed-width codes make LZW modest: ~2.5-3x on this highly repetitive
  // stream (the growing-width variant would do better).
  EXPECT_LT(lzw.encode(td).size(), td.size() / 2);
}

TEST(Lzw, CorruptStreamThrows) {
  const Lzw lzw(6);
  // First code out of range (dictionary has 2 entries, code 63 invalid).
  EXPECT_THROW(lzw.decode(TritVector::from_string("111111"), 10),
               std::runtime_error);
}

TEST(Lzw, EmptyInput) {
  const Lzw lzw(8);
  EXPECT_TRUE(lzw.encode(TritVector{}).empty());
  EXPECT_TRUE(lzw.decode(TritVector{}, 0).empty());
}

// ------------------------------------------------------------ dictionary --

TEST(FixedDictionaryTest, RejectsBadConfig) {
  EXPECT_THROW(FixedDictionary(0, 4), std::invalid_argument);
  EXPECT_THROW(FixedDictionary(65, 4), std::invalid_argument);
  EXPECT_THROW(FixedDictionary(8, 1), std::invalid_argument);
}

TEST(FixedDictionaryTest, IndexWidthIsCeilLog2) {
  EXPECT_EQ(FixedDictionary(8, 128).index_bits(), 7u);
  EXPECT_EQ(FixedDictionary(8, 100).index_bits(), 7u);
  EXPECT_EQ(FixedDictionary(8, 2).index_bits(), 1u);
}

TEST(FixedDictionaryTest, UntrainedDecodeThrows) {
  EXPECT_THROW(FixedDictionary(8, 4).decode(TritVector::from_string("0"), 1),
               std::logic_error);
}

TEST(FixedDictionaryTest, HitsUseIndicesMissesTravelRaw) {
  std::string s;
  for (int i = 0; i < 12; ++i) s += "11110000";
  for (int i = 0; i < 8; ++i) s += "00110011";
  s += "01100110";  // third distinct block; D=2 keeps only the two above
  const TritVector td = TritVector::from_string(s);
  const FixedDictionary dict = FixedDictionary::trained(td, 8, 2);
  const TritVector te = dict.encode(td);
  // 20 hits x (1 + 1) bits + 1 miss x (1 + 8) bits.
  EXPECT_EQ(te.size(), 20u * 2 + 9u);
  const TritVector d = dict.decode(te, td.size());
  EXPECT_EQ(d.to_string(), s);
}

TEST(FixedDictionaryTest, CompatibleXBlocksHitTheDictionary) {
  std::string s;
  for (int i = 0; i < 10; ++i) s += "0000111100001111";
  s += "0000XXXX0000XXXX";
  const TritVector td = TritVector::from_string(s);
  const FixedDictionary dict = FixedDictionary::trained(td, 16, 4);
  const TritVector d = dict.decode(dict.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
  EXPECT_EQ(d.slice(160, 16).to_string(), "0000111100001111");
}

TEST(FixedDictionaryTest, RoundTripOnCalibratedCubes) {
  const TritVector td =
      nc::gen::calibrated_cubes(nc::gen::iscas89_profile("s5378"), 2)
          .flatten();
  const FixedDictionary dict = FixedDictionary::trained(td, 16, 128);
  const TritVector d = dict.decode(dict.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
  EXPECT_EQ(d.x_count(), 0u);
}

TEST(FixedDictionaryTest, HighXCubesCompress) {
  const TritVector td =
      nc::gen::calibrated_cubes(nc::gen::iscas89_profile("s13207"), 2)
          .flatten();
  // b=32: a hit costs 1+7 bits per 32-bit block, so the CR ceiling is 75%.
  const FixedDictionary dict = FixedDictionary::trained(td, 32, 128);
  EXPECT_LT(dict.encode(td).size(), td.size() / 2);
}

}  // namespace
}  // namespace nc::baselines
