// Closed-loop round trip: ATPG cubes -> 9C encode -> decode -> scan
// simulation -> X-code compaction -> per-fault verdicts. The acceptance
// property: compaction costs no coverage on the bundled ISCAS'89 sample and
// a generated scan circuit whenever the per-cycle X stays within the code's
// tolerance (the generated netlist stands in for the larger ISCAS'89
// circuits the repo does not bundle; see ROADMAP).
#include "compact/roundtrip.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "atpg/atpg.h"
#include "circuit/generator.h"
#include "circuit/samples.h"
#include "sim/fault.h"

namespace nc::compact {
namespace {

using bits::TestSet;

void expect_closed_loop(const circuit::Netlist& nl, double x_density) {
  const TestSet td = atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  const auto faults = sim::full_fault_list(nl);

  RoundtripConfig cfg;
  cfg.xcode.kind = XCodeKind::kSteiner;
  cfg.analyzer.x_density = x_density;
  const RoundtripResult r = run_roundtrip(nl, td, faults, cfg);

  EXPECT_EQ(r.patterns, td.pattern_count());
  EXPECT_EQ(r.pattern_width, nl.pattern_width());
  EXPECT_EQ(r.td_bits, td.bit_count());
  EXPECT_GT(r.te_bits, 0u);
  EXPECT_EQ(r.xcode_kind, XCodeKind::kSteiner);

  const AnalyzerReport& rep = r.report;
  EXPECT_EQ(rep.faults, faults.size());
  EXPECT_EQ(rep.response_width, nl.response_width());
  if (rep.response_width >= 12) {
    // On toy responses (s27: 4 bits, c17: 2) a weight-3 code cannot beat
    // pass-through; real compaction needs a real response width.
    EXPECT_LT(rep.compact_outputs, rep.response_width);
    EXPECT_GT(rep.compaction_ratio(), 1.0);
  }
  EXPECT_EQ(rep.tolerance, 2u);
  // The theorem self-check must hold at any density.
  EXPECT_EQ(rep.tolerance_violations, 0u);
  EXPECT_LE(rep.detected_compacted, rep.detected_uncompacted);
  // The closed-loop acceptance property: while every capture cycle carries
  // at most t unknowns, compacted coverage equals the uncompacted baseline.
  if (rep.cycles_over_tolerance == 0) {
    EXPECT_EQ(rep.masked_by_compaction, 0u);
    EXPECT_DOUBLE_EQ(rep.coverage_loss_percent(), 0.0);
  }
}

TEST(Roundtrip, S27LosslessWithinTolerance) {
  const auto nl = circuit::samples::s27();
  // The decoded stimulus (the decompressor's legal fill of TD) leaves few
  // enough X per cycle that the t = 2 code is exercised within tolerance.
  const TestSet td = atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  RoundtripConfig cfg;
  const RoundtripResult r =
      run_roundtrip(nl, td, sim::full_fault_list(nl), cfg);
  EXPECT_EQ(r.report.cycles_over_tolerance, 0u);
  EXPECT_EQ(r.report.masked_by_compaction, 0u);
  EXPECT_DOUBLE_EQ(r.report.coverage_loss_percent(), 0.0);
  EXPECT_EQ(r.report.tolerance_violations, 0u);
}

TEST(Roundtrip, S27ClosedLoop) {
  expect_closed_loop(circuit::samples::s27(), 0.0);
}

TEST(Roundtrip, C17ClosedLoop) {
  expect_closed_loop(circuit::samples::c17(), 0.0);
}

TEST(Roundtrip, GeneratedScanCircuitClosedLoop) {
  circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 8;
  gcfg.num_flops = 12;
  gcfg.num_gates = 80;
  gcfg.num_outputs = 4;
  gcfg.seed = 5;
  expect_closed_loop(circuit::generate_circuit(gcfg), 0.0);
}

TEST(Roundtrip, IdentityCodeNeverMasks) {
  // Pass-through compaction is the uncompacted tester: zero loss at any
  // overlay density, by definition.
  const auto nl = circuit::samples::s27();
  const TestSet td = atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  RoundtripConfig cfg;
  cfg.xcode.kind = XCodeKind::kIdentity;
  cfg.analyzer.x_density = 0.1;
  const RoundtripResult r =
      run_roundtrip(nl, td, sim::full_fault_list(nl), cfg);
  EXPECT_EQ(r.report.masked_by_compaction, 0u);
  EXPECT_DOUBLE_EQ(r.report.coverage_loss_percent(), 0.0);
  EXPECT_EQ(r.report.compact_outputs, r.report.response_width);
}

TEST(Roundtrip, DecodedStimulusPreservesCoverage) {
  // The 9C decode is a fill of TD (care bits preserved), so coverage on
  // the decoded stimulus can only match or beat the raw cubes.
  const auto nl = circuit::samples::s27();
  const TestSet td = atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  const auto faults = sim::full_fault_list(nl);

  RoundtripConfig identity;
  identity.xcode.kind = XCodeKind::kIdentity;
  const RoundtripResult r = run_roundtrip(nl, td, faults, identity);

  AnalyzerConfig acfg;
  acfg.with_misr = false;
  const ResponseAnalyzer raw(nl, XCode::identity(nl.response_width()), acfg);
  const AnalyzerReport raw_report = raw.analyze(td, faults);
  EXPECT_GE(r.report.detected_uncompacted, raw_report.detected_uncompacted);
}

TEST(Roundtrip, RejectsMismatchedWidth) {
  const auto nl = circuit::samples::s27();
  const TestSet wrong(3, nl.pattern_width() + 1);
  EXPECT_THROW(run_roundtrip(nl, wrong, sim::full_fault_list(nl), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nc::compact
