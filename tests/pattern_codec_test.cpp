#include "codec/pattern_codec.h"

#include <gtest/gtest.h>

#include <random>

#include "codec/nine_coded.h"
#include "gen/cube_gen.h"

namespace nc::codec {
namespace {

using bits::Trit;
using bits::TritVector;

TEST(HalfPatternTest, BitGenerators) {
  EXPECT_FALSE(HalfPattern{HalfPattern::Kind::kConst0}.bit_at(0));
  EXPECT_TRUE(HalfPattern{HalfPattern::Kind::kConst1}.bit_at(3));
  // A = 0101..., B = 1010...
  const HalfPattern a{HalfPattern::Kind::kAlt01};
  const HalfPattern b{HalfPattern::Kind::kAlt10};
  EXPECT_FALSE(a.bit_at(0));
  EXPECT_TRUE(a.bit_at(1));
  EXPECT_TRUE(b.bit_at(0));
  EXPECT_FALSE(b.bit_at(1));
  EXPECT_EQ(a.symbol(), 'A');
  EXPECT_EQ(b.symbol(), 'B');
}

TEST(PatternCodec, RejectsBadConfig) {
  EXPECT_THROW(PatternCodec(7, nine_coded_patterns()), std::invalid_argument);
  EXPECT_THROW(PatternCodec(8, {}), std::invalid_argument);
}

TEST(PatternCodec, ClassCount) {
  EXPECT_EQ(PatternCodec(8, nine_coded_patterns()).class_count(), 9u);
  EXPECT_EQ(PatternCodec(8, extended_patterns()).class_count(), 25u);
}

TEST(PatternCodec, NameListsPatterns) {
  EXPECT_EQ(PatternCodec(8, extended_patterns()).name(), "Pattern{01AB}(K=8)");
}

TEST(PatternCodec, ClassifyMatchesFirstCompatiblePattern) {
  const PatternCodec pc(8, extended_patterns());
  // "01010101": both halves match A (class index 2); class = 2*5+2 = 12.
  EXPECT_EQ(pc.classify(TritVector::from_string("01010101"), 0), 12u);
  // All-X prefers pattern 0 (const0): class 0.
  EXPECT_EQ(pc.classify(TritVector::from_string("XXXXXXXX"), 0), 0u);
  // Left mismatch, right 1s: (4, 1) -> 21.
  EXPECT_EQ(pc.classify(TritVector::from_string("01101111"), 0), 21u);
}

TEST(PatternCodec, UntrainedDecodeThrows) {
  const PatternCodec pc(8, nine_coded_patterns());
  EXPECT_THROW(pc.decode(TritVector::from_string("0"), 8), std::logic_error);
}

TEST(PatternCodec, TrainedRoundTripPreservesCareBits) {
  std::mt19937 rng(3);
  gen::CubeGenConfig cfg;
  cfg.patterns = 20;
  cfg.width = 203;
  cfg.x_fraction = 0.75;
  cfg.seed = 5;
  const TritVector td = gen::generate_cubes(cfg).flatten();
  for (const auto& patterns : {nine_coded_patterns(), extended_patterns()}) {
    const PatternCodec pc = PatternCodec::trained(td, 8, patterns);
    const TritVector d = pc.decode(pc.encode(td), td.size());
    ASSERT_EQ(d.size(), td.size());
    EXPECT_TRUE(td.covered_by(d)) << pc.name();
  }
}

TEST(PatternCodec, AlternatingBlocksCompressWithExtendedSet) {
  // A stream of alternating bits defeats 9C (every block is C9) but matches
  // the extended set's A pattern exactly.
  std::string s;
  for (int i = 0; i < 64; ++i) s += "01";
  const TritVector td = TritVector::from_string(s);
  const PatternCodec ext = PatternCodec::trained(td, 8, extended_patterns());
  const NineCoded nine(8);
  EXPECT_LT(ext.encode(td).size(), nine.encode(td).size() / 4);
}

TEST(PatternCodec, ExtendedStaysWithinNoiseOfNineOnTypicalCubes) {
  // The paper's Section II judgement: the extra codewords "may slightly
  // improve the compression ratio" on ordinary cubes -- they must never
  // change it drastically in either direction (alternating halves are rare
  // there, so the refined partition is nearly the 9C partition).
  gen::CubeGenConfig cfg;
  cfg.patterns = 30;
  cfg.width = 400;
  cfg.x_fraction = 0.85;
  cfg.seed = 9;
  const TritVector td = gen::generate_cubes(cfg).flatten();
  const PatternCodec nine = PatternCodec::trained(td, 8, nine_coded_patterns());
  const PatternCodec ext = PatternCodec::trained(td, 8, extended_patterns());
  const double ratio = static_cast<double>(ext.encode(td).size()) /
                       static_cast<double>(nine.encode(td).size());
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.05);
}

TEST(PatternCodec, HuffmanTrainedNinePatternTracksNineCoded) {
  // Same partition as 9C; trained Huffman lengths should compress at least
  // as well as the paper's fixed lengths on the training set.
  gen::CubeGenConfig cfg;
  cfg.patterns = 25;
  cfg.width = 320;
  cfg.x_fraction = 0.8;
  cfg.seed = 2;
  const TritVector td = gen::generate_cubes(cfg).flatten();
  const PatternCodec trained =
      PatternCodec::trained(td, 8, nine_coded_patterns());
  const NineCoded fixed(8);
  EXPECT_LE(trained.encode(td).size(), fixed.encode(td).size());
}

TEST(PatternCodec, HistogramSumsToBlockCount) {
  const PatternCodec pc(8, extended_patterns());
  const TritVector td(100, Trit::X);  // 13 blocks after padding
  const auto hist = pc.class_histogram(td);
  std::size_t total = 0;
  for (std::size_t h : hist) total += h;
  EXPECT_EQ(total, 13u);
  EXPECT_EQ(hist[0], 13u);  // all-X -> class (0,0)
}

TEST(PatternCodec, LeftoverXSurvivesInMismatchPayload) {
  const PatternCodec pc =
      PatternCodec::trained(TritVector::from_string("01X00000"), 8,
                            nine_coded_patterns());
  const TritVector te = pc.encode(TritVector::from_string("01X00000"));
  EXPECT_GT(te.x_count(), 0u);
}

}  // namespace
}  // namespace nc::codec
