// The tune optimizer's behavioral contract (DESIGN.md section 16):
// seeded determinism, jobs-invariance, baseline dominance, and honest
// bookkeeping of invalid candidates. Everything here runs against a small
// X-rich workload so a full evolutionary loop stays test-speed.
#include "tune/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/cube_gen.h"
#include "tune/fitness.h"
#include "tune/genome.h"

namespace nc::tune {
namespace {

using bits::TestSet;

TestSet small_workload(std::uint64_t seed = 1) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 24;
  cfg.width = 64;
  cfg.x_fraction = 0.7;
  cfg.seed = seed;
  return gen::generate_cubes(cfg);
}

TuneConfig quick_config() {
  TuneConfig cfg;
  cfg.seed = 42;
  cfg.generations = 3;
  cfg.population = 8;
  cfg.jobs = 1;
  return cfg;
}

TEST(TuneOptimizer, SameSeedIsBitReproducible) {
  const TestSet td = small_workload();
  const TuneResult a = run_tune(td, quick_config());
  const TuneResult b = run_tune(td, quick_config());
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_report.score, b.best_report.score);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.invalid_genomes, b.invalid_genomes);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].best_score, b.trace[i].best_score);
    EXPECT_EQ(a.trace[i].mean_valid_score, b.trace[i].mean_valid_score);
    EXPECT_EQ(a.trace[i].invalid, b.trace[i].invalid);
  }
}

TEST(TuneOptimizer, DifferentSeedsSearchDifferently) {
  const TestSet td = small_workload();
  TuneConfig cfg = quick_config();
  const TuneResult a = run_tune(td, cfg);
  cfg.seed = 43;
  const TuneResult b = run_tune(td, cfg);
  // The winners may coincide (both start from the same baselines), but the
  // explored populations must differ somewhere in the trace.
  bool any_difference = a.best != b.best;
  for (std::size_t i = 0; i < a.trace.size() && !any_difference; ++i)
    any_difference = a.trace[i].mean_valid_score != b.trace[i].mean_valid_score;
  EXPECT_TRUE(any_difference);
}

TEST(TuneOptimizer, JobsNeverChangeTheResult) {
  const TestSet td = small_workload();
  TuneConfig cfg = quick_config();
  const TuneResult serial = run_tune(td, cfg);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    cfg.jobs = jobs;
    const TuneResult parallel = run_tune(td, cfg);
    EXPECT_EQ(parallel.best, serial.best) << "jobs=" << jobs;
    EXPECT_EQ(parallel.best_report.score, serial.best_report.score)
        << "jobs=" << jobs;
    ASSERT_EQ(parallel.trace.size(), serial.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(parallel.trace[i].best_score, serial.trace[i].best_score)
          << "jobs=" << jobs << " gen=" << i;
      EXPECT_EQ(parallel.trace[i].mean_valid_score,
                serial.trace[i].mean_valid_score)
          << "jobs=" << jobs << " gen=" << i;
    }
  }
}

TEST(TuneOptimizer, WinnerDominatesBothSeededBaselines) {
  const TestSet td = small_workload();
  const TuneResult r = run_tune(td, quick_config());
  ASSERT_TRUE(r.best_report.valid);
  ASSERT_TRUE(r.standard_report.valid);
  ASSERT_TRUE(r.frequency_directed_report.valid);
  EXPECT_GE(r.best_report.score, r.standard_report.score);
  EXPECT_GE(r.best_report.score, r.frequency_directed_report.score);
}

TEST(TuneOptimizer, TraceBestScoreIsMonotone) {
  // Elitism carries the incumbent forward, so per-generation best never
  // regresses.
  const TestSet td = small_workload(7);
  TuneConfig cfg = quick_config();
  cfg.generations = 5;
  const TuneResult r = run_tune(td, cfg);
  ASSERT_EQ(r.trace.size(), cfg.generations);
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_GE(r.trace[i].best_score, r.trace[i - 1].best_score);
  EXPECT_EQ(r.best_report.score, r.trace.back().best_score);
}

TEST(TuneOptimizer, EvaluationAccountingAddsUp) {
  const TestSet td = small_workload();
  TuneConfig cfg = quick_config();
  const TuneResult r = run_tune(td, cfg);
  EXPECT_EQ(r.evaluations, cfg.generations * cfg.population);
  EXPECT_LE(r.invalid_genomes, r.evaluations);
}

TEST(TuneOptimizer, RejectsDegenerateConfigs) {
  const TestSet td = small_workload();
  TuneConfig cfg = quick_config();
  cfg.population = 1;
  EXPECT_THROW(run_tune(td, cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.generations = 0;
  EXPECT_THROW(run_tune(td, cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.jobs = 0;
  EXPECT_THROW(run_tune(td, cfg), std::invalid_argument);
  cfg = quick_config();
  EXPECT_THROW(run_tune(TestSet(), cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.k_min = 5;  // odd bounds break the symmetric-split mutants
  EXPECT_THROW(run_tune(td, cfg), std::invalid_argument);
}

TEST(TuneOptimizer, ScalarAndBitplaneAgreeOnScores) {
  // Fitness is defined on the encoded stream, which is impl-invariant by
  // the codec's own contract -- so the whole search must be too. This is
  // what lets the server run under any CodecImpl and still serve
  // content-addressed tune artifacts.
  const TestSet td = small_workload();
  TuneConfig cfg = quick_config();
  cfg.impl = codec::CodecImpl::kScalar;
  const TuneResult scalar = run_tune(td, cfg);
  cfg.impl = codec::CodecImpl::kBitplane;
  const TuneResult bitplane = run_tune(td, cfg);
  EXPECT_EQ(scalar.best, bitplane.best);
  EXPECT_EQ(scalar.best_report.score, bitplane.best_report.score);
  EXPECT_EQ(scalar.best_report.encoded_bits,
            bitplane.best_report.encoded_bits);
}

TEST(TuneFitness, InvalidGenomeScoresMinusInfinity) {
  const TestSet td = small_workload();
  const FitnessEvaluator eval(td, TuneWeights{});
  TuneGenome bad;
  bad.lengths = {1, 1, 1, 1, 1, 1, 1, 1, 1};  // Kraft violation
  const FitnessReport r = eval.evaluate(bad);
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(std::isinf(r.score));
  EXPECT_LT(r.score, 0.0);
}

TEST(TuneFitness, StandardGenomeMatchesDirectCodecRun) {
  const TestSet td = small_workload();
  const FitnessEvaluator eval(td, TuneWeights{});
  const FitnessReport r = eval.evaluate(TuneGenome::standard(8));
  ASSERT_TRUE(r.valid);
  const auto stats = codec::NineCoded(8).analyze(td.flatten());
  EXPECT_EQ(r.encoded_bits, stats.encoded_bits);
  EXPECT_DOUBLE_EQ(r.cr_percent, stats.compression_ratio());
}

TEST(TuneFitness, GateWeightPenalizesExpensiveDecoders) {
  const TestSet td = small_workload();
  TuneWeights pricey;
  pricey.gates = 10.0;  // make hardware dominate the scalarization
  const FitnessEvaluator eval(td, pricey);
  const FitnessReport std8 = eval.evaluate(TuneGenome::standard(8));
  ASSERT_TRUE(std8.valid);
  EXPECT_LT(std8.score, 0.0);  // 128 GE * 10 swamps any CR percentage
}

}  // namespace
}  // namespace nc::tune
