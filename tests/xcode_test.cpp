#include "compact/xcode.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nc::compact {
namespace {

TEST(XCodeIdentity, IsPassThrough) {
  const XCode code = XCode::identity(7);
  EXPECT_EQ(code.inputs(), 7u);
  EXPECT_EQ(code.outputs(), 7u);
  EXPECT_EQ(code.kind(), XCodeKind::kIdentity);
  for (std::size_t r = 0; r < 7; ++r)
    for (std::size_t c = 0; c < 7; ++c)
      EXPECT_EQ(code.bit(r, c), r == c) << r << "," << c;
  // Columns are disjoint: no X set of any size blocks another column's row.
  EXPECT_EQ(code.tolerance(), 6u);
  EXPECT_TRUE(XCode::verify_tolerance(code, 3));
}

TEST(XCodeIdentity, RejectsEmpty) {
  EXPECT_THROW(XCode::identity(0), std::invalid_argument);
}

TEST(XCodeSteiner, Weight3PairwiseIntersectionAtMostOne) {
  const XCode code = XCode::steiner(30);
  EXPECT_EQ(code.inputs(), 30u);
  EXPECT_LT(code.outputs(), 30u);  // it actually compacts
  EXPECT_EQ(code.tolerance(), 2u);
  for (std::size_t c = 0; c < code.inputs(); ++c)
    EXPECT_EQ(code.column_weight(c), 3u) << "column " << c;
  for (std::size_t a = 0; a < code.inputs(); ++a)
    for (std::size_t b = a + 1; b < code.inputs(); ++b) {
      unsigned shared = 0;
      for (std::size_t r = 0; r < code.outputs(); ++r)
        if (code.bit(r, a) && code.bit(r, b)) ++shared;
      EXPECT_LE(shared, 1u) << "columns " << a << " and " << b;
    }
}

TEST(XCodeSteiner, ConstructionToleranceIsVerified) {
  // The t = 2 claim is structural; the exhaustive checker must agree.
  for (std::size_t n : {4u, 12u, 25u, 40u}) {
    const XCode code = XCode::steiner(n);
    EXPECT_TRUE(XCode::verify_tolerance(code, 2)) << code.describe();
  }
}

TEST(XCodeSteiner, ExplicitRowsTooSmallThrows) {
  // 5 rows host only 2 pairwise-sparse triples ({0,1,2} spends 3 of the 10
  // row pairs, {0,3,4} three more; every remaining triple repeats a pair).
  EXPECT_THROW(XCode::steiner(10, 5), std::invalid_argument);
  EXPECT_NO_THROW(XCode::steiner(2, 5));
}

TEST(XCodeSteiner, AutoSizePicksSmallestFeasible) {
  const XCode code = XCode::steiner(10);
  // One row fewer must be infeasible for the same packing.
  EXPECT_THROW(XCode::steiner(10, code.outputs() - 1),
               std::invalid_argument);
}

TEST(XCodeGreedy, VerifiedToleranceAndDeterminism) {
  const XCode a = XCode::greedy(20, 16, 2, 3, 42);
  const XCode b = XCode::greedy(20, 16, 2, 3, 42);
  EXPECT_EQ(a.inputs(), 20u);
  EXPECT_EQ(a.outputs(), 16u);
  EXPECT_EQ(a.tolerance(), 2u);
  for (std::size_t r = 0; r < a.outputs(); ++r)
    for (std::size_t c = 0; c < a.inputs(); ++c)
      EXPECT_EQ(a.bit(r, c), b.bit(r, c)) << r << "," << c;
  EXPECT_TRUE(XCode::verify_tolerance(a, 2));
  for (std::size_t c = 0; c < a.inputs(); ++c)
    EXPECT_EQ(a.column_weight(c), 3u);
}

TEST(XCodeGreedy, DifferentSeedsDiffer) {
  const XCode a = XCode::greedy(16, 15, 2, 3, 1);
  const XCode b = XCode::greedy(16, 15, 2, 3, 2);
  bool any_diff = false;
  for (std::size_t r = 0; r < a.outputs() && !any_diff; ++r)
    for (std::size_t c = 0; c < a.inputs() && !any_diff; ++c)
      any_diff = a.bit(r, c) != b.bit(r, c);
  EXPECT_TRUE(any_diff);
}

TEST(XCodeGreedy, ImpossibleGeometryThrows) {
  // m = 3 with weight 3: every column is the same full column; two columns
  // can never be (1,1)-separable.
  EXPECT_THROW(XCode::greedy(4, 3, 1, 3, 1), std::invalid_argument);
  EXPECT_THROW(XCode::greedy(4, 3, 4, 3, 1),
               std::invalid_argument);  // t > 3 unsupported
  EXPECT_THROW(XCode::greedy(4, 3, 1, 0, 1),
               std::invalid_argument);  // zero weight
}

TEST(XCodeBuild, SpecRoundTrip) {
  XCodeSpec spec;
  spec.kind = XCodeKind::kSteiner;
  spec.inputs = 24;
  const XCode code = XCode::build(spec);
  EXPECT_EQ(code.kind(), XCodeKind::kSteiner);
  EXPECT_EQ(code.inputs(), 24u);

  spec.kind = XCodeKind::kIdentity;
  spec.outputs = 7;  // != inputs
  EXPECT_THROW(XCode::build(spec), std::invalid_argument);
}

TEST(XCodeBuild, GreedyAutoSizeAlwaysLands) {
  XCodeSpec spec;
  spec.kind = XCodeKind::kGreedy;
  spec.tolerance = 2;
  for (std::size_t n : {3u, 9u, 21u, 33u}) {
    spec.inputs = n;
    spec.outputs = 0;  // auto
    const XCode code = XCode::build(spec);
    EXPECT_EQ(code.inputs(), n);
    // For tiny n the weight-3 search needs MORE rows than inputs (three
    // weight-3 columns cannot coexist on 3 rows); what matters is that it
    // lands on a verified code at all.
    EXPECT_GT(code.outputs(), 0u);
    EXPECT_TRUE(XCode::verify_tolerance(code, 2)) << code.describe();
  }
}

TEST(XCodeMaxTolerance, MatchesConstruction) {
  const XCode steiner = XCode::steiner(15);
  EXPECT_GE(XCode::max_tolerance(steiner, 3), 2u);
  const XCode identity = XCode::identity(5);
  EXPECT_EQ(XCode::max_tolerance(identity, 3), 3u);  // capped by the limit
}

TEST(XCodeRowColumns, InvertsBit) {
  const XCode code = XCode::steiner(12);
  for (std::size_t r = 0; r < code.outputs(); ++r)
    for (std::size_t c : code.row_columns(r)) EXPECT_TRUE(code.bit(r, c));
  EXPECT_THROW(code.row_columns(code.outputs()), std::out_of_range);
}

}  // namespace
}  // namespace nc::compact
