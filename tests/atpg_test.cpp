#include "atpg/atpg.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "circuit/samples.h"
#include "sim/fault_sim.h"

namespace nc::atpg {
namespace {

using bits::TestSet;
using bits::Trit;
using circuit::Netlist;

TEST(Atpg, C17FullCoverage) {
  const Netlist nl = circuit::samples::c17();
  const AtpgResult r = generate_tests(nl);
  EXPECT_DOUBLE_EQ(r.efficiency_percent(), 100.0);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_GT(r.tests.pattern_count(), 0u);
  // Confirm with independent fault simulation of the final (compacted) set.
  sim::FaultSimulator fsim(nl);
  const auto cover = fsim.run(r.tests, sim::collapsed_fault_list(nl));
  EXPECT_DOUBLE_EQ(cover.coverage_percent(), 100.0);
}

TEST(Atpg, S27FullCoverage) {
  const Netlist nl = circuit::samples::s27();
  const AtpgResult r = generate_tests(nl);
  EXPECT_EQ(r.aborted, 0u);
  sim::FaultSimulator fsim(nl);
  const auto cover = fsim.run(r.tests, sim::collapsed_fault_list(nl));
  EXPECT_DOUBLE_EQ(cover.coverage_percent(), 100.0);
}

TEST(Atpg, CubesKeepDontCares) {
  const Netlist nl = circuit::samples::s27();
  AtpgConfig cfg;
  cfg.compact = false;
  const AtpgResult r = generate_tests(nl, cfg);
  EXPECT_GT(r.tests.x_fraction(), 0.05);
}

TEST(Atpg, CompactionReducesPatternsKeepsCoverage) {
  circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 12;
  gcfg.num_flops = 10;
  gcfg.num_gates = 150;
  gcfg.seed = 17;
  const Netlist nl = circuit::generate_circuit(gcfg);

  AtpgConfig uncompacted;
  uncompacted.compact = false;
  const AtpgResult a = generate_tests(nl, uncompacted);
  const AtpgResult b = generate_tests(nl);
  EXPECT_LE(b.tests.pattern_count(), a.tests.pattern_count());

  sim::FaultSimulator fsim(nl);
  const auto faults = sim::collapsed_fault_list(nl);
  const double cov_a = fsim.run(a.tests, faults).coverage_percent();
  const double cov_b = fsim.run(b.tests, faults).coverage_percent();
  EXPECT_GE(cov_b, cov_a - 1e-9);  // merging cannot lose 3-valued detection
}

TEST(Atpg, FaultDroppingShrinksTestCount) {
  const Netlist nl = circuit::samples::s27();
  AtpgConfig with, without;
  with.fault_dropping = true;
  with.compact = false;
  without.fault_dropping = false;
  without.compact = false;
  EXPECT_LE(generate_tests(nl, with).tests.pattern_count(),
            generate_tests(nl, without).tests.pattern_count());
}

TEST(Atpg, MediumGeneratedCircuitHighCoverage) {
  circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 16;
  gcfg.num_flops = 24;
  gcfg.num_gates = 250;
  gcfg.seed = 5;
  const Netlist nl = circuit::generate_circuit(gcfg);
  AtpgConfig cfg;
  cfg.max_backtracks = 512;
  const AtpgResult r = generate_tests(nl, cfg);
  // Random reconvergent logic carries a tail of redundant faults that
  // vanilla PODEM can neither test nor prove untestable within the budget;
  // resolving ~9 in 10 targets matches what a no-learning PODEM delivers.
  EXPECT_GT(r.efficiency_percent(), 85.0);
  EXPECT_GT(r.detected, r.target_faults / 2);
}

TEST(CompactMerge, MergesCompatibleCubes) {
  const TestSet in = TestSet::from_strings({"01XX", "0X1X", "10XX"});
  const TestSet out = compact_merge(in);
  ASSERT_EQ(out.pattern_count(), 2u);
  EXPECT_EQ(out.pattern(0).to_string(), "011X");
  EXPECT_EQ(out.pattern(1).to_string(), "10XX");
}

TEST(CompactMerge, KeepsIncompatibleCubes) {
  const TestSet in = TestSet::from_strings({"01", "10", "11"});
  EXPECT_EQ(compact_merge(in).pattern_count(), 3u);
}

TEST(CompactMerge, EveryOriginalCubeCovered) {
  const TestSet in = TestSet::from_strings(
      {"0XX1", "X0X1", "XX01", "1XX0", "X1X0"});
  const TestSet out = compact_merge(in);
  for (std::size_t i = 0; i < in.pattern_count(); ++i) {
    bool covered = false;
    for (std::size_t j = 0; j < out.pattern_count(); ++j)
      covered = covered || in.pattern(i).compatible_with(out.pattern(j));
    EXPECT_TRUE(covered) << "cube " << i;
  }
}

TEST(CompactReverseOrder, DropsRedundantPatternsKeepsCoverage) {
  circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 12;
  gcfg.num_flops = 16;
  gcfg.num_gates = 150;
  gcfg.seed = 9;
  const Netlist nl = circuit::generate_circuit(gcfg);
  const auto faults = sim::collapsed_fault_list(nl);
  AtpgConfig cfg;
  cfg.compact = false;
  const AtpgResult r = generate_tests(nl, faults, cfg);

  const TestSet compacted = compact_reverse_order(nl, faults, r.tests);
  EXPECT_LE(compacted.pattern_count(), r.tests.pattern_count());
  EXPECT_GT(compacted.pattern_count(), 0u);

  sim::FaultSimulator fsim(nl);
  EXPECT_GE(fsim.run(compacted, faults).coverage_percent(),
            fsim.run(r.tests, faults).coverage_percent() - 1e-9);
}

TEST(CompactReverseOrder, AllUselessPatternsRemoved) {
  const Netlist nl = circuit::samples::s27();
  const auto faults = sim::collapsed_fault_list(nl);
  // Duplicate the same pattern five times: at most one survivor.
  const TestSet dup = TestSet::from_strings(
      {"1010101", "1010101", "1010101", "1010101", "1010101"});
  const TestSet compacted = compact_reverse_order(nl, faults, dup);
  EXPECT_LE(compacted.pattern_count(), 1u);
}

TEST(CompactReverseOrder, PreservesApplicationOrder) {
  const Netlist nl = circuit::samples::s27();
  const auto faults = sim::collapsed_fault_list(nl);
  AtpgConfig cfg;
  cfg.compact = false;
  const AtpgResult r = generate_tests(nl, faults, cfg);
  const TestSet compacted = compact_reverse_order(nl, faults, r.tests);
  // Every kept cube appears in the same relative order as in the input.
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < compacted.pattern_count(); ++i) {
    bool found = false;
    for (; cursor < r.tests.pattern_count(); ++cursor)
      if (r.tests.pattern(cursor) == compacted.pattern(i)) {
        found = true;
        ++cursor;
        break;
      }
    EXPECT_TRUE(found) << "kept cube " << i << " out of order";
  }
}

TEST(RandomFill, RemovesAllX) {
  const TestSet in = TestSet::from_strings({"0XX1", "XXXX"});
  const TestSet out = random_fill(in, 7);
  EXPECT_EQ(out.x_count(), 0u);
  // Care bits preserved.
  EXPECT_EQ(out.at(0, 0), Trit::Zero);
  EXPECT_EQ(out.at(0, 3), Trit::One);
}

TEST(RandomFill, DeterministicPerSeed) {
  const TestSet in = TestSet::from_strings({"XXXXXXXX"});
  EXPECT_EQ(random_fill(in, 3), random_fill(in, 3));
}

}  // namespace
}  // namespace nc::atpg
