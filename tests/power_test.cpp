#include <gtest/gtest.h>

#include "codec/nine_coded.h"
#include "gen/cube_gen.h"
#include "power/fill.h"
#include "power/metrics.h"

namespace nc::power {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

TEST(Fill, ZeroAndOne) {
  const TestSet in = TestSet::from_strings({"0XX1"});
  EXPECT_EQ(fill(in, FillStrategy::kZero).pattern(0).to_string(), "0001");
  EXPECT_EQ(fill(in, FillStrategy::kOne).pattern(0).to_string(), "0111");
}

TEST(Fill, MinTransitionAdoptsNeighbour) {
  const TestSet in = TestSet::from_strings({"1XX0X", "XX1XX"});
  const TestSet out = fill(in, FillStrategy::kMinTransition);
  EXPECT_EQ(out.pattern(0).to_string(), "11100");
  // Leading X adopts the first care bit.
  EXPECT_EQ(out.pattern(1).to_string(), "11111");
}

TEST(Fill, AllXPatternMtFillsZero) {
  const TestSet in = TestSet::from_strings({"XXXX"});
  EXPECT_EQ(fill(in, FillStrategy::kMinTransition).pattern(0).to_string(),
            "0000");
}

TEST(Fill, RandomIsDeterministicPerSeed) {
  const TestSet in = TestSet::from_strings({"XXXXXXXXXX"});
  EXPECT_EQ(fill(in, FillStrategy::kRandom, 5),
            fill(in, FillStrategy::kRandom, 5));
}

TEST(Fill, PreservesCareBits) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 10;
  cfg.width = 100;
  cfg.x_fraction = 0.7;
  const TestSet cubes = gen::generate_cubes(cfg);
  for (FillStrategy s : {FillStrategy::kRandom, FillStrategy::kZero,
                         FillStrategy::kOne, FillStrategy::kMinTransition}) {
    const TestSet filled = fill(cubes, s, 3);
    EXPECT_EQ(filled.x_count(), 0u) << fill_strategy_name(s);
    for (std::size_t p = 0; p < cubes.pattern_count(); ++p)
      EXPECT_TRUE(cubes.pattern(p).covered_by(filled.pattern(p)))
          << fill_strategy_name(s);
  }
}

TEST(Metrics, WeightedTransitionsFormula) {
  // "0101": transitions at j=0,1,2 with weights 3,2,1 -> 6.
  EXPECT_EQ(weighted_transitions(TritVector::from_string("0101")), 6u);
  // "0011": one transition at j=1, weight 2.
  EXPECT_EQ(weighted_transitions(TritVector::from_string("0011")), 2u);
  EXPECT_EQ(weighted_transitions(TritVector::from_string("0000")), 0u);
  EXPECT_EQ(weighted_transitions(TritVector::from_string("1")), 0u);
}

TEST(Metrics, WtmRejectsX) {
  EXPECT_THROW(weighted_transitions(TritVector::from_string("0X1")),
               std::invalid_argument);
}

TEST(Metrics, TotalSumsPatterns) {
  const TestSet ts = TestSet::from_strings({"0101", "0011"});
  EXPECT_EQ(total_weighted_transitions(ts), 8u);
}

TEST(Metrics, TransitionCountIgnoresXBoundaries) {
  EXPECT_EQ(transition_count(TritVector::from_string("0X10")), 1u);
  EXPECT_EQ(transition_count(TritVector::from_string("0101")), 3u);
}

TEST(Metrics, ShiftPowerProfileSmallExample) {
  // "10" into a 2-cell chain: cycle 0 toggles cell0 (0->1); cycle 1 toggles
  // cell0 (1->0) and cell1 (0->1).
  const auto profile = shift_power_profile(TritVector::from_string("10"));
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0], 1u);
  EXPECT_EQ(profile[1], 2u);
}

TEST(Metrics, AllZeroPatternIsFree) {
  const auto profile = shift_power_profile(TritVector::from_string("0000"));
  for (std::size_t t : profile) EXPECT_EQ(t, 0u);
}

TEST(Metrics, AlternatingPatternIsWorstCase) {
  // Shifting 0101... keeps every already-filled cell toggling each cycle:
  // cycle c toggles c cells (the leading 0 into a zero chain is free).
  const auto profile = shift_power_profile(TritVector::from_string("010101"));
  for (std::size_t c = 0; c < profile.size(); ++c) EXPECT_EQ(profile[c], c);
}

TEST(Metrics, ShiftPowerRejectsX) {
  EXPECT_THROW(shift_power_profile(TritVector::from_string("0X")),
               std::invalid_argument);
}

TEST(Metrics, PeakShiftPowerOverSet) {
  const TestSet ts = TestSet::from_strings({"0000", "0101"});
  EXPECT_EQ(peak_shift_power(ts), 3u);
}

TEST(PowerIntegration, MtFillCutsPeakPowerToo) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 20;
  cfg.width = 200;
  cfg.x_fraction = 0.85;
  cfg.seed = 12;
  const TestSet cubes = gen::generate_cubes(cfg);
  const std::size_t random_peak =
      peak_shift_power(fill(cubes, FillStrategy::kRandom, 2));
  const std::size_t mt_peak =
      peak_shift_power(fill(cubes, FillStrategy::kMinTransition));
  EXPECT_LT(mt_peak, random_peak);
}

TEST(PowerIntegration, MtFillBeatsRandomFillOnWtm) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 40;
  cfg.width = 300;
  cfg.x_fraction = 0.85;
  cfg.seed = 9;
  const TestSet cubes = gen::generate_cubes(cfg);
  const std::size_t random_wtm =
      total_weighted_transitions(fill(cubes, FillStrategy::kRandom, 2));
  const std::size_t mt_wtm = total_weighted_transitions(
      fill(cubes, FillStrategy::kMinTransition));
  EXPECT_LT(mt_wtm, random_wtm / 2);
}

TEST(PowerIntegration, LeftoverXStillFillableAfter9C) {
  // The paper's flow: compress with 9C, decode, and the surviving X bits
  // are available for MT-fill to cut scan power.
  gen::CubeGenConfig cfg;
  cfg.patterns = 20;
  cfg.width = 256;
  cfg.x_fraction = 0.8;
  cfg.seed = 4;
  const TestSet cubes = gen::generate_cubes(cfg);
  const codec::NineCoded coder(16);
  const TritVector td = cubes.flatten();
  const TritVector decoded = coder.decode(coder.encode(td), td.size());
  const TestSet after = TestSet::unflatten(decoded, cubes.pattern_count(),
                                           cubes.pattern_length());
  ASSERT_GT(after.x_count(), 0u);  // leftover don't-cares survived
  const TestSet filled = fill(after, FillStrategy::kMinTransition);
  EXPECT_EQ(filled.x_count(), 0u);
  EXPECT_LE(total_weighted_transitions(filled),
            total_weighted_transitions(fill(after, FillStrategy::kRandom, 1)));
}

}  // namespace
}  // namespace nc::power
