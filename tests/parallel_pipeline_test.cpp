// Differential tests for the parallel sharded pipeline: the parallel paths
// (any jobs, any shard count) must be bit-identical to their serial jobs=1
// counterparts, a 1-shard container must degenerate to the plain codec
// stream, and the pipelined ATE session must report exactly what the serial
// session reports. Plus the determinism guarantee: containers depend only
// on (codec, test set, shard count) -- never on thread count, scheduling or
// repetition.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "atpg/atpg.h"
#include "circuit/samples.h"
#include "codec/nine_coded.h"
#include "codec/sharded.h"
#include "decomp/ate_session.h"
#include "gen/cube_gen.h"
#include "gen/profiles.h"
#include "sim/fault_sim.h"

namespace nc::codec {
namespace {

using bits::TestSet;
using bits::TritVector;

const std::vector<std::size_t> kJobSweep = {2, 4, 8};

/// The whole pipeline sweep runs under both codec implementations: the
/// serial-vs-parallel identities must hold for each, and (since the two
/// produce byte-identical TE) the containers themselves must not depend on
/// which one encoded them.
class ParallelPipelineSweep : public ::testing::TestWithParam<CodecImpl> {};

std::vector<std::size_t> shard_sweep(std::size_t patterns) {
  return {1, 3, 16, patterns};
}

/// A small randomized test set (not tied to any profile's structure).
TestSet random_cubes(std::uint64_t seed, std::size_t patterns,
                     std::size_t width, double x_density) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  TestSet ts(patterns, width);
  for (std::size_t p = 0; p < patterns; ++p)
    for (std::size_t c = 0; c < width; ++c) {
      if (uni(rng) < x_density) continue;  // stays X
      ts.set(p, c, bits::trit_from_bit(rng() & 1u));
    }
  return ts;
}

TEST_P(ParallelPipelineSweep, EncodeIsBitIdenticalToSerialOnEveryIscasSet) {
  const NineCoded coder(8, GetParam());
  for (const auto& profile : gen::iscas89_profiles()) {
    const TestSet td = gen::calibrated_cubes(profile, /*seed=*/1);
    for (const std::size_t shards : shard_sweep(td.pattern_count())) {
      const TritVector serial = encode_sharded(coder, td, shards, /*jobs=*/1);
      for (const std::size_t jobs : kJobSweep) {
        const TritVector parallel = encode_sharded(coder, td, shards, jobs);
        ASSERT_TRUE(parallel == serial)
            << profile.name << " shards=" << shards << " jobs=" << jobs;
      }
    }
  }
}

TEST_P(ParallelPipelineSweep, DecodeReproducesSerialDecodeExactly) {
  const NineCoded coder(8, GetParam());
  for (const auto& profile : gen::iscas89_profiles()) {
    const TestSet td = gen::calibrated_cubes(profile, /*seed=*/2);
    for (const std::size_t shards : shard_sweep(td.pattern_count())) {
      const TritVector container = encode_sharded(coder, td, shards);
      const TestSet serial = decode_sharded(coder, container, /*jobs=*/1);
      // The decode is a legal expansion of the cubes (the 9C contract).
      ASSERT_TRUE(td.flatten().covered_by(serial.flatten())) << profile.name;
      for (const std::size_t jobs : kJobSweep) {
        const TestSet parallel = decode_sharded(coder, container, jobs);
        ASSERT_TRUE(parallel == serial)
            << profile.name << " shards=" << shards << " jobs=" << jobs;
      }
    }
  }
}

TEST_P(ParallelPipelineSweep, RandomizedCubeSetsRoundTripAtEveryShardCount) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t patterns = 1 + rng() % 40;
    const std::size_t width = 1 + rng() % 90;
    const double density = (trial % 4) * 0.3;
    const TestSet td = random_cubes(rng(), patterns, width, density);
    const NineCoded coder(trial % 2 == 0 ? 8 : 4, GetParam());
    for (const std::size_t shards : shard_sweep(patterns)) {
      const TritVector serial = encode_sharded(coder, td, shards, 1);
      for (const std::size_t jobs : kJobSweep)
        ASSERT_TRUE(encode_sharded(coder, td, shards, jobs) == serial)
            << "trial " << trial << " shards=" << shards << " jobs=" << jobs;
      const TestSet back = decode_sharded(coder, serial, 4);
      ASSERT_EQ(back.pattern_count(), patterns);
      ASSERT_EQ(back.pattern_length(), width);
      ASSERT_TRUE(td.flatten().covered_by(back.flatten()));
      ASSERT_TRUE(back == decode_sharded(coder, serial, 1));
    }
  }
}

TEST_P(ParallelPipelineSweep, OneShardPayloadEqualsPlainCodecStream) {
  // Index stripping on a 1-shard container must yield exactly the serial
  // codec.encode() of the whole flattened set -- same padding, same bits.
  const NineCoded coder(8, GetParam());
  for (const auto& profile : gen::iscas89_profiles()) {
    const TestSet td = gen::calibrated_cubes(profile, /*seed=*/3);
    const TritVector container = encode_sharded(coder, td, /*shards=*/1, 4);
    ASSERT_TRUE(strip_shard_index(container) == coder.encode(td.flatten()))
        << profile.name;
  }
}

TEST_P(ParallelPipelineSweep, ContainersAreDeterministicAcrossRunsAndThreadCounts) {
  // Same input + same shard count -> byte-identical container, across
  // repeated runs and every thread count (no iteration-order leakage).
  const NineCoded coder(8, GetParam());
  const TestSet td = random_cubes(99, 33, 120, 0.6);
  const TritVector reference = encode_sharded(coder, td, 5, 1);
  for (int run = 0; run < 3; ++run)
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{8}})
      ASSERT_TRUE(encode_sharded(coder, td, 5, jobs) == reference)
          << "run " << run << " jobs " << jobs;
}

TEST(ParallelPipeline, ShardPlanIsBalancedAndPatternAligned) {
  for (const std::size_t patterns : {0u, 1u, 7u, 99u, 100u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 16u, 250u}) {
      const auto plan = shard_plan(patterns, shards);
      ASSERT_GE(plan.size(), 1u);
      ASSERT_LE(plan.size(), std::max<std::size_t>(patterns, 1));
      std::size_t next = 0, lo = patterns, hi = 0;
      for (const auto& [first, count] : plan) {
        EXPECT_EQ(first, next);  // contiguous, in order
        next += count;
        lo = std::min(lo, count);
        hi = std::max(hi, count);
      }
      EXPECT_EQ(next, patterns);    // covers every pattern exactly once
      EXPECT_LE(hi - lo, 1u);       // balanced
      if (patterns > 0 && shards <= patterns) {
        EXPECT_EQ(plan.size(), shards);
      }
    }
  }
}

TEST_P(ParallelPipelineSweep, EmptyAndSinglePatternSetsSurvive) {
  const NineCoded coder(4, GetParam());
  const TestSet empty;
  const TritVector c0 = encode_sharded(coder, empty, 4, 4);
  EXPECT_EQ(decode_sharded(coder, c0, 4).pattern_count(), 0u);

  const TestSet one = random_cubes(5, 1, 17, 0.5);
  const TritVector c1 = encode_sharded(coder, one, 16, 8);
  const TestSet back = decode_sharded(coder, c1, 8);
  EXPECT_TRUE(one.flatten().covered_by(back.flatten()));
}

// ---------------------------------------------------------------- session

struct SessionFixture {
  circuit::Netlist netlist = circuit::samples::s27();
  std::vector<sim::Fault> faults = sim::collapsed_fault_list(netlist);
  bits::TestSet tests;

  SessionFixture() {
    atpg::AtpgConfig cfg;
    tests = atpg::generate_tests(netlist, faults, cfg).tests;
  }
};

TEST_P(ParallelPipelineSweep, PipelinedSessionMatchesSerialSession) {
  SessionFixture fx;
  decomp::SessionConfig serial_cfg;
  serial_cfg.codec_impl = GetParam();
  const decomp::SessionResult serial =
      decomp::run_test_session(fx.netlist, fx.tests, serial_cfg);

  for (const std::size_t jobs : kJobSweep) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                     fx.tests.pattern_count()}) {
      decomp::SessionConfig cfg;
      cfg.codec_impl = GetParam();
      cfg.jobs = jobs;
      cfg.shards = shards;
      const decomp::SessionResult parallel =
          decomp::run_test_session(fx.netlist, fx.tests, cfg);
      EXPECT_EQ(parallel.patterns_applied, serial.patterns_applied);
      EXPECT_EQ(parallel.failing_patterns, serial.failing_patterns);
      EXPECT_EQ(parallel.pattern_failed, serial.pattern_failed);
      EXPECT_TRUE(parallel.device_passes());
      if (shards == 1) {
        // One shard = one TE: the accounting matches the paper's serial
        // model bit for bit, not just the verdicts.
        EXPECT_EQ(parallel.ate_bits, serial.ate_bits);
        EXPECT_EQ(parallel.soc_cycles, serial.soc_cycles);
      }
    }
  }
}

TEST_P(ParallelPipelineSweep, PipelinedSessionDetectsFaultsLikeSerial) {
  // Two guarantees, exercised on faulty devices where the decoded X-fill
  // actually shows up in the verdicts:
  //  1. shards=1 is the serial session: one TE, bit-identical stimulus,
  //     so every per-pattern verdict matches regardless of jobs.
  //  2. For a fixed shard count (>1 re-pads at shard boundaries, which may
  //     legally change X-fills vs the single-TE stream), verdicts are a
  //     pure function of the sharding -- never of jobs or scheduling.
  SessionFixture fx;
  for (std::size_t f = 0; f < fx.faults.size(); f += 3) {
    decomp::SessionConfig serial_cfg;
    serial_cfg.codec_impl = GetParam();
    const decomp::SessionResult serial =
        decomp::run_test_session(fx.netlist, fx.tests, serial_cfg,
                                 fx.faults[f]);

    decomp::SessionConfig one_shard;
    one_shard.codec_impl = GetParam();
    one_shard.jobs = 8;
    one_shard.shards = 1;
    const decomp::SessionResult single = decomp::run_test_session(
        fx.netlist, fx.tests, one_shard, fx.faults[f]);
    EXPECT_EQ(single.pattern_failed, serial.pattern_failed)
        << fx.faults[f].to_string(fx.netlist);
    EXPECT_EQ(single.ate_bits, serial.ate_bits);

    decomp::SessionConfig sharded_ref;
    sharded_ref.codec_impl = GetParam();
    sharded_ref.jobs = 1;
    sharded_ref.shards = 3;
    const decomp::SessionResult reference = decomp::run_test_session(
        fx.netlist, fx.tests, sharded_ref, fx.faults[f]);
    // Sharded or not, the decoded stimulus covers the same cubes, so the
    // fault either fails some pattern in both runs or in neither.
    EXPECT_EQ(reference.failing_patterns > 0, serial.failing_patterns > 0)
        << fx.faults[f].to_string(fx.netlist);
    for (const std::size_t jobs : kJobSweep) {
      decomp::SessionConfig cfg;
      cfg.jobs = jobs;
      cfg.shards = 3;
      const decomp::SessionResult parallel =
          decomp::run_test_session(fx.netlist, fx.tests, cfg, fx.faults[f]);
      EXPECT_EQ(parallel.pattern_failed, reference.pattern_failed)
          << fx.faults[f].to_string(fx.netlist) << " jobs=" << jobs;
      EXPECT_EQ(parallel.ate_bits, reference.ate_bits);
      EXPECT_EQ(parallel.soc_cycles, reference.soc_cycles);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothImpls, ParallelPipelineSweep,
                         ::testing::Values(CodecImpl::kScalar,
                                           CodecImpl::kBitplane),
                         [](const ::testing::TestParamInfo<CodecImpl>& info) {
                           return to_string(info.param);
                         });

// Implementation invariance of the artifacts themselves: a container (and
// a session's full accounting) must not depend on which codec impl
// produced it, across thread counts.
TEST(ParallelPipeline, ContainersAndSessionsAreImplInvariant) {
  const TestSet td = random_cubes(4242, 25, 130, 0.7);
  const NineCoded scalar(8, CodecImpl::kScalar);
  const NineCoded bitplane(8, CodecImpl::kBitplane);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{5}})
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}})
      ASSERT_TRUE(encode_sharded(scalar, td, shards, jobs) ==
                  encode_sharded(bitplane, td, shards, jobs))
          << "shards=" << shards << " jobs=" << jobs;

  SessionFixture fx;
  decomp::SessionConfig cfg_s;
  cfg_s.codec_impl = CodecImpl::kScalar;
  decomp::SessionConfig cfg_b;
  cfg_b.codec_impl = CodecImpl::kBitplane;
  cfg_b.jobs = 4;
  cfg_b.shards = 3;
  cfg_s.jobs = 4;
  cfg_s.shards = 3;
  const auto rs = decomp::run_test_session(fx.netlist, fx.tests, cfg_s);
  const auto rb = decomp::run_test_session(fx.netlist, fx.tests, cfg_b);
  EXPECT_EQ(rs.patterns_applied, rb.patterns_applied);
  EXPECT_EQ(rs.failing_patterns, rb.failing_patterns);
  EXPECT_EQ(rs.ate_bits, rb.ate_bits);
  EXPECT_EQ(rs.soc_cycles, rb.soc_cycles);
}

}  // namespace
}  // namespace nc::codec
