#include "decomp/multi_scan.h"

#include <gtest/gtest.h>

#include "gen/cube_gen.h"

namespace nc::decomp {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using codec::NineCoded;

TestSet sample_td(std::size_t patterns, std::size_t width,
                  std::uint64_t seed) {
  gen::CubeGenConfig cfg;
  cfg.patterns = patterns;
  cfg.width = width;
  cfg.x_fraction = 0.85;
  cfg.seed = seed;
  return gen::generate_cubes(cfg);
}

// The decoded chain content must cover the chain's slice of TD (chain c
// holds pattern cells [c*depth, (c+1)*depth), X-padded at the tail).
void expect_chains_cover_td(const ArchitectureReport& report,
                            const TestSet& td) {
  const std::size_t chains = report.chains;
  const std::size_t depth = (td.pattern_length() + chains - 1) / chains;
  for (std::size_t c = 0; c < chains; ++c) {
    ASSERT_EQ(report.chain_streams[c].size(), td.pattern_count() * depth);
    for (std::size_t row = 0; row < td.pattern_count(); ++row)
      for (std::size_t d = 0; d < depth; ++d) {
        const std::size_t cell = c * depth + d;
        if (cell >= td.pattern_length()) continue;  // pad position
        const Trit want = td.at(row, cell);
        if (!bits::is_care(want)) continue;
        EXPECT_EQ(report.chain_streams[c].get(row * depth + d), want)
            << "chain " << c << " row " << row << " depth " << d;
      }
  }
}

TEST(MultiScan, SinglePinReportShape) {
  const TestSet td = sample_td(10, 96, 1);
  const NineCoded coder(8);
  const ArchitectureReport r = run_multi_scan_single_pin(td, 16, coder, 8);
  EXPECT_EQ(r.ate_pins, 1u);
  EXPECT_EQ(r.decoders, 1u);
  EXPECT_EQ(r.chains, 16u);
  EXPECT_EQ(r.chain_streams.size(), 16u);
}

TEST(MultiScan, SinglePinChainContentsMatchTd) {
  const TestSet td = sample_td(8, 64, 2);
  const NineCoded coder(8);
  expect_chains_cover_td(run_multi_scan_single_pin(td, 8, coder, 4), td);
}

TEST(MultiScan, SinglePinHandlesUnevenWidth) {
  const TestSet td = sample_td(6, 50, 3);  // 50 cells over 8 chains: pad
  const NineCoded coder(8);
  expect_chains_cover_td(run_multi_scan_single_pin(td, 8, coder, 4), td);
}

TEST(MultiScan, SinglePinKeepsSingleScanTestTimeOnAlignedWidth) {
  // Paper claim: Fig 4b does not increase test time vs Fig 4a. With a width
  // that is a multiple of the chain count, both process identical volumes.
  const TestSet td = sample_td(12, 128, 4);
  const NineCoded coder(8);
  const ArchitectureReport a = run_single_scan(td, coder, 8);
  const ArchitectureReport b = run_multi_scan_single_pin(td, 16, coder, 8);
  // Same data volume, same decoder; cycles differ only through the slicing's
  // effect on block statistics -- they stay within a few percent.
  const double ratio = static_cast<double>(b.soc_cycles) /
                       static_cast<double>(a.soc_cycles);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
  EXPECT_EQ(b.ate_pins, a.ate_pins);
}

TEST(MultiScan, BankedRequiresChainMultipleOfK) {
  const TestSet td = sample_td(4, 64, 5);
  const NineCoded coder(8);
  EXPECT_THROW(run_multi_scan_banked(td, 12, coder, 4),
               std::invalid_argument);
  EXPECT_NO_THROW(run_multi_scan_banked(td, 16, coder, 4));
}

TEST(MultiScan, BankedUsesParallelDecoders) {
  const TestSet td = sample_td(10, 128, 6);
  const NineCoded coder(8);
  const ArchitectureReport banked = run_multi_scan_banked(td, 32, coder, 8);
  EXPECT_EQ(banked.ate_pins, 4u);
  EXPECT_EQ(banked.decoders, 4u);
  const ArchitectureReport single_pin =
      run_multi_scan_single_pin(td, 32, coder, 8);
  // Four decoders in parallel: roughly 4x faster than the one-pin variant.
  EXPECT_LT(banked.soc_cycles * 2, single_pin.soc_cycles);
}

TEST(MultiScan, BankedChainContentsMatchTd) {
  const TestSet td = sample_td(6, 64, 7);
  const NineCoded coder(8);
  const ArchitectureReport r = run_multi_scan_banked(td, 16, coder, 4);
  expect_chains_cover_td(r, td);
}

TEST(MultiScan, ZeroChainsRejected) {
  const TestSet td = sample_td(2, 16, 8);
  const NineCoded coder(8);
  EXPECT_THROW(run_multi_scan_single_pin(td, 0, coder, 4),
               std::invalid_argument);
}

TEST(MultiScan, PinCountTradeoffTable) {
  // The Fig. 4 trade-off: (a) 1 pin/1 chain, (b) 1 pin/m chains,
  // (c) m/K pins/m chains with ~K/m of the test time of (b)... report
  // fields exercise the whole comparison the rpct example prints.
  const TestSet td = sample_td(10, 256, 9);
  const NineCoded coder(8);
  const auto a = run_single_scan(td, coder, 8);
  const auto b = run_multi_scan_single_pin(td, 32, coder, 8);
  const auto c = run_multi_scan_banked(td, 32, coder, 8);
  EXPECT_EQ(a.ate_pins, 1u);
  EXPECT_EQ(b.ate_pins, 1u);
  EXPECT_EQ(c.ate_pins, 4u);
  EXPECT_LT(c.soc_cycles, b.soc_cycles);
  EXPECT_GT(c.decoders, b.decoders);
}

}  // namespace
}  // namespace nc::decomp
