// Fleet session manager: determinism (jobs-invariance), kill-and-resume
// bit-identity, the circuit breaker, the per-attempt watchdog, and the NC9J
// journal's refusal to resume from anything it cannot trust.
#include "decomp/fleet.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "atpg/atpg.h"
#include "circuit/samples.h"
#include "core/cancel.h"
#include "sim/fault_sim.h"

namespace nc::decomp {
namespace {

using bits::TestSet;
using circuit::Netlist;

struct Fixture {
  Netlist netlist = circuit::samples::s27();
  std::vector<sim::Fault> faults = sim::collapsed_fault_list(netlist);
  TestSet tests;

  Fixture() {
    atpg::AtpgConfig cfg;
    tests = atpg::generate_tests(netlist, faults, cfg).tests;
  }

  /// A fault the test set provably detects, for the failing-device cases.
  sim::Fault detected_fault() const {
    sim::FaultSimulator fsim(netlist);
    const auto cover = fsim.run(tests, faults);
    for (std::size_t f = 0; f < faults.size(); ++f)
      if (cover.detected[f]) return faults[f];
    throw std::logic_error("no detected fault in fixture");
  }
};

std::vector<DeviceProfile> clean_devices(std::size_t n) {
  return std::vector<DeviceProfile>(n);
}

std::vector<DeviceProfile> noisy_devices(std::size_t n, double flip_rate) {
  std::vector<DeviceProfile> devices(n);
  for (auto& d : devices) d.channel.flip_rate = flip_rate;
  return devices;
}

FleetConfig small_batches() {
  FleetConfig cfg;
  cfg.batch_patterns = 2;  // several batches even on the tiny s27 test set
  cfg.seed = 11;
  return cfg;
}

std::string temp_journal(const char* name) {
  return testing::TempDir() + name;
}

// ------------------------------------------------------------- happy path

TEST(Fleet, CleanFleetAllDevicesPass) {
  Fixture fx;
  const FleetResult r =
      run_fleet(fx.netlist, fx.tests, small_batches(), clean_devices(3));
  ASSERT_EQ(r.devices.size(), 3u);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.passed, 3u);
  EXPECT_EQ(r.failed + r.quarantined + r.aborted, 0u);
  for (const DeviceResult& d : r.devices) {
    EXPECT_EQ(d.verdict, DeviceVerdict::kPassed);
    EXPECT_EQ(d.session.patterns_applied, fx.tests.pattern_count());
    EXPECT_EQ(d.session.pattern_failed.size(), fx.tests.pattern_count());
    EXPECT_EQ(d.watchdog_trips, 0u);
    EXPECT_EQ(d.breaker, BreakerState::kClosed);
  }
}

TEST(Fleet, DefectiveDeviceFailsOthersPass) {
  Fixture fx;
  std::vector<DeviceProfile> devices = clean_devices(3);
  devices[1].fault = fx.detected_fault();
  const FleetResult r =
      run_fleet(fx.netlist, fx.tests, small_batches(), devices);
  EXPECT_EQ(r.devices[0].verdict, DeviceVerdict::kPassed);
  EXPECT_EQ(r.devices[1].verdict, DeviceVerdict::kFailed);
  EXPECT_GT(r.devices[1].session.failing_patterns, 0u);
  EXPECT_EQ(r.devices[2].verdict, DeviceVerdict::kPassed);
  EXPECT_EQ(r.passed, 2u);
  EXPECT_EQ(r.failed, 1u);
}

TEST(Fleet, RejectsBadConfig) {
  Fixture fx;
  FleetConfig cfg = small_batches();
  EXPECT_THROW(run_fleet(fx.netlist, fx.tests, cfg, {}),
               std::invalid_argument);
  cfg.batch_patterns = 0;
  EXPECT_THROW(run_fleet(fx.netlist, fx.tests, cfg, clean_devices(1)),
               std::invalid_argument);
}

// ------------------------------------------------------------ determinism

TEST(Fleet, FingerprintIsReproducible) {
  Fixture fx;
  const FleetConfig cfg = small_batches();
  const auto devices = noisy_devices(4, 2e-3);
  const FleetResult a = run_fleet(fx.netlist, fx.tests, cfg, devices);
  const FleetResult b = run_fleet(fx.netlist, fx.tests, cfg, devices);
  EXPECT_EQ(fleet_fingerprint(a), fleet_fingerprint(b));
}

TEST(Fleet, FingerprintDependsOnSeed) {
  Fixture fx;
  FleetConfig cfg = small_batches();
  const auto devices = noisy_devices(4, 2e-2);
  const FleetResult a = run_fleet(fx.netlist, fx.tests, cfg, devices);
  cfg.seed = 12;
  const FleetResult b = run_fleet(fx.netlist, fx.tests, cfg, devices);
  EXPECT_NE(fleet_fingerprint(a), fleet_fingerprint(b));
}

TEST(Fleet, ResultIndependentOfJobs) {
  Fixture fx;
  FleetConfig cfg = small_batches();
  const auto devices = noisy_devices(5, 5e-3);
  cfg.jobs = 1;
  const std::uint64_t ref =
      fleet_fingerprint(run_fleet(fx.netlist, fx.tests, cfg, devices));
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    cfg.jobs = jobs;
    EXPECT_EQ(fleet_fingerprint(run_fleet(fx.netlist, fx.tests, cfg, devices)),
              ref)
        << "jobs=" << jobs;
  }
}

// -------------------------------------------------------- kill and resume

TEST(Fleet, KillAndResumeIsBitIdentical) {
  Fixture fx;
  const auto devices = noisy_devices(4, 5e-3);

  FleetConfig ref_cfg = small_batches();
  const FleetResult ref = run_fleet(fx.netlist, fx.tests, ref_cfg, devices);
  ASSERT_TRUE(ref.complete);

  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t stop : {std::size_t{1}, std::size_t{3}}) {
      const std::string path = temp_journal("kill_resume.nc9j");
      std::remove(path.c_str());

      FleetConfig cfg = small_batches();
      cfg.jobs = jobs;
      cfg.checkpoint_path = path;
      cfg.stop_after_batches = stop;
      const FleetResult killed = run_fleet(fx.netlist, fx.tests, cfg, devices);
      EXPECT_FALSE(killed.complete);
      EXPECT_EQ(killed.batches_run, stop);
      EXPECT_EQ(killed.checkpoints_written, stop);

      cfg.stop_after_batches = FleetConfig::kNoLimit;
      cfg.resume = true;
      const FleetResult resumed =
          run_fleet(fx.netlist, fx.tests, cfg, devices);
      EXPECT_TRUE(resumed.complete);
      EXPECT_TRUE(resumed.resumed);
      EXPECT_EQ(fleet_fingerprint(resumed), fleet_fingerprint(ref))
          << "jobs=" << jobs << " stop=" << stop;
      std::remove(path.c_str());
    }
  }
}

TEST(Fleet, RepeatedKillsStillConverge) {
  Fixture fx;
  const auto devices = noisy_devices(3, 5e-3);
  FleetConfig ref_cfg = small_batches();
  const std::uint64_t ref =
      fleet_fingerprint(run_fleet(fx.netlist, fx.tests, ref_cfg, devices));

  const std::string path = temp_journal("repeated_kills.nc9j");
  std::remove(path.c_str());
  FleetConfig cfg = small_batches();
  cfg.checkpoint_path = path;
  cfg.resume = true;  // first run: no journal yet -> fresh start
  cfg.stop_after_batches = 1;
  FleetResult last;
  for (int segment = 0; segment < 64; ++segment) {
    last = run_fleet(fx.netlist, fx.tests, cfg, devices);
    if (last.complete) break;
  }
  ASSERT_TRUE(last.complete);
  EXPECT_EQ(fleet_fingerprint(last), ref);
  std::remove(path.c_str());
}

TEST(Fleet, ResumeWithoutJournalStartsFresh) {
  Fixture fx;
  FleetConfig cfg = small_batches();
  cfg.checkpoint_path = temp_journal("never_written.nc9j");
  std::remove(cfg.checkpoint_path.c_str());
  cfg.resume = true;
  const FleetResult r =
      run_fleet(fx.netlist, fx.tests, cfg, clean_devices(2));
  EXPECT_FALSE(r.resumed);
  EXPECT_TRUE(r.complete);
  std::remove(cfg.checkpoint_path.c_str());
}

TEST(Fleet, CompletedJournalResumesToSameResult) {
  Fixture fx;
  const auto devices = noisy_devices(2, 5e-3);
  FleetConfig cfg = small_batches();
  cfg.checkpoint_path = temp_journal("completed.nc9j");
  std::remove(cfg.checkpoint_path.c_str());
  const FleetResult full = run_fleet(fx.netlist, fx.tests, cfg, devices);
  cfg.resume = true;
  const FleetResult again = run_fleet(fx.netlist, fx.tests, cfg, devices);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(fleet_fingerprint(again), fleet_fingerprint(full));
  std::remove(cfg.checkpoint_path.c_str());
}

// ------------------------------------------------------- journal distrust

class FleetJournal : public testing::Test {
 protected:
  void write_journal() {
    // One journal file per test: ctest runs each discovered test as its own
    // process, so a shared name races when the suite runs with -j.
    path_ = temp_journal(
        (std::string("tamper_") +
         testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".nc9j")
            .c_str());
    std::remove(path_.c_str());
    cfg_ = FleetConfig{};
    cfg_.batch_patterns = 2;
    cfg_.seed = 11;
    cfg_.checkpoint_path = path_;
    cfg_.stop_after_batches = 2;
    devices_ = noisy_devices(2, 5e-3);
    const FleetResult killed =
        run_fleet(fx_.netlist, fx_.tests, cfg_, devices_);
    ASSERT_FALSE(killed.complete);
    cfg_.stop_after_batches = FleetConfig::kNoLimit;
    cfg_.resume = true;
  }

  std::vector<char> read_bytes() {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void write_bytes(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Fingerprint of the same fleet run uninterrupted and unjournalled;
  /// fingerprints exclude checkpoint bookkeeping, so any successful resume
  /// must reproduce this exactly.
  std::uint64_t reference_fingerprint() {
    FleetConfig ref = cfg_;
    ref.resume = false;
    ref.checkpoint_path.clear();
    return fleet_fingerprint(run_fleet(fx_.netlist, fx_.tests, ref, devices_));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  Fixture fx_;
  FleetConfig cfg_;
  std::vector<DeviceProfile> devices_;
  std::string path_;
};

// The journal is append-only with a CRC per record: damage to the newest
// record (a kill mid-append, a flipped bit in the tail) costs at most one
// batch of replay and still converges to the uninterrupted result. Damage
// further back leaves no trustworthy checkpoint and must be rejected.
TEST_F(FleetJournal, CorruptTailFallsBackToPreviousCheckpoint) {
  write_journal();
  std::vector<char> bytes = read_bytes();
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
  write_bytes(bytes);
  const FleetResult resumed = run_fleet(fx_.netlist, fx_.tests, cfg_, devices_);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(fleet_fingerprint(resumed), reference_fingerprint());
}

TEST_F(FleetJournal, TornTailFallsBackToPreviousCheckpoint) {
  write_journal();
  std::vector<char> bytes = read_bytes();
  bytes.resize(bytes.size() - 7);  // kill mid-append of the newest record
  write_bytes(bytes);
  const FleetResult resumed = run_fleet(fx_.netlist, fx_.tests, cfg_, devices_);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(fleet_fingerprint(resumed), reference_fingerprint());
}

TEST_F(FleetJournal, CorruptionBeforeTheTailIsRejected) {
  write_journal();
  std::vector<char> bytes = read_bytes();
  // Flip a byte in the first record, just past the 13-byte header: every
  // checkpoint from there on is untrusted, so nothing valid remains.
  bytes[20] = static_cast<char>(bytes[20] ^ 0x40);
  write_bytes(bytes);
  EXPECT_THROW(run_fleet(fx_.netlist, fx_.tests, cfg_, devices_),
               std::runtime_error);
}

TEST_F(FleetJournal, TruncationIntoHeaderIsRejected) {
  write_journal();
  std::vector<char> bytes = read_bytes();
  bytes.resize(6);
  write_bytes(bytes);
  EXPECT_THROW(run_fleet(fx_.netlist, fx_.tests, cfg_, devices_),
               std::runtime_error);
}

TEST_F(FleetJournal, HeaderWithNoRecordsIsRejected) {
  write_journal();
  std::vector<char> bytes = read_bytes();
  bytes.resize(13);  // magic + version + config hash, zero records
  write_bytes(bytes);
  EXPECT_THROW(run_fleet(fx_.netlist, fx_.tests, cfg_, devices_),
               std::runtime_error);
}

TEST_F(FleetJournal, BadMagicIsRejected) {
  write_journal();
  std::vector<char> bytes = read_bytes();
  bytes[0] = 'X';
  write_bytes(bytes);
  EXPECT_THROW(run_fleet(fx_.netlist, fx_.tests, cfg_, devices_),
               std::runtime_error);
}

TEST_F(FleetJournal, DifferentConfigurationIsRejected) {
  write_journal();
  cfg_.seed = 999;  // not the configuration the journal was written under
  EXPECT_THROW(run_fleet(fx_.netlist, fx_.tests, cfg_, devices_),
               std::runtime_error);
}

TEST_F(FleetJournal, DifferentDeviceListIsRejected) {
  write_journal();
  devices_.push_back(DeviceProfile{});
  EXPECT_THROW(run_fleet(fx_.netlist, fx_.tests, cfg_, devices_),
               std::runtime_error);
}

// -------------------------------------------------- breaker and watchdog

TEST(Fleet, BreakerQuarantinesDeadLinkAndSparesTheRest) {
  Fixture fx;
  std::vector<DeviceProfile> devices = clean_devices(3);
  devices[1].channel.flip_rate = 0.45;  // hopeless link

  FleetConfig cfg = small_batches();
  cfg.retry.max_retries = 1;
  cfg.breaker.open_after = 2;
  cfg.breaker.probe_after = 1;
  const FleetResult r = run_fleet(fx.netlist, fx.tests, cfg, devices);

  EXPECT_EQ(r.devices[0].verdict, DeviceVerdict::kPassed);
  EXPECT_EQ(r.devices[2].verdict, DeviceVerdict::kPassed);
  const DeviceResult& sick = r.devices[1];
  EXPECT_GT(sick.breaker_opens, 0u);
  EXPECT_GT(sick.patterns_skipped, 0u);
  EXPECT_NE(sick.verdict, DeviceVerdict::kPassed);
  // Quarantine costs the sick device coverage, never the healthy ones.
  EXPECT_EQ(r.devices[0].session.patterns_applied, fx.tests.pattern_count());
  EXPECT_EQ(r.devices[2].session.patterns_applied, fx.tests.pattern_count());
}

TEST(Fleet, HalfOpenProbeRecloses) {
  Fixture fx;
  // The breaker opens on real corruption, then the probe (one clean
  // transmission, since the per-batch reseed gives each batch a fresh
  // stream) may reclose it. With an aggressive open_after and a mild
  // channel the breaker must cycle: some probes happen and succeed.
  FleetConfig cfg;
  cfg.batch_patterns = 2;
  cfg.seed = 5;
  cfg.retry.max_retries = 0;
  cfg.breaker.open_after = 1;
  cfg.breaker.probe_after = 1;

  // The exact corruption odds depend on per-pattern TE lengths, so scan a
  // few rates: the full open -> half-open -> closed cycle must be
  // reachable at some of them (each individual run stays deterministic).
  bool cycled = false;
  for (const double rate : {0.01, 0.02, 0.04, 0.08, 0.15, 0.25}) {
    std::vector<DeviceProfile> devices = clean_devices(1);
    devices[0].channel.flip_rate = rate;
    const FleetResult r = run_fleet(fx.netlist, fx.tests, cfg, devices);
    const DeviceResult& d = r.devices[0];
    EXPECT_LE(d.probe_successes, d.probes);
    EXPECT_LE(d.probes, d.breaker_opens + 1);  // one probe per open window
    if (d.breaker_opens > 0 && d.probe_successes > 0) {
      cycled = true;
      break;
    }
  }
  EXPECT_TRUE(cycled) << "no scanned rate exhibited open -> probe -> close";
}

TEST(Fleet, TinyWatchdogBudgetTripsEveryDecode) {
  Fixture fx;
  FleetConfig cfg = small_batches();
  cfg.watchdog_steps = 2;  // below the cost of even one block
  cfg.retry.max_retries = 1;
  const FleetResult r =
      run_fleet(fx.netlist, fx.tests, cfg, clean_devices(2));
  EXPECT_TRUE(r.complete);  // bounded: trips, never hangs
  EXPECT_GT(r.watchdog_trips, 0u);
  for (const DeviceResult& d : r.devices) {
    EXPECT_NE(d.verdict, DeviceVerdict::kPassed);
    EXPECT_EQ(d.session.patterns_applied, 0u);
    // Fail-safe: every unstreamed pattern is recorded as failed.
    for (std::size_t p = 0; p < d.session.pattern_failed.size(); ++p)
      EXPECT_TRUE(d.session.pattern_failed[p]);
  }
}

TEST(Fleet, AbortAfterAbortsOnlyTheDevice) {
  Fixture fx;
  std::vector<DeviceProfile> devices = clean_devices(2);
  devices[0].channel.flip_rate = 0.45;

  FleetConfig cfg = small_batches();
  cfg.retry.max_retries = 0;
  cfg.breaker.open_after = 1000;  // keep the breaker out of the way
  cfg.retry.abort_after = 1;
  const FleetResult r = run_fleet(fx.netlist, fx.tests, cfg, devices);
  EXPECT_EQ(r.devices[0].verdict, DeviceVerdict::kAborted);
  EXPECT_EQ(r.devices[1].verdict, DeviceVerdict::kPassed);
  EXPECT_EQ(r.devices[1].session.patterns_applied, fx.tests.pattern_count());
  EXPECT_EQ(r.aborted, 1u);
}

TEST(Fleet, CancelStopsAtBatchBoundary) {
  Fixture fx;
  core::CancelToken cancel;
  cancel.cancel();
  FleetConfig cfg = small_batches();
  cfg.cancel = &cancel;
  const FleetResult r =
      run_fleet(fx.netlist, fx.tests, cfg, clean_devices(2));
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.batches_run, 0u);
}

}  // namespace
}  // namespace nc::decomp
