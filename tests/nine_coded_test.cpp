#include "codec/nine_coded.h"

#include <gtest/gtest.h>

namespace nc::codec {
namespace {

using bits::TritVector;

TEST(NineCoded, RejectsBadBlockSize) {
  EXPECT_THROW(NineCoded(0), std::invalid_argument);
  EXPECT_THROW(NineCoded(7), std::invalid_argument);
  EXPECT_NO_THROW(NineCoded(2));
  EXPECT_NO_THROW(NineCoded(48));
}

TEST(NineCoded, NameIncludesK) {
  EXPECT_EQ(NineCoded(8).name(), "9C(K=8)");
}

TEST(NineCoded, EncodesAllZeroBlockToSingleBit) {
  const NineCoded nc(8);
  const TritVector te = nc.encode(TritVector::from_string("00000000"));
  EXPECT_EQ(te.to_string(), "0");
}

TEST(NineCoded, EncodesAllOneBlock) {
  const NineCoded nc(8);
  EXPECT_EQ(nc.encode(TritVector::from_string("11111111")).to_string(), "10");
}

TEST(NineCoded, EncodesC3AndC4) {
  const NineCoded nc(8);
  EXPECT_EQ(nc.encode(TritVector::from_string("0X0X1111")).to_string(),
            "11010");
  EXPECT_EQ(nc.encode(TritVector::from_string("11XX00X0")).to_string(),
            "11011");
}

TEST(NineCoded, MixedBlockCarriesMismatchHalfVerbatim) {
  const NineCoded nc(8);
  // Left 0-compatible, right mismatch "01X0" -> C5 + payload (X preserved).
  EXPECT_EQ(nc.encode(TritVector::from_string("0X0001X0")).to_string(),
            "11100" "01X0");
}

TEST(NineCoded, FullMismatchCarriesWholeBlock) {
  const NineCoded nc(8);
  EXPECT_EQ(nc.encode(TritVector::from_string("01XX10X1")).to_string(),
            "1100" "01XX10X1");
}

TEST(NineCoded, DecodeReproducesUniformBlocks) {
  const NineCoded nc(8);
  const TritVector td = TritVector::from_string("0000000011111111");
  EXPECT_EQ(nc.decode(nc.encode(td), td.size()), td);
}

TEST(NineCoded, DecodeFillsXInMatchedHalves) {
  const NineCoded nc(8);
  const TritVector td = TritVector::from_string("0X0XXXX1");
  // Block is C2-incompatible (has 0), C1-incompatible (has 1)... actually
  // left is 0-compatible, right is 1-compatible -> C3: left fills 0, right 1.
  const TritVector d = nc.decode(nc.encode(td), td.size());
  EXPECT_EQ(d.to_string(), "00001111");
  EXPECT_TRUE(td.covered_by(d));
}

TEST(NineCoded, DecodePreservesLeftoverX) {
  const NineCoded nc(8);
  const TritVector td = TritVector::from_string("XXXX01XX");
  const TritVector d = nc.decode(nc.encode(td), td.size());
  EXPECT_EQ(d.to_string(), "000001XX");
}

TEST(NineCoded, PadsTailBlockAndTruncatesOnDecode) {
  const NineCoded nc(8);
  const TritVector td = TritVector::from_string("0110");  // half a block
  const TritVector te = nc.encode(td);
  const TritVector d = nc.decode(te, td.size());
  ASSERT_EQ(d.size(), 4u);
  EXPECT_TRUE(td.covered_by(d));
}

TEST(NineCoded, StatsCountsMatchPaperFormula) {
  const NineCoded nc(8);
  // Two C1 blocks, one C5 block, one C9 block.
  const TritVector td = TritVector::from_string(
      "00000000" "XXXXXXXX" "000001X0" "01X001X0");
  const NineCodedStats s = nc.analyze(td);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[4], 1u);
  EXPECT_EQ(s.counts[8], 1u);
  EXPECT_EQ(s.blocks(), 4u);
  // |TE| = N1*1 + N5*(5+4) + N9*(4+8)
  EXPECT_EQ(s.encoded_bits, 2u * 1 + 1u * 9 + 1u * 12);
  EXPECT_EQ(s.original_bits, 32u);
  EXPECT_EQ(s.padded_bits, 32u);
  // Leftover X: one in the C5 payload, two in the C9 payload.
  EXPECT_EQ(s.leftover_x, 3u);
  // Filled X: 8 in the all-X C1 block, 1 in the C5 matched half ("000 0" has
  // none)... the C5 left half "0000" has none; all-X block has 8.
  EXPECT_EQ(s.filled_x, 8u);
}

TEST(NineCoded, CompressionRatioMatchesDefinition) {
  NineCodedStats s;
  s.original_bits = 100;
  s.encoded_bits = 40;
  EXPECT_DOUBLE_EQ(s.compression_ratio(), 60.0);
}

TEST(NineCoded, NegativeCompressionPossible) {
  const NineCoded nc(4);
  // Dense alternating data expands: every block is C9 (cost 4+K).
  const TritVector td = TritVector::from_string("0110011001100110");
  const NineCodedStats s = nc.analyze(td);
  EXPECT_LT(s.compression_ratio(), 0.0);
}

TEST(NineCoded, LeftoverXPercent) {
  NineCodedStats s;
  s.original_bits = 200;
  s.leftover_x = 30;
  EXPECT_DOUBLE_EQ(s.leftover_x_percent(), 15.0);
}

TEST(NineCoded, AnalyzeAndEncodeAgree) {
  const NineCoded nc(8);
  const TritVector td = TritVector::from_string(
      "0000XXXX" "11XX11XX" "01100110" "XXXXXXXX");
  TritVector via_analyze;
  const NineCodedStats s = nc.analyze(td, &via_analyze);
  EXPECT_EQ(via_analyze, nc.encode(td));
  EXPECT_EQ(s.encoded_bits, via_analyze.size());
}

TEST(NineCoded, TunedForReassignsWhenOrderViolated) {
  // Construct TD where C8 blocks outnumber C9 blocks.
  std::string s;
  for (int i = 0; i < 10; ++i) s += "01X01111";  // C8
  for (int i = 0; i < 2; ++i) s += "01100110";   // C9
  const bits::TritVector td = bits::TritVector::from_string(s);
  const NineCoded tuned = NineCoded::tuned_for(td, 8);
  // C8 dominates (10 blocks) so it takes the 1-bit slot; C9 takes 2 bits.
  EXPECT_EQ(tuned.table().length(BlockClass::kC8), 1u);
  EXPECT_EQ(tuned.table().length(BlockClass::kC9), 2u);
  // Tuned coder still round-trips.
  const bits::TritVector d = tuned.decode(tuned.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
  // And compresses at least as well as the standard coder on this TD.
  const NineCoded std_coder(8);
  EXPECT_LE(tuned.encode(td).size(), std_coder.encode(td).size());
}

TEST(NineCoded, DecodeThrowsOnCorruptStream) {
  const NineCoded nc(8);
  // "11" followed by end of stream: no codeword can complete.
  try {
    nc.decode(bits::TritVector::from_string("11"), 8);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.fault(), DecodeFault::kTruncated);
    EXPECT_EQ(e.block_index(), 0u);
  }
}

TEST(NineCoded, EmptyInput) {
  const NineCoded nc(8);
  const TritVector te = nc.encode(TritVector{});
  EXPECT_TRUE(te.empty());
  EXPECT_TRUE(nc.decode(te, 0).empty());
}

}  // namespace
}  // namespace nc::codec
