#include "codec/block_class.h"

#include <gtest/gtest.h>

namespace nc::codec {
namespace {

using bits::TritVector;

BlockClass classify(const std::string& block) {
  const TritVector v = TritVector::from_string(block);
  return classify_block(v, 0, v.size());
}

TEST(ClassifyHalf, AllZeroIsZeroCompatibleOnly) {
  const TritVector v = TritVector::from_string("0000");
  const HalfKind k = classify_half(v, 0, 4);
  EXPECT_TRUE(k.zero_compatible);
  EXPECT_FALSE(k.one_compatible);
  EXPECT_FALSE(k.mismatch());
}

TEST(ClassifyHalf, AllXIsBothCompatible) {
  const TritVector v = TritVector::from_string("XXXX");
  const HalfKind k = classify_half(v, 0, 4);
  EXPECT_TRUE(k.zero_compatible);
  EXPECT_TRUE(k.one_compatible);
}

TEST(ClassifyHalf, MixedIsMismatch) {
  const TritVector v = TritVector::from_string("0X1X");
  EXPECT_TRUE(classify_half(v, 0, 4).mismatch());
}

TEST(ClassifyHalf, RespectsOffsetAndLength) {
  const TritVector v = TritVector::from_string("11110000");
  EXPECT_FALSE(classify_half(v, 0, 4).zero_compatible);
  EXPECT_TRUE(classify_half(v, 4, 4).zero_compatible);
}

// Paper Table I, K=8 example rows.
TEST(ClassifyBlock, PaperTableICases) {
  EXPECT_EQ(classify("00000000"), BlockClass::kC1);
  EXPECT_EQ(classify("11111111"), BlockClass::kC2);
  EXPECT_EQ(classify("00001111"), BlockClass::kC3);
  EXPECT_EQ(classify("11110000"), BlockClass::kC4);
  EXPECT_EQ(classify("00000110"), BlockClass::kC5);
  EXPECT_EQ(classify("01100000"), BlockClass::kC6);
  EXPECT_EQ(classify("11110110"), BlockClass::kC7);
  EXPECT_EQ(classify("01101111"), BlockClass::kC8);
  EXPECT_EQ(classify("01100110"), BlockClass::kC9);
}

// Don't-cares must match the cheapest case (paper: 00, 0X, X0, XX are all C1;
// X-only blocks prefer C1 over C2).
TEST(ClassifyBlock, XResolvesToCheapestCase) {
  EXPECT_EQ(classify("XXXXXXXX"), BlockClass::kC1);
  EXPECT_EQ(classify("0X0XXXX0"), BlockClass::kC1);
  EXPECT_EQ(classify("1XXXXXX1"), BlockClass::kC2);
  EXPECT_EQ(classify("XXXX1111"), BlockClass::kC2);  // C2 (2b) beats C3 (5b)
  EXPECT_EQ(classify("1111XXXX"), BlockClass::kC2);  // C2 (2b) beats C4 (5b)
}

TEST(ClassifyBlock, MixedHalvesPreferZeroVariant) {
  // Right half mismatch, left half all-X: C5 (left-as-0s) not C7.
  EXPECT_EQ(classify("XXXX01XX"), BlockClass::kC5);
  // Left half mismatch, right all-X: C6 not C8.
  EXPECT_EQ(classify("01XXXXXX"), BlockClass::kC6);
}

TEST(ClassifyBlock, WorksForOtherK) {
  EXPECT_EQ(classify("0X"), BlockClass::kC1);
  EXPECT_EQ(classify("10"), BlockClass::kC4);
  EXPECT_EQ(classify("0110"), BlockClass::kC9);
  EXPECT_EQ(classify("0000000000000001"), BlockClass::kC5);
}

TEST(ClassifyBlock, K2NeverMismatches) {
  // A 1-trit half cannot contain both a 0 and a 1.
  for (const char* s : {"00", "01", "10", "11", "0X", "X1", "XX"}) {
    const BlockClass c = classify(s);
    EXPECT_LE(static_cast<int>(c), static_cast<int>(BlockClass::kC4)) << s;
  }
}

TEST(PayloadTrits, MatchesTableI) {
  EXPECT_EQ(payload_trits(BlockClass::kC1, 8), 0u);
  EXPECT_EQ(payload_trits(BlockClass::kC4, 8), 0u);
  EXPECT_EQ(payload_trits(BlockClass::kC5, 8), 4u);
  EXPECT_EQ(payload_trits(BlockClass::kC8, 16), 8u);
  EXPECT_EQ(payload_trits(BlockClass::kC9, 8), 8u);
}

TEST(UniformFill, MatchesCaseDefinitions) {
  EXPECT_EQ(uniform_fill(BlockClass::kC1), (std::array<bool, 2>{false, false}));
  EXPECT_EQ(uniform_fill(BlockClass::kC2), (std::array<bool, 2>{true, true}));
  EXPECT_EQ(uniform_fill(BlockClass::kC3), (std::array<bool, 2>{false, true}));
  EXPECT_EQ(uniform_fill(BlockClass::kC4), (std::array<bool, 2>{true, false}));
}

TEST(MixedShape, MatchesCaseDefinitions) {
  EXPECT_FALSE(mixed_shape(BlockClass::kC5).uniform_value);
  EXPECT_FALSE(mixed_shape(BlockClass::kC5).mismatch_is_left);
  EXPECT_FALSE(mixed_shape(BlockClass::kC6).uniform_value);
  EXPECT_TRUE(mixed_shape(BlockClass::kC6).mismatch_is_left);
  EXPECT_TRUE(mixed_shape(BlockClass::kC7).uniform_value);
  EXPECT_FALSE(mixed_shape(BlockClass::kC7).mismatch_is_left);
  EXPECT_TRUE(mixed_shape(BlockClass::kC8).uniform_value);
  EXPECT_TRUE(mixed_shape(BlockClass::kC8).mismatch_is_left);
}

TEST(CaseNumber, OneBased) {
  EXPECT_EQ(case_number(BlockClass::kC1), 1u);
  EXPECT_EQ(case_number(BlockClass::kC9), 9u);
}

}  // namespace
}  // namespace nc::codec
