#include "decomp/decoder_fsm.h"

#include <gtest/gtest.h>

#include "codec/codeword_table.h"

namespace nc::decomp {
namespace {

using codec::BlockClass;
using codec::CodewordTable;

// Feeds the bit string through recognition states; returns the final step.
FsmStep recognize(const std::string& bits) {
  FsmState state = FsmState::kIdle;
  FsmStep step;
  for (char c : bits) {
    step = fsm_step(state, c == '1', false);
    state = step.next;
  }
  return step;
}

TEST(DecoderFsm, RecognizesEveryStandardCodeword) {
  const CodewordTable table = CodewordTable::standard();
  for (std::size_t c = 0; c < codec::kNumClasses; ++c) {
    const auto cls = static_cast<BlockClass>(c);
    const FsmStep step = recognize(table.at(cls).to_string());
    EXPECT_TRUE(step.recognized) << "C" << c + 1;
    EXPECT_EQ(step.next, FsmState::kHalfA) << "C" << c + 1;
    EXPECT_EQ(plan_class(step.plan_a, step.plan_b), cls) << "C" << c + 1;
  }
}

TEST(DecoderFsm, NoProperPrefixRecognizes) {
  const CodewordTable table = CodewordTable::standard();
  for (std::size_t c = 0; c < codec::kNumClasses; ++c) {
    const std::string word =
        table.at(static_cast<BlockClass>(c)).to_string();
    for (std::size_t len = 1; len < word.size(); ++len) {
      const FsmStep step = recognize(word.substr(0, len));
      EXPECT_FALSE(step.recognized) << word << " prefix length " << len;
    }
  }
}

TEST(DecoderFsm, RecognitionConsumesDataBits) {
  EXPECT_TRUE(fsm_step(FsmState::kIdle, false, false).consumes_data_bit);
  EXPECT_TRUE(fsm_step(FsmState::kSaw11, true, false).consumes_data_bit);
  EXPECT_FALSE(fsm_step(FsmState::kHalfA, false, false).consumes_data_bit);
  EXPECT_FALSE(fsm_step(FsmState::kAck, false, false).consumes_data_bit);
}

TEST(DecoderFsm, HalfStatesWaitForDone) {
  EXPECT_EQ(fsm_step(FsmState::kHalfA, false, false).next, FsmState::kHalfA);
  EXPECT_EQ(fsm_step(FsmState::kHalfA, false, true).next, FsmState::kHalfB);
  EXPECT_EQ(fsm_step(FsmState::kHalfB, false, false).next, FsmState::kHalfB);
  EXPECT_EQ(fsm_step(FsmState::kHalfB, false, true).next, FsmState::kAck);
}

TEST(DecoderFsm, AckReturnsToIdle) {
  const FsmStep step = fsm_step(FsmState::kAck, false, false);
  EXPECT_EQ(step.next, FsmState::kIdle);
  EXPECT_TRUE(step.ack);
}

TEST(DecoderFsm, PlanClassRoundTrip) {
  using enum HalfPlan;
  EXPECT_EQ(plan_class(kFill0, kFill0), BlockClass::kC1);
  EXPECT_EQ(plan_class(kFill1, kFill1), BlockClass::kC2);
  EXPECT_EQ(plan_class(kFill0, kFill1), BlockClass::kC3);
  EXPECT_EQ(plan_class(kFill1, kFill0), BlockClass::kC4);
  EXPECT_EQ(plan_class(kFill0, kData), BlockClass::kC5);
  EXPECT_EQ(plan_class(kData, kFill0), BlockClass::kC6);
  EXPECT_EQ(plan_class(kFill1, kData), BlockClass::kC7);
  EXPECT_EQ(plan_class(kData, kFill1), BlockClass::kC8);
  EXPECT_EQ(plan_class(kData, kData), BlockClass::kC9);
}

TEST(DecoderFsm, MaxFiveCyclesPerCodeword) {
  // Paper: "maximum of five cycles are required for the longest codeword."
  const CodewordTable table = CodewordTable::standard();
  for (std::size_t c = 0; c < codec::kNumClasses; ++c)
    EXPECT_LE(table.at(static_cast<BlockClass>(c)).length, 5u);
}

}  // namespace
}  // namespace nc::decomp
