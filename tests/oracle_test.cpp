// The exhaustive oracle itself, then the headline property: PODEM's
// testable/untestable verdicts agree with exhaustive ground truth on every
// collapsed fault of many small random circuits.
#include "atpg/oracle.h"

#include <gtest/gtest.h>

#include "atpg/podem.h"
#include "circuit/bench_io.h"
#include "circuit/generator.h"
#include "circuit/samples.h"
#include "sim/fault_sim.h"

namespace nc::atpg {
namespace {

using bits::TestSet;
using circuit::Netlist;
using sim::Fault;

TEST(Oracle, FindsKnownTest) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  const auto cube =
      oracle_find_test(nl, Fault{nl.find("y"), Netlist::npos, 0, false});
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(cube->to_string(), "11");
}

TEST(Oracle, ProvesRedundantFaultUntestable) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n");
  EXPECT_FALSE(
      oracle_find_test(nl, Fault{nl.find("y"), Netlist::npos, 0, true})
          .has_value());
}

TEST(Oracle, RejectsWideCircuits) {
  circuit::GeneratorConfig cfg;
  cfg.num_inputs = 20;
  cfg.num_flops = 10;
  const Netlist nl = circuit::generate_circuit(cfg);
  EXPECT_THROW(
      oracle_find_test(nl, Fault{0, Netlist::npos, 0, false}),
      std::invalid_argument);
}

TEST(Oracle, ReturnedTestActuallyDetects) {
  const Netlist nl = circuit::samples::s27();
  sim::FaultSimulator fsim(nl);
  for (const Fault& f : sim::collapsed_fault_list(nl)) {
    const auto cube = oracle_find_test(nl, f);
    ASSERT_TRUE(cube.has_value()) << f.to_string(nl);
    TestSet one(1, cube->size());
    one.set_pattern(0, *cube);
    EXPECT_TRUE(fsim.run(one, {f}).detected[0]) << f.to_string(nl);
  }
}

// The headline cross-check: PODEM == exhaustive truth on random circuits.
class PodemVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(PodemVsOracle, VerdictsAgreeOnEveryCollapsedFault) {
  circuit::GeneratorConfig cfg;
  cfg.num_inputs = 6;
  cfg.num_flops = 6;
  cfg.num_gates = 60;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = circuit::generate_circuit(cfg);

  Podem podem(nl, /*max_backtracks=*/1u << 14);
  sim::FaultSimulator fsim(nl);
  std::size_t aborted = 0;
  for (const Fault& f : sim::collapsed_fault_list(nl)) {
    const PodemResult r = podem.generate(f);
    const auto truth = oracle_find_test(nl, f);
    switch (r.outcome) {
      case PodemOutcome::kTestFound: {
        ASSERT_TRUE(truth.has_value())
            << "PODEM found a test for the untestable " << f.to_string(nl);
        TestSet one(1, r.cube.size());
        one.set_pattern(0, r.cube);
        EXPECT_TRUE(fsim.run(one, {f}).detected[0]) << f.to_string(nl);
        break;
      }
      case PodemOutcome::kUntestable:
        EXPECT_FALSE(truth.has_value())
            << "PODEM called the testable fault " << f.to_string(nl)
            << " untestable";
        break;
      case PodemOutcome::kAborted:
        ++aborted;  // inconclusive is allowed, just not wrong
        break;
    }
  }
  // With a 16k backtrack budget on 12-input cones, aborts should be rare.
  EXPECT_LE(aborted, 2u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemVsOracle, ::testing::Range(1, 9));

}  // namespace
}  // namespace nc::atpg
