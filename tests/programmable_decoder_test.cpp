#include "decomp/programmable.h"

#include <gtest/gtest.h>

#include "codec/nine_coded.h"
#include "decomp/timing.h"
#include "gen/cube_gen.h"

namespace nc::decomp {
namespace {

using bits::TritVector;
using codec::CodewordTable;
using codec::NineCoded;

TritVector sample_td(std::uint64_t seed) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 20;
  cfg.width = 311;
  cfg.x_fraction = 0.8;
  cfg.seed = seed;
  return gen::generate_cubes(cfg).flatten();
}

TEST(ProgrammableDecoder, MatchesHardwiredDecoderOnStandardTable) {
  const TritVector td = sample_td(1);
  const NineCoded coder(8);
  const TritVector te = coder.encode(td);
  const SingleScanDecoder hardwired(8, 4);
  const ProgrammableDecoder programmable(8, CodewordTable::standard(), 4);
  const DecoderTrace a = hardwired.run(te, td.size());
  const DecoderTrace b = programmable.run(te, td.size());
  EXPECT_EQ(a.scan_stream, b.scan_stream);
  EXPECT_EQ(a.soc_cycles, b.soc_cycles);
  EXPECT_EQ(a.ate_cycles, b.ate_cycles);
  EXPECT_EQ(a.codewords, b.codewords);
}

TEST(ProgrammableDecoder, DecodesFrequencyDirectedStream) {
  const TritVector td = sample_td(2);
  const NineCoded tuned = NineCoded::tuned_for(td, 8);
  const TritVector te = tuned.encode(td);
  const ProgrammableDecoder decoder(8, tuned.table(), 8);
  const DecoderTrace trace = decoder.run(te, td.size());
  EXPECT_TRUE(td.covered_by(trace.scan_stream));
  EXPECT_EQ(trace.scan_stream, tuned.decode(te, td.size()));
}

TEST(ProgrammableDecoder, TimingMatchesAnalyticModelForTunedTable) {
  const TritVector td = sample_td(3);
  const NineCoded tuned = NineCoded::tuned_for(td, 16);
  TritVector te;
  const auto stats = tuned.analyze(td, &te);
  for (unsigned p : {1u, 4u, 16u}) {
    const ProgrammableDecoder decoder(16, tuned.table(), p);
    EXPECT_EQ(decoder.run(te, td.size()).soc_cycles,
              comp_soc_cycles(stats, tuned.table(), p))
        << "p=" << p;
  }
}

TEST(ProgrammableDecoder, RejectsBadParameters) {
  EXPECT_THROW(ProgrammableDecoder(5, CodewordTable::standard(), 4),
               std::invalid_argument);
  EXPECT_THROW(ProgrammableDecoder(8, CodewordTable::standard(), 0),
               std::invalid_argument);
}

TEST(ProgrammableDecoder, WrongTableFailsLoudly) {
  // Decoding a frequency-directed stream with the standard table must not
  // silently produce wrong data: either a care bit differs or the stream
  // desynchronizes and throws.
  const TritVector td = sample_td(4);
  const NineCoded tuned = NineCoded::tuned_for(td, 8);
  if (tuned.table() == CodewordTable::standard())
    GTEST_SKIP() << "tuning kept the standard table on this data";
  const TritVector te = tuned.encode(td);
  const ProgrammableDecoder wrong(8, CodewordTable::standard(), 4);
  try {
    const DecoderTrace trace = wrong.run(te, td.size());
    EXPECT_FALSE(td.covered_by(trace.scan_stream));
  } catch (const std::exception&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace nc::decomp
