#include "circuit/bench_io.h"

#include <gtest/gtest.h>

#include "circuit/samples.h"

namespace nc::circuit {
namespace {

TEST(BenchIo, ParsesC17) {
  const Netlist nl = samples::c17();
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.logic_gate_count(), 6u);
  EXPECT_TRUE(nl.flops().empty());
  const std::size_t g10 = nl.find("G10");
  ASSERT_NE(g10, Netlist::npos);
  EXPECT_EQ(nl.gate(g10).type, GateType::kNand);
  EXPECT_EQ(nl.gate(g10).fanins.size(), 2u);
}

TEST(BenchIo, ParsesS27WithFlops) {
  const Netlist nl = samples::s27();
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.flops().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.logic_gate_count(), 10u);
  EXPECT_EQ(nl.pattern_width(), 7u);
  EXPECT_EQ(nl.response_width(), 4u);
}

TEST(BenchIo, ForwardReferencesAllowed) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = BUF(a)\n");
  EXPECT_EQ(nl.size(), 3u);
}

TEST(BenchIo, CaseInsensitiveKeywords) {
  const Netlist nl = parse_bench_string(
      "input(a)\ninput(b)\noutput(y)\ny = nAnD(a, b)\n");
  EXPECT_EQ(nl.gate(nl.find("y")).type, GateType::kNand);
}

TEST(BenchIo, CommentsAndBlankLines) {
  const Netlist nl = parse_bench_string(
      "# full line comment\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = BUF(a)\n");
  EXPECT_EQ(nl.size(), 2u);
}

TEST(BenchIo, UndefinedSignalThrowsWithLine) {
  try {
    parse_bench_string("INPUT(a)\ny = AND(a, ghost)\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, DuplicateDefinitionThrows) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\ny = BUF(a)\ny = NOT(a)\n"),
      std::runtime_error);
}

TEST(BenchIo, UnknownGateTypeThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = FROB(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, MalformedLineThrows) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), std::runtime_error);
  EXPECT_THROW(parse_bench_string("y = AND(a\n"), std::runtime_error);
}

TEST(BenchIo, OutputOfUndefinedSignalThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(nope)\n"),
               std::runtime_error);
}

TEST(BenchIo, WriteParseRoundTrip) {
  const Netlist original = samples::s27();
  const Netlist reparsed = parse_bench_string(to_bench_string(original));
  ASSERT_EQ(reparsed.size(), original.size());
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.flops().size(), original.flops().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Gate& a = original.gate(i);
    const std::size_t j = reparsed.find(a.name);
    ASSERT_NE(j, Netlist::npos) << a.name;
    EXPECT_EQ(reparsed.gate(j).type, a.type);
    EXPECT_EQ(reparsed.gate(j).fanins.size(), a.fanins.size());
  }
}

}  // namespace
}  // namespace nc::circuit
