#include "circuit/generator.h"

#include <gtest/gtest.h>

#include "circuit/bench_io.h"

namespace nc::circuit {
namespace {

TEST(Generator, ProducesRequestedShape) {
  GeneratorConfig cfg;
  cfg.num_inputs = 12;
  cfg.num_flops = 20;
  cfg.num_gates = 300;
  cfg.num_outputs = 6;
  const Netlist nl = generate_circuit(cfg);
  EXPECT_EQ(nl.inputs().size(), 12u);
  EXPECT_EQ(nl.flops().size(), 20u);
  EXPECT_EQ(nl.logic_gate_count(), 300u);
  // At least the requested outputs; dangling gates are promoted to POs too.
  EXPECT_GE(nl.outputs().size(), 6u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Generator, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  cfg.seed = 42;
  const std::string a = to_bench_string(generate_circuit(cfg));
  const std::string b = to_bench_string(generate_circuit(cfg));
  EXPECT_EQ(a, b);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(to_bench_string(generate_circuit(a)),
            to_bench_string(generate_circuit(b)));
}

TEST(Generator, FlopsFedByGates) {
  GeneratorConfig cfg;
  cfg.num_flops = 5;
  const Netlist nl = generate_circuit(cfg);
  for (std::size_t f : nl.flops()) {
    ASSERT_EQ(nl.gate(f).fanins.size(), 1u);
    const GateType t = nl.gate(nl.gate(f).fanins[0]).type;
    EXPECT_NE(t, GateType::kInput);
    EXPECT_NE(t, GateType::kDff);
  }
}

TEST(Generator, PureCombinationalWhenNoFlops) {
  GeneratorConfig cfg;
  cfg.num_flops = 0;
  const Netlist nl = generate_circuit(cfg);
  EXPECT_TRUE(nl.flops().empty());
  EXPECT_NO_THROW(nl.levelize());
}

TEST(Generator, RejectsDegenerateConfigs) {
  GeneratorConfig no_sources;
  no_sources.num_inputs = 0;
  no_sources.num_flops = 0;
  EXPECT_THROW(generate_circuit(no_sources), std::invalid_argument);

  GeneratorConfig no_gates;
  no_gates.num_gates = 0;
  EXPECT_THROW(generate_circuit(no_gates), std::invalid_argument);

  GeneratorConfig tiny_fanin;
  tiny_fanin.max_fanin = 1;
  EXPECT_THROW(generate_circuit(tiny_fanin), std::invalid_argument);
}

TEST(Generator, ScalesToThousandsOfGates) {
  GeneratorConfig cfg;
  cfg.num_gates = 5000;
  cfg.num_inputs = 35;
  cfg.num_flops = 150;
  const Netlist nl = generate_circuit(cfg);
  EXPECT_EQ(nl.logic_gate_count(), 5000u);
  EXPECT_NO_THROW(nl.validate());
}

}  // namespace
}  // namespace nc::circuit
