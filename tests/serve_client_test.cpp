// RetryingClient behavior against a scripted fake peer: jittered backoff
// retransmits on a virtual clock, retry-budget exhaustion, one-shot hedges,
// reconnect-on-fault re-arming, duplicate accounting, and the
// wait-out-the-backoff handling of retryable typed rejections.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/transport.h"

namespace nc::serve {
namespace {

using std::chrono::milliseconds;

/// The server side of every connection the client's factory opened. Tests
/// script it synchronously: read what the client transmitted, reply (or
/// not, or kill the connection).
class FakePeer {
 public:
  RetryingClient::Connect factory() {
    return [this] {
      auto [client_end, server_end] = make_pipe();
      ends_.push_back(std::move(server_end));
      readers_.push_back(
          std::make_unique<FrameReader>(*ends_.back(), FrameLimits{}));
      return std::move(client_end);
    };
  }

  /// Next frame on the newest connection; nullopt on timeout or a
  /// non-frame result (EOF, protocol error).
  std::optional<Frame> read(milliseconds timeout = milliseconds(1000)) {
    FrameReader::Result r = readers_.back()->read(timeout);
    if (r.status == FrameReader::Status::kFrame) return r.frame;
    last_status_ = r.status;
    return std::nullopt;
  }

  FrameReader::Status last_status() const { return last_status_; }

  void reply(const Frame& f) { write_frame(*ends_.back(), f); }

  void reply_ok(std::uint64_t seq, std::vector<std::uint8_t> payload) {
    Frame f;
    f.type = FrameType::kEncodeReply;
    f.seq = seq;
    f.payload = std::move(payload);
    reply(f);
  }

  void reply_error(std::uint64_t seq, ErrorCode code) {
    Frame f;
    f.type = FrameType::kError;
    f.seq = seq;
    f.payload = error_payload(code, to_string(code));
    reply(f);
  }

  void kill() { ends_.back()->close(); }

  std::size_t connections() const { return ends_.size(); }

 private:
  std::vector<std::unique_ptr<ByteStream>> ends_;
  std::vector<std::unique_ptr<FrameReader>> readers_;
  FrameReader::Status last_status_ = FrameReader::Status::kTimeout;
};

TEST(RetryingClientTest, ReplyResolvesRequestAndStampsDeadline) {
  FakePeer peer;
  RetryPolicy policy;
  policy.request_deadline_ms = 750;
  RetryingClient client(peer.factory(), policy);

  const std::uint64_t seq =
      client.submit(FrameType::kEncodeRequest, {1, 2, 3});
  EXPECT_EQ(client.inflight(), 1u);
  const auto got = peer.read();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, seq);
  EXPECT_EQ(got->deadline_ms, 750u) << "policy deadline must ride the frame";
  EXPECT_EQ(got->payload, (std::vector<std::uint8_t>{1, 2, 3}));

  peer.reply_ok(seq, {9, 9});
  const auto resolved = client.poll(milliseconds(1000));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].first, seq);
  EXPECT_EQ(resolved[0].second.status,
            RetryingClient::Outcome::Status::kReply);
  EXPECT_EQ(resolved[0].second.reply.payload,
            (std::vector<std::uint8_t>{9, 9}));
  EXPECT_EQ(resolved[0].second.transmits, 1u);
  EXPECT_EQ(client.inflight(), 0u);
  client.close();
}

TEST(RetryingClientTest, RetransmitWaitsOutJitteredBackoffOnVirtualClock) {
  core::VirtualClock clock;
  FakePeer peer;
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(100);
  policy.backoff_cap = milliseconds(400);
  policy.clock = &clock;
  policy.seed = 5;
  RetryingClient client(peer.factory(), policy);

  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest, {4});
  ASSERT_TRUE(peer.read().has_value());

  // Virtual time has not moved: the backoff (jittered within [50, 100] ms)
  // cannot be due, so polling must not retransmit.
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().retransmits, 0u);

  clock.advance(milliseconds(101));  // past any jitter draw of backoff 1
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().retransmits, 1u);
  EXPECT_EQ(client.stats().timeouts, 1u);
  ASSERT_TRUE(peer.read().has_value()) << "retransmit did not hit the wire";

  // Backoff doubled to 200 ms: an advance inside [0, 100) must stay quiet.
  clock.advance(milliseconds(90));
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().retransmits, 1u);
  clock.advance(milliseconds(201));
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().retransmits, 2u);
  ASSERT_TRUE(peer.read().has_value());

  peer.reply_ok(seq, {0});
  const auto resolved = client.poll(milliseconds(1000));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.transmits, 3u);
  client.close();
}

TEST(RetryingClientTest, ExhaustsAfterMaxAttempts) {
  core::VirtualClock clock;
  FakePeer peer;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = milliseconds(100);
  policy.clock = &clock;
  RetryingClient client(peer.factory(), policy);

  client.submit(FrameType::kEncodeRequest, {1});
  clock.advance(milliseconds(300));
  client.poll(milliseconds(5));  // second (final) transmit
  EXPECT_EQ(client.stats().retransmits, 1u);

  clock.advance(milliseconds(1000));
  const auto resolved = client.poll(milliseconds(5));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.status,
            RetryingClient::Outcome::Status::kExhausted);
  EXPECT_EQ(resolved[0].second.detail, "retransmit attempts exhausted");
  EXPECT_EQ(resolved[0].second.transmits, 2u);
  EXPECT_EQ(client.inflight(), 0u);
  client.close();
}

TEST(RetryingClientTest, RetryBudgetIsSharedAcrossRequests) {
  core::VirtualClock clock;
  FakePeer peer;
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = milliseconds(100);
  policy.retry_budget = 1;  // ONE retransmit for the whole client
  policy.clock = &clock;
  RetryingClient client(peer.factory(), policy);

  client.submit(FrameType::kEncodeRequest, {1});
  client.submit(FrameType::kEncodeRequest, {2});
  clock.advance(milliseconds(300));
  // First due request spends the budget; the second fails fast instead of
  // independently grinding through its own attempts.
  auto resolved = client.poll(milliseconds(5));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.status,
            RetryingClient::Outcome::Status::kExhausted);
  EXPECT_EQ(resolved[0].second.detail, "client retry budget spent");
  EXPECT_EQ(client.stats().retransmits, 1u);
  EXPECT_EQ(client.stats().budget_denied, 1u);

  clock.advance(milliseconds(1000));
  resolved = client.poll(milliseconds(5));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.detail, "client retry budget spent");
  EXPECT_EQ(client.stats().budget_denied, 2u);
  EXPECT_EQ(client.inflight(), 0u);
  client.close();
}

TEST(RetryingClientTest, HedgeFiresOnceAndCountsAsWin) {
  core::VirtualClock clock;
  FakePeer peer;
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(5000);  // timer stays out of the way
  policy.hedge_after = milliseconds(100);
  policy.clock = &clock;
  RetryingClient client(peer.factory(), policy);

  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest, {7});
  ASSERT_TRUE(peer.read().has_value());

  clock.advance(milliseconds(150));
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().hedges, 1u);
  const auto hedge = peer.read();
  ASSERT_TRUE(hedge.has_value()) << "hedge transmit did not hit the wire";
  EXPECT_EQ(hedge->seq, seq);

  // One duplicate per request, ever: more silence must not hedge again.
  clock.advance(milliseconds(500));
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().hedges, 1u);

  peer.reply_ok(seq, {1});
  const auto resolved = client.poll(milliseconds(1000));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_TRUE(resolved[0].second.hedged);
  EXPECT_TRUE(resolved[0].second.hedge_won);
  EXPECT_EQ(client.stats().hedge_wins, 1u);
  client.close();
}

TEST(RetryingClientTest, ReconnectsOnPeerCloseAndRecovers) {
  FakePeer peer;
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(50);
  RetryingClient client(peer.factory(), policy);
  EXPECT_EQ(peer.connections(), 1u);

  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest, {3});
  ASSERT_TRUE(peer.read().has_value());
  peer.kill();

  // EOF triggers the reconnect; the pending request is re-armed for prompt
  // retransmission on the fresh connection.
  client.poll(milliseconds(500));
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_EQ(peer.connections(), 2u);
  client.poll(milliseconds(5));
  const auto retransmitted = peer.read();
  ASSERT_TRUE(retransmitted.has_value());
  EXPECT_EQ(retransmitted->seq, seq);

  peer.reply_ok(seq, {8});
  const auto resolved = client.poll(milliseconds(1000));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.status,
            RetryingClient::Outcome::Status::kReply);
  client.close();
}

TEST(RetryingClientTest, UnexplainedDuplicateReplyIsCounted) {
  FakePeer peer;
  RetryingClient client(peer.factory(), RetryPolicy{});

  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest, {5});
  ASSERT_TRUE(peer.read().has_value());
  peer.reply_ok(seq, {1});
  ASSERT_EQ(client.poll(milliseconds(1000)).size(), 1u);

  // The request was transmitted exactly once, so a second reply can only
  // be a server-side duplication bug.
  peer.reply_ok(seq, {1});
  client.poll(milliseconds(500));
  EXPECT_EQ(client.stats().duplicates, 1u);
  client.close();
}

TEST(RetryingClientTest, RetryableRejectionWaitsOutBackoffThenRetransmits) {
  core::VirtualClock clock;
  FakePeer peer;
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(100);
  policy.clock = &clock;
  RetryingClient client(peer.factory(), policy);

  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest, {6});
  ASSERT_TRUE(peer.read().has_value());
  peer.reply_error(seq, ErrorCode::kDeadlineExceeded);

  // The rejection is counted but must NOT trigger an inline retransmit --
  // hammering an overloaded server defeats the backoff.
  client.poll(milliseconds(500));
  EXPECT_EQ(client.stats().typed_rejections, 1u);
  EXPECT_EQ(client.stats().deadline_rejections, 1u);
  EXPECT_EQ(client.stats().retransmits, 0u);
  EXPECT_EQ(client.inflight(), 1u) << "retryable rejection must not resolve";

  clock.advance(milliseconds(201));
  client.poll(milliseconds(5));
  EXPECT_EQ(client.stats().retransmits, 1u);
  ASSERT_TRUE(peer.read().has_value());
  peer.reply_ok(seq, {2});
  const auto resolved = client.poll(milliseconds(1000));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.status,
            RetryingClient::Outcome::Status::kReply);
  client.close();
}

TEST(RetryingClientTest, TerminalTypedErrorResolvesImmediately) {
  FakePeer peer;
  RetryingClient client(peer.factory(), RetryPolicy{});
  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest, {1});
  ASSERT_TRUE(peer.read().has_value());
  peer.reply_error(seq, ErrorCode::kBadPayload);  // not retryable
  const auto resolved = client.poll(milliseconds(1000));
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.status,
            RetryingClient::Outcome::Status::kTypedError);
  EXPECT_EQ(resolved[0].second.error, ErrorCode::kBadPayload);
  client.close();
}

TEST(RetryingClientTest, TransmitHookCorruptionIsRecoveredByRetry) {
  core::VirtualClock clock;
  FakePeer peer;
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(100);
  policy.clock = &clock;
  RetryingClient client(peer.factory(), policy);
  int transmit_no = 0;
  client.set_transmit_hook([&transmit_no](std::vector<std::uint8_t> bytes) {
    if (++transmit_no == 1) bytes[bytes.size() / 2] ^= 0x40;
    return bytes;
  });

  const std::uint64_t seq = client.submit(FrameType::kEncodeRequest,
                                          {1, 2, 3, 4, 5, 6, 7, 8});
  // The wire saw a mangled frame: the peer's reader reports a protocol
  // error, answers with a seq-0 frame-layer report...
  EXPECT_FALSE(peer.read(milliseconds(200)).has_value());
  Frame report;
  report.type = FrameType::kError;
  report.seq = 0;
  report.payload = error_payload(ErrorCode::kBadCrc, "crc mismatch");
  peer.reply(report);
  client.poll(milliseconds(500));
  EXPECT_EQ(client.stats().frame_errors, 1u);

  // ...and the retransmit timer recovers the request with clean bytes.
  clock.advance(milliseconds(201));
  client.poll(milliseconds(5));
  const auto retry = peer.read();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->seq, seq);
  peer.reply_ok(seq, {1});
  ASSERT_EQ(client.poll(milliseconds(1000)).size(), 1u);
  client.close();
}

TEST(RetryingClientTest, CallResolvesAgainstLiveResponder) {
  FakePeer peer;
  RetryingClient client(peer.factory(), RetryPolicy{});
  std::thread responder([&peer] {
    const auto req = peer.read(milliseconds(3000));
    if (req.has_value()) peer.reply_ok(req->seq, req->payload);
  });
  const auto outcome = client.call(FrameType::kEncodeRequest, {42},
                                   milliseconds(3000));
  responder.join();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status, RetryingClient::Outcome::Status::kReply);
  EXPECT_EQ(outcome->reply.payload, (std::vector<std::uint8_t>{42}));
  client.close();
}

}  // namespace
}  // namespace nc::serve
