#include "rtl/verilog.h"

#include <gtest/gtest.h>

#include "codec/nine_coded.h"

namespace nc::rtl {
namespace {

using codec::CodewordTable;

TEST(Verilog, RejectsBadK) {
  EXPECT_THROW(generate_decoder_verilog(CodewordTable::standard(), 2),
               std::invalid_argument);
  EXPECT_THROW(generate_decoder_verilog(CodewordTable::standard(), 9),
               std::invalid_argument);
}

TEST(Verilog, ModuleInterface) {
  const std::string v =
      generate_decoder_verilog(CodewordTable::standard(), 8);
  EXPECT_NE(v.find("module ninec_decoder ("), std::string::npos);
  for (const char* port : {"clk", "rst", "ate_tick", "dec_en", "data_in",
                           "ack", "scan_en", "d_out"})
    EXPECT_NE(v.find(port), std::string::npos) << port;
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, StandardTableHasEightRecognitionStates) {
  const std::string v =
      generate_decoder_verilog(CodewordTable::standard(), 8);
  EXPECT_NE(v.find("localparam S_R7"), std::string::npos);
  EXPECT_EQ(v.find("localparam S_R8"), std::string::npos);
  EXPECT_NE(v.find("S_HALF_A"), std::string::npos);
  EXPECT_NE(v.find("S_ACK"), std::string::npos);
}

TEST(Verilog, CommentsListEveryCodeword) {
  const CodewordTable table = CodewordTable::standard();
  const std::string v = generate_decoder_verilog(table, 8);
  for (std::size_t c = 0; c < codec::kNumClasses; ++c) {
    const std::string tag =
        "// C" + std::to_string(c + 1) + " \"" +
        table.at(static_cast<codec::BlockClass>(c)).to_string() + "\"";
    EXPECT_NE(v.find(tag), std::string::npos) << tag;
  }
}

TEST(Verilog, CounterWidthFollowsK) {
  // K=8: half 4 -> 2-bit counter, last = 2'd3. K=32: half 16 -> 4-bit.
  const std::string v8 = generate_decoder_verilog(CodewordTable::standard(), 8);
  EXPECT_NE(v8.find("cnt == 2'd3"), std::string::npos);
  const std::string v32 =
      generate_decoder_verilog(CodewordTable::standard(), 32);
  EXPECT_NE(v32.find("cnt == 4'd15"), std::string::npos);
}

TEST(Verilog, TokensBalanced) {
  for (std::size_t k : {4u, 8u, 16u, 48u}) {
    const std::string v =
        generate_decoder_verilog(CodewordTable::standard(), k);
    EXPECT_TRUE(verilog_tokens_balanced(v)) << "K=" << k;
  }
}

TEST(Verilog, FrequencyDirectedTableEmits) {
  std::array<std::size_t, codec::kNumClasses> counts = {10, 5, 1, 1, 1,
                                                        1, 1, 40, 20};
  const CodewordTable table = CodewordTable::frequency_directed(counts);
  const std::string v = generate_decoder_verilog(table, 8);
  EXPECT_TRUE(verilog_tokens_balanced(v));
  // The 1-bit codeword now belongs to C8: its comment shows codeword "0".
  EXPECT_NE(v.find("// C8 \"0\""), std::string::npos);
}

TEST(Verilog, CustomModuleName) {
  VerilogOptions options;
  options.module_name = "my_dec";
  const std::string v =
      generate_decoder_verilog(CodewordTable::standard(), 8, options);
  EXPECT_NE(v.find("module my_dec ("), std::string::npos);
}

TEST(Verilog, TestbenchInstantiatesDut) {
  const std::string tb =
      generate_decoder_testbench(CodewordTable::standard(), 8, "ninec_decoder");
  EXPECT_NE(tb.find("module ninec_decoder_tb;"), std::string::npos);
  EXPECT_NE(tb.find("ninec_decoder dut ("), std::string::npos);
  EXPECT_TRUE(verilog_tokens_balanced(tb));
}

TEST(VerilogMultiscan, WrapperShape) {
  const std::string v = generate_multiscan_verilog(32, "ninec_decoder");
  EXPECT_NE(v.find("module ninec_multiscan ("), std::string::npos);
  EXPECT_NE(v.find("ninec_decoder decoder ("), std::string::npos);
  EXPECT_NE(v.find("output reg [31:0] slice"), std::string::npos);
  EXPECT_NE(v.find("fill == 5'd31"), std::string::npos);
  EXPECT_TRUE(verilog_tokens_balanced(v));
}

TEST(VerilogMultiscan, RejectsDegenerateChainCount) {
  EXPECT_THROW(generate_multiscan_verilog(1, "d"), std::invalid_argument);
}

TEST(VerilogMultiscan, CustomNames) {
  const std::string v = generate_multiscan_verilog(8, "dec8", "wrap8");
  EXPECT_NE(v.find("module wrap8 ("), std::string::npos);
  EXPECT_NE(v.find("dec8 decoder ("), std::string::npos);
}

TEST(VerilogLint, DetectsImbalance) {
  EXPECT_TRUE(verilog_tokens_balanced("module m (); endmodule"));
  EXPECT_FALSE(verilog_tokens_balanced("module m ();"));
  EXPECT_FALSE(verilog_tokens_balanced("begin begin end"));
  EXPECT_FALSE(verilog_tokens_balanced("case (x) endcase endcase"));
  // Keywords inside comments do not count.
  EXPECT_TRUE(verilog_tokens_balanced(
      "module m (); // begin case\nendmodule"));
  // Keywords inside identifiers do not count.
  EXPECT_TRUE(verilog_tokens_balanced(
      "module m (); wire the_end; endmodule"));
}

}  // namespace
}  // namespace nc::rtl
