// Crash-recovery matrices for the persistent artifact store.
//
// The store's crash contract: a process kill at ANY byte offset of the
// on-disk state loses at most the newest record, never yields a wrong
// payload, and always reopens. Simulated the same way the fleet journal
// suite does it: build a healthy store, then truncate the manifest to every
// possible length (a kill mid-append leaves exactly a prefix, because the
// manifest is append-only) and reopen + verify at each cut. Single-bit
// corruption over segment records must likewise never produce a wrong
// payload: every flip is either caught by the record CRC (degrade to miss +
// tombstone) or lands in dead bytes nothing reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "store/io.h"
#include "store/store.h"

namespace nc::store {
namespace {

namespace fs = std::filesystem;

Key key_of(std::uint64_t n) { return Key{n, ~n}; }

std::vector<std::uint8_t> payload_of(std::uint64_t n, std::size_t len) {
  std::mt19937_64 rng(n * 0x9E3779B97F4A7C15ull + 3);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

std::vector<std::uint8_t> slurp(const fs::path& p) {
  std::FILE* f = std::fopen(p.string().c_str(), "rb");
  EXPECT_NE(f, nullptr) << p;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (!bytes.empty()) {
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
  return bytes;
}

void spew(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(p.string().c_str(), "wb");
  ASSERT_NE(f, nullptr) << p;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

void copy_dir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from))
    fs::copy_file(entry.path(), to / entry.path().filename());
}

class StoreCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = fs::temp_directory_path() /
            (std::string("nc_store_crash_") + info->name());
    work_ = base_.string() + "_work";
    fs::remove_all(base_);
    fs::remove_all(work_);
  }
  void TearDown() override {
    fs::remove_all(base_);
    fs::remove_all(work_);
  }

  StoreConfig config(const fs::path& dir) const {
    StoreConfig c;
    c.dir = dir.string();
    c.auto_compact = false;
    return c;
  }

  fs::path base_;
  fs::path work_;
};

// Kill-at-every-offset over the manifest. For each prefix length from 0 to
// the full file: reopen must succeed, recovered keys must round-trip with
// exact bytes, the number of live keys must be a prefix of the put
// history (lose at most the records whose manifest entries are cut), and a
// repair + rescan must report clean.
TEST_F(StoreCrashTest, ManifestTruncatedAtEveryOffset) {
  constexpr std::uint64_t kKeys = 6;
  {
    Store store(config(base_));
    for (std::uint64_t n = 0; n < kKeys; ++n)
      store.put(key_of(n), payload_of(n, 40 + n * 13));
  }
  const std::vector<std::uint8_t> manifest = slurp(base_ / "manifest.nc9m");
  ASSERT_GT(manifest.size(), 13u);

  std::uint64_t prev_live = 0;
  for (std::size_t cut = 0; cut <= manifest.size(); ++cut) {
    copy_dir(base_, work_);
    std::vector<std::uint8_t> torn(manifest.begin(), manifest.begin() + cut);
    spew(fs::path(work_) / "manifest.nc9m", torn);

    std::uint64_t live = 0;
    {
      Store store(config(work_));  // must never throw: prefix of our own file
      const StoreStats s = store.stats();
      live = s.records;
      // Puts replay in order, so the surviving set is exactly the first
      // `live` keys, each byte-identical.
      for (std::uint64_t n = 0; n < kKeys; ++n) {
        const GetResult got = store.get(key_of(n));
        if (n < live) {
          ASSERT_EQ(got.status, GetStatus::kHit)
              << "cut " << cut << " key " << n;
          ASSERT_EQ(got.payload, payload_of(n, 40 + n * 13))
              << "cut " << cut << " key " << n;
        } else {
          ASSERT_EQ(got.status, GetStatus::kMiss)
              << "cut " << cut << " key " << n;
        }
      }
      // Monotonic in the cut offset; a longer prefix never knows less.
      ASSERT_GE(live, prev_live) << "cut " << cut;
      prev_live = live;

      // The orphaned segment records (puts whose manifest entries were cut)
      // are recoverable, and afterwards the store is clean.
      const FsckReport rep = store.fsck(/*repair=*/true);
      ASSERT_EQ(rep.dangling_entries, 0u) << "cut " << cut;
      ASSERT_EQ(store.stats().records, kKeys) << "cut " << cut;
      ASSERT_TRUE(store.fsck(/*repair=*/false).clean) << "cut " << cut;
      for (std::uint64_t n = 0; n < kKeys; ++n)
        ASSERT_EQ(store.get(key_of(n)).payload, payload_of(n, 40 + n * 13))
            << "cut " << cut << " key " << n;
    }
    // Recovery must itself be recoverable: reopening the repaired directory
    // a second time must see the full repaired state. (Guards the
    // partial-header path in particular -- a recovery that appends a fresh
    // header after surviving torn bytes works once, then bricks the store.)
    {
      Store reopened(config(work_));
      ASSERT_EQ(reopened.stats().records, kKeys) << "cut " << cut;
      for (std::uint64_t n = 0; n < kKeys; ++n) {
        const GetResult got = reopened.get(key_of(n));
        ASSERT_EQ(got.status, GetStatus::kHit) << "cut " << cut << " key " << n;
        ASSERT_EQ(got.payload, payload_of(n, 40 + n * 13))
            << "cut " << cut << " key " << n;
      }
      ASSERT_TRUE(reopened.fsck(/*repair=*/false).clean) << "cut " << cut;
    }
  }
  // The full file loses nothing even before repair.
  EXPECT_EQ(prev_live, kKeys);
}

// Same matrix over a manifest that also carries erase and retire records
// (post-compaction state): any cut must reopen, and no cut may serve a
// wrong payload or resurrect an erased key as a wrong-bytes hit.
TEST_F(StoreCrashTest, ChurnedManifestTruncatedAtEveryOffset) {
  constexpr std::uint64_t kKeys = 8;
  {
    StoreConfig cfg = config(base_);
    cfg.segment_target_bytes = 512;
    Store store(cfg);
    for (std::uint64_t n = 0; n < kKeys; ++n)
      store.put(key_of(n), payload_of(n, 64));
    for (std::uint64_t n = 0; n < kKeys; n += 2) store.erase(key_of(n));
    store.compact(0.0);
  }
  const std::vector<std::uint8_t> manifest = slurp(base_ / "manifest.nc9m");

  for (std::size_t cut = 0; cut <= manifest.size(); ++cut) {
    copy_dir(base_, work_);
    std::vector<std::uint8_t> torn(manifest.begin(), manifest.begin() + cut);
    spew(fs::path(work_) / "manifest.nc9m", torn);

    Store store(config(work_));
    for (std::uint64_t n = 0; n < kKeys; ++n) {
      const GetResult got = store.get(key_of(n));
      if (got.status == GetStatus::kHit) {
        ASSERT_EQ(got.payload, payload_of(n, 64))
            << "cut " << cut << " key " << n;
      }
    }
    // Reopen-after-recovery is stable: a second reopen of the same
    // directory sees the same live set.
    const std::uint64_t live = store.stats().records;
    ASSERT_LE(live, kKeys);
  }
}

// A torn SEGMENT tail (kill between segment append and manifest append
// beyond what truncation models): the dangling manifest entry must degrade,
// not serve garbage.
TEST_F(StoreCrashTest, TornSegmentTailDegradesToMiss) {
  {
    Store store(config(base_));
    store.put(key_of(1), payload_of(1, 100));
    store.put(key_of(2), payload_of(2, 100));
  }
  // Chop the last segment record in half; its manifest entry survives.
  std::vector<std::pair<fs::path, std::uintmax_t>> segs;
  for (const auto& e : fs::directory_iterator(base_))
    if (e.path().extension() == ".nc9a")
      segs.emplace_back(e.path(), fs::file_size(e.path()));
  ASSERT_EQ(segs.size(), 1u);
  fs::resize_file(segs[0].first, segs[0].second - 60);

  Store store(config(base_));
  // Entry dropped at open (offset now out of bounds) or degrades on read;
  // either way: no wrong bytes, first key intact.
  const GetResult got2 = store.get(key_of(2));
  EXPECT_NE(got2.status, GetStatus::kHit);
  const GetResult got1 = store.get(key_of(1));
  ASSERT_EQ(got1.status, GetStatus::kHit);
  EXPECT_EQ(got1.payload, payload_of(1, 100));
  store.fsck(/*repair=*/true);
  EXPECT_TRUE(store.fsck(/*repair=*/false).clean);
}

// Single-bit corruption matrix over the segment file: flip each bit (on a
// byte stride to keep runtime sane, plus every bit of the first record) and
// assert the store never returns a payload that differs from the original.
TEST_F(StoreCrashTest, SegmentBitFlipsNeverYieldWrongPayload) {
  constexpr std::uint64_t kKeys = 3;
  {
    Store store(config(base_));
    for (std::uint64_t n = 0; n < kKeys; ++n)
      store.put(key_of(n), payload_of(n, 50));
  }
  fs::path seg_path;
  for (const auto& e : fs::directory_iterator(base_))
    if (e.path().extension() == ".nc9a") seg_path = e.path();
  ASSERT_FALSE(seg_path.empty());
  const std::vector<std::uint8_t> clean = slurp(seg_path);

  std::vector<std::size_t> bits;
  for (std::size_t bit = 13 * 8; bit < (13 + 74) * 8 && bit < clean.size() * 8;
       ++bit)
    bits.push_back(bit);  // every bit of the first record
  for (std::size_t byte = 0; byte < clean.size(); byte += 7)
    bits.push_back(byte * 8 + (byte % 8));  // strided sample of the rest

  for (const std::size_t bit : bits) {
    copy_dir(base_, work_);
    std::vector<std::uint8_t> mutated = clean;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    spew(fs::path(work_) / seg_path.filename(), mutated);

    Store store(config(work_));
    for (std::uint64_t n = 0; n < kKeys; ++n) {
      const GetResult got = store.get(key_of(n));
      if (got.status == GetStatus::kHit) {
        ASSERT_EQ(got.payload, payload_of(n, 50))
            << "bit " << bit << " key " << n;
      }
      // kMiss/kCorrupt: degraded, acceptable. A corrupt result must also be
      // sticky -- the second read of the same key is a plain miss.
      if (got.status == GetStatus::kCorrupt) {
        ASSERT_EQ(store.get(key_of(n)).status, GetStatus::kMiss)
            << "bit " << bit << " key " << n;
      }
    }
  }
}

// A stray file whose name matches the segment pattern but whose id cannot
// fit a u64 must be skipped like any other stray, not abort open or fsck.
TEST_F(StoreCrashTest, OversizedSegmentIdFilenameIsIgnored) {
  {
    Store store(config(base_));
    store.put(key_of(1), payload_of(1, 32));
  }
  spew(base_ / "seg-99999999999999999999999.nc9a", {});

  Store store(config(base_));
  const GetResult got = store.get(key_of(1));
  ASSERT_EQ(got.status, GetStatus::kHit);
  EXPECT_EQ(got.payload, payload_of(1, 32));
  store.fsck(/*repair=*/false);  // must not throw
}

// Deleting a whole segment file out from under the manifest (worst-case
// disagreement) still opens, degrades the affected keys and repairs clean.
TEST_F(StoreCrashTest, MissingSegmentFileDegradesAndRepairs) {
  {
    StoreConfig cfg = config(base_);
    cfg.segment_target_bytes = 256;
    Store store(cfg);
    for (std::uint64_t n = 0; n < 12; ++n)
      store.put(key_of(n), payload_of(n, 64));
    ASSERT_GT(store.stats().segments, 2u);
  }
  // Remove the first segment file.
  fs::path victim;
  for (const auto& e : fs::directory_iterator(base_))
    if (e.path().filename() == "seg-000001.nc9a") victim = e.path();
  ASSERT_FALSE(victim.empty());
  fs::remove(victim);

  Store store(config(base_));
  EXPECT_GT(store.stats().dropped_at_open, 0u);
  std::uint64_t hits = 0;
  for (std::uint64_t n = 0; n < 12; ++n) {
    const GetResult got = store.get(key_of(n));
    if (got.status == GetStatus::kHit) {
      ASSERT_EQ(got.payload, payload_of(n, 64)) << "key " << n;
      ++hits;
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 12u);
  store.fsck(/*repair=*/true);
  EXPECT_TRUE(store.fsck(/*repair=*/false).clean);
}

// ----------------------------------------------------------- fault injection
//
// The tests above damage files between process lifetimes; these inject
// failures into live syscalls through store::Io and check the typed-error
// contract serve's write-through retry depends on: ENOSPC surfaces as
// StoreErrc::kNoSpace, everything else transient as kIoError, and no
// failure mode leaves the store serving wrong bytes or refusing good keys.

using Op = FaultInjectingIo::Op;

TEST_F(StoreCrashTest, SegmentWriteEioIsTypedAndRecoverable) {
  FaultInjectingIo io;
  StoreConfig cfg = config(base_);
  cfg.io = &io;
  Store store(cfg);
  store.put(key_of(1), payload_of(1, 200));

  io.add_rule({Op::kWrite, ".nc9a", 0, 1, EIO, 0});
  try {
    store.put(key_of(2), payload_of(2, 200));
    FAIL() << "put must surface the injected EIO";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrc::kIoError);
  }
  EXPECT_GE(io.stats().faults_injected, 1u);

  // The failed put is simply not there; everything acked before it is,
  // and a retry (serve's write-through policy) lands cleanly.
  EXPECT_EQ(store.get(key_of(2)).status, GetStatus::kMiss);
  EXPECT_EQ(store.get(key_of(1)).payload, payload_of(1, 200));
  store.put(key_of(2), payload_of(2, 200));
  EXPECT_EQ(store.get(key_of(2)).payload, payload_of(2, 200));
  EXPECT_TRUE(store.fsck(/*repair=*/false).clean);
}

TEST_F(StoreCrashTest, EnospcSurfacesAsTypedNoSpace) {
  FaultInjectingIo io;
  StoreConfig cfg = config(base_);
  cfg.io = &io;
  Store store(cfg);

  io.add_rule({Op::kWrite, "", 0, 1, ENOSPC, 0});
  try {
    store.put(key_of(7), payload_of(7, 64));
    FAIL() << "put must surface the injected ENOSPC";
  } catch (const StoreError& e) {
    // Typed, so callers can tell "disk full" (do not retry) from "disk
    // flaky" (retry): serve short-circuits its backoff loop on kNoSpace.
    EXPECT_EQ(e.code(), StoreErrc::kNoSpace);
  }
  store.put(key_of(7), payload_of(7, 64));
  EXPECT_EQ(store.get(key_of(7)).payload, payload_of(7, 64));
}

TEST_F(StoreCrashTest, ShortManifestAppendRollsBackAndStoreRemainsUsable) {
  FaultInjectingIo io;
  StoreConfig cfg = config(base_);
  cfg.io = &io;
  {
    Store store(cfg);
    store.put(key_of(1), payload_of(1, 100));

    // First matching write lands 3 real bytes (a torn manifest frame),
    // the second fails outright. The store must truncate the log back to
    // its last good end instead of letting O_APPEND bury the tear.
    io.add_rule({Op::kWrite, "manifest", 0, 1, EIO, 3});
    io.add_rule({Op::kWrite, "manifest", 0, 1, EIO, 0});
    try {
      store.put(key_of(2), payload_of(2, 100));
      FAIL() << "put must surface the torn manifest append";
    } catch (const StoreError& e) {
      EXPECT_EQ(e.code(), StoreErrc::kIoError);
    }
    EXPECT_GE(io.stats().short_writes, 1u);

    // Rolled back, not broken: the very next mutation appends cleanly.
    store.put(key_of(3), payload_of(3, 100));
    EXPECT_EQ(store.get(key_of(1)).payload, payload_of(1, 100));
    EXPECT_EQ(store.get(key_of(2)).status, GetStatus::kMiss);
    EXPECT_EQ(store.get(key_of(3)).payload, payload_of(3, 100));
  }
  // A cold replay of that manifest sees only whole frames. The failed
  // put's record DID land in the segment before the manifest tore, so it
  // is an orphan: invisible to gets, but recoverable -- repair re-indexes
  // it and the payload comes back byte-identical.
  Store reopened(config(base_));
  EXPECT_EQ(reopened.get(key_of(1)).payload, payload_of(1, 100));
  EXPECT_EQ(reopened.get(key_of(2)).status, GetStatus::kMiss);
  EXPECT_EQ(reopened.get(key_of(3)).payload, payload_of(3, 100));
  const FsckReport rep = reopened.fsck(/*repair=*/true);
  EXPECT_EQ(rep.orphan_records, 1u);
  EXPECT_EQ(rep.orphans_recovered, 1u);
  EXPECT_EQ(reopened.get(key_of(2)).payload, payload_of(2, 100));
  EXPECT_TRUE(reopened.fsck(/*repair=*/false).clean);
}

TEST_F(StoreCrashTest, FsyncFailureIsTypedWhenDurabilityRequested) {
  FaultInjectingIo io;
  StoreConfig cfg = config(base_);
  cfg.io = &io;
  cfg.fsync_writes = true;
  Store store(cfg);
  store.put(key_of(1), payload_of(1, 80));

  // Segment fsync failure: the record may not survive power loss, so a
  // durability-mode store must report the put as failed.
  io.add_rule({Op::kFsync, ".nc9a", 0, 1, EIO, 0});
  try {
    store.put(key_of(2), payload_of(2, 80));
    FAIL() << "fsync failure must fail a durable put";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrc::kIoError);
  }
  EXPECT_EQ(store.get(key_of(2)).status, GetStatus::kMiss);

  // Manifest fsync failure is treated exactly like a torn append: rolled
  // back, typed, and the store keeps working afterwards.
  io.add_rule({Op::kFsync, "manifest", 0, 1, EIO, 0});
  try {
    store.put(key_of(3), payload_of(3, 80));
    FAIL() << "manifest fsync failure must fail a durable put";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrc::kIoError);
  }
  store.put(key_of(4), payload_of(4, 80));
  EXPECT_EQ(store.get(key_of(1)).payload, payload_of(1, 80));
  EXPECT_EQ(store.get(key_of(4)).payload, payload_of(4, 80));
}

TEST_F(StoreCrashTest, ManifestRollbackFailureIsFailedStop) {
  FaultInjectingIo io;
  StoreConfig cfg = config(base_);
  cfg.io = &io;
  {
    Store store(cfg);
    store.put(key_of(1), payload_of(1, 120));

    // Tear a manifest append AND fail the truncate that would repair it.
    // The log now ends in garbage the store cannot remove, so accepting
    // further appends would corrupt every frame after the tear; the only
    // safe behaviour is failed-stop for mutations while reads keep
    // serving.
    io.add_rule({Op::kWrite, "manifest", 0, 1, EIO, 3});
    io.add_rule({Op::kWrite, "manifest", 0, 1, EIO, 0});
    io.add_rule({Op::kMeta, "manifest", 0, 1, EIO, 0});
    EXPECT_THROW(store.put(key_of(2), payload_of(2, 120)), StoreError);

    try {
      store.put(key_of(3), payload_of(3, 120));
      FAIL() << "a store with torn manifest bytes must refuse mutations";
    } catch (const StoreError& e) {
      EXPECT_EQ(e.code(), StoreErrc::kIoError);
    }
    EXPECT_EQ(store.get(key_of(1)).payload, payload_of(1, 120));
  }
  // Reopen replays whole frames, drops the torn tail, and is writable
  // again -- failed-stop is per-process, not a bricked directory. The two
  // refused puts left orphan segment records behind; repair recovers
  // them.
  Store reopened(config(base_));
  EXPECT_EQ(reopened.get(key_of(1)).payload, payload_of(1, 120));
  reopened.put(key_of(5), payload_of(5, 120));
  EXPECT_EQ(reopened.get(key_of(5)).payload, payload_of(5, 120));
  const FsckReport rep = reopened.fsck(/*repair=*/true);
  EXPECT_EQ(rep.orphans_recovered, rep.orphan_records);
  EXPECT_EQ(reopened.get(key_of(2)).payload, payload_of(2, 120));
  EXPECT_TRUE(reopened.fsck(/*repair=*/false).clean);
}

TEST_F(StoreCrashTest, WholeDirectoryDeathThenReviveServesAckedKeys) {
  FaultInjectingIo io;
  StoreConfig cfg = config(base_);
  cfg.io = &io;
  Store store(cfg);
  for (std::uint64_t n = 0; n < 5; ++n)
    store.put(key_of(n), payload_of(n, 90));

  io.kill_path(base_.filename().string());
  EXPECT_THROW(store.put(key_of(9), payload_of(9, 90)), StoreError);
  EXPECT_GE(io.stats().killed_ops, 1u);

  // The disk comes back (remount, cable reseated): previously-acked keys
  // must still read byte-identically through the SAME open store.
  io.revive_path(base_.filename().string());
  for (std::uint64_t n = 0; n < 5; ++n)
    EXPECT_EQ(store.get(key_of(n)).payload, payload_of(n, 90)) << n;
  store.put(key_of(9), payload_of(9, 90));
  EXPECT_EQ(store.get(key_of(9)).payload, payload_of(9, 90));
}

}  // namespace
}  // namespace nc::store
