// Differential audit of 3-valued (0/1/X) propagation in the simulators.
//
// The reference evaluator here defines X semantics from first principles:
// a node is X iff its boolean completions disagree -- for every gate the
// output is computed over all 0/1 assignments of its X inputs, and the
// result is a care value only when every completion agrees. (This is
// exact pessimism-free *per gate*; whole-circuit reconvergence pessimism
// is shared by both engines since they both evaluate gate by gate.)
//
// simulate_pattern (scalar) and ParallelSim (dual-rail, good and faulty
// machine) must agree with it on every node for random circuits x random
// X-injected patterns.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bits/test_set.h"
#include "bits/trit_vector.h"
#include "circuit/generator.h"
#include "circuit/netlist.h"
#include "circuit/samples.h"
#include "sim/fault.h"
#include "sim/logic_sim.h"

namespace nc::sim {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using circuit::GateType;
using circuit::Netlist;

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool eval_bool(GateType type, const std::vector<bool>& ins) {
  switch (type) {
    case GateType::kBuf:
    case GateType::kDff: return ins[0];
    case GateType::kNot: return !ins[0];
    case GateType::kAnd:
    case GateType::kNand: {
      bool v = true;
      for (bool b : ins) v = v && b;
      return type == GateType::kAnd ? v : !v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool v = false;
      for (bool b : ins) v = v || b;
      return type == GateType::kOr ? v : !v;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool v = false;
      for (bool b : ins) v = v != b;
      return type == GateType::kXor ? v : !v;
    }
    case GateType::kInput: break;
  }
  ADD_FAILURE() << "eval_bool on input node";
  return false;
}

/// Completion-enumeration reference: output is a care value iff all boolean
/// completions of the X inputs agree.
Trit eval_ref(GateType type, const std::vector<Trit>& ins) {
  std::vector<std::size_t> x_pos;
  std::vector<bool> base(ins.size());
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i] == Trit::X)
      x_pos.push_back(i);
    else
      base[i] = ins[i] == Trit::One;
  }
  bool seen0 = false, seen1 = false;
  for (std::uint64_t combo = 0; combo < (1ull << x_pos.size()); ++combo) {
    std::vector<bool> full = base;
    for (std::size_t i = 0; i < x_pos.size(); ++i)
      full[x_pos[i]] = (combo >> i) & 1;
    (eval_bool(type, full) ? seen1 : seen0) = true;
  }
  return seen0 && seen1 ? Trit::X : seen1 ? Trit::One : Trit::Zero;
}

struct RefFault {
  std::size_t node = Netlist::npos;  // npos = fault-free
  std::size_t consumer = Netlist::npos;
  std::size_t pin = 0;
  bool stuck = false;
};

/// Whole-circuit reference: node values plus per-flop captured data, with
/// an optional stem or branch stuck-at fault.
struct RefResult {
  std::vector<Trit> values;
  std::vector<Trit> captured;
};

RefResult simulate_ref(const Netlist& nl, const TritVector& pattern,
                       const RefFault& fault = {}) {
  RefResult out;
  out.values.assign(nl.size(), Trit::X);
  const std::vector<std::size_t>& pis = nl.inputs();
  const std::vector<std::size_t>& flops = nl.flops();
  for (std::size_t i = 0; i < pis.size(); ++i)
    out.values[pis[i]] = pattern.get(i);
  for (std::size_t i = 0; i < flops.size(); ++i)
    out.values[flops[i]] = pattern.get(pis.size() + i);

  const bool stem_fault =
      fault.node != Netlist::npos && fault.consumer == Netlist::npos;
  if (stem_fault)  // PIs and PPIs can carry stem faults too
    out.values[fault.node] = fault.stuck ? Trit::One : Trit::Zero;

  for (std::size_t g : nl.levelize()) {
    const circuit::Gate& gate = nl.gate(g);
    if (gate.type == GateType::kInput || gate.type == GateType::kDff)
      continue;
    std::vector<Trit> ins;
    ins.reserve(gate.fanins.size());
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      Trit v = out.values[gate.fanins[pin]];
      if (fault.node == gate.fanins[pin] && fault.consumer == g &&
          fault.pin == pin)
        v = fault.stuck ? Trit::One : Trit::Zero;
      ins.push_back(v);
    }
    out.values[g] = eval_ref(gate.type, ins);
    if (stem_fault && fault.node == g)
      out.values[g] = fault.stuck ? Trit::One : Trit::Zero;
  }

  out.captured.reserve(flops.size());
  for (std::size_t f : flops) {
    const std::size_t data = nl.gate(f).fanins[0];
    Trit v = out.values[data];
    if (fault.node == data && fault.consumer == f && fault.pin == 0)
      v = fault.stuck ? Trit::One : Trit::Zero;
    out.captured.push_back(v);
  }
  return out;
}

TritVector random_pattern(const Netlist& nl, std::uint64_t& rng,
                          unsigned x_percent) {
  TritVector p(nl.pattern_width(), Trit::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const std::uint64_t r = splitmix(rng);
    p.set(i, r % 100 < x_percent ? Trit::X
                                 : (r >> 32) & 1 ? Trit::One : Trit::Zero);
  }
  return p;
}

Trit val64_trit(const Val64& v, std::size_t slot) {
  const bool one = (v.one >> slot) & 1;
  const bool zero = (v.zero >> slot) & 1;
  EXPECT_FALSE(one && zero);
  return one ? Trit::One : zero ? Trit::Zero : Trit::X;
}

TEST(XPropagation, PerGateTruthTables) {
  // Every 2-input gate type against the completion reference on all 9
  // trit pairs, through the real scalar simulator.
  const Trit trits[] = {Trit::Zero, Trit::One, Trit::X};
  const GateType types[] = {GateType::kAnd, GateType::kNand, GateType::kOr,
                            GateType::kNor, GateType::kXor, GateType::kXnor};
  for (GateType type : types) {
    Netlist nl;
    const std::size_t a = nl.add_gate(GateType::kInput, "a");
    const std::size_t b = nl.add_gate(GateType::kInput, "b");
    const std::size_t g = nl.add_gate(type, "g", {a, b});
    nl.mark_output(g);
    for (Trit ta : trits)
      for (Trit tb : trits) {
        TritVector p(2, Trit::X);
        p.set(0, ta);
        p.set(1, tb);
        const std::vector<Trit> values = simulate_pattern(nl, p);
        EXPECT_EQ(values[g], eval_ref(type, {ta, tb}))
            << circuit::gate_type_name(type) << "(" << bits::to_char(ta)
            << "," << bits::to_char(tb) << ")";
      }
  }
  // NOT and BUF on the 3 single trits.
  for (GateType type : {GateType::kNot, GateType::kBuf}) {
    Netlist nl;
    const std::size_t a = nl.add_gate(GateType::kInput, "a");
    const std::size_t g = nl.add_gate(type, "g", {a});
    nl.mark_output(g);
    for (Trit ta : trits) {
      TritVector p(1, ta);
      EXPECT_EQ(simulate_pattern(nl, p)[g], eval_ref(type, {ta}))
          << circuit::gate_type_name(type) << "(" << bits::to_char(ta) << ")";
    }
  }
}

TEST(XPropagation, ScalarMatchesReferenceOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    circuit::GeneratorConfig cfg;
    cfg.num_inputs = 6;
    cfg.num_flops = 8;
    cfg.num_gates = 60;
    cfg.num_outputs = 4;
    cfg.seed = seed;
    const Netlist nl = circuit::generate_circuit(cfg);
    std::uint64_t rng = seed * 1234567;
    for (int p = 0; p < 20; ++p) {
      const TritVector pattern = random_pattern(nl, rng, 30);
      const std::vector<Trit> got = simulate_pattern(nl, pattern);
      const RefResult ref = simulate_ref(nl, pattern);
      for (std::size_t n = 0; n < nl.size(); ++n)
        ASSERT_EQ(got[n], ref.values[n])
            << "seed " << seed << " pattern " << p << " node "
            << nl.gate(n).name;
    }
  }
}

TEST(XPropagation, ParallelSimGoodMachineMatchesReference) {
  circuit::GeneratorConfig cfg;
  cfg.num_inputs = 7;
  cfg.num_flops = 9;
  cfg.num_gates = 70;
  cfg.num_outputs = 5;
  cfg.seed = 11;
  const Netlist nl = circuit::generate_circuit(cfg);

  std::uint64_t rng = 99;
  TestSet patterns(100, nl.pattern_width());
  for (std::size_t p = 0; p < 100; ++p) {
    const TritVector row = random_pattern(nl, rng, 25);
    patterns.set_pattern(p, row);
  }

  ParallelSim sim(nl);
  for (std::size_t first = 0; first < 100; first += 64) {
    const std::size_t loaded = sim.load(patterns, first);
    sim.run();
    for (std::size_t slot = 0; slot < loaded; ++slot) {
      const RefResult ref = simulate_ref(nl, patterns.pattern(first + slot));
      for (std::size_t n = 0; n < nl.size(); ++n)
        ASSERT_EQ(val64_trit(sim.value(n), slot), ref.values[n])
            << "pattern " << first + slot << " node " << nl.gate(n).name;
      for (std::size_t f = 0; f < nl.flops().size(); ++f)
        ASSERT_EQ(val64_trit(sim.captured(f), slot), ref.captured[f])
            << "pattern " << first + slot << " flop " << f;
    }
  }
}

TEST(XPropagation, ParallelSimFaultyMachineMatchesReference) {
  circuit::GeneratorConfig cfg;
  cfg.num_inputs = 6;
  cfg.num_flops = 6;
  cfg.num_gates = 40;
  cfg.num_outputs = 3;
  cfg.seed = 21;
  const Netlist nl = circuit::generate_circuit(cfg);
  const std::vector<Fault> faults = full_fault_list(nl);

  std::uint64_t rng = 7;
  TestSet patterns(32, nl.pattern_width());
  for (std::size_t p = 0; p < 32; ++p)
    patterns.set_pattern(p, random_pattern(nl, rng, 30));

  ParallelSim sim(nl);
  ASSERT_EQ(sim.load(patterns, 0), 32u);
  for (const Fault& fault : faults) {
    sim.run_with_fault(fault.node, fault.consumer, fault.pin,
                       fault.stuck_value);
    RefFault rf{fault.node, fault.consumer, fault.pin, fault.stuck_value};
    for (std::size_t slot = 0; slot < 32; slot += 5) {
      const RefResult ref = simulate_ref(nl, patterns.pattern(slot), rf);
      for (const std::size_t o : nl.outputs())
        ASSERT_EQ(val64_trit(sim.value(o), slot), ref.values[o])
            << fault.to_string(nl) << " pattern " << slot << " PO "
            << nl.gate(o).name;
      for (std::size_t f = 0; f < nl.flops().size(); ++f)
        ASSERT_EQ(val64_trit(sim.captured(f), slot), ref.captured[f])
            << fault.to_string(nl) << " pattern " << slot << " flop " << f;
    }
  }
}

TEST(XPropagation, S27AllXGivesAllXResponse) {
  const Netlist nl = circuit::samples::s27();
  const TritVector all_x(nl.pattern_width(), Trit::X);
  const std::vector<Trit> values = simulate_pattern(nl, all_x);
  const TritVector response = extract_response(nl, values);
  // s27's core has no constant cones: an unknown world stays unknown.
  EXPECT_EQ(response.x_count(), response.size());
}

}  // namespace
}  // namespace nc::sim
