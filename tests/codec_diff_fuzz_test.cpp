// Differential fuzzing of the two 9C codec implementations.
//
// The scalar per-trit path is the executable specification; the
// word-parallel bitplane path must be indistinguishable from it on every
// input: identical TE streams (word-compare, so the packed representation
// is canonical too), identical statistics, identical decode output, and --
// on corrupted streams -- the identical typed DecodeError down to the
// fault kind, TE offset and block index. Runs under the ASan/UBSan and
// TSan legs of tools/check.sh, so any out-of-bounds word arithmetic at
// half boundaries or odd tails surfaces here first.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "codec/nine_coded.h"
#include "codec/sharded.h"

namespace nc::codec {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

TritVector random_cube(std::mt19937& rng, std::size_t n, double x_density) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  TritVector v(n, Trit::Zero);
  for (std::size_t i = 0; i < n; ++i) {
    if (uni(rng) < x_density)
      v.set(i, Trit::X);
    else
      v.set(i, bits::trit_from_bit(rng() & 1u));
  }
  return v;
}

/// Everything observable from one decode attempt. Differential equality of
/// this struct is the whole contract: both impls succeed with the same
/// bits, or both fail with the same typed error.
struct DecodeResult {
  std::optional<TritVector> data;
  std::size_t blocks = 0;
  std::size_t consumed = 0;
  std::optional<DecodeFault> fault;
  std::size_t fault_offset = 0;
  std::size_t fault_block = 0;

  bool operator==(const DecodeResult&) const = default;
};

DecodeResult try_decode(const NineCoded& coder, const TritVector& te,
                        std::size_t original_bits) {
  DecodeResult r;
  try {
    DecodeOutcome out = coder.decode_checked(te, original_bits);
    r.data = std::move(out.data);
    r.blocks = out.blocks;
    r.consumed = out.consumed;
  } catch (const DecodeError& e) {
    r.fault = e.fault();
    r.fault_offset = e.stream_offset();
    r.fault_block = e.block_index();
  }
  return r;
}

/// One full differential check: encode under both impls, compare streams
/// and stats field by field, then decode each stream under both impls.
void expect_identical(std::size_t k, const TritVector& td,
                      const char* context) {
  const NineCoded scalar(k, CodecImpl::kScalar);
  const NineCoded bitplane(k, CodecImpl::kBitplane);

  TritVector te_s, te_b;
  const NineCodedStats ss = scalar.analyze(td, &te_s);
  const NineCodedStats sb = bitplane.analyze(td, &te_b);

  ASSERT_TRUE(te_s == te_b) << context << " K=" << k << " n=" << td.size()
                            << "\nscalar  =" << te_s.to_string()
                            << "\nbitplane=" << te_b.to_string();
  ASSERT_EQ(ss.encoded_bits, sb.encoded_bits) << context;
  ASSERT_EQ(ss.padded_bits, sb.padded_bits) << context;
  ASSERT_EQ(ss.filled_x, sb.filled_x) << context;
  ASSERT_EQ(ss.leftover_x, sb.leftover_x) << context;
  ASSERT_EQ(ss.counts, sb.counts) << context;

  const DecodeResult ds = try_decode(scalar, te_s, td.size());
  const DecodeResult db = try_decode(bitplane, te_s, td.size());
  ASSERT_FALSE(ds.fault.has_value())
      << context << ": clean stream failed to decode";
  ASSERT_TRUE(ds == db) << context << " K=" << k
                        << ": decoders disagree on a clean stream";
  ASSERT_TRUE(td.covered_by(*ds.data)) << context;
}

// ------------------------------------------------- randomized bulk trials

// >= 500 seeded trials spanning the K values where word handling is
// hardest: K=2 (single-trit halves), K=62/64/66 (half spans exactly one
// word, just under, just over), plus the paper's mid-range sizes; lengths
// are deliberately non-block-aligned so every trial exercises the padded
// odd tail.
TEST(CodecDiffFuzz, RandomizedTrialsAcrossKAndDensity) {
  const std::size_t ks[] = {2, 4, 6, 8, 16, 30, 32, 62, 64, 66, 128};
  const double densities[] = {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
  int trials = 0;
  for (std::size_t k : ks) {
    for (double d : densities) {
      std::mt19937 rng(static_cast<unsigned>(k * 1009 + d * 131));
      for (int t = 0; t < 7; ++t, ++trials) {
        const std::size_t n = 1 + rng() % 800;
        const TritVector td = random_cube(rng, n, d);
        ASSERT_NO_FATAL_FAILURE(expect_identical(k, td, "random"));
      }
    }
  }
  ASSERT_GE(trials, 500);
}

// Frequency-directed tables permute the codeword lengths; the two impls
// must agree under every table they can be handed, not just the default.
TEST(CodecDiffFuzz, FrequencyDirectedTablesAgree) {
  std::mt19937 rng(4242);
  for (int t = 0; t < 40; ++t) {
    const std::size_t k = 2 + 2 * (rng() % 24);
    const TritVector td = random_cube(rng, 500 + rng() % 500, 0.6);
    const NineCoded tuned_s = NineCoded::tuned_for(td, k, CodecImpl::kScalar);
    const NineCoded tuned_b =
        NineCoded::tuned_for(td, k, CodecImpl::kBitplane);
    ASSERT_TRUE(tuned_s.table() == tuned_b.table())
        << "two-pass tuning diverged at K=" << k;
    ASSERT_TRUE(tuned_s.encode(td) == tuned_b.encode(td));
  }
}

// ------------------------------------------------------- adversarial data

TEST(CodecDiffFuzz, AllXAllCareAndAlternating) {
  for (std::size_t k : {2u, 8u, 62u, 64u, 66u}) {
    for (std::size_t n : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u}) {
      TritVector all_x(n, Trit::X);
      TritVector all0(n, Trit::Zero);
      TritVector all1(n, Trit::One);
      TritVector alt01(n, Trit::Zero);
      TritVector alt_x1(n, Trit::Zero);
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 1) alt01.set(i, Trit::One);
        alt_x1.set(i, i % 2 == 0 ? Trit::X : Trit::One);
      }
      expect_identical(k, all_x, "all-X");
      expect_identical(k, all0, "all-0");
      expect_identical(k, all1, "all-1");
      expect_identical(k, alt01, "alternating-01");
      expect_identical(k, alt_x1, "alternating-X1");
    }
  }
}

// Single conflicting trits placed at every position of one block: flushes
// out any off-by-one in the half boundary masks (the conflict must flip
// exactly one half's compatibility, never the neighbour's).
TEST(CodecDiffFuzz, SingleTritConflictSweep) {
  for (std::size_t k : {2u, 4u, 8u, 64u, 66u}) {
    for (std::size_t pos = 0; pos < k; ++pos) {
      TritVector zeros(k, Trit::Zero);
      zeros.set(pos, Trit::One);
      expect_identical(k, zeros, "single-one");
      TritVector ones(k, Trit::One);
      ones.set(pos, Trit::Zero);
      expect_identical(k, ones, "single-zero");
      TritVector xs(k, Trit::X);
      xs.set(pos, Trit::One);
      expect_identical(k, xs, "single-one-in-X");
    }
  }
}

TEST(CodecDiffFuzz, EmptyInput) {
  for (std::size_t k : {2u, 8u, 64u}) expect_identical(k, TritVector(), "empty");
}

// ------------------------------------------- corrupted-stream differential

// Mutates clean TE streams -- truncation, trit flips to X, symbol flips,
// appended garbage -- and requires the two decoders to agree on the full
// outcome: either both recover identical bits or both throw the same fault
// at the same offset and block.
TEST(CodecDiffFuzz, CorruptedStreamsFailIdentically) {
  std::mt19937 rng(31337);
  int faults_seen = 0;
  for (int t = 0; t < 200; ++t) {
    const std::size_t k = 2 + 2 * (rng() % 32);
    const NineCoded scalar(k, CodecImpl::kScalar);
    const NineCoded bitplane(k, CodecImpl::kBitplane);
    const TritVector td = random_cube(rng, 64 + rng() % 400, 0.5);
    TritVector te = scalar.encode(td);
    if (te.empty()) continue;

    switch (rng() % 4) {
      case 0:  // truncate
        te.resize(rng() % te.size());
        break;
      case 1: {  // flip one symbol to X (codeword positions must detect it)
        te.set(rng() % te.size(), Trit::X);
        break;
      }
      case 2: {  // flip one specified symbol's value
        const std::size_t i = rng() % te.size();
        te.set(i, te.get(i) == Trit::One ? Trit::Zero : Trit::One);
        break;
      }
      default:  // trailing garbage
        te.append_run(1 + rng() % 5, bits::trit_from_bit(rng() & 1u));
        break;
    }

    const DecodeResult ds = try_decode(scalar, te, td.size());
    const DecodeResult db = try_decode(bitplane, te, td.size());
    ASSERT_TRUE(ds == db)
        << "decoders disagree on corrupted stream, K=" << k << " trial " << t
        << (ds.fault ? std::string(" scalar fault ") + to_string(*ds.fault) +
                           " @" + std::to_string(ds.fault_offset)
                     : std::string(" scalar succeeded"))
        << (db.fault ? std::string(" bitplane fault ") + to_string(*db.fault) +
                           " @" + std::to_string(db.fault_offset)
                     : std::string(" bitplane succeeded"));
    if (ds.fault.has_value()) ++faults_seen;
  }
  // The mutation mix must actually exercise the error paths, not decay
  // into a round-trip test (complete code: value flips often still parse).
  ASSERT_GT(faults_seen, 20);
}

// ------------------------------------------- sharded/parallel differential

// The sharded container inherits whatever impl its coder carries; run the
// full parallel encode/decode pipeline under both and require identical
// containers. With jobs=4 this also puts the bitplane word paths under
// TSan's eye via check.sh's tsan leg.
TEST(CodecDiffFuzz, ShardedParallelPipelineAgrees) {
  std::mt19937 rng(777);
  TestSet td(40, 96);
  for (std::size_t p = 0; p < td.pattern_count(); ++p)
    for (std::size_t c = 0; c < td.pattern_length(); ++c) {
      const auto r = rng() % 10;
      td.set(p, c, r < 6 ? Trit::X : bits::trit_from_bit(r & 1u));
    }
  for (std::size_t k : {8u, 64u}) {
    const NineCoded scalar(k, CodecImpl::kScalar);
    const NineCoded bitplane(k, CodecImpl::kBitplane);
    const TritVector c_s = encode_sharded(scalar, td, 8, 4);
    const TritVector c_b = encode_sharded(bitplane, td, 8, 4);
    ASSERT_TRUE(c_s == c_b) << "sharded containers differ at K=" << k;
    const TestSet back_s = decode_sharded(scalar, c_b, 4);
    const TestSet back_b = decode_sharded(bitplane, c_b, 4);
    ASSERT_EQ(back_s.pattern_count(), back_b.pattern_count());
    ASSERT_TRUE(back_s.flatten() == back_b.flatten());
    ASSERT_TRUE(td.flatten().covered_by(back_b.flatten()));
  }
}

}  // namespace
}  // namespace nc::codec
