// Cross-module parameterized sweeps: broad configuration coverage for the
// invariants the focused suites check at single points.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "baselines/golomb.h"
#include "baselines/lzw.h"
#include "baselines/mtc.h"
#include "codec/nine_coded.h"
#include "codec/pattern_codec.h"
#include "decomp/multi_scan.h"
#include "decomp/programmable.h"
#include "gen/cube_gen.h"

namespace nc {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

TritVector random_stream(std::uint64_t seed, std::size_t n, double x) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 1;
  cfg.width = n;
  cfg.x_fraction = x;
  cfg.seed = seed;
  return gen::generate_cubes(cfg).flatten();
}

// ------------------------------------------------ multi-scan chain sweep --

class ChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainSweep, SinglePinCoversEveryChain) {
  const std::size_t chains = static_cast<std::size_t>(GetParam());
  gen::CubeGenConfig cfg;
  cfg.patterns = 6;
  cfg.width = 90;  // not a multiple of most chain counts: padding exercised
  cfg.x_fraction = 0.7;
  cfg.seed = 40 + chains;
  const TestSet td = gen::generate_cubes(cfg);
  const codec::NineCoded coder(8);
  const auto report = decomp::run_multi_scan_single_pin(td, chains, coder, 4);
  ASSERT_EQ(report.chain_streams.size(), chains);
  const std::size_t depth = (td.pattern_length() + chains - 1) / chains;
  for (std::size_t c = 0; c < chains; ++c)
    for (std::size_t p = 0; p < td.pattern_count(); ++p)
      for (std::size_t d = 0; d < depth; ++d) {
        const std::size_t cell = c * depth + d;
        if (cell >= td.pattern_length()) continue;
        const Trit want = td.at(p, cell);
        if (!bits::is_care(want)) continue;
        ASSERT_EQ(report.chain_streams[c].get(p * depth + d), want)
            << "chains=" << chains << " c=" << c << " p=" << p << " d=" << d;
      }
}

INSTANTIATE_TEST_SUITE_P(Chains, ChainSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 45));

// ------------------------------------------- pattern codec configuration --

class PatternSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PatternSweep, TrainedRoundTrip) {
  const auto [k, extended] = GetParam();
  const TritVector td =
      random_stream(static_cast<std::uint64_t>(k) * 2 + extended, 3000, 0.8);
  const auto patterns = extended ? codec::extended_patterns()
                                 : codec::nine_coded_patterns();
  const codec::PatternCodec pc =
      codec::PatternCodec::trained(td, static_cast<std::size_t>(k), patterns);
  const TritVector d = pc.decode(pc.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d)) << pc.name();
}

INSTANTIATE_TEST_SUITE_P(
    KAndSet, PatternSweep,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return "K" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_ext" : "_nine");
    });

// ------------------------------------------------ group-size sweeps -------

class GroupSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupSweep, GolombAndMtcRoundTrip) {
  const std::size_t m = static_cast<std::size_t>(GetParam());
  const TritVector td = random_stream(m, 2000, 0.85);
  const baselines::Golomb golomb(m);
  EXPECT_TRUE(td.covered_by(golomb.decode(golomb.encode(td), td.size())));
  const baselines::Mtc mtc(m);
  EXPECT_TRUE(td.covered_by(mtc.decode(mtc.encode(td), td.size())));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, GroupSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

class LzwWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LzwWidthSweep, RoundTrip) {
  const unsigned w = static_cast<unsigned>(GetParam());
  const TritVector td = random_stream(w, 4000, 0.9);
  const baselines::Lzw lzw(w);
  EXPECT_TRUE(td.covered_by(lzw.decode(lzw.encode(td), td.size())));
}

INSTANTIATE_TEST_SUITE_P(Widths, LzwWidthSweep,
                         ::testing::Values(2, 3, 6, 10, 14));

// ------------------------------------- random frequency-directed tables --

class RandomTableSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTableSweep, ProgrammableDecoderMatchesSoftware) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::array<std::size_t, codec::kNumClasses> counts{};
  for (auto& c : counts) c = rng() % 1000;
  const codec::CodewordTable table =
      codec::CodewordTable::frequency_directed(counts);
  ASSERT_TRUE(table.prefix_free());
  const codec::NineCoded coder(8, table);
  const TritVector td = random_stream(rng(), 2000, 0.75);
  const TritVector te = coder.encode(td);
  const decomp::ProgrammableDecoder decoder(8, table, 2);
  const auto trace = decoder.run(te, td.size());
  EXPECT_EQ(trace.scan_stream, coder.decode(te, td.size()));
  EXPECT_TRUE(td.covered_by(trace.scan_stream));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableSweep,
                         ::testing::Range(1, 13));

// ------------------------------- whole-block vs half-block dominance ------

class SplitSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitSweep, NineCodedBeatsWholeBlockCode) {
  const double x = GetParam();
  const TritVector td = random_stream(static_cast<std::uint64_t>(x * 100),
                                      20000, x);
  for (std::size_t k : {8u, 16u, 32u}) {
    // Whole-block "3C" size: 1 / 2 / 2+K bits per block.
    TritVector padded = td;
    if (padded.size() % k != 0)
      padded.append_run(k - padded.size() % k, Trit::X);
    std::size_t three = 0;
    for (std::size_t b = 0; b < padded.size(); b += k) {
      const auto kind = codec::classify_half(padded, b, k);
      three += kind.zero_compatible ? 1 : kind.one_compatible ? 2 : 2 + k;
    }
    const std::size_t nine = codec::NineCoded(k).encode(td).size();
    EXPECT_LE(nine, three) << "K=" << k << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, SplitSweep,
                         ::testing::Values(0.8, 0.9, 0.95),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "X" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace nc
