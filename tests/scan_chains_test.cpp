#include "circuit/scan_chains.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "circuit/samples.h"

namespace nc::circuit {
namespace {

using bits::Trit;
using bits::TritVector;

TEST(ScanChains, StitchS27IntoThreeChains) {
  const Netlist nl = samples::s27();
  const ScanChains sc = stitch_scan_chains(nl, 3);
  EXPECT_EQ(sc.chain_count(), 3u);
  EXPECT_EQ(sc.depth(), 1u);
  EXPECT_EQ(sc.cell_count(), 3u);
}

TEST(ScanChains, BlockedPartition) {
  GeneratorConfig cfg;
  cfg.num_flops = 10;
  const Netlist nl = generate_circuit(cfg);
  const ScanChains sc = stitch_scan_chains(nl, 3);
  // ceil(10/3) = 4: chains of 4, 4, 2.
  ASSERT_EQ(sc.chain_count(), 3u);
  EXPECT_EQ(sc.chains[0].size(), 4u);
  EXPECT_EQ(sc.chains[1].size(), 4u);
  EXPECT_EQ(sc.chains[2].size(), 2u);
  EXPECT_EQ(sc.depth(), 4u);
  EXPECT_EQ(sc.cell_count(), 10u);
}

TEST(ScanChains, RejectsBadChainCounts) {
  const Netlist nl = samples::s27();
  EXPECT_THROW(stitch_scan_chains(nl, 0), std::invalid_argument);
  EXPECT_THROW(stitch_scan_chains(nl, 4), std::invalid_argument);
}

TEST(ScanChains, StreamsCarryFlopColumns) {
  const Netlist nl = samples::s27();  // 4 PIs + flops G5, G6, G7
  const ScanChains sc = stitch_scan_chains(nl, 1);
  // Pattern: PIs 0000, flops = 1, X, 0.
  const TritVector pattern = TritVector::from_string("00001X0");
  const auto streams = chain_streams(nl, sc, pattern);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].to_string(), "1X0");
}

TEST(ScanChains, StreamsPadShortChains) {
  GeneratorConfig cfg;
  cfg.num_flops = 5;
  cfg.num_inputs = 2;
  const Netlist nl = generate_circuit(cfg);
  const ScanChains sc = stitch_scan_chains(nl, 2);  // depths 3 and 2
  const TritVector pattern(nl.pattern_width(), Trit::One);
  const auto streams = chain_streams(nl, sc, pattern);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].to_string(), "111");
  EXPECT_EQ(streams[1].to_string(), "11X");  // padded tail
}

TEST(ScanChains, RoundTripThroughStreams) {
  GeneratorConfig cfg;
  cfg.num_flops = 13;
  cfg.num_inputs = 4;
  cfg.seed = 6;
  const Netlist nl = generate_circuit(cfg);
  const ScanChains sc = stitch_scan_chains(nl, 4);

  TritVector pattern(nl.pattern_width(), Trit::X);
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern.set(i, static_cast<Trit>(i % 3));
  const auto streams = chain_streams(nl, sc, pattern);
  const TritVector back = pattern_from_streams(nl, sc, streams);
  // Flop columns round-trip; PI columns come back X.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    EXPECT_EQ(back.get(i), Trit::X);
  for (std::size_t i = nl.inputs().size(); i < pattern.size(); ++i)
    EXPECT_EQ(back.get(i), pattern.get(i)) << "column " << i;
}

TEST(ScanChains, PatternFromStreamsValidatesShape) {
  const Netlist nl = samples::s27();
  const ScanChains sc = stitch_scan_chains(nl, 3);
  EXPECT_THROW(pattern_from_streams(nl, sc, {}), std::invalid_argument);
  std::vector<TritVector> short_streams(3);
  EXPECT_THROW(pattern_from_streams(nl, sc, short_streams),
               std::invalid_argument);
}

TEST(ScanChains, WrongPatternWidthThrows) {
  const Netlist nl = samples::s27();
  const ScanChains sc = stitch_scan_chains(nl, 1);
  EXPECT_THROW(chain_streams(nl, sc, TritVector(3)), std::invalid_argument);
}

}  // namespace
}  // namespace nc::circuit
