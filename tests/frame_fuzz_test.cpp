// Adversarial tests of the serve frame layer: every truncated, bit-flipped,
// length-forged or junk-injected byte stream must yield a typed protocol
// error within the watchdog budget -- never a hang, a crash, or a silently
// wrong payload.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "serve/chaos.h"
#include "serve/frame.h"
#include "serve/transport.h"

namespace nc::serve {
namespace {

using std::chrono::milliseconds;

Frame make_frame(std::uint64_t seq, std::size_t payload_size) {
  Frame f;
  f.type = FrameType::kEncodeRequest;
  f.seq = seq;
  f.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i)
    f.payload[i] = static_cast<std::uint8_t>((seq * 131 + i * 7) & 0xFF);
  return f;
}

/// Recomputes the header CRC after a deliberate header edit, so a test can
/// reach the checks that run on a structurally valid header.
void patch_header_crc(std::vector<std::uint8_t>& wire) {
  std::array<std::uint8_t, kFrameHeaderSize> header{};
  std::copy(wire.begin(),
            wire.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize),
            header.begin());
  header[6] = 0;
  header[7] = 0;
  const std::uint32_t crc = crc32(header.data() + kFrameMagic.size(),
                                  kFrameHeaderSize - kFrameMagic.size());
  wire[6] = static_cast<std::uint8_t>(crc & 0xFF);
  wire[7] = static_cast<std::uint8_t>((crc >> 8) & 0xFF);
}

/// Writes `bytes` into one pipe end and closes it, then drains the reader
/// side to completion, collecting every result.
std::vector<FrameReader::Result> feed(const std::vector<std::uint8_t>& bytes,
                                      FrameLimits limits = {}) {
  auto [writer, reader_end] = make_pipe(1 << 22);
  writer->write_all(bytes.data(), bytes.size());
  writer->close();
  FrameReader reader(*reader_end, limits);
  std::vector<FrameReader::Result> results;
  while (true) {
    FrameReader::Result r = reader.read(milliseconds(2000));
    EXPECT_NE(r.status, FrameReader::Status::kTimeout)
        << "reader stalled on closed input";
    results.push_back(r);
    if (r.status == FrameReader::Status::kEof ||
        r.status == FrameReader::Status::kTimeout ||
        results.size() > 1000)
      break;
  }
  return results;
}

TEST(FrameFuzz, CleanRoundTrip) {
  const Frame sent = make_frame(42, 100);
  const auto results = feed(encode_frame(sent));
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].status, FrameReader::Status::kFrame);
  EXPECT_EQ(results[0].frame.type, sent.type);
  EXPECT_EQ(results[0].frame.seq, sent.seq);
  EXPECT_EQ(results[0].frame.payload, sent.payload);
  EXPECT_EQ(results[1].status, FrameReader::Status::kEof);
}

TEST(FrameFuzz, EveryTruncationYieldsTypedErrorNeverWrongPayload) {
  const Frame sent = make_frame(7, 64);
  const std::vector<std::uint8_t> wire = encode_frame(sent);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::vector<std::uint8_t> part(wire.begin(),
                                         wire.begin() + cut);
    const auto results = feed(part);
    ASSERT_FALSE(results.empty());
    for (const auto& r : results) {
      if (r.status == FrameReader::Status::kFrame)
        FAIL() << "truncation at " << cut << " produced a frame";
      if (r.status == FrameReader::Status::kProtocolError && cut > 0)
        EXPECT_TRUE(r.error == ErrorCode::kTruncated ||
                    r.error == ErrorCode::kBadMagic)
            << "cut=" << cut << " error=" << static_cast<int>(r.error);
    }
    EXPECT_EQ(results.back().status, FrameReader::Status::kEof);
  }
}

TEST(FrameFuzz, EverySingleBitFlipIsDetected) {
  const Frame sent = make_frame(99, 48);
  const std::vector<std::uint8_t> wire = encode_frame(sent);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto results = feed(mutated);
      // A flipped frame must never be delivered as a (different) valid
      // frame: any kFrame result must be byte-identical to the original.
      for (const auto& r : results) {
        if (r.status == FrameReader::Status::kFrame) {
          EXPECT_EQ(r.frame.payload, sent.payload);
          EXPECT_EQ(r.frame.seq, sent.seq);
          EXPECT_EQ(r.frame.type, sent.type);
        }
      }
      // Flips cannot go unnoticed: either a protocol error was reported
      // or (impossible for a single flip) the frame survived intact.
      const bool reported =
          std::any_of(results.begin(), results.end(), [](const auto& r) {
            return r.status == FrameReader::Status::kProtocolError;
          });
      const bool delivered =
          std::any_of(results.begin(), results.end(), [](const auto& r) {
            return r.status == FrameReader::Status::kFrame;
          });
      EXPECT_TRUE(reported && !delivered)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameFuzz, CorruptedFrameBetweenGoodOnesResyncs) {
  const Frame a = make_frame(1, 32);
  const Frame b = make_frame(2, 32);
  const Frame c = make_frame(3, 32);
  std::vector<std::uint8_t> wire = encode_frame(a);
  std::vector<std::uint8_t> bad = encode_frame(b);
  bad[kFrameHeaderSize + 5] ^= 0x10;  // payload flip -> CRC mismatch
  wire.insert(wire.end(), bad.begin(), bad.end());
  const std::vector<std::uint8_t> good_c = encode_frame(c);
  wire.insert(wire.end(), good_c.begin(), good_c.end());

  const auto results = feed(wire);
  std::vector<std::uint64_t> delivered;
  std::size_t errors = 0;
  for (const auto& r : results) {
    if (r.status == FrameReader::Status::kFrame)
      delivered.push_back(r.frame.seq);
    if (r.status == FrameReader::Status::kProtocolError) ++errors;
  }
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_GE(errors, 1u);  // exactly one report per corrupted frame...
  EXPECT_LE(errors, 2u);  // ...possibly plus the truncated-tail report
}

TEST(FrameFuzz, OversizedLengthRejectedWithoutBuffering) {
  FrameLimits limits;
  limits.max_payload = 1024;
  Frame f = make_frame(5, 16);
  std::vector<std::uint8_t> wire = encode_frame(f);
  // Forge the length field to 256 MiB with a consistent header CRC (a
  // misbehaving peer, not line noise); the trailing CRC also breaks, but
  // the length check must fire first, before any payload is buffered.
  const std::uint32_t forged = 256u << 20;
  for (int i = 0; i < 4; ++i)
    wire[16 + i] = static_cast<std::uint8_t>((forged >> (8 * i)) & 0xFF);
  patch_header_crc(wire);

  auto [writer, reader_end] = make_pipe(1 << 16);
  writer->write_all(wire.data(), wire.size());
  FrameReader reader(*reader_end, limits);
  FrameReader::Result r = reader.read(milliseconds(2000));
  ASSERT_EQ(r.status, FrameReader::Status::kProtocolError);
  EXPECT_EQ(r.error, ErrorCode::kOversized);
  EXPECT_LT(reader.buffered(), wire.size() + 1);
  writer->close();
}

TEST(FrameFuzz, LengthFlipOnLiveStreamDetectedImmediately) {
  // A bit flip in the length field on a LIVE connection (no EOF to break a
  // wait): without the header CRC the reader would sit waiting for
  // megabytes of payload that never come. It must instead report a typed
  // header error as soon as the 20-byte header is in.
  Frame f = make_frame(21, 64);
  std::vector<std::uint8_t> wire = encode_frame(f);
  wire[18] ^= 0x40;  // +4 MiB in the little-endian length field

  auto [writer, reader_end] = make_pipe(1 << 16);
  writer->write_all(wire.data(), wire.size());
  FrameReader reader(*reader_end);
  const auto t0 = std::chrono::steady_clock::now();
  FrameReader::Result r = reader.read(milliseconds(2000));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(1500))
      << "a forged length must not stall a live connection";
  ASSERT_EQ(r.status, FrameReader::Status::kProtocolError);
  EXPECT_EQ(r.error, ErrorCode::kBadHeader);
  writer->close();
}

TEST(FrameFuzz, JunkBeforeFrameReportsOnceThenDelivers) {
  const Frame f = make_frame(11, 40);
  std::vector<std::uint8_t> wire(513, 0xAB);  // junk with no magic
  const std::vector<std::uint8_t> good = encode_frame(f);
  wire.insert(wire.end(), good.begin(), good.end());
  const auto results = feed(wire);
  std::size_t errors = 0;
  std::size_t frames = 0;
  for (const auto& r : results) {
    if (r.status == FrameReader::Status::kProtocolError) {
      ++errors;
      EXPECT_EQ(r.error, ErrorCode::kBadMagic);
    }
    if (r.status == FrameReader::Status::kFrame) {
      ++frames;
      EXPECT_EQ(r.frame.payload, f.payload);
    }
  }
  EXPECT_EQ(errors, 1u) << "junk must cost one report, not an error storm";
  EXPECT_EQ(frames, 1u);
}

TEST(FrameFuzz, PureJunkStreamTerminatesWithinWatchdogBudget) {
  FrameLimits limits;
  limits.max_payload = 4096;
  limits.watchdog_steps = 2048;
  std::vector<std::uint8_t> junk(1u << 16);
  std::mt19937 rng(1234);
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng() & 0xFF);
  // Scrub accidental magics so the stream is pure junk.
  for (std::size_t i = 0; i + 4 <= junk.size(); ++i)
    if (junk[i] == 'N' && junk[i + 1] == 'C' && junk[i + 2] == '9' &&
        junk[i + 3] == 'F')
      junk[i] ^= 0xFF;

  const auto results = feed(junk, limits);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results)
    EXPECT_NE(r.status, FrameReader::Status::kFrame);
  // The reader reported (bad magic and/or resync-overrun) and reached EOF.
  EXPECT_EQ(results.back().status, FrameReader::Status::kEof);
}

TEST(FrameFuzz, RandomMutationsNeverHangOrDeliverWrongBytes) {
  std::mt19937 rng(99);
  const Frame base = make_frame(1000, 200);
  const std::vector<std::uint8_t> wire = encode_frame(base);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> mutated = wire;
    const int mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0: mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8)); break;
        case 1: mutated.resize(pos);  break;  // truncate
        case 2: mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(pos),
                               static_cast<std::uint8_t>(rng() & 0xFF));
                break;
      }
      if (mutated.empty()) break;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = feed(mutated);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(5)) << "iter " << iter;
    for (const auto& r : results) {
      if (r.status == FrameReader::Status::kFrame) {
        // Anything delivered as valid must be byte-exact.
        EXPECT_EQ(r.frame.payload, base.payload) << "iter " << iter;
      }
    }
  }
}

TEST(FrameFuzz, FragmentedDeliveryReassembles) {
  const Frame f = make_frame(77, 300);
  const std::vector<std::uint8_t> wire = encode_frame(f);
  auto [writer_ptr, reader_end] = make_pipe(1 << 16);
  ByteStream* writer = writer_ptr.get();
  std::thread feeder([&wire, writer] {
    // 1-to-7-byte fragments with pauses: exercises every partial-header
    // and partial-payload resume path.
    std::size_t off = 0;
    std::mt19937 rng(5);
    while (off < wire.size()) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 7,
                                                  wire.size() - off);
      writer->write_all(wire.data() + off, n);
      off += n;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    writer->close();
  });
  FrameReader reader(*reader_end);
  FrameReader::Result r = reader.read(milliseconds(5000));
  feeder.join();
  ASSERT_EQ(r.status, FrameReader::Status::kFrame);
  EXPECT_EQ(r.frame.payload, f.payload);
}

TEST(FrameFuzz, DeadlineFrameRoundTripsAsV2) {
  Frame sent = make_frame(88, 72);
  sent.deadline_ms = 1500;
  const std::vector<std::uint8_t> wire = encode_frame(sent);
  EXPECT_EQ(wire[4], kFrameVersionDeadline);
  EXPECT_EQ(wire.size(), kFrameHeaderSizeV2 + sent.payload.size() + 4);
  const auto results = feed(wire);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].status, FrameReader::Status::kFrame);
  EXPECT_EQ(results[0].frame.deadline_ms, 1500u);
  EXPECT_EQ(results[0].frame.payload, sent.payload);
}

TEST(FrameFuzz, ZeroDeadlineStaysByteCompatibleV1) {
  Frame sent = make_frame(89, 72);
  sent.deadline_ms = 0;
  const std::vector<std::uint8_t> wire = encode_frame(sent);
  EXPECT_EQ(wire[4], kFrameVersion);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + sent.payload.size() + 4);
  const auto results = feed(wire);
  ASSERT_EQ(results[0].status, FrameReader::Status::kFrame);
  EXPECT_EQ(results[0].frame.deadline_ms, 0u);
}

TEST(FrameFuzz, V2EverySingleBitFlipIsDetected) {
  Frame sent = make_frame(90, 48);
  sent.deadline_ms = 250;  // forces the 24-byte v2 header
  const std::vector<std::uint8_t> wire = encode_frame(sent);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto results = feed(mutated);
      for (const auto& r : results)
        EXPECT_NE(r.status, FrameReader::Status::kFrame)
            << "v2 flip at byte " << byte << " bit " << bit
            << " delivered a frame";
    }
  }
}

TEST(FrameFuzz, ByteDribbleOneBytePerReadReassembles) {
  // A peer that trickles one byte per read op (slowloris shape) must still
  // yield the exact frame -- the reader's resume paths may never lose or
  // reorder a byte regardless of how reads fragment.
  Frame f = make_frame(91, 257);
  f.deadline_ms = 40;  // dribble the v2 shape too
  const std::vector<std::uint8_t> wire = encode_frame(f);
  auto [writer, reader_raw] = make_pipe(1 << 16);
  writer->write_all(wire.data(), wire.size());
  writer->close();
  std::vector<ChaosRule> rules(1);
  rules[0].op = ChaosRule::Op::kRead;
  rules[0].action = ChaosRule::Action::kDribble;
  rules[0].count = ChaosRule::kForever;
  ChaosStream dribbled(std::move(reader_raw), rules, /*seed=*/7);
  FrameReader reader(dribbled);
  FrameReader::Result r = reader.read(milliseconds(10000));
  ASSERT_EQ(r.status, FrameReader::Status::kFrame);
  EXPECT_EQ(r.frame.payload, f.payload);
  EXPECT_EQ(r.frame.deadline_ms, 40u);
  EXPECT_EQ(reader.bytes_consumed(), wire.size());
  EXPECT_GE(dribbled.counters().dribbles, wire.size());
}

TEST(FrameFuzz, MidFrameStallThenResumeDeliversIntact) {
  // Stall with the header and part of the payload delivered, let the
  // reader time out (NOT error), then resume: the partial frame must
  // survive the stall and complete byte-exact.
  const Frame f = make_frame(92, 300);
  const std::vector<std::uint8_t> wire = encode_frame(f);
  auto [writer, reader_end] = make_pipe(1 << 16);
  const std::size_t half = kFrameHeaderSize + 150;
  writer->write_all(wire.data(), half);

  FrameReader reader(*reader_end);
  FrameReader::Result r = reader.read(milliseconds(50));
  EXPECT_EQ(r.status, FrameReader::Status::kTimeout);
  EXPECT_GT(reader.buffered(), 0u) << "partial frame should be buffered";
  r = reader.read(milliseconds(50));
  EXPECT_EQ(r.status, FrameReader::Status::kTimeout)
      << "a stall must not decay into a protocol error";

  writer->write_all(wire.data() + half, wire.size() - half);
  writer->close();
  r = reader.read(milliseconds(2000));
  ASSERT_EQ(r.status, FrameReader::Status::kFrame);
  EXPECT_EQ(r.frame.payload, f.payload);
  EXPECT_EQ(r.frame.seq, f.seq);
}

TEST(FrameFuzz, ChaosScheduleOfStallsAndPartialsConvergesOnPipelinedFrames) {
  // Ten pipelined frames through a chaos schedule mixing stalls, dribbles
  // and short reads: all ten must come out byte-exact and in order.
  std::vector<std::uint8_t> wire;
  std::vector<Frame> sent;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    Frame f = make_frame(s, 64 + s * 17);
    if (s % 2 == 0) f.deadline_ms = static_cast<std::uint32_t>(s * 100);
    const auto one = encode_frame(f);
    wire.insert(wire.end(), one.begin(), one.end());
    sent.push_back(std::move(f));
  }
  auto [writer, reader_raw] = make_pipe(1 << 20);
  writer->write_all(wire.data(), wire.size());
  writer->close();
  const auto rules = parse_chaos_spec(
      "read:stall=5@3x4,read:dribble@1x40,read:partial=3@0x200");
  ChaosStream chaotic(std::move(reader_raw), rules, /*seed=*/11);
  FrameReader reader(chaotic);
  std::vector<Frame> got;
  while (true) {
    FrameReader::Result r = reader.read(milliseconds(10000));
    ASSERT_NE(r.status, FrameReader::Status::kProtocolError);
    if (r.status == FrameReader::Status::kEof) break;
    if (r.status == FrameReader::Status::kFrame) got.push_back(r.frame);
    ASSERT_LT(got.size(), 100u);
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].seq, sent[i].seq);
    EXPECT_EQ(got[i].payload, sent[i].payload);
    EXPECT_EQ(got[i].deadline_ms, sent[i].deadline_ms);
  }
  EXPECT_GT(chaotic.counters().total(), 0u);
}

TEST(FrameFuzz, ErrorPayloadRoundTrip) {
  const auto payload = error_payload(ErrorCode::kOverloaded, "queue full");
  const ParsedError e = parse_error_payload(payload);
  EXPECT_EQ(e.code, ErrorCode::kOverloaded);
  EXPECT_EQ(e.detail, "queue full");
  EXPECT_THROW(parse_error_payload({0x01}), std::runtime_error);
}

}  // namespace
}  // namespace nc::serve
