#include "synth/qm.h"

#include <gtest/gtest.h>

#include <random>

namespace nc::synth {
namespace {

TEST(Cube, CoversAndLiterals) {
  const Cube c{0b101, 0b111};  // x0 x1' x2
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b111));
  EXPECT_EQ(c.literal_count(), 3u);
  const Cube wide{0b001, 0b001};  // x0 only
  EXPECT_TRUE(wide.covers(0b111));
  EXPECT_TRUE(wide.covers(0b001));
  EXPECT_FALSE(wide.covers(0b110));
}

TEST(Cube, ToString) {
  EXPECT_EQ((Cube{0b01, 0b11}).to_string(2), "x0x1'");
  EXPECT_EQ((Cube{0, 0}).to_string(2), "1");
}

TEST(Qm, ConstantZero) { EXPECT_TRUE(minimize(3, {}).empty()); }

TEST(Qm, ConstantOne) {
  const auto cover = minimize(2, {0, 1, 2, 3});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0u);  // tautology cube
}

TEST(Qm, SingleMinterm) {
  const auto cover = minimize(3, {0b101});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 3u);
}

TEST(Qm, ClassicTextbookExample) {
  // f(a,b,c,d) = sum m(0,1,2,5,6,7,8,9,10,14), the standard QM example:
  // minimal cover has 4 terms.
  const std::vector<std::uint32_t> ones = {0, 1, 2, 5, 6, 7, 8, 9, 10, 14};
  const auto cover = minimize(4, ones);
  EXPECT_TRUE(cover_matches(4, cover, ones));
  EXPECT_LE(cover.size(), 4u);
}

TEST(Qm, XorNeedsAllMinterms) {
  const std::vector<std::uint32_t> ones = {0b01, 0b10};
  const auto cover = minimize(2, ones);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(cover_matches(2, cover, ones));
}

TEST(Qm, DontCaresShrinkCover) {
  // f = m(1); dc = m(0,3): with DCs, x1' (or x0...) single literal works?
  // ones {1}, dc {0,3}: cube x0 covers {1,3} -> matches (0 is dc, 2 must be
  // off: x0 doesn't cover 2). So one 1-literal cube suffices.
  const auto cover = minimize(2, {1}, {0, 3});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_LE(cover[0].literal_count(), 1u);
  EXPECT_TRUE(cover_matches(2, cover, {1}, {0, 3}));
}

TEST(Qm, RejectsOverlappingOnAndDc) {
  EXPECT_THROW(minimize(2, {1}, {1}), std::invalid_argument);
}

TEST(Qm, RejectsOutOfRangeMinterm) {
  EXPECT_THROW(minimize(2, {4}), std::invalid_argument);
}

TEST(Qm, RandomFunctionsExactness) {
  std::mt19937 rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const unsigned n = 3 + rng() % 4;  // 3..6 variables
    std::vector<std::uint32_t> ones, dcs;
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
      const int r = static_cast<int>(rng() % 4);
      if (r == 0) ones.push_back(m);
      if (r == 1) dcs.push_back(m);
    }
    const auto cover = minimize(n, ones, dcs);
    EXPECT_TRUE(cover_matches(n, cover, ones, dcs))
        << "trial " << trial << " n=" << n;
  }
}

TEST(Qm, CoverIsMadeOfPrimeImplicants) {
  // Every cube of the cover must be expandable no further: removing any
  // literal must hit the OFF-set.
  const std::vector<std::uint32_t> ones = {0, 1, 2, 5, 6, 7};
  const unsigned n = 3;
  const auto cover = minimize(n, ones);
  auto in_on = [&](std::uint32_t m) {
    return std::find(ones.begin(), ones.end(), m) != ones.end();
  };
  for (const Cube& c : cover) {
    for (unsigned bit = 0; bit < n; ++bit) {
      if (!((c.mask >> bit) & 1u)) continue;
      const Cube expanded{c.value, c.mask & ~(1u << bit)};
      bool hits_off = false;
      for (std::uint32_t m = 0; m < (1u << n); ++m)
        if (expanded.covers(m) && !in_on(m)) hits_off = true;
      EXPECT_TRUE(hits_off) << "cube " << c.to_string(n)
                            << " is not prime (bit " << bit << ")";
    }
  }
}

TEST(SopCostTest, CountsGatesAndInverters) {
  // Two cubes over 3 vars: x0 x1' + x2': 1 AND (2 lits), OR of 2 terms,
  // inverters for x1 and x2.
  const std::vector<Cube> cover = {Cube{0b001, 0b011}, Cube{0b000, 0b100}};
  const SopCost cost = sop_cost(cover);
  EXPECT_EQ(cost.and_gates, 1u);
  EXPECT_EQ(cost.or_gates, 1u);
  EXPECT_EQ(cost.inverters, 2u);
  EXPECT_EQ(cost.literals, 3u);
  EXPECT_EQ(cost.gate_equivalents(), 4u);
}

}  // namespace
}  // namespace nc::synth
