#include "bits/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace nc::bits {
namespace {

TEST(Serialize, TritVectorRoundTrip) {
  const TritVector v = TritVector::from_string("01X10XX011X");
  std::stringstream io;
  save_trits(io, v);
  EXPECT_EQ(load_trits(io), v);
}

TEST(Serialize, EmptyVector) {
  std::stringstream io;
  save_trits(io, TritVector{});
  EXPECT_TRUE(load_trits(io).empty());
}

TEST(Serialize, SizesNotMultipleOfFour) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u}) {
    TritVector v;
    for (std::size_t i = 0; i < n; ++i)
      v.push_back(static_cast<Trit>(i % 3));
    std::stringstream io;
    save_trits(io, v);
    EXPECT_EQ(load_trits(io), v) << "n=" << n;
  }
}

TEST(Serialize, TestSetRoundTrip) {
  const TestSet ts = TestSet::from_strings({"01X1", "XX00", "1111"});
  std::stringstream io;
  save_test_set(io, ts);
  EXPECT_EQ(load_test_set(io), ts);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream io("JUNKDATA");
  EXPECT_THROW(load_trits(io), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedPayload) {
  const TritVector v(100, Trit::One);
  std::stringstream io;
  save_trits(io, v);
  const std::string full = io.str();
  std::stringstream cut(full.substr(0, full.size() - 5));
  EXPECT_THROW(load_trits(cut), std::runtime_error);
}

TEST(Serialize, RejectsKindMismatch) {
  std::stringstream io;
  save_trits(io, TritVector::from_string("01"));
  EXPECT_THROW(load_test_set(io), std::runtime_error);
  std::stringstream io2;
  save_test_set(io2, TestSet::from_strings({"01"}));
  EXPECT_THROW(load_trits(io2), std::runtime_error);
}

TEST(Serialize, RejectsInvalidTritEncoding) {
  std::stringstream io;
  save_trits(io, TritVector::from_string("0000"));
  std::string data = io.str();
  data[data.size() - 1] = '\xFF';  // 0b11 trits
  std::stringstream bad(data);
  EXPECT_THROW(load_trits(bad), std::runtime_error);
}

TEST(Serialize, FileHelpersRoundTrip) {
  const std::string path = "/tmp/nc_serialize_test.bin";
  const TestSet ts = TestSet::from_strings({"01X", "X10"});
  save_test_set_file(path, ts);
  EXPECT_EQ(load_test_set_file(path), ts);
  std::remove(path.c_str());
  EXPECT_THROW(load_test_set_file(path), std::runtime_error);
}

TEST(Serialize, PayloadIsCompact) {
  // 4 trits/byte: 1000 trits -> 4 + 1 + 8 + 250 bytes.
  const TritVector v(1000, Trit::X);
  std::stringstream io;
  save_trits(io, v);
  EXPECT_EQ(io.str().size(), 4u + 1u + 8u + 250u);
}

}  // namespace
}  // namespace nc::bits
