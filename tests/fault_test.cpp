#include "sim/fault.h"

#include <gtest/gtest.h>

#include "circuit/bench_io.h"
#include "circuit/samples.h"

namespace nc::sim {
namespace {

using circuit::GateType;
using circuit::Netlist;

TEST(FanoutCounts, CountsGatePinsAndOutputs) {
  const Netlist nl = circuit::samples::c17();
  const auto fanout = fanout_counts(nl);
  // G11 feeds G16 and G19: fanout 2. G16 feeds G22, G23: 2.
  EXPECT_EQ(fanout[nl.find("G11")], 2u);
  EXPECT_EQ(fanout[nl.find("G16")], 2u);
  // G22 is only a primary output: fanout 1.
  EXPECT_EQ(fanout[nl.find("G22")], 1u);
  // G10 feeds only G22.
  EXPECT_EQ(fanout[nl.find("G10")], 1u);
}

TEST(FullFaultList, CountsStemsAndBranches) {
  const Netlist nl = circuit::samples::c17();
  const auto faults = full_fault_list(nl);
  // Stems: 2 per node (11 nodes). Branches: fanout>1 nodes are G1? no --
  // G3 (feeds G10, G11), G11 (G16, G19), G16 (G22, G23): each contributes
  // 2 branches x 2 polarities = 4 faults. Total = 22 + 12 = 34.
  std::size_t stems = 0, branches = 0;
  for (const Fault& f : faults) (f.is_stem() ? stems : branches) += 1;
  EXPECT_EQ(stems, 2 * nl.size());
  EXPECT_EQ(branches, 12u);
}

TEST(FullFaultList, BranchFaultsOnlyOnMultiFanout) {
  const Netlist nl = circuit::samples::c17();
  const auto fanout = fanout_counts(nl);
  for (const Fault& f : full_fault_list(nl))
    if (!f.is_stem()) {
      EXPECT_GT(fanout[f.node], 1u);
    }
}

TEST(CollapsedFaultList, SmallerThanFull) {
  const Netlist nl = circuit::samples::c17();
  const auto full = full_fault_list(nl);
  const auto collapsed = collapsed_fault_list(nl);
  EXPECT_LT(collapsed.size(), full.size());
  EXPECT_GT(collapsed.size(), 0u);
}

TEST(CollapsedFaultList, InverterChainCollapsesToTwo) {
  // a -> NOT -> NOT -> y : all six stem faults collapse into two classes.
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\ny = NOT(n1)\n");
  const auto collapsed = collapsed_fault_list(nl);
  EXPECT_EQ(collapsed.size(), 2u);
}

TEST(CollapsedFaultList, AndGateKeepsSixOfEight) {
  // 2-input AND, single fanout everywhere: 8 stem faults total
  // (a0,a1,b0,b1,y0,y1 -- 6 faults); a-sa0 == b-sa0 == y-sa0 merge -> 4.
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  const auto collapsed = collapsed_fault_list(nl);
  EXPECT_EQ(collapsed.size(), 4u);
}

TEST(CollapsedFaultList, XorDoesNotCollapse) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
  EXPECT_EQ(collapsed_fault_list(nl).size(), 6u);
}

TEST(Fault, ToStringFormats) {
  const Netlist nl = circuit::samples::c17();
  const Fault stem{nl.find("G10"), Netlist::npos, 0, true};
  EXPECT_EQ(stem.to_string(nl), "G10 s-a-1");
  const Fault branch{nl.find("G11"), nl.find("G16"), 1, false};
  EXPECT_EQ(branch.to_string(nl), "G11->G16.1 s-a-0");
}

TEST(CollapsedFaultList, WorksOnSequentialCircuit) {
  const Netlist nl = circuit::samples::s27();
  const auto collapsed = collapsed_fault_list(nl);
  const auto full = full_fault_list(nl);
  EXPECT_LT(collapsed.size(), full.size());
}

}  // namespace
}  // namespace nc::sim
