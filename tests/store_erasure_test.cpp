// The erasure-coded shard tier's crash/fault contract
// (store/sharded_store.h): every previously-acknowledged artifact must
// come back byte-identical after any single-shard directory deletion, any
// <= parity subset loss, corrupt strip bytes, or a torn cross-shard write
// -- and scrub must restore full redundancy afterwards. Faults are driven
// deterministically through FaultInjectingIo (store/io.h) rather than by
// luck. The codec layer underneath has its own exhaustive matrix in
// erasure_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "store/io.h"
#include "store/sharded_store.h"
#include "store/store.h"

namespace nc::store {
namespace {

namespace fs = std::filesystem;

Key key_of(std::uint64_t n) { return Key{n * 0x9E3779B97F4A7C15ull + 1, ~n}; }

std::vector<std::uint8_t> payload_of(std::uint64_t n, std::size_t len) {
  std::mt19937_64 rng(n ^ 0xD1B54A32D192ED03ull);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

/// Mix of inline (< threshold) and striped (>= threshold) sizes.
std::size_t size_of(std::uint64_t n, std::size_t threshold) {
  switch (n % 4) {
    case 0: return 16 + n;                    // inline
    case 1: return threshold - 1;             // inline, boundary
    case 2: return threshold + (n % 97);      // striped, boundary
    default: return 3 * threshold + (n % 61); // striped, multi-segment
  }
}

class ShardedStoreTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kThreshold = 512;

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("nc_sharded_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ShardedStoreConfig config(unsigned shards, unsigned parity,
                            Io* io = nullptr) const {
    ShardedStoreConfig c;
    c.dir = dir_.string();
    c.shards = shards;
    c.parity = parity;
    c.stripe_threshold_bytes = kThreshold;
    c.auto_compact = false;
    c.io = io;
    return c;
  }

  void fill(ShardedStore& store, std::uint64_t keys) {
    for (std::uint64_t n = 0; n < keys; ++n)
      store.put(key_of(n), payload_of(n, size_of(n, kThreshold)));
  }

  /// Every key byte-identical. `allow_miss` tolerates kMiss/kCorrupt (used
  /// when damage legitimately exceeds parity) but NEVER wrong bytes.
  void expect_all(ShardedStore& store, std::uint64_t keys,
                  bool allow_miss = false) {
    for (std::uint64_t n = 0; n < keys; ++n) {
      GetResult r = store.get(key_of(n));
      if (r.status != GetStatus::kHit) {
        EXPECT_TRUE(allow_miss) << "key " << n << " lost";
        continue;
      }
      ASSERT_EQ(r.payload, payload_of(n, size_of(n, kThreshold)))
          << "key " << n << " served WRONG bytes";
    }
  }

  fs::path dir_;
};

TEST_F(ShardedStoreTest, InlineAndStripedRoundTrip) {
  constexpr std::uint64_t kKeys = 24;
  ShardedStore store(config(4, 1));
  fill(store, kKeys);
  expect_all(store, kKeys);

  const ShardedStats s = store.stats();
  EXPECT_EQ(s.puts, kKeys);
  EXPECT_GT(s.inline_puts, 0u);
  EXPECT_GT(s.striped_puts, 0u);
  EXPECT_EQ(s.inline_puts + s.striped_puts, kKeys);
  EXPECT_EQ(s.degraded_reads, 0u);
  EXPECT_EQ(s.unrecoverable_reads, 0u);
  EXPECT_EQ(s.failed_writes, 0u);

  // A healthy store reports no damage to repair.
  const ScrubReport rep = store.scrub();
  EXPECT_TRUE(rep.full_redundancy);
  EXPECT_EQ(rep.strips_repaired + rep.heads_repaired + rep.copies_repaired,
            0u);
  EXPECT_EQ(rep.unrecoverable, 0u);
}

TEST_F(ShardedStoreTest, DuplicatePutAndEraseRemoveEverywhere) {
  ShardedStore store(config(4, 1));
  const Key inline_key = key_of(0);
  const Key striped_key = key_of(3);
  store.put(inline_key, payload_of(0, 100));
  store.put(inline_key, payload_of(0, 100));  // content-addressed: no-op
  store.put(striped_key, payload_of(3, 4 * kThreshold));

  EXPECT_TRUE(store.contains(inline_key));
  EXPECT_TRUE(store.erase(striped_key));
  EXPECT_FALSE(store.contains(striped_key));
  EXPECT_EQ(store.get(striped_key).status, GetStatus::kMiss);
  EXPECT_TRUE(store.erase(inline_key));
  EXPECT_FALSE(store.erase(inline_key));  // already gone

  // Erase must purge strips too, or they would read as orphans forever.
  const ScrubReport rep = store.scrub();
  EXPECT_EQ(rep.artifacts, 0u);
  EXPECT_EQ(rep.orphan_strips, 0u);
}

TEST_F(ShardedStoreTest, WarmReopenServesEverything) {
  constexpr std::uint64_t kKeys = 16;
  {
    ShardedStore store(config(4, 1));
    fill(store, kKeys);
  }
  ShardedStore store(config(4, 1));
  expect_all(store, kKeys);
  EXPECT_EQ(store.stats().degraded_reads, 0u);
}

// The acceptance matrix: delete each shard directory in turn; every
// previously-acknowledged artifact must still be served byte-identically
// (reconstructing where needed), and a scrub must restore full redundancy
// so a SECOND, different shard loss is also survivable.
TEST_F(ShardedStoreTest, EverySingleShardDeletionStillServesEverything) {
  constexpr std::uint64_t kKeys = 20;
  constexpr unsigned kShards = 4;
  const fs::path pristine = dir_.string() + "_pristine";
  {
    ShardedStore store(config(kShards, 1));
    fill(store, kKeys);
  }
  fs::remove_all(pristine);
  fs::copy(dir_, pristine, fs::copy_options::recursive);

  for (unsigned victim = 0; victim < kShards; ++victim) {
    fs::remove_all(dir_);
    fs::copy(pristine, dir_, fs::copy_options::recursive);
    fs::remove_all(dir_ / ShardedStore::shard_dir_name(victim));

    ShardedStore store(config(0, 1));  // adopt geometry from the marker
    EXPECT_EQ(store.shards(), kShards);
    expect_all(store, kKeys);
    EXPECT_GT(store.stats().degraded_reads, 0u)
        << "losing shard " << victim << " went unnoticed";

    const ScrubReport rep = store.scrub();
    EXPECT_TRUE(rep.full_redundancy) << "victim " << victim;
    EXPECT_EQ(rep.unrecoverable, 0u);
    EXPECT_GT(rep.strips_repaired + rep.copies_repaired, 0u);

    // Redundancy is back: lose a DIFFERENT shard and read again.
    const unsigned second = (victim + 1) % kShards;
    fs::remove_all(dir_ / ShardedStore::shard_dir_name(second));
    ShardedStore after(config(0, 1));
    for (std::uint64_t n = 0; n < kKeys; ++n) {
      GetResult r = after.get(key_of(n));
      ASSERT_EQ(r.status, GetStatus::kHit)
          << "key " << n << " lost after repair + second loss";
      ASSERT_EQ(r.payload, payload_of(n, size_of(n, kThreshold)));
    }
  }
  fs::remove_all(pristine);
}

TEST_F(ShardedStoreTest, TwoParityTwoShardLossesSurvive) {
  constexpr std::uint64_t kKeys = 12;
  constexpr unsigned kShards = 5;
  {
    ShardedStore store(config(kShards, 2));
    fill(store, kKeys);
  }
  fs::remove_all(dir_ / ShardedStore::shard_dir_name(1));
  fs::remove_all(dir_ / ShardedStore::shard_dir_name(3));
  ShardedStore store(config(kShards, 2));
  expect_all(store, kKeys);
  EXPECT_GT(store.stats().strips_reconstructed, 0u);
}

TEST_F(ShardedStoreTest, CorruptStripBytesAreRoutedAround) {
  constexpr std::uint64_t kKeys = 10;
  {
    ShardedStore store(config(4, 1));
    fill(store, kKeys);
  }
  // Scribble over every segment payload byte of one shard. Each read from
  // that shard now fails CRC revalidation; reconstruction must cover.
  const fs::path victim = dir_ / ShardedStore::shard_dir_name(2);
  for (const auto& entry : fs::directory_iterator(victim)) {
    if (entry.path().extension() != ".nc9a") continue;
    std::vector<std::uint8_t> bytes;
    {
      std::FILE* f = std::fopen(entry.path().string().c_str(), "rb");
      ASSERT_NE(f, nullptr);
      std::fseek(f, 0, SEEK_END);
      bytes.resize(static_cast<std::size_t>(std::ftell(f)));
      std::fseek(f, 0, SEEK_SET);
      ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
      std::fclose(f);
    }
    for (std::size_t i = 13; i < bytes.size(); i += 7) bytes[i] ^= 0x5A;
    std::FILE* f = std::fopen(entry.path().string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  ShardedStore store(config(4, 1));
  expect_all(store, kKeys);
  const ScrubReport rep = store.scrub();
  EXPECT_TRUE(rep.full_redundancy);
  EXPECT_EQ(rep.unrecoverable, 0u);
}

TEST_F(ShardedStoreTest, GeometryIsPinnedByTheMarker) {
  { ShardedStore store(config(4, 1)); }
  // Different shard count or parity must refuse -- silently rehashing
  // would orphan every record.
  try {
    ShardedStore store(config(5, 1));
    FAIL() << "geometry mismatch accepted";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrc::kInvalid);
  }
  EXPECT_THROW(ShardedStore(config(4, 2)), StoreError);
  // shards=0 adopts.
  ShardedStore adopted(config(0, 0));
  EXPECT_EQ(adopted.shards(), 4u);
  EXPECT_EQ(adopted.parity(), 1u);
  EXPECT_TRUE(ShardedStore::is_sharded_dir(dir_.string()));
  EXPECT_FALSE(ShardedStore::is_sharded_dir(dir_.string() + "_nope"));
}

TEST_F(ShardedStoreTest, RejectsBadGeometry) {
  EXPECT_THROW(ShardedStore(config(1, 0)), StoreError);   // < 2 shards
  EXPECT_THROW(ShardedStore(config(4, 4)), StoreError);   // parity >= shards
  EXPECT_THROW(ShardedStore(config(65, 1)), StoreError);  // > 64 shards
}

// ------------------------------------------------------- fault injection

TEST_F(ShardedStoreTest, BreakerQuarantinesDeadShardAndProbesItBack) {
  constexpr std::uint64_t kKeys = 12;
  FaultInjectingIo io;
  ShardedStoreConfig cfg = config(4, 1, &io);
  cfg.breaker_open_after = 2;
  cfg.breaker_probe_after = 3;
  ShardedStore store(cfg);
  fill(store, kKeys);

  // Yank shard-01's disk out from under live file descriptors, then trip
  // the breaker with two deterministic disk-touching failures: each
  // striped get reads exactly one strip from the dead shard (and serves
  // the payload by reconstruction). Two DIFFERENT keys, because the first
  // failure drops that strip from the shard's in-memory index and a
  // repeat would be an index miss -- which counts as shard-alive.
  io.kill_path(ShardedStore::shard_dir_name(1));
  EXPECT_EQ(store.get(key_of(2)).status, GetStatus::kHit);   // striped
  EXPECT_EQ(store.get(key_of(3)).status, GetStatus::kHit);   // striped
  EXPECT_NE(store.shard_health()[1], ShardHealth::kClosed);

  // Quarantined shard: reads still serve everything, degraded.
  for (int round = 0; round < 4; ++round) expect_all(store, kKeys);
  const ShardedStats s = store.stats();
  EXPECT_GE(s.shard_errors, 2u);
  EXPECT_GT(s.breaker_opens, 0u);
  EXPECT_GT(s.skipped_shard_ops, 0u);

  // Disk comes back: keep operating until a probe re-closes the breaker.
  io.revive_path(ShardedStore::shard_dir_name(1));
  for (int round = 0; round < 32; ++round) {
    expect_all(store, kKeys);
    if (store.shard_health()[1] == ShardHealth::kClosed) break;
  }
  EXPECT_EQ(store.shard_health()[1], ShardHealth::kClosed);
  EXPECT_GT(store.stats().breaker_probes, 0u);

  // Writes taken while the shard was dead were degraded; scrub heals.
  const ScrubReport rep = store.scrub();
  EXPECT_TRUE(rep.full_redundancy);
  expect_all(store, kKeys);
}

// A shard whose directory is unopenable at construction starts with its
// breaker open and a null store; once the obstruction is gone, a breaker
// probe must build a fresh Store and bring the shard back.
TEST_F(ShardedStoreTest, ProbeReopensShardThatFailedToOpen) {
  constexpr std::uint64_t kKeys = 10;
  {
    ShardedStore store(config(4, 1));
    fill(store, kKeys);
  }
  // Replace shard-01's manifest with garbage: Store's ctor refuses it.
  const fs::path manifest =
      dir_ / ShardedStore::shard_dir_name(1) / "manifest.nc9m";
  {
    std::FILE* f = std::fopen(manifest.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a manifest at all", f);
    std::fclose(f);
  }
  ShardedStoreConfig cfg = config(0, 1);
  cfg.breaker_probe_after = 2;
  ShardedStore store(cfg);
  EXPECT_NE(store.shard_health()[1], ShardHealth::kClosed);
  EXPECT_GT(store.stats().breaker_opens, 0u);
  expect_all(store, kKeys);  // serves around the dead shard meanwhile

  // Clear the obstruction; fsck(repair) on reopen would also have done it,
  // but here the shard directory is simply reset.
  fs::remove_all(dir_ / ShardedStore::shard_dir_name(1));
  for (int round = 0; round < 32; ++round) {
    expect_all(store, kKeys);
    if (store.shard_health()[1] == ShardHealth::kClosed) break;
  }
  EXPECT_EQ(store.shard_health()[1], ShardHealth::kClosed);

  // The reopened shard is empty; scrub restores its strip complement.
  const ScrubReport rep = store.scrub();
  EXPECT_TRUE(rep.full_redundancy);
  EXPECT_EQ(rep.unrecoverable, 0u);
  expect_all(store, kKeys);
}

// Torn cross-shard write matrix: fail the Nth write of a striped put, for
// every N, both as EIO and as a short write. The put may ack degraded or
// throw; either way NO previously-acked artifact may be damaged, a get of
// the new key must return right bytes or a clean miss -- never garbage --
// and after reopen + scrub the survivors hold full redundancy.
TEST_F(ShardedStoreTest, TornCrossShardWriteNeverServesWrongBytes) {
  constexpr std::uint64_t kOldKeys = 6;
  const Key fresh = key_of(777);
  const auto fresh_payload = payload_of(777, 3 * kThreshold);

  for (const bool short_write : {false, true}) {
    for (std::uint64_t fail_at = 0; fail_at < 10; ++fail_at) {
      fs::remove_all(dir_);
      FaultInjectingIo io;
      ShardedStoreConfig cfg = config(4, 1, &io);
      {
        ShardedStore store(cfg);
        fill(store, kOldKeys);

        FaultInjectingIo::Rule rule;
        rule.op = FaultInjectingIo::Op::kWrite;
        rule.skip = fail_at;
        rule.count = 0;  // everything after the cut fails too (crash-like)
        if (short_write) rule.short_len = 3;
        io.add_rule(rule);
        try {
          store.put(fresh, fresh_payload.data(), fresh_payload.size());
        } catch (const StoreError&) {
        }
        io.clear();

        GetResult r = store.get(fresh);
        if (r.status == GetStatus::kHit) {
          ASSERT_EQ(r.payload, fresh_payload)
              << "fail_at=" << fail_at << " short=" << short_write;
        }
      }

      // Reopen clean: old artifacts intact, fresh one right-or-missing.
      ShardedStore store(cfg);
      expect_all(store, kOldKeys);
      GetResult r = store.get(fresh);
      if (r.status == GetStatus::kHit) {
        ASSERT_EQ(r.payload, fresh_payload);
      }
      const ScrubReport rep = store.scrub();
      EXPECT_EQ(rep.unrecoverable, 0u)
          << "fail_at=" << fail_at << " short=" << short_write;
      expect_all(store, kOldKeys);
    }
  }
}

TEST_F(ShardedStoreTest, NoSpaceEverywhereSurfacesTyped) {
  FaultInjectingIo io;
  ShardedStore store(config(4, 1, &io));
  FaultInjectingIo::Rule rule;
  rule.op = FaultInjectingIo::Op::kWrite;
  rule.count = 0;  // forever
  rule.err = ENOSPC;
  io.add_rule(rule);
  try {
    store.put(key_of(1), payload_of(1, 64));
    FAIL() << "put acked with every shard out of space";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrc::kNoSpace);
  }
  EXPECT_GT(store.stats().failed_writes, 0u);
}

// Seeded soak: random EIO/ENOSPC/short-write rules come and go while keys
// are put and read. Acked puts are remembered; after the storm every acked
// key must read back byte-identical (reopened, faults cleared, scrubbed).
TEST_F(ShardedStoreTest, SeededFaultScheduleSoak) {
  constexpr int kOps = 120;
  std::mt19937_64 rng(20260808);
  FaultInjectingIo io;
  ShardedStoreConfig cfg = config(4, 1, &io);
  cfg.breaker_open_after = 2;
  cfg.breaker_probe_after = 2;
  std::vector<std::uint64_t> acked;
  {
    ShardedStore store(cfg);
    for (int op = 0; op < kOps; ++op) {
      if (rng() % 8 == 0) {
        FaultInjectingIo::Rule rule;
        rule.op = FaultInjectingIo::Op::kWrite;
        rule.path_contains = ShardedStore::shard_dir_name(
            static_cast<unsigned>(rng() % 4));
        rule.count = 1 + rng() % 3;
        switch (rng() % 3) {
          case 0: rule.err = EIO; break;
          case 1: rule.err = ENOSPC; break;
          default: rule.short_len = 1 + rng() % 8; break;
        }
        io.add_rule(rule);
      }
      if (rng() % 16 == 0) io.clear();
      const std::uint64_t n = rng() % 64;
      try {
        store.put(key_of(n), payload_of(n, size_of(n, kThreshold)));
        acked.push_back(n);
      } catch (const StoreError&) {
      }
      if (!acked.empty() && rng() % 3 == 0) {
        const std::uint64_t probe = acked[rng() % acked.size()];
        GetResult r = store.get(key_of(probe));
        if (r.status == GetStatus::kHit) {
          ASSERT_EQ(r.payload,
                    payload_of(probe, size_of(probe, kThreshold)))
              << "op " << op << ": wrong bytes under faults";
        }
      }
    }
    io.clear();
  }
  ASSERT_FALSE(acked.empty());
  ShardedStore store(config(0, 1));
  (void)store.scrub();
  for (const std::uint64_t n : acked) {
    GetResult r = store.get(key_of(n));
    ASSERT_EQ(r.status, GetStatus::kHit) << "acked key " << n << " lost";
    ASSERT_EQ(r.payload, payload_of(n, size_of(n, kThreshold)));
  }
  const ScrubReport rep = store.scrub();
  EXPECT_TRUE(rep.full_redundancy);
  EXPECT_EQ(rep.unrecoverable, 0u);
}

TEST_F(ShardedStoreTest, CompactionPreservesEveryArtifact) {
  constexpr std::uint64_t kKeys = 16;
  ShardedStoreConfig cfg = config(4, 1);
  cfg.segment_target_bytes = 2048;  // force several segments per shard
  ShardedStore store(cfg);
  fill(store, kKeys);
  // Overwrite-free store: garbage comes from erases.
  for (std::uint64_t n = 0; n < kKeys; n += 2) store.erase(key_of(n));
  (void)store.compact(0.0);
  for (std::uint64_t n = 1; n < kKeys; n += 2) {
    GetResult r = store.get(key_of(n));
    ASSERT_EQ(r.status, GetStatus::kHit);
    ASSERT_EQ(r.payload, payload_of(n, size_of(n, kThreshold)));
  }
  for (std::uint64_t n = 0; n < kKeys; n += 2)
    EXPECT_EQ(store.get(key_of(n)).status, GetStatus::kMiss);
}

TEST_F(ShardedStoreTest, FsckShardIteratesCleanly) {
  constexpr std::uint64_t kKeys = 8;
  ShardedStore store(config(4, 1));
  fill(store, kKeys);
  for (unsigned s = 0; s < store.shards(); ++s) {
    const FsckReport rep = store.fsck_shard(s, false);
    EXPECT_TRUE(rep.clean) << "shard " << s;
  }
}

}  // namespace
}  // namespace nc::store
