// Round-trip contracts for everything a tuned genome travels through:
// JSON table files, the fixed-width byte form inside serve payloads and
// artifacts, and -- most importantly -- the encoder/decoder pair under
// asymmetric splits and fill policies, where scalar and bitplane impls must
// stay byte-identical.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "codec/nine_coded.h"
#include "gen/cube_gen.h"
#include "serve/frame.h"
#include "tune/genome.h"

namespace nc::tune {
namespace {

using bits::TestSet;
using bits::TritVector;

TuneGenome sample_genome() {
  TuneGenome g;
  g.k = 10;
  g.split = 3;
  g.lengths = {1, 2, 5, 5, 4, 5, 5, 5, 5};
  g.fill = FillPolicy::kRandom;
  g.fill_seed = 0xDEADBEEFCAFEF00Dull;
  return g;
}

TEST(GenomeJson, RoundTripsEveryField) {
  const TuneGenome g = sample_genome();
  EXPECT_EQ(TuneGenome::from_json(g.to_json()), g);
  const TuneGenome d;  // defaults round-trip too
  EXPECT_EQ(TuneGenome::from_json(d.to_json()), d);
}

TEST(GenomeJson, AcceptsUnknownKeysAndAnyKeyOrder) {
  const TuneGenome g = TuneGenome::from_json(
      "{\"future_extension\": {\"nested\": [1, 2]}, \"fill_seed\": 9,"
      " \"lengths\": [1,2,5,5,5,5,5,5,4], \"fill\": \"zero\","
      " \"split\": 0, \"k\": 12, \"format\": \"nc9-tune-genome\"}");
  EXPECT_EQ(g.k, 12u);
  EXPECT_EQ(g.fill, FillPolicy::kZero);
  EXPECT_EQ(g.fill_seed, 9u);
}

TEST(GenomeJson, RejectsMalformedDocuments) {
  EXPECT_THROW(TuneGenome::from_json(""), GenomeParseError);
  EXPECT_THROW(TuneGenome::from_json("not json"), GenomeParseError);
  EXPECT_THROW(TuneGenome::from_json("{\"k\": 8"), GenomeParseError);
  // Wrong format tag.
  EXPECT_THROW(
      TuneGenome::from_json("{\"format\": \"something-else\", \"k\": 8}"),
      GenomeParseError);
  // lengths must carry exactly nine entries.
  EXPECT_THROW(TuneGenome::from_json(
                   "{\"format\": \"nc9-tune-genome\", \"k\": 8,"
                   " \"lengths\": [1,2,3]}"),
               GenomeParseError);
  // Unknown fill policy name.
  EXPECT_THROW(TuneGenome::from_json(
                   "{\"format\": \"nc9-tune-genome\", \"k\": 8,"
                   " \"fill\": \"sideways\"}"),
               GenomeParseError);
  // split must stay below k; symmetric split needs even k.
  EXPECT_THROW(TuneGenome::from_json(
                   "{\"format\": \"nc9-tune-genome\", \"k\": 8,"
                   " \"split\": 8}"),
               GenomeParseError);
  EXPECT_THROW(TuneGenome::from_json(
                   "{\"format\": \"nc9-tune-genome\", \"k\": 9}"),
               GenomeParseError);
}

TEST(GenomeBytes, RoundTripsAndIsFixedWidth) {
  const TuneGenome g = sample_genome();
  std::vector<std::uint8_t> bytes;
  g.append_bytes(bytes);
  const std::size_t one = bytes.size();
  g.append_bytes(bytes);  // append twice: offsets must advance exactly
  EXPECT_EQ(bytes.size(), 2 * one);
  std::size_t off = 0;
  EXPECT_EQ(TuneGenome::from_bytes(bytes, off), g);
  EXPECT_EQ(off, one);
  EXPECT_EQ(TuneGenome::from_bytes(bytes, off), g);
  EXPECT_EQ(off, bytes.size());
}

TEST(GenomeBytes, RejectsTruncationAndBadFill) {
  const TuneGenome g = sample_genome();
  std::vector<std::uint8_t> bytes;
  g.append_bytes(bytes);
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 1);
  std::size_t off = 0;
  EXPECT_THROW(TuneGenome::from_bytes(cut, off), GenomeParseError);
  // The fill byte sits after k, split and the nine lengths.
  std::vector<std::uint8_t> bad = bytes;
  bad[8 + 8 + 9] = 0xFF;
  off = 0;
  EXPECT_THROW(TuneGenome::from_bytes(bad, off), GenomeParseError);
}

TEST(GenomeCoder, AsymmetricSplitsDecodeByteIdentically) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 20;
  cfg.width = 63;  // deliberately not a multiple of any K under test
  cfg.x_fraction = 0.6;
  const TestSet td = gen::generate_cubes(cfg);
  const TritVector stream = td.flatten();
  for (const std::size_t k : {5u, 9u, 10u, 12u}) {
    for (std::size_t split = 1; split < k; ++split) {
      TuneGenome g;
      g.k = k;
      g.split = split;
      const codec::NineCoded scalar =
          g.make_coder(codec::CodecImpl::kScalar);
      const codec::NineCoded bitplane =
          g.make_coder(codec::CodecImpl::kBitplane);
      TritVector te_s, te_b;
      scalar.analyze(stream, &te_s);
      bitplane.analyze(stream, &te_b);
      ASSERT_EQ(te_s, te_b) << "K=" << k << " split=" << split;
      const TritVector back_s = scalar.decode(te_s, stream.size());
      const TritVector back_b = bitplane.decode(te_b, stream.size());
      ASSERT_EQ(back_s, back_b) << "K=" << k << " split=" << split;
      // Decode restores TD exactly where TD was specified; X positions may
      // come back refined, which the TestSet comparison below tolerates by
      // re-flattening through covers().
      ASSERT_TRUE(stream.covered_by(back_s)) << "K=" << k << " s=" << split;
    }
  }
}

TEST(GenomeCoder, FillPoliciesProduceDecodableStreams) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 16;
  cfg.width = 48;
  cfg.x_fraction = 0.75;
  const TestSet td = gen::generate_cubes(cfg);
  for (const FillPolicy fill :
       {FillPolicy::kZero, FillPolicy::kOne, FillPolicy::kRandom,
        FillPolicy::kMinTransition}) {
    TuneGenome g;
    g.fill = fill;
    g.fill_seed = 77;
    const TestSet filled = g.apply_fill(td);
    EXPECT_EQ(filled.pattern_count(), td.pattern_count());
    EXPECT_EQ(filled.pattern_length(), td.pattern_length());
    const TritVector stream = filled.flatten();
    // Filled TD has no X left, so decode must be a bit-exact inverse.
    const codec::NineCoded coder = g.make_coder();
    TritVector te;
    coder.analyze(stream, &te);
    EXPECT_EQ(coder.decode(te, stream.size()), stream)
        << fill_policy_name(fill);
  }
  // kNone is the identity.
  TuneGenome keep;
  EXPECT_EQ(keep.apply_fill(td), td);
}

TEST(TunePayload, RequestRoundTripsExactly) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 6;
  cfg.width = 32;
  serve::TuneRequest req;
  req.seed = 99;
  req.generations = 7;
  req.population = 12;
  req.weight_cr = 1.5;
  req.weight_tat = 0.125;
  req.weight_gates = 0.03125;
  req.p = 16;
  req.tests = gen::generate_cubes(cfg);
  const std::vector<std::uint8_t> payload = serve::to_payload(req);
  const serve::TuneRequest back = serve::parse_tune_request(payload);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.generations, req.generations);
  EXPECT_EQ(back.population, req.population);
  EXPECT_EQ(back.weight_cr, req.weight_cr);
  EXPECT_EQ(back.weight_tat, req.weight_tat);
  EXPECT_EQ(back.weight_gates, req.weight_gates);
  EXPECT_EQ(back.p, req.p);
  EXPECT_EQ(back.tests, req.tests);
  // The payload bytes are the artifact key: identical requests must
  // serialize identically.
  EXPECT_EQ(serve::to_payload(req), payload);
}

TEST(TunePayload, RequestEnforcesSearchCaps) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 2;
  cfg.width = 16;
  serve::TuneRequest req;
  req.tests = gen::generate_cubes(cfg);
  req.generations = serve::kMaxTuneGenerations + 1;
  EXPECT_THROW(serve::parse_tune_request(serve::to_payload(req)),
               std::runtime_error);
  req.generations = 4;
  req.population = serve::kMaxTunePopulation + 1;
  EXPECT_THROW(serve::parse_tune_request(serve::to_payload(req)),
               std::runtime_error);
  req.population = 8;
  req.weight_cr = std::numeric_limits<double>::infinity();
  EXPECT_THROW(serve::parse_tune_request(serve::to_payload(req)),
               std::runtime_error);
  req.weight_cr = 1.0;
  req.tests = bits::TestSet();
  EXPECT_THROW(serve::parse_tune_request(serve::to_payload(req)),
               std::runtime_error);
}

TEST(TunePayload, ReplyRoundTripsExactly) {
  serve::TuneReplyData reply;
  reply.genome = sample_genome();
  reply.score = 61.25;
  reply.cr_percent = 57.5;
  reply.tat_percent = 46.0;
  reply.fsm_gates = 130;
  reply.datapath_gates = 175;
  reply.evaluations = 240;
  reply.invalid_genomes = 3;
  const std::vector<std::uint8_t> payload = serve::to_payload(reply);
  const serve::TuneReplyData back = serve::parse_tune_reply(payload);
  EXPECT_EQ(back.genome, reply.genome);
  EXPECT_EQ(back.score, reply.score);
  EXPECT_EQ(back.cr_percent, reply.cr_percent);
  EXPECT_EQ(back.tat_percent, reply.tat_percent);
  EXPECT_EQ(back.fsm_gates, reply.fsm_gates);
  EXPECT_EQ(back.datapath_gates, reply.datapath_gates);
  EXPECT_EQ(back.evaluations, reply.evaluations);
  EXPECT_EQ(back.invalid_genomes, reply.invalid_genomes);
  // Trailing junk must be rejected, not ignored -- the reply is an
  // artifact value validated by CRC plus exact length.
  std::vector<std::uint8_t> longer = payload;
  longer.push_back(0);
  EXPECT_THROW(serve::parse_tune_reply(longer), std::runtime_error);
}

}  // namespace
}  // namespace nc::tune
