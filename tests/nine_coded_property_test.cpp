// Property tests for the 9C coder over randomized test cubes: round-trip
// correctness, leftover-X accounting and the paper's size formula, swept
// across every block size the paper uses and several X densities.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "codec/nine_coded.h"

namespace nc::codec {
namespace {

using bits::Trit;
using bits::TritVector;

TritVector random_cube(std::mt19937& rng, std::size_t n, double x_density) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  TritVector v(n, Trit::Zero);
  for (std::size_t i = 0; i < n; ++i) {
    if (uni(rng) < x_density)
      v.set(i, Trit::X);
    else
      v.set(i, bits::trit_from_bit(rng() & 1u));
  }
  return v;
}

// Every sweep runs under both codec implementations: the properties are
// statements about the 9C code itself, so they must hold identically for
// the scalar reference and the word-parallel bitplane path.
class NineCodedSweep
    : public ::testing::TestWithParam<std::tuple<int, double, CodecImpl>> {};

TEST_P(NineCodedSweep, RoundTripCoversEveryCareBit) {
  const auto [k, x_density, impl] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(k * 1000 + x_density * 100));
  const NineCoded nc(static_cast<std::size_t>(k), impl);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng() % 600;  // deliberately not block-aligned
    const TritVector td = random_cube(rng, n, x_density);
    const TritVector te = nc.encode(td);
    const TritVector d = nc.decode(te, td.size());
    ASSERT_EQ(d.size(), td.size());
    ASSERT_TRUE(td.covered_by(d))
        << "K=" << k << " n=" << n << "\ntd=" << td.to_string()
        << "\nd =" << d.to_string();
  }
}

TEST_P(NineCodedSweep, EncodedSizeMatchesPaperFormula) {
  const auto [k, x_density, impl] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(k * 77 + x_density * 10));
  const NineCoded nc(static_cast<std::size_t>(k), impl);
  const TritVector td = random_cube(rng, 3000, x_density);
  const NineCodedStats s = nc.analyze(td);
  // |TE| = sum_i N_i * |C_i| + (N5..8) * K/2 + N9 * K  (Section IV formula).
  std::size_t expect = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const auto cls = static_cast<BlockClass>(c);
    expect += s.counts[c] * (nc.table().length(cls) +
                             payload_trits(cls, s.block_size));
  }
  EXPECT_EQ(s.encoded_bits, expect);
}

TEST_P(NineCodedSweep, XAccountingIsComplete) {
  // Every X of (padded) TD is either filled or leftover -- none vanish.
  const auto [k, x_density, impl] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(k * 13 + x_density * 1000));
  const NineCoded nc(static_cast<std::size_t>(k), impl);
  const TritVector td = random_cube(rng, 2048, x_density);
  const NineCodedStats s = nc.analyze(td);
  const std::size_t padding_x = s.padded_bits - s.original_bits;
  EXPECT_EQ(s.filled_x + s.leftover_x, td.x_count() + padding_x);
}

TEST_P(NineCodedSweep, LeftoverXSurvivesInStream) {
  const auto [k, x_density, impl] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(k + x_density * 31));
  const NineCoded nc(static_cast<std::size_t>(k), impl);
  const TritVector td = random_cube(rng, 1024, x_density);
  TritVector te;
  const NineCodedStats s = nc.analyze(td, &te);
  EXPECT_EQ(te.x_count(), s.leftover_x);
}

TEST_P(NineCodedSweep, FrequencyDirectedNeverWorseOnTrainingSet) {
  const auto [k, x_density, impl] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(k * 3 + x_density * 7));
  const TritVector td = random_cube(rng, 4096, x_density);
  const NineCoded std_coder(static_cast<std::size_t>(k), impl);
  const NineCoded tuned =
      NineCoded::tuned_for(td, static_cast<std::size_t>(k), impl);
  EXPECT_LE(tuned.encode(td).size(), std_coder.encode(td).size());
  const TritVector d = tuned.decode(tuned.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
}

INSTANTIATE_TEST_SUITE_P(
    AllKAndDensities, NineCodedSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 12, 16, 20, 24, 28, 32, 48),
                       ::testing::Values(0.0, 0.3, 0.7, 0.95),
                       ::testing::Values(CodecImpl::kScalar,
                                         CodecImpl::kBitplane)),
    [](const ::testing::TestParamInfo<std::tuple<int, double, CodecImpl>>&
           info) {
      return "K" + std::to_string(std::get<0>(info.param)) + "_X" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_" + to_string(std::get<2>(info.param));
    });

// Exhaustive check for small K: every possible 4-trit block round-trips.
TEST(NineCodedExhaustive, AllBlocksK4) {
  const NineCoded nc(4);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int c = 0; c < 3; ++c)
        for (int d = 0; d < 3; ++d) {
          TritVector td;
          td.push_back(static_cast<Trit>(a));
          td.push_back(static_cast<Trit>(b));
          td.push_back(static_cast<Trit>(c));
          td.push_back(static_cast<Trit>(d));
          const TritVector out = nc.decode(nc.encode(td), 4);
          ASSERT_TRUE(td.covered_by(out)) << td.to_string();
        }
}

// Is the frequency-directed property genuinely optimal among length
// permutations? For a fixed TD, no permutation of the standard lengths can
// beat the frequency-directed assignment (rearrangement inequality).
TEST(NineCodedExhaustive, FrequencyDirectedBeatsRandomPermutations) {
  std::mt19937 rng(99);
  const TritVector td = random_cube(rng, 4096, 0.6);
  const NineCoded tuned = NineCoded::tuned_for(td, 8);
  const std::size_t tuned_size = tuned.encode(td).size();
  std::array<unsigned, kNumClasses> lengths = {1, 2, 5, 5, 5, 5, 5, 5, 4};
  for (int trial = 0; trial < 30; ++trial) {
    std::shuffle(lengths.begin(), lengths.end(), rng);
    const NineCoded perm(8, CodewordTable::from_lengths(lengths));
    EXPECT_LE(tuned_size, perm.encode(td).size());
  }
}

}  // namespace
}  // namespace nc::codec
