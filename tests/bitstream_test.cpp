#include "bits/bitstream.h"

#include <gtest/gtest.h>

namespace nc::bits {
namespace {

TEST(BitWriter, PutSingleBits) {
  BitWriter w;
  w.put(true);
  w.put(false);
  w.put(true);
  EXPECT_EQ(w.stream().to_string(), "101");
  EXPECT_EQ(w.size(), 3u);
}

TEST(BitWriter, PutBitsMsbFirst) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  EXPECT_EQ(w.stream().to_string(), "1011");
}

TEST(BitWriter, PutBitsWithLeadingZeros) {
  BitWriter w;
  w.put_bits(0b0001, 4);
  EXPECT_EQ(w.stream().to_string(), "0001");
}

TEST(BitWriter, PutRun) {
  BitWriter w;
  w.put_run(4, true);
  w.put_run(2, false);
  EXPECT_EQ(w.stream().to_string(), "111100");
}

TEST(BitWriter, TakeMovesStream) {
  BitWriter w;
  w.put(true);
  TritVector v = w.take();
  EXPECT_EQ(v.to_string(), "1");
}

TEST(TritReader, SequentialNext) {
  const TritVector v = TritVector::from_string("0X1");
  TritReader r(v);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.next(), Trit::Zero);
  EXPECT_EQ(r.next(), Trit::X);
  EXPECT_EQ(r.next(), Trit::One);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.next(), std::out_of_range);
}

TEST(TritReader, NextBitRejectsX) {
  const TritVector v = TritVector::from_string("1X");
  TritReader r(v);
  EXPECT_TRUE(r.next_bit());
  EXPECT_THROW(r.next_bit(), std::runtime_error);
}

TEST(TritReader, NextBitsMsbFirst) {
  const TritVector v = TritVector::from_string("10110");
  TritReader r(v);
  EXPECT_EQ(r.next_bits(5), 0b10110u);
}

TEST(TritReader, NextTritsPreservesX) {
  const TritVector v = TritVector::from_string("0X1X1");
  TritReader r(v);
  r.next();
  EXPECT_EQ(r.next_trits(3).to_string(), "X1X");
  EXPECT_EQ(r.position(), 4u);
}

TEST(TritReader, NextTritsPastEndThrows) {
  const TritVector v = TritVector::from_string("01");
  TritReader r(v);
  EXPECT_THROW(r.next_trits(3), std::out_of_range);
}

TEST(WriterReaderRoundTrip, ValuesOfManyWidths) {
  BitWriter w;
  for (unsigned n = 1; n <= 16; ++n) w.put_bits((1u << n) - 1, n);
  const TritVector stream = w.take();
  TritReader r(stream);
  for (unsigned n = 1; n <= 16; ++n) EXPECT_EQ(r.next_bits(n), (1u << n) - 1);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace nc::bits
