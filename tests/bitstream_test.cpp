#include "bits/bitstream.h"

#include <gtest/gtest.h>

namespace nc::bits {
namespace {

TEST(BitWriter, PutSingleBits) {
  BitWriter w;
  w.put(true);
  w.put(false);
  w.put(true);
  EXPECT_EQ(w.stream().to_string(), "101");
  EXPECT_EQ(w.size(), 3u);
}

TEST(BitWriter, PutBitsMsbFirst) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  EXPECT_EQ(w.stream().to_string(), "1011");
}

TEST(BitWriter, PutBitsWithLeadingZeros) {
  BitWriter w;
  w.put_bits(0b0001, 4);
  EXPECT_EQ(w.stream().to_string(), "0001");
}

TEST(BitWriter, PutRun) {
  BitWriter w;
  w.put_run(4, true);
  w.put_run(2, false);
  EXPECT_EQ(w.stream().to_string(), "111100");
}

TEST(BitWriter, TakeMovesStream) {
  BitWriter w;
  w.put(true);
  TritVector v = w.take();
  EXPECT_EQ(v.to_string(), "1");
}

TEST(TritReader, SequentialNext) {
  const TritVector v = TritVector::from_string("0X1");
  TritReader r(v);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.next(), Trit::Zero);
  EXPECT_EQ(r.next(), Trit::X);
  EXPECT_EQ(r.next(), Trit::One);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.next(), std::out_of_range);
}

TEST(TritReader, NextBitRejectsX) {
  const TritVector v = TritVector::from_string("1X");
  TritReader r(v);
  EXPECT_TRUE(r.next_bit());
  EXPECT_THROW(r.next_bit(), std::runtime_error);
}

TEST(TritReader, NextBitsMsbFirst) {
  const TritVector v = TritVector::from_string("10110");
  TritReader r(v);
  EXPECT_EQ(r.next_bits(5), 0b10110u);
}

TEST(TritReader, NextTritsPreservesX) {
  const TritVector v = TritVector::from_string("0X1X1");
  TritReader r(v);
  r.next();
  EXPECT_EQ(r.next_trits(3).to_string(), "X1X");
  EXPECT_EQ(r.position(), 4u);
}

TEST(TritReader, NextTritsPastEndThrows) {
  const TritVector v = TritVector::from_string("01");
  TritReader r(v);
  EXPECT_THROW(r.next_trits(3), std::out_of_range);
}

TEST(TritReader, SeekMovesBothDirections) {
  const TritVector v = TritVector::from_string("01X10110");
  TritReader r(v);
  r.seek(5);
  EXPECT_EQ(r.position(), 5u);
  EXPECT_EQ(r.next(), Trit::One);
  r.seek(2);  // backwards: re-reading is legal
  EXPECT_EQ(r.next(), Trit::X);
  EXPECT_EQ(r.position(), 3u);
}

TEST(TritReader, SeekToEndIsDoneSeekPastEndThrows) {
  const TritVector v = TritVector::from_string("0101");
  TritReader r(v);
  r.seek(4);  // one-past-last is a valid cursor: done, not an error
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.seek(5), StreamOverrun);
  EXPECT_EQ(r.position(), 4u);  // a failed seek must not move the cursor
}

TEST(TritReader, SkipBoundaries) {
  const TritVector v = TritVector::from_string("010101");
  TritReader r(v);
  r.skip(0);
  EXPECT_EQ(r.position(), 0u);
  r.skip(6);  // exactly to the end
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.skip(1), StreamOverrun);
  EXPECT_EQ(r.position(), 6u);
}

TEST(TritReader, SkipOverrunReportsOffsets) {
  const TritVector v = TritVector::from_string("0101");
  TritReader r(v);
  r.skip(3);
  try {
    r.skip(4);
    FAIL() << "skip past the end must throw";
  } catch (const StreamOverrun& e) {
    EXPECT_EQ(e.offset(), 3u);
    EXPECT_EQ(e.requested(), 4u);
    EXPECT_EQ(e.available(), 1u);
  }
}

TEST(TritReader, WindowRestrictsSeekAndSkip) {
  const TritVector v = TritVector::from_string("00110011");
  TritReader r(v, 2, 4);  // window [2, 6)
  EXPECT_EQ(r.position(), 2u);  // position() is absolute
  EXPECT_EQ(r.remaining(), 4u);
  r.skip(4);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.skip(1), StreamOverrun);  // the vector goes on; the window ends
  r.seek(3);
  EXPECT_EQ(r.next(), Trit::One);
  EXPECT_THROW(r.seek(7), StreamOverrun);  // absolute 7 is past the window end
}

TEST(TritReader, WindowClampsToVector) {
  const TritVector v = TritVector::from_string("0011");
  TritReader past(v, 9, 3);  // begin beyond the vector: empty window
  EXPECT_TRUE(past.done());
  EXPECT_EQ(past.remaining(), 0u);
  TritReader long_len(v, 2, 100);  // length clamps to what exists
  EXPECT_EQ(long_len.remaining(), 2u);
  EXPECT_EQ(long_len.next(), Trit::One);
}

TEST(WriterReaderRoundTrip, ValuesOfManyWidths) {
  BitWriter w;
  for (unsigned n = 1; n <= 16; ++n) w.put_bits((1u << n) - 1, n);
  const TritVector stream = w.take();
  TritReader r(stream);
  for (unsigned n = 1; n <= 16; ++n) EXPECT_EQ(r.next_bits(n), (1u << n) - 1);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace nc::bits
