// Full-stack integration: netlist -> ATPG cubes -> 9C compression -> ATE
// stream -> on-chip decoder model -> scan chains -> fault coverage and MISR
// signature. Exercises every library together the way the paper's flow
// composes them.
#include <gtest/gtest.h>

#include <cstdio>

#include "atpg/atpg.h"
#include "bits/serialize.h"
#include "circuit/generator.h"
#include "circuit/samples.h"
#include "circuit/scan_chains.h"
#include "codec/nine_coded.h"
#include "decomp/multi_scan.h"
#include "decomp/programmable.h"
#include "decomp/single_scan.h"
#include "power/fill.h"
#include "sim/fault_sim.h"
#include "sim/misr.h"

namespace nc {
namespace {

using bits::TestSet;
using bits::TritVector;

struct Flow {
  circuit::Netlist netlist;
  std::vector<sim::Fault> faults;
  TestSet cubes;
  double atpg_coverage = 0.0;
};

Flow run_atpg_flow(std::uint64_t seed) {
  // Wide scan (many flops relative to gates) keeps the cubes X-rich, the
  // regime the paper's test sets live in.
  circuit::GeneratorConfig cfg;
  cfg.num_inputs = 16;
  cfg.num_flops = 40;
  cfg.num_gates = 220;
  cfg.seed = seed;
  Flow flow{circuit::generate_circuit(cfg), {}, {}, 0.0};
  flow.faults = sim::collapsed_fault_list(flow.netlist);
  // Skip merge compaction: it densifies the cubes (fewer X), which is the
  // regime the paper's X-rich MinTest sets explicitly avoid.
  atpg::AtpgConfig acfg;
  acfg.compact = false;
  const atpg::AtpgResult result =
      atpg::generate_tests(flow.netlist, flow.faults, acfg);
  flow.cubes = result.tests;
  sim::FaultSimulator fsim(flow.netlist);
  flow.atpg_coverage =
      fsim.run(flow.cubes, flow.faults).coverage_percent();
  return flow;
}

TEST(Integration, CompressDecodeKeepsFaultCoverage) {
  const Flow flow = run_atpg_flow(21);
  ASSERT_GT(flow.atpg_coverage, 80.0);

  const codec::NineCoded coder(8);
  const TritVector td = flow.cubes.flatten();
  const TritVector te = coder.encode(td);
  EXPECT_LT(te.size(), td.size());  // the cubes must actually compress

  const decomp::SingleScanDecoder decoder(8, 8);
  const decomp::DecoderTrace trace = decoder.run(te, td.size());
  const TestSet decoded = TestSet::unflatten(
      trace.scan_stream, flow.cubes.pattern_count(),
      flow.cubes.pattern_length());

  // Coverage through the decompressed patterns equals the ATPG coverage:
  // the decoder reproduced every care bit, and filled bits can only help.
  sim::FaultSimulator fsim(flow.netlist);
  const double decoded_coverage =
      fsim.run(decoded, flow.faults).coverage_percent();
  EXPECT_GE(decoded_coverage, flow.atpg_coverage - 1e-9);
}

TEST(Integration, RandomFilledLeftoverXCanOnlyHelpCoverage) {
  const Flow flow = run_atpg_flow(22);
  const codec::NineCoded coder(16);  // big K -> plenty of leftover X
  const TritVector td = flow.cubes.flatten();
  const TritVector decoded = coder.decode(coder.encode(td), td.size());
  const TestSet survived = TestSet::unflatten(
      decoded, flow.cubes.pattern_count(), flow.cubes.pattern_length());
  ASSERT_GT(survived.x_count(), 0u);

  const TestSet filled =
      power::fill(survived, power::FillStrategy::kRandom, 5);
  sim::FaultSimulator fsim(flow.netlist);
  EXPECT_GE(fsim.run(filled, flow.faults).coverage_percent(),
            fsim.run(survived, flow.faults).coverage_percent() - 1e-9);
}

TEST(Integration, MultiScanDeliversSamePatternsThroughStitchedChains) {
  const Flow flow = run_atpg_flow(23);
  const std::size_t chains = 4;

  // Abstract multi-scan decode of the scan-cell columns...
  const circuit::ScanChains sc =
      circuit::stitch_scan_chains(flow.netlist, chains);
  // Build the flop-only test set (columns after the PIs).
  TestSet flop_cubes(flow.cubes.pattern_count(), sc.cell_count());
  const std::size_t pi = flow.netlist.inputs().size();
  for (std::size_t p = 0; p < flow.cubes.pattern_count(); ++p)
    for (std::size_t c = 0; c < sc.cell_count(); ++c)
      flop_cubes.set(p, c, flow.cubes.at(p, pi + c));

  const codec::NineCoded coder(8);
  const auto report =
      decomp::run_multi_scan_single_pin(flop_cubes, chains, coder, 8);

  // ...must match the netlist-level chain streams cell for cell.
  for (std::size_t p = 0; p < flop_cubes.pattern_count(); ++p) {
    const auto streams =
        circuit::chain_streams(flow.netlist, sc, flow.cubes.pattern(p));
    for (std::size_t c = 0; c < chains; ++c) {
      const std::size_t depth = sc.depth();
      for (std::size_t d = 0; d < sc.chains[c].size(); ++d) {
        const bits::Trit want = streams[c].get(d);
        if (!bits::is_care(want)) continue;
        EXPECT_EQ(report.chain_streams[c].get(p * depth + d), want)
            << "pattern " << p << " chain " << c << " depth " << d;
      }
    }
  }
}

TEST(Integration, SignatureTestingAfterDecompression) {
  // The response side: decompressed + filled patterns produce a golden MISR
  // signature; injected detected faults must disturb it.
  const circuit::Netlist nl = circuit::samples::s27();
  const auto faults = sim::collapsed_fault_list(nl);
  const atpg::AtpgResult result = atpg::generate_tests(nl, faults);

  const codec::NineCoded coder(4);
  const TritVector td = result.tests.flatten();
  const TritVector decoded = coder.decode(coder.encode(td), td.size());
  const TestSet applied = power::fill(
      TestSet::unflatten(decoded, result.tests.pattern_count(),
                         result.tests.pattern_length()),
      power::FillStrategy::kRandom, 9);

  const sim::Misr misr = sim::Misr::standard(20);
  const std::uint64_t golden = sim::good_signature(nl, applied, misr);
  sim::FaultSimulator fsim(nl);
  const auto detected = fsim.run(applied, faults);
  std::size_t checked = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (!detected.detected[f]) continue;
    EXPECT_NE(sim::faulty_signature(nl, applied, misr, faults[f]), golden)
        << faults[f].to_string(nl);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(Integration, SerializedStreamSurvivesDiskRoundTrip) {
  const Flow flow = run_atpg_flow(24);
  const codec::NineCoded coder(8);
  const TritVector td = flow.cubes.flatten();
  const TritVector te = coder.encode(td);

  const std::string path = "/tmp/nc_integration_stream.bin";
  bits::save_trits_file(path, te);
  const TritVector loaded = bits::load_trits_file(path);
  EXPECT_EQ(loaded, te);
  EXPECT_TRUE(td.covered_by(coder.decode(loaded, td.size())));
  std::remove(path.c_str());
}

TEST(Integration, FrequencyDirectedEndToEnd) {
  const Flow flow = run_atpg_flow(25);
  const TritVector td = flow.cubes.flatten();
  const codec::NineCoded tuned = codec::NineCoded::tuned_for(td, 8);
  const TritVector te = tuned.encode(td);
  const decomp::ProgrammableDecoder decoder(8, tuned.table(), 8);
  EXPECT_TRUE(td.covered_by(decoder.run(te, td.size()).scan_stream));
}

}  // namespace
}  // namespace nc
