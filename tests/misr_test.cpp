#include "sim/misr.h"

#include <gtest/gtest.h>

#include "atpg/atpg.h"
#include "circuit/samples.h"
#include "sim/fault_sim.h"

namespace nc::sim {
namespace {

using bits::TestSet;
using bits::TritVector;

TEST(MisrUnit, RejectsBadConfig) {
  EXPECT_THROW(Misr(0, 1), std::invalid_argument);
  EXPECT_THROW(Misr(65, 1), std::invalid_argument);
  EXPECT_THROW(Misr(4, 0x10), std::invalid_argument);  // tap beyond width
  EXPECT_NO_THROW(Misr(64, ~0ull));
}

TEST(MisrUnit, AbsorbShiftsAndXors) {
  // width 4, feedback 0b1001: from state 0, absorbing "1000" (LSB-first
  // slice: bit0 = 1) gives state 0b0001.
  Misr m(4, 0b1001);
  m.absorb(TritVector::from_string("1000"));
  EXPECT_EQ(m.signature(), 0b0001u);
  // Next absorb of zeros: shift left; top bit clear -> no feedback.
  m.absorb(TritVector::from_string("0000"));
  EXPECT_EQ(m.signature(), 0b0010u);
}

TEST(MisrUnit, FeedbackFires) {
  Misr m(4, 0b1001);
  m.reset(0b1000);  // top bit set
  m.absorb(TritVector::from_string("0000"));
  // Shift: 0b0000 (top bit out), feedback 0b1001 XORed in.
  EXPECT_EQ(m.signature(), 0b1001u);
}

TEST(MisrUnit, RejectsXInput) {
  Misr m = Misr::standard(8);
  EXPECT_THROW(m.absorb(TritVector::from_string("0X")), std::invalid_argument);
}

TEST(MisrUnit, RejectsOversizeSlice) {
  Misr m(4, 0b1001);
  EXPECT_THROW(m.absorb(TritVector::from_string("00000")),
               std::invalid_argument);
}

TEST(MisrUnit, OrderSensitive) {
  Misr a = Misr::standard(16);
  Misr b = Misr::standard(16);
  a.absorb(TritVector::from_string("10"));
  a.absorb(TritVector::from_string("01"));
  b.absorb(TritVector::from_string("01"));
  b.absorb(TritVector::from_string("10"));
  EXPECT_NE(a.signature(), b.signature());
}

TEST(MisrMasked, NoXMatchesStrictAbsorb) {
  Misr strict(8, 0b10011);
  Misr masked(8, 0b10011);
  for (const char* slice : {"1010", "0110", "11", "00000001"}) {
    strict.absorb(TritVector::from_string(slice));
    masked.absorb_masked(TritVector::from_string(slice));
  }
  EXPECT_EQ(masked.signature(), strict.signature());
  EXPECT_FALSE(masked.poisoned());
}

TEST(MisrMasked, XSetsStickyPoisonFlag) {
  Misr m = Misr::standard(16);
  m.absorb_masked(TritVector::from_string("01"));
  EXPECT_FALSE(m.poisoned());
  m.absorb_masked(TritVector::from_string("0X"));
  EXPECT_TRUE(m.poisoned());
  // Poison is sticky across further clean slices -- the signature can no
  // longer be trusted even if later cycles are specified.
  m.absorb_masked(TritVector::from_string("01"));
  EXPECT_TRUE(m.poisoned());
}

TEST(MisrMasked, XContributesZeroAndKeepsShifting) {
  // An X trit is masked to 0, so "X0" must leave the same register state
  // as "00" -- the shift happens, only the unknown contribution is dropped.
  Misr with_x(8, 0b10011);
  Misr zeros(8, 0b10011);
  with_x.absorb_masked(TritVector::from_string("X0"));
  zeros.absorb_masked(TritVector::from_string("00"));
  EXPECT_EQ(with_x.signature(), zeros.signature());
  EXPECT_TRUE(with_x.poisoned());
  EXPECT_FALSE(zeros.poisoned());
}

TEST(MisrMasked, ResetClearsPoison) {
  Misr m = Misr::standard(8);
  m.absorb_masked(TritVector::from_string("X"));
  ASSERT_TRUE(m.poisoned());
  m.reset();
  EXPECT_FALSE(m.poisoned());
  EXPECT_EQ(m.signature(), 0u);
}

TEST(MisrMasked, RejectsOversizeSlice) {
  Misr m(4, 0b1001);
  EXPECT_THROW(m.absorb_masked(TritVector::from_string("00000")),
               std::invalid_argument);
}

TEST(MisrSignature, GoodSignatureDeterministic) {
  const auto nl = circuit::samples::s27();
  const TestSet patterns = TestSet::from_strings(
      {"0000000", "1111111", "0101010", "1010101"});
  const Misr misr = Misr::standard(16);
  EXPECT_EQ(good_signature(nl, patterns, misr),
            good_signature(nl, patterns, misr));
}

TEST(MisrSignature, DetectedFaultChangesSignature) {
  const auto nl = circuit::samples::s27();
  // ATPG tests with random fill: fully specified, full coverage.
  atpg::AtpgConfig cfg;
  const auto result = atpg::generate_tests(nl, cfg);
  const TestSet patterns = atpg::random_fill(result.tests, 3);

  const Misr misr = Misr::standard(16);
  const std::uint64_t good = good_signature(nl, patterns, misr);

  const auto faults = collapsed_fault_list(nl);
  FaultSimulator fsim(nl);
  const auto detected = fsim.run(patterns, faults);
  std::size_t flagged = 0, detected_count = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (!detected.detected[f]) continue;
    ++detected_count;
    if (faulty_signature(nl, patterns, misr, faults[f]) != good) ++flagged;
  }
  ASSERT_GT(detected_count, 0u);
  // Aliasing probability is ~2^-16 per fault; all should be flagged here.
  EXPECT_EQ(flagged, detected_count);
}

TEST(MisrSignature, UndetectedFaultKeepsSignature) {
  const auto nl = circuit::samples::s27();
  // A single all-zero pattern detects few faults; any fault that the fault
  // simulator says is undetected must keep the signature.
  const TestSet patterns = TestSet::from_strings({"0000000"});
  const Misr misr = Misr::standard(16);
  const std::uint64_t good = good_signature(nl, patterns, misr);
  const auto faults = collapsed_fault_list(nl);
  FaultSimulator fsim(nl);
  const auto detected = fsim.run(patterns, faults);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detected.detected[f]) continue;
    EXPECT_EQ(faulty_signature(nl, patterns, misr, faults[f]), good)
        << faults[f].to_string(nl);
  }
}

TEST(MisrSignature, XInResponseThrows) {
  const auto nl = circuit::samples::s27();
  const TestSet patterns = TestSet::from_strings({"XXXXXXX"});
  EXPECT_THROW(good_signature(nl, patterns, Misr::standard(16)),
               std::invalid_argument);
}

}  // namespace
}  // namespace nc::sim
