#include "gen/cube_gen.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nc::gen {
namespace {

TEST(Profiles, SixIscasCircuits) {
  const auto& profiles = iscas89_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].name, "s5378");
  EXPECT_EQ(profiles[0].patterns, 111u);
  EXPECT_EQ(profiles[0].width, 214u);
  EXPECT_EQ(profiles[0].total_bits(), 23754u);
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(iscas89_profile("s38417").width, 1664u);
  EXPECT_THROW(iscas89_profile("s0"), std::out_of_range);
}

TEST(Profiles, IbmProfilesAreLargeAndSparse) {
  const auto& ibm = ibm_profiles();
  ASSERT_EQ(ibm.size(), 2u);
  EXPECT_GT(ibm[0].total_bits(), 4'000'000u);
  EXPECT_GT(ibm[0].total_bits(), ibm[1].total_bits());
  for (const auto& p : ibm) EXPECT_GT(p.x_fraction, 0.9);
}

TEST(CubeGen, MatchesRequestedDimensions) {
  CubeGenConfig cfg;
  cfg.patterns = 20;
  cfg.width = 300;
  const auto ts = generate_cubes(cfg);
  EXPECT_EQ(ts.pattern_count(), 20u);
  EXPECT_EQ(ts.pattern_length(), 300u);
}

TEST(CubeGen, HitsTargetXDensity) {
  for (double target : {0.3, 0.7, 0.9, 0.95}) {
    CubeGenConfig cfg;
    cfg.patterns = 50;
    cfg.width = 2000;
    cfg.x_fraction = target;
    cfg.seed = 11;
    const auto ts = generate_cubes(cfg);
    EXPECT_NEAR(ts.x_fraction(), target, 0.05) << "target " << target;
  }
}

TEST(CubeGen, ZeroXDensityFullySpecified) {
  CubeGenConfig cfg;
  cfg.x_fraction = 0.0;
  cfg.patterns = 5;
  cfg.width = 100;
  EXPECT_EQ(generate_cubes(cfg).x_count(), 0u);
}

TEST(CubeGen, DeterministicPerSeed) {
  CubeGenConfig cfg;
  cfg.seed = 9;
  EXPECT_EQ(generate_cubes(cfg), generate_cubes(cfg));
  cfg.seed = 10;
  CubeGenConfig other = cfg;
  other.seed = 11;
  EXPECT_FALSE(generate_cubes(cfg) == generate_cubes(other));
}

TEST(CubeGen, CareBitsAreZeroBiased) {
  CubeGenConfig cfg;
  cfg.patterns = 50;
  cfg.width = 1000;
  cfg.x_fraction = 0.5;
  cfg.zero_bias = 0.65;
  const auto ts = generate_cubes(cfg);
  std::size_t zeros = 0, ones = 0;
  for (std::size_t p = 0; p < ts.pattern_count(); ++p)
    for (std::size_t c = 0; c < ts.pattern_length(); ++c) {
      if (ts.at(p, c) == bits::Trit::Zero) ++zeros;
      if (ts.at(p, c) == bits::Trit::One) ++ones;
    }
  EXPECT_GT(zeros, ones);
}

TEST(CubeGen, CareBitsCluster) {
  // With clustering, the chance that a care bit's neighbour is also a care
  // bit must exceed the X-free base rate.
  CubeGenConfig cfg;
  cfg.patterns = 50;
  cfg.width = 1000;
  cfg.x_fraction = 0.8;
  cfg.cluster_len_mean = 6.0;
  const auto ts = generate_cubes(cfg);
  std::size_t care_pairs = 0, care_total = 0;
  for (std::size_t p = 0; p < ts.pattern_count(); ++p)
    for (std::size_t c = 0; c + 1 < ts.pattern_length(); ++c) {
      if (!bits::is_care(ts.at(p, c))) continue;
      ++care_total;
      if (bits::is_care(ts.at(p, c + 1))) ++care_pairs;
    }
  const double neighbour_rate =
      static_cast<double>(care_pairs) / static_cast<double>(care_total);
  EXPECT_GT(neighbour_rate, 0.5);  // base rate would be ~0.2
}

TEST(CubeGen, RejectsBadConfigs) {
  CubeGenConfig cfg;
  cfg.patterns = 0;
  EXPECT_THROW(generate_cubes(cfg), std::invalid_argument);
  cfg = {};
  cfg.x_fraction = 1.0;
  EXPECT_THROW(generate_cubes(cfg), std::invalid_argument);
  cfg = {};
  cfg.cluster_len_mean = 0.5;
  EXPECT_THROW(generate_cubes(cfg), std::invalid_argument);
  cfg = {};
  cfg.zero_bias = 1.5;
  EXPECT_THROW(generate_cubes(cfg), std::invalid_argument);
}

TEST(CubeGen, CalibratedMatchesProfile) {
  const BenchmarkProfile& p = iscas89_profile("s13207");
  const auto ts = calibrated_cubes(p, 3);
  EXPECT_EQ(ts.pattern_count(), p.patterns);
  EXPECT_EQ(ts.pattern_length(), p.width);
  EXPECT_NEAR(ts.x_fraction(), p.x_fraction, 0.04);
}

}  // namespace
}  // namespace nc::gen
