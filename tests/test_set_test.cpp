#include "bits/test_set.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nc::bits {
namespace {

TestSet small() {
  return TestSet::from_strings({"01X1", "XX00", "1111"});
}

TEST(TestSet, Dimensions) {
  const TestSet ts = small();
  EXPECT_EQ(ts.pattern_count(), 3u);
  EXPECT_EQ(ts.pattern_length(), 4u);
  EXPECT_EQ(ts.bit_count(), 12u);
  EXPECT_FALSE(ts.empty());
}

TEST(TestSet, AtAndSet) {
  TestSet ts = small();
  EXPECT_EQ(ts.at(0, 0), Trit::Zero);
  EXPECT_EQ(ts.at(1, 1), Trit::X);
  ts.set(1, 1, Trit::One);
  EXPECT_EQ(ts.at(1, 1), Trit::One);
}

TEST(TestSet, PatternExtraction) {
  const TestSet ts = small();
  EXPECT_EQ(ts.pattern(1).to_string(), "XX00");
}

TEST(TestSet, RaggedInputThrows) {
  EXPECT_THROW(TestSet::from_strings({"01", "011"}), std::invalid_argument);
}

TEST(TestSet, XStatistics) {
  const TestSet ts = small();
  EXPECT_EQ(ts.x_count(), 3u);
  EXPECT_DOUBLE_EQ(ts.x_fraction(), 0.25);
}

TEST(TestSet, FlattenIsRowMajor) {
  EXPECT_EQ(small().flatten().to_string(), "01X1XX001111");
}

TEST(TestSet, UnflattenInvertsFlatten) {
  const TestSet ts = small();
  const TestSet back = TestSet::unflatten(ts.flatten(), 3, 4);
  EXPECT_EQ(back, ts);
}

TEST(TestSet, UnflattenSizeMismatchThrows) {
  EXPECT_THROW(TestSet::unflatten(TritVector(5), 2, 3),
               std::invalid_argument);
}

TEST(TestSet, ParseSkipsCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "01X1\n"
      "\n"
      "XX00   # trailing comment\n");
  const TestSet ts = TestSet::parse(in);
  EXPECT_EQ(ts.pattern_count(), 2u);
  EXPECT_EQ(ts.pattern(1).to_string(), "XX00");
}

TEST(TestSet, ParseReportsLineNumber) {
  std::istringstream in("0101\n01?1\n");
  try {
    TestSet::parse(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TestSet, ParseBadCharacterReportsLineAndColumn) {
  std::istringstream in("0101\n01?1\n");
  try {
    TestSet::parse(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 3u);
  }
}

TEST(TestSet, ParseBadCharColumnCountsLeadingWhitespace) {
  std::istringstream in("  0?01\n");
  try {
    TestSet::parse(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 4u);  // column in the raw line, not the trimmed one
  }
}

TEST(TestSet, ParseRaggedRowReportsLineAndWidths) {
  std::istringstream in("0101\n011\n");
  try {
    TestSet::parse(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find('3'), std::string::npos);
    EXPECT_NE(what.find('4'), std::string::npos);
  }
}

TEST(TestSet, ParseEmptyInputThrows) {
  std::istringstream empty("");
  EXPECT_THROW(TestSet::parse(empty), ParseError);
  std::istringstream comments_only("# nothing\n\n   \n# here\n");
  EXPECT_THROW(TestSet::parse(comments_only), ParseError);
}

TEST(TestSet, ParseDoesNotSilentlyTruncateAfterError) {
  // The bad line must abort the parse, not yield a partial test set.
  std::istringstream in("0101\n0?01\n1111\n");
  EXPECT_THROW(TestSet::parse(in), ParseError);
}

TEST(TestSet, ParseAcceptsLowercaseX) {
  std::istringstream in("0x1X\n");
  const TestSet ts = TestSet::parse(in);
  EXPECT_EQ(ts.pattern(0).to_string(), "0X1X");
}

TEST(TestSet, SaveParseRoundTrip) {
  const TestSet ts = small();
  std::stringstream io;
  ts.save(io);
  EXPECT_EQ(TestSet::parse(io), ts);
}

TEST(TestSet, SlicedFlattenInterleavesChains) {
  // One pattern "abcdef" over 2 chains of depth 3: chain0 = abc, chain1 = def.
  // Slices emit a,d then b,e then c,f.
  const TestSet ts = TestSet::from_strings({"01X1X0"});
  EXPECT_EQ(ts.flatten_sliced(2).to_string(), "011XX0");
}

TEST(TestSet, SlicedFlattenPadsUnevenWidth) {
  // Width 5 over 2 chains -> depth 3, chain1 has only 2 real cells; the
  // third slice pads chain1 with X.
  const TestSet ts = TestSet::from_strings({"01011"});
  const TritVector s = ts.flatten_sliced(2);
  ASSERT_EQ(s.size(), 6u);
  // chain0 = "010", chain1 = "11" + pad. Slices: (0,1), (1,1), (0,X).
  EXPECT_EQ(s.to_string(), "01110X");
}

TEST(TestSet, SlicedFlattenZeroChainsThrows) {
  EXPECT_THROW(small().flatten_sliced(0), std::invalid_argument);
}

TEST(TestSet, SetPatternValidatesWidth) {
  TestSet ts = small();
  EXPECT_THROW(ts.set_pattern(0, TritVector::from_string("01")),
               std::invalid_argument);
  ts.set_pattern(0, TritVector::from_string("0000"));
  EXPECT_EQ(ts.pattern(0).to_string(), "0000");
}

}  // namespace
}  // namespace nc::bits
