#include "compact/compactor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "atpg/atpg.h"
#include "bits/test_set.h"
#include "bits/trit_vector.h"
#include "circuit/generator.h"
#include "circuit/samples.h"
#include "compact/analyzer.h"
#include "compact/xcode.h"
#include "sim/fault.h"
#include "sim/fault_sim.h"

namespace nc::compact {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using sim::Val64;

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TritVector random_trits(std::size_t n, std::uint64_t seed,
                        unsigned x_percent) {
  TritVector v(n, Trit::Zero);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix(seed);
    v.set(i, r % 100 < x_percent ? Trit::X
                                 : (r >> 32) & 1 ? Trit::One : Trit::Zero);
  }
  return v;
}

/// Independent reference: output r is the XOR of its column-selected
/// inputs, X if any of them is X. This is the definition the Compactor
/// must implement word-parallel.
TritVector reference_compact(const XCode& code, const TritVector& in) {
  TritVector out(code.outputs(), Trit::Zero);
  for (std::size_t r = 0; r < code.outputs(); ++r) {
    bool parity = false, any_x = false;
    for (std::size_t c = 0; c < code.inputs(); ++c) {
      if (!code.bit(r, c)) continue;
      if (in.get(c) == Trit::X)
        any_x = true;
      else
        parity ^= in.get(c) == Trit::One;
    }
    out.set(r, any_x ? Trit::X : parity ? Trit::One : Trit::Zero);
  }
  return out;
}

TEST(CompactorUnit, MatchesReferenceDefinition) {
  const Compactor compactor(XCode::steiner(20));
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TritVector in = random_trits(20, seed * 31 + 7, seed % 2 ? 30 : 0);
    EXPECT_EQ(compactor.compact(in),
              reference_compact(compactor.code(), in))
        << in.to_string();
  }
}

TEST(CompactorUnit, RejectsWrongWidth) {
  const Compactor compactor(XCode::steiner(10));
  EXPECT_THROW(compactor.compact(TritVector(9, Trit::Zero)),
               std::invalid_argument);
}

TEST(CompactorUnit, StreamIsPerCycleConcatenation) {
  const Compactor compactor(XCode::steiner(12));
  TritVector stream;
  std::vector<TritVector> cycles;
  for (std::uint64_t i = 0; i < 5; ++i) {
    cycles.push_back(random_trits(12, i + 100, 20));
    stream.append(cycles.back());
  }
  const TritVector sig = compactor.compact_stream(stream, 5);
  ASSERT_EQ(sig.size(), 5 * compactor.code().outputs());
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(sig.slice(i * compactor.code().outputs(),
                        compactor.code().outputs()),
              compactor.compact(cycles[i]))
        << "cycle " << i;
  EXPECT_THROW(compactor.compact_stream(stream, 4), std::invalid_argument);
}

TEST(CompactorUnit, DualRailMatchesScalar) {
  const Compactor compactor(XCode::steiner(16));
  const std::size_t n = compactor.code().inputs();
  const std::size_t m = compactor.code().outputs();
  // 64 random response cycles, packed one Val64 per input line.
  std::vector<TritVector> cycles;
  for (std::uint64_t p = 0; p < 64; ++p)
    cycles.push_back(random_trits(n, p * 7 + 3, 25));
  std::vector<Val64> in(n), out(m);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t p = 0; p < 64; ++p) {
      if (cycles[p].get(c) == Trit::One) in[c].one |= 1ull << p;
      if (cycles[p].get(c) == Trit::Zero) in[c].zero |= 1ull << p;
    }
  compactor.compact64(in.data(), out.data());
  for (std::size_t p = 0; p < 64; ++p) {
    const TritVector expect = compactor.compact(cycles[p]);
    for (std::size_t r = 0; r < m; ++r) {
      const Trit got = (out[r].one >> p) & 1   ? Trit::One
                       : (out[r].zero >> p) & 1 ? Trit::Zero
                                                : Trit::X;
      EXPECT_EQ(got, expect.get(r)) << "pattern " << p << " output " << r;
    }
  }
}

TEST(CheckSignatures, CleanPassAndCounts) {
  const TritVector expected = TritVector::from_string("0110X101");
  const CheckVerdict v = check_signatures(expected, expected, 4);
  EXPECT_TRUE(v.pass);
  EXPECT_EQ(v.cycles, 2u);
  EXPECT_EQ(v.mismatched_cycles, 0u);
  EXPECT_EQ(v.mismatched_outputs, 0u);
  EXPECT_EQ(v.unknown_outputs, 1u);  // the X position compares unknown
  EXPECT_EQ(v.first_mismatch_cycle, CheckVerdict::kNoMismatch);
}

TEST(CheckSignatures, ProvableMismatchOnly) {
  const TritVector expected = TritVector::from_string("01X0");
  // Position 0 differs provably; position 2 is X-vs-1 (uncomparable).
  const TritVector observed = TritVector::from_string("1110");
  const CheckVerdict v = check_signatures(expected, observed, 2);
  EXPECT_FALSE(v.pass);
  EXPECT_EQ(v.cycles, 2u);
  EXPECT_EQ(v.mismatched_cycles, 1u);
  EXPECT_EQ(v.mismatched_outputs, 1u);
  EXPECT_EQ(v.unknown_outputs, 1u);
  EXPECT_EQ(v.first_mismatch_cycle, 0u);
}

TEST(CheckSignatures, FirstMismatchCycleIsEarliest) {
  const TritVector expected = TritVector::from_string("000000");
  const TritVector observed = TritVector::from_string("000101");
  const CheckVerdict v = check_signatures(expected, observed, 2);
  EXPECT_EQ(v.first_mismatch_cycle, 1u);
  EXPECT_EQ(v.mismatched_cycles, 2u);
  EXPECT_EQ(v.mismatched_outputs, 2u);
}

TEST(CheckSignatures, RejectsBadGeometry) {
  const TritVector a = TritVector::from_string("0101");
  EXPECT_THROW(check_signatures(a, a, 0), std::invalid_argument);
  EXPECT_THROW(check_signatures(a, a, 3), std::invalid_argument);
  EXPECT_THROW(check_signatures(a, TritVector::from_string("01"), 2),
               std::invalid_argument);
}

TEST(Overlay, DensityNestsAndLands) {
  // The X set at a lower density must be a subset of the set at a higher
  // one -- the structural basis of monotone degradation.
  std::size_t hits_low = 0, hits_high = 0;
  for (std::uint64_t p = 0; p < 40; ++p)
    for (std::uint64_t pos = 0; pos < 200; ++pos) {
      const bool low = overlay_is_x(9, p, pos, 0.05);
      const bool high = overlay_is_x(9, p, pos, 0.3);
      if (low) {
        EXPECT_TRUE(high) << p << ":" << pos;
      }
      hits_low += low;
      hits_high += high;
    }
  EXPECT_NEAR(static_cast<double>(hits_low) / 8000.0, 0.05, 0.02);
  EXPECT_NEAR(static_cast<double>(hits_high) / 8000.0, 0.3, 0.03);
  EXPECT_FALSE(overlay_is_x(9, 1, 2, 0.0));
  EXPECT_TRUE(overlay_is_x(9, 1, 2, 1.0));
}

// ------------------------------------------------------------- analyzer

TEST(Analyzer, IdentityCodeMatchesFaultSimulator) {
  // With the pass-through code and no overlay, "compacted" IS the raw
  // tester: every verdict must agree with the fault simulator.
  const auto nl = circuit::samples::s27();
  const TestSet patterns =
      atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  const auto faults = sim::full_fault_list(nl);

  AnalyzerConfig cfg;
  cfg.with_misr = false;
  const ResponseAnalyzer analyzer(nl, XCode::identity(nl.response_width()),
                                  cfg);
  const AnalyzerReport report = analyzer.analyze(patterns, faults);

  sim::FaultSimulator fsim(nl);
  const sim::FaultSimResult ref = fsim.run(patterns, faults);

  ASSERT_EQ(report.verdicts.size(), faults.size());
  EXPECT_EQ(report.masked_by_compaction, 0u);
  EXPECT_EQ(report.tolerance_violations, 0u);
  EXPECT_EQ(report.detected_uncompacted, ref.detected_count());
  EXPECT_EQ(report.detected_compacted, ref.detected_count());
  for (std::size_t f = 0; f < faults.size(); ++f)
    EXPECT_EQ(report.verdicts[f] == FaultVerdict::kDetected,
              ref.detected[f])
        << faults[f].to_string(nl);
}

TEST(Analyzer, SteinerNoUnknownsNoLoss) {
  // Fully specified stimulus + zero overlay: no X anywhere, and on this
  // fixed setup the weight-3 code loses nothing. A generated scan circuit
  // gives a response wide enough (32) for real compaction; the bundled
  // toys are 4 and 2 bits wide.
  circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 8;
  gcfg.num_flops = 24;
  gcfg.num_gates = 150;
  gcfg.num_outputs = 8;
  gcfg.seed = 17;
  const circuit::Netlist nl = circuit::generate_circuit(gcfg);
  const TestSet patterns = atpg::random_fill(
      atpg::generate_tests(nl, atpg::AtpgConfig{}).tests, 11);
  const auto faults = sim::full_fault_list(nl);

  AnalyzerConfig cfg;
  const ResponseAnalyzer analyzer(nl, XCode::steiner(nl.response_width()),
                                  cfg);
  const AnalyzerReport report = analyzer.analyze(patterns, faults);

  EXPECT_EQ(report.total_x, 0u);
  EXPECT_EQ(report.max_cycle_x, 0u);
  EXPECT_EQ(report.cycles_over_tolerance, 0u);
  EXPECT_EQ(report.tolerance_violations, 0u);
  EXPECT_EQ(report.masked_by_compaction, 0u);
  EXPECT_DOUBLE_EQ(report.coverage_loss_percent(), 0.0);
  EXPECT_GT(report.compaction_ratio(), 1.0);

  // MISR side by side: with zero X it renders verdicts, and an X-free run
  // never poisons the reference.
  EXPECT_TRUE(report.misr_enabled);
  EXPECT_FALSE(report.misr_good_poisoned);
  EXPECT_EQ(report.misr_no_verdict, 0u);
  // The MISR may alias the odd fault (16-bit signature, ~2^-16 per fault);
  // it must land within a hair of the raw baseline, never above it.
  EXPECT_LE(report.misr_detected, report.detected_uncompacted);
  EXPECT_GE(report.misr_detected + 5, report.detected_uncompacted);
}

/// Shared sweep body: nested overlay densities on one circuit.
void sweep_densities(const circuit::Netlist& nl, const TestSet& patterns) {
  const auto faults = sim::full_fault_list(nl);
  const double densities[] = {0.0, 0.001, 0.01, 0.05, 0.2};

  std::size_t prev_unc = faults.size() + 1, prev_cmp = faults.size() + 1;
  std::uint64_t prev_x = 0;
  for (const double d : densities) {
    AnalyzerConfig cfg;
    cfg.x_density = d;
    cfg.x_seed = 5;  // fixed across the sweep so the X sets nest
    cfg.with_misr = false;
    const ResponseAnalyzer analyzer(nl, XCode::steiner(nl.response_width()),
                                    cfg);
    const AnalyzerReport r = analyzer.analyze(patterns, faults);

    // The tolerance self-check is the theorem: a masked fault with a
    // single-bit diff inside a within-tolerance cycle is impossible.
    EXPECT_EQ(r.tolerance_violations, 0u) << "density " << d;
    // Nested X sets => both coverages degrade monotonically.
    EXPECT_LE(r.detected_uncompacted, prev_unc) << "density " << d;
    EXPECT_LE(r.detected_compacted, prev_cmp) << "density " << d;
    EXPECT_GE(r.total_x, prev_x) << "density " << d;
    // Compaction can only lose coverage, never invent it.
    EXPECT_LE(r.detected_compacted, r.detected_uncompacted);
    if (r.cycles_over_tolerance == 0) {
      EXPECT_EQ(r.masked_by_compaction, 0u)
          << "density " << d << ": loss with every cycle within t";
    }
    prev_unc = r.detected_uncompacted;
    prev_cmp = r.detected_compacted;
    prev_x = r.total_x;
  }
}

TEST(Analyzer, DensitySweepS27) {
  const auto nl = circuit::samples::s27();
  sweep_densities(
      nl, atpg::random_fill(
              atpg::generate_tests(nl, atpg::AtpgConfig{}).tests, 3));
}

TEST(Analyzer, DensitySweepC17) {
  const auto nl = circuit::samples::c17();
  sweep_densities(
      nl, atpg::random_fill(
              atpg::generate_tests(nl, atpg::AtpgConfig{}).tests, 3));
}

TEST(Analyzer, HeavyXPoisonsMisrButNotXCode) {
  const auto nl = circuit::samples::s27();
  const TestSet patterns = atpg::random_fill(
      atpg::generate_tests(nl, atpg::AtpgConfig{}).tests, 7);
  const auto faults = sim::full_fault_list(nl);

  AnalyzerConfig cfg;
  cfg.x_density = 0.05;
  const ResponseAnalyzer analyzer(nl, XCode::steiner(nl.response_width()),
                                  cfg);
  const AnalyzerReport r = analyzer.analyze(patterns, faults);

  ASSERT_GT(r.total_x, 0u);
  // The MISR has no X story: one unknown poisons the reference signature
  // and forfeits every verdict. The X-code keeps scoring.
  EXPECT_TRUE(r.misr_good_poisoned);
  EXPECT_EQ(r.misr_no_verdict, faults.size());
  EXPECT_EQ(r.misr_detected, 0u);
  EXPECT_GT(r.detected_compacted, 0u);
}

TEST(Analyzer, ParallelJobsMatchSerial) {
  const auto nl = circuit::samples::s27();
  const TestSet patterns =
      atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  const auto faults = sim::full_fault_list(nl);

  AnalyzerConfig serial;
  serial.x_density = 0.01;
  AnalyzerConfig parallel = serial;
  parallel.jobs = 4;
  const XCode code = XCode::steiner(nl.response_width());
  const AnalyzerReport a =
      ResponseAnalyzer(nl, code, serial).analyze(patterns, faults);
  const AnalyzerReport b =
      ResponseAnalyzer(nl, code, parallel).analyze(patterns, faults);

  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.detected_uncompacted, b.detected_uncompacted);
  EXPECT_EQ(a.detected_compacted, b.detected_compacted);
  EXPECT_EQ(a.misr_detected, b.misr_detected);
  EXPECT_EQ(a.misr_no_verdict, b.misr_no_verdict);
  EXPECT_EQ(a.tolerance_violations, b.tolerance_violations);
}

TEST(Analyzer, SignatureStreamsRoundTrip) {
  const auto nl = circuit::samples::s27();
  const TestSet patterns =
      atpg::generate_tests(nl, atpg::AtpgConfig{}).tests;
  const auto faults = sim::full_fault_list(nl);

  AnalyzerConfig cfg;
  cfg.x_density = 0.02;
  cfg.with_misr = false;
  const ResponseAnalyzer analyzer(nl, XCode::steiner(nl.response_width()),
                                  cfg);
  const std::size_t m = analyzer.compactor().code().outputs();

  const TritVector expected = analyzer.expected_signatures(patterns);
  ASSERT_EQ(expected.size(), patterns.pattern_count() * m);
  // The expected stream is exactly the compaction of the expected raw
  // responses.
  EXPECT_EQ(expected,
            analyzer.compactor().compact_stream(
                analyzer.expected_responses(patterns),
                patterns.pattern_count()));

  // A fault-free device upload is binary and passes the check.
  const TritVector good = analyzer.observed_signatures(patterns, nullptr, 99);
  EXPECT_EQ(good.x_count(), 0u);
  EXPECT_TRUE(check_signatures(expected, good, m).pass);

  // A device carrying a compaction-visible fault must fail it.
  const AnalyzerReport report = analyzer.analyze(patterns, faults);
  bool checked_faulty = false;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (report.verdicts[f] != FaultVerdict::kDetected) continue;
    const TritVector bad =
        analyzer.observed_signatures(patterns, &faults[f], 99);
    EXPECT_FALSE(check_signatures(expected, bad, m).pass)
        << faults[f].to_string(nl);
    checked_faulty = true;
    break;
  }
  EXPECT_TRUE(checked_faulty);
}

}  // namespace
}  // namespace nc::compact
