#!/bin/sh
# End-to-end exercise of the ninec CLI: generate, compress (both codeword
# tables), decompress, and verify the decompressed set covers the original's
# care bits. $1 = path to the ninec binary.
set -eu

NINEC="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$NINEC" gen --profile s9234 --out "$DIR/td.tests" --seed 4
"$NINEC" stats --in "$DIR/td.tests" > "$DIR/stats.txt"
grep -q "CR%" "$DIR/stats.txt"

for extra in "" "--freq-directed"; do
  "$NINEC" compress --in "$DIR/td.tests" --out "$DIR/te.9c" --k 8 $extra
  "$NINEC" decompress --in "$DIR/te.9c" --out "$DIR/back.tests"
  # Line-by-line cover check: wherever td has 0/1, back must match.
  awk 'NR==FNR { a[FNR] = $0; next }
       {
         if (length($0) != length(a[FNR])) { print "width mismatch"; exit 1 }
         for (i = 1; i <= length($0); i++) {
           c = substr(a[FNR], i, 1)
           if (c != "X" && c != substr($0, i, 1)) {
             print "care bit mismatch at line " FNR " col " i; exit 1
           }
         }
       }' "$DIR/td.tests" "$DIR/back.tests"
done

# Binary test-set container round-trips through compress/decompress too.
"$NINEC" gen --profile s5378 --out "$DIR/td.bin"
"$NINEC" compress --in "$DIR/td.bin" --out "$DIR/te2.9c" --k 12
"$NINEC" decompress --in "$DIR/te2.9c" --out "$DIR/back2.bin"

# ATPG flow on a generated circuit.
"$NINEC" circuit --out "$DIR/c.bench" --gates 120 --inputs 8 --flops 8
"$NINEC" atpg --bench "$DIR/c.bench" --out "$DIR/atpg.tests"
test -s "$DIR/atpg.tests"

echo "cli roundtrip OK"

# Full ATE session on the generated circuit's own test set.
"$NINEC" session --bench "$DIR/c.bench" --tests "$DIR/atpg.tests" --k 8 --p 8

echo "cli session OK"
