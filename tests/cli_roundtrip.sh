#!/bin/sh
# End-to-end exercise of the ninec CLI: generate, compress (both codeword
# tables), decompress, and verify the decompressed set covers the original's
# care bits. $1 = path to the ninec binary.
set -eu

NINEC="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$NINEC" gen --profile s9234 --out "$DIR/td.tests" --seed 4
"$NINEC" stats --in "$DIR/td.tests" > "$DIR/stats.txt"
grep -q "CR%" "$DIR/stats.txt"

for extra in "" "--freq-directed"; do
  "$NINEC" compress --in "$DIR/td.tests" --out "$DIR/te.9c" --k 8 $extra
  "$NINEC" decompress --in "$DIR/te.9c" --out "$DIR/back.tests"
  # Line-by-line cover check: wherever td has 0/1, back must match.
  awk 'NR==FNR { a[FNR] = $0; next }
       {
         if (length($0) != length(a[FNR])) { print "width mismatch"; exit 1 }
         for (i = 1; i <= length($0); i++) {
           c = substr(a[FNR], i, 1)
           if (c != "X" && c != substr($0, i, 1)) {
             print "care bit mismatch at line " FNR " col " i; exit 1
           }
         }
       }' "$DIR/td.tests" "$DIR/back.tests"
done

# Binary test-set container round-trips through compress/decompress too.
"$NINEC" gen --profile s5378 --out "$DIR/td.bin"
"$NINEC" compress --in "$DIR/td.bin" --out "$DIR/te2.9c" --k 12
"$NINEC" decompress --in "$DIR/te2.9c" --out "$DIR/back2.bin"

# ATPG flow on a generated circuit.
"$NINEC" circuit --out "$DIR/c.bench" --gates 120 --inputs 8 --flops 8
"$NINEC" atpg --bench "$DIR/c.bench" --out "$DIR/atpg.tests"
test -s "$DIR/atpg.tests"

echo "cli roundtrip OK"

# Full ATE session on the generated circuit's own test set.
"$NINEC" session --bench "$DIR/c.bench" --tests "$DIR/atpg.tests" --k 8 --p 8

echo "cli session OK"

# Malformed count flags must fail fast with exit code 2 (not crash, not
# silently coerce): non-numeric, zero, negative, overflow.
expect_usage_error() {
  set +e
  "$NINEC" "$@" >/dev/null 2>"$DIR/err.txt"
  code=$?
  set -e
  if [ "$code" -ne 2 ]; then
    echo "expected exit 2 from: ninec $*  (got $code)"; exit 1
  fi
  test -s "$DIR/err.txt"  # one-line diagnostic on stderr
}
expect_usage_error compress --in "$DIR/td.tests" --out "$DIR/x.9c" --shards abc
expect_usage_error compress --in "$DIR/td.tests" --out "$DIR/x.9c" --shards 0
expect_usage_error compress --in "$DIR/td.tests" --out "$DIR/x.9c" --jobs -3
expect_usage_error compress --in "$DIR/td.tests" --out "$DIR/x.9c" --k 0
expect_usage_error decompress --in "$DIR/te.9c" --out "$DIR/x.tests" --jobs 1x
expect_usage_error session --bench "$DIR/c.bench" --tests "$DIR/atpg.tests" \
  --jobs 99999999999999999999999
expect_usage_error fleet --bench "$DIR/c.bench" --tests "$DIR/atpg.tests" \
  --devices 0
# 'auto' spells out the old 0-means-auto convention.
"$NINEC" compress --in "$DIR/td.tests" --out "$DIR/ta.9c" --shards auto --jobs auto
"$NINEC" decompress --in "$DIR/ta.9c" --out "$DIR/backa.tests" --jobs auto

# The closed tester loop shares the strict parsers: ratios outside [0,1],
# garbage, a zero output count and an unknown code kind all exit 2.
expect_usage_error roundtrip --bench "$DIR/c.bench" --x-density 1.5
expect_usage_error roundtrip --bench "$DIR/c.bench" --x-density abc
expect_usage_error roundtrip --bench "$DIR/c.bench" --compact-outputs 0
expect_usage_error roundtrip --bench "$DIR/c.bench" --xcode nope

echo "cli strict parsing OK"

# Closed tester loop: identity compaction is the uncompacted tester, so the
# zero-loss gate (exit 0) must hold, and the JSON report lands.
"$NINEC" roundtrip --bench "$DIR/c.bench" --tests "$DIR/atpg.tests" \
  --xcode identity --json "$DIR/rt.json"
test -s "$DIR/rt.json"
grep -q '"masked_by_compaction": 0' "$DIR/rt.json"

echo "cli roundtrip loop OK"

# Fleet run with a checkpoint, killed after 2 batches, then resumed: the
# resumed run must report the same deterministic fingerprint as an
# uninterrupted one.
FLEET_ARGS="--bench $DIR/c.bench --tests $DIR/atpg.tests --devices 3 \
  --inject flip=2e-3 --seed 9 --batch 4"
"$NINEC" fleet $FLEET_ARGS > "$DIR/fleet_ref.txt"
grep -q "fingerprint:" "$DIR/fleet_ref.txt"
set +e
"$NINEC" fleet $FLEET_ARGS --checkpoint "$DIR/j.nc9j" --stop-after 2 \
  > "$DIR/fleet_kill.txt"
set -e
grep -q "STOPPED EARLY" "$DIR/fleet_kill.txt"
test -s "$DIR/j.nc9j"
"$NINEC" fleet $FLEET_ARGS --checkpoint "$DIR/j.nc9j" --resume --jobs 4 \
  > "$DIR/fleet_resume.txt"
grep -q "resumed" "$DIR/fleet_resume.txt"
REF=$(grep fingerprint "$DIR/fleet_ref.txt")
RES=$(grep fingerprint "$DIR/fleet_resume.txt")
if [ "$REF" != "$RES" ]; then
  echo "fleet resume diverged: '$REF' vs '$RES'"; exit 1
fi

echo "cli fleet OK"
