#include "circuit/netlist.h"

#include <gtest/gtest.h>

namespace nc::circuit {
namespace {

Netlist tiny() {
  // a, b inputs; n = NAND(a,b); o = NOT(n); output o.
  Netlist nl;
  const auto a = nl.add_gate(GateType::kInput, "a");
  const auto b = nl.add_gate(GateType::kInput, "b");
  const auto n = nl.add_gate(GateType::kNand, "n", {a, b});
  const auto o = nl.add_gate(GateType::kNot, "o", {n});
  nl.mark_output(o);
  return nl;
}

TEST(Netlist, BasicAccessors) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_TRUE(nl.flops().empty());
  EXPECT_EQ(nl.logic_gate_count(), 2u);
  EXPECT_EQ(nl.pattern_width(), 2u);
  EXPECT_EQ(nl.response_width(), 1u);
}

TEST(Netlist, FindByName) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.find("n"), 2u);
  EXPECT_EQ(nl.find("zz"), Netlist::npos);
}

TEST(Netlist, LevelizeRespectsDependencies) {
  const Netlist nl = tiny();
  const auto order = nl.levelize();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  EXPECT_LT(position[0], position[2]);  // a before n
  EXPECT_LT(position[1], position[2]);  // b before n
  EXPECT_LT(position[2], position[3]);  // n before o
}

TEST(Netlist, LevelizeDetectsCombinationalCycle) {
  Netlist nl;
  const auto a = nl.add_gate(GateType::kInput, "a");
  const auto g1 = nl.add_gate(GateType::kAnd, "g1");
  const auto g2 = nl.add_gate(GateType::kOr, "g2", {g1, a});
  nl.set_fanins(g1, {g2, a});
  EXPECT_THROW(nl.levelize(), std::runtime_error);
}

TEST(Netlist, DffBreaksCycle) {
  // g depends on flop output; flop data comes from g: sequential loop, fine.
  Netlist nl;
  const auto a = nl.add_gate(GateType::kInput, "a");
  const auto f = nl.add_gate(GateType::kDff, "f");
  const auto g = nl.add_gate(GateType::kAnd, "g", {a, f});
  nl.set_fanins(f, {g});
  nl.mark_output(g);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.pattern_width(), 2u);
  EXPECT_EQ(nl.response_width(), 2u);
}

TEST(Netlist, ValidateRejectsDuplicateNames) {
  Netlist nl;
  nl.add_gate(GateType::kInput, "a");
  nl.add_gate(GateType::kInput, "a");
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateRejectsBadArity) {
  Netlist nl;
  const auto a = nl.add_gate(GateType::kInput, "a");
  nl.add_gate(GateType::kNot, "n", {a, a});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateRejectsDanglingFanin) {
  Netlist nl;
  nl.add_gate(GateType::kInput, "a");
  nl.add_gate(GateType::kBuf, "b", {42});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateRejectsUnnamedGate) {
  Netlist nl;
  nl.add_gate(GateType::kInput, "");
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(GateTypeName, CoversAllTypes) {
  EXPECT_STREQ(gate_type_name(GateType::kNand), "nand");
  EXPECT_STREQ(gate_type_name(GateType::kDff), "dff");
  EXPECT_STREQ(gate_type_name(GateType::kXnor), "xnor");
}

}  // namespace
}  // namespace nc::circuit
