// Unit tests of the shared transmit/decode/retry helper
// (decomp::stream_pattern_with_retry) that both the resilient ATE session
// and the fleet manager delegate to. The behavioral no-op of that dedup is
// covered by the existing ate_session and fleet suites; here we pin the
// helper's own accounting contract.
#include <gtest/gtest.h>

#include <cstddef>

#include "bits/trit_vector.h"
#include "codec/nine_coded.h"
#include "decomp/channel.h"
#include "decomp/retry.h"
#include "decomp/single_scan.h"

namespace nc::decomp {
namespace {

constexpr std::size_t kBlock = 8;

bits::TritVector test_cube() {
  return bits::TritVector::from_string(
      "01X0110XX1010X0011X00101XX110100"
      "10X011X00101X110XX0101001100X101");
}

struct Fixture {
  codec::NineCoded coder{kBlock};
  SingleScanDecoder decoder{kBlock, 4};
  bits::TritVector cube = test_cube();
  bits::TritVector te = coder.encode(cube);
  SessionResult session;
};

TEST(RetryHelperTest, CleanChannelSucceedsFirstAttemptNoRetryBooked) {
  Fixture fx;
  ChannelModel channel{ChannelConfig{}};  // perfect link
  const StreamOutcome out = stream_pattern_with_retry(
      channel, fx.decoder, fx.te, fx.cube, /*attempts=*/4, fx.session);

  EXPECT_TRUE(out.applied);
  EXPECT_EQ(out.used_retries, 0u);
  EXPECT_EQ(out.watchdog_trips, 0u);
  EXPECT_TRUE(fx.cube.covered_by(out.scan_stream));
  EXPECT_EQ(fx.session.ate_bits, fx.te.size());
  EXPECT_EQ(fx.session.wasted_ate_bits, 0u);
  EXPECT_EQ(fx.session.retries, 0u);
  EXPECT_EQ(fx.session.patterns_retried, 0u);
  EXPECT_EQ(fx.session.corruptions_detected, 0u);
  EXPECT_EQ(fx.session.corruptions_undetected, 0u);
}

TEST(RetryHelperTest, AlwaysTruncatingChannelExhaustsBudget) {
  Fixture fx;
  ChannelConfig cfg;
  cfg.truncate_rate = 1.0;  // every transmission loses its tail
  ChannelModel channel{cfg};
  const unsigned attempts = 4;
  const StreamOutcome out = stream_pattern_with_retry(
      channel, fx.decoder, fx.te, fx.cube, attempts, fx.session);

  EXPECT_FALSE(out.applied);
  // A retry is a re-stream actually issued: the last attempt has no
  // follower, so budget N attempts = N-1 retries, N detections.
  EXPECT_EQ(out.used_retries, attempts - 1);
  EXPECT_EQ(fx.session.retries, attempts - 1);
  EXPECT_EQ(fx.session.corruptions_detected, attempts);
  EXPECT_EQ(fx.session.patterns_retried, 1u);
  EXPECT_EQ(fx.session.ate_bits, 0u) << "no trusted decode, no useful bits";
  EXPECT_GT(fx.session.wasted_ate_bits, 0u);
}

TEST(RetryHelperTest, SingleAttemptFailureBooksNoRetry) {
  // The fleet probe path runs with attempts == 1: a detected corruption is
  // counted, but neither `retries` nor `patterns_retried` may move -- no
  // re-stream was ever issued.
  Fixture fx;
  ChannelConfig cfg;
  cfg.truncate_rate = 1.0;
  ChannelModel channel{cfg};
  const StreamOutcome out = stream_pattern_with_retry(
      channel, fx.decoder, fx.te, fx.cube, /*attempts=*/1, fx.session);

  EXPECT_FALSE(out.applied);
  EXPECT_EQ(out.used_retries, 0u);
  EXPECT_EQ(fx.session.retries, 0u);
  EXPECT_EQ(fx.session.patterns_retried, 0u);
  EXPECT_EQ(fx.session.corruptions_detected, 1u);
}

TEST(RetryHelperTest, RecoveryAfterCorruptionChargesExactAccounting) {
  // Seeded fault sequence: with a 50% per-transmission truncation rate and
  // a generous attempt budget, some seed yields at least one corrupted
  // attempt followed by a clean one. Scan seeds until that shape appears,
  // then pin the exact accounting for it.
  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    Fixture fx;
    ChannelConfig cfg;
    cfg.truncate_rate = 0.5;
    cfg.seed = seed;
    ChannelModel channel{cfg};
    const unsigned attempts = 8;
    const StreamOutcome out = stream_pattern_with_retry(
        channel, fx.decoder, fx.te, fx.cube, attempts, fx.session);
    if (!out.applied || out.used_retries == 0) continue;

    // Success on attempt used_retries: every failed attempt had a follower.
    EXPECT_EQ(fx.session.corruptions_detected, out.used_retries);
    EXPECT_EQ(fx.session.retries, out.used_retries);
    EXPECT_EQ(fx.session.patterns_retried, 1u);
    EXPECT_EQ(fx.session.ate_bits, fx.te.size())
        << "only the trusted attempt's bits are useful";
    EXPECT_GT(fx.session.wasted_ate_bits, 0u);
    EXPECT_TRUE(fx.cube.covered_by(out.scan_stream));
    return;
  }
  FAIL() << "no seed in [1,64) produced corrupt-then-clean; rates changed?";
}

TEST(RetryHelperTest, WatchdogBudgetTripIsCountedPerAttempt) {
  Fixture fx;
  ChannelModel channel{ChannelConfig{}};  // clean link: only the budget bites
  const unsigned attempts = 3;
  const StreamOutcome out = stream_pattern_with_retry(
      channel, fx.decoder, fx.te, fx.cube, attempts, fx.session,
      [](std::size_t) { return std::size_t{1}; });  // starves every decode

  EXPECT_FALSE(out.applied);
  EXPECT_EQ(out.watchdog_trips, attempts);
  EXPECT_EQ(fx.session.corruptions_detected, attempts);
  EXPECT_EQ(fx.session.patterns_retried, 1u);
}

TEST(RetryHelperTest, GenerousWatchdogBudgetDoesNotPerturbCleanRun) {
  Fixture clean, metered;
  ChannelModel ch_a{ChannelConfig{}};
  ChannelModel ch_b{ChannelConfig{}};
  const StreamOutcome a = stream_pattern_with_retry(
      ch_a, clean.decoder, clean.te, clean.cube, 4, clean.session);
  const StreamOutcome b = stream_pattern_with_retry(
      ch_b, metered.decoder, metered.te, metered.cube, 4, metered.session,
      [&metered](std::size_t rx) {
        return 64 + 8 * (metered.cube.size() + rx);
      });

  ASSERT_TRUE(a.applied);
  ASSERT_TRUE(b.applied);
  EXPECT_EQ(b.watchdog_trips, 0u);
  EXPECT_EQ(a.scan_stream, b.scan_stream)
      << "a non-tripping watchdog must not change the decode";
  EXPECT_EQ(clean.session.ate_bits, metered.session.ate_bits);
  EXPECT_EQ(clean.session.soc_cycles, metered.session.soc_cycles);
}

TEST(RetryHelperTest, SessionAccumulatesAcrossPatterns) {
  // Two clean patterns through the same session: counters add up, and
  // patterns_retried stays per-pattern (not per-attempt).
  Fixture fx;
  ChannelModel channel{ChannelConfig{}};
  const StreamOutcome first = stream_pattern_with_retry(
      channel, fx.decoder, fx.te, fx.cube, 4, fx.session);
  const StreamOutcome second = stream_pattern_with_retry(
      channel, fx.decoder, fx.te, fx.cube, 4, fx.session);

  EXPECT_TRUE(first.applied);
  EXPECT_TRUE(second.applied);
  EXPECT_EQ(fx.session.ate_bits, 2 * fx.te.size());
  EXPECT_EQ(fx.session.patterns_retried, 0u);
  EXPECT_EQ(fx.session.soc_cycles % 2, 0u)
      << "identical patterns cost identical cycles";
}

}  // namespace
}  // namespace nc::decomp
