// Functional coverage for the persistent artifact store: round trips,
// reopen persistence, content-addressed duplicate handling, erase
// tombstones, compaction (space accounting, reader concurrency -- the test
// the TSan leg leans on), fsck classification and repair, and manifest
// snapshotting. Crash-recovery byte matrices live in store_crash_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "store/store.h"

namespace nc::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nc_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreConfig config() const {
    StoreConfig c;
    c.dir = dir_.string();
    c.auto_compact = false;  // tests trigger compaction explicitly
    return c;
  }

  fs::path dir_;
};

Key key_of(std::uint64_t n) { return Key{n, ~n}; }

std::vector<std::uint8_t> payload_of(std::uint64_t n, std::size_t len) {
  std::mt19937_64 rng(n * 2654435761u + 1);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

TEST_F(StoreTest, PutGetRoundTrip) {
  Store store(config());
  const auto payload = payload_of(1, 1000);
  store.put(key_of(1), payload);
  const GetResult got = store.get(key_of(1));
  ASSERT_EQ(got.status, GetStatus::kHit);
  EXPECT_EQ(got.payload, payload);
  EXPECT_TRUE(store.contains(key_of(1)));
  EXPECT_FALSE(store.contains(key_of(2)));
  EXPECT_EQ(store.get(key_of(2)).status, GetStatus::kMiss);

  const StoreStats s = store.stats();
  EXPECT_EQ(s.records, 1u);
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST_F(StoreTest, EmptyPayloadIsStorable) {
  Store store(config());
  store.put(key_of(9), std::vector<std::uint8_t>{});
  const GetResult got = store.get(key_of(9));
  ASSERT_EQ(got.status, GetStatus::kHit);
  EXPECT_TRUE(got.payload.empty());
}

TEST_F(StoreTest, SurvivesReopen) {
  for (std::uint64_t n = 0; n < 20; ++n) {
    Store store(config());
    store.put(key_of(n), payload_of(n, 64 + n * 17));
    // Everything written by earlier incarnations is still there.
    for (std::uint64_t m = 0; m <= n; ++m) {
      const GetResult got = store.get(key_of(m));
      ASSERT_EQ(got.status, GetStatus::kHit) << "key " << m << " gen " << n;
      EXPECT_EQ(got.payload, payload_of(m, 64 + m * 17));
    }
  }
  Store store(config());
  EXPECT_EQ(store.stats().records, 20u);
  EXPECT_TRUE(store.stats().recovered);
}

TEST_F(StoreTest, DuplicatePutIsNoOp) {
  Store store(config());
  store.put(key_of(1), payload_of(1, 100));
  const std::uint64_t live_before = store.stats().live_bytes;
  store.put(key_of(1), payload_of(1, 100));
  const StoreStats s = store.stats();
  EXPECT_EQ(s.duplicate_puts, 1u);
  EXPECT_EQ(s.live_bytes, live_before);
  EXPECT_EQ(s.records, 1u);
}

TEST_F(StoreTest, EraseRemovesAcrossReopen) {
  {
    Store store(config());
    store.put(key_of(1), payload_of(1, 50));
    store.put(key_of(2), payload_of(2, 50));
    EXPECT_TRUE(store.erase(key_of(1)));
    EXPECT_FALSE(store.erase(key_of(3)));
    EXPECT_EQ(store.get(key_of(1)).status, GetStatus::kMiss);
  }
  Store store(config());
  EXPECT_EQ(store.get(key_of(1)).status, GetStatus::kMiss);
  EXPECT_EQ(store.get(key_of(2)).status, GetStatus::kHit);
  const StoreStats s = store.stats();
  EXPECT_EQ(s.records, 1u);
  EXPECT_EQ(s.tombstones, 1u);
  EXPECT_GT(s.dead_bytes, 0u);  // the erased record is garbage, not gone
}

TEST_F(StoreTest, CompactionReclaimsEraseGarbage) {
  StoreConfig cfg = config();
  cfg.segment_target_bytes = 4096;  // many small segments
  Store store(cfg);
  for (std::uint64_t n = 0; n < 200; ++n)
    store.put(key_of(n), payload_of(n, 100));
  for (std::uint64_t n = 0; n < 200; n += 2) store.erase(key_of(n));

  const StoreStats before = store.stats();
  ASSERT_GT(before.dead_bytes, 0u);
  ASSERT_GT(before.segments, 3u);

  const std::uint64_t reclaimed = store.compact(0.0);
  EXPECT_GT(reclaimed, 0u);

  const StoreStats after = store.stats();
  EXPECT_GT(after.compactions, 0u);
  EXPECT_GT(after.records_moved, 0u);
  EXPECT_EQ(after.bytes_reclaimed, reclaimed);
  EXPECT_LT(after.segments, before.segments);
  // Only the (unsealed) active segment may still hold garbage.
  EXPECT_LE(after.dead_bytes, before.dead_bytes / 4);

  // Every surviving key still round-trips after its record moved.
  for (std::uint64_t n = 1; n < 200; n += 2) {
    const GetResult got = store.get(key_of(n));
    ASSERT_EQ(got.status, GetStatus::kHit) << "key " << n;
    EXPECT_EQ(got.payload, payload_of(n, 100));
  }
  // And still after a reopen (the manifest recorded the moves + retires).
  Store reopened(cfg);
  for (std::uint64_t n = 1; n < 200; n += 2)
    EXPECT_EQ(reopened.get(key_of(n)).status, GetStatus::kHit) << "key " << n;
  for (std::uint64_t n = 0; n < 200; n += 2)
    EXPECT_EQ(reopened.get(key_of(n)).status, GetStatus::kMiss) << "key " << n;
}

TEST_F(StoreTest, CompactionBelowThresholdIsSkipped) {
  StoreConfig cfg = config();
  cfg.segment_target_bytes = 4096;
  Store store(cfg);
  for (std::uint64_t n = 0; n < 100; ++n)
    store.put(key_of(n), payload_of(n, 100));
  store.erase(key_of(0));  // a sliver of garbage
  EXPECT_EQ(store.compact(0.9), 0u);
  EXPECT_EQ(store.stats().compactions, 0u);
}

TEST_F(StoreTest, AutoCompactionOnThreadPool) {
  core::ThreadPool pool(2);
  StoreConfig cfg = config();
  cfg.segment_target_bytes = 4096;
  cfg.auto_compact = true;
  cfg.compact_garbage_ratio = 0.3;
  cfg.pool = &pool;
  {
    Store store(cfg);
    for (std::uint64_t n = 0; n < 300; ++n) {
      store.put(key_of(n), payload_of(n, 100));
      if (n % 2 == 0) store.erase(key_of(n));
    }
    // ~Store waits for the scheduled background compaction, so reads below
    // see a settled store.
  }
  Store store(cfg);
  EXPECT_GT(store.stats().bytes_reclaimed + store.stats().records,
            0u);  // reopened fine
  for (std::uint64_t n = 1; n < 300; n += 2) {
    const GetResult got = store.get(key_of(n));
    ASSERT_EQ(got.status, GetStatus::kHit) << "key " << n;
    EXPECT_EQ(got.payload, payload_of(n, 100));
  }
}

// The TSan-leg workhorse: readers hammer every key while compaction
// repeatedly rewrites segments underneath them. The churn that feeds the
// compactor garbage uses a disjoint key range [kKeys, 2*kKeys) so the keys
// the readers probe are live at all times -- a reader must always see a
// verified hit with the exact payload; any miss, torn read or data race is
// a bug.
TEST_F(StoreTest, ConcurrentReadersDuringCompaction) {
  StoreConfig cfg = config();
  cfg.segment_target_bytes = 2048;
  Store store(cfg);
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t n = 0; n < kKeys; ++n)
    store.put(key_of(n), payload_of(n, 120));
  // Garbage in every segment: overwrite-style churn via erase + re-put,
  // interleaved into the same segments as the reader-visible keys.
  for (std::uint64_t n = kKeys; n < 2 * kKeys; n += 3) {
    store.put(key_of(n), payload_of(n, 120));
    store.erase(key_of(n));
    store.put(key_of(n), payload_of(n, 120));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &stop, &reads, t] {
      std::mt19937_64 rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t n = rng() % kKeys;
        const GetResult got = store.get(key_of(n));
        ASSERT_EQ(got.status, GetStatus::kHit);
        ASSERT_EQ(got.payload, payload_of(n, 120));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 10; ++round) {
    store.compact(0.0);
    // Re-create garbage so the next round has something to move -- only in
    // the churn range, never touching a key a reader might be fetching.
    for (std::uint64_t n = kKeys + round % 3; n < 2 * kKeys; n += 3) {
      store.erase(key_of(n));
      store.put(key_of(n), payload_of(n, 120));
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  // Nothing was lost in the churn.
  for (std::uint64_t n = 0; n < kKeys; ++n)
    EXPECT_EQ(store.get(key_of(n)).status, GetStatus::kHit) << "key " << n;
}

TEST_F(StoreTest, FsckCleanOnHealthyStore) {
  Store store(config());
  for (std::uint64_t n = 0; n < 10; ++n)
    store.put(key_of(n), payload_of(n, 80));
  store.erase(key_of(3));
  const FsckReport rep = store.fsck(/*repair=*/false);
  EXPECT_TRUE(rep.clean);
  EXPECT_FALSE(rep.repaired);
  EXPECT_EQ(rep.dangling_entries, 0u);
  EXPECT_EQ(rep.orphan_records, 0u);
  EXPECT_EQ(rep.records_scanned, 10u);
  EXPECT_GE(rep.segments_scanned, 1u);
}

TEST_F(StoreTest, FsckRecoversOrphanedSegmentRecord) {
  const auto payload = payload_of(7, 90);
  {
    // Write two records, then chop the manifest back so the second one's
    // birth is forgotten -- exactly the state a crash between segment append
    // and manifest append leaves behind.
    Store store(config());
    store.put(key_of(1), payload_of(1, 90));
    const std::uint64_t keep = store.stats().manifest_bytes;
    store.put(key_of(7), payload);
    std::error_code ec;
    fs::resize_file(dir_ / "manifest.nc9m", keep, ec);
    ASSERT_FALSE(ec);
    // Drop the store without letting it write anything further: from here
    // on the on-disk state is what the next open sees. (~Store appends
    // nothing, so this is safe.)
  }
  Store store(config());
  EXPECT_EQ(store.get(key_of(7)).status, GetStatus::kMiss);  // orphaned
  const FsckReport scan = store.fsck(/*repair=*/false);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.orphan_records, 1u);

  const FsckReport rep = store.fsck(/*repair=*/true);
  EXPECT_TRUE(rep.repaired);
  EXPECT_EQ(rep.orphans_recovered, 1u);
  const GetResult got = store.get(key_of(7));
  ASSERT_EQ(got.status, GetStatus::kHit);
  EXPECT_EQ(got.payload, payload);

  // Clean now, and still recovered after another reopen.
  EXPECT_TRUE(store.fsck(false).clean);
  Store reopened(config());
  EXPECT_EQ(reopened.get(key_of(7)).status, GetStatus::kHit);
}

TEST_F(StoreTest, FsckDoesNotResurrectErasedKeys) {
  {
    Store store(config());
    store.put(key_of(1), payload_of(1, 60));
    store.erase(key_of(1));
  }
  Store store(config());
  const FsckReport rep = store.fsck(/*repair=*/true);
  // The segment record is still on disk but tombstoned: not an orphan.
  EXPECT_EQ(rep.orphan_records, 0u);
  EXPECT_EQ(store.get(key_of(1)).status, GetStatus::kMiss);
}

TEST_F(StoreTest, FsckRemovesStraySegmentFile) {
  {
    Store store(config());
    store.put(key_of(1), payload_of(1, 60));
  }
  // A segment file the manifest knows nothing about and holding no live
  // data: a valid header with no records.
  const fs::path stray = dir_ / "seg-000099.nc9a";
  {
    // Valid header, zero records.
    std::vector<std::uint8_t> hdr = {'N', 'C', '9', 'A', 1,
                                     99,  0,   0,   0,   0,
                                     0,   0,   0};
    FILE* f = fopen(stray.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(hdr.data(), 1, hdr.size(), f);
    fclose(f);
  }
  Store store(config());
  const FsckReport scan = store.fsck(/*repair=*/false);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.stray_segments, 1u);
  const FsckReport rep = store.fsck(/*repair=*/true);
  EXPECT_EQ(rep.stray_segments_removed, 1u);
  EXPECT_FALSE(fs::exists(stray));
  EXPECT_TRUE(store.fsck(false).clean);
  EXPECT_EQ(store.get(key_of(1)).status, GetStatus::kHit);
}

TEST_F(StoreTest, ManifestSnapshotsOnBloatedReopen) {
  StoreConfig cfg = config();
  cfg.segment_target_bytes = 4096;
  std::uint64_t bloated = 0;
  {
    Store store(cfg);
    // Heavy churn: each round appends put+erase records for the same keys.
    for (int round = 0; round < 30; ++round)
      for (std::uint64_t n = 0; n < 10; ++n) {
        store.put(key_of(n), payload_of(n, 40));
        if (round < 29) store.erase(key_of(n));
      }
    store.compact(0.0);
    bloated = store.stats().manifest_bytes;
  }
  Store store(cfg);
  // Reopen rewrote the manifest down to roughly live-state size.
  EXPECT_LT(store.stats().manifest_bytes, bloated / 4);
  for (std::uint64_t n = 0; n < 10; ++n)
    EXPECT_EQ(store.get(key_of(n)).status, GetStatus::kHit) << "key " << n;
}

TEST_F(StoreTest, RejectsForeignManifest) {
  fs::create_directories(dir_);
  FILE* f = fopen((dir_ / "manifest.nc9m").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("this is not a manifest, do not clobber it", f);
  fclose(f);
  EXPECT_THROW(Store{config()}, std::runtime_error);
}

}  // namespace
}  // namespace nc::store
