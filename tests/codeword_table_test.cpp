#include "codec/codeword_table.h"

#include <gtest/gtest.h>

#include <numeric>

namespace nc::codec {
namespace {

TEST(CodewordTable, StandardLengthsMatchTableI) {
  const CodewordTable t = CodewordTable::standard();
  EXPECT_EQ(t.length(BlockClass::kC1), 1u);
  EXPECT_EQ(t.length(BlockClass::kC2), 2u);
  for (auto c : {BlockClass::kC3, BlockClass::kC4, BlockClass::kC5,
                 BlockClass::kC6, BlockClass::kC7, BlockClass::kC8})
    EXPECT_EQ(t.length(c), 5u);
  EXPECT_EQ(t.length(BlockClass::kC9), 4u);
  EXPECT_EQ(t.max_length(), 5u);
}

TEST(CodewordTable, StandardPatterns) {
  const CodewordTable t = CodewordTable::standard();
  EXPECT_EQ(t.at(BlockClass::kC1).to_string(), "0");
  EXPECT_EQ(t.at(BlockClass::kC2).to_string(), "10");
  EXPECT_EQ(t.at(BlockClass::kC9).to_string(), "1100");
  EXPECT_EQ(t.at(BlockClass::kC3).to_string(), "11010");
  EXPECT_EQ(t.at(BlockClass::kC8).to_string(), "11111");
}

TEST(CodewordTable, StandardIsPrefixFree) {
  EXPECT_TRUE(CodewordTable::standard().prefix_free());
}

TEST(CodewordTable, KraftSumIsExactlyOne) {
  const CodewordTable t = CodewordTable::standard();
  double kraft = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c)
    kraft += 1.0 / (1u << t.length(static_cast<BlockClass>(c)));
  EXPECT_DOUBLE_EQ(kraft, 1.0);
}

TEST(CodewordTable, FromLengthsRejectsKraftViolation) {
  EXPECT_THROW(
      CodewordTable::from_lengths({1, 1, 5, 5, 5, 5, 5, 5, 4}),
      std::invalid_argument);
}

TEST(CodewordTable, FromLengthsRejectsZeroLength) {
  EXPECT_THROW(
      CodewordTable::from_lengths({0, 2, 5, 5, 5, 5, 5, 5, 4}),
      std::invalid_argument);
}

// The tune optimizer probes arbitrary length vectors and sorts rejections
// by kind, so from_lengths throws a typed CodeSpecError (still an
// invalid_argument for legacy catch sites) with the fault attached.
TEST(CodewordTable, KraftViolationCarriesTypedFault) {
  try {
    CodewordTable::from_lengths({1, 1, 5, 5, 5, 5, 5, 5, 4});
    FAIL() << "expected CodeSpecError";
  } catch (const CodeSpecError& e) {
    EXPECT_EQ(e.fault(), CodeSpecFault::kKraftViolation);
  }
}

TEST(CodewordTable, ZeroLengthCarriesTypedFault) {
  try {
    CodewordTable::from_lengths({0, 2, 5, 5, 5, 5, 5, 5, 4});
    FAIL() << "expected CodeSpecError";
  } catch (const CodeSpecError& e) {
    EXPECT_EQ(e.fault(), CodeSpecFault::kLengthOutOfRange);
  }
}

TEST(CodewordTable, OverlongLengthCarriesTypedFault) {
  // Length 32 would shift the integer Kraft accumulator out of range; it
  // must be rejected as out-of-range, not wrap into a bogus Kraft verdict.
  try {
    CodewordTable::from_lengths({1, 2, 5, 5, 5, 5, 5, 5, 32});
    FAIL() << "expected CodeSpecError";
  } catch (const CodeSpecError& e) {
    EXPECT_EQ(e.fault(), CodeSpecFault::kLengthOutOfRange);
  }
}

TEST(CodewordTable, AllLengthOneIsTheCanonicalKraftCounterexample) {
  EXPECT_THROW(CodewordTable::from_lengths({1, 1, 1, 1, 1, 1, 1, 1, 1}),
               CodeSpecError);
}

TEST(CodewordTable, DeepButFeasibleLengthsAreAccepted) {
  // 1,2,3,...,8,8 satisfies Kraft with equality; the integer accumulator
  // must not reject it to rounding.
  const CodewordTable t =
      CodewordTable::from_lengths({1, 2, 3, 4, 5, 6, 7, 8, 8});
  EXPECT_TRUE(t.prefix_free());
  EXPECT_EQ(t.max_length(), 8u);
}

TEST(CodewordTable, UnderfullLengthsAreAccepted) {
  // Kraft sum strictly below one (wasteful but legal) must construct.
  const CodewordTable t =
      CodewordTable::from_lengths({2, 3, 5, 5, 5, 5, 5, 5, 5});
  EXPECT_TRUE(t.prefix_free());
}

TEST(CodewordTable, MatchDecodesEveryCodeword) {
  const CodewordTable t = CodewordTable::standard();
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const auto cls = static_cast<BlockClass>(c);
    const bits::TritVector v =
        bits::TritVector::from_string(t.at(cls).to_string());
    bits::TritReader r(v);
    EXPECT_EQ(t.match(r), cls);
    EXPECT_TRUE(r.done());
  }
}

TEST(CodewordTable, MatchConsumesExactlyCodewordBits) {
  const CodewordTable t = CodewordTable::standard();
  const bits::TritVector v = bits::TritVector::from_string("0" "10" "1100");
  bits::TritReader r(v);
  EXPECT_EQ(t.match(r), BlockClass::kC1);
  EXPECT_EQ(r.position(), 1u);
  EXPECT_EQ(t.match(r), BlockClass::kC2);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(t.match(r), BlockClass::kC9);
  EXPECT_TRUE(r.done());
}

TEST(CodewordTable, FrequencyDirectedGivesShortestToMostFrequent) {
  // s9234-style: C8 more frequent than C9 (paper Section IV).
  std::array<std::size_t, kNumClasses> counts{};
  counts[0] = 1000;  // C1
  counts[1] = 300;   // C2
  counts[7] = 200;   // C8
  counts[8] = 100;   // C9
  const CodewordTable t = CodewordTable::frequency_directed(counts);
  EXPECT_EQ(t.length(BlockClass::kC1), 1u);
  EXPECT_EQ(t.length(BlockClass::kC2), 2u);
  EXPECT_EQ(t.length(BlockClass::kC8), 4u);  // C8 takes the 4-bit slot
  EXPECT_EQ(t.length(BlockClass::kC9), 5u);
  EXPECT_TRUE(t.prefix_free());
}

TEST(CodewordTable, FrequencyDirectedDefaultOrderReproducesStandard) {
  // Counts already in the paper's default order keep the standard mapping.
  std::array<std::size_t, kNumClasses> counts = {900, 500, 10, 9, 8,
                                                 7,   6,   5, 100};
  EXPECT_EQ(CodewordTable::frequency_directed(counts),
            CodewordTable::standard());
}

TEST(CodewordTable, FrequencyDirectedTiesAreStable) {
  std::array<std::size_t, kNumClasses> counts{};  // all equal
  const CodewordTable t = CodewordTable::frequency_directed(counts);
  EXPECT_EQ(t.length(BlockClass::kC1), 1u);
  EXPECT_EQ(t.length(BlockClass::kC2), 2u);
  EXPECT_EQ(t.length(BlockClass::kC3), 4u);
}

TEST(Codeword, ToStringPadsToLength) {
  EXPECT_EQ((Codeword{0b0011, 4}).to_string(), "0011");
  EXPECT_EQ((Codeword{0, 3}).to_string(), "000");
}

}  // namespace
}  // namespace nc::codec
