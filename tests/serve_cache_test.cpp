// Artifact cache: content addressing, LRU eviction order, byte-capacity
// accounting, CRC validation on hit, and concurrent access.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/frame.h"

namespace nc::serve {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> v;
  for (int x : vals) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

CacheKey key_for(int n) {
  const auto payload = bytes({n & 0xFF, (n >> 8) & 0xFF});
  return cache_key(FrameType::kEncodeRequest, CodecSpec{}, payload.data(),
                   payload.size());
}

TEST(CacheKeyTest, DistinguishesKindSpecAndPayload) {
  const auto payload = bytes({1, 2, 3});
  const CacheKey enc = cache_key(FrameType::kEncodeRequest, CodecSpec{},
                                 payload.data(), payload.size());
  const CacheKey dec = cache_key(FrameType::kDecodeRequest, CodecSpec{},
                                 payload.data(), payload.size());
  EXPECT_NE(enc, dec) << "kind must separate artifact namespaces";

  CodecSpec other;
  other.k = 16;
  const CacheKey enc16 = cache_key(FrameType::kEncodeRequest, other,
                                   payload.data(), payload.size());
  EXPECT_NE(enc, enc16) << "block size is part of the address";

  other = CodecSpec{};
  other.lengths[2] = 4;
  other.lengths[8] = 5;
  const CacheKey enc_table = cache_key(FrameType::kEncodeRequest, other,
                                       payload.data(), payload.size());
  EXPECT_NE(enc, enc_table) << "codeword table is part of the address";

  const auto payload2 = bytes({1, 2, 4});
  const CacheKey enc2 = cache_key(FrameType::kEncodeRequest, CodecSpec{},
                                  payload2.data(), payload2.size());
  EXPECT_NE(enc, enc2);

  const CacheKey again = cache_key(FrameType::kEncodeRequest, CodecSpec{},
                                   payload.data(), payload.size());
  EXPECT_EQ(enc, again) << "the address is a pure function of the inputs";
}

TEST(ArtifactCacheTest, HitReturnsExactBytes) {
  ArtifactCache cache(1 << 16);
  const auto value = bytes({9, 8, 7, 6, 5});
  cache.put(key_for(1), value);
  const auto hit = cache.get(key_for(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, value);
  EXPECT_FALSE(cache.get(key_for(2)).has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ArtifactCacheTest, EvictsInLruOrder) {
  // Each entry charges sizeof(CacheKey) + payload bytes; size the capacity
  // for exactly three entries.
  const std::size_t entry = sizeof(CacheKey) + 8;
  ArtifactCache cache(3 * entry);
  const auto payload = std::vector<std::uint8_t>(8, 0x55);
  cache.put(key_for(1), payload);
  cache.put(key_for(2), payload);
  cache.put(key_for(3), payload);
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch 1 so 2 becomes least-recently-used, then insert 4.
  EXPECT_TRUE(cache.get(key_for(1)).has_value());
  cache.put(key_for(4), payload);

  EXPECT_TRUE(cache.get(key_for(1)).has_value());
  EXPECT_FALSE(cache.get(key_for(2)).has_value()) << "LRU victim";
  EXPECT_TRUE(cache.get(key_for(3)).has_value());
  EXPECT_TRUE(cache.get(key_for(4)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ArtifactCacheTest, ByteCapacityAccounting) {
  const std::size_t capacity = 4 * (sizeof(CacheKey) + 16);
  ArtifactCache cache(capacity);
  for (int i = 0; i < 32; ++i)
    cache.put(key_for(i), std::vector<std::uint8_t>(16, 0xAA));
  const CacheStats s = cache.stats();
  EXPECT_LE(s.bytes_stored, capacity);
  EXPECT_EQ(s.bytes_stored, s.entries * (sizeof(CacheKey) + 16));
  EXPECT_EQ(s.entries + s.evictions, s.insertions);
}

TEST(ArtifactCacheTest, OversizedPayloadNotStored) {
  ArtifactCache cache(64);
  cache.put(key_for(1), std::vector<std::uint8_t>(1024, 1));
  EXPECT_FALSE(cache.get(key_for(1)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_stored, 0u);
}

TEST(ArtifactCacheTest, ZeroCapacityDisablesStorage) {
  ArtifactCache cache(0);
  cache.put(key_for(1), bytes({1}));
  EXPECT_FALSE(cache.get(key_for(1)).has_value());
}

TEST(ArtifactCacheTest, RefreshKeepsSingleEntry) {
  ArtifactCache cache(1 << 12);
  cache.put(key_for(1), bytes({1, 2, 3}));
  cache.put(key_for(1), bytes({1, 2, 3}));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(ArtifactCacheTest, ConcurrentMixedAccessStaysConsistent) {
  ArtifactCache cache(1 << 14);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const int k = (t * 13 + i) % 40;
        if (i % 3 == 0)
          cache.put(key_for(k),
                    std::vector<std::uint8_t>(static_cast<std::size_t>(k + 1),
                                              static_cast<std::uint8_t>(k)));
        else if (auto hit = cache.get(key_for(k)); hit.has_value())
          // A hit must always return the exact bytes that key stores.
          EXPECT_EQ(*hit, std::vector<std::uint8_t>(
                              static_cast<std::size_t>(k + 1),
                              static_cast<std::uint8_t>(k)));
      }
    });
  }
  for (auto& t : threads) t.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.crc_drops, 0u);
  EXPECT_EQ(s.entries + s.evictions, s.insertions);
  EXPECT_LE(s.bytes_stored, std::size_t{1} << 14);
}

}  // namespace
}  // namespace nc::serve
