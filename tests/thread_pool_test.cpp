// Thread-correctness harness for nc::core: the pool and the parallel_for /
// parallel_map helpers. These tests are written to be meaningful under
// ThreadSanitizer (tools/check.sh runs them with NC_SANITIZE=thread): they
// hammer the queue from many producers/consumers, check exactly-once
// execution, order-preserving results, deterministic exception selection
// and clean shutdown with work still queued.
#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace nc::core {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&runs, i] {
      runs.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  for (int i = 0; i < 200; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(runs.load(), 200);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, TaskExceptionLandsInFutureNotTerminate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    // No explicit join: ~ThreadPool must execute everything already queued.
  }
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPool, SubmitFromInsideATask) {
  ThreadPool pool(3);
  auto outer = pool.submit([&pool] {
    // Fire-and-wait on a *different* worker is fine as long as the pool is
    // not saturated with blocked tasks.
    return pool.submit([] { return 5; }).get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Several indices throw; the helper must deterministically surface the
  // lowest one no matter which task finished first.
  try {
    parallel_for(pool, 0, 64, [](std::size_t i) {
      if (i % 10 == 3) throw std::out_of_range(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ParallelMap, PreservesInputOrder) {
  ThreadPool pool(4);
  const std::vector<int> result =
      parallel_map(pool, 300, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(result.size(), 300u);
  for (std::size_t i = 0; i < result.size(); ++i)
    EXPECT_EQ(result[i], static_cast<int>(i) * 3);
}

TEST(ParallelMap, ManyWavesStressTheQueue) {
  // Repeated small waves exercise the sleep/wake path of the queue under
  // TSan far harder than one big wave.
  ThreadPool pool(4);
  for (int wave = 0; wave < 50; ++wave) {
    const auto r = parallel_map(
        pool, 16, [wave](std::size_t i) { return wave * 100 + static_cast<int>(i); });
    for (std::size_t i = 0; i < r.size(); ++i)
      ASSERT_EQ(r[i], wave * 100 + static_cast<int>(i));
  }
}

}  // namespace
}  // namespace nc::core
