// Golden-vector tests for the packed bitplane representation.
//
// Everything here is hand-computed (or pinned from a first verified run):
// the word values of extracted planes at word-straddling offsets, the
// popcount classification at every boundary shape a 64-trit word can take,
// and one frozen TE byte dump for a calibrated ISCAS'89 cube set. The
// differential fuzz suite proves scalar == bitplane; this file proves both
// equal the *intended* bits, so a lockstep regression in the two impls
// cannot hide.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "bits/bitplane.h"
#include "bits/serialize.h"
#include "codec/nine_coded.h"
#include "core/crc.h"
#include "gen/cube_gen.h"
#include "gen/profiles.h"

namespace nc::bits {
namespace {

/// "01X" string -> trits, the order they are appended.
TritVector trits(const std::string& s) {
  TritVector v;
  for (char c : s)
    v.push_back(c == '1' ? Trit::One : (c == 'X' ? Trit::X : Trit::Zero));
  return v;
}

/// The period-4 sequence One,Zero,X,One repeated over `n` trits: its planes
/// have nibble-periodic words that are easy to compute by hand.
TritVector period4(std::size_t n) {
  TritVector v;
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0: v.push_back(Trit::One); break;
      case 1: v.push_back(Trit::Zero); break;
      case 2: v.push_back(Trit::X); break;
      default: v.push_back(Trit::One); break;
    }
  }
  return v;
}

// ------------------------------------------------- extraction golden words

TEST(BitplaneGolden, ExtractionFullWord) {
  const Bitplanes p(period4(70));
  // One at i%4 in {0,3} -> value nibble 0b1001 = 0x9; X at i%4==2 -> 0x4.
  EXPECT_EQ(p.value_bits(0, 64), 0x9999999999999999ull);
  EXPECT_EQ(p.x_bits(0, 64), 0x4444444444444444ull);
  // Trits 64..69 = One,Zero,X,One,One,Zero -> value 0b011001, x 0b000100.
  EXPECT_EQ(p.value_bits(64, 6), 0x19ull);
  EXPECT_EQ(p.x_bits(64, 6), 0x04ull);
}

TEST(BitplaneGolden, ExtractionWordStraddlingWindow) {
  const Bitplanes p(period4(70));
  // Bits 60..67 straddle the word boundary: trits 60..63 = 1,0,X,1 and
  // 64..67 = 1,0,X,1 -> value 0x99, x 0x44.
  EXPECT_EQ(p.value_bits(60, 8), 0x99ull);
  EXPECT_EQ(p.x_bits(60, 8), 0x44ull);
  // A 64-bit window at offset 2 re-aligns the period: trits 2,3,4,5,... =
  // X,1,1,0,X,1,1,0,... -> value nibble 0b0110 = 0x6, x nibble 0b0001.
  EXPECT_EQ(p.value_bits(2, 64), 0x6666666666666666ull);
  EXPECT_EQ(p.x_bits(2, 64), 0x1111111111111111ull);
  // Degenerate empty window, including at a word boundary.
  EXPECT_EQ(p.value_bits(64, 0), 0u);
  EXPECT_EQ(p.value_bits(0, 0), 0u);
}

TEST(BitplaneGolden, InjectionIsCanonical) {
  const TritVector original = period4(137);
  const Bitplanes p(original);
  // Word-compare equality: the reconstructed packed words must match a
  // scalar-built vector exactly, including zeroed slack past size().
  EXPECT_TRUE(p.to_trits() == original);
}

TEST(BitplaneGolden, BuiltByAppendEqualsExtracted) {
  const TritVector original = period4(200);
  const Bitplanes extracted(original);
  Bitplanes built;
  // Mixed construction: word appends, runs, and a straddling range copy.
  built.append_word(extracted.value_bits(0, 64), extracted.x_bits(0, 64), 64);
  built.append_word(extracted.value_bits(64, 30), extracted.x_bits(64, 30),
                    30);
  built.append_range(extracted, 94, 106);
  ASSERT_EQ(built.size(), original.size());
  EXPECT_TRUE(built.to_trits() == original);
}

TEST(BitplaneGolden, AppendBitsMsbMatchesCodewordOrder) {
  Bitplanes p;
  p.append_bits_msb(0b1100u, 4);  // transmit order: 1,1,0,0
  EXPECT_TRUE(p.to_trits() == trits("1100"));
}

TEST(BitplaneGolden, AppendRunPatterns) {
  Bitplanes p;
  p.append_run(3, Trit::X);
  p.append_run(70, Trit::One);
  p.append_run(2, Trit::Zero);
  TritVector expect;
  expect.append_run(3, Trit::X);
  expect.append_run(70, Trit::One);
  expect.append_run(2, Trit::Zero);
  EXPECT_TRUE(p.to_trits() == expect);
  EXPECT_EQ(p.x_bits(0, 3), 0x7ull);
  EXPECT_EQ(p.value_bits(0, 64), 0xFFFFFFFFFFFFFFF8ull);
}

// --------------------------------------------- scan classification goldens

/// Per-trit reference scan, the semantics scan() must reproduce.
PlaneScan reference_scan(const Bitplanes& p, std::size_t begin,
                         std::size_t len) {
  PlaneScan s;
  for (std::size_t i = begin; i < begin + len; ++i) {
    switch (p.get(i)) {
      case Trit::One: s.any_one = true; break;
      case Trit::Zero: s.any_zero = true; break;
      default: ++s.x_count; break;
    }
  }
  return s;
}

void expect_scan(const Bitplanes& p, std::size_t begin, std::size_t len) {
  const PlaneScan got = p.scan(begin, len);
  const PlaneScan want = reference_scan(p, begin, len);
  EXPECT_EQ(got.any_one, want.any_one) << "begin=" << begin << " len=" << len;
  EXPECT_EQ(got.any_zero, want.any_zero)
      << "begin=" << begin << " len=" << len;
  EXPECT_EQ(got.x_count, want.x_count) << "begin=" << begin << " len=" << len;
}

TEST(BitplaneScan, HalfExactlyFillsAWord) {
  Bitplanes p(TritVector(256, Trit::X));
  const PlaneScan s = p.scan(64, 64);
  EXPECT_FALSE(s.any_one);
  EXPECT_FALSE(s.any_zero);
  EXPECT_EQ(s.x_count, 64u);
}

TEST(BitplaneScan, BoundaryShapes) {
  // A fixed irregular sequence long enough for every alignment case.
  TritVector v;
  for (std::size_t i = 0; i < 300; ++i)
    v.push_back(i % 7 == 0   ? Trit::One
                : i % 5 == 0 ? Trit::X
                             : Trit::Zero);
  const Bitplanes p(v);
  // Exactly one word; spanning two words from an offset; sub-word head and
  // tail; window ending exactly at a word boundary; empty window.
  expect_scan(p, 0, 64);
  expect_scan(p, 32, 64);
  expect_scan(p, 1, 63);
  expect_scan(p, 63, 2);
  expect_scan(p, 64, 64);
  expect_scan(p, 100, 28);  // ends at 128
  expect_scan(p, 130, 33);
  expect_scan(p, 299, 1);
  expect_scan(p, 150, 0);
  expect_scan(p, 64, 0);
}

TEST(BitplaneScan, SingleConflictAtEveryWordPosition) {
  // One specified 1 in a sea of X: any_one must flip exactly when the
  // window covers it, for every bit position in the word.
  for (std::size_t pos : {0u, 1u, 31u, 32u, 63u, 64u, 65u, 127u}) {
    TritVector v(128, Trit::X);
    v.set(pos, Trit::One);
    const Bitplanes p(v);
    const PlaneScan covering = p.scan(pos, 1);
    EXPECT_TRUE(covering.any_one);
    EXPECT_EQ(covering.x_count, 0u);
    if (pos > 0) {
      const PlaneScan before = p.scan(0, pos);
      EXPECT_FALSE(before.any_one) << pos;
      EXPECT_EQ(before.x_count, pos) << pos;
    }
    const PlaneScan after = p.scan(pos + 1, 128 - pos - 1);
    EXPECT_FALSE(after.any_one) << pos;
    EXPECT_EQ(after.x_count, 128 - pos - 1) << pos;
  }
}

// ----------------------------------------------------------------- reader

TEST(BitplaneReader, MirrorsTritReaderErrorOffsets) {
  const TritVector v = trits("10X10");
  const Bitplanes p(v);
  BitplaneReader r(p);
  EXPECT_TRUE(r.next_bit());
  EXPECT_FALSE(r.next_bit());
  // The X sits at absolute offset 2; InvalidSymbol must carry exactly that.
  try {
    r.next_bit();
    FAIL() << "X in codeword position not detected";
  } catch (const InvalidSymbol& e) {
    EXPECT_EQ(e.offset(), 2u);
  }
  // The cursor consumed the X (TritReader::next_bit does the same), so a
  // 3-symbol copy from position 3 overruns: offset 3, requested 3, have 2.
  Bitplanes out;
  try {
    r.copy_to(out, 3);
    FAIL() << "overrun not detected";
  } catch (const StreamOverrun& e) {
    EXPECT_EQ(e.offset(), 3u);
    EXPECT_EQ(e.requested(), 3u);
    EXPECT_EQ(e.available(), 2u);
  }
  r.copy_to(out, 2);
  EXPECT_TRUE(r.done());
  EXPECT_TRUE(out.to_trits() == trits("10"));
}

// ------------------------------------------------------ pinned TE artifact

// One frozen end-to-end artifact: the s5378-calibrated cube set (seed 1)
// encoded at K=8 and serialized with save_trits. Pins |TD|, |TE|, the
// CRC-32 of the serialized bytes and the first bytes of the dump, so any
// change to cube generation, classification, codeword emission, payload
// order or serialization shows up as a concrete byte diff -- under either
// codec implementation, which must produce this identical artifact.
TEST(PinnedArtifact, S5378StreamBytesAreFrozen) {
  const gen::BenchmarkProfile* s5378 = nullptr;
  for (const auto& profile : gen::iscas89_profiles())
    if (profile.name == "s5378") s5378 = &profile;
  ASSERT_NE(s5378, nullptr);
  const TestSet td = gen::calibrated_cubes(*s5378, 1);
  const TritVector flat = td.flatten();
  ASSERT_EQ(flat.size(), 23754u);

  for (const auto impl :
       {codec::CodecImpl::kScalar, codec::CodecImpl::kBitplane}) {
    const codec::NineCoded coder(8, impl);
    const TritVector te = coder.encode(flat);
    EXPECT_EQ(te.size(), 10317u) << to_string(impl);

    std::ostringstream dump;
    save_trits(dump, te);
    const std::string bytes = dump.str();
    EXPECT_EQ(bytes.size(), 2593u) << to_string(impl);
    const std::uint32_t crc = core::crc32(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    EXPECT_EQ(crc, 0x780EBDEFu) << to_string(impl) << " actual crc=0x"
                                << std::hex << crc;
    // "NCT1", the trit-stream kind byte, and the little-endian symbol
    // count 10317 = 0x284D.
    const unsigned char head[8] = {0x4E, 0x43, 0x54, 0x31,
                                   0x00, 0x4D, 0x28, 0x00};
    for (std::size_t i = 0; i < sizeof head; ++i)
      EXPECT_EQ(static_cast<unsigned char>(bytes[i]), head[i])
          << to_string(impl) << " byte " << i;
  }
}

}  // namespace
}  // namespace nc::bits
