// Per-coder unit tests plus cross-coder property sweeps: every baseline must
// round-trip any cube stream (care bits preserved; X filled per its rule).
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "baselines/fdr.h"
#include "baselines/golomb.h"
#include "baselines/mtc.h"
#include "baselines/selective_huffman.h"
#include "baselines/vihc.h"
#include "gen/cube_gen.h"

namespace nc::baselines {
namespace {

using bits::Trit;
using bits::TritVector;

// ---------------------------------------------------------------- Golomb --

TEST(Golomb, RejectsNonPowerOfTwoGroup) {
  EXPECT_THROW(Golomb(3), std::invalid_argument);
  EXPECT_THROW(Golomb(1), std::invalid_argument);
  EXPECT_NO_THROW(Golomb(8));
}

TEST(Golomb, KnownCodewords) {
  // m=4: run 0 -> 000, run 1 -> 001, run 5 -> 1 0 01.
  const Golomb g(4);
  EXPECT_EQ(g.encode(TritVector::from_string("1")).to_string(), "000");
  EXPECT_EQ(g.encode(TritVector::from_string("01")).to_string(), "001");
  EXPECT_EQ(g.encode(TritVector::from_string("000001")).to_string(), "1001");
}

TEST(Golomb, XFillsAsZero) {
  const Golomb g(4);
  EXPECT_EQ(g.encode(TritVector::from_string("XX1")),
            g.encode(TritVector::from_string("001")));
}

TEST(Golomb, TrailingZerosRoundTrip) {
  const Golomb g(4);
  const TritVector td = TritVector::from_string("10000");
  const TritVector d = g.decode(g.encode(td), td.size());
  EXPECT_EQ(d.to_string(), "10000");
}

// ------------------------------------------------------------------- FDR --

TEST(Fdr, PaperCodewordTable) {
  bits::BitWriter w;
  fdr_detail::encode_run(w, 0);
  EXPECT_EQ(w.stream().to_string(), "00");
  w = {};
  fdr_detail::encode_run(w, 1);
  EXPECT_EQ(w.stream().to_string(), "01");
  w = {};
  fdr_detail::encode_run(w, 2);
  EXPECT_EQ(w.stream().to_string(), "1000");
  w = {};
  fdr_detail::encode_run(w, 5);
  EXPECT_EQ(w.stream().to_string(), "1011");
  w = {};
  fdr_detail::encode_run(w, 6);
  EXPECT_EQ(w.stream().to_string(), "110000");
  w = {};
  fdr_detail::encode_run(w, 13);
  EXPECT_EQ(w.stream().to_string(), "110111");
}

TEST(Fdr, RunCodecRoundTrip) {
  for (std::size_t len : {0u, 1u, 2u, 5u, 6u, 13u, 14u, 29u, 30u, 1000u}) {
    bits::BitWriter w;
    fdr_detail::encode_run(w, len);
    EXPECT_EQ(w.size(), fdr_detail::codeword_bits(len));
    const TritVector stream = w.take();
    bits::TritReader r(stream);
    EXPECT_EQ(fdr_detail::decode_run(r), len);
    EXPECT_TRUE(r.done());
  }
}

TEST(Fdr, StreamRoundTrip) {
  const Fdr fdr;
  const TritVector td = TritVector::from_string("00010000001X000X01");
  const TritVector d = fdr.decode(fdr.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
}

TEST(Fdr, LongZeroRunsCompressWell) {
  const Fdr fdr;
  TritVector td;
  td.append_run(10000, Trit::Zero);
  td.push_back(Trit::One);
  EXPECT_LT(fdr.encode(td).size(), 40u);
}

// ------------------------------------------------------------------ EFDR --

TEST(Efdr, HandlesRunsOfOnes) {
  const Efdr efdr;
  TritVector td;
  td.append_run(1000, Trit::One);
  td.push_back(Trit::Zero);
  // FDR would explode on this (1000 runs of length 0); EFDR codes it tiny.
  EXPECT_LT(efdr.encode(td).size(), 40u);
  EXPECT_TRUE(td.covered_by(efdr.decode(efdr.encode(td), td.size())));
}

TEST(Efdr, AlternatingPolarity) {
  const Efdr efdr;
  const TritVector td = TritVector::from_string("0001111000011");
  const TritVector d = efdr.decode(efdr.encode(td), td.size());
  EXPECT_EQ(d.to_string(), "0001111000011");
}

TEST(Efdr, MinimumTransitionFillExtendsRuns) {
  const Efdr efdr;
  // X between equal values joins the runs: encodes as a single long run.
  const TritVector sparse = TritVector::from_string("00XX0001");
  const TritVector dense = TritVector::from_string("00000001");
  EXPECT_EQ(efdr.encode(sparse), efdr.encode(dense));
}

// ------------------------------------------------------------------ VIHC --

TEST(Vihc, TokenizerSplitsRunsAtGroupSize) {
  const Vihc v(4);
  // "0000001" -> run 6: one full group (4) + terminated run 2.
  const auto symbols = v.tokenize(TritVector::from_string("0000001"));
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], 4u);
  EXPECT_EQ(symbols[1], 2u);
}

TEST(Vihc, TokenizerHandlesLeading1) {
  const Vihc v(4);
  const auto symbols = v.tokenize(TritVector::from_string("11"));
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], 0u);
  EXPECT_EQ(symbols[1], 0u);
}

TEST(Vihc, UntrainedDecodeThrows) {
  const Vihc v(4);
  EXPECT_THROW(v.decode(TritVector::from_string("0"), 1), std::logic_error);
}

TEST(Vihc, TrainedRoundTrip) {
  const TritVector td =
      TritVector::from_string("0000100X00000001XX0010000000X001");
  const Vihc v = Vihc::trained(td, 8);
  const TritVector d = v.decode(v.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
}

TEST(Vihc, TrainedAndUntrainedEncodeIdentically) {
  const TritVector td = TritVector::from_string("000010000000100XX01");
  EXPECT_EQ(Vihc(4).encode(td), Vihc::trained(td, 4).encode(td));
}

// ------------------------------------------------- Selective Huffman -----

TEST(SelectiveHuffman, RejectsBadConfig) {
  EXPECT_THROW(SelectiveHuffman(0, 4), std::invalid_argument);
  EXPECT_THROW(SelectiveHuffman(65, 4), std::invalid_argument);
  EXPECT_THROW(SelectiveHuffman(8, 0), std::invalid_argument);
}

TEST(SelectiveHuffman, FrequentBlocksAreCoded) {
  // 15 identical blocks + 1 oddball: the frequent one must be selected.
  std::string s;
  for (int i = 0; i < 15; ++i) s += "00001111";
  s += "01010101";
  const TritVector td = TritVector::from_string(s);
  const SelectiveHuffman sh = SelectiveHuffman::trained(td, 8, 2);
  ASSERT_GE(sh.selected_patterns().size(), 1u);
  // Pattern is stored LSB-first: "00001111" -> bits 4..7 set = 0xF0.
  EXPECT_EQ(sh.selected_patterns()[0], 0xF0u);
  // Coded stream beats raw.
  EXPECT_LT(sh.encode(td).size(), td.size());
}

TEST(SelectiveHuffman, XMatchesCompatiblePattern) {
  std::string s;
  for (int i = 0; i < 10; ++i) s += "00001111";
  s += "0000XXXX";  // compatible with the frequent pattern
  const TritVector td = TritVector::from_string(s);
  const SelectiveHuffman sh = SelectiveHuffman::trained(td, 8, 1);
  const TritVector d = sh.decode(sh.encode(td), td.size());
  EXPECT_TRUE(td.covered_by(d));
  // The X block decodes as the frequent pattern, not zero-fill.
  EXPECT_EQ(d.slice(80, 8).to_string(), "00001111");
}

TEST(SelectiveHuffman, UntrainedDecodeThrows) {
  EXPECT_THROW(SelectiveHuffman(8, 4).decode(TritVector::from_string("0"), 1),
               std::logic_error);
}

TEST(SelectiveHuffman, RareBlocksTravelRaw) {
  std::string s;
  for (int i = 0; i < 12; ++i) s += "11110000";
  s += "01100110";  // unique block
  const TritVector td = TritVector::from_string(s);
  const SelectiveHuffman sh = SelectiveHuffman::trained(td, 8, 1);
  const TritVector d = sh.decode(sh.encode(td), td.size());
  EXPECT_EQ(d.slice(96, 8).to_string(), "01100110");
}

// ------------------------------------------------------------------- MTC --

TEST(Mtc, RejectsBadGroup) {
  EXPECT_THROW(Mtc(3), std::invalid_argument);
  EXPECT_NO_THROW(Mtc(4));
}

TEST(Mtc, FirstRunPolarityPreserved) {
  const Mtc mtc(4);
  const TritVector ones = TritVector::from_string("111000");
  EXPECT_EQ(mtc.decode(mtc.encode(ones), 6).to_string(), "111000");
  const TritVector zeros = TritVector::from_string("000111");
  EXPECT_EQ(mtc.decode(mtc.encode(zeros), 6).to_string(), "000111");
}

TEST(Mtc, AllXBecomesZeros) {
  const Mtc mtc(4);
  const TritVector td(12, Trit::X);
  EXPECT_EQ(mtc.decode(mtc.encode(td), 12).to_string(), "000000000000");
}

TEST(Mtc, MinimumTransitionFill) {
  const Mtc mtc(4);
  EXPECT_EQ(mtc.encode(TritVector::from_string("1XX1000")),
            mtc.encode(TritVector::from_string("1111000")));
}

// ------------------------------------------------- cross-coder sweep -----

std::vector<std::unique_ptr<codec::Codec>> trained_coders(
    const TritVector& td) {
  std::vector<std::unique_ptr<codec::Codec>> coders;
  coders.push_back(std::make_unique<Golomb>(4));
  coders.push_back(std::make_unique<Fdr>());
  coders.push_back(std::make_unique<Efdr>());
  coders.push_back(std::make_unique<Mtc>(4));
  coders.push_back(std::make_unique<Vihc>(Vihc::trained(td, 8)));
  coders.push_back(
      std::make_unique<SelectiveHuffman>(SelectiveHuffman::trained(td, 8, 8)));
  return coders;
}

class BaselineSweep : public ::testing::TestWithParam<double> {};

TEST_P(BaselineSweep, AllCodersRoundTripRandomCubes) {
  const double x_density = GetParam();
  gen::CubeGenConfig cfg;
  cfg.patterns = 30;
  cfg.width = 211;  // prime width: exercises block-boundary padding
  cfg.x_fraction = x_density;
  cfg.seed = static_cast<std::uint64_t>(x_density * 100) + 7;
  const TritVector td = gen::generate_cubes(cfg).flatten();
  for (const auto& coder : trained_coders(td)) {
    const TritVector te = coder->encode(td);
    const TritVector d = coder->decode(te, td.size());
    ASSERT_EQ(d.size(), td.size()) << coder->name();
    EXPECT_TRUE(td.covered_by(d)) << coder->name();
    EXPECT_EQ(d.x_count(), 0u) << coder->name() << " must fill all X";
  }
}

TEST_P(BaselineSweep, HighXDataCompresses) {
  const double x_density = GetParam();
  if (x_density < 0.85) GTEST_SKIP() << "only meaningful for sparse data";
  gen::CubeGenConfig cfg;
  cfg.patterns = 40;
  cfg.width = 500;
  cfg.x_fraction = x_density;
  cfg.seed = 3;
  const TritVector td = gen::generate_cubes(cfg).flatten();
  for (const auto& coder : trained_coders(td))
    EXPECT_LT(coder->encode(td).size(), td.size()) << coder->name();
}

INSTANTIATE_TEST_SUITE_P(Densities, BaselineSweep,
                         ::testing::Values(0.0, 0.4, 0.7, 0.9, 0.97),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "X" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace nc::baselines
