// Pins the shared core::crc32 to the standard CRC-32 (IEEE 802.3) check
// vectors and proves the slice-by-8 fast path, the streaming form and the
// bit-at-a-time reference all agree on arbitrary data. The sharded
// container, frame protocol and fleet journal suites pin byte-compatibility
// of their formats separately; this suite pins the checksum itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/crc.h"

namespace nc::core {
namespace {

std::uint32_t reference_crc32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) ? (0xEDB88320u ^ (crc >> 1)) : (crc >> 1);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc_of(const std::string& s) {
  return crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

TEST(CrcTest, StandardCheckVectors) {
  // The canonical CRC-32 check value, quoted by every catalogue of the
  // IEEE 802.3 polynomial.
  EXPECT_EQ(crc_of("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc_of("abc"), 0x352441C2u);
  EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(CrcTest, SliceBy8MatchesBitwiseReferenceOnEveryLength) {
  // Cover every residue mod 8 (the slice-by-8 loop boundary) with data long
  // enough to exercise both the 8-byte fast path and the byte tail.
  std::mt19937_64 rng(20260807);
  for (std::size_t len = 0; len <= 70; ++len) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc32(data.data(), data.size()),
              reference_crc32(data.data(), data.size()))
        << "length " << len;
  }
}

TEST(CrcTest, StreamingMatchesOneShotAcrossChunkSplits) {
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t expected = crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); split += 13) {
    std::uint32_t state = crc32_init();
    state = crc32_update(state, data.data(), split);
    state = crc32_update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32_final(state), expected) << "split " << split;
  }
}

TEST(CrcTest, DetectsEverySingleBitFlipInShortRecord) {
  const std::string record = "segment-record-payload";
  const std::uint32_t good = crc_of(record);
  for (std::size_t bit = 0; bit < record.size() * 8; ++bit) {
    std::string mutated = record;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_NE(crc_of(mutated), good) << "bit " << bit;
  }
}

}  // namespace
}  // namespace nc::core
