#include "sim/lfsr.h"

#include <gtest/gtest.h>

#include <set>

namespace nc::sim {
namespace {

TEST(LfsrUnit, RejectsBadConfig) {
  EXPECT_THROW(Lfsr(1, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(65, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(4, 0), std::invalid_argument);
  EXPECT_THROW(Lfsr(4, 0b10000), std::invalid_argument);  // tap beyond width
  EXPECT_THROW(Lfsr(4, 0b0001), std::invalid_argument);   // top bit clear
  EXPECT_THROW(Lfsr(4, 0b1001, 0), std::invalid_argument);  // zero seed
  EXPECT_THROW(Lfsr(4, 0b1001, 16), std::invalid_argument);  // masks to zero
}

TEST(LfsrUnit, X4PrimitivePolynomialHasFullPeriod) {
  // x^4 + x + 1 is primitive: period 15.
  Lfsr lfsr(4, 0b1001, 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 15; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.state()).second) << "state repeated early";
    lfsr.step();
  }
  EXPECT_EQ(lfsr.state(), 1u);  // back to the seed after 15 steps
}

TEST(LfsrUnit, NeverReachesZeroState) {
  Lfsr lfsr = Lfsr::standard(8, 0xA5);
  for (int i = 0; i < 1000; ++i) {
    lfsr.step();
    EXPECT_NE(lfsr.state(), 0u);
  }
}

TEST(LfsrUnit, StandardWidthsConstruct) {
  for (unsigned w : {4u, 8u, 16u, 20u, 24u, 32u, 48u, 64u})
    EXPECT_NO_THROW(Lfsr::standard(w)) << w;
}

TEST(LfsrUnit, OutputBitIsLsb) {
  Lfsr lfsr(4, 0b1001, 0b0010);
  EXPECT_FALSE(lfsr.step());  // seed LSB was 0; state -> 0b0001
  EXPECT_TRUE(lfsr.step());   // LSB 1; Galois XOR fires
  EXPECT_EQ(lfsr.state(), 0b1001u);
}

TEST(LfsrUnit, DeterministicPerSeed) {
  Lfsr a = Lfsr::standard(16, 77);
  Lfsr b = Lfsr::standard(16, 77);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.step(), b.step());
}

TEST(LfsrPatterns, ShapeAndSpecified) {
  Lfsr lfsr = Lfsr::standard(16);
  const bits::TestSet ts = lfsr.generate_patterns(20, 33);
  EXPECT_EQ(ts.pattern_count(), 20u);
  EXPECT_EQ(ts.pattern_length(), 33u);
  EXPECT_EQ(ts.x_count(), 0u);
}

TEST(LfsrPatterns, RoughlyBalanced) {
  Lfsr lfsr = Lfsr::standard(24, 5);
  const bits::TestSet ts = lfsr.generate_patterns(50, 100);
  std::size_t ones = 0;
  for (std::size_t p = 0; p < ts.pattern_count(); ++p)
    for (std::size_t c = 0; c < ts.pattern_length(); ++c)
      ones += ts.at(p, c) == bits::Trit::One ? 1 : 0;
  const double frac = static_cast<double>(ones) / 5000.0;
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(LfsrPatterns, ConsecutivePatternsDiffer) {
  Lfsr lfsr = Lfsr::standard(16);
  const bits::TestSet ts = lfsr.generate_patterns(10, 64);
  for (std::size_t p = 1; p < ts.pattern_count(); ++p)
    EXPECT_FALSE(ts.pattern(p) == ts.pattern(p - 1));
}

}  // namespace
}  // namespace nc::sim
