// GF(2^8) Reed-Solomon codec contract (core/erasure.h): for every legal
// (k, m) geometry tried, ANY subset of at most m erased strips must decode
// back to the original bytes exactly. That is the whole point of the code,
// so the erasure matrix is walked exhaustively per geometry, not sampled.
//
// encode(data) returns the m parity strips; the full strip set in index
// order is data followed by parity, which is what decode() repairs.
#include "core/erasure.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace nc::core {
namespace {

std::vector<std::vector<std::uint8_t>> make_data(unsigned k,
                                                 std::size_t strip_len,
                                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::uint8_t>> data(k);
  for (auto& strip : data) {
    strip.resize(strip_len);
    for (auto& b : strip) b = static_cast<std::uint8_t>(rng());
  }
  return data;
}

/// data + parity in index order -- the layout decode() repairs.
std::vector<std::vector<std::uint8_t>> encode_all(
    const ErasureCodec& codec,
    const std::vector<std::vector<std::uint8_t>>& data) {
  std::vector<std::vector<std::uint8_t>> all = data;
  for (auto& parity : codec.encode(data)) all.push_back(std::move(parity));
  return all;
}

/// Every erasure subset of size <= m, via bitmask enumeration.
void check_all_erasure_patterns(unsigned k, unsigned m,
                                std::size_t strip_len) {
  const ErasureCodec codec(k, m);
  ASSERT_EQ(codec.total_strips(), k + m);
  const auto data = make_data(k, strip_len, k * 1000 + m);
  const auto encoded = encode_all(codec, data);
  ASSERT_EQ(encoded.size(), k + m);

  const unsigned n = k + m;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<unsigned>(__builtin_popcount(mask)) > m) continue;
    auto strips = encoded;
    std::vector<unsigned> erased;
    for (unsigned i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        strips[i].clear();
        erased.push_back(i);
      }
    }
    codec.decode(strips, erased);
    for (unsigned i = 0; i < n; ++i)
      ASSERT_EQ(strips[i], encoded[i])
          << "k=" << k << " m=" << m << " mask=" << mask << " strip " << i;
  }
}

TEST(ErasureCodecTest, EveryErasurePatternDecodesExactly) {
  check_all_erasure_patterns(1, 1, 17);
  check_all_erasure_patterns(2, 1, 64);
  check_all_erasure_patterns(3, 1, 33);
  check_all_erasure_patterns(3, 2, 33);
  check_all_erasure_patterns(4, 3, 10);
  check_all_erasure_patterns(5, 2, 7);
  check_all_erasure_patterns(8, 2, 5);
}

TEST(ErasureCodecTest, ZeroParityEncodesNothingAndDecodeIsANoOp) {
  const ErasureCodec codec(3, 0);
  const auto data = make_data(3, 20, 7);
  EXPECT_TRUE(codec.encode(data).empty());
  auto strips = data;
  codec.decode(strips, {});
  EXPECT_EQ(strips, data);
}

TEST(ErasureCodecTest, RejectsBadGeometryAndOverfullErasure) {
  EXPECT_THROW(ErasureCodec(0, 1), std::invalid_argument);
  EXPECT_THROW(ErasureCodec(200, 100), std::invalid_argument);

  const ErasureCodec codec(2, 1);
  auto strips = encode_all(codec, make_data(2, 8, 1));
  strips[0].clear();
  strips[2].clear();
  // Two erasures, one parity: must refuse, not fabricate bytes.
  EXPECT_THROW(codec.decode(strips, {0, 2}), std::invalid_argument);
  // Out-of-range and duplicate erased indices are caller bugs, not UB.
  auto one = encode_all(codec, make_data(2, 8, 1));
  EXPECT_THROW(codec.decode(one, {3}), std::invalid_argument);
  EXPECT_THROW(codec.decode(one, {1, 1}), std::invalid_argument);
}

TEST(ErasureCodecTest, RejectsMismatchedStripLengths) {
  const ErasureCodec codec(2, 1);
  auto data = make_data(2, 8, 3);
  data[1].resize(9);
  EXPECT_THROW(codec.encode(data), std::invalid_argument);
}

TEST(ErasureCodecTest, EmptyStripsRoundTrip) {
  const ErasureCodec codec(3, 2);
  auto strips = encode_all(codec, make_data(3, 0, 2));
  ASSERT_EQ(strips.size(), 5u);
  codec.decode(strips, {1, 4});
  for (const auto& s : strips) EXPECT_TRUE(s.empty());
}

TEST(ErasureCodecTest, ParityActuallyDependsOnEveryDataStrip) {
  const ErasureCodec codec(4, 2);
  auto data = make_data(4, 16, 11);
  const auto base = codec.encode(data);
  for (unsigned i = 0; i < 4; ++i) {
    auto tweaked = data;
    tweaked[i][5] ^= 0x01;
    const auto parity = codec.encode(tweaked);
    for (unsigned j = 0; j < 2; ++j)
      EXPECT_NE(parity[j], base[j])
          << "parity " << j << " blind to data strip " << i;
  }
}

}  // namespace
}  // namespace nc::core
