#include "sim/logic_sim.h"

#include <gtest/gtest.h>

#include <random>

#include "circuit/bench_io.h"
#include "circuit/generator.h"
#include "circuit/samples.h"

namespace nc::sim {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using circuit::Netlist;

// One gate of each type, inputs a and b.
Netlist gate_pair(const std::string& type) {
  return circuit::parse_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = " +
                                     type + "(a, b)\n");
}

Trit out_value(const Netlist& nl, const std::string& pattern) {
  const auto values = simulate_pattern(nl, TritVector::from_string(pattern));
  return values[nl.outputs()[0]];
}

struct TruthCase {
  const char* type;
  const char* pattern;  // two trits: a, b
  char expected;
};

class GateTruth : public ::testing::TestWithParam<TruthCase> {};

TEST_P(GateTruth, ThreeValuedSemantics) {
  const TruthCase& tc = GetParam();
  EXPECT_EQ(bits::to_char(out_value(gate_pair(tc.type), tc.pattern)),
            tc.expected)
      << tc.type << "(" << tc.pattern << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTruth,
    ::testing::Values(
        // AND: controlling 0 beats X.
        TruthCase{"AND", "00", '0'}, TruthCase{"AND", "11", '1'},
        TruthCase{"AND", "0X", '0'}, TruthCase{"AND", "X1", 'X'},
        TruthCase{"AND", "XX", 'X'},
        TruthCase{"NAND", "11", '0'}, TruthCase{"NAND", "0X", '1'},
        TruthCase{"NAND", "1X", 'X'},
        TruthCase{"OR", "00", '0'}, TruthCase{"OR", "1X", '1'},
        TruthCase{"OR", "0X", 'X'},
        TruthCase{"NOR", "00", '1'}, TruthCase{"NOR", "X1", '0'},
        TruthCase{"NOR", "X0", 'X'},
        TruthCase{"XOR", "01", '1'}, TruthCase{"XOR", "11", '0'},
        TruthCase{"XOR", "1X", 'X'}, TruthCase{"XOR", "X0", 'X'},
        TruthCase{"XNOR", "01", '0'}, TruthCase{"XNOR", "00", '1'},
        TruthCase{"XNOR", "X1", 'X'}));

TEST(LogicSim, NotAndBuf) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = BUF(a)\n");
  auto run = [&](const char* p) {
    const auto v = simulate_pattern(nl, TritVector::from_string(p));
    return std::string{bits::to_char(v[nl.find("y")]),
                       bits::to_char(v[nl.find("z")])};
  };
  EXPECT_EQ(run("0"), "10");
  EXPECT_EQ(run("1"), "01");
  EXPECT_EQ(run("X"), "XX");
}

TEST(LogicSim, C17KnownVector) {
  const Netlist nl = circuit::samples::c17();
  // All-ones: G10 = NAND(1,1)=0, G11 = 0, G16 = NAND(1,0)=1, G19 = 1,
  // G22 = NAND(0,1)=1, G23 = NAND(1,1)=0.
  const auto values = simulate_pattern(nl, TritVector::from_string("11111"));
  EXPECT_EQ(values[nl.find("G22")], Trit::One);
  EXPECT_EQ(values[nl.find("G23")], Trit::Zero);
}

TEST(LogicSim, ResponseLayoutIsPoThenPpo) {
  const Netlist nl = circuit::samples::s27();
  const auto values =
      simulate_pattern(nl, TritVector(nl.pattern_width(), Trit::Zero));
  const TritVector r = extract_response(nl, values);
  ASSERT_EQ(r.size(), nl.response_width());
  // First slot is the PO G17, remaining are the three next-state lines.
  EXPECT_EQ(r.get(0), values[nl.outputs()[0]]);
  for (std::size_t i = 0; i < nl.flops().size(); ++i) {
    const std::size_t ppo = nl.gate(nl.flops()[i]).fanins[0];
    EXPECT_EQ(r.get(1 + i), values[ppo]);
  }
}

TEST(LogicSim, S27AllZeroState) {
  const Netlist nl = circuit::samples::s27();
  // Pattern: G0..G3 = 0, G5..G7 = 0.
  const auto values =
      simulate_pattern(nl, TritVector::from_string("0000000"));
  // G14 = NOT(G0)=1; G8 = AND(G14,G6)=0; G12 = NOR(G1,G7)=1;
  // G15 = OR(G12,G8)=1; G16 = OR(G3,G8)=0; G9 = NAND(G16,G15)=1;
  // G11 = NOR(G5,G9)=0; G17 = NOT(G11)=1.
  EXPECT_EQ(values[nl.find("G17")], Trit::One);
  EXPECT_EQ(values[nl.find("G11")], Trit::Zero);
  EXPECT_EQ(values[nl.find("G9")], Trit::One);
}

TEST(ParallelSim, MatchesScalarOnRandomPatterns) {
  circuit::GeneratorConfig cfg;
  cfg.num_inputs = 10;
  cfg.num_flops = 6;
  cfg.num_gates = 200;
  cfg.seed = 3;
  const Netlist nl = circuit::generate_circuit(cfg);

  std::mt19937 rng(11);
  TestSet ts(100, nl.pattern_width());
  for (std::size_t p = 0; p < 100; ++p)
    for (std::size_t c = 0; c < nl.pattern_width(); ++c)
      ts.set(p, c, static_cast<Trit>(rng() % 3));

  ParallelSim psim(nl);
  for (std::size_t first = 0; first < ts.pattern_count(); first += 64) {
    const std::size_t loaded = psim.load(ts, first);
    psim.run();
    for (std::size_t slot = 0; slot < loaded; ++slot) {
      const auto scalar = simulate_pattern(nl, ts.pattern(first + slot));
      for (std::size_t n = 0; n < nl.size(); ++n) {
        const Val64& v = psim.value(n);
        Trit got = Trit::X;
        if ((v.one >> slot) & 1u) got = Trit::One;
        if ((v.zero >> slot) & 1u) got = Trit::Zero;
        ASSERT_EQ(got, scalar[n]) << "pattern " << first + slot << " node " << n;
      }
    }
  }
}

TEST(ParallelSim, LoadRejectsWrongWidth) {
  const Netlist nl = circuit::samples::c17();
  TestSet ts(1, 3);
  ParallelSim sim(nl);
  EXPECT_THROW(sim.load(ts, 0), std::invalid_argument);
}

TEST(ParallelSim, Val64Constants) {
  EXPECT_EQ(Val64::constant(true).one, ~0ull);
  EXPECT_EQ(Val64::constant(true).zero, 0ull);
  EXPECT_EQ(Val64::all_x(), (Val64{0, 0}));
  EXPECT_EQ(Val64::constant(false).inverted(), Val64::constant(true));
}

}  // namespace
}  // namespace nc::sim
