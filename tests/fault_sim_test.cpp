#include "sim/fault_sim.h"

#include <gtest/gtest.h>

#include "circuit/bench_io.h"
#include "circuit/samples.h"

namespace nc::sim {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using circuit::Netlist;

TEST(FaultSim, AndGateExhaustivePatternsDetectAll) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  const TestSet all = TestSet::from_strings({"00", "01", "10", "11"});
  FaultSimulator fsim(nl);
  const auto result = fsim.run(all, collapsed_fault_list(nl));
  EXPECT_DOUBLE_EQ(result.coverage_percent(), 100.0);
}

TEST(FaultSim, SinglePatternDetectsExpectedFaults) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  // Pattern 11 detects y s-a-0 (and the equivalent input s-a-0s) only.
  const TestSet t11 = TestSet::from_strings({"11"});
  const std::vector<Fault> faults = {
      Fault{nl.find("y"), Netlist::npos, 0, false},   // y s-a-0: detected
      Fault{nl.find("y"), Netlist::npos, 0, true},    // y s-a-1: not (good=1)
      Fault{nl.find("a"), Netlist::npos, 0, false},   // a s-a-0: detected
      Fault{nl.find("a"), Netlist::npos, 0, true},    // a s-a-1: not
  };
  FaultSimulator fsim(nl);
  const auto result = fsim.run(t11, faults);
  EXPECT_TRUE(result.detected[0]);
  EXPECT_FALSE(result.detected[1]);
  EXPECT_TRUE(result.detected[2]);
  EXPECT_FALSE(result.detected[3]);
  EXPECT_EQ(result.first_detecting_pattern[0], 0u);
  EXPECT_EQ(result.first_detecting_pattern[1], Netlist::npos);
}

TEST(FaultSim, XInPatternNeverCountsAsDetection) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  // With a=X the output is X in the good machine: no provable detection of
  // y s-a-0 even though b=1.
  const TestSet tx = TestSet::from_strings({"X1"});
  const std::vector<Fault> faults = {
      Fault{nl.find("y"), Netlist::npos, 0, false}};
  FaultSimulator fsim(nl);
  EXPECT_FALSE(fsim.run(tx, faults).detected[0]);
}

TEST(FaultSim, BranchFaultDistinctFromStem) {
  // G3 fans out to both NANDs of c17; a branch fault on G3->G10 must leave
  // the G11 path clean.
  const Netlist nl = circuit::samples::c17();
  const std::size_t g3 = nl.find("G3");
  const std::size_t g10 = nl.find("G10");
  // G10 = NAND(G1, G3). Branch G3->G10 pin 1 s-a-1 with pattern making the
  // stem 0: effect propagates through G10 only.
  const Fault branch{g3, g10, 1, true};
  const Fault stem{g3, Netlist::npos, 0, true};
  // Pattern: G1=1, G2=0, G3=0, G6=X, G7=X.
  // Good: G10 = NAND(1,0)=1, G11 = 1, G16 = NAND(0,1) = 1, G22 = NAND(1,1)=0.
  // Branch-faulty: G10 = NAND(1,1) = 0 -> G22 = 1: detected at G22, while
  // the G11 cone is untouched by the branch fault.
  const TestSet p = TestSet::from_strings({"100XX"});
  FaultSimulator fsim(nl);
  const auto rb = fsim.run(p, {branch});
  EXPECT_TRUE(rb.detected[0]);
  // Under the stem fault G11 also flips: NAND(1,1)=0, changing G16/G19 too;
  // the stem fault is still detected by this pattern (different cones).
  const auto rs = fsim.run(p, {stem});
  EXPECT_TRUE(rs.detected[0]);
}

TEST(FaultSim, DetectionThroughScanCapture) {
  // Fault visible only at a DFF data input (PPO), not at any PO.
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\n"
      "f = DFF(g)\n"
      "g = AND(a, b)\n"
      "z = BUF(b)\n");
  const Fault g_sa0{nl.find("g"), Netlist::npos, 0, false};
  const TestSet p = TestSet::from_strings({"111"});  // a=1 b=1 f=1
  FaultSimulator fsim(nl);
  EXPECT_TRUE(fsim.run(p, {g_sa0}).detected[0]);
}

TEST(FaultSim, S27FullCoverageWithExhaustivePatterns) {
  const Netlist nl = circuit::samples::s27();
  // All 128 fully specified 7-bit patterns.
  std::vector<std::string> rows;
  for (int v = 0; v < 128; ++v) {
    std::string r(7, '0');
    for (int b = 0; b < 7; ++b)
      if ((v >> b) & 1) r[static_cast<std::size_t>(b)] = '1';
    rows.push_back(r);
  }
  FaultSimulator fsim(nl);
  const auto result =
      fsim.run(TestSet::from_strings(rows), collapsed_fault_list(nl));
  // s27's combinational core is fully testable under full scan.
  EXPECT_DOUBLE_EQ(result.coverage_percent(), 100.0);
}

TEST(FaultSim, DropDetectedClearsAliveBits) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  const auto faults = collapsed_fault_list(nl);
  std::vector<bool> alive(faults.size(), true);
  FaultSimulator fsim(nl);
  const std::size_t dropped =
      fsim.drop_detected(TritVector::from_string("11"), faults, alive);
  EXPECT_GT(dropped, 0u);
  std::size_t still = 0;
  for (bool a : alive) still += a ? 1 : 0;
  EXPECT_EQ(still + dropped, faults.size());
}

TEST(FaultSimResult, CoverageMath) {
  FaultSimResult r;
  r.detected = {true, false, true, true};
  EXPECT_EQ(r.detected_count(), 3u);
  EXPECT_DOUBLE_EQ(r.coverage_percent(), 75.0);
}

TEST(FaultSim, MoreThan64PatternsCrossGroupBoundary) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  // 70 useless patterns then the detecting one.
  std::vector<std::string> rows(70, "00");
  rows.push_back("11");
  const std::vector<Fault> faults = {
      Fault{nl.find("y"), Netlist::npos, 0, false}};
  FaultSimulator fsim(nl);
  const auto result = fsim.run(TestSet::from_strings(rows), faults);
  EXPECT_TRUE(result.detected[0]);
  EXPECT_EQ(result.first_detecting_pattern[0], 70u);
}

}  // namespace
}  // namespace nc::sim
