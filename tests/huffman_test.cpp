#include "bits/huffman.h"

#include <gtest/gtest.h>

#include <random>

namespace nc::bits {
namespace {

TEST(Huffman, TwoSymbolsGetOneBitEach) {
  const HuffmanCode hc = HuffmanCode::build({10, 3});
  EXPECT_EQ(hc.length(0), 1u);
  EXPECT_EQ(hc.length(1), 1u);
  EXPECT_NE(hc.code(0), hc.code(1));
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  const HuffmanCode hc = HuffmanCode::build({0, 5, 0});
  EXPECT_FALSE(hc.has_code(0));
  EXPECT_TRUE(hc.has_code(1));
  EXPECT_EQ(hc.length(1), 1u);
}

TEST(Huffman, EmptyAlphabet) {
  const HuffmanCode hc = HuffmanCode::build({0, 0});
  EXPECT_FALSE(hc.has_code(0));
  EXPECT_FALSE(hc.has_code(1));
}

TEST(Huffman, SkewedFrequenciesGiveShorterCodesToFrequentSymbols) {
  const HuffmanCode hc = HuffmanCode::build({100, 50, 20, 5, 1});
  EXPECT_LE(hc.length(0), hc.length(1));
  EXPECT_LE(hc.length(1), hc.length(2));
  EXPECT_LE(hc.length(2), hc.length(3));
  EXPECT_LE(hc.length(3), hc.length(4));
}

TEST(Huffman, KraftEqualityHolds) {
  const HuffmanCode hc = HuffmanCode::build({7, 7, 7, 7, 1, 1, 3});
  double kraft = 0;
  for (std::size_t s = 0; s < hc.symbol_count(); ++s)
    if (hc.has_code(s)) kraft += std::pow(2.0, -double(hc.length(s)));
  EXPECT_DOUBLE_EQ(kraft, 1.0);
}

TEST(Huffman, OptimalForKnownDistribution) {
  // Frequencies 8,4,2,1,1: optimal lengths 1,2,3,4,4 -> 8+8+6+4+4 = 30 bits.
  const HuffmanCode hc = HuffmanCode::build({8, 4, 2, 1, 1});
  EXPECT_EQ(hc.coded_bits({8, 4, 2, 1, 1}), 30u);
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::mt19937 rng(5);
  const std::vector<std::size_t> freq = {50, 30, 10, 7, 2, 1};
  const HuffmanCode hc = HuffmanCode::build(freq);
  std::vector<std::size_t> message;
  for (int i = 0; i < 500; ++i) message.push_back(rng() % freq.size());
  bits::BitWriter w;
  for (std::size_t s : message) hc.encode(w, s);
  const bits::TritVector stream = w.take();
  bits::TritReader r(stream);
  for (std::size_t s : message) EXPECT_EQ(hc.decode(r), s);
  EXPECT_TRUE(r.done());
}

TEST(Huffman, EncodingUnknownSymbolThrows) {
  const HuffmanCode hc = HuffmanCode::build({5, 0});
  bits::BitWriter w;
  EXPECT_THROW(hc.encode(w, 1), std::invalid_argument);
  EXPECT_THROW(hc.encode(w, 9), std::invalid_argument);
}

TEST(Huffman, PrefixFreedom) {
  const HuffmanCode hc = HuffmanCode::build({13, 8, 5, 3, 2, 1, 1, 1});
  for (std::size_t a = 0; a < hc.symbol_count(); ++a) {
    for (std::size_t b = 0; b < hc.symbol_count(); ++b) {
      if (a == b || !hc.has_code(a) || !hc.has_code(b)) continue;
      if (hc.length(a) > hc.length(b)) continue;
      EXPECT_NE(hc.code(b) >> (hc.length(b) - hc.length(a)), hc.code(a))
          << a << " prefixes " << b;
    }
  }
}

TEST(Huffman, CanonicalCodesAreDeterministic) {
  const HuffmanCode a = HuffmanCode::build({4, 4, 2, 2});
  const HuffmanCode b = HuffmanCode::build({4, 4, 2, 2});
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.length(s), b.length(s));
    EXPECT_EQ(a.code(s), b.code(s));
  }
}

}  // namespace
}  // namespace nc::bits
