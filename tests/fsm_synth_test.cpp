#include "synth/fsm_synth.h"

#include <gtest/gtest.h>

#include "decomp/decoder_fsm.h"

namespace nc::synth {
namespace {

TEST(FsmSynth, ProducesAllOutputFunctions) {
  const FsmSynthesisResult r = synthesize_decoder_fsm();
  EXPECT_EQ(r.outputs.size(), 10u);  // 4 next-state + latch + 4 plan + ack
  EXPECT_EQ(r.state_flops, 4u);
}

TEST(FsmSynth, CoversMatchTheFsmExactly) {
  const FsmSynthesisResult r = synthesize_decoder_fsm();
  // Replay every reachable (state, data, done) input and compare the cover
  // output against fsm_step -- the synthesized logic must be the FSM.
  for (unsigned in = 0; in < 64; ++in) {
    const unsigned state_code = in & 0xF;
    if (state_code >= decomp::kFsmStateCount) continue;
    const bool data_bit = (in >> 4) & 1u;
    const bool done = (in >> 5) & 1u;
    const decomp::FsmStep step = decomp::fsm_step(
        static_cast<decomp::FsmState>(state_code), data_bit, done);
    auto covered = [&](const std::vector<Cube>& cover) {
      for (const Cube& c : cover)
        if (c.covers(in)) return true;
      return false;
    };
    const unsigned next = static_cast<unsigned>(step.next);
    for (unsigned b = 0; b < 4; ++b)
      EXPECT_EQ(covered(r.outputs[b].cover), ((next >> b) & 1u) != 0)
          << "state " << state_code << " bit " << b;
    EXPECT_EQ(covered(r.outputs[4].cover), step.recognized);
    if (step.recognized) {
      const unsigned pa = static_cast<unsigned>(step.plan_a);
      const unsigned pb = static_cast<unsigned>(step.plan_b);
      EXPECT_EQ(covered(r.outputs[5].cover), (pa & 1u) != 0);
      EXPECT_EQ(covered(r.outputs[6].cover), (pa & 2u) != 0);
      EXPECT_EQ(covered(r.outputs[7].cover), (pb & 1u) != 0);
      EXPECT_EQ(covered(r.outputs[8].cover), (pb & 2u) != 0);
    }
    EXPECT_EQ(covered(r.outputs[9].cover), step.ack);
  }
}

TEST(FsmSynth, ControllerIsTiny) {
  // Paper: the FSM synthesizes to a small, K-independent block. Two-level
  // gate-equivalent count lands well under 200.
  const FsmSynthesisResult r = synthesize_decoder_fsm();
  EXPECT_GT(r.combinational_gates(), 10u);
  EXPECT_LT(r.combinational_gates(), 200u);
  EXPECT_LT(r.total_gate_equivalents(), 250u);
}

TEST(FsmSynth, FsmCostIndependentOfK) {
  // decoder_gate_estimate grows with K only through counter + shifter.
  const std::size_t d8 = decoder_gate_estimate(8);
  const std::size_t d32 = decoder_gate_estimate(32);
  const std::size_t fsm = synthesize_decoder_fsm().total_gate_equivalents();
  EXPECT_GT(d32, d8);
  // Subtracting the K-dependent parts leaves the same FSM cost.
  EXPECT_EQ(d8 - (4 * 6 + 2 * 8 + 2 + 3), fsm);
}

TEST(FsmSynth, DecoderEstimateMonotonicInK) {
  std::size_t prev = 0;
  for (std::size_t k : {4u, 8u, 16u, 32u, 48u}) {
    const std::size_t est = decoder_gate_estimate(k);
    EXPECT_GT(est, prev);
    prev = est;
  }
}

}  // namespace
}  // namespace nc::synth
