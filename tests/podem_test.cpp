#include "atpg/podem.h"

#include <gtest/gtest.h>

#include "circuit/bench_io.h"
#include "circuit/samples.h"
#include "sim/fault_sim.h"

namespace nc::atpg {
namespace {

using bits::TestSet;
using bits::Trit;
using circuit::Netlist;
using sim::Fault;

// Checks via fault simulation that `cube` really detects `fault`.
bool detects(const Netlist& nl, const Fault& fault,
             const bits::TritVector& cube) {
  TestSet ts(1, cube.size());
  ts.set_pattern(0, cube);
  sim::FaultSimulator fsim(nl);
  return fsim.run(ts, {fault}).detected[0];
}

TEST(Podem, AndGateStuckAt0) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  Podem podem(nl);
  const Fault f{nl.find("y"), Netlist::npos, 0, false};
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.outcome, PodemOutcome::kTestFound);
  EXPECT_EQ(r.cube.to_string(), "11");
  EXPECT_TRUE(detects(nl, f, r.cube));
}

TEST(Podem, AndGateStuckAt1LeavesDontCare)
{
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  Podem podem(nl);
  const Fault f{nl.find("y"), Netlist::npos, 0, true};
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.outcome, PodemOutcome::kTestFound);
  // One 0 input suffices; the other should stay X.
  EXPECT_EQ(r.cube.x_count(), 1u);
  EXPECT_TRUE(detects(nl, f, r.cube));
}

TEST(Podem, PropagatesThroughChain) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
      "g1 = AND(a, b)\n"
      "g2 = OR(g1, c)\n"
      "y = NOT(g2)\n");
  Podem podem(nl);
  // g1 s-a-1: need a&b != 1 to activate, c=0 to propagate through the OR.
  const Fault f{nl.find("g1"), Netlist::npos, 0, true};
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.outcome, PodemOutcome::kTestFound);
  EXPECT_TRUE(detects(nl, f, r.cube));
  EXPECT_EQ(r.cube.get(2), Trit::Zero);  // c must be 0
}

TEST(Podem, DetectsUntestableRedundantFault) {
  // y = OR(a, NOT(a)) is constant 1: y s-a-1 is undetectable.
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n");
  Podem podem(nl);
  const Fault f{nl.find("y"), Netlist::npos, 0, true};
  EXPECT_EQ(podem.generate(f).outcome, PodemOutcome::kUntestable);
}

TEST(Podem, ConstantZeroSiteUntestableStuckAt0) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\nz = AND(a, n)\ny = OR(z, a)\n");
  Podem podem(nl);
  // z is constant 0 -> z s-a-0 is untestable.
  const Fault f{nl.find("z"), Netlist::npos, 0, false};
  EXPECT_EQ(podem.generate(f).outcome, PodemOutcome::kUntestable);
}

TEST(Podem, BranchFaultTest) {
  const Netlist nl = circuit::samples::c17();
  // Branch G3 -> G10 (pin 1) s-a-1.
  const Fault f{nl.find("G3"), nl.find("G10"), 1, true};
  Podem podem(nl);
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.outcome, PodemOutcome::kTestFound);
  EXPECT_TRUE(detects(nl, f, r.cube));
}

TEST(Podem, EveryCollapsedC17FaultGetsVerifiedTest) {
  const Netlist nl = circuit::samples::c17();
  Podem podem(nl);
  for (const Fault& f : sim::collapsed_fault_list(nl)) {
    const PodemResult r = podem.generate(f);
    ASSERT_EQ(r.outcome, PodemOutcome::kTestFound) << f.to_string(nl);
    EXPECT_TRUE(detects(nl, f, r.cube)) << f.to_string(nl);
  }
}

TEST(Podem, EveryCollapsedS27FaultGetsVerifiedTest) {
  const Netlist nl = circuit::samples::s27();
  Podem podem(nl);
  for (const Fault& f : sim::collapsed_fault_list(nl)) {
    const PodemResult r = podem.generate(f);
    ASSERT_EQ(r.outcome, PodemOutcome::kTestFound) << f.to_string(nl);
    EXPECT_TRUE(detects(nl, f, r.cube)) << f.to_string(nl);
  }
}

TEST(Podem, CubesContainDontCares) {
  // Wide OR: detecting out s-a-0 needs one 1; the rest stay X.
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
      "y = OR(a, b, c, d)\n");
  Podem podem(nl);
  const PodemResult r =
      podem.generate(Fault{nl.find("y"), Netlist::npos, 0, false});
  ASSERT_EQ(r.outcome, PodemOutcome::kTestFound);
  EXPECT_GE(r.cube.x_count(), 3u);
}

TEST(Podem, FaultOnPrimaryInput) {
  const Netlist nl = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
  Podem podem(nl);
  const Fault f{nl.find("a"), Netlist::npos, 0, false};
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.outcome, PodemOutcome::kTestFound);
  EXPECT_TRUE(detects(nl, f, r.cube));
  // XOR propagation requires b specified.
  EXPECT_TRUE(bits::is_care(r.cube.get(1)));
}

}  // namespace
}  // namespace nc::atpg
