#include "decomp/ate_session.h"

#include <gtest/gtest.h>

#include "atpg/atpg.h"
#include "circuit/samples.h"
#include "codec/nine_coded.h"
#include "decomp/single_scan.h"
#include "sim/fault_sim.h"

namespace nc::decomp {
namespace {

using bits::TestSet;
using circuit::Netlist;

struct Fixture {
  Netlist netlist = circuit::samples::s27();
  std::vector<sim::Fault> faults = sim::collapsed_fault_list(netlist);
  TestSet tests;

  Fixture() {
    atpg::AtpgConfig cfg;
    tests = atpg::generate_tests(netlist, faults, cfg).tests;
  }
};

TEST(AteSession, FaultFreeDevicePasses) {
  Fixture fx;
  const SessionResult r = run_test_session(fx.netlist, fx.tests, {});
  EXPECT_TRUE(r.device_passes());
  EXPECT_EQ(r.patterns_applied, fx.tests.pattern_count());
  EXPECT_EQ(r.failing_patterns, 0u);
  EXPECT_EQ(r.pattern_failed.size(), fx.tests.pattern_count());
}

TEST(AteSession, EveryCoveredFaultFailsTheSession) {
  Fixture fx;
  sim::FaultSimulator fsim(fx.netlist);
  const auto cover = fsim.run(fx.tests, fx.faults);
  for (std::size_t f = 0; f < fx.faults.size(); ++f) {
    if (!cover.detected[f]) continue;
    const SessionResult r =
        run_test_session(fx.netlist, fx.tests, {}, fx.faults[f]);
    EXPECT_FALSE(r.device_passes()) << fx.faults[f].to_string(fx.netlist);
  }
}

TEST(AteSession, FailingPatternMatchesFaultSim) {
  Fixture fx;
  sim::FaultSimulator fsim(fx.netlist);
  // The device sees the *decoded* patterns (the decoder fills matched-half
  // X bits), so compare against fault simulation of exactly those.
  const codec::NineCoded coder(8);
  const bits::TritVector td = fx.tests.flatten();
  const TestSet applied =
      TestSet::unflatten(coder.decode(coder.encode(td), td.size()),
                         fx.tests.pattern_count(), fx.tests.pattern_length());
  const auto cover = fsim.run(applied, fx.faults);
  // For each detected fault, the first failing pattern in the session is
  // the first detecting pattern the fault simulator reports.
  for (std::size_t f = 0; f < fx.faults.size(); ++f) {
    if (!cover.detected[f]) continue;
    const SessionResult r =
        run_test_session(fx.netlist, fx.tests, {}, fx.faults[f]);
    std::size_t first = r.pattern_failed.size();
    for (std::size_t p = 0; p < r.pattern_failed.size(); ++p)
      if (r.pattern_failed[p]) {
        first = p;
        break;
      }
    EXPECT_EQ(first, cover.first_detecting_pattern[f])
        << fx.faults[f].to_string(fx.netlist);
  }
}

TEST(AteSession, CycleAccountingIsDecoderPlusCaptures) {
  Fixture fx;
  const SessionConfig cfg{.block_size = 8, .p = 4};
  const SessionResult r = run_test_session(fx.netlist, fx.tests, cfg);

  const codec::NineCoded coder(cfg.block_size);
  const bits::TritVector td = fx.tests.flatten();
  const bits::TritVector te = coder.encode(td);
  const SingleScanDecoder decoder(cfg.block_size, cfg.p);
  const DecoderTrace trace = decoder.run(te, td.size());
  EXPECT_EQ(r.soc_cycles, trace.soc_cycles + fx.tests.pattern_count());
  EXPECT_EQ(r.ate_bits, te.size());
}

TEST(AteSession, EmptyTestSetTriviallyPasses) {
  Fixture fx;
  const SessionResult r = run_test_session(fx.netlist, TestSet{}, {});
  EXPECT_TRUE(r.device_passes());
  EXPECT_EQ(r.patterns_applied, 0u);
  EXPECT_EQ(r.soc_cycles, 0u);
}

TEST(AteSession, UndetectedFaultSlipsThrough) {
  // Test escapes are real: a fault the pattern set does not cover must
  // leave the session passing -- that is what coverage numbers mean.
  Fixture fx;
  sim::FaultSimulator fsim(fx.netlist);
  // Use a single weak pattern so some faults stay undetected.
  const TestSet weak = TestSet::from_strings({"0000000"});
  const auto cover = fsim.run(weak, fx.faults);
  bool found_escape = false;
  for (std::size_t f = 0; f < fx.faults.size() && !found_escape; ++f) {
    if (cover.detected[f]) continue;
    const SessionResult r =
        run_test_session(fx.netlist, weak, {}, fx.faults[f]);
    EXPECT_TRUE(r.device_passes());
    found_escape = true;
  }
  EXPECT_TRUE(found_escape);
}

}  // namespace
}  // namespace nc::decomp
