// ChaosStream semantics (spec parsing, per-action behavior, determinism,
// virtual-clock stalls) and the chaos soak: a full loadgen run through a
// schedule of resets, stalls, dribbles and latency must converge to every
// request resolved with zero lost, corrupted or duplicated replies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/clock.h"
#include "serve/chaos.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace nc::serve {
namespace {

using std::chrono::milliseconds;

TEST(ChaosSpecTest, ParsesFullGrammar) {
  const auto rules = parse_chaos_spec(
      "write:dribble@4x64,read:stall=40@9,any:reset@199,read:partial=3,"
      "write:latency=25@0x*");
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].op, ChaosRule::Op::kWrite);
  EXPECT_EQ(rules[0].action, ChaosRule::Action::kDribble);
  EXPECT_EQ(rules[0].skip, 4u);
  EXPECT_EQ(rules[0].count, 64u);
  EXPECT_EQ(rules[1].op, ChaosRule::Op::kRead);
  EXPECT_EQ(rules[1].action, ChaosRule::Action::kStall);
  EXPECT_EQ(rules[1].latency, milliseconds(40));
  EXPECT_EQ(rules[1].skip, 9u);
  EXPECT_EQ(rules[1].count, 1u);
  EXPECT_EQ(rules[2].op, ChaosRule::Op::kAny);
  EXPECT_EQ(rules[2].action, ChaosRule::Action::kReset);
  EXPECT_EQ(rules[3].action, ChaosRule::Action::kPartial);
  EXPECT_EQ(rules[3].limit, 3u);
  EXPECT_EQ(rules[4].action, ChaosRule::Action::kLatency);
  EXPECT_EQ(rules[4].count, ChaosRule::kForever);
}

TEST(ChaosSpecTest, RejectsMalformedRules) {
  EXPECT_THROW(parse_chaos_spec("sideways:reset"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec("read:explode"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec("read:stall=abc"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec("read"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec("read:stall@"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec(""), std::invalid_argument);
}

TEST(ChaosStreamTest, DribbleDeliversOneBytePerOp) {
  auto [a, b] = make_pipe();
  const std::uint8_t msg[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  a->write_all(msg, 8);
  ChaosStream chaotic(std::move(b), parse_chaos_spec("read:dribble@0x*"), 1);
  std::uint8_t buf[8] = {};
  std::size_t got = 0;
  while (got < 8) {
    const auto n = chaotic.read_some(buf + got, 8 - got, milliseconds(500));
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 1u) << "dribble must cap each read at one byte";
    got += *n;
  }
  EXPECT_EQ(std::memcmp(buf, msg, 8), 0);
  EXPECT_EQ(chaotic.counters().dribbles, 8u);
}

TEST(ChaosStreamTest, PartialCapsWritesButLosesNothing) {
  auto [a, b] = make_pipe();
  ChaosStream chaotic(std::move(a), parse_chaos_spec("write:partial=3@0x*"),
                      1);
  const std::uint8_t msg[10] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  chaotic.write_all(msg, 10);  // internally many <=3-byte chunks
  std::uint8_t buf[10] = {};
  std::size_t got = 0;
  while (got < 10) {
    const auto n = b->read_some(buf + got, 10 - got, milliseconds(500));
    ASSERT_TRUE(n.has_value());
    got += *n;
  }
  EXPECT_EQ(std::memcmp(buf, msg, 10), 0);
  EXPECT_GE(chaotic.counters().partials, 4u);  // ceil(10/3) claims
}

TEST(ChaosStreamTest, ResetClosesAndThrows) {
  auto [a, b] = make_pipe();
  ChaosStream chaotic(std::move(a), parse_chaos_spec("write:reset@1"), 1);
  const std::uint8_t byte = 42;
  chaotic.write_all(&byte, 1);  // skip phase: passes clean
  EXPECT_THROW(chaotic.write_all(&byte, 1), std::runtime_error);
  EXPECT_EQ(chaotic.counters().resets, 1u);
  // The peer observes a closed connection, exactly like a real reset.
  std::uint8_t buf[4];
  const auto n = b->read_some(buf, 1, milliseconds(200));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  const auto eof = b->read_some(buf, 1, milliseconds(200));
  ASSERT_TRUE(eof.has_value());
  EXPECT_EQ(*eof, 0u) << "closed and drained must read as EOF";
}

TEST(ChaosStreamTest, VirtualClockStallCostsNoWallTime) {
  core::VirtualClock clock;
  auto [a, b] = make_pipe();
  ChaosStream chaotic(std::move(b), parse_chaos_spec("read:stall=2000@0x*"),
                      1, &clock);
  const auto t0 = std::chrono::steady_clock::now();
  const auto before = clock.now();
  std::uint8_t buf[4];
  const auto n = chaotic.read_some(buf, 4, milliseconds(5000));
  const auto wall = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(n.has_value()) << "a stall must deliver nothing";
  EXPECT_GE(clock.now() - before, milliseconds(500))
      << "the stall must consume virtual time";
  EXPECT_LT(wall, milliseconds(1000))
      << "a virtual 2 s stall must not cost 2 s of wall time";
  EXPECT_EQ(chaotic.counters().stalls, 1u);
  a->close();
}

TEST(ChaosStreamTest, SameSeedSameScheduleIsDeterministic) {
  // Two streams with identical (rules, seed) must make identical latency
  // draws: total virtual time consumed matches exactly.
  const auto rules = parse_chaos_spec("read:latency=30@0x*");
  std::chrono::nanoseconds spent[2];
  for (int run = 0; run < 2; ++run) {
    core::VirtualClock clock;
    auto [a, b] = make_pipe();
    const std::uint8_t msg[16] = {};
    a->write_all(msg, 16);
    a->close();
    ChaosStream chaotic(std::move(b), rules, /*seed=*/77, &clock);
    const auto before = clock.now();
    std::uint8_t buf[4];
    std::size_t got = 0;
    while (got < 16) {
      const auto n = chaotic.read_some(buf, 4, milliseconds(500));
      if (n.has_value()) got += *n;
    }
    spent[run] = clock.now() - before;
  }
  EXPECT_EQ(spent[0], spent[1]);
  EXPECT_GT(spent[0], std::chrono::nanoseconds(0));
}

TEST(ChaosStreamTest, MakeChaosPipeWrapsBothDirections) {
  auto [client, server] = make_chaos_pipe(parse_chaos_spec("write:dribble@0x*"),
                                          {}, /*seed=*/3);
  const std::uint8_t msg[4] = {1, 2, 3, 4};
  client->write_all(msg, 4);
  std::uint8_t buf[4] = {};
  std::size_t got = 0;
  while (got < 4) {
    const auto n = server->read_some(buf + got, 4 - got, milliseconds(500));
    ASSERT_TRUE(n.has_value());
    got += *n;
  }
  EXPECT_EQ(std::memcmp(buf, msg, 4), 0);
}

// The acceptance gate for the whole PR: a loadgen run through a chaos
// schedule of periodic resets, read stalls, write dribbles and latency must
// end with every request resolved and zero lost / corrupted / duplicated
// replies -- the retry client's reconnect + backoff + (enabled) hedging
// absorbing everything the transport throws at it.
TEST(ChaosSoakTest, LoadgenThroughChaosTransportStaysClean) {
  ServerConfig server_config;
  server_config.worker_threads = 2;
  Server server(server_config);

  LoadgenConfig config;
  config.clients = 4;
  config.requests_per_client = 30;
  config.pipeline = 4;
  config.distinct = 3;
  config.patterns = 8;
  config.width = 32;
  config.seed = 9;
  config.max_retransmits = 30;
  config.retransmit_timeout = milliseconds(50);
  config.request_deadline_ms = 5000;
  config.hedge_after = milliseconds(400);
  config.deadline = milliseconds(120000);

  const auto rules = parse_chaos_spec(
      "any:reset@50,write:dribble@10x30,read:stall=20@15x3,"
      "write:latency=2@5x40");
  std::atomic<std::uint64_t> connection_no{0};
  const LoadgenStats stats =
      run_loadgen(config, [&server, &rules, &connection_no] {
        auto [client_end, server_end] = make_pipe();
        server.serve(std::move(server_end));
        return std::make_unique<ChaosStream>(
            std::move(client_end), rules,
            /*seed=*/1000 + connection_no.fetch_add(1));
      });
  server.stop();

  EXPECT_EQ(stats.requests, config.clients * config.requests_per_client);
  EXPECT_EQ(stats.byte_mismatches, 0u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.unresolved, 0u);
  EXPECT_TRUE(stats.clean());
  // The schedule actually bit: reset-driven reconnects happened and the
  // client recovered through retransmits.
  EXPECT_GT(stats.reconnects, 0u);
  EXPECT_GT(stats.retransmits, 0u);
}

}  // namespace
}  // namespace nc::serve
