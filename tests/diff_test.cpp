#include "codec/diff.h"

#include <gtest/gtest.h>

#include <random>

#include "gen/cube_gen.h"
#include "power/fill.h"

namespace nc::codec {
namespace {

using bits::TestSet;

TEST(Diff, FirstPatternUnchanged) {
  const TestSet td = TestSet::from_strings({"0110", "0111"});
  const TestSet d = difference_transform(td);
  EXPECT_EQ(d.pattern(0).to_string(), "0110");
  EXPECT_EQ(d.pattern(1).to_string(), "0001");
}

TEST(Diff, IdenticalPatternsDiffToZero) {
  const TestSet td = TestSet::from_strings({"1010", "1010", "1010"});
  const TestSet d = difference_transform(td);
  EXPECT_EQ(d.pattern(1).to_string(), "0000");
  EXPECT_EQ(d.pattern(2).to_string(), "0000");
}

TEST(Diff, InverseIsExact) {
  gen::CubeGenConfig cfg;
  cfg.patterns = 40;
  cfg.width = 120;
  cfg.x_fraction = 0.8;
  cfg.seed = 31;
  const TestSet filled = power::fill(gen::generate_cubes(cfg),
                                     power::FillStrategy::kMinTransition);
  EXPECT_EQ(inverse_difference_transform(difference_transform(filled)),
            filled);
}

TEST(Diff, RejectsX) {
  const TestSet td = TestSet::from_strings({"01X0"});
  EXPECT_THROW(difference_transform(td), std::invalid_argument);
  EXPECT_THROW(inverse_difference_transform(td), std::invalid_argument);
}

TEST(Diff, CorrelatedPatternsGetSparser) {
  // When consecutive patterns differ in only a few bits (the regime the
  // difference coders exploit), the diff stream is almost all zeros.
  std::mt19937 rng(8);
  const std::size_t width = 300;
  TestSet td(40, width);
  bits::TritVector row(width, bits::Trit::Zero);
  for (std::size_t c = 0; c < width; ++c)
    row.set(c, bits::trit_from_bit(rng() & 1u));
  for (std::size_t p = 0; p < td.pattern_count(); ++p) {
    for (int flips = 0; flips < 10; ++flips) {
      const std::size_t c = rng() % width;
      row.set(c, row.get(c) == bits::Trit::One ? bits::Trit::Zero
                                               : bits::Trit::One);
    }
    td.set_pattern(p, row);
  }
  const TestSet diff = difference_transform(td);
  std::size_t orig = 0, diffed = 0;
  for (std::size_t p = 1; p < td.pattern_count(); ++p)
    for (std::size_t c = 0; c < width; ++c) {
      orig += td.at(p, c) == bits::Trit::One ? 1 : 0;
      diffed += diff.at(p, c) == bits::Trit::One ? 1 : 0;
    }
  EXPECT_LT(diffed * 5, orig);  // <= 10 ones per diffed row vs ~150
}

TEST(Diff, EmptySetPassesThrough) {
  const TestSet empty;
  EXPECT_EQ(difference_transform(empty), empty);
}

}  // namespace
}  // namespace nc::codec
