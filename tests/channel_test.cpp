// The fault-injected ATE channel, the error-detecting decode path, and the
// session retry/resync protocol.
//
// The central invariant (the detection trichotomy): for every corrupted
// transmission, exactly one of
//   (a) the decode path raises a typed DecodeError,
//   (b) the decoded pattern contradicts a specified stimulus bit -- the
//       response compare catches it on the tester,
//   (c) every corrupted symbol landed on a leftover-X fill: the decoded
//       pattern still covers the cube, and the corruption is harmless.
// A corruption that hit a specified bit must never survive as (c).
#include <gtest/gtest.h>

#include <random>

#include "atpg/atpg.h"
#include "circuit/samples.h"
#include "codec/decode_error.h"
#include "codec/nine_coded.h"
#include "decomp/ate_session.h"
#include "decomp/channel.h"
#include "decomp/single_scan.h"
#include "gen/cube_gen.h"
#include "sim/fault_sim.h"

namespace nc::decomp {
namespace {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;
using codec::DecodeError;
using codec::DecodeFault;
using codec::NineCoded;

// ---------------------------------------------------------------- injector

TEST(ChannelModel, CleanConfigIsIdentity) {
  ChannelModel ch{ChannelConfig{}};
  const TritVector te = TritVector::from_string("01X10X");
  EXPECT_EQ(ch.transmit(te), te);
  EXPECT_FALSE(ch.last_corrupted());
  EXPECT_EQ(ch.stats().corrupted_transmissions, 0u);
  EXPECT_EQ(ch.stats().transmissions, 1u);
}

TEST(ChannelModel, DeterministicForSeed) {
  ChannelConfig cfg;
  cfg.flip_rate = 0.05;
  cfg.burst_rate = 0.01;
  cfg.seed = 99;
  const TritVector te(4000, Trit::Zero);
  ChannelModel a(cfg);
  ChannelModel b(cfg);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.transmit(te), b.transmit(te));
  EXPECT_EQ(a.stats().flipped_symbols, b.stats().flipped_symbols);
  EXPECT_GT(a.stats().flipped_symbols, 0u);
}

TEST(ChannelModel, FlipRateLandsNearExpectation) {
  ChannelConfig cfg;
  cfg.flip_rate = 1e-2;
  cfg.seed = 3;
  ChannelModel ch(cfg);
  const std::size_t n = 200000;
  ch.transmit(TritVector(n, Trit::Zero));
  const double observed =
      static_cast<double>(ch.stats().flipped_symbols) / static_cast<double>(n);
  EXPECT_NEAR(observed, 1e-2, 2e-3);
}

TEST(ChannelModel, BurstCorruptsRuns) {
  ChannelConfig cfg;
  cfg.burst_rate = 5e-3;
  cfg.burst_length = 16;
  cfg.seed = 11;
  ChannelModel ch(cfg);
  ch.transmit(TritVector(50000, Trit::Zero));
  ASSERT_GT(ch.stats().bursts, 0u);
  // Bursts corrupt about burst_length symbols each (the tail of the stream
  // can clip the last one).
  EXPECT_GE(ch.stats().flipped_symbols, ch.stats().bursts * 8);
}

TEST(ChannelModel, TruncationShortensStream) {
  ChannelConfig cfg;
  cfg.truncate_rate = 1.0;
  cfg.seed = 5;
  ChannelModel ch(cfg);
  const TritVector out = ch.transmit(TritVector(1000, Trit::One));
  EXPECT_LT(out.size(), 1000u);
  EXPECT_TRUE(ch.last_corrupted());
  EXPECT_EQ(ch.stats().truncations, 1u);
  EXPECT_EQ(ch.stats().truncated_symbols, 1000u - out.size());
}

TEST(ChannelModel, StuckPinHoldsConstantTail) {
  ChannelConfig cfg;
  cfg.stuck_rate = 1.0;
  cfg.seed = 8;
  ChannelModel ch(cfg);
  const TritVector out = ch.transmit(TritVector(256, Trit::X));
  ASSERT_EQ(ch.stats().stuck_events, 1u);
  ASSERT_GT(ch.stats().stuck_symbols, 0u);
  const std::size_t from = out.size() - ch.stats().stuck_symbols;
  const Trit held = out.get(from);
  EXPECT_TRUE(bits::is_care(held));
  for (std::size_t i = from; i < out.size(); ++i) EXPECT_EQ(out.get(i), held);
}

TEST(ChannelConfigParse, RoundTripsAndValidates) {
  const ChannelConfig cfg =
      ChannelConfig::parse("flip=1e-3,burst=1e-4:16,trunc=0.5,stuck=0,seed=7");
  EXPECT_DOUBLE_EQ(cfg.flip_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.burst_rate, 1e-4);
  EXPECT_EQ(cfg.burst_length, 16u);
  EXPECT_DOUBLE_EQ(cfg.truncate_rate, 0.5);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_TRUE(cfg.faulty());
  EXPECT_EQ(ChannelConfig::parse(cfg.to_string()).flip_rate, cfg.flip_rate);

  EXPECT_THROW(ChannelConfig::parse("flip=2"), std::invalid_argument);
  EXPECT_THROW(ChannelConfig::parse("flip=abc"), std::invalid_argument);
  EXPECT_THROW(ChannelConfig::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(ChannelConfig::parse("flip"), std::invalid_argument);
  EXPECT_THROW(ChannelConfig::parse("burst=1e-3:0"), std::invalid_argument);
  EXPECT_FALSE(ChannelConfig::parse("").faulty());
}

// ------------------------------------------------------- typed decode path

TEST(DecodePath, TruncatedFinalBlockReportsLastBlock) {
  const NineCoded coder(8);
  // All-specified random data forces payload-rich streams.
  std::mt19937 rng(2);
  TritVector td;
  for (int i = 0; i < 256; ++i)
    td.push_back((rng() & 1u) ? Trit::One : Trit::Zero);
  const TritVector te = coder.encode(td);
  const TritVector cut = te.slice(0, te.size() - 1);
  try {
    coder.decode_checked(cut, td.size());
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.fault(), DecodeFault::kTruncated);
    EXPECT_EQ(e.block_index(), td.size() / 8 - 1);
    EXPECT_LE(e.stream_offset(), te.size());
  }
}

TEST(DecodePath, TrailingDataDetected) {
  const NineCoded coder(8);
  const TritVector td(64, Trit::Zero);
  TritVector te = coder.encode(td);
  const std::size_t clean = te.size();
  te.push_back(Trit::Zero);
  try {
    coder.decode_checked(te, td.size());
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.fault(), DecodeFault::kTrailingData);
    EXPECT_EQ(e.stream_offset(), clean);
  }
}

TEST(DecodePath, XInCodewordPositionDetected) {
  const NineCoded coder(8);
  TritVector te;
  te.push_back(Trit::X);  // the very first codeword bit is unspecified
  try {
    coder.decode_checked(te, 8);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.fault(), DecodeFault::kXInCodeword);
    EXPECT_EQ(e.stream_offset(), 0u);
    EXPECT_EQ(e.block_index(), 0u);
  }
}

TEST(DecodePath, OutcomeAccountsBlocksAndConsumption) {
  const NineCoded coder(8);
  const TritVector td = TritVector::from_string("0000000011111111010101XX");
  const TritVector te = coder.encode(td);
  const codec::DecodeOutcome out = coder.decode_checked(te, td.size());
  EXPECT_EQ(out.blocks, 3u);
  EXPECT_EQ(out.consumed, te.size());
  EXPECT_TRUE(td.covered_by(out.data) || td == out.data);
}

TEST(DecodePath, CycleDecoderRaisesSameTypedErrors) {
  const SingleScanDecoder decoder(8, 4);
  const NineCoded coder(8);
  std::mt19937 rng(4);
  TritVector td;
  for (int i = 0; i < 256; ++i)
    td.push_back((rng() & 1u) ? Trit::One : Trit::Zero);
  const TritVector te = coder.encode(td);
  EXPECT_THROW(decoder.run(te.slice(0, te.size() - 3), td.size()),
               DecodeError);
  TritVector extended = te;
  extended.append_run(5, Trit::Zero);
  EXPECT_THROW(decoder.run(extended, td.size()), DecodeError);
}

// The detection trichotomy, exercised over many random seeded corruptions.
TEST(DecodePath, EveryCorruptionDetectedOrXMasked) {
  gen::CubeGenConfig gen_cfg;
  gen_cfg.patterns = 20;
  gen_cfg.width = 240;
  gen_cfg.seed = 21;
  const TestSet cubes = gen::generate_cubes(gen_cfg);
  const NineCoded coder(8);

  ChannelConfig ch_cfg;
  ch_cfg.flip_rate = 5e-3;
  ch_cfg.truncate_rate = 2e-2;
  ch_cfg.stuck_rate = 2e-2;
  ch_cfg.burst_rate = 1e-3;
  ch_cfg.seed = 77;
  ChannelModel channel(ch_cfg);

  std::size_t corrupted = 0, decode_detected = 0, compare_detected = 0,
              x_masked = 0;
  for (int round = 0; round < 40; ++round) {
    for (std::size_t pat = 0; pat < cubes.pattern_count(); ++pat) {
      const TritVector cube = cubes.pattern(pat);
      const TritVector te = coder.encode(cube);
      const TritVector rx = channel.transmit(te);
      if (!channel.last_corrupted()) {
        // Control: a clean transmission must decode to a covering pattern.
        const TritVector d = coder.decode(rx, cube.size());
        EXPECT_TRUE(cube.covered_by(d));
        continue;
      }
      ++corrupted;
      try {
        const codec::DecodeOutcome out =
            coder.decode_checked(rx, cube.size());
        if (cube.covered_by(out.data)) {
          // (c) X-masked: the pattern is still a legal fill of the cube.
          ++x_masked;
        } else {
          // (b) a specified stimulus bit was altered -- the response
          // compare catches exactly this on the tester.
          ++compare_detected;
        }
      } catch (const DecodeError&) {
        ++decode_detected;  // (a)
      }
    }
  }
  ASSERT_GT(corrupted, 50u);
  EXPECT_EQ(corrupted, decode_detected + compare_detected + x_masked);
  // Structural corruptions (truncation, stuck tails) dominate here, so the
  // decode layer alone must be catching a healthy share.
  EXPECT_GT(decode_detected, corrupted / 4);
}

// ------------------------------------------------------- session protocol

struct SessionFixture {
  circuit::Netlist netlist = circuit::samples::s27();
  TestSet tests;

  SessionFixture() {
    atpg::AtpgConfig cfg;
    tests = atpg::generate_tests(netlist, cfg).tests;
  }

  SessionConfig config(ChannelConfig ch, RetryPolicy retry = {}) const {
    SessionConfig cfg;
    cfg.resilience = ResilienceConfig{ch, retry};
    return cfg;
  }
};

TEST(ResilientSession, CleanChannelMatchesPerfectPath) {
  SessionFixture fx;
  const SessionResult r =
      run_test_session(fx.netlist, fx.tests, fx.config(ChannelConfig{}));
  EXPECT_TRUE(r.device_passes());
  EXPECT_EQ(r.patterns_applied, fx.tests.pattern_count());
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.corruptions_detected, 0u);
  EXPECT_EQ(r.corruptions_undetected, 0u);
  EXPECT_EQ(r.wasted_ate_bits, 0u);
}

TEST(ResilientSession, NoisyChannelRecoversViaRetries) {
  SessionFixture fx;
  ChannelConfig ch;
  ch.flip_rate = 1e-2;  // aggressive for the tiny s27 streams
  ch.seed = 13;
  RetryPolicy retry;
  retry.max_retries = 50;
  const SessionResult r =
      run_test_session(fx.netlist, fx.tests, fx.config(ch, retry));
  // With a generous retry budget the session must complete and pass: every
  // detected corruption re-streams, nothing aborts, nothing is misjudged.
  EXPECT_TRUE(r.device_passes()) << "unrecovered=" << r.patterns_unrecovered;
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.patterns_applied, fx.tests.pattern_count());
  EXPECT_EQ(r.channel.corrupted_transmissions,
            r.corruptions_detected + r.corruptions_undetected);
  if (r.retries > 0) EXPECT_GT(r.wasted_ate_bits, 0u);
}

TEST(ResilientSession, CorruptedPatternNeverReportedPassing) {
  // Sweep seeds; whenever a corruption slips past decode undetected, it
  // must be X-masked -- i.e. the session still passes fault-free -- and
  // detected corruptions must never land in the applied set.
  SessionFixture fx;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ChannelConfig ch;
    ch.flip_rate = 1e-2;
    ch.seed = seed;
    RetryPolicy retry;
    retry.max_retries = 100;
    const SessionResult r =
        run_test_session(fx.netlist, fx.tests, fx.config(ch, retry));
    EXPECT_TRUE(r.device_passes()) << "seed " << seed;
    EXPECT_EQ(r.failing_patterns, 0u) << "seed " << seed;
  }
}

TEST(ResilientSession, ZeroRetriesFailsSafeOnFirstCorruption) {
  SessionFixture fx;
  ChannelConfig ch;
  ch.truncate_rate = 1.0;  // every transmission is cut short
  ch.seed = 2;
  RetryPolicy retry;
  retry.max_retries = 0;
  const SessionResult r =
      run_test_session(fx.netlist, fx.tests, fx.config(ch, retry));
  EXPECT_FALSE(r.device_passes());
  EXPECT_EQ(r.patterns_applied, 0u);
  EXPECT_EQ(r.patterns_unrecovered, fx.tests.pattern_count());
  EXPECT_EQ(r.retries, 0u);
  // Fail-safe accounting: every unstreamable pattern is marked failed.
  for (const bool failed : r.pattern_failed) EXPECT_TRUE(failed);
}

TEST(ResilientSession, RetryExhaustionSkipsPatternAndContinues) {
  SessionFixture fx;
  ChannelConfig ch;
  ch.truncate_rate = 1.0;
  ch.seed = 4;
  RetryPolicy retry;
  retry.max_retries = 2;
  const SessionResult r =
      run_test_session(fx.netlist, fx.tests, fx.config(ch, retry));
  EXPECT_FALSE(r.aborted);  // default abort_after: never
  EXPECT_EQ(r.patterns_unrecovered, fx.tests.pattern_count());
  // max_retries + 1 attempts per pattern, all wasted.
  EXPECT_EQ(r.channel.transmissions, fx.tests.pattern_count() * 3u);
  EXPECT_EQ(r.retries, fx.tests.pattern_count() * 2u);
  EXPECT_EQ(r.patterns_retried, fx.tests.pattern_count());
}

TEST(ResilientSession, AbortThresholdStopsTheSession) {
  SessionFixture fx;
  ASSERT_GT(fx.tests.pattern_count(), 2u);
  ChannelConfig ch;
  ch.truncate_rate = 1.0;
  ch.seed = 6;
  RetryPolicy retry;
  retry.max_retries = 1;
  retry.abort_after = 2;
  const SessionResult r =
      run_test_session(fx.netlist, fx.tests, fx.config(ch, retry));
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.device_passes());
  EXPECT_EQ(r.patterns_unrecovered, 2u);
  // The session stopped early: later patterns were never attempted.
  EXPECT_LT(r.channel.transmissions, fx.tests.pattern_count() * 2u);
}

TEST(ResilientSession, FaultyDeviceStillDetectedOverNoisyLink) {
  // End to end: a real stuck-at defect must still fail the session even
  // when the link itself needs retries.
  SessionFixture fx;
  const std::vector<sim::Fault> faults = sim::collapsed_fault_list(fx.netlist);
  sim::FaultSimulator fsim(fx.netlist);
  const auto cover = fsim.run(fx.tests, faults);
  ChannelConfig ch;
  ch.flip_rate = 5e-3;
  ch.seed = 9;
  RetryPolicy retry;
  retry.max_retries = 100;
  bool tried = false;
  for (std::size_t f = 0; f < faults.size() && !tried; ++f) {
    if (!cover.detected[f]) continue;
    tried = true;
    const SessionResult r = run_test_session(fx.netlist, fx.tests,
                                             fx.config(ch, retry), faults[f]);
    EXPECT_FALSE(r.device_passes());
    EXPECT_GT(r.failing_patterns, 0u);
    EXPECT_EQ(r.patterns_unrecovered, 0u);
  }
  EXPECT_TRUE(tried);
}

// ------------------------------------------------- bursts at boundaries
// Per-pattern streaming means one transmission per pattern: a burst that
// would run past the end of pattern k's stream must clip there, never
// bleed into pattern k+1's transmission.

TEST(ChannelModel, BurstClipsAtTransmissionEnd) {
  ChannelConfig cfg;
  cfg.burst_rate = 1.0;  // a burst starts at the first symbol, every time
  cfg.burst_length = 1000;
  const TritVector te(10, Trit::Zero);
  ChannelModel ch(cfg);
  const TritVector rx = ch.transmit(te);
  ASSERT_EQ(rx.size(), te.size());  // nothing spills past the end
  for (std::size_t i = 0; i < rx.size(); ++i) EXPECT_EQ(rx.get(i), Trit::One);
  EXPECT_EQ(ch.stats().flipped_symbols, te.size());

  // The clipped remainder of the burst must NOT carry into the next
  // pattern's transmission: the next stream is corrupted by its own burst
  // of full length, not by a leftover tail.
  const TritVector rx2 = ch.transmit(te);
  EXPECT_EQ(ch.stats().flipped_symbols, 2 * te.size());
  for (std::size_t i = 0; i < rx2.size(); ++i)
    EXPECT_EQ(rx2.get(i), Trit::One);
}

TEST(ChannelModel, BurstStartingAtLastSymbolCorruptsOneSymbol) {
  ChannelConfig cfg;
  cfg.burst_rate = 1.0;
  cfg.burst_length = 64;
  const TritVector te(1, Trit::One);
  ChannelModel ch(cfg);
  const TritVector rx = ch.transmit(te);
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx.get(0), Trit::Zero);
  EXPECT_EQ(ch.stats().flipped_symbols, 1u);
  EXPECT_EQ(ch.stats().bursts, 1u);
}

TEST(ChannelModel, ReseedAtPatternBoundaryIsolatesTransmissions) {
  // The fleet manager reseeds the channel at every batch boundary so that
  // batch k's fault stream is independent of how much of batch k-1 ran --
  // including a burst in flight when the boundary hit. Pin that property:
  // after reseed, a transmission is identical whether or not any earlier
  // traffic (with bursts straddling its end) happened on the channel.
  ChannelConfig cfg;
  cfg.flip_rate = 0.05;
  cfg.burst_rate = 0.05;
  cfg.burst_length = 16;
  const TritVector a(40, Trit::One);   // traffic before the boundary
  const TritVector b(64, Trit::Zero);  // the pattern after the boundary

  ChannelModel busy(cfg);
  for (int i = 0; i < 3; ++i) busy.transmit(a);
  busy.reseed(42);
  const TritVector via_busy = busy.transmit(b);

  ChannelModel fresh(cfg);
  fresh.reseed(42);
  const TritVector via_fresh = fresh.transmit(b);

  EXPECT_EQ(via_busy, via_fresh);
}

}  // namespace
}  // namespace nc::decomp
