// The shared 128-bit FNV-1a (core/hash.h) is a durability contract, not
// just a hash: serve's cache keys, the sharded store's rendezvous ranking
// and its per-strip keys are all derived from it, and strip records written
// by one build must be findable by the next. These vectors pin the digest
// byte-for-byte; changing them silently orphans every sharded store on
// disk.
#include "core/hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nc::core {
namespace {

TEST(Fnv128Test, EmptyInputIsTheOffsetBasis) {
  const Hash128 h = fnv128(nullptr, 0);
  EXPECT_EQ(h.lo, 0xCBF29CE484222325ull);
  EXPECT_EQ(h.hi, 0x6C62272E07BB0142ull);
}

TEST(Fnv128Test, FixedVectors) {
  // The lo lane is plain 64-bit FNV-1a, so "a" must match the published
  // reference value for that function.
  const std::uint8_t a[] = {'a'};
  Hash128 h = fnv128(a, 1);
  EXPECT_EQ(h.lo, 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(h.hi, 0xE5C9B63722C2EE79ull);

  const std::uint8_t abc[] = {'a', 'b', 'c'};
  h = fnv128(abc, 3);
  EXPECT_EQ(h.lo, 0xE71FA2190541574Bull);
  EXPECT_EQ(h.hi, 0x8B7EBB2D468F71E6ull);
}

TEST(Fnv128Test, U64UpdateFeedsLittleEndianBytes) {
  Fnv128 f;
  f.update_u64(0x0123456789ABCDEFull);
  const Hash128 h = f.digest();
  EXPECT_EQ(h.lo, 0x37EB3F3347761C55ull);
  EXPECT_EQ(h.hi, 0x32A5C24D3A374AC2ull);

  // Same bytes fed one at a time must agree -- update_u64 is a framing
  // convenience, not a different function.
  Fnv128 g;
  for (int i = 0; i < 8; ++i)
    g.update(static_cast<std::uint8_t>(0x0123456789ABCDEFull >> (8 * i)));
  const Hash128 h2 = g.digest();
  EXPECT_EQ(h2.lo, h.lo);
  EXPECT_EQ(h2.hi, h.hi);
}

TEST(Fnv128Test, StreamingMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  const Hash128 whole = fnv128(data.data(), data.size());
  Fnv128 f;
  f.update_bytes(data.data(), 100);
  f.update_bytes(data.data() + 100, data.size() - 100);
  const Hash128 split = f.digest();
  EXPECT_TRUE(whole == split);
}

// The exact byte sequence serve::cache_key feeds (kind, u64 k, lengths,
// u64 payload length, payload). Pinned so the shared hash provably
// produces the same cache keys -- and therefore finds the same store
// records -- as the private implementation it replaced.
TEST(Fnv128Test, CacheKeyCompositionVector) {
  Fnv128 f;
  f.update(0x9C);
  f.update_u64(8);
  for (int i = 0; i < 9; ++i) f.update(static_cast<std::uint8_t>(3 + i));
  f.update_u64(4);
  const std::uint8_t payload[] = {0, 1, 2, 3};
  f.update_bytes(payload, 4);
  const Hash128 h = f.digest();
  EXPECT_EQ(h.lo, 0x0E948CD5019EAFE4ull);
  EXPECT_EQ(h.hi, 0xA04D55CF3BD7275Bull);
}

TEST(Fnv128Test, HexIsHiThenLoZeroPadded) {
  EXPECT_EQ((Hash128{0x1, 0x2}).hex(),
            "00000000000000020000000000000001");
  const Hash128 h = fnv128(nullptr, 0);
  EXPECT_EQ(h.hex(), "6c62272e07bb0142cbf29ce484222325");
}

TEST(Fnv128Test, SingleByteChangesEveryLane) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const Hash128 base = fnv128(data.data(), data.size());
  data[40] ^= 0x01;
  const Hash128 flipped = fnv128(data.data(), data.size());
  EXPECT_NE(base.lo, flipped.lo);
  EXPECT_NE(base.hi, flipped.hi);
}

// mix64 seeds every deterministic fan-out in the repo: fleet's per-device
// channel seeds and the tune optimizer's per-candidate RNG streams. Runs
// recorded before the hoist into core/hash.h must replay identically, so
// the finalizer is pinned byte-for-byte.
TEST(Mix64Test, GoldenVectors) {
  EXPECT_EQ(mix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(mix64(1), 0x910A2DEC89025CC1ull);
  EXPECT_EQ(mix64(0xDEADBEEFull), 0x4ADFB90F68C9EB9Bull);
}

TEST(Mix64Test, MatchesPublishedSplitmix64Sequence) {
  // mix64(x) is one splitmix64 step from state x, so walking the state by
  // the golden-ratio increment must reproduce the published stream for
  // seed 1234567.
  const std::uint64_t increment = 0x9E3779B97F4A7C15ull;
  EXPECT_EQ(mix64(1234567), 6457827717110365317ull);
  EXPECT_EQ(mix64(1234567 + increment), 3203168211198807973ull);
}

TEST(Mix64Test, FleetSeedCompositionVector) {
  // fleet.cpp derives batch seeds as nested mixes; pin the composition so
  // checkpointed journals stay replayable across refactors.
  EXPECT_EQ(mix64(3 ^ mix64(5 ^ mix64(9))), 0xF36268102292D6FAull);
}

TEST(Mix64Test, IsConstexprAndBijectiveOnASample) {
  static_assert(mix64(0) == 0xE220A8397B1DCDAFull);
  // A finalizer must not collide on a dense small-integer sample (the
  // slot/generation values the optimizer feeds it).
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.push_back(mix64(i));
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

}  // namespace
}  // namespace nc::core
