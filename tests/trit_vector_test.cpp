#include "bits/trit_vector.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace nc::bits {
namespace {

TEST(TritVector, DefaultIsEmpty) {
  TritVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.care_count(), 0u);
}

TEST(TritVector, FillConstructor) {
  TritVector v(5, Trit::One);
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v.get(i), Trit::One);
}

TEST(TritVector, SetGetAcrossWordBoundary) {
  TritVector v(70, Trit::X);
  v.set(0, Trit::One);
  v.set(31, Trit::Zero);   // last slot of word 0
  v.set(32, Trit::One);    // first slot of word 1
  v.set(69, Trit::Zero);
  EXPECT_EQ(v.get(0), Trit::One);
  EXPECT_EQ(v.get(31), Trit::Zero);
  EXPECT_EQ(v.get(32), Trit::One);
  EXPECT_EQ(v.get(69), Trit::Zero);
  EXPECT_EQ(v.get(1), Trit::X);
}

TEST(TritVector, FromStringAndToString) {
  const std::string s = "01X10XX1";
  TritVector v = TritVector::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.get(2), Trit::X);
  EXPECT_EQ(v.get(3), Trit::One);
}

TEST(TritVector, FromStringRejectsJunk) {
  EXPECT_THROW(TritVector::from_string("01?"), std::invalid_argument);
}

TEST(TritVector, PushBackGrows) {
  TritVector v;
  for (int i = 0; i < 100; ++i)
    v.push_back(i % 3 == 0 ? Trit::X : trit_from_bit(i % 2));
  ASSERT_EQ(v.size(), 100u);
  EXPECT_EQ(v.get(0), Trit::X);
  EXPECT_EQ(v.get(1), Trit::One);
  EXPECT_EQ(v.get(2), Trit::Zero);
  EXPECT_EQ(v.get(99), Trit::X);
}

TEST(TritVector, Append) {
  TritVector a = TritVector::from_string("01X");
  TritVector b = TritVector::from_string("1X0");
  a.append(b);
  EXPECT_EQ(a.to_string(), "01X1X0");
}

TEST(TritVector, AppendRun) {
  TritVector v = TritVector::from_string("1");
  v.append_run(3, Trit::Zero);
  v.append_run(2, Trit::X);
  EXPECT_EQ(v.to_string(), "1000XX");
}

TEST(TritVector, Slice) {
  const TritVector v = TritVector::from_string("01X10X");
  EXPECT_EQ(v.slice(1, 3).to_string(), "1X1");
  EXPECT_EQ(v.slice(4, 10).to_string(), "0X");  // clamps
  EXPECT_EQ(v.slice(9, 2).size(), 0u);          // past end
}

TEST(TritVector, CareAndXCounts) {
  TritVector v = TritVector::from_string("01XX0X");
  EXPECT_EQ(v.care_count(), 3u);
  EXPECT_EQ(v.x_count(), 3u);
  EXPECT_DOUBLE_EQ(v.x_fraction(), 0.5);
}

TEST(TritVector, CareCountLargeRandomMatchesNaive) {
  std::mt19937 rng(7);
  TritVector v;
  std::size_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    const int r = static_cast<int>(rng() % 3);
    v.push_back(static_cast<Trit>(r));
    if (r != 2) ++expected;
  }
  EXPECT_EQ(v.care_count(), expected);
}

TEST(TritVector, ResizeShrinkThenEqualityStillWorks) {
  TritVector a = TritVector::from_string("0101X");
  TritVector b = a;
  b.push_back(Trit::One);
  b.resize(5);
  EXPECT_EQ(a, b);
}

TEST(TritVector, CompatibleWith) {
  const TritVector a = TritVector::from_string("01X");
  EXPECT_TRUE(a.compatible_with(TritVector::from_string("01X")));
  EXPECT_TRUE(a.compatible_with(TritVector::from_string("0XX")));
  EXPECT_TRUE(a.compatible_with(TritVector::from_string("011")));
  EXPECT_FALSE(a.compatible_with(TritVector::from_string("00X")));
  EXPECT_FALSE(a.compatible_with(TritVector::from_string("01")));  // size
}

TEST(TritVector, CoveredBy) {
  const TritVector cube = TritVector::from_string("0X1X");
  EXPECT_TRUE(cube.covered_by(TritVector::from_string("001X")));
  EXPECT_TRUE(cube.covered_by(TritVector::from_string("0X1X")));
  EXPECT_TRUE(cube.covered_by(TritVector::from_string("0110")));
  EXPECT_FALSE(cube.covered_by(TritVector::from_string("1X1X")));
  EXPECT_FALSE(cube.covered_by(TritVector::from_string("0X0X")));
}

TEST(TritVector, EqualityIgnoresCapacitySlack) {
  TritVector a;
  a.resize(40, Trit::One);
  TritVector b;
  for (int i = 0; i < 40; ++i) b.push_back(Trit::One);
  EXPECT_EQ(a, b);
}

TEST(TritVector, ClearResets) {
  TritVector v = TritVector::from_string("01X");
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(Trit::One);
  EXPECT_EQ(v.to_string(), "1");
}

}  // namespace
}  // namespace nc::bits
