// End-to-end tests of the compression service: request/reply correctness,
// cache hit byte-identity, admission control under saturation, typed error
// replies for corrupt frames, and clean shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bits/test_set.h"
#include "serve/frame.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "tune/optimizer.h"

namespace nc::serve {
namespace {

using std::chrono::milliseconds;

bits::TestSet small_test_set() {
  return bits::TestSet::from_strings({
      "01XX10X0",
      "XX01XX11",
      "1X0X0X0X",
      "0110XXXX",
  });
}

/// One synchronous test client over an in-process pipe.
class TestClient {
 public:
  explicit TestClient(Server& server)
      : stream_(), reader_(nullptr) {
    auto [client_end, server_end] = make_pipe();
    server.serve(std::move(server_end));
    stream_ = std::move(client_end);
    reader_ = std::make_unique<FrameReader>(*stream_);
  }

  void send(const Frame& frame) { write_frame(*stream_, frame); }

  void send_raw(const std::vector<std::uint8_t>& bytes) {
    stream_->write_all(bytes.data(), bytes.size());
  }

  /// Next frame from the server (fails the test on timeout/EOF).
  Frame next(milliseconds timeout = milliseconds(5000)) {
    FrameReader::Result r = reader_->read(timeout);
    EXPECT_EQ(r.status, FrameReader::Status::kFrame)
        << "status " << static_cast<int>(r.status) << " detail " << r.detail;
    return r.frame;
  }

  /// Sends a request and waits for the reply with the same seq, skipping
  /// unrelated frames (e.g. seq-0 protocol error reports).
  Frame round_trip(const Frame& request,
                   milliseconds timeout = milliseconds(5000)) {
    send(request);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      FrameReader::Result r = reader_->read(milliseconds(100));
      if (r.status == FrameReader::Status::kFrame &&
          r.frame.seq == request.seq)
        return r.frame;
      if (r.status == FrameReader::Status::kEof) break;
    }
    ADD_FAILURE() << "no reply for seq " << request.seq;
    return Frame{};
  }

  ByteStream& stream() { return *stream_; }

 private:
  std::unique_ptr<ByteStream> stream_;
  std::unique_ptr<FrameReader> reader_;
};

Frame encode_request(std::uint64_t seq, const bits::TestSet& ts) {
  Frame f;
  f.type = FrameType::kEncodeRequest;
  f.seq = seq;
  f.payload = to_payload(EncodeRequest{CodecSpec{}, ts});
  return f;
}

TEST(ServeServerTest, SessionGrantEchoesConfiguredCap) {
  ServerConfig config;
  config.worker_threads = 2;
  config.inflight_cap = 5;
  Server server(config);
  TestClient client(server);

  Frame req;
  req.type = FrameType::kSessionRequest;
  req.seq = 1;
  req.payload = session_payload("tester");
  const Frame reply = client.round_trip(req);
  ASSERT_EQ(reply.type, FrameType::kSessionReply);
  const SessionGrant grant = parse_session_grant(reply.payload);
  EXPECT_GT(grant.client_id, 0u);
  EXPECT_EQ(grant.inflight_cap, 5u);
  server.stop();
}

TEST(ServeServerTest, EncodeAndDecodeRoundTrip) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);
  const bits::TestSet ts = small_test_set();
  const CodecSpec spec;
  const codec::NineCoded coder = spec.make_coder();

  const Frame enc_reply = client.round_trip(encode_request(1, ts));
  ASSERT_EQ(enc_reply.type, FrameType::kEncodeReply);
  const bits::TritVector te = parse_trits_payload(enc_reply.payload);
  EXPECT_EQ(te, coder.encode(ts.flatten()));

  Frame dec;
  dec.type = FrameType::kDecodeRequest;
  dec.seq = 2;
  DecodeRequest dr;
  dr.spec = spec;
  dr.patterns = ts.pattern_count();
  dr.width = ts.pattern_length();
  dr.te = te;
  dec.payload = to_payload(dr);
  const Frame dec_reply = client.round_trip(dec);
  ASSERT_EQ(dec_reply.type, FrameType::kDecodeReply);
  const bits::TestSet decoded = parse_test_set_payload(dec_reply.payload);
  // The decode resolves don't-cares; every specified stimulus bit must
  // survive exactly.
  ASSERT_EQ(decoded.pattern_count(), ts.pattern_count());
  EXPECT_TRUE(ts.flatten().covered_by(decoded.flatten()));
  server.stop();
}

TEST(ServeServerTest, CacheHitIsByteIdenticalToMiss) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);
  const bits::TestSet ts = small_test_set();

  const Frame first = client.round_trip(encode_request(1, ts));
  const Frame second = client.round_trip(encode_request(2, ts));
  ASSERT_EQ(first.type, FrameType::kEncodeReply);
  ASSERT_EQ(second.type, FrameType::kEncodeReply);
  EXPECT_EQ(first.payload, second.payload)
      << "a cache hit must be byte-identical to the miss that filled it";
  const CacheStats cs = server.cache_stats();
  EXPECT_GE(cs.hits, 1u);
  EXPECT_GE(cs.insertions, 1u);
  server.stop();
}

TEST(ServeServerTest, QueueSaturationYieldsTypedOverloadedReply) {
  ServerConfig config;
  config.worker_threads = 1;
  config.queue_capacity = 1;
  config.inflight_cap = 100;
  // A long batch window keeps the first request parked in the queue while
  // the rest arrive, making the rejection deterministic.
  config.batch_window = milliseconds(300);
  Server server(config);
  TestClient client(server);
  const bits::TestSet ts = small_test_set();

  const int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) client.send(encode_request(1 + i, ts));

  int ok = 0;
  int overloaded = 0;
  std::map<std::uint64_t, int> replies;
  for (int i = 0; i < kRequests; ++i) {
    const Frame reply = client.next();
    ++replies[reply.seq];
    if (reply.type == FrameType::kEncodeReply) ++ok;
    if (reply.type == FrameType::kError) {
      const ParsedError e = parse_error_payload(reply.payload);
      EXPECT_EQ(e.code, ErrorCode::kOverloaded);
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kRequests) << "every request gets a reply";
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1) << "saturation must reject, not stall";
  for (const auto& [seq, count] : replies)
    EXPECT_EQ(count, 1) << "seq " << seq << " answered more than once";
  EXPECT_GE(server.metrics_snapshot().requests_rejected_queue, 1u);
  server.stop();
}

TEST(ServeServerTest, InflightCapYieldsTypedReply) {
  ServerConfig config;
  config.worker_threads = 1;
  config.queue_capacity = 100;
  config.inflight_cap = 1;
  config.batch_window = milliseconds(300);
  Server server(config);
  TestClient client(server);
  const bits::TestSet ts = small_test_set();

  const int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) client.send(encode_request(1 + i, ts));
  int ok = 0;
  int capped = 0;
  for (int i = 0; i < kRequests; ++i) {
    const Frame reply = client.next();
    if (reply.type == FrameType::kEncodeReply) ++ok;
    if (reply.type == FrameType::kError) {
      const ParsedError e = parse_error_payload(reply.payload);
      EXPECT_EQ(e.code, ErrorCode::kInflightLimit);
      ++capped;
    }
  }
  EXPECT_EQ(ok + capped, kRequests);
  EXPECT_GE(capped, 1);
  EXPECT_GE(server.metrics_snapshot().requests_rejected_inflight, 1u);
  server.stop();
}

TEST(ServeServerTest, CorruptFrameGetsTypedErrorAndConnectionSurvives) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);
  const bits::TestSet ts = small_test_set();

  // A frame with a flipped payload byte: the server must reply with one
  // typed protocol error (seq 0) and keep the connection usable.
  std::vector<std::uint8_t> bad = encode_frame(encode_request(1, ts));
  bad[kFrameHeaderSize + 3] ^= 0x40;
  client.send_raw(bad);
  const Frame err = client.next();
  ASSERT_EQ(err.type, FrameType::kError);
  EXPECT_EQ(err.seq, 0u);
  const ParsedError e = parse_error_payload(err.payload);
  EXPECT_EQ(e.code, ErrorCode::kBadCrc);

  const Frame reply = client.round_trip(encode_request(2, ts));
  EXPECT_EQ(reply.type, FrameType::kEncodeReply)
      << "connection must resync after a corrupt frame";
  EXPECT_GE(server.metrics_snapshot().protocol_errors, 1u);
  server.stop();
}

TEST(ServeServerTest, MalformedPayloadAndBadTypeAreTypedErrors) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);

  Frame bad_payload;
  bad_payload.type = FrameType::kEncodeRequest;
  bad_payload.seq = 1;
  bad_payload.payload = {1, 2, 3};  // shorter than a codec spec
  Frame reply = client.round_trip(bad_payload);
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(reply.payload).code, ErrorCode::kBadPayload);

  Frame bad_type;
  bad_type.type = FrameType::kEncodeReply;  // a reply is not a request
  bad_type.seq = 2;
  reply = client.round_trip(bad_type);
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(reply.payload).code, ErrorCode::kBadType);
  server.stop();
}

TEST(ServeServerTest, StatsReplyIsJson) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);
  client.round_trip(encode_request(1, small_test_set()));

  Frame stats;
  stats.type = FrameType::kStatsRequest;
  stats.seq = 9;
  const Frame reply = client.round_trip(stats);
  ASSERT_EQ(reply.type, FrameType::kStatsReply);
  const std::string json(reply.payload.begin(), reply.payload.end());
  EXPECT_NE(json.find("\"requests_accepted\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  server.stop();
}

TEST(ServeServerTest, StopIsIdempotentAndDestructorClean) {
  auto server = std::make_unique<Server>(ServerConfig{});
  TestClient client(*server);
  client.round_trip(encode_request(1, small_test_set()));
  server->stop();
  server->stop();
  server.reset();  // destructor after explicit stop must not hang
}

TEST(ServeServerTest, LoadgenCleanChannelAllByteIdentical) {
  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 256;
  sconfig.inflight_cap = 16;
  Server server(sconfig);

  LoadgenConfig lconfig;
  lconfig.clients = 4;
  lconfig.requests_per_client = 20;
  lconfig.pipeline = 4;
  lconfig.distinct = 3;
  lconfig.patterns = 8;
  lconfig.width = 32;
  const LoadgenStats stats = run_loadgen_inprocess(lconfig, server);
  EXPECT_TRUE(stats.clean()) << "mismatches " << stats.byte_mismatches
                             << " dup " << stats.duplicates << " unresolved "
                             << stats.unresolved;
  EXPECT_EQ(stats.requests,
            lconfig.clients * lconfig.requests_per_client);
  EXPECT_EQ(stats.byte_mismatches, 0u);
  server.stop();
}

TEST(ServeServerTest, LoadgenFaultInjectedChannelStaysClean) {
  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 256;
  sconfig.inflight_cap = 16;
  Server server(sconfig);

  LoadgenConfig lconfig;
  lconfig.clients = 8;
  lconfig.requests_per_client = 12;
  lconfig.pipeline = 3;
  lconfig.distinct = 3;
  lconfig.patterns = 8;
  lconfig.width = 32;
  lconfig.fault_period = 3;  // every 3rd transmit rides the faulty channel
  lconfig.channel.flip_rate = 2e-3;
  lconfig.channel.burst_rate = 1e-4;
  lconfig.channel.truncate_rate = 0.05;
  lconfig.retransmit_timeout = milliseconds(200);
  lconfig.deadline = milliseconds(20000);
  const LoadgenStats stats = run_loadgen_inprocess(lconfig, server);

  // The acceptance gate: zero lost, duplicated or corrupted responses --
  // every response is byte-identical to the serial reference or a typed
  // error, even with corrupted frames on the wire.
  EXPECT_TRUE(stats.clean()) << "mismatches " << stats.byte_mismatches
                             << " dup " << stats.duplicates << " unresolved "
                             << stats.unresolved;
  EXPECT_EQ(stats.requests,
            lconfig.clients * lconfig.requests_per_client);
  EXPECT_GT(stats.corrupted_sends, 0u)
      << "the channel must actually corrupt something for this test to bite";
  server.stop();
}

// Deterministic distinct test sets for the warm-restart soak; i selects the
// content, so the same i always produces the same request bytes.
bits::TestSet varied_test_set(int i) {
  std::vector<std::string> rows;
  for (int r = 0; r < 4; ++r) {
    std::string row;
    for (int c = 0; c < 8; ++c) {
      const int v = (i * 31 + r * 7 + c) % 3;
      row += v == 0 ? '0' : (v == 1 ? '1' : 'X');
    }
    rows.push_back(row);
  }
  return bits::TestSet::from_strings(rows);
}

// Warm-restart soak: run load against a server backed by the persistent
// store, stop it, reopen a fresh server on the same store directory and
// replay the same work. The warm server must (a) actually serve from the L2
// store (l2_hits > 0 -- it never computed these artifacts) and (b) return
// every reply byte-identical to its cold counterpart.
TEST(ServeServerTest, WarmRestartServesFromStoreByteIdentical) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "nc_serve_warm_restart_test";
  fs::remove_all(dir);

  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 256;
  sconfig.inflight_cap = 16;
  sconfig.store_dir = dir.string();

  LoadgenConfig lconfig;
  lconfig.clients = 4;
  lconfig.requests_per_client = 15;
  lconfig.pipeline = 4;
  lconfig.distinct = 3;
  lconfig.patterns = 8;
  lconfig.width = 32;

  constexpr int kProbes = 6;
  std::vector<std::vector<std::uint8_t>> cold(kProbes);
  {
    Server server(sconfig);
    const LoadgenStats stats = run_loadgen_inprocess(lconfig, server);
    EXPECT_TRUE(stats.clean()) << "cold soak not clean";
    TestClient client(server);
    for (int i = 0; i < kProbes; ++i) {
      const Frame reply =
          client.round_trip(encode_request(100 + i, varied_test_set(i)));
      ASSERT_EQ(reply.type, FrameType::kEncodeReply) << "probe " << i;
      cold[i] = reply.payload;
    }
    // A cold store can't have served anything: every artifact was computed.
    EXPECT_EQ(server.metrics_snapshot().l2_hits, 0u);
    EXPECT_GT(server.metrics_snapshot().misses, 0u);
    server.stop();
  }
  {
    Server server(sconfig);  // same store directory: reopen warm
    ASSERT_TRUE(server.has_store());
    EXPECT_TRUE(server.store_stats().recovered);
    EXPECT_GT(server.store_stats().records, 0u);

    const LoadgenStats stats = run_loadgen_inprocess(lconfig, server);
    EXPECT_TRUE(stats.clean()) << "warm soak not clean";

    TestClient client(server);
    for (int i = 0; i < kProbes; ++i) {
      const Frame reply =
          client.round_trip(encode_request(200 + i, varied_test_set(i)));
      ASSERT_EQ(reply.type, FrameType::kEncodeReply) << "probe " << i;
      EXPECT_EQ(reply.payload, cold[i])
          << "warm reply " << i << " differs from its cold counterpart";
    }
    EXPECT_GT(server.metrics_snapshot().l2_hits, 0u)
        << "the warm server never touched the persistent store";

    // The Stats reply now carries the store tier.
    Frame stats_req;
    stats_req.type = FrameType::kStatsRequest;
    stats_req.seq = 999;
    const Frame stats_reply = client.round_trip(stats_req);
    ASSERT_EQ(stats_reply.type, FrameType::kStatsReply);
    const std::string json(stats_reply.payload.begin(),
                           stats_reply.payload.end());
    EXPECT_NE(json.find("\"store\""), std::string::npos);
    EXPECT_NE(json.find("\"l2_hits\""), std::string::npos);
    server.stop();
  }
  fs::remove_all(dir);
}

// Satellite gate: the tiered lookup path must coexist with store
// maintenance. Loadgen traffic (cache off, so every hit is an L2 read)
// races a thread hammering fsck(repair) and compaction on the SAME store;
// nothing may be lost, duplicated, or byte-mangled. Run under TSan this
// also proves the locking, not just the outcome.
TEST(ServeServerTest, TieredLookupSurvivesConcurrentFsckAndCompaction) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "nc_serve_fsck_race_test";
  fs::remove_all(dir);

  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 256;
  sconfig.inflight_cap = 16;
  sconfig.cache_capacity = 0;  // L1 off: every repeat goes to the store
  sconfig.store_dir = dir.string();
  sconfig.store_segment_bytes = 2048;  // many small segments to compact

  LoadgenConfig lconfig;
  lconfig.clients = 4;
  lconfig.requests_per_client = 25;
  lconfig.pipeline = 4;
  lconfig.distinct = 5;
  lconfig.patterns = 8;
  lconfig.width = 32;

  {
    Server server(sconfig);
    ASSERT_NE(server.store(), nullptr);
    std::atomic<bool> stop_maintenance{false};
    std::thread maintenance([&] {
      while (!stop_maintenance.load()) {
        server.store()->fsck(/*repair=*/true);
        server.store()->compact(0.0);
      }
    });
    const LoadgenStats stats = run_loadgen_inprocess(lconfig, server);
    stop_maintenance.store(true);
    maintenance.join();

    EXPECT_TRUE(stats.clean())
        << "mismatches " << stats.byte_mismatches << " dup "
        << stats.duplicates << " unresolved " << stats.unresolved;
    EXPECT_GT(server.metrics_snapshot().l2_hits, 0u)
        << "cache-off soak never read the store; the race went untested";
    // Maintenance must not have manufactured or lost state.
    EXPECT_TRUE(server.store()->fsck(/*repair=*/false).clean);
    server.stop();
  }
  fs::remove_all(dir);
}

// Big deterministic test sets so the encoded artifacts exceed the stripe
// threshold -- shard-loss recovery is only interesting for striped records.
bits::TestSet big_test_set(int i) {
  std::vector<std::string> rows;
  for (int r = 0; r < 24; ++r) {
    std::string row;
    for (int c = 0; c < 96; ++c) {
      const int v = (i * 131 + r * 17 + c * 5) % 4;
      row += v == 0 ? '0' : (v == 1 ? '1' : 'X');
    }
    rows.push_back(row);
  }
  return bits::TestSet::from_strings(rows);
}

// Kill-one-shard recovery, end to end through the server: cold soak on a
// 4-shard erasure-coded tier, delete a whole shard directory, reopen warm.
// Every probe must come back byte-identical (reconstructed from the
// surviving k strips), the damage must be visible in the sharded stats,
// and a scrub must restore full redundancy.
TEST(ServeServerTest, ShardedWarmRestartSurvivesShardLoss) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "nc_serve_shard_loss_test";
  fs::remove_all(dir);

  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 256;
  sconfig.inflight_cap = 16;
  sconfig.cache_capacity = 0;  // warm replies must come from the store
  sconfig.store_dir = dir.string();
  sconfig.store_shards = 4;
  sconfig.store_parity = 1;
  sconfig.store_stripe_threshold = 64;  // stripe these small artifacts

  constexpr int kProbes = 8;
  std::vector<std::vector<std::uint8_t>> cold(kProbes);
  {
    Server server(sconfig);
    ASSERT_TRUE(server.has_sharded_store());
    TestClient client(server);
    for (int i = 0; i < kProbes; ++i) {
      const Frame reply =
          client.round_trip(encode_request(100 + i, big_test_set(i)));
      ASSERT_EQ(reply.type, FrameType::kEncodeReply) << "probe " << i;
      cold[i] = reply.payload;
    }
    const store::ShardedStats ss = server.sharded_store_stats();
    EXPECT_GT(ss.striped_puts, 0u)
        << "nothing striped; shard loss would be trivially survivable";
    server.stop();
  }

  fs::remove_all(dir / store::ShardedStore::shard_dir_name(2));

  {
    Server server(sconfig);
    ASSERT_TRUE(server.has_sharded_store());
    TestClient client(server);
    for (int i = 0; i < kProbes; ++i) {
      const Frame reply =
          client.round_trip(encode_request(200 + i, big_test_set(i)));
      ASSERT_EQ(reply.type, FrameType::kEncodeReply) << "probe " << i;
      EXPECT_EQ(reply.payload, cold[i])
          << "degraded reply " << i << " differs from its cold counterpart";
    }
    store::ShardedStats ss = server.sharded_store_stats();
    EXPECT_GT(ss.degraded_reads, 0u)
        << "shard loss was invisible; the probes never exercised erasure";
    EXPECT_EQ(ss.unrecoverable_reads, 0u);

    // Scrub through the server's own tier: redundancy comes back without
    // a restart, and a rerun confirms there is nothing left to repair.
    const store::ScrubReport scrub = server.sharded_store()->scrub();
    EXPECT_TRUE(scrub.full_redundancy);
    EXPECT_GT(scrub.strips_repaired + scrub.heads_repaired +
                  scrub.copies_repaired,
              0u);
    const store::ScrubReport again = server.sharded_store()->scrub();
    EXPECT_EQ(again.strips_repaired + again.heads_repaired +
                  again.copies_repaired,
              0u);
    server.stop();
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------- signature checking

/// A small deterministic signature stream: `cycles` cycles of `m` trits
/// with a sprinkling of X (the positions the tester cannot predict).
bits::TritVector signature_stream(std::size_t m, std::size_t cycles,
                                  int salt) {
  bits::TritVector v(m * cycles, bits::Trit::Zero);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const int r = (static_cast<int>(i) * 13 + salt * 7) % 9;
    v.set(i, r == 0 ? bits::Trit::X
                    : r % 2 ? bits::Trit::One : bits::Trit::Zero);
  }
  return v;
}

Frame publish_request(std::uint64_t seq, const SignaturePublish& pub) {
  Frame f;
  f.type = FrameType::kSignaturePublishRequest;
  f.seq = seq;
  f.payload = to_payload(pub);
  return f;
}

Frame check_request(std::uint64_t seq, const SignatureCheck& chk) {
  Frame f;
  f.type = FrameType::kSignatureCheckRequest;
  f.seq = seq;
  f.payload = to_payload(chk);
  return f;
}

TEST(ServeServerTest, SignaturePublishCheckRoundTrip) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);

  SignaturePublish pub;
  pub.outputs_per_cycle = 5;
  pub.cycles = 8;
  pub.expected = signature_stream(5, 8, 1);

  // Publish returns the content address of the payload; republishing is
  // idempotent and returns the same ref.
  const Frame reply1 = client.round_trip(publish_request(1, pub));
  ASSERT_EQ(reply1.type, FrameType::kSignaturePublishReply);
  const SignatureRef ref = parse_signature_ref(reply1.payload);
  const std::vector<std::uint8_t> payload = to_payload(pub);
  const CacheKey key = signature_ref_key(payload.data(), payload.size());
  EXPECT_EQ(ref.lo, key.lo);
  EXPECT_EQ(ref.hi, key.hi);
  const Frame reply2 = client.round_trip(publish_request(2, pub));
  ASSERT_EQ(reply2.type, FrameType::kSignaturePublishReply);
  EXPECT_EQ(parse_signature_ref(reply2.payload), ref);

  // A matching device upload passes; the reply bytes are exactly what the
  // shared check routine computes locally.
  bits::TritVector observed = pub.expected;
  for (std::size_t i = 0; i < observed.size(); ++i)
    if (observed.get(i) == bits::Trit::X) observed.set(i, bits::Trit::One);
  const Frame ok = client.round_trip(check_request(3, {ref, observed}));
  ASSERT_EQ(ok.type, FrameType::kSignatureCheckReply);
  EXPECT_EQ(ok.payload,
            check_verdict_payload(compact::check_signatures(
                pub.expected, observed, pub.outputs_per_cycle)));
  EXPECT_TRUE(parse_check_verdict(ok.payload).pass);

  // Flip one care bit: the server must report the same failing verdict a
  // local analyzer computes, byte for byte.
  bits::TritVector bad = observed;
  for (std::size_t i = 0; i < bad.size(); ++i)
    if (pub.expected.get(i) != bits::Trit::X) {
      bad.set(i, pub.expected.get(i) == bits::Trit::One ? bits::Trit::Zero
                                                        : bits::Trit::One);
      break;
    }
  const Frame fail = client.round_trip(check_request(4, {ref, bad}));
  ASSERT_EQ(fail.type, FrameType::kSignatureCheckReply);
  EXPECT_EQ(fail.payload,
            check_verdict_payload(compact::check_signatures(
                pub.expected, bad, pub.outputs_per_cycle)));
  const compact::CheckVerdict verdict = parse_check_verdict(fail.payload);
  EXPECT_FALSE(verdict.pass);
  EXPECT_EQ(verdict.first_mismatch_cycle, 0u);

  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_EQ(m.signature_publishes, 2u);
  EXPECT_EQ(m.signature_checks, 2u);
  EXPECT_EQ(m.signature_mismatches, 1u);
  EXPECT_EQ(m.signature_unknown_refs, 0u);
  server.stop();
}

TEST(ServeServerTest, SignatureCheckUnknownRefIsTypedError) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);

  SignatureCheck chk;
  chk.ref = SignatureRef{0xDEAD, 0xBEEF};  // never published
  chk.observed = signature_stream(4, 4, 2);
  const Frame reply = client.round_trip(check_request(1, chk));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(reply.payload).code,
            ErrorCode::kUnknownSignature);
  EXPECT_EQ(server.metrics_snapshot().signature_unknown_refs, 1u);

  // Malformed check payloads are kBadPayload, not a crash.
  Frame garbage;
  garbage.type = FrameType::kSignatureCheckRequest;
  garbage.seq = 2;
  garbage.payload = {1, 2, 3};
  const Frame bad = client.round_trip(garbage);
  ASSERT_EQ(bad.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(bad.payload).code, ErrorCode::kBadPayload);
  server.stop();
}

TEST(ServeServerTest, SignatureWarmRestartChecksFromStore) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "nc_serve_sig_warm_test";
  fs::remove_all(dir);

  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.store_dir = dir.string();

  SignaturePublish pub;
  pub.outputs_per_cycle = 6;
  pub.cycles = 10;
  pub.expected = signature_stream(6, 10, 3);
  bits::TritVector observed = pub.expected;
  for (std::size_t i = 0; i < observed.size(); ++i)
    if (observed.get(i) == bits::Trit::X) observed.set(i, bits::Trit::Zero);

  SignatureRef ref;
  std::vector<std::uint8_t> cold_reply;
  {
    Server server(sconfig);
    TestClient client(server);
    const Frame preply = client.round_trip(publish_request(1, pub));
    ASSERT_EQ(preply.type, FrameType::kSignaturePublishReply);
    ref = parse_signature_ref(preply.payload);
    const Frame creply = client.round_trip(check_request(2, {ref, observed}));
    ASSERT_EQ(creply.type, FrameType::kSignatureCheckReply);
    cold_reply = creply.payload;
    server.stop();
  }
  {
    // Fresh server, same store: the published stream must be resolvable
    // from the persistent tier alone, with a byte-identical verdict.
    Server server(sconfig);
    TestClient client(server);
    const Frame creply = client.round_trip(check_request(5, {ref, observed}));
    ASSERT_EQ(creply.type, FrameType::kSignatureCheckReply);
    EXPECT_EQ(creply.payload, cold_reply);
    server.stop();
  }
  fs::remove_all(dir);
}

TEST(ServeServerTest, LoadgenSignatureChecksFaultInjectedStaysClean) {
  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 256;
  sconfig.inflight_cap = 16;
  Server server(sconfig);

  LoadgenConfig lconfig;
  lconfig.clients = 4;
  lconfig.requests_per_client = 16;
  lconfig.pipeline = 3;
  lconfig.distinct = 2;
  lconfig.patterns = 8;
  lconfig.width = 32;
  lconfig.signature_checks = 6;  // fault-free device + 5 faulty devices
  lconfig.fault_period = 3;
  lconfig.channel.flip_rate = 2e-3;
  lconfig.channel.truncate_rate = 0.05;
  lconfig.retransmit_timeout = milliseconds(200);
  lconfig.deadline = milliseconds(30000);
  const LoadgenStats stats = run_loadgen_inprocess(lconfig, server);

  // The acceptance gate of the tentpole: under an injected-fault channel,
  // every signature-check reply the clients saw was byte-identical to the
  // locally computed compact::check_signatures verdict (a mismatch counts
  // as byte_mismatches), and no check outran its publish.
  EXPECT_TRUE(stats.clean())
      << "mismatches " << stats.byte_mismatches << " dup "
      << stats.duplicates << " unresolved " << stats.unresolved
      << " sig-unknown " << stats.signature_unknowns;
  EXPECT_EQ(stats.requests, lconfig.clients * lconfig.requests_per_client);
  EXPECT_GT(stats.corrupted_sends, 0u);

  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_GT(m.signature_publishes, 0u);
  EXPECT_GT(m.signature_checks, 0u);
  EXPECT_EQ(m.signature_unknown_refs, 0u);
  server.stop();
}

// ---- code tuning over the wire ------------------------------------------

Frame tune_frame(std::uint64_t seq, const TuneRequest& req) {
  Frame f;
  f.type = FrameType::kTuneRequest;
  f.seq = seq;
  f.payload = to_payload(req);
  return f;
}

TuneRequest small_tune_request() {
  TuneRequest req;
  req.seed = 42;
  req.generations = 2;
  req.population = 4;
  req.tests = small_test_set();
  return req;
}

TEST(ServeServerTest, TuneComputesOnceThenServesFromCache) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);
  const TuneRequest req = small_tune_request();

  const Frame first = client.round_trip(tune_frame(1, req));
  ASSERT_EQ(first.type, FrameType::kTuneReply);
  const TuneReplyData reply = parse_tune_reply(first.payload);
  EXPECT_EQ(reply.evaluations, std::size_t{req.generations} * req.population);
  EXPECT_GE(reply.cr_percent, 0.0);
  EXPECT_GT(reply.fsm_gates, 0u);

  const Frame second = client.round_trip(tune_frame(2, req));
  ASSERT_EQ(second.type, FrameType::kTuneReply);
  EXPECT_EQ(second.payload, first.payload)
      << "the repeated tune request must come back byte-identical";

  const Metrics::Snapshot m = server.metrics_snapshot();
  EXPECT_EQ(m.tune_requests, 2u);
  EXPECT_EQ(m.tune_searches, 1u) << "the second request must not re-search";
  EXPECT_GE(m.l1_hits, 1u);
  server.stop();
}

TEST(ServeServerTest, TuneReplyMatchesLocalSearchExactly) {
  // The server runs the same deterministic optimizer a local `ninec tune`
  // would, so its artifact must equal the local result bit for bit --
  // that is what makes the content-addressed caching sound.
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);
  const TuneRequest req = small_tune_request();

  const Frame frame = client.round_trip(tune_frame(1, req));
  ASSERT_EQ(frame.type, FrameType::kTuneReply);
  const TuneReplyData reply = parse_tune_reply(frame.payload);

  tune::TuneConfig cfg;
  cfg.seed = req.seed;
  cfg.generations = req.generations;
  cfg.population = req.population;
  cfg.weights =
      tune::TuneWeights{req.weight_cr, req.weight_tat, req.weight_gates,
                        req.p};
  const tune::TuneResult local = tune::run_tune(req.tests, cfg);
  EXPECT_EQ(reply.genome, local.best);
  EXPECT_EQ(reply.score, local.best_report.score);
  EXPECT_GE(reply.score, local.standard_report.score);
  EXPECT_GE(reply.score, local.frequency_directed_report.score);
  server.stop();
}

TEST(ServeServerTest, TuneWarmRestartServesFromStore) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "nc_serve_tune_warm_test";
  fs::remove_all(dir);

  ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.store_dir = dir.string();
  const TuneRequest req = small_tune_request();

  std::vector<std::uint8_t> cold;
  {
    Server server(sconfig);
    TestClient client(server);
    const Frame reply = client.round_trip(tune_frame(1, req));
    ASSERT_EQ(reply.type, FrameType::kTuneReply);
    cold = reply.payload;
    EXPECT_EQ(server.metrics_snapshot().tune_searches, 1u);
    server.stop();
  }
  {
    Server server(sconfig);  // same store directory: reopen warm
    ASSERT_TRUE(server.has_store());
    TestClient client(server);
    const Frame reply = client.round_trip(tune_frame(2, req));
    ASSERT_EQ(reply.type, FrameType::kTuneReply);
    EXPECT_EQ(reply.payload, cold)
        << "the warm tune artifact differs from the cold search";
    const Metrics::Snapshot m = server.metrics_snapshot();
    EXPECT_EQ(m.tune_searches, 0u)
        << "a warm restart must answer from the store, not re-search";
    EXPECT_GE(m.l2_hits, 1u);
    server.stop();
  }
  fs::remove_all(dir);
}

TEST(ServeServerTest, TuneBadPayloadsAreTypedErrors) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);

  Frame junk;
  junk.type = FrameType::kTuneRequest;
  junk.seq = 1;
  junk.payload = {9, 9, 9};  // far too short
  Frame reply = client.round_trip(junk);
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(reply.payload).code, ErrorCode::kBadPayload);

  // Well-formed but over the search caps: same typed rejection.
  TuneRequest oversized = small_tune_request();
  oversized.generations = kMaxTuneGenerations + 1;
  reply = client.round_trip(tune_frame(2, oversized));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error_payload(reply.payload).code, ErrorCode::kBadPayload);

  // The connection survives both and still serves good requests.
  const Frame good = client.round_trip(tune_frame(3, small_tune_request()));
  EXPECT_EQ(good.type, FrameType::kTuneReply);
  server.stop();
}

TEST(ServeServerTest, TuneAndEncodeRequestsCoexistInMixedTraffic) {
  ServerConfig config;
  config.worker_threads = 2;
  Server server(config);
  TestClient client(server);

  // Interleave: the scheduler may batch these together (tune requests ride
  // the default spec); dispatch must still route each to its own handler.
  const Frame enc1 = client.round_trip(encode_request(1, small_test_set()));
  const Frame tun1 = client.round_trip(tune_frame(2, small_tune_request()));
  const Frame enc2 = client.round_trip(encode_request(3, small_test_set()));
  ASSERT_EQ(enc1.type, FrameType::kEncodeReply);
  ASSERT_EQ(tun1.type, FrameType::kTuneReply);
  ASSERT_EQ(enc2.type, FrameType::kEncodeReply);
  EXPECT_EQ(enc1.payload, enc2.payload);

  // Stats reply carries the tune counters.
  Frame stats;
  stats.type = FrameType::kStatsRequest;
  stats.seq = 9;
  const Frame sreply = client.round_trip(stats);
  ASSERT_EQ(sreply.type, FrameType::kStatsReply);
  const std::string json(sreply.payload.begin(), sreply.payload.end());
  EXPECT_NE(json.find("\"tune\""), std::string::npos);
  EXPECT_NE(json.find("\"searches\""), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace nc::serve
