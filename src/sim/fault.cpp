#include "sim/fault.h"

#include <map>
#include <numeric>

namespace nc::sim {

using circuit::GateType;
using circuit::Netlist;

std::string Fault::to_string(const Netlist& netlist) const {
  std::string s = netlist.gate(node).name;
  if (!is_stem())
    s += "->" + netlist.gate(consumer).name + "." + std::to_string(pin);
  s += stuck_value ? " s-a-1" : " s-a-0";
  return s;
}

std::vector<std::size_t> fanout_counts(const Netlist& netlist) {
  std::vector<std::size_t> counts(netlist.size(), 0);
  for (std::size_t g = 0; g < netlist.size(); ++g)
    for (std::size_t f : netlist.gate(g).fanins) ++counts[f];
  for (std::size_t o : netlist.outputs()) ++counts[o];
  return counts;
}

std::vector<Fault> full_fault_list(const Netlist& netlist) {
  const std::vector<std::size_t> fanout = fanout_counts(netlist);
  std::vector<Fault> faults;
  for (std::size_t n = 0; n < netlist.size(); ++n) {
    for (bool sv : {false, true})
      faults.push_back(Fault{n, Netlist::npos, 0, sv});
  }
  for (std::size_t g = 0; g < netlist.size(); ++g) {
    const circuit::Gate& gate = netlist.gate(g);
    for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
      if (fanout[gate.fanins[p]] <= 1) continue;  // same line as the stem
      for (bool sv : {false, true})
        faults.push_back(Fault{gate.fanins[p], g, p, sv});
    }
  }
  return faults;
}

namespace {

/// Union-find over fault ids.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Fault> collapsed_fault_list(const Netlist& netlist) {
  const std::vector<Fault> faults = full_fault_list(netlist);
  const std::vector<std::size_t> fanout = fanout_counts(netlist);

  // Key: (node, consumer, pin, sv) -> fault id.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t, bool>,
           std::size_t>
      id_of;
  for (std::size_t i = 0; i < faults.size(); ++i)
    id_of[{faults[i].node, faults[i].consumer, faults[i].pin,
           faults[i].stuck_value}] = i;

  auto line_fault_id = [&](std::size_t gate, std::size_t pin,
                           bool sv) -> std::size_t {
    const std::size_t src = netlist.gate(gate).fanins[pin];
    if (fanout[src] > 1) return id_of.at({src, gate, pin, sv});
    return id_of.at({src, Netlist::npos, 0, sv});
  };
  auto stem_fault_id = [&](std::size_t node, bool sv) {
    return id_of.at({node, Netlist::npos, 0, sv});
  };

  DisjointSet ds(faults.size());
  for (std::size_t g = 0; g < netlist.size(); ++g) {
    const circuit::Gate& gate = netlist.gate(g);
    switch (gate.type) {
      case GateType::kAnd:
      case GateType::kNand: {
        // Input s-a-0 is equivalent to output s-a-(0 ^ inverting).
        const bool out_sv = gate.type == GateType::kNand;
        for (std::size_t p = 0; p < gate.fanins.size(); ++p)
          ds.merge(line_fault_id(g, p, false), stem_fault_id(g, out_sv));
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        const bool out_sv = gate.type != GateType::kNor;
        for (std::size_t p = 0; p < gate.fanins.size(); ++p)
          ds.merge(line_fault_id(g, p, true), stem_fault_id(g, out_sv));
        break;
      }
      case GateType::kBuf:
        ds.merge(line_fault_id(g, 0, false), stem_fault_id(g, false));
        ds.merge(line_fault_id(g, 0, true), stem_fault_id(g, true));
        break;
      case GateType::kNot:
        ds.merge(line_fault_id(g, 0, false), stem_fault_id(g, true));
        ds.merge(line_fault_id(g, 0, true), stem_fault_id(g, false));
        break;
      default:
        // XOR/XNOR have no stuck-at equivalences; DFFs separate time frames
        // in full-scan testing, so no collapsing across them either.
        break;
    }
  }

  std::vector<Fault> collapsed;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (ds.find(i) == i) collapsed.push_back(faults[i]);
  return collapsed;
}

}  // namespace nc::sim
