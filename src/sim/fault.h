// Single-stuck-at fault model with structural equivalence collapsing.
//
// Faults live on *lines*. A node's output stem carries one pair of faults
// (s-a-0 / s-a-1). Where a node fans out to several consumers, each branch
// (consumer gate, input pin) carries its own pair; a single-fanout
// connection is the same line as the stem and gets no separate faults.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace nc::sim {

struct Fault {
  /// Node driving the faulted line.
  std::size_t node = 0;
  /// Consuming gate for a branch fault, Netlist::npos for a stem fault.
  std::size_t consumer = circuit::Netlist::npos;
  /// Input pin of `consumer` (valid only for branch faults).
  std::size_t pin = 0;
  bool stuck_value = false;

  bool is_stem() const noexcept {
    return consumer == circuit::Netlist::npos;
  }
  bool operator==(const Fault&) const = default;

  /// "G10 s-a-1" or "G10->G14.0 s-a-0".
  std::string to_string(const circuit::Netlist& netlist) const;
};

/// Full (uncollapsed) single-stuck-at list: stems for every node plus
/// branches for every multi-fanout connection.
std::vector<Fault> full_fault_list(const circuit::Netlist& netlist);

/// Equivalence-collapsed list (classic rules: the controlled input fault of
/// an AND/OR/NAND/NOR collapses into the output fault; NOT/BUF/DFF input
/// faults collapse into inverted/equal output faults). One representative
/// per equivalence class, chosen closest to the primary inputs.
std::vector<Fault> collapsed_fault_list(const circuit::Netlist& netlist);

/// Fanout count of every node (how many gate input pins + DFF data pins +
/// PO observations consume it). Used by collapsing and by ATPG.
std::vector<std::size_t> fanout_counts(const circuit::Netlist& netlist);

}  // namespace nc::sim
