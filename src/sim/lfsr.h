// Linear-feedback shift register -- the pseudo-random pattern generator
// behind the BIST context of the paper's introduction: on-chip LFSRs test
// the easy faults cheaply, and the random-pattern-resistant remainder is
// what deterministic (9C-compressed) top-up patterns must cover.
#pragma once

#include <cstdint>

#include "bits/test_set.h"

namespace nc::sim {

/// Galois LFSR over GF(2): the state shifts right and XORs the tap mask
/// whenever the output bit is 1. Never reaches the all-zero state from a
/// non-zero seed.
class Lfsr {
 public:
  /// `width` in [2, 64]; `taps` is the Galois feedback mask (the usual
  /// right-shift constants, e.g. 0xB400 for width 16). The mask must set
  /// the top bit; the all-zero seed is forbidden.
  Lfsr(unsigned width, std::uint64_t taps, std::uint64_t seed = 1);

  /// A maximal-or-near-maximal default polynomial per width.
  static Lfsr standard(unsigned width, std::uint64_t seed = 1);

  unsigned width() const noexcept { return width_; }
  std::uint64_t state() const noexcept { return state_; }

  /// Advances one cycle and returns the output bit (the bit shifted out).
  bool step();

  /// Generates `count` fully specified patterns of `pattern_width` bits by
  /// clocking the LFSR continuously (the serial PRPG feeding a scan chain).
  bits::TestSet generate_patterns(std::size_t count,
                                  std::size_t pattern_width);

 private:
  unsigned width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

}  // namespace nc::sim
