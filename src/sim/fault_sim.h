// Parallel-pattern single-fault stuck-at fault simulator.
//
// Three-valued detection semantics: a pattern detects a fault iff some
// observable line (PO or scan-capture PPO) is provably different -- both
// machines specified, opposite values. X in either machine never counts,
// which matches how a tester compares against expected responses.
#pragma once

#include <cstddef>
#include <vector>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "sim/fault.h"
#include "sim/logic_sim.h"

namespace nc::sim {

struct FaultSimResult {
  /// Per input fault: was it detected by any pattern?
  std::vector<bool> detected;
  /// First detecting pattern index, or npos if undetected.
  std::vector<std::size_t> first_detecting_pattern;

  std::size_t detected_count() const noexcept;
  double coverage_percent() const noexcept;
};

class FaultSimulator {
 public:
  explicit FaultSimulator(const circuit::Netlist& netlist)
      : netlist_(&netlist), sim_(netlist) {}

  /// Simulates all patterns against all faults (64 patterns per pass,
  /// dropping faults once detected).
  FaultSimResult run(const bits::TestSet& patterns,
                     const std::vector<Fault>& faults);

  /// Marks in `alive` (same indexing as `faults`) every fault detected by
  /// the single `pattern`, clearing its bit. Returns how many were dropped.
  /// Used by ATPG for on-the-fly fault dropping.
  std::size_t drop_detected(const bits::TritVector& pattern,
                            const std::vector<Fault>& faults,
                            std::vector<bool>& alive);

 private:
  const circuit::Netlist* netlist_;
  ParallelSim sim_;
};

}  // namespace nc::sim
