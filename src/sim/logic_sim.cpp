#include "sim/logic_sim.h"

#include <stdexcept>

namespace nc::sim {

using bits::Trit;
using circuit::GateType;
using circuit::Netlist;

namespace {

Trit trit_of(const Val64& v, unsigned slot) noexcept {
  if ((v.one >> slot) & 1u) return Trit::One;
  if ((v.zero >> slot) & 1u) return Trit::Zero;
  return Trit::X;
}

Val64 fold_and(const Val64& a, const Val64& b) noexcept {
  return {a.one & b.one, a.zero | b.zero};
}
Val64 fold_or(const Val64& a, const Val64& b) noexcept {
  return {a.one | b.one, a.zero & b.zero};
}
Val64 fold_xor(const Val64& a, const Val64& b) noexcept {
  return {(a.one & b.zero) | (a.zero & b.one),
          (a.zero & b.zero) | (a.one & b.one)};
}

}  // namespace

ParallelSim::ParallelSim(const Netlist& netlist)
    : netlist_(&netlist),
      order_(netlist.levelize()),
      values_(netlist.size()),
      pattern_values_(netlist.pattern_width()) {}

std::size_t ParallelSim::load(const bits::TestSet& ts, std::size_t first) {
  if (ts.pattern_length() != netlist_->pattern_width())
    throw std::invalid_argument("pattern width does not match circuit");
  loaded_ = std::min<std::size_t>(64, ts.pattern_count() - first);
  for (std::size_t col = 0; col < ts.pattern_length(); ++col) {
    Val64 v = Val64::all_x();
    for (std::size_t p = 0; p < loaded_; ++p) {
      switch (ts.at(first + p, col)) {
        case Trit::One: v.one |= 1ull << p; break;
        case Trit::Zero: v.zero |= 1ull << p; break;
        case Trit::X: break;
      }
    }
    pattern_values_[col] = v;
  }
  return loaded_;
}

Val64 ParallelSim::eval_gate(std::size_t g, std::size_t fault_consumer,
                             std::size_t fault_pin, const Val64& stuck) const {
  const circuit::Gate& gate = netlist_->gate(g);
  auto in = [&](std::size_t pin) {
    if (g == fault_consumer && pin == fault_pin) return stuck;
    return values_[gate.fanins[pin]];
  };
  switch (gate.type) {
    case GateType::kBuf: return in(0);
    case GateType::kNot: return in(0).inverted();
    case GateType::kAnd:
    case GateType::kNand: {
      Val64 acc = Val64::constant(true);
      for (std::size_t p = 0; p < gate.fanins.size(); ++p)
        acc = fold_and(acc, in(p));
      return gate.type == GateType::kNand ? acc.inverted() : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Val64 acc = Val64::constant(false);
      for (std::size_t p = 0; p < gate.fanins.size(); ++p)
        acc = fold_or(acc, in(p));
      return gate.type == GateType::kNor ? acc.inverted() : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Val64 acc = Val64::constant(false);
      for (std::size_t p = 0; p < gate.fanins.size(); ++p)
        acc = fold_xor(acc, in(p));
      return gate.type == GateType::kXnor ? acc.inverted() : acc;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;  // handled by caller
  }
  return Val64::all_x();
}

void ParallelSim::run() {
  run_with_fault(Netlist::npos, Netlist::npos, Netlist::npos, false);
}

void ParallelSim::run_with_fault(std::size_t node, std::size_t consumer,
                                 std::size_t pin, bool stuck_value) {
  const Val64 stuck = Val64::constant(stuck_value);
  // Pattern columns: PIs first, then scan cells, matching TestSet layout.
  std::size_t col = 0;
  for (std::size_t i : netlist_->inputs()) values_[i] = pattern_values_[col++];
  for (std::size_t f : netlist_->flops()) values_[f] = pattern_values_[col++];

  const bool stem_fault = node != Netlist::npos && consumer == Netlist::npos;
  if (stem_fault) values_[node] = stuck;

  const std::size_t fault_consumer =
      (node != Netlist::npos && consumer != Netlist::npos) ? consumer
                                                           : Netlist::npos;
  for (std::size_t g : order_) {
    const GateType t = netlist_->gate(g).type;
    if (t == GateType::kInput || t == GateType::kDff) {
      if (stem_fault && g == node) values_[g] = stuck;
      continue;
    }
    values_[g] = eval_gate(g, fault_consumer, pin, stuck);
    if (stem_fault && g == node) values_[g] = stuck;
  }

  captured_.resize(netlist_->flops().size());
  for (std::size_t i = 0; i < netlist_->flops().size(); ++i) {
    const std::size_t flop = netlist_->flops()[i];
    if (fault_consumer == flop && pin == 0)
      captured_[i] = stuck;
    else
      captured_[i] = values_[netlist_->gate(flop).fanins[0]];
  }
}

std::uint64_t ParallelSim::diff_mask(const std::vector<Val64>& good) const {
  std::uint64_t mask = 0;
  auto observe = [&](const Val64& g, const Val64& f) {
    mask |= (g.one & f.zero) | (g.zero & f.one);
  };
  for (std::size_t o : netlist_->outputs()) observe(good[o], values_[o]);
  // PPOs: scan cells capture the flop data line (with any branch override).
  for (std::size_t i = 0; i < netlist_->flops().size(); ++i) {
    const std::size_t line = netlist_->gate(netlist_->flops()[i]).fanins[0];
    observe(good[line], captured_[i]);
  }
  if (loaded_ < 64) mask &= (1ull << loaded_) - 1;
  return mask;
}

std::vector<Trit> simulate_pattern(const Netlist& netlist,
                                   const bits::TritVector& pattern) {
  bits::TestSet ts(1, pattern.size());
  ts.set_pattern(0, pattern);
  ParallelSim sim(netlist);
  sim.load(ts, 0);
  sim.run();
  std::vector<Trit> out(netlist.size());
  for (std::size_t i = 0; i < netlist.size(); ++i)
    out[i] = trit_of(sim.value(i), 0);
  return out;
}

bits::TritVector extract_response(const Netlist& netlist,
                                  const std::vector<Trit>& values) {
  bits::TritVector r;
  for (std::size_t o : netlist.outputs()) r.push_back(values[o]);
  for (std::size_t f : netlist.flops())
    r.push_back(values[netlist.gate(f).fanins[0]]);
  return r;
}

}  // namespace nc::sim
