#include "sim/fault_sim.h"

#include <bit>

namespace nc::sim {

using circuit::Netlist;

std::size_t FaultSimResult::detected_count() const noexcept {
  std::size_t n = 0;
  for (bool d : detected) n += d ? 1 : 0;
  return n;
}

double FaultSimResult::coverage_percent() const noexcept {
  if (detected.empty()) return 0.0;
  return 100.0 * static_cast<double>(detected_count()) /
         static_cast<double>(detected.size());
}

FaultSimResult FaultSimulator::run(const bits::TestSet& patterns,
                                   const std::vector<Fault>& faults) {
  FaultSimResult result;
  result.detected.assign(faults.size(), false);
  result.first_detecting_pattern.assign(faults.size(), Netlist::npos);

  for (std::size_t first = 0; first < patterns.pattern_count(); first += 64) {
    const std::size_t loaded = sim_.load(patterns, first);
    sim_.run();
    const std::vector<Val64> good = sim_.values();
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (result.detected[f]) continue;
      const Fault& fault = faults[f];
      sim_.run_with_fault(fault.node, fault.consumer, fault.pin,
                          fault.stuck_value);
      const std::uint64_t mask = sim_.diff_mask(good);
      if (mask != 0) {
        result.detected[f] = true;
        result.first_detecting_pattern[f] =
            first + static_cast<std::size_t>(std::countr_zero(mask));
      }
    }
    if (loaded < 64) break;
  }
  return result;
}

std::size_t FaultSimulator::drop_detected(const bits::TritVector& pattern,
                                          const std::vector<Fault>& faults,
                                          std::vector<bool>& alive) {
  bits::TestSet ts(1, pattern.size());
  ts.set_pattern(0, pattern);
  sim_.load(ts, 0);
  sim_.run();
  const std::vector<Val64> good = sim_.values();
  std::size_t dropped = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (!alive[f]) continue;
    sim_.run_with_fault(faults[f].node, faults[f].consumer, faults[f].pin,
                        faults[f].stuck_value);
    if (sim_.diff_mask(good) != 0) {
      alive[f] = false;
      ++dropped;
    }
  }
  return dropped;
}

}  // namespace nc::sim
