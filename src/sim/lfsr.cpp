#include "sim/lfsr.h"

#include <bit>
#include <stdexcept>

namespace nc::sim {

Lfsr::Lfsr(unsigned width, std::uint64_t taps, std::uint64_t seed)
    : width_(width),
      taps_(taps),
      mask_(width >= 64 ? ~0ull : (1ull << width) - 1),
      state_(seed & mask_) {
  if (width_ < 2 || width_ > 64)
    throw std::invalid_argument("LFSR width must be 2..64");
  if ((taps_ & ~mask_) != 0)
    throw std::invalid_argument("LFSR taps exceed width");
  if ((taps_ & (1ull << (width_ - 1))) == 0)
    throw std::invalid_argument("Galois LFSR mask must set the top bit");
  if (state_ == 0)
    throw std::invalid_argument("LFSR seed must be non-zero");
}

Lfsr Lfsr::standard(unsigned width, std::uint64_t seed) {
  // Primitive polynomials for common widths; a serviceable dense default
  // elsewhere (period is large even when not maximal).
  std::uint64_t taps;
  switch (width) {
    case 4: taps = 0b1001; break;                       // x^4 + x + 1
    case 8: taps = 0b10111000; break;                   // x^8+x^6+x^5+x^4+1
    case 16: taps = 0xB400; break;                      // x^16+x^14+x^13+x^11+1
    case 24: taps = 0xE10000; break;
    case 32: taps = 0xA3000000; break;
    default:
      taps = (1ull << (width - 1)) | (1ull << (width / 2)) | 1ull;
      break;
  }
  return Lfsr(width, taps, seed);
}

bool Lfsr::step() {
  // Right-shift Galois form: the common tap-mask constants (0xB400 for
  // width 16, etc.) are Galois masks, and a Galois LFSR never decays to the
  // zero state from a non-zero seed.
  const bool out = state_ & 1ull;
  state_ >>= 1;
  if (out) state_ ^= taps_;
  return out;
}

bits::TestSet Lfsr::generate_patterns(std::size_t count,
                                      std::size_t pattern_width) {
  bits::TestSet ts(count, pattern_width);
  for (std::size_t p = 0; p < count; ++p)
    for (std::size_t c = 0; c < pattern_width; ++c)
      ts.set(p, c, bits::trit_from_bit(step()));
  return ts;
}

}  // namespace nc::sim
