#include "sim/misr.h"

#include <stdexcept>

#include "sim/logic_sim.h"

namespace nc::sim {

using bits::Trit;
using bits::TritVector;

Misr::Misr(unsigned width, std::uint64_t feedback)
    : width_(width),
      feedback_(feedback),
      mask_(width >= 64 ? ~0ull : (1ull << width) - 1) {
  if (width_ < 1 || width_ > 64)
    throw std::invalid_argument("MISR width must be 1..64");
  if ((feedback_ & ~mask_) != 0)
    throw std::invalid_argument("MISR feedback taps exceed width");
}

Misr Misr::standard(unsigned width) {
  // Dense, deterministic tap set: top bit plus a spread of lower taps.
  std::uint64_t taps = 1ull << (width - 1);
  taps |= 1ull;
  if (width > 3) taps |= 1ull << (width / 2);
  if (width > 5) taps |= 1ull << (width / 3);
  return Misr(width, taps);
}

void Misr::absorb(const TritVector& slice) {
  if (slice.size() > width_)
    throw std::invalid_argument("MISR slice wider than the register");
  std::uint64_t input = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const Trit t = slice.get(i);
    if (!bits::is_care(t))
      throw std::invalid_argument("MISR input must be fully specified");
    if (t == Trit::One) input |= 1ull << i;
  }
  const bool feedback_bit = (state_ >> (width_ - 1)) & 1ull;
  state_ = (state_ << 1) & mask_;
  if (feedback_bit) state_ ^= feedback_;
  state_ ^= input;
}

void Misr::absorb_masked(const TritVector& slice) {
  if (slice.size() > width_)
    throw std::invalid_argument("MISR slice wider than the register");
  std::uint64_t input = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const Trit t = slice.get(i);
    if (!bits::is_care(t)) {
      poisoned_ = true;
      continue;
    }
    if (t == Trit::One) input |= 1ull << i;
  }
  const bool feedback_bit = (state_ >> (width_ - 1)) & 1ull;
  state_ = (state_ << 1) & mask_;
  if (feedback_bit) state_ ^= feedback_;
  state_ ^= input;
}

namespace {

std::uint64_t run_signature(const circuit::Netlist& netlist,
                            const bits::TestSet& patterns, Misr misr,
                            const Fault* fault) {
  ParallelSim sim(netlist);
  bits::TestSet one(1, patterns.pattern_length());
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    one.set_pattern(0, patterns.pattern(p));
    sim.load(one, 0);
    if (fault == nullptr)
      sim.run();
    else
      sim.run_with_fault(fault->node, fault->consumer, fault->pin,
                         fault->stuck_value);
    // Extract the response in slot 0. Branch-faulted scan captures are
    // honoured by reading the values the way diff_mask does.
    TritVector response;
    auto trit_at = [&](const Val64& v) {
      if (v.one & 1ull) return Trit::One;
      if (v.zero & 1ull) return Trit::Zero;
      return Trit::X;
    };
    for (std::size_t o : netlist.outputs())
      response.push_back(trit_at(sim.value(o)));
    for (std::size_t f = 0; f < netlist.flops().size(); ++f)
      response.push_back(trit_at(sim.captured(f)));

    for (std::size_t at = 0; at < response.size(); at += misr.width())
      misr.absorb(response.slice(at, misr.width()));
  }
  return misr.signature();
}

}  // namespace

std::uint64_t good_signature(const circuit::Netlist& netlist,
                             const bits::TestSet& patterns, Misr misr) {
  return run_signature(netlist, patterns, misr, nullptr);
}

std::uint64_t faulty_signature(const circuit::Netlist& netlist,
                               const bits::TestSet& patterns, Misr misr,
                               const Fault& fault) {
  return run_signature(netlist, patterns, misr, &fault);
}

}  // namespace nc::sim
