// Multiple-input signature register (MISR) for response compaction.
//
// The paper's context (Section I) is an ATE with limited memory on both the
// stimulus and the response side: stimuli are compressed with 9C, responses
// are compacted on chip into a signature. This module provides the standard
// LFSR-based MISR: every cycle the register shifts with a characteristic-
// polynomial feedback while XOR-ing one response slice into its taps.
#pragma once

#include <cstdint>

#include "bits/test_set.h"
#include "bits/trit_vector.h"
#include "circuit/netlist.h"
#include "sim/fault.h"

namespace nc::sim {

class Misr {
 public:
  /// `width` in [1, 64]; `feedback` is the characteristic polynomial's tap
  /// mask (bit i set => state bit i XORs the feedback bit).
  Misr(unsigned width, std::uint64_t feedback);

  /// A MISR over x^width with a fixed dense primitive-style tap set --
  /// adequate for aliasing experiments, deterministic across runs.
  static Misr standard(unsigned width);

  unsigned width() const noexcept { return width_; }
  std::uint64_t signature() const noexcept { return state_; }
  void reset(std::uint64_t seed = 0) noexcept {
    state_ = seed;
    poisoned_ = false;
  }

  /// Absorbs one response word: `slice` must be fully specified and at most
  /// `width` trits wide (bit i of the slice XORs into state bit i).
  /// Throws std::invalid_argument on X or oversize input.
  void absorb(const bits::TritVector& slice);

  /// X-masking absorb: care trits behave exactly like absorb(); an X trit
  /// contributes nothing to the state but permanently sets poisoned().
  /// The register keeps shifting so pattern alignment is preserved, but a
  /// poisoned signature can no longer support a pass/fail verdict -- the
  /// MISR has no per-bit X story, which is exactly the weakness X-codes
  /// fix. Still throws on an oversize slice.
  void absorb_masked(const bits::TritVector& slice);

  /// True once any X reached absorb_masked() since the last reset().
  bool poisoned() const noexcept { return poisoned_; }

 private:
  unsigned width_;
  std::uint64_t feedback_;
  std::uint64_t mask_;
  std::uint64_t state_ = 0;
  bool poisoned_ = false;
};

/// Signature of a full test session: simulates every (fully specified)
/// pattern of `patterns` on the fault-free circuit and absorbs each
/// response (POs then PPOs, chunked into MISR words). Throws if any
/// response bit is X -- random-fill the patterns first.
std::uint64_t good_signature(const circuit::Netlist& netlist,
                             const bits::TestSet& patterns, Misr misr);

/// Same, with `fault` injected. Comparing against good_signature models
/// signature-based pass/fail on the tester.
std::uint64_t faulty_signature(const circuit::Netlist& netlist,
                               const bits::TestSet& patterns, Misr misr,
                               const Fault& fault);

}  // namespace nc::sim
