// Three-valued (0/1/X) logic simulation of a netlist's combinational core.
//
// Patterns follow the full-scan convention of `Netlist`: one trit per
// primary input followed by one per scan cell. Responses are one trit per
// primary output followed by one per DFF data input (the pseudo primary
// outputs captured into the scan chain).
//
// Two engines share the same semantics:
//  * `simulate_pattern` -- scalar reference implementation;
//  * `ParallelSim`      -- 64 patterns per pass in dual-rail encoding,
//    used by the fault simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/test_set.h"
#include "bits/trit_vector.h"
#include "circuit/netlist.h"

namespace nc::sim {

/// Simulates one pattern; returns the value of every node.
std::vector<bits::Trit> simulate_pattern(const circuit::Netlist& netlist,
                                         const bits::TritVector& pattern);

/// Extracts the response (POs then PPOs) from a node-value vector.
bits::TritVector extract_response(const circuit::Netlist& netlist,
                                  const std::vector<bits::Trit>& values);

/// Dual-rail value of up to 64 patterns: bit i of `one` set iff pattern i is
/// 1, of `zero` iff 0; neither bit -> X. (`one & zero` never both set.)
struct Val64 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  static Val64 all_x() noexcept { return {0, 0}; }
  static Val64 constant(bool v) noexcept {
    return v ? Val64{~0ull, 0} : Val64{0, ~0ull};
  }
  Val64 inverted() const noexcept { return {zero, one}; }
  bool operator==(const Val64&) const = default;
};

/// Batched 3-valued simulator. Reusable across pattern groups; the fault
/// simulator re-runs it with value overrides at the fault site.
class ParallelSim {
 public:
  explicit ParallelSim(const circuit::Netlist& netlist);

  /// Loads up to 64 consecutive patterns of `ts` starting at `first`.
  /// Returns the number actually loaded.
  std::size_t load(const bits::TestSet& ts, std::size_t first);

  /// Good-machine simulation of the loaded patterns.
  void run();

  /// Faulty-machine simulation with a stuck line. `consumer == npos` faults
  /// the node's stem (seen by all consumers); otherwise only the fanin `pin`
  /// of gate `consumer` sees the stuck value.
  void run_with_fault(std::size_t node, std::size_t consumer, std::size_t pin,
                      bool stuck_value);

  std::size_t loaded() const noexcept { return loaded_; }
  const Val64& value(std::size_t node) const noexcept { return values_[node]; }

  /// Value captured into scan cell `i` (index into Netlist::flops()) by the
  /// last run, including any branch-fault override on the flop's data pin.
  const Val64& captured(std::size_t i) const noexcept { return captured_[i]; }

  /// Bitmask of loaded patterns whose response provably differs from
  /// `good` (both machines specified, opposite values) at some PO/PPO.
  std::uint64_t diff_mask(const std::vector<Val64>& good) const;

  /// Snapshot of all node values (for diff_mask after a later faulty run).
  const std::vector<Val64>& values() const noexcept { return values_; }

 private:
  Val64 eval_gate(std::size_t g, std::size_t fault_consumer,
                  std::size_t fault_pin, const Val64& stuck) const;

  const circuit::Netlist* netlist_;
  std::vector<std::size_t> order_;
  std::vector<Val64> values_;
  std::vector<Val64> pattern_values_;  // PI/scan-cell values of loaded rows
  /// Value captured by each scan cell: the flop's data-line value including
  /// a branch-fault override on the flop's data pin (a stem read would miss
  /// faults on that final branch).
  std::vector<Val64> captured_;
  std::size_t loaded_ = 0;
};

}  // namespace nc::sim
