// ATPG driver: PODEM over a collapsed fault list with on-the-fly fault
// dropping, static cube compaction, and fill utilities.
//
// The output is a `TestSet` of *cubes* -- patterns with X bits -- which is
// the precomputed test data TD that the 9C technique compresses. The paper's
// flow (Section I): a core vendor runs ATPG, don't-cares survive into TD,
// the compressor exploits them, and leftover X's can later be random-filled
// to catch non-modeled faults.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "sim/fault.h"

namespace nc::atpg {

struct AtpgConfig {
  std::size_t max_backtracks = 4096;
  /// Fault-simulate each new cube and drop all faults it detects.
  bool fault_dropping = true;
  /// Greedily merge compatible cubes after generation (static compaction).
  bool compact = true;
};

struct AtpgResult {
  bits::TestSet tests;
  std::size_t target_faults = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;

  /// Fault efficiency: (detected + untestable) / targets.
  double efficiency_percent() const noexcept {
    return target_faults == 0
               ? 0.0
               : 100.0 * static_cast<double>(detected + untestable) /
                     static_cast<double>(target_faults);
  }
};

/// Runs PODEM on every fault of `faults` (typically the collapsed list).
AtpgResult generate_tests(const circuit::Netlist& netlist,
                          const std::vector<sim::Fault>& faults,
                          const AtpgConfig& config = {});

/// Convenience: collapsed fault list + generation in one call.
AtpgResult generate_tests(const circuit::Netlist& netlist,
                          const AtpgConfig& config = {});

/// Static compaction: greedily merges pairwise-compatible cubes (two cubes
/// merge when no position has opposite care values); the merged cube keeps
/// the union of care bits. Detection is preserved because every original
/// cube is covered by its merge.
bits::TestSet compact_merge(const bits::TestSet& cubes);

/// Reverse-order fault-simulation compaction: fault-simulates the cubes in
/// reverse generation order with fault dropping and keeps only the cubes
/// that detect at least one not-yet-detected fault (later cubes were
/// generated for harder faults and tend to cover the earlier ones).
/// 3-valued detection semantics, so coverage never decreases.
bits::TestSet compact_reverse_order(const circuit::Netlist& netlist,
                                    const std::vector<sim::Fault>& faults,
                                    const bits::TestSet& cubes);

/// Replaces every X with a pseudo-random bit (the default ATPG behaviour the
/// paper contrasts with: good for non-modeled defects, bad for compression).
bits::TestSet random_fill(const bits::TestSet& cubes, std::uint64_t seed);

}  // namespace nc::atpg
