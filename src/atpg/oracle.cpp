#include "atpg/oracle.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/logic_sim.h"

namespace nc::atpg {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

std::optional<TritVector> oracle_find_test(const circuit::Netlist& netlist,
                                           const sim::Fault& fault,
                                           std::size_t max_width) {
  const std::size_t width = netlist.pattern_width();
  if (width > max_width)
    throw std::invalid_argument("oracle limited to small circuits");

  sim::ParallelSim good(netlist);
  sim::ParallelSim bad(netlist);
  TestSet batch(64, width);
  const std::uint64_t total = 1ull << width;
  for (std::uint64_t base = 0; base < total; base += 64) {
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(64, total - base));
    for (std::size_t slot = 0; slot < count; ++slot)
      for (std::size_t col = 0; col < width; ++col)
        batch.set(slot, col,
                  bits::trit_from_bit(((base + slot) >> col) & 1ull));
    good.load(batch, 0);
    good.run();
    bad.load(batch, 0);
    bad.run_with_fault(fault.node, fault.consumer, fault.pin,
                       fault.stuck_value);
    std::uint64_t mask = bad.diff_mask(good.values());
    if (count < 64) mask &= (count == 64) ? ~0ull : ((1ull << count) - 1);
    if (mask != 0) {
      const auto slot = static_cast<std::size_t>(std::countr_zero(mask));
      return batch.pattern(slot);
    }
  }
  return std::nullopt;
}

}  // namespace nc::atpg
