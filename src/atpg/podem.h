// PODEM (path-oriented decision making) test generation for one stuck-at
// fault on the full-scan combinational core.
//
// The engine keeps two 3-valued planes -- good machine and faulty machine --
// rather than the textbook 5-valued algebra; the composite D / D-bar appear
// wherever the planes are both specified and differ. PODEM decisions assign
// pattern columns (PIs and scan cells) only, so the returned test is a
// *cube*: every column not forced by the search stays X. Those X bits are
// exactly what the 9C compressor exploits.
#pragma once

#include <cstddef>
#include <optional>

#include "bits/trit_vector.h"
#include "circuit/netlist.h"
#include "sim/fault.h"

namespace nc::atpg {

enum class PodemOutcome {
  kTestFound,
  kUntestable,  // search space exhausted: provably redundant fault
  kAborted,     // backtrack limit hit
};

struct PodemResult {
  PodemOutcome outcome = PodemOutcome::kAborted;
  /// Test cube (pattern_width trits) when outcome == kTestFound.
  bits::TritVector cube;
  std::size_t backtracks = 0;
};

class Podem {
 public:
  explicit Podem(const circuit::Netlist& netlist, std::size_t max_backtracks = 4096);

  /// Attempts to generate a cube detecting `fault`.
  PodemResult generate(const sim::Fault& fault);

 private:
  struct Planes;  // good/faulty node values

  const circuit::Netlist* netlist_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> column_of_node_;  // pattern column per PI/DFF node
  std::vector<std::vector<std::size_t>> consumers_;  // combinational fanout
  std::vector<bool> observed_;  // node is a PO or feeds a scan cell
  /// SCOAP-style controllability costs (effort to set a line to 0 / 1),
  /// used by backtrace to pick the hardest/easiest input.
  std::vector<unsigned> cc0_, cc1_;
  std::size_t max_backtracks_;
};

}  // namespace nc::atpg
