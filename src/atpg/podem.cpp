#include "atpg/podem.h"

#include <algorithm>
#include <vector>

namespace nc::atpg {

using bits::Trit;
using circuit::GateType;
using circuit::Netlist;
using sim::Fault;

namespace {

Trit invert(Trit t) noexcept {
  if (t == Trit::Zero) return Trit::One;
  if (t == Trit::One) return Trit::Zero;
  return Trit::X;
}

bool is_inverting(GateType t) noexcept {
  return t == GateType::kNand || t == GateType::kNor || t == GateType::kNot ||
         t == GateType::kXnor;
}

/// 3-valued gate evaluation over an input accessor.
template <typename GetIn>
Trit eval3(GateType type, std::size_t arity, GetIn in) {
  switch (type) {
    case GateType::kBuf: return in(0);
    case GateType::kNot: return invert(in(0));
    case GateType::kAnd:
    case GateType::kNand: {
      Trit acc = Trit::One;
      for (std::size_t p = 0; p < arity; ++p) {
        const Trit v = in(p);
        if (v == Trit::Zero) { acc = Trit::Zero; break; }
        if (v == Trit::X) acc = Trit::X;
      }
      return type == GateType::kNand ? invert(acc) : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Trit acc = Trit::Zero;
      for (std::size_t p = 0; p < arity; ++p) {
        const Trit v = in(p);
        if (v == Trit::One) { acc = Trit::One; break; }
        if (v == Trit::X) acc = Trit::X;
      }
      return type == GateType::kNor ? invert(acc) : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = type == GateType::kXnor;
      for (std::size_t p = 0; p < arity; ++p) {
        const Trit v = in(p);
        if (v == Trit::X) return Trit::X;
        parity ^= (v == Trit::One);
      }
      return bits::trit_from_bit(parity);
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  return Trit::X;
}

}  // namespace

struct Podem::Planes {
  std::vector<Trit> good;
  std::vector<Trit> faulty;
};

Podem::Podem(const Netlist& netlist, std::size_t max_backtracks)
    : netlist_(&netlist),
      order_(netlist.levelize()),
      column_of_node_(netlist.size(), Netlist::npos),
      consumers_(netlist.size()),
      observed_(netlist.size(), false),
      max_backtracks_(max_backtracks) {
  std::size_t col = 0;
  for (std::size_t i : netlist.inputs()) column_of_node_[i] = col++;
  for (std::size_t f : netlist.flops()) column_of_node_[f] = col++;
  for (std::size_t g = 0; g < netlist.size(); ++g) {
    const circuit::Gate& gate = netlist.gate(g);
    if (gate.type == GateType::kInput) continue;
    if (gate.type == GateType::kDff) {
      observed_[gate.fanins[0]] = true;  // captured into the scan chain
      continue;
    }
    for (std::size_t f : gate.fanins) consumers_[f].push_back(g);
  }
  for (std::size_t o : netlist.outputs()) observed_[o] = true;

  // SCOAP controllability in topological order. Scan makes PIs and scan
  // cells equally cheap (cost 1).
  cc0_.assign(netlist.size(), 1);
  cc1_.assign(netlist.size(), 1);
  for (std::size_t n : order_) {
    const circuit::Gate& gate = netlist.gate(n);
    if (gate.type == GateType::kInput || gate.type == GateType::kDff) continue;
    auto sum1 = [&] {
      unsigned s = 1;
      for (std::size_t f : gate.fanins) s += cc1_[f];
      return s;
    };
    auto sum0 = [&] {
      unsigned s = 1;
      for (std::size_t f : gate.fanins) s += cc0_[f];
      return s;
    };
    auto min0 = [&] {
      unsigned m = ~0u;
      for (std::size_t f : gate.fanins) m = std::min(m, cc0_[f]);
      return m + 1;
    };
    auto min1 = [&] {
      unsigned m = ~0u;
      for (std::size_t f : gate.fanins) m = std::min(m, cc1_[f]);
      return m + 1;
    };
    switch (gate.type) {
      case GateType::kBuf:
        cc0_[n] = cc0_[gate.fanins[0]] + 1;
        cc1_[n] = cc1_[gate.fanins[0]] + 1;
        break;
      case GateType::kNot:
        cc0_[n] = cc1_[gate.fanins[0]] + 1;
        cc1_[n] = cc0_[gate.fanins[0]] + 1;
        break;
      case GateType::kAnd:
        cc1_[n] = sum1();
        cc0_[n] = min0();
        break;
      case GateType::kNand:
        cc0_[n] = sum1();
        cc1_[n] = min0();
        break;
      case GateType::kOr:
        cc0_[n] = sum0();
        cc1_[n] = min1();
        break;
      case GateType::kNor:
        cc1_[n] = sum0();
        cc0_[n] = min1();
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        // Two-input formula folded left to right for wider gates.
        unsigned c0 = cc0_[gate.fanins[0]], c1 = cc1_[gate.fanins[0]];
        for (std::size_t p = 1; p < gate.fanins.size(); ++p) {
          const unsigned b0 = cc0_[gate.fanins[p]], b1 = cc1_[gate.fanins[p]];
          const unsigned n0 = std::min(c0 + b0, c1 + b1) + 1;
          const unsigned n1 = std::min(c1 + b0, c0 + b1) + 1;
          c0 = n0;
          c1 = n1;
        }
        cc0_[n] = gate.type == GateType::kXor ? c0 : c1;
        cc1_[n] = gate.type == GateType::kXor ? c1 : c0;
        break;
      }
      case GateType::kInput:
      case GateType::kDff:
        break;
    }
  }
}

PodemResult Podem::generate(const Fault& fault) {
  const Netlist& nl = *netlist_;
  const Trit stuck = bits::trit_from_bit(fault.stuck_value);
  const Trit activate_value = invert(stuck);

  bits::TritVector cube(nl.pattern_width(), Trit::X);
  Planes planes{std::vector<Trit>(nl.size(), Trit::X),
                std::vector<Trit>(nl.size(), Trit::X)};

  // Faulty-machine value of gate `g`'s input `pin`, honouring branch faults.
  auto faulty_in = [&](std::size_t g, std::size_t pin) {
    if (!fault.is_stem() && g == fault.consumer && pin == fault.pin)
      return stuck;
    return planes.faulty[nl.gate(g).fanins[pin]];
  };

  auto imply = [&] {
    for (std::size_t n : order_) {
      const circuit::Gate& gate = nl.gate(n);
      if (gate.type == GateType::kInput || gate.type == GateType::kDff) {
        const Trit v = cube.get(column_of_node_[n]);
        planes.good[n] = v;
        planes.faulty[n] = v;
      } else {
        planes.good[n] = eval3(gate.type, gate.fanins.size(),
                               [&](std::size_t p) {
                                 return planes.good[gate.fanins[p]];
                               });
        planes.faulty[n] = eval3(gate.type, gate.fanins.size(),
                                 [&](std::size_t p) { return faulty_in(n, p); });
      }
      if (fault.is_stem() && n == fault.node) planes.faulty[n] = stuck;
    }
  };

  // Composite error (D or D-bar) on a line: both planes specified, opposite.
  auto is_error = [](Trit g, Trit f) {
    return bits::is_care(g) && bits::is_care(f) && g != f;
  };

  auto error_observed = [&] {
    for (std::size_t o : nl.outputs())
      if (is_error(planes.good[o], planes.faulty[o])) return true;
    for (std::size_t flop : nl.flops()) {
      const Trit g = planes.good[nl.gate(flop).fanins[0]];
      if (is_error(g, faulty_in(flop, 0))) return true;
    }
    return false;
  };

  // X-path check: can node `from` (whose value is not fully specified)
  // still reach an observation point through not-fully-specified nodes?
  std::vector<bool> xvisited(nl.size(), false);
  auto is_xish = [&](std::size_t n) {
    return planes.good[n] == Trit::X || planes.faulty[n] == Trit::X;
  };
  auto xpath_to_observation = [&](std::size_t from) {
    std::fill(xvisited.begin(), xvisited.end(), false);
    std::vector<std::size_t> worklist = {from};
    xvisited[from] = true;
    while (!worklist.empty()) {
      const std::size_t n = worklist.back();
      worklist.pop_back();
      if (observed_[n]) return true;
      for (std::size_t c : consumers_[n]) {
        if (xvisited[c] || !is_xish(c)) continue;
        xvisited[c] = true;
        worklist.push_back(c);
      }
    }
    return false;
  };

  // Objective: activate the fault, else advance the D-frontier.
  struct Objective {
    std::size_t node;
    Trit value;
    bool found;
  };
  auto objective = [&]() -> Objective {
    if (planes.good[fault.node] == Trit::X)
      return {fault.node, activate_value, true};
    // D-frontier: a gate whose output composite is not yet an error but some
    // input carries one, and whose output can still reach an observation
    // point through unspecified logic (X-path check). Set one of its X
    // inputs to the gate's non-controlling value.
    for (std::size_t g : order_) {
      const circuit::Gate& gate = nl.gate(g);
      if (gate.type == GateType::kInput || gate.type == GateType::kDff)
        continue;
      if (is_error(planes.good[g], planes.faulty[g])) continue;
      if (bits::is_care(planes.good[g]) && bits::is_care(planes.faulty[g]))
        continue;  // fully specified, no error: fault blocked here
      bool has_error_input = false;
      for (std::size_t p = 0; p < gate.fanins.size(); ++p)
        if (is_error(planes.good[gate.fanins[p]], faulty_in(g, p))) {
          has_error_input = true;
          break;
        }
      if (!has_error_input) continue;
      if (!xpath_to_observation(g)) continue;
      for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
        if (planes.good[gate.fanins[p]] != Trit::X) continue;
        Trit noncontrolling;
        switch (gate.type) {
          case GateType::kAnd:
          case GateType::kNand: noncontrolling = Trit::One; break;
          case GateType::kOr:
          case GateType::kNor: noncontrolling = Trit::Zero; break;
          default: noncontrolling = Trit::Zero; break;  // XOR: any value
        }
        return {gate.fanins[p], noncontrolling, true};
      }
    }
    return {0, Trit::X, false};
  };

  // Backtrace an objective to an unassigned pattern column, steering by
  // controllability: when every input must take the value, descend into the
  // hardest one (fail fast); when one input suffices, take the easiest.
  auto backtrace = [&](std::size_t node, Trit value)
      -> std::pair<std::size_t, Trit> {
    while (column_of_node_[node] == Netlist::npos) {
      const circuit::Gate& gate = nl.gate(node);
      if (is_inverting(gate.type)) value = invert(value);
      // After inversion, `value` is the target for the underlying AND/OR
      // core. all-inputs case: AND needs 1, OR needs 0.
      bool want_all = false;
      switch (gate.type) {
        case GateType::kAnd:
        case GateType::kNand: want_all = value == Trit::One; break;
        case GateType::kOr:
        case GateType::kNor: want_all = value == Trit::Zero; break;
        default: break;
      }
      auto cost = [&](std::size_t f) {
        if (gate.type == GateType::kXor || gate.type == GateType::kXnor)
          return std::min(cc0_[f], cc1_[f]);
        return value == Trit::One ? cc1_[f] : cc0_[f];
      };
      std::size_t next = Netlist::npos;
      for (std::size_t f : gate.fanins) {
        if (planes.good[f] != Trit::X) continue;
        if (next == Netlist::npos ||
            (want_all ? cost(f) > cost(next) : cost(f) < cost(next)))
          next = f;
      }
      if (next == Netlist::npos) return {Netlist::npos, Trit::X};
      node = next;
    }
    return {column_of_node_[node], value};
  };

  struct Decision {
    std::size_t column;
    Trit value;
    bool flipped;
  };
  std::vector<Decision> stack;
  PodemResult result;

  imply();
  while (true) {
    if (error_observed()) {
      result.outcome = PodemOutcome::kTestFound;
      result.cube = cube;
      return result;
    }

    bool need_backtrack = false;
    const Trit site = planes.good[fault.node];
    if (bits::is_care(site) && site == stuck) {
      need_backtrack = true;  // fault can never be activated on this path
    } else if (bits::is_care(site)) {
      const Objective obj = objective();
      if (!obj.found) {
        need_backtrack = true;  // activated but D-frontier is empty
      } else {
        const auto [col, v] = backtrace(obj.node, obj.value);
        if (col == Netlist::npos) {
          need_backtrack = true;
        } else {
          stack.push_back({col, v, false});
          cube.set(col, v);
          imply();
          continue;
        }
      }
    } else {
      // Not yet activated: objective is the activation value.
      const auto [col, v] = backtrace(fault.node, activate_value);
      if (col == Netlist::npos) {
        need_backtrack = true;
      } else {
        stack.push_back({col, v, false});
        cube.set(col, v);
        imply();
        continue;
      }
    }

    if (need_backtrack) {
      ++result.backtracks;
      if (result.backtracks > max_backtracks_) {
        result.outcome = PodemOutcome::kAborted;
        return result;
      }
      bool resumed = false;
      while (!stack.empty()) {
        Decision& top = stack.back();
        if (!top.flipped) {
          top.flipped = true;
          top.value = invert(top.value);
          cube.set(top.column, top.value);
          resumed = true;
          break;
        }
        cube.set(top.column, Trit::X);
        stack.pop_back();
      }
      if (!resumed) {
        result.outcome = PodemOutcome::kUntestable;
        return result;
      }
      imply();
    }
  }
}

}  // namespace nc::atpg
