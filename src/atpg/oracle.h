// Exhaustive-test oracle: enumerates every fully specified input assignment
// to decide a fault's testability. Exponential, so only viable for small
// pattern widths -- which is exactly its job: it is the ground truth the
// property tests hold PODEM against (testable/untestable verdicts must
// agree fault for fault).
#pragma once

#include <optional>

#include "bits/trit_vector.h"
#include "circuit/netlist.h"
#include "sim/fault.h"

namespace nc::atpg {

/// Returns a detecting pattern if one exists, std::nullopt if the fault is
/// provably untestable. Throws std::invalid_argument when the circuit has
/// more than `max_width` pattern columns (default keeps the search under
/// ~64k simulations).
std::optional<bits::TritVector> oracle_find_test(
    const circuit::Netlist& netlist, const sim::Fault& fault,
    std::size_t max_width = 16);

}  // namespace nc::atpg
