#include "atpg/atpg.h"

#include <random>

#include "atpg/podem.h"
#include "sim/fault_sim.h"

namespace nc::atpg {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

AtpgResult generate_tests(const circuit::Netlist& netlist,
                          const std::vector<sim::Fault>& faults,
                          const AtpgConfig& config) {
  AtpgResult result;
  result.target_faults = faults.size();
  result.tests = TestSet(0, netlist.pattern_width());

  Podem podem(netlist, config.max_backtracks);
  sim::FaultSimulator fsim(netlist);
  std::vector<bool> alive(faults.size(), true);

  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (!alive[f]) continue;
    const PodemResult pr = podem.generate(faults[f]);
    switch (pr.outcome) {
      case PodemOutcome::kTestFound: {
        result.tests.append_pattern(pr.cube);
        if (config.fault_dropping) {
          result.detected +=
              fsim.drop_detected(pr.cube, faults, alive);
        } else {
          alive[f] = false;
          ++result.detected;
        }
        // PODEM guarantees detection, but 3-valued fault sim may be too
        // conservative to confirm it (X masking); count the target anyway.
        if (alive[f]) {
          alive[f] = false;
          ++result.detected;
        }
        break;
      }
      case PodemOutcome::kUntestable:
        alive[f] = false;
        ++result.untestable;
        break;
      case PodemOutcome::kAborted:
        alive[f] = false;
        ++result.aborted;
        break;
    }
  }

  if (config.compact) result.tests = compact_merge(result.tests);
  return result;
}

AtpgResult generate_tests(const circuit::Netlist& netlist,
                          const AtpgConfig& config) {
  return generate_tests(netlist, sim::collapsed_fault_list(netlist), config);
}

TestSet compact_merge(const TestSet& cubes) {
  std::vector<TritVector> pool;
  pool.reserve(cubes.pattern_count());
  for (std::size_t i = 0; i < cubes.pattern_count(); ++i)
    pool.push_back(cubes.pattern(i));

  std::vector<bool> dead(pool.size(), false);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      if (dead[j]) continue;
      if (!pool[i].compatible_with(pool[j])) continue;
      // Merge j into i: union of care bits.
      for (std::size_t b = 0; b < pool[i].size(); ++b)
        if (pool[i].get(b) == Trit::X) pool[i].set(b, pool[j].get(b));
      dead[j] = true;
    }
  }

  TestSet out(0, cubes.pattern_length());
  for (std::size_t i = 0; i < pool.size(); ++i)
    if (!dead[i]) out.append_pattern(pool[i]);
  return out;
}

TestSet compact_reverse_order(const circuit::Netlist& netlist,
                              const std::vector<sim::Fault>& faults,
                              const TestSet& cubes) {
  sim::FaultSimulator fsim(netlist);
  std::vector<bool> alive(faults.size(), true);
  std::vector<std::size_t> kept;
  for (std::size_t i = cubes.pattern_count(); i-- > 0;) {
    if (fsim.drop_detected(cubes.pattern(i), faults, alive) > 0)
      kept.push_back(i);
  }
  TestSet out(0, cubes.pattern_length());
  // Preserve the original application order of the kept cubes.
  for (std::size_t i = kept.size(); i-- > 0;)
    out.append_pattern(cubes.pattern(kept[i]));
  return out;
}

TestSet random_fill(const TestSet& cubes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TestSet out = cubes;
  for (std::size_t p = 0; p < out.pattern_count(); ++p)
    for (std::size_t c = 0; c < out.pattern_length(); ++c)
      if (out.at(p, c) == Trit::X)
        out.set(p, c, bits::trit_from_bit(rng() & 1u));
  return out;
}

}  // namespace nc::atpg
