#include "synth/qm.h"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace nc::synth {

unsigned Cube::literal_count() const noexcept {
  return static_cast<unsigned>(std::popcount(mask));
}

std::string Cube::to_string(unsigned n) const {
  std::string s;
  for (unsigned i = 0; i < n; ++i) {
    if (!((mask >> i) & 1u)) continue;
    s += "x" + std::to_string(i);
    if (!((value >> i) & 1u)) s += "'";
  }
  return s.empty() ? "1" : s;
}

std::vector<Cube> minimize(unsigned n, const std::vector<std::uint32_t>& ones,
                           const std::vector<std::uint32_t>& dontcares) {
  if (n > 20) throw std::invalid_argument("too many variables for QM");
  const std::uint32_t limit = n == 32 ? ~0u : (1u << n);
  const std::uint32_t full_mask = n == 32 ? ~0u : (1u << n) - 1;

  std::set<std::uint32_t> on(ones.begin(), ones.end());
  std::set<std::uint32_t> dc(dontcares.begin(), dontcares.end());
  for (std::uint32_t m : on) {
    if (m >= limit) throw std::invalid_argument("minterm out of range");
    if (dc.count(m))
      throw std::invalid_argument("minterm is both ON and DC");
  }
  for (std::uint32_t m : dc)
    if (m >= limit) throw std::invalid_argument("minterm out of range");
  if (on.empty()) return {};

  // Iterative combining: cubes as (value, mask); two cubes merge when masks
  // match and values differ in exactly one masked bit.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;
  for (std::uint32_t m : on) current.insert({m, full_mask});
  for (std::uint32_t m : dc) current.insert({m, full_mask});

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::set<std::pair<std::uint32_t, std::uint32_t>> combined;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> list(current.begin(),
                                                              current.end());
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].second != list[j].second) continue;
        const std::uint32_t diff = list[i].first ^ list[j].first;
        if (std::popcount(diff) != 1) continue;
        next.insert({list[i].first & ~diff, list[i].second & ~diff});
        combined.insert(list[i]);
        combined.insert(list[j]);
      }
    }
    for (const auto& c : list)
      if (!combined.count(c)) primes.push_back(Cube{c.first, c.second});
    current = std::move(next);
  }

  // Greedy cover of the ON-set by primes (essential primes fall out first
  // because they are the unique cover of some minterm).
  std::vector<std::uint32_t> uncovered(on.begin(), on.end());
  std::vector<Cube> cover;
  // Essential primes.
  for (std::uint32_t m : on) {
    const Cube* only = nullptr;
    for (const Cube& p : primes) {
      if (!p.covers(m)) continue;
      if (only != nullptr) { only = nullptr; break; }
      only = &p;
    }
    if (only != nullptr &&
        std::find(cover.begin(), cover.end(), *only) == cover.end())
      cover.push_back(*only);
  }
  auto erase_covered = [&] {
    uncovered.erase(std::remove_if(uncovered.begin(), uncovered.end(),
                                   [&](std::uint32_t m) {
                                     for (const Cube& c : cover)
                                       if (c.covers(m)) return true;
                                     return false;
                                   }),
                    uncovered.end());
  };
  erase_covered();
  while (!uncovered.empty()) {
    // Pick the prime covering the most uncovered minterms (ties: fewer
    // literals).
    const Cube* best = nullptr;
    std::size_t best_count = 0;
    for (const Cube& p : primes) {
      std::size_t cnt = 0;
      for (std::uint32_t m : uncovered) cnt += p.covers(m) ? 1 : 0;
      if (cnt > best_count ||
          (cnt == best_count && cnt > 0 && best != nullptr &&
           p.literal_count() < best->literal_count())) {
        best = &p;
        best_count = cnt;
      }
    }
    cover.push_back(*best);
    erase_covered();
  }
  return cover;
}

SopCost sop_cost(const std::vector<Cube>& cover) {
  SopCost cost;
  std::uint32_t complemented = 0;
  for (const Cube& c : cover) {
    const unsigned lits = c.literal_count();
    cost.literals += lits;
    if (lits > 1) cost.and_gates += lits - 1;
    complemented |= c.mask & ~c.value;
  }
  if (cover.size() > 1) cost.or_gates = cover.size() - 1;
  cost.inverters = static_cast<std::size_t>(std::popcount(complemented));
  return cost;
}

bool cover_matches(unsigned n, const std::vector<Cube>& cover,
                   const std::vector<std::uint32_t>& ones,
                   const std::vector<std::uint32_t>& dontcares) {
  const std::uint32_t limit = 1u << n;
  std::set<std::uint32_t> on(ones.begin(), ones.end());
  std::set<std::uint32_t> dc(dontcares.begin(), dontcares.end());
  for (std::uint32_t m = 0; m < limit; ++m) {
    if (dc.count(m)) continue;
    bool covered = false;
    for (const Cube& c : cover)
      if (c.covers(m)) { covered = true; break; }
    if (covered != (on.count(m) > 0)) return false;
  }
  return true;
}

}  // namespace nc::synth
