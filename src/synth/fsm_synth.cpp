#include "synth/fsm_synth.h"

#include <bit>
#include <cmath>

#include "decomp/decoder_fsm.h"

namespace nc::synth {

using decomp::FsmState;
using decomp::FsmStep;
using decomp::HalfPlan;

std::size_t FsmSynthesisResult::combinational_gates() const noexcept {
  std::size_t g = 0;
  for (const FsmOutputCost& o : outputs) g += o.cost.gate_equivalents();
  return g;
}

std::size_t FsmSynthesisResult::total_gate_equivalents() const noexcept {
  return combinational_gates() + 6 * state_flops;
}

FsmSynthesisResult synthesize_decoder_fsm() {
  // Input vector layout (6 bits): [3:0] state code, [4] data_bit, [5] done.
  constexpr unsigned kInputs = 6;
  constexpr std::uint32_t kInputCount = 1u << kInputs;

  // Output functions: next_state[3:0], latch_plan (recognized), plan_a[1:0],
  // plan_b[1:0], ack.
  struct OutputFn {
    std::string name;
    std::vector<std::uint32_t> ones;
  };
  std::vector<OutputFn> fns = {{"next_state0", {}}, {"next_state1", {}},
                               {"next_state2", {}}, {"next_state3", {}},
                               {"latch_plan", {}},  {"plan_a0", {}},
                               {"plan_a1", {}},     {"plan_b0", {}},
                               {"plan_b1", {}},     {"ack", {}}};
  std::vector<std::uint32_t> dontcares;

  for (std::uint32_t in = 0; in < kInputCount; ++in) {
    const unsigned state_code = in & 0xF;
    const bool data_bit = (in >> 4) & 1u;
    const bool done = (in >> 5) & 1u;
    if (state_code >= decomp::kFsmStateCount) {
      dontcares.push_back(in);
      continue;
    }
    const FsmStep step =
        decomp::fsm_step(static_cast<FsmState>(state_code), data_bit, done);
    const unsigned next = static_cast<unsigned>(step.next);
    for (unsigned b = 0; b < 4; ++b)
      if ((next >> b) & 1u) fns[b].ones.push_back(in);
    if (step.recognized) fns[4].ones.push_back(in);
    const unsigned pa = static_cast<unsigned>(step.plan_a);
    const unsigned pb = static_cast<unsigned>(step.plan_b);
    if (step.recognized) {  // plan outputs matter only while latching
      if (pa & 1u) fns[5].ones.push_back(in);
      if (pa & 2u) fns[6].ones.push_back(in);
      if (pb & 1u) fns[7].ones.push_back(in);
      if (pb & 2u) fns[8].ones.push_back(in);
    }
    if (step.ack) fns[9].ones.push_back(in);
  }

  // Plan outputs are don't-care whenever latch_plan is low.
  std::vector<std::uint32_t> plan_dc = dontcares;
  {
    std::vector<bool> latch(kInputCount, false);
    for (std::uint32_t m : fns[4].ones) latch[m] = true;
    for (std::uint32_t in = 0; in < kInputCount; ++in) {
      const unsigned state_code = in & 0xF;
      if (state_code >= decomp::kFsmStateCount) continue;  // already DC
      if (!latch[in]) plan_dc.push_back(in);
    }
  }

  FsmSynthesisResult result;
  result.state_flops = 4;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const bool is_plan = i >= 5 && i <= 8;
    FsmOutputCost oc;
    oc.name = fns[i].name;
    oc.cover = minimize(kInputs, fns[i].ones, is_plan ? plan_dc : dontcares);
    oc.cost = sop_cost(oc.cover);
    result.outputs.push_back(std::move(oc));
  }
  return result;
}

std::size_t decoder_gate_estimate(std::size_t block_size) {
  const FsmSynthesisResult fsm = synthesize_decoder_fsm();
  const std::size_t half = block_size / 2;
  // Counter: log2(K/2) toggle bits (~8 GE each incl. carry), comparator.
  std::size_t counter_bits = 0;
  while ((std::size_t{1} << counter_bits) < half) ++counter_bits;
  if (counter_bits == 0) counter_bits = 1;
  const std::size_t counter = counter_bits * 8 + counter_bits;
  // Shifter: K/2 scan flops (~6 GE each); MUX: ~3 GE.
  const std::size_t shifter = half * 6;
  return fsm.total_gate_equivalents() + counter + shifter + 3;
}

}  // namespace nc::synth
