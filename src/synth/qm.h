// Two-level logic minimization (Quine-McCluskey) -- the substrate behind
// the paper's "FSM synthesized to a handful of gates" claim. Alphabet sizes
// here are tiny (the decoder FSM has 6 inputs), so exact prime-implicant
// generation plus a greedy cover is both exact enough and instant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nc::synth {

/// A product term over n variables: variable i is present iff mask bit i is
/// set; its polarity is value bit i (1 = positive literal).
struct Cube {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;

  bool covers(std::uint32_t minterm) const noexcept {
    return (minterm & mask) == (value & mask);
  }
  unsigned literal_count() const noexcept;
  /// "ab'd" style rendering with variables named x0..x{n-1}.
  std::string to_string(unsigned n) const;
  bool operator==(const Cube&) const = default;
};

/// Minimizes a single-output function given its ON-set and DC-set minterms
/// (everything else is the OFF-set). `n` <= 20. Returns a prime-implicant
/// cover of the ON-set (possibly empty for a constant-0 function).
/// Throws std::invalid_argument if ON and DC sets overlap or exceed 2^n.
std::vector<Cube> minimize(unsigned n, const std::vector<std::uint32_t>& ones,
                           const std::vector<std::uint32_t>& dontcares = {});

/// Sum-of-products cost of a cover: two-input-gate equivalents, counting
/// (literals-1) per AND term, (terms-1) for the OR, and one inverter per
/// distinct complemented variable.
struct SopCost {
  std::size_t and_gates = 0;   // 2-input AND equivalents
  std::size_t or_gates = 0;    // 2-input OR equivalents
  std::size_t inverters = 0;
  std::size_t literals = 0;

  std::size_t gate_equivalents() const noexcept {
    return and_gates + or_gates + inverters;
  }
};
SopCost sop_cost(const std::vector<Cube>& cover);

/// True if `cover` equals the function defined by (ones, dontcares) on every
/// non-DC minterm -- the exactness check used by the property tests.
bool cover_matches(unsigned n, const std::vector<Cube>& cover,
                   const std::vector<std::uint32_t>& ones,
                   const std::vector<std::uint32_t>& dontcares = {});

}  // namespace nc::synth
