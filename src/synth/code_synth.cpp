#include "synth/code_synth.h"

#include <map>
#include <stdexcept>

namespace nc::synth {

std::size_t CodeSynthResult::combinational_gates() const noexcept {
  std::size_t g = 0;
  for (const FsmOutputCost& o : outputs) g += o.cost.gate_equivalents();
  return g;
}

namespace {

/// Codeword trie. Node 0 is the root; negative child = leaf index - 1.
struct Trie {
  struct Node {
    int child[2] = {0, 0};  // 0 = absent, >0 = node index, <0 = ~leaf index
  };
  std::vector<Node> nodes{1};

  void insert(const codec::Codeword& w, int leaf) {
    std::size_t at = 0;
    for (unsigned i = w.length; i-- > 0;) {
      const unsigned bit = (w.bits >> i) & 1u;
      // No references into nodes across the emplace_back: it reallocates.
      const int slot = nodes[at].child[bit];
      if (i == 0) {
        if (slot != 0)
          throw std::invalid_argument("codeword set is not prefix-free");
        nodes[at].child[bit] = ~leaf;
      } else {
        if (slot < 0)
          throw std::invalid_argument("codeword set is not prefix-free");
        if (slot == 0) {
          const int fresh = static_cast<int>(nodes.size());
          nodes.emplace_back();
          nodes[at].child[bit] = fresh;
          at = static_cast<std::size_t>(fresh);
        } else {
          at = static_cast<std::size_t>(slot);
        }
      }
    }
  }
};

}  // namespace

CodeSynthResult synthesize_code_fsm(const std::vector<CodeLeaf>& leaves,
                                    unsigned plan_symbols) {
  if (leaves.empty()) throw std::invalid_argument("empty code");
  if (plan_symbols < 2)
    throw std::invalid_argument("need at least one fill plan plus data");

  Trie trie;
  for (std::size_t l = 0; l < leaves.size(); ++l)
    trie.insert(leaves[l].word, static_cast<int>(l));

  CodeSynthResult result;
  result.recognition_states = trie.nodes.size();
  result.total_states = trie.nodes.size() + 3;  // HalfA, HalfB, Ack
  if (result.total_states > 1024)
    throw std::invalid_argument("code too large to synthesize");
  while ((std::size_t{1} << result.state_bits) < result.total_states)
    ++result.state_bits;
  while ((1u << result.plan_bits) < plan_symbols) ++result.plan_bits;
  if (result.plan_bits == 0) result.plan_bits = 1;

  // State codes: [0, R) recognition (trie node index), R = HalfA,
  // R+1 = HalfB, R+2 = Ack.
  const unsigned r = static_cast<unsigned>(result.recognition_states);
  const unsigned half_a = r, half_b = r + 1, ack = r + 2;
  const unsigned inputs =
      static_cast<unsigned>(result.state_bits) + 2;  // + data, done
  const std::uint32_t input_count = 1u << inputs;

  // Output functions: next_state bits, latch, plan_a bits, plan_b bits, ack.
  const std::size_t n_next = result.state_bits;
  const std::size_t n_plan = result.plan_bits;
  std::vector<std::vector<std::uint32_t>> ones(n_next + 1 + 2 * n_plan + 1);
  std::vector<std::uint32_t> dontcares;
  std::vector<std::uint32_t> plan_dc;

  for (std::uint32_t in = 0; in < input_count; ++in) {
    const unsigned state = in & ((1u << result.state_bits) - 1);
    const bool data_bit = (in >> result.state_bits) & 1u;
    const bool done = (in >> (result.state_bits + 1)) & 1u;
    if (state > ack) {
      dontcares.push_back(in);
      plan_dc.push_back(in);
      continue;
    }

    unsigned next;
    bool latch = false, is_ack = false;
    unsigned plan_a = 0, plan_b = 0;
    if (state < r) {
      const int slot = trie.nodes[state].child[data_bit ? 1 : 0];
      if (slot < 0) {
        const CodeLeaf& leaf = leaves[static_cast<std::size_t>(~slot)];
        next = half_a;
        latch = true;
        plan_a = leaf.plan_a;
        plan_b = leaf.plan_b;
      } else {
        // slot == 0 means an unreachable bit sequence (incomplete code):
        // treat as don't-care by parking in the root.
        next = slot == 0 ? 0u : static_cast<unsigned>(slot);
      }
    } else if (state == half_a) {
      next = done ? half_b : half_a;
    } else if (state == half_b) {
      next = done ? ack : half_b;
    } else {  // ack
      next = 0;
      is_ack = true;
    }

    for (std::size_t b = 0; b < n_next; ++b)
      if ((next >> b) & 1u) ones[b].push_back(in);
    if (latch) ones[n_next].push_back(in);
    if (latch) {
      for (std::size_t b = 0; b < n_plan; ++b) {
        if ((plan_a >> b) & 1u) ones[n_next + 1 + b].push_back(in);
        if ((plan_b >> b) & 1u) ones[n_next + 1 + n_plan + b].push_back(in);
      }
    } else {
      plan_dc.push_back(in);  // plan outputs matter only while latching
    }
    if (is_ack) ones[n_next + 1 + 2 * n_plan].push_back(in);
  }

  auto add_output = [&](const std::string& name,
                        const std::vector<std::uint32_t>& on, bool plan) {
    FsmOutputCost oc;
    oc.name = name;
    oc.cover = minimize(inputs, on, plan ? plan_dc : dontcares);
    oc.cost = sop_cost(oc.cover);
    result.outputs.push_back(std::move(oc));
  };
  for (std::size_t b = 0; b < n_next; ++b)
    add_output("next_state" + std::to_string(b), ones[b], false);
  add_output("latch_plan", ones[n_next], false);
  for (std::size_t b = 0; b < n_plan; ++b)
    add_output("plan_a" + std::to_string(b), ones[n_next + 1 + b], true);
  for (std::size_t b = 0; b < n_plan; ++b)
    add_output("plan_b" + std::to_string(b), ones[n_next + 1 + n_plan + b],
               true);
  add_output("ack", ones[n_next + 1 + 2 * n_plan], false);
  return result;
}

std::vector<CodeLeaf> leaves_for_table(const codec::CodewordTable& table) {
  using codec::BlockClass;
  std::vector<CodeLeaf> leaves;
  for (std::size_t c = 0; c < codec::kNumClasses; ++c) {
    const auto cls = static_cast<BlockClass>(c);
    CodeLeaf leaf;
    leaf.word = table.at(cls);
    // Plans: 0 = fill 0, 1 = fill 1, 2 = data.
    const auto plan_of = [&](bool left) -> unsigned {
      switch (cls) {
        case BlockClass::kC1: return 0;
        case BlockClass::kC2: return 1;
        case BlockClass::kC3: return left ? 0u : 1u;
        case BlockClass::kC4: return left ? 1u : 0u;
        case BlockClass::kC5: return left ? 0u : 2u;
        case BlockClass::kC6: return left ? 2u : 0u;
        case BlockClass::kC7: return left ? 1u : 2u;
        case BlockClass::kC8: return left ? 2u : 1u;
        case BlockClass::kC9: return 2;
      }
      return 0;
    };
    leaf.plan_a = plan_of(true);
    leaf.plan_b = plan_of(false);
    leaves.push_back(leaf);
  }
  return leaves;
}

}  // namespace nc::synth
