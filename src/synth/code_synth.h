// Decoder-FSM synthesis for an ARBITRARY prefix code.
//
// Fig. 2's controller generalizes: recognition states are the internal
// nodes of the codeword trie, followed by the two half-streaming states and
// the Ack state; the latched "plan" selects, per half, a fill pattern or
// the pass-through-data path. This module builds that FSM mechanically from
// a codeword list and minimizes every next-state/output function with
// Quine-McCluskey -- which is how the ablation bench prices the paper's
// "more codewords => more expensive decoder" trade-off, and how the
// frequency-directed variant of Table VII is costed in gates.
#pragma once

#include <cstddef>
#include <vector>

#include "codec/codeword_table.h"
#include "synth/fsm_synth.h"
#include "synth/qm.h"

namespace nc::synth {

/// One codeword and what the decoder must do once it is recognized.
/// `plan_a` / `plan_b` select a fill pattern (0 .. plan_symbols-2) or the
/// data path (plan_symbols-1) for the left / right half.
struct CodeLeaf {
  codec::Codeword word;
  unsigned plan_a = 0;
  unsigned plan_b = 0;
};

struct CodeSynthResult {
  std::size_t recognition_states = 0;  // internal trie nodes
  std::size_t total_states = 0;        // + HalfA, HalfB, Ack
  std::size_t state_bits = 0;
  std::size_t plan_bits = 0;           // per half
  std::vector<FsmOutputCost> outputs;
  std::size_t combinational_gates() const noexcept;
  std::size_t total_gate_equivalents() const noexcept {
    return combinational_gates() + 6 * state_bits;
  }
};

/// Synthesizes the decoder FSM for `leaves` (must form a prefix-free code).
/// `plan_symbols` is the number of distinct half plans (fill patterns + 1
/// for the data path). Throws std::invalid_argument on an empty, prefix-
/// violating, or oversized (> 2^10 states) code.
CodeSynthResult synthesize_code_fsm(const std::vector<CodeLeaf>& leaves,
                                    unsigned plan_symbols);

/// Convenience: the leaves of a 9C codeword table (plans: 0-fill, 1-fill,
/// data; plan_symbols = 3).
std::vector<CodeLeaf> leaves_for_table(const codec::CodewordTable& table);

}  // namespace nc::synth
