// Synthesis of the 9C decoder FSM (Fig. 2) into two-level logic.
//
// Reproduces the paper's decoder-cost claim: the controller is independent
// of K and of the test set, and it synthesizes to a few tens of gate
// equivalents. The full decoder adds a log2(K/2) counter and a K/2-bit
// shifter -- the only K-dependent hardware -- for which standard
// gate-equivalent estimates are included.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "synth/qm.h"

namespace nc::synth {

/// Cost of one synthesized combinational output (next-state bit or control
/// signal) of the decoder FSM.
struct FsmOutputCost {
  std::string name;
  std::vector<Cube> cover;
  SopCost cost;
};

struct FsmSynthesisResult {
  std::vector<FsmOutputCost> outputs;
  std::size_t state_flops = 0;  // FSM state register bits

  /// Total combinational gate equivalents.
  std::size_t combinational_gates() const noexcept;
  /// Combinational gates plus registers (one DFF ~ 6 gate equivalents, the
  /// usual standard-cell rule of thumb).
  std::size_t total_gate_equivalents() const noexcept;
};

/// Enumerates the decoder FSM's transition/output functions over inputs
/// (state[3:0], data_bit, done), minimizes each with Quine-McCluskey
/// (unused state codes are don't-cares) and reports costs.
FsmSynthesisResult synthesize_decoder_fsm();

/// Gate-equivalent estimate of a complete single-scan decoder for block
/// size K: FSM + log2(K/2)-bit counter + K/2-bit shifter + output MUX.
std::size_t decoder_gate_estimate(std::size_t block_size);

}  // namespace nc::synth
