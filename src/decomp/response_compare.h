// Shared response-compare helper for session-layer runners.
//
// Applies one decoded pattern to the fault-free machine and to the DUT
// (optionally carrying a stuck-at defect) and reports whether the captured
// responses provably differ. Both the single-device ATE session and the
// fleet manager reuse this; each instance owns its two simulators, so one
// instance per concurrent device keeps the parallel paths share-nothing.
#pragma once

#include <cstddef>
#include <optional>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "sim/fault.h"
#include "sim/logic_sim.h"

namespace nc::decomp {

class ResponseComparator {
 public:
  ResponseComparator(const circuit::Netlist& netlist, std::size_t width)
      : good_sim_(netlist), dut_sim_(netlist), one_(1, width) {}

  bool pattern_fails(const bits::TritVector& applied,
                     const std::optional<sim::Fault>& fault) {
    one_.set_pattern(0, applied);
    good_sim_.load(one_, 0);
    good_sim_.run();
    dut_sim_.load(one_, 0);
    if (fault.has_value())
      dut_sim_.run_with_fault(fault->node, fault->consumer, fault->pin,
                              fault->stuck_value);
    else
      dut_sim_.run();
    return dut_sim_.diff_mask(good_sim_.values()) != 0;
  }

 private:
  sim::ParallelSim good_sim_;
  sim::ParallelSim dut_sim_;
  bits::TestSet one_;
};

}  // namespace nc::decomp
