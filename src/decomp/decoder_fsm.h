// The 9C decoder FSM of Fig. 2 -- the controller shared by every
// decompressor variant. It is totally independent of K and of the test set:
// the counter width and the shifter are the only K-dependent pieces.
//
// The FSM recognizes the standard prefix-free codeword tree bit-serially
// (at most five ATE cycles), latches a two-half "plan" (fill-0 / fill-1 /
// pass-through-data per half), sequences the two halves through the MUX,
// and raises Ack. This same transition table is what `nc::synth` minimizes
// to reproduce the paper's gate-count claim.
#pragma once

#include <array>
#include <cstdint>

#include "codec/block_class.h"
#include "core/cancel.h"

namespace nc::decomp {

/// MUX selection for one half-block (the paper's 2-bit Sel).
enum class HalfPlan : unsigned char {
  kFill0 = 0,  // drive constant 0 into the chain
  kFill1 = 1,  // drive constant 1
  kData = 2,   // stream Data_in through the K/2-bit shifter
};

/// FSM states. Recognition states mirror the codeword tree; kHalfA/kHalfB
/// wait for the counter's Done; kAck is the handshake cycle back to the ATE.
enum class FsmState : unsigned char {
  kIdle = 0,   // expecting the first codeword bit
  kSaw1,       // prefix "1"
  kSaw11,      // prefix "11"
  kSaw110,     // prefix "110"
  kSaw1101,    // prefix "1101"
  kSaw111,     // prefix "111"
  kSaw1110,    // prefix "1110"
  kSaw1111,    // prefix "1111"
  kHalfA,      // first half streaming into the scan chain
  kHalfB,      // second half
  kAck,        // acknowledge, then back to kIdle
};

inline constexpr std::size_t kFsmStateCount = 11;

/// Moore/Mealy mixed outputs of one step.
struct FsmStep {
  FsmState next = FsmState::kIdle;
  /// True when this step completed codeword recognition; `plan_a`/`plan_b`
  /// are the latched half plans (valid only when recognized is true).
  bool recognized = false;
  HalfPlan plan_a = HalfPlan::kFill0;
  HalfPlan plan_b = HalfPlan::kFill0;
  /// True when the decoder is consuming a Data_in bit this cycle.
  bool consumes_data_bit = false;
  /// True on the Ack cycle (ATE may present the next codeword afterwards).
  bool ack = false;
};

/// One FSM transition. In recognition states `data_bit` is the incoming
/// ATE bit; in kHalfA/kHalfB `done` is the counter's terminal count.
FsmStep fsm_step(FsmState state, bool data_bit, bool done);

/// Stateful FSM driver: owns the current state and meters every transition
/// against an optional core::Watchdog. The pure transition table above
/// cannot loop by itself, but the loops *driving* it can -- a model whose
/// counter never raises Done spins in kHalfA/kHalfB consuming zero stream
/// bits forever. Every decompressor model drives its FSM through an engine
/// so that exposure is bounded: each transition charges one watchdog step,
/// and the caller converts a trip into the typed
/// codec::DecodeError(kWatchdogExpired) its retry machinery already handles.
class FsmEngine {
 public:
  /// `watchdog` may be null (unmetered); it is borrowed, not owned.
  explicit FsmEngine(core::Watchdog* watchdog = nullptr) noexcept
      : watchdog_(watchdog) {}

  /// Applies one transition from the current state and advances it.
  /// Check trip() afterwards: once the watchdog trips, further transitions
  /// keep the state frozen and keep reporting the trip.
  FsmStep step(bool data_bit, bool done);

  FsmState state() const noexcept { return state_; }
  std::size_t steps() const noexcept { return steps_; }
  core::WatchdogTrip trip() const noexcept { return trip_; }

  /// Back to kIdle (pattern-boundary resync); the step meter keeps running.
  void reset() noexcept { state_ = FsmState::kIdle; }

 private:
  FsmState state_ = FsmState::kIdle;
  std::size_t steps_ = 0;
  core::Watchdog* watchdog_;
  core::WatchdogTrip trip_ = core::WatchdogTrip::kNone;
};

/// The codeword class recognized by a (plan_a, plan_b) pair -- the inverse
/// mapping, used by tests to tie the FSM back to Table I.
codec::BlockClass plan_class(HalfPlan a, HalfPlan b);

}  // namespace nc::decomp
