#include "decomp/single_scan.h"

#include <stdexcept>

#include "bits/bitstream.h"
#include "codec/decode_error.h"

namespace nc::decomp {

using bits::Trit;
using bits::TritVector;

SingleScanDecoder::SingleScanDecoder(std::size_t block_size, unsigned p)
    : k_(block_size), p_(p) {
  if (k_ < 2 || k_ % 2 != 0)
    throw std::invalid_argument("decoder block size K must be even and >= 2");
  if (p_ < 1) throw std::invalid_argument("clock ratio p must be >= 1");
}

DecoderTrace SingleScanDecoder::run(const TritVector& te,
                                    std::size_t original_bits,
                                    core::Watchdog* watchdog) const {
  DecoderTrace trace;
  bits::TritReader in(te);
  const std::size_t half = k_ / 2;

  FsmEngine fsm(watchdog);
  HalfPlan plan_a = HalfPlan::kFill0;
  HalfPlan plan_b = HalfPlan::kFill0;

  auto expired = [&]() {
    return codec::DecodeError(codec::DecodeFault::kWatchdogExpired,
                              in.position(), trace.codewords);
  };
  auto stream_half = [&](HalfPlan plan) {
    // kHalfA/kHalfB: the counter walks K/2 positions; each position costs
    // one SoC cycle for locally generated fill or one ATE cycle (= p SoC
    // cycles) for a bit streamed from the tester through the shifter.
    // Every position is one watchdog step: streamed scan bits are the
    // decoder's progress unit, so the budget bounds total output too.
    if (watchdog != nullptr &&
        watchdog->tick(half) != core::WatchdogTrip::kNone)
      throw expired();
    // Fills and full-half payload copies land word-parallel; the per-trit
    // walk only survives for a payload the stream cannot fully satisfy, so
    // the StreamOverrun offset stays exactly where the reader ran dry.
    switch (plan) {
      case HalfPlan::kFill0:
        trace.scan_stream.append_run(half, Trit::Zero);
        trace.soc_cycles += half;
        break;
      case HalfPlan::kFill1:
        trace.scan_stream.append_run(half, Trit::One);
        trace.soc_cycles += half;
        break;
      case HalfPlan::kData:
        if (in.remaining() >= half) {
          trace.scan_stream.append(in.next_trits(half));
        } else {
          for (std::size_t i = 0; i < half; ++i)
            trace.scan_stream.push_back(in.next());
        }
        trace.ate_cycles += half;
        trace.soc_cycles += static_cast<std::size_t>(p_) * half;
        break;
    }
  };

  // Whole blocks only: the decoder always finishes the block in flight
  // (the encoder padded TD to a block boundary), then the tail is trimmed.
  // Reader failures become typed DecodeErrors carrying the TE offset and
  // the index of the block in flight, so the session layer can retry.
  try {
    while (trace.scan_stream.size() < original_bits ||
           fsm.state() != FsmState::kIdle) {
      switch (fsm.state()) {
        case FsmState::kHalfA:
          stream_half(plan_a);
          fsm.step(false, /*done=*/true);
          break;
        case FsmState::kHalfB:
          stream_half(plan_b);
          fsm.step(false, /*done=*/true);
          break;
        case FsmState::kAck:
          // Handshake overlaps the next codeword fetch; no extra cycles in
          // the paper's model.
          fsm.step(false, false);
          break;
        default: {  // recognition states consume one ATE bit each
          const bool bit = in.next_bit();
          trace.ate_cycles += 1;
          trace.soc_cycles += p_;
          const FsmStep step = fsm.step(bit, false);
          if (step.recognized) {
            plan_a = step.plan_a;
            plan_b = step.plan_b;
            ++trace.codewords;
          }
          break;
        }
      }
      if (fsm.trip() != core::WatchdogTrip::kNone) throw expired();
    }
  } catch (const bits::StreamOverrun& e) {
    throw codec::DecodeError(codec::DecodeFault::kTruncated, e.offset(),
                             trace.codewords);
  } catch (const bits::InvalidSymbol& e) {
    throw codec::DecodeError(codec::DecodeFault::kXInCodeword, e.offset(),
                             trace.codewords);
  }
  // Length accounting, mirroring NineCoded::decode_checked: symbols left in
  // TE after the last block mean the parse desynchronized and ran short.
  if (!in.done())
    throw codec::DecodeError(codec::DecodeFault::kTrailingData, in.position(),
                             trace.codewords);
  trace.scan_stream.resize(original_bits);
  return trace;
}

}  // namespace nc::decomp
