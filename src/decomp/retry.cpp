#include "decomp/retry.h"

#include <utility>

#include "codec/decode_error.h"
#include "core/cancel.h"

namespace nc::decomp {

StreamOutcome stream_pattern_with_retry(ChannelModel& channel,
                                        const SingleScanDecoder& decoder,
                                        const bits::TritVector& te,
                                        const bits::TritVector& cube,
                                        unsigned attempts,
                                        SessionResult& session,
                                        const WatchdogBudgetFn& budget) {
  StreamOutcome out;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    const bits::TritVector rx = channel.transmit(te);
    const bool corrupted = channel.last_corrupted();

    bool detected = false;
    DecoderTrace trace;
    try {
      if (budget) {
        core::Watchdog watchdog(budget(rx.size()));
        trace = decoder.run(rx, cube.size(), &watchdog);
      } else {
        trace = decoder.run(rx, cube.size());
      }
    } catch (const codec::DecodeError& e) {
      detected = true;  // decode-level detection (typed, per-block)
      if (e.fault() == codec::DecodeFault::kWatchdogExpired)
        ++out.watchdog_trips;
    }
    // Stimulus check: a decoded pattern that contradicts a specified
    // stimulus bit cannot be trusted, so it is re-streamed rather than
    // reported as a device verdict.
    if (!detected && !cube.covered_by(trace.scan_stream)) detected = true;

    if (!detected) {
      // Either the link was clean, or every corrupted symbol landed on a
      // leftover-X position (a legal fill): provably X-masked.
      if (corrupted) ++session.corruptions_undetected;
      session.ate_bits += rx.size();
      session.soc_cycles += trace.soc_cycles + 1;  // + capture cycle
      out.scan_stream = std::move(trace.scan_stream);
      out.applied = true;
      break;
    }

    ++session.corruptions_detected;
    session.wasted_ate_bits += rx.size();
    if (attempt + 1 < attempts) {
      ++out.used_retries;
      ++session.retries;
    }
  }
  if (out.used_retries > 0) ++session.patterns_retried;
  return out;
}

}  // namespace nc::decomp
