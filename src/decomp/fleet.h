// Fleet session manager: one tester, N devices, hours of streaming.
//
// The paper's decompressor is TD-independent, which in production means a
// single dumb ATE stream drives many DUTs back to back. At that scale three
// failure modes dominate that the single-session model (ate_session.h)
// cannot absorb:
//
//  * a crafted/corrupt stream that makes a decode run away -- bounded by a
//    per-attempt core::Watchdog whose trip surfaces as the typed
//    codec::DecodeError(kWatchdogExpired) and is retried/quarantined like
//    any other detected corruption;
//  * a killed process losing the whole run -- a CRC-guarded journal (magic
//    "NC9J") written at pattern-batch boundaries checkpoints every device's
//    cursor and cumulative accounting, and a resumed run replays to a
//    bit-identical FleetResult versus the uninterrupted run;
//  * one pathologically bad device starving the fleet -- a per-device
//    circuit breaker (closed -> open -> half-open) quarantines a device
//    after `open_after` consecutive unrecovered patterns, sits out
//    `probe_after` batches, then probes with a single pattern; the rest of
//    the fleet degrades gracefully instead of aborting.
//
// Determinism: for a fixed (seed, devices, config) the entire FleetResult
// is a pure function of the inputs -- independent of `jobs`, of scheduling,
// and of where (or whether) the run was checkpointed and resumed. Each
// device's channel is reseeded at every batch boundary from
// (fleet seed, device index, batch index), so batch k's fault pattern never
// depends on how batches [0, k) were executed. Wall-clock deadlines and
// cancel tokens are deliberately NOT part of the replayed state: only the
// step-budget watchdog feeds verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "core/cancel.h"
#include "decomp/ate_session.h"
#include "decomp/channel.h"
#include "sim/fault.h"

namespace nc::decomp {

/// One device under test: its link fault model and (optionally) the
/// physical defect it carries.
struct DeviceProfile {
  ChannelConfig channel;
  std::optional<sim::Fault> fault;
};

/// Circuit-breaker health state of one device.
enum class BreakerState : unsigned char { kClosed = 0, kOpen, kHalfOpen };

/// Final per-device outcome. kFailed covers both a provable response
/// mismatch and patterns whose retry budget ran out with the breaker still
/// closed (the device cannot be declared good either way); kQuarantined
/// means the breaker was open at the end or coverage was lost to skipped
/// batches; kAborted means RetryPolicy::abort_after tripped.
enum class DeviceVerdict : unsigned char {
  kPassed = 0,
  kFailed,
  kQuarantined,
  kAborted,
};

const char* to_string(BreakerState state) noexcept;
const char* to_string(DeviceVerdict verdict) noexcept;

struct BreakerPolicy {
  /// Consecutive unrecovered patterns (retry exhaustion, watchdog trips
  /// included) that open the breaker.
  unsigned open_after = 3;
  /// Whole batches an open breaker sits out before a half-open probe.
  std::size_t probe_after = 2;
};

struct FleetConfig {
  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

  std::size_t block_size = 8;  // K of the on-chip decoder
  unsigned p = 8;              // f_scan / f_ate
  /// 9C hot-path implementation for every device coder. Byte-identical
  /// across choices, so it is deliberately NOT part of the journal's
  /// config hash: a checkpoint taken under one impl resumes under another.
  codec::CodecImpl codec_impl = codec::CodecImpl::kAuto;
  RetryPolicy retry;           // per-pattern re-stream budget; abort_after
                               // aborts the *device*, never the fleet
  BreakerPolicy breaker;

  /// Watchdog step budget per decode attempt; 0 derives a generous budget
  /// from the attempt's stream size that a clean decode can never trip.
  std::size_t watchdog_steps = 0;

  /// Patterns per batch: the checkpoint, reseed and breaker-probe
  /// granularity. Part of the deterministic contract (changing it changes
  /// the fault streams), so it is folded into the journal's config hash.
  std::size_t batch_patterns = 8;

  /// Worker threads driving per-device batch jobs; 0 = one per hardware
  /// thread. Never changes any result, only wall-clock.
  std::size_t jobs = 1;

  std::uint64_t seed = 1;  // fleet seed; per-(device, batch) seeds derive

  /// Journal file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Continue from `checkpoint_path` if it holds a valid journal for this
  /// exact configuration; a fresh run otherwise. The journal is append-only
  /// with a CRC per record: a torn or corrupt newest record falls back to
  /// the one before it (the missing batch replays bit-identically), while a
  /// journal with no intact record, a bad header, or a different
  /// configuration is an error.
  bool resume = false;

  /// Test hook simulating a kill: stop (after checkpointing) once this many
  /// batches ran in this process. kNoLimit = run to completion.
  std::size_t stop_after_batches = kNoLimit;

  /// Operator stop (borrowed, may be null). Checked at batch boundaries;
  /// a cancelled run checkpoints and returns complete == false.
  const core::CancelToken* cancel = nullptr;
};

struct DeviceResult {
  DeviceVerdict verdict = DeviceVerdict::kPassed;
  BreakerState breaker = BreakerState::kClosed;
  SessionResult session;  // cumulative accounting, as in ate_session.h

  std::size_t watchdog_trips = 0;    // decode attempts stopped by the budget
  std::size_t patterns_skipped = 0;  // never applied: quarantine windows
  std::size_t breaker_opens = 0;     // times the breaker entered open
  std::size_t probes = 0;            // half-open single-pattern probes
  std::size_t probe_successes = 0;   // probes that re-closed the breaker
};

struct FleetResult {
  std::vector<DeviceResult> devices;

  std::size_t batches_run = 0;  // cumulative across resume segments
  bool complete = true;  // false: stopped by stop_after_batches or cancel

  // Provenance of this process's run segment -- excluded from
  // fleet_fingerprint(), since an interrupted-and-resumed run must produce
  // the identical deterministic outcome.
  std::size_t checkpoints_written = 0;
  bool resumed = false;

  // Aggregates over devices.
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t quarantined = 0;
  std::size_t aborted = 0;
  std::size_t ate_bits = 0;
  std::size_t wasted_ate_bits = 0;
  std::size_t retries = 0;
  std::size_t watchdog_trips = 0;
  std::size_t patterns_skipped = 0;
};

/// FNV-1a digest over every deterministic field of the result -- verdicts,
/// breaker states, all counters, channel stats and the per-pattern fail
/// bits -- excluding run-segment provenance (checkpoints_written, resumed).
/// Two runs with equal fingerprints made identical decisions; the
/// kill-and-resume differential test and the CLI both rely on it.
std::uint64_t fleet_fingerprint(const FleetResult& result) noexcept;

/// Runs the fleet: every device streams the same `cubes` through its own
/// faulty channel into its own decoder, with per-pattern retries, the
/// watchdog, the breaker, and (optionally) the checkpoint journal.
/// Throws std::invalid_argument on a bad configuration and
/// std::runtime_error on an unusable journal.
FleetResult run_fleet(const circuit::Netlist& netlist,
                      const bits::TestSet& cubes, const FleetConfig& config,
                      const std::vector<DeviceProfile>& devices);

}  // namespace nc::decomp
