// Fault-injected model of the ATE-to-chip test channel.
//
// The paper assumes the tester streams TE over a perfect link. Real
// reduced-pin-count links drop, flip and stick: this model injects
// deterministic, seeded faults into a TE stream so the decode path and the
// session retry protocol can be exercised and measured.
//
// Fault taxonomy (all rates are per-symbol unless noted):
//   * point flips   -- each symbol independently flips with `flip_rate`
//   * burst errors  -- with `burst_rate` a burst starts at a symbol and
//                      corrupts the next `burst_length` symbols
//   * truncation    -- with per-transmission `truncate_rate` the stream is
//                      cut at a uniform random offset (ATE underrun / abort)
//   * stuck-at pin  -- with per-transmission `stuck_rate` the pin sticks at
//                      a random constant value from a random offset onward
//
// Flip semantics on trits: 0 <-> 1; an X symbol (a leftover don't-care the
// ATE fills arbitrarily) becomes a random specified bit -- the stream *is*
// altered, but any specified value is a legal fill of X, so such a
// corruption is provably X-masked and must not fail the pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>

#include "bits/trit_vector.h"

namespace nc::decomp {

struct ChannelConfig {
  double flip_rate = 0.0;
  double burst_rate = 0.0;
  std::size_t burst_length = 8;
  double truncate_rate = 0.0;
  double stuck_rate = 0.0;
  std::uint64_t seed = 1;

  /// True if any fault mechanism is enabled.
  bool faulty() const noexcept {
    return flip_rate > 0.0 || burst_rate > 0.0 || truncate_rate > 0.0 ||
           stuck_rate > 0.0;
  }

  /// Parses a CLI spec like "flip=1e-3,burst=1e-4:16,trunc=1e-4,stuck=1e-5,
  /// seed=7". Unknown keys or malformed values throw std::invalid_argument.
  static ChannelConfig parse(const std::string& spec);
  std::string to_string() const;
};

/// Per-run injection accounting.
struct ChannelStats {
  std::size_t transmissions = 0;
  std::size_t corrupted_transmissions = 0;  // streams altered in any way
  std::size_t symbols_in = 0;
  std::size_t symbols_out = 0;
  std::size_t flipped_symbols = 0;  // point flips + burst flips
  std::size_t bursts = 0;
  std::size_t truncations = 0;
  std::size_t truncated_symbols = 0;  // symbols dropped by truncation
  std::size_t stuck_events = 0;
  std::size_t stuck_symbols = 0;  // symbols overwritten by a stuck pin
};

/// Applies the configured faults to transmitted streams. Deterministic for a
/// given (config.seed, sequence of transmit calls).
class ChannelModel {
 public:
  explicit ChannelModel(const ChannelConfig& config);

  /// One ATE transmission: returns the possibly corrupted stream.
  bits::TritVector transmit(const bits::TritVector& te);

  /// True if the most recent transmit() altered its stream at all.
  bool last_corrupted() const noexcept { return last_corrupted_; }

  const ChannelConfig& config() const noexcept { return config_; }
  const ChannelStats& stats() const noexcept { return stats_; }

  /// Restarts the fault sequence (e.g. one seed per session run).
  void reseed(std::uint64_t seed);

 private:
  bits::Trit flip(bits::Trit t);

  ChannelConfig config_;
  std::mt19937_64 rng_;
  ChannelStats stats_;
  bool last_corrupted_ = false;
};

}  // namespace nc::decomp
