// Multiple-scan-chain decompression architectures (Fig. 3 / Fig. 4).
//
// (b) Single-pin multi-scan: one decoder drives an m-bit staging shifter;
//     every m decoded bits parallel-load into the m chains. Test time
//     matches the single-scan decoder; the ATE needs ONE pin instead of m.
// (c) Banked: m/K decoders, each with its own ATE pin, drive K chains each
//     through a K-bit shifter. The decoders run in parallel, cutting test
//     time by up to m/K at the price of m/K pins and decoder copies.
//
// TD is sliced "vertically" (TestSet::flatten_sliced): consecutive stream
// bits go to consecutive chains.
#pragma once

#include <cstddef>
#include <vector>

#include "bits/test_set.h"
#include "codec/nine_coded.h"
#include "decomp/single_scan.h"

namespace nc::decomp {

/// Result of running one multi-scan architecture on one test set.
struct ArchitectureReport {
  std::string name;
  std::size_t ate_pins = 0;      // test data pins required
  std::size_t decoders = 0;      // on-chip decoder instances
  std::size_t chains = 0;        // scan chains driven
  std::size_t soc_cycles = 0;    // test application time, SoC cycles
  std::size_t encoded_bits = 0;  // |TE| summed over pins
  double compression_ratio = 0.0;
  /// Per-chain scan contents, for correctness checks against TD.
  std::vector<bits::TritVector> chain_streams;
};

/// Fig. 4(a): the single-scan reference (1 pin, 1 decoder, 1 chain).
/// All three runners take an optional borrowed core::Watchdog that meters
/// the whole architecture run (summed across banks for 4c); a trip raises
/// codec::DecodeError(kWatchdogExpired) annotated with the failing pin.
ArchitectureReport run_single_scan(const bits::TestSet& td,
                                   const codec::NineCoded& coder, unsigned p,
                                   core::Watchdog* watchdog = nullptr);

/// Fig. 3 / 4(b): m chains, one pin, one decoder + m-bit staging shifter.
ArchitectureReport run_multi_scan_single_pin(const bits::TestSet& td,
                                             std::size_t chains,
                                             const codec::NineCoded& coder,
                                             unsigned p,
                                             core::Watchdog* watchdog = nullptr);

/// Fig. 4(c): m chains, m/K pins, m/K decoders working in parallel (K =
/// coder.block_size(); `chains` must be a multiple of it).
ArchitectureReport run_multi_scan_banked(const bits::TestSet& td,
                                         std::size_t chains,
                                         const codec::NineCoded& coder,
                                         unsigned p,
                                         core::Watchdog* watchdog = nullptr);

}  // namespace nc::decomp
