#include "decomp/multi_scan.h"

#include <algorithm>
#include <stdexcept>

#include "codec/decode_error.h"

namespace nc::decomp {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

namespace {

/// Splits a decoded scan stream into `chains` per-chain streams, undoing the
/// vertical slicing (bit i of the stream belongs to chain i mod chains).
std::vector<TritVector> deinterleave(const TritVector& stream,
                                     std::size_t chains) {
  std::vector<TritVector> out(chains);
  for (std::size_t i = 0; i < stream.size(); ++i)
    out[i % chains].push_back(stream.get(i));
  return out;
}

}  // namespace

ArchitectureReport run_single_scan(const TestSet& td,
                                   const codec::NineCoded& coder, unsigned p,
                                   core::Watchdog* watchdog) {
  ArchitectureReport report;
  report.name = "single-scan single-pin (Fig. 4a)";
  report.ate_pins = 1;
  report.decoders = 1;
  report.chains = 1;

  const TritVector stream = td.flatten();
  const TritVector te = coder.encode(stream);
  const SingleScanDecoder decoder(coder.block_size(), p);
  DecoderTrace trace;
  try {
    trace = decoder.run(te, stream.size(), watchdog);
  } catch (const codec::DecodeError& e) {
    throw e.with_pin(0);
  }

  report.soc_cycles = trace.soc_cycles;
  report.encoded_bits = te.size();
  report.compression_ratio =
      codec::compression_ratio_percent(stream.size(), te.size());
  report.chain_streams = {trace.scan_stream};
  return report;
}

ArchitectureReport run_multi_scan_single_pin(const TestSet& td,
                                             std::size_t chains,
                                             const codec::NineCoded& coder,
                                             unsigned p,
                                             core::Watchdog* watchdog) {
  if (chains == 0) throw std::invalid_argument("need at least one chain");
  ArchitectureReport report;
  report.name = "multi-scan single-pin (Fig. 4b)";
  report.ate_pins = 1;
  report.decoders = 1;
  report.chains = chains;

  // Vertical slicing: the decoder output fills the m-bit staging shifter;
  // every m bits parallel-load one slice into the chains. Decoder timing is
  // identical to the single-scan case (the paper's claim): the staging
  // shifter runs in the SoC domain in lockstep with D_out.
  const TritVector stream = td.flatten_sliced(chains);
  const TritVector te = coder.encode(stream);
  const SingleScanDecoder decoder(coder.block_size(), p);
  DecoderTrace trace;
  try {
    trace = decoder.run(te, stream.size(), watchdog);
  } catch (const codec::DecodeError& e) {
    throw e.with_pin(0);  // the architecture's only ATE pin
  }

  report.soc_cycles = trace.soc_cycles;
  report.encoded_bits = te.size();
  report.compression_ratio =
      codec::compression_ratio_percent(stream.size(), te.size());
  report.chain_streams = deinterleave(trace.scan_stream, chains);
  return report;
}

ArchitectureReport run_multi_scan_banked(const TestSet& td, std::size_t chains,
                                         const codec::NineCoded& coder,
                                         unsigned p,
                                         core::Watchdog* watchdog) {
  const std::size_t k = coder.block_size();
  if (chains == 0 || chains % k != 0)
    throw std::invalid_argument(
        "banked architecture needs chains to be a multiple of K");
  const std::size_t banks = chains / k;

  ArchitectureReport report;
  report.name = "multi-scan banked (Fig. 4c)";
  report.ate_pins = banks;
  report.decoders = banks;
  report.chains = chains;
  report.chain_streams.resize(chains);

  // Each bank owns K consecutive chains and receives its own 9C stream on
  // its own pin; the banks run in parallel, so test time is the slowest
  // bank's time.
  const std::size_t depth = (td.pattern_length() + chains - 1) / chains;
  const SingleScanDecoder decoder(k, p);
  std::size_t original_total = 0;
  for (std::size_t bank = 0; bank < banks; ++bank) {
    // The bank's slice of TD: for each pattern and each depth position, the
    // K cells of chains [bank*K, (bank+1)*K).
    TritVector slice;
    for (std::size_t row = 0; row < td.pattern_count(); ++row)
      for (std::size_t d = 0; d < depth; ++d)
        for (std::size_t c = 0; c < k; ++c) {
          const std::size_t chain = bank * k + c;
          const std::size_t cell = chain * depth + d;
          slice.push_back(cell < td.pattern_length() ? td.at(row, cell)
                                                     : Trit::X);
        }
    const TritVector te = coder.encode(slice);
    DecoderTrace trace;
    try {
      // One shared watchdog across banks: the budget bounds the whole
      // architecture run, not each pin separately.
      trace = decoder.run(te, slice.size(), watchdog);
    } catch (const codec::DecodeError& e) {
      throw e.with_pin(bank);  // each bank streams on its own ATE pin
    }
    report.encoded_bits += te.size();
    report.soc_cycles = std::max(report.soc_cycles, trace.soc_cycles);
    original_total += slice.size();
    const std::vector<TritVector> bank_chains =
        deinterleave(trace.scan_stream, k);
    for (std::size_t c = 0; c < k; ++c)
      report.chain_streams[bank * k + c] = bank_chains[c];
  }
  report.compression_ratio =
      codec::compression_ratio_percent(original_total, report.encoded_bits);
  return report;
}

}  // namespace nc::decomp
