#include "decomp/decoder_fsm.h"

#include <stdexcept>

namespace nc::decomp {

FsmStep fsm_step(FsmState state, bool data_bit, bool done) {
  FsmStep step;
  auto recognize = [&](HalfPlan a, HalfPlan b) {
    step.next = FsmState::kHalfA;
    step.recognized = true;
    step.plan_a = a;
    step.plan_b = b;
    step.consumes_data_bit = true;
  };
  auto advance = [&](FsmState next) {
    step.next = next;
    step.consumes_data_bit = true;
  };

  switch (state) {
    case FsmState::kIdle:
      if (!data_bit)
        recognize(HalfPlan::kFill0, HalfPlan::kFill0);  // C1 = "0"
      else
        advance(FsmState::kSaw1);
      break;
    case FsmState::kSaw1:
      if (!data_bit)
        recognize(HalfPlan::kFill1, HalfPlan::kFill1);  // C2 = "10"
      else
        advance(FsmState::kSaw11);
      break;
    case FsmState::kSaw11:
      advance(data_bit ? FsmState::kSaw111 : FsmState::kSaw110);
      break;
    case FsmState::kSaw110:
      if (!data_bit)
        recognize(HalfPlan::kData, HalfPlan::kData);  // C9 = "1100"
      else
        advance(FsmState::kSaw1101);
      break;
    case FsmState::kSaw1101:
      if (!data_bit)
        recognize(HalfPlan::kFill0, HalfPlan::kFill1);  // C3 = "11010"
      else
        recognize(HalfPlan::kFill1, HalfPlan::kFill0);  // C4 = "11011"
      break;
    case FsmState::kSaw111:
      advance(data_bit ? FsmState::kSaw1111 : FsmState::kSaw1110);
      break;
    case FsmState::kSaw1110:
      if (!data_bit)
        recognize(HalfPlan::kFill0, HalfPlan::kData);  // C5 = "11100"
      else
        recognize(HalfPlan::kData, HalfPlan::kFill0);  // C6 = "11101"
      break;
    case FsmState::kSaw1111:
      if (!data_bit)
        recognize(HalfPlan::kFill1, HalfPlan::kData);  // C7 = "11110"
      else
        recognize(HalfPlan::kData, HalfPlan::kFill1);  // C8 = "11111"
      break;
    case FsmState::kHalfA:
      step.next = done ? FsmState::kHalfB : FsmState::kHalfA;
      break;
    case FsmState::kHalfB:
      step.next = done ? FsmState::kAck : FsmState::kHalfB;
      break;
    case FsmState::kAck:
      step.next = FsmState::kIdle;
      step.ack = true;
      break;
  }
  return step;
}

FsmStep FsmEngine::step(bool data_bit, bool done) {
  if (trip_ != core::WatchdogTrip::kNone) return FsmStep{.next = state_};
  if (watchdog_ != nullptr) {
    trip_ = watchdog_->tick(1);
    if (trip_ != core::WatchdogTrip::kNone) return FsmStep{.next = state_};
  }
  ++steps_;
  const FsmStep out = fsm_step(state_, data_bit, done);
  state_ = out.next;
  return out;
}

codec::BlockClass plan_class(HalfPlan a, HalfPlan b) {
  using codec::BlockClass;
  using enum HalfPlan;
  if (a == kFill0 && b == kFill0) return BlockClass::kC1;
  if (a == kFill1 && b == kFill1) return BlockClass::kC2;
  if (a == kFill0 && b == kFill1) return BlockClass::kC3;
  if (a == kFill1 && b == kFill0) return BlockClass::kC4;
  if (a == kFill0 && b == kData) return BlockClass::kC5;
  if (a == kData && b == kFill0) return BlockClass::kC6;
  if (a == kFill1 && b == kData) return BlockClass::kC7;
  if (a == kData && b == kFill1) return BlockClass::kC8;
  return BlockClass::kC9;
}

}  // namespace nc::decomp
