// Table-driven variant of the single-scan decompressor.
//
// Table VII's frequency-directed coding rewires the codeword-recognition
// tree per test set; the hardware realization is the generic code FSM of
// nc::synth::synthesize_code_fsm. This model simulates that decoder for ANY
// 9C codeword table with the same dual-clock cycle accounting as
// SingleScanDecoder, so the TAT analysis extends to re-assigned codes.
#pragma once

#include "codec/codeword_table.h"
#include "decomp/single_scan.h"

namespace nc::decomp {

class ProgrammableDecoder {
 public:
  ProgrammableDecoder(std::size_t block_size, codec::CodewordTable table,
                      unsigned p);

  /// Same contract as SingleScanDecoder::run.
  DecoderTrace run(const bits::TritVector& te,
                   std::size_t original_bits) const;

  const codec::CodewordTable& table() const noexcept { return table_; }

 private:
  std::size_t k_;
  codec::CodewordTable table_;
  unsigned p_;
};

}  // namespace nc::decomp
