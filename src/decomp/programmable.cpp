#include "decomp/programmable.h"

#include <stdexcept>

#include "bits/bitstream.h"

namespace nc::decomp {

using bits::Trit;
using bits::TritVector;
using codec::BlockClass;

ProgrammableDecoder::ProgrammableDecoder(std::size_t block_size,
                                         codec::CodewordTable table,
                                         unsigned p)
    : k_(block_size), table_(table), p_(p) {
  if (k_ < 2 || k_ % 2 != 0)
    throw std::invalid_argument("decoder block size K must be even and >= 2");
  if (p_ < 1) throw std::invalid_argument("clock ratio p must be >= 1");
}

DecoderTrace ProgrammableDecoder::run(const TritVector& te,
                                      std::size_t original_bits) const {
  DecoderTrace trace;
  bits::TritReader in(te);
  const std::size_t half = k_ / 2;

  auto fill_half = [&](bool value) {
    trace.scan_stream.append_run(half, bits::trit_from_bit(value));
    trace.soc_cycles += half;
  };
  auto data_half = [&] {
    trace.scan_stream.append(in.next_trits(half));
    trace.ate_cycles += half;
    trace.soc_cycles += half * p_;
  };

  while (trace.scan_stream.size() < original_bits) {
    const std::size_t before = in.position();
    const BlockClass cls = table_.match(in);
    const std::size_t codeword_bits = in.position() - before;
    trace.ate_cycles += codeword_bits;
    trace.soc_cycles += codeword_bits * p_;
    ++trace.codewords;

    switch (cls) {
      case BlockClass::kC1:
      case BlockClass::kC2:
      case BlockClass::kC3:
      case BlockClass::kC4: {
        const auto fill = codec::uniform_fill(cls);
        fill_half(fill[0]);
        fill_half(fill[1]);
        break;
      }
      case BlockClass::kC5:
      case BlockClass::kC6:
      case BlockClass::kC7:
      case BlockClass::kC8: {
        const codec::MixedShape shape = codec::mixed_shape(cls);
        if (shape.mismatch_is_left) {
          data_half();
          fill_half(shape.uniform_value);
        } else {
          fill_half(shape.uniform_value);
          data_half();
        }
        break;
      }
      case BlockClass::kC9:
        data_half();
        data_half();
        break;
    }
  }
  trace.scan_stream.resize(original_bits);
  return trace;
}

}  // namespace nc::decomp
