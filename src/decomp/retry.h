// The per-pattern transmit / decode / validate / re-stream loop shared by
// the resilient ATE session (ate_session.cpp) and the fleet manager
// (fleet.cpp). Both call this helper so the retry semantics -- what counts
// as a detected corruption, which attempt charges which SessionResult
// counter, when a retry is booked -- exist exactly once:
//
//  * each attempt transmits `te` through the (fault-injecting) channel and
//    decodes the received stream;
//  * a corruption is DETECTED when the decode raises a typed
//    codec::DecodeError or the decoded stream contradicts a specified
//    stimulus bit of `cube` (covered_by check); either way the attempt's
//    bits are booked as wasted and the pattern may be re-streamed;
//  * a clean decode of a corrupted stream is provably X-masked (every
//    corrupted symbol landed on a leftover-X fill) and is accepted, counted
//    as an undetected corruption;
//  * a retry is booked only when another attempt actually follows, so
//    `retries` equals re-streams issued, never attempts budgeted.
#pragma once

#include <cstddef>
#include <functional>

#include "bits/trit_vector.h"
#include "decomp/ate_session.h"
#include "decomp/channel.h"
#include "decomp/single_scan.h"

namespace nc::decomp {

/// Step budget for the watchdog guarding one decode attempt, as a function
/// of the received stream's symbol count (truncation makes it per-attempt).
/// An empty function runs the decode unguarded (the paper-model session).
using WatchdogBudgetFn = std::function<std::size_t(std::size_t rx_symbols)>;

/// What one pattern's streaming loop produced. `session` accumulation
/// (ate_bits, soc_cycles, corruption/retry counters, patterns_retried)
/// happens inside the helper; the caller handles only success/fail-safe.
struct StreamOutcome {
  bool applied = false;          // a trusted decode landed in scan_stream
  unsigned used_retries = 0;     // re-streams this pattern consumed
  std::size_t watchdog_trips = 0;
  bits::TritVector scan_stream;  // valid when `applied`
};

/// Streams `te` (the compressed form of `cube`) through `channel` up to
/// `attempts` times, decoding with `decoder`, accumulating accounting into
/// `session`. Stops at the first trusted decode.
StreamOutcome stream_pattern_with_retry(ChannelModel& channel,
                                        const SingleScanDecoder& decoder,
                                        const bits::TritVector& te,
                                        const bits::TritVector& cube,
                                        unsigned attempts,
                                        SessionResult& session,
                                        const WatchdogBudgetFn& budget = {});

}  // namespace nc::decomp
