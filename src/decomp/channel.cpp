#include "decomp/channel.h"

#include <sstream>
#include <stdexcept>

namespace nc::decomp {

using bits::Trit;
using bits::TritVector;

namespace {

double parse_rate(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double rate = 0.0;
  try {
    rate = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("channel spec: bad value for " + key + ": '" +
                                value + "'");
  }
  if (used != value.size() || rate < 0.0 || rate > 1.0)
    throw std::invalid_argument("channel spec: " + key +
                                " must be a probability in [0,1], got '" +
                                value + "'");
  return rate;
}

}  // namespace

ChannelConfig ChannelConfig::parse(const std::string& spec) {
  ChannelConfig cfg;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("channel spec: expected key=value, got '" +
                                  item + "'");
    const std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    if (key == "flip") {
      cfg.flip_rate = parse_rate(key, value);
    } else if (key == "burst") {
      // burst=RATE or burst=RATE:LENGTH
      if (const auto colon = value.find(':'); colon != std::string::npos) {
        const std::string len = value.substr(colon + 1);
        try {
          cfg.burst_length = std::stoul(len);
        } catch (const std::exception&) {
          throw std::invalid_argument("channel spec: bad burst length '" +
                                      len + "'");
        }
        if (cfg.burst_length == 0)
          throw std::invalid_argument("channel spec: burst length must be >0");
        value = value.substr(0, colon);
      }
      cfg.burst_rate = parse_rate(key, value);
    } else if (key == "trunc") {
      cfg.truncate_rate = parse_rate(key, value);
    } else if (key == "stuck") {
      cfg.stuck_rate = parse_rate(key, value);
    } else if (key == "seed") {
      try {
        cfg.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("channel spec: bad seed '" + value + "'");
      }
    } else {
      throw std::invalid_argument("channel spec: unknown key '" + key + "'");
    }
  }
  return cfg;
}

std::string ChannelConfig::to_string() const {
  std::ostringstream out;
  out << "flip=" << flip_rate << ",burst=" << burst_rate << ':'
      << burst_length << ",trunc=" << truncate_rate << ",stuck=" << stuck_rate
      << ",seed=" << seed;
  return out.str();
}

ChannelModel::ChannelModel(const ChannelConfig& config)
    : config_(config), rng_(config.seed) {}

void ChannelModel::reseed(std::uint64_t seed) {
  config_.seed = seed;
  rng_.seed(seed);
}

Trit ChannelModel::flip(Trit t) {
  switch (t) {
    case Trit::Zero: return Trit::One;
    case Trit::One: return Trit::Zero;
    case Trit::X:
      // The ATE streams some concrete fill for a leftover X; a corrupted
      // fill is still a specified bit, and still covered by X.
      return (rng_() & 1u) ? Trit::One : Trit::Zero;
  }
  return t;
}

TritVector ChannelModel::transmit(const TritVector& te) {
  ++stats_.transmissions;
  stats_.symbols_in += te.size();
  last_corrupted_ = false;

  TritVector out = te;
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Point flips and bursts walk the stream once.
  if (config_.flip_rate > 0.0 || config_.burst_rate > 0.0) {
    std::size_t burst_left = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      bool corrupt_here = false;
      if (burst_left > 0) {
        corrupt_here = true;
        --burst_left;
      } else if (config_.burst_rate > 0.0 &&
                 unit(rng_) < config_.burst_rate) {
        ++stats_.bursts;
        corrupt_here = true;
        burst_left = config_.burst_length - 1;
      }
      if (!corrupt_here && config_.flip_rate > 0.0 &&
          unit(rng_) < config_.flip_rate)
        corrupt_here = true;
      if (corrupt_here) {
        out.set(i, flip(out.get(i)));
        ++stats_.flipped_symbols;
        last_corrupted_ = true;
      }
    }
  }

  // Stuck-at pin: from a random offset onward every symbol reads constant.
  if (config_.stuck_rate > 0.0 && !out.empty() &&
      unit(rng_) < config_.stuck_rate) {
    ++stats_.stuck_events;
    const std::size_t from = rng_() % out.size();
    const Trit value = (rng_() & 1u) ? Trit::One : Trit::Zero;
    for (std::size_t i = from; i < out.size(); ++i) {
      if (out.get(i) != value) last_corrupted_ = true;
      out.set(i, value);
      ++stats_.stuck_symbols;
    }
  }

  // Truncation last: the tail that would have carried the faults is gone.
  if (config_.truncate_rate > 0.0 && !out.empty() &&
      unit(rng_) < config_.truncate_rate) {
    ++stats_.truncations;
    const std::size_t cut = rng_() % out.size();
    stats_.truncated_symbols += out.size() - cut;
    out.resize(cut);
    // resize() fills nothing here (it shrinks), and losing symbols is
    // always a corruption.
    last_corrupted_ = true;
  }

  stats_.symbols_out += out.size();
  if (last_corrupted_) ++stats_.corrupted_transmissions;
  return out;
}

}  // namespace nc::decomp
