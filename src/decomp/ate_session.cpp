#include "decomp/ate_session.h"

#include "decomp/single_scan.h"
#include "sim/logic_sim.h"

namespace nc::decomp {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

SessionResult run_test_session(const circuit::Netlist& netlist,
                               const TestSet& cubes,
                               const SessionConfig& config,
                               const std::optional<sim::Fault>& fault) {
  SessionResult result;
  if (cubes.pattern_count() == 0) return result;

  // The ATE compresses once and streams; the decoder fills the chain.
  const codec::NineCoded coder(config.block_size);
  const TritVector td = cubes.flatten();
  const TritVector te = coder.encode(td);
  const SingleScanDecoder decoder(config.block_size, config.p);
  const DecoderTrace trace = decoder.run(te, td.size());
  result.ate_bits = te.size();
  // One capture cycle per pattern on top of the decoder's scan-in time;
  // scan-out overlaps the next pattern's scan-in.
  result.soc_cycles = trace.soc_cycles + cubes.pattern_count();

  const TestSet applied = TestSet::unflatten(
      trace.scan_stream, cubes.pattern_count(), cubes.pattern_length());

  sim::ParallelSim good_sim(netlist);
  sim::ParallelSim dut_sim(netlist);
  TestSet one(1, cubes.pattern_length());
  for (std::size_t pat = 0; pat < applied.pattern_count(); ++pat) {
    one.set_pattern(0, applied.pattern(pat));
    good_sim.load(one, 0);
    good_sim.run();
    dut_sim.load(one, 0);
    if (fault.has_value())
      dut_sim.run_with_fault(fault->node, fault->consumer, fault->pin,
                             fault->stuck_value);
    else
      dut_sim.run();
    const bool failed = dut_sim.diff_mask(good_sim.values()) != 0;
    result.pattern_failed.push_back(failed);
    if (failed) ++result.failing_patterns;
    ++result.patterns_applied;
  }
  return result;
}

}  // namespace nc::decomp
