#include "decomp/ate_session.h"

#include <exception>
#include <future>
#include <memory>
#include <vector>

#include "codec/decode_error.h"
#include "codec/sharded.h"
#include "core/thread_pool.h"
#include "decomp/response_compare.h"
#include "decomp/retry.h"
#include "decomp/single_scan.h"
#include "sim/logic_sim.h"

namespace nc::decomp {

using bits::TestSet;
using bits::Trit;
using bits::TritVector;

namespace {

/// The paper's model: one TE for the whole TD over a perfect link.
SessionResult run_perfect(const circuit::Netlist& netlist,
                          const TestSet& cubes, const SessionConfig& config,
                          const std::optional<sim::Fault>& fault) {
  SessionResult result;

  // The ATE compresses once and streams; the decoder fills the chain.
  const codec::NineCoded coder(config.block_size, config.codec_impl);
  const TritVector td = cubes.flatten();
  const TritVector te = coder.encode(td);
  const SingleScanDecoder decoder(config.block_size, config.p);
  const DecoderTrace trace = decoder.run(te, td.size());
  result.ate_bits = te.size();
  // One capture cycle per pattern on top of the decoder's scan-in time;
  // scan-out overlaps the next pattern's scan-in.
  result.soc_cycles = trace.soc_cycles + cubes.pattern_count();

  const TestSet applied = TestSet::unflatten(
      trace.scan_stream, cubes.pattern_count(), cubes.pattern_length());

  ResponseComparator compare(netlist, cubes.pattern_length());
  for (std::size_t pat = 0; pat < applied.pattern_count(); ++pat) {
    const bool failed = compare.pattern_fails(applied.pattern(pat), fault);
    result.pattern_failed.push_back(failed);
    if (failed) ++result.failing_patterns;
    ++result.patterns_applied;
  }
  return result;
}

/// Pipelined perfect-channel path: the test set is cut into pattern-aligned
/// shards, each compressed into its own TE. The main thread plays the ATE --
/// it compresses and streams shards strictly in order -- while pool workers
/// decode, unflatten and response-compare the shards already streamed, so
/// the channel transfer of shard k+1 overlaps the decode of shard k.
/// Workers write only their own slot of `outcomes`; the merge walks shards
/// in index order, so the result is independent of jobs and scheduling.
SessionResult run_perfect_parallel(const circuit::Netlist& netlist,
                                   const TestSet& cubes,
                                   const SessionConfig& config,
                                   const std::optional<sim::Fault>& fault) {
  const codec::NineCoded coder(config.block_size, config.codec_impl);
  const SingleScanDecoder decoder(config.block_size, config.p);
  const std::size_t jobs = config.jobs == 0
                               ? core::ThreadPool::hardware_threads()
                               : config.jobs;
  const auto plan = codec::shard_plan(
      cubes.pattern_count(), config.shards == 0 ? jobs : config.shards);
  const TritVector& flat = cubes.flatten();
  const std::size_t width = cubes.pattern_length();

  struct ShardOutcome {
    std::size_t ate_bits = 0;
    std::size_t soc_cycles = 0;
    std::vector<bool> failed;
  };
  std::vector<ShardOutcome> outcomes(plan.size());

  core::ThreadPool pool(jobs < plan.size() ? jobs : plan.size());
  std::vector<std::future<void>> pending;
  pending.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto [first, patterns] = plan[i];
    // ATE side, in stream order: compress shard i and put it on the link.
    auto te = std::make_shared<const TritVector>(
        coder.encode(flat.slice(first * width, patterns * width)));
    // SoC side, concurrent: decode + capture + compare the received shard.
    pending.push_back(pool.submit([&netlist, &fault, &decoder, &outcomes, te,
                                   i, patterns = patterns, width] {
      const DecoderTrace trace = decoder.run(*te, patterns * width);
      const TestSet applied =
          TestSet::unflatten(trace.scan_stream, patterns, width);
      ShardOutcome& out = outcomes[i];
      out.ate_bits = te->size();
      out.soc_cycles = trace.soc_cycles + patterns;  // + capture cycles
      ResponseComparator compare(netlist, width);
      out.failed.reserve(patterns);
      for (std::size_t pat = 0; pat < patterns; ++pat)
        out.failed.push_back(compare.pattern_fails(applied.pattern(pat), fault));
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  SessionResult result;
  for (const ShardOutcome& out : outcomes) {
    result.ate_bits += out.ate_bits;
    result.soc_cycles += out.soc_cycles;
    for (const bool failed : out.failed) {
      result.pattern_failed.push_back(failed);
      if (failed) ++result.failing_patterns;
      ++result.patterns_applied;
    }
  }
  return result;
}

/// Resilient mode: one TE per pattern (the decoder FSM resynchronizes at
/// every pattern boundary), streamed through the fault injector, with
/// detected corruptions re-streamed under the RetryPolicy.
SessionResult run_resilient(const circuit::Netlist& netlist,
                            const TestSet& cubes, const SessionConfig& config,
                            const std::optional<sim::Fault>& fault) {
  SessionResult result;
  const ResilienceConfig& res = *config.resilience;
  const codec::NineCoded coder(config.block_size, config.codec_impl);
  const SingleScanDecoder decoder(config.block_size, config.p);
  ChannelModel channel(res.channel);
  ResponseComparator compare(netlist, cubes.pattern_length());

  for (std::size_t pat = 0; pat < cubes.pattern_count(); ++pat) {
    const TritVector cube = cubes.pattern(pat);
    const TritVector te = coder.encode(cube);

    // Shared transmit/decode/validate/re-stream loop (decomp/retry.h);
    // this path runs it unguarded (no watchdog), the paper model.
    StreamOutcome streamed = stream_pattern_with_retry(
        channel, decoder, te, cube, res.retry.max_retries + 1, result);

    if (!streamed.applied) {
      // Fail-safe: an unstreamable pattern is never reported as passing.
      ++result.patterns_unrecovered;
      result.pattern_failed.push_back(true);
      if (result.patterns_unrecovered >= res.retry.abort_after) {
        result.aborted = true;
        break;
      }
      continue;
    }

    const bool failed = compare.pattern_fails(streamed.scan_stream, fault);
    result.pattern_failed.push_back(failed);
    if (failed) ++result.failing_patterns;
    ++result.patterns_applied;
  }
  result.channel = channel.stats();
  return result;
}

}  // namespace

SessionResult run_test_session(const circuit::Netlist& netlist,
                               const TestSet& cubes,
                               const SessionConfig& config,
                               const std::optional<sim::Fault>& fault) {
  if (cubes.pattern_count() == 0) return SessionResult{};
  if (config.resilience.has_value())
    return run_resilient(netlist, cubes, config, fault);
  // The sharded path also serves jobs=1 with explicit sharding, so tests
  // can compare a parallel run against its serial twin shard-for-shard.
  if (config.jobs != 1 || config.shards > 1)
    return run_perfect_parallel(netlist, cubes, config, fault);
  return run_perfect(netlist, cubes, config, fault);
}

}  // namespace nc::decomp
