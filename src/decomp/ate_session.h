// End-to-end ATE test-session model: the tester streams the 9C-compressed
// stimulus through the on-chip decompressor into the scan chain, the
// circuit captures, and the responses are compared against the fault-free
// expectations -- per-pattern pass/fail plus the full cycle accounting the
// paper's TAT analysis abstracts (Section III-C ignores the one capture
// cycle per pattern; this model includes it, and treats scan-out as
// overlapped with the next scan-in, the standard ATE pipelining).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "codec/nine_coded.h"
#include "sim/fault.h"

namespace nc::decomp {

struct SessionConfig {
  std::size_t block_size = 8;  // K of the on-chip decoder
  unsigned p = 8;              // f_scan / f_ate
};

struct SessionResult {
  std::size_t patterns_applied = 0;
  std::size_t failing_patterns = 0;  // response provably differs from good
  std::size_t ate_bits = 0;          // bits streamed from the tester (|TE|)
  std::size_t soc_cycles = 0;        // scan-in + capture cycles
  std::vector<bool> pattern_failed;  // per pattern

  bool device_passes() const noexcept { return failing_patterns == 0; }
};

/// Runs the session. `cubes` is the test set the ATE holds (X allowed: the
/// decoder reproduces them and comparison treats X as unknown). When
/// `fault` is set, the device under test carries that defect; expected
/// responses always come from the fault-free machine.
SessionResult run_test_session(const circuit::Netlist& netlist,
                               const bits::TestSet& cubes,
                               const SessionConfig& config,
                               const std::optional<sim::Fault>& fault = {});

}  // namespace nc::decomp
