// End-to-end ATE test-session model: the tester streams the 9C-compressed
// stimulus through the on-chip decompressor into the scan chain, the
// circuit captures, and the responses are compared against the fault-free
// expectations -- per-pattern pass/fail plus the full cycle accounting the
// paper's TAT analysis abstracts (Section III-C ignores the one capture
// cycle per pattern; this model includes it, and treats scan-out as
// overlapped with the next scan-in, the standard ATE pipelining).
//
// Two operating modes:
//  * Perfect channel (default): the paper's model -- TD is compressed once
//    and streamed as one TE; nothing can go wrong.
//  * Resilient (config.resilience set): the link carries the configured
//    fault model (channel.h), each pattern is compressed and streamed as
//    its own TE so the decoder FSM resynchronizes at every pattern
//    boundary, and detected corruptions (typed DecodeError from the decode
//    path, or a decoded pattern that contradicts a specified stimulus bit)
//    trigger per-pattern re-streams under a RetryPolicy. One corrupted
//    block then costs one pattern retry, never the whole session.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "codec/nine_coded.h"
#include "decomp/channel.h"
#include "sim/fault.h"

namespace nc::decomp {

/// How the tester reacts to detected corruptions.
struct RetryPolicy {
  /// Re-streams allowed per pattern after its first corrupted attempt.
  unsigned max_retries = 3;
  /// Abort the whole session once this many patterns exhaust their retries
  /// (the link is considered dead). Default: never abort, skip and go on.
  std::size_t abort_after = static_cast<std::size_t>(-1);
};

struct ResilienceConfig {
  ChannelConfig channel;
  RetryPolicy retry;
};

struct SessionConfig {
  std::size_t block_size = 8;  // K of the on-chip decoder
  unsigned p = 8;              // f_scan / f_ate
  /// Which 9C hot-path implementation the session's coders run. Never
  /// changes any result (the impls are byte-identical); exposed so the
  /// scalar reference stays drivable end to end.
  codec::CodecImpl codec_impl = codec::CodecImpl::kAuto;
  /// Engages the faulty-channel model and the retry protocol.
  std::optional<ResilienceConfig> resilience;

  /// Worker threads for the pipelined perfect-channel path: the main thread
  /// compresses and "streams" shard k+1 while pool workers decode and
  /// compare shard k. jobs == 1 with default sharding is the paper's serial
  /// model (default, bit-for-bit unchanged); 0 = one worker per hardware
  /// thread. Ignored in resilient mode, whose channel fault sequence is
  /// inherently ordered.
  std::size_t jobs = 1;
  /// Pattern-aligned shards for the pipelined path, each streamed as its
  /// own TE (the decoder FSM resynchronizes at every shard boundary);
  /// 0 = one shard per job. With shards == 1 the session matches the
  /// serial model exactly -- same TE bits, same accounting, same verdicts.
  /// More shards re-pad each TE at its shard boundary, which adds per-shard
  /// padding to ate_bits and may pick different (equally legal) fills for
  /// don't-care stimulus positions than the single-TE stream. For any fixed
  /// shard count the results are a pure function of the input: jobs and
  /// scheduling never change them.
  std::size_t shards = 0;
};

struct SessionResult {
  std::size_t patterns_applied = 0;
  std::size_t failing_patterns = 0;  // response provably differs from good
  std::size_t ate_bits = 0;          // bits streamed from the tester (|TE|)
  std::size_t soc_cycles = 0;        // scan-in + capture cycles
  std::vector<bool> pattern_failed;  // per pattern

  // --- resilience accounting (all zero on the perfect-channel path) ---
  std::size_t patterns_retried = 0;   // patterns needing >= 1 re-stream
  std::size_t retries = 0;            // total re-streams issued
  std::size_t corruptions_detected = 0;    // decode error or stimulus check
  std::size_t corruptions_undetected = 0;  // decoded clean; provably X-masked
  std::size_t patterns_unrecovered = 0;    // retry budget exhausted
  std::size_t wasted_ate_bits = 0;  // bits of attempts that were re-streamed
  bool aborted = false;             // RetryPolicy::abort_after tripped
  ChannelStats channel;             // injector's own accounting

  bool device_passes() const noexcept {
    return failing_patterns == 0 && patterns_unrecovered == 0 && !aborted;
  }
};

/// Runs the session. `cubes` is the test set the ATE holds (X allowed: the
/// decoder reproduces them and comparison treats X as unknown). When
/// `fault` is set, the device under test carries that defect; expected
/// responses always come from the fault-free machine.
SessionResult run_test_session(const circuit::Netlist& netlist,
                               const bits::TestSet& cubes,
                               const SessionConfig& config,
                               const std::optional<sim::Fault>& fault = {});

}  // namespace nc::decomp
