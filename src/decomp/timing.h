// Test-application-time model of Section III-C.
//
// Two clock domains: the ATE drives codeword and mismatch-payload bits at
// f_ate; the SoC shifts scan chains at f_scan = p * f_ate. All times here
// are counted in SoC cycles (one ATE bit therefore costs p SoC cycles):
//
//   uncompressed:  t_nocomp = |TD| ATE bits              = |TD| * p
//   per codeword:  |C_i| ATE bits                        = |C_i| * p
//   uniform half:  K/2 bits shifted at SoC rate          = K/2
//   mismatch half: K/2 bits streamed from the ATE        = K/2 * p
//
// which reproduces the paper's t_1 ... t_9 expressions, and
// TAT% = (t_nocomp - t_comp) / t_nocomp -> CR% as p grows.
#pragma once

#include <cstddef>

#include "codec/codeword_table.h"
#include "codec/nine_coded.h"

namespace nc::decomp {

/// SoC cycles to apply the uncompressed TD straight from the ATE.
inline std::size_t nocomp_soc_cycles(std::size_t td_bits, unsigned p) {
  return td_bits * p;
}

/// SoC cycles to apply the 9C-compressed stream described by `stats`
/// (encoded with `table`) through the single-scan decoder.
std::size_t comp_soc_cycles(const codec::NineCodedStats& stats,
                            const codec::CodewordTable& table, unsigned p);

/// TAT% = (t_nocomp - t_comp) / t_nocomp * 100.
double tat_percent(const codec::NineCodedStats& stats,
                   const codec::CodewordTable& table, unsigned p);

}  // namespace nc::decomp
