#include "decomp/fleet.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "codec/decode_error.h"
#include "codec/nine_coded.h"
#include "core/crc.h"
#include "core/hash.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "decomp/response_compare.h"
#include "decomp/retry.h"
#include "decomp/single_scan.h"

namespace nc::decomp {

using bits::TestSet;
using bits::TritVector;

namespace {

constexpr unsigned char kJournalMagic[4] = {'N', 'C', '9', 'J'};
constexpr unsigned kJournalVersion = 2;
// magic + version + config hash
constexpr std::size_t kJournalHeaderSize = sizeof(kJournalMagic) + 1 + 8;

// ---------------------------------------------------------------- hashing

/// The per-(device, batch) channel seeds derive from the fleet seed through
/// core::mix64, so adjacent batches never share a fault stream.
using core::mix64;

/// Incremental FNV-1a over 64-bit words; serves both the journal's config
/// hash and fleet_fingerprint().
class Fnv {
 public:
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFu;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void b(bool v) noexcept { u64(v ? 1 : 0); }
  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

std::uint64_t double_bits(double d) noexcept {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(d));
  __builtin_memcpy(&out, &d, sizeof(out));
  return out;
}

/// CRC-32 over raw bytes (the shared core::crc32), guarding the journal the
/// same way the sharded container guards its payload.
std::uint32_t crc32_bytes(const unsigned char* data, std::size_t len) {
  return core::crc32(data, len);
}

std::uint32_t read_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

// ------------------------------------------------------- journal buffers

class ByteWriter {
 public:
  void u8(unsigned v) { out_.push_back(static_cast<unsigned char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8((v >> (8 * i)) & 0xFFu);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8((v >> (8 * i)) & 0xFFu);
  }
  void bools(const std::vector<bool>& bits) {
    u64(bits.size());
    unsigned char acc = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) acc |= static_cast<unsigned char>(1u << (i % 8));
      if (i % 8 == 7) {
        u8(acc);
        acc = 0;
      }
    }
    if (bits.size() % 8 != 0) u8(acc);
  }
  void raw(const std::vector<unsigned char>& bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  const std::vector<unsigned char>& bytes() const noexcept { return out_; }

 private:
  std::vector<unsigned char> out_;
};

class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  unsigned u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::vector<bool> bools() {
    const std::uint64_t n = u64();
    // Guard before allocating: a corrupt length must fail as "truncated",
    // not as a multi-gigabyte allocation.
    need((n + 7) / 8);
    std::vector<bool> bits(static_cast<std::size_t>(n));
    unsigned char acc = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (i % 8 == 0) acc = static_cast<unsigned char>(u8());
      bits[i] = (acc >> (i % 8)) & 1u;
    }
    return bits;
  }
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw std::runtime_error("fleet journal truncated");
  }
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------- device state

struct DeviceState {
  explicit DeviceState(const ChannelConfig& channel_config)
      : channel(channel_config) {}

  ChannelModel channel;
  std::unique_ptr<ResponseComparator> compare;

  BreakerState breaker = BreakerState::kClosed;
  unsigned consecutive_failures = 0;
  std::uint64_t cooldown_batches = 0;

  SessionResult session;       // cumulative; session.channel filled lazily
  ChannelStats channel_base;   // stats restored from a journal segment
  std::size_t watchdog_trips = 0;
  std::size_t patterns_skipped = 0;
  std::size_t breaker_opens = 0;
  std::size_t probes = 0;
  std::size_t probe_successes = 0;

  ChannelStats total_channel_stats() const noexcept {
    ChannelStats t = channel_base;
    const ChannelStats& s = channel.stats();
    t.transmissions += s.transmissions;
    t.corrupted_transmissions += s.corrupted_transmissions;
    t.symbols_in += s.symbols_in;
    t.symbols_out += s.symbols_out;
    t.flipped_symbols += s.flipped_symbols;
    t.bursts += s.bursts;
    t.truncations += s.truncations;
    t.truncated_symbols += s.truncated_symbols;
    t.stuck_events += s.stuck_events;
    t.stuck_symbols += s.stuck_symbols;
    return t;
  }
};

void hash_channel_stats(Fnv& fnv, const ChannelStats& s) {
  fnv.u64(s.transmissions);
  fnv.u64(s.corrupted_transmissions);
  fnv.u64(s.symbols_in);
  fnv.u64(s.symbols_out);
  fnv.u64(s.flipped_symbols);
  fnv.u64(s.bursts);
  fnv.u64(s.truncations);
  fnv.u64(s.truncated_symbols);
  fnv.u64(s.stuck_events);
  fnv.u64(s.stuck_symbols);
}

void write_channel_stats(ByteWriter& w, const ChannelStats& s) {
  w.u64(s.transmissions);
  w.u64(s.corrupted_transmissions);
  w.u64(s.symbols_in);
  w.u64(s.symbols_out);
  w.u64(s.flipped_symbols);
  w.u64(s.bursts);
  w.u64(s.truncations);
  w.u64(s.truncated_symbols);
  w.u64(s.stuck_events);
  w.u64(s.stuck_symbols);
}

ChannelStats read_channel_stats(ByteReader& r) {
  ChannelStats s;
  s.transmissions = r.u64();
  s.corrupted_transmissions = r.u64();
  s.symbols_in = r.u64();
  s.symbols_out = r.u64();
  s.flipped_symbols = r.u64();
  s.bursts = r.u64();
  s.truncations = r.u64();
  s.truncated_symbols = r.u64();
  s.stuck_events = r.u64();
  s.stuck_symbols = r.u64();
  return s;
}

// --------------------------------------------------------------- runner

class FleetRunner {
 public:
  FleetRunner(const circuit::Netlist& netlist, const TestSet& cubes,
              const FleetConfig& config,
              const std::vector<DeviceProfile>& profiles)
      : netlist_(netlist),
        cubes_(cubes),
        config_(config),
        profiles_(profiles),
        coder_(config.block_size, config.codec_impl),
        decoder_(config.block_size, config.p) {
    if (profiles_.empty())
      throw std::invalid_argument("fleet needs at least one device");
    if (config_.batch_patterns == 0)
      throw std::invalid_argument("fleet batch size must be >= 1");
    config_hash_ = config_hash();
    states_.reserve(profiles_.size());
    for (const DeviceProfile& profile : profiles_) {
      states_.emplace_back(profile.channel);
      states_.back().compare = std::make_unique<ResponseComparator>(
          netlist_, cubes_.pattern_length());
    }
  }

  FleetResult run() {
    const std::size_t patterns = cubes_.pattern_count();
    const std::size_t total_batches =
        (patterns + config_.batch_patterns - 1) / config_.batch_patterns;

    // The ATE compresses each pattern exactly once; every device's stream
    // of pattern i is the same TE through a different faulty link.
    const std::size_t jobs = config_.jobs == 0
                                 ? core::ThreadPool::hardware_threads()
                                 : config_.jobs;
    core::ThreadPool pool(std::min(jobs, std::max<std::size_t>(
                                             1, profiles_.size())));
    te_ = core::parallel_map(pool, patterns, [this](std::size_t i) {
      return coder_.encode(cubes_.pattern(i));
    });

    FleetResult result;
    std::size_t next_batch = 0;
    if (config_.resume && !config_.checkpoint_path.empty() &&
        load_journal(next_batch, result.batches_run))
      result.resumed = true;

    std::size_t segment_batches = 0;
    bool stopped = false;
    for (std::size_t batch = next_batch; batch < total_batches; ++batch) {
      if (config_.cancel != nullptr && config_.cancel->cancelled()) {
        stopped = true;
        break;
      }
      core::parallel_for(pool, 0, states_.size(), [this, batch](
                                                      std::size_t dev) {
        run_device_batch(dev, batch);
      });
      ++result.batches_run;
      ++segment_batches;
      if (!config_.checkpoint_path.empty()) {
        save_journal(batch + 1, result.batches_run);
        ++result.checkpoints_written;
      }
      if (segment_batches >= config_.stop_after_batches) {
        stopped = true;
        break;
      }
    }
    result.complete = !stopped || result.batches_run == total_batches;
    finalize(result);
    return result;
  }

 private:
  // ------------------------------------------------------- deterministic
  std::uint64_t batch_seed(std::size_t dev, std::size_t batch) const {
    return mix64(config_.seed ^ mix64(profiles_[dev].channel.seed ^
                                      mix64((dev << 24) ^ batch)));
  }

  std::size_t watchdog_budget(std::size_t rx_symbols) const {
    if (config_.watchdog_steps != 0) return config_.watchdog_steps;
    // A clean decode costs at most ~5 FSM steps per codeword plus one step
    // per scan bit; 8x the combined stream sizes can never trip it.
    return 64 + 8 * (cubes_.pattern_length() + rx_symbols);
  }

  // --------------------------------------------------------- batch logic
  void run_device_batch(std::size_t dev, std::size_t batch) {
    DeviceState& st = states_[dev];
    if (st.session.aborted) return;
    const std::size_t first = batch * config_.batch_patterns;
    const std::size_t last =
        std::min(first + config_.batch_patterns, cubes_.pattern_count());

    // Reseed per batch: the fault stream of batch k is a pure function of
    // (fleet seed, device, k), so resume replays exactly what an
    // uninterrupted run would have seen.
    st.channel.reseed(batch_seed(dev, batch));

    if (st.breaker == BreakerState::kOpen) {
      if (st.cooldown_batches > 0) {
        --st.cooldown_batches;
        st.patterns_skipped += last - first;
        return;
      }
      st.breaker = BreakerState::kHalfOpen;
    }

    for (std::size_t pat = first; pat < last; ++pat) {
      if (st.session.aborted) break;
      if (st.breaker == BreakerState::kOpen) {
        // A failed probe re-opened the breaker mid-batch.
        st.patterns_skipped += last - pat;
        break;
      }
      apply_pattern(dev, st, pat);
    }
  }

  void apply_pattern(std::size_t dev, DeviceState& st, std::size_t pat) {
    const bool probe = st.breaker == BreakerState::kHalfOpen;
    if (probe) ++st.probes;
    const TritVector& te = te_[pat];
    const TritVector cube = cubes_.pattern(pat);
    // A half-open breaker risks exactly one transmission on the device.
    const unsigned attempts = probe ? 1 : config_.retry.max_retries + 1;

    // Shared transmit/decode/validate/re-stream loop (decomp/retry.h),
    // here with the fleet's per-attempt watchdog budget.
    const StreamOutcome streamed = stream_pattern_with_retry(
        st.channel, decoder_, te, cube, attempts, st.session,
        [this](std::size_t rx_symbols) { return watchdog_budget(rx_symbols); });
    st.watchdog_trips += streamed.watchdog_trips;

    if (streamed.applied) {
      st.consecutive_failures = 0;
      if (probe) {
        ++st.probe_successes;
        st.breaker = BreakerState::kClosed;
      }
      const bool failed =
          st.compare->pattern_fails(streamed.scan_stream, profiles_[dev].fault);
      st.session.pattern_failed.push_back(failed);
      if (failed) ++st.session.failing_patterns;
      ++st.session.patterns_applied;
      return;
    }

    // Fail-safe: an unstreamable pattern is never reported as passing.
    ++st.session.patterns_unrecovered;
    st.session.pattern_failed.push_back(true);
    if (probe) {
      st.breaker = BreakerState::kOpen;
      st.cooldown_batches = config_.breaker.probe_after;
      ++st.breaker_opens;
    } else if (++st.consecutive_failures >= config_.breaker.open_after) {
      st.breaker = BreakerState::kOpen;
      st.cooldown_batches = config_.breaker.probe_after;
      ++st.breaker_opens;
    }
    if (st.session.patterns_unrecovered >= config_.retry.abort_after)
      st.session.aborted = true;
  }

  // ----------------------------------------------------------- finishing
  static DeviceVerdict verdict_of(const DeviceState& st) {
    if (st.session.aborted) return DeviceVerdict::kAborted;
    if (st.session.failing_patterns > 0) return DeviceVerdict::kFailed;
    if (st.breaker != BreakerState::kClosed || st.patterns_skipped > 0)
      return DeviceVerdict::kQuarantined;
    if (st.session.patterns_unrecovered > 0) return DeviceVerdict::kFailed;
    return DeviceVerdict::kPassed;
  }

  void finalize(FleetResult& result) const {
    result.devices.reserve(states_.size());
    for (const DeviceState& st : states_) {
      DeviceResult dr;
      dr.verdict = verdict_of(st);
      dr.breaker = st.breaker;
      dr.session = st.session;
      dr.session.channel = st.total_channel_stats();
      dr.watchdog_trips = st.watchdog_trips;
      dr.patterns_skipped = st.patterns_skipped;
      dr.breaker_opens = st.breaker_opens;
      dr.probes = st.probes;
      dr.probe_successes = st.probe_successes;

      switch (dr.verdict) {
        case DeviceVerdict::kPassed: ++result.passed; break;
        case DeviceVerdict::kFailed: ++result.failed; break;
        case DeviceVerdict::kQuarantined: ++result.quarantined; break;
        case DeviceVerdict::kAborted: ++result.aborted; break;
      }
      result.ate_bits += dr.session.ate_bits;
      result.wasted_ate_bits += dr.session.wasted_ate_bits;
      result.retries += dr.session.retries;
      result.watchdog_trips += dr.watchdog_trips;
      result.patterns_skipped += dr.patterns_skipped;
      result.devices.push_back(std::move(dr));
    }
  }

  // ------------------------------------------------------------- journal
  /// Everything that shapes the deterministic run: geometry and content of
  /// the test set, codec/decoder parameters, retry/breaker/watchdog
  /// policies, batching, seeds and every device profile. A journal written
  /// under any other configuration must not be resumable into this one.
  std::uint64_t config_hash() const {
    Fnv fnv;
    fnv.u64(kJournalVersion);
    fnv.u64(cubes_.pattern_count());
    fnv.u64(cubes_.pattern_length());
    const TritVector& flat = cubes_.flatten();
    for (std::size_t i = 0; i < flat.size(); ++i)
      fnv.u64(static_cast<std::uint64_t>(flat.get(i)));
    fnv.u64(config_.block_size);
    fnv.u64(config_.p);
    fnv.u64(config_.retry.max_retries);
    fnv.u64(config_.retry.abort_after);
    fnv.u64(config_.breaker.open_after);
    fnv.u64(config_.breaker.probe_after);
    fnv.u64(config_.watchdog_steps);
    fnv.u64(config_.batch_patterns);
    fnv.u64(config_.seed);
    fnv.u64(profiles_.size());
    for (const DeviceProfile& profile : profiles_) {
      fnv.u64(double_bits(profile.channel.flip_rate));
      fnv.u64(double_bits(profile.channel.burst_rate));
      fnv.u64(profile.channel.burst_length);
      fnv.u64(double_bits(profile.channel.truncate_rate));
      fnv.u64(double_bits(profile.channel.stuck_rate));
      fnv.u64(profile.channel.seed);
      fnv.b(profile.fault.has_value());
      if (profile.fault.has_value()) {
        fnv.u64(profile.fault->node);
        fnv.u64(profile.fault->consumer);
        fnv.u64(profile.fault->pin);
        fnv.b(profile.fault->stuck_value);
      }
    }
    return fnv.value();
  }

  /// The journal is append-only: a fixed header written once, then one
  /// CRC-guarded snapshot record per completed batch, appended through a
  /// stream that stays open for the whole run. A kill mid-append can only
  /// tear the newest record; every record before it is untouched, so
  /// resume falls back at most one batch and replays it bit-identically.
  /// (The earlier write-to-temp-then-rename scheme had the same crash
  /// guarantee but cost an open+rename per batch -- two orders of
  /// magnitude slower on some filesystems than one buffered append.)
  void save_journal(std::size_t next_batch, std::size_t batches_run) {
    if (!journal_out_.is_open()) open_journal();
    ByteWriter w;
    w.u64(next_batch);
    w.u64(batches_run);
    w.u32(static_cast<std::uint32_t>(states_.size()));
    for (const DeviceState& st : states_) {
      w.u8(static_cast<unsigned>(st.breaker));
      w.u32(st.consecutive_failures);
      w.u64(st.cooldown_batches);
      w.u64(st.watchdog_trips);
      w.u64(st.patterns_skipped);
      w.u64(st.breaker_opens);
      w.u64(st.probes);
      w.u64(st.probe_successes);
      const SessionResult& s = st.session;
      w.u64(s.patterns_applied);
      w.u64(s.failing_patterns);
      w.u64(s.ate_bits);
      w.u64(s.soc_cycles);
      w.u64(s.patterns_retried);
      w.u64(s.retries);
      w.u64(s.corruptions_detected);
      w.u64(s.corruptions_undetected);
      w.u64(s.patterns_unrecovered);
      w.u64(s.wasted_ate_bits);
      w.u8(s.aborted ? 1 : 0);
      write_channel_stats(w, st.total_channel_stats());
      w.bools(s.pattern_failed);
    }
    ByteWriter rec;
    rec.u32(static_cast<std::uint32_t>(w.bytes().size()));
    rec.raw(w.bytes());
    rec.u32(crc32_bytes(w.bytes().data(), w.bytes().size()));
    journal_out_.write(reinterpret_cast<const char*>(rec.bytes().data()),
                       static_cast<std::streamsize>(rec.bytes().size()));
    journal_out_.flush();
    if (!journal_out_)
      throw std::runtime_error("write failed: fleet journal " +
                               config_.checkpoint_path);
  }

  void open_journal() {
    if (journal_loaded_) {
      // Continue an existing journal: drop any torn bytes past the last
      // valid record, then append after it.
      std::error_code ec;
      std::filesystem::resize_file(config_.checkpoint_path,
                                   journal_valid_end_, ec);
      if (ec)
        throw std::runtime_error("cannot truncate fleet journal " +
                                 config_.checkpoint_path + ": " +
                                 ec.message());
      journal_out_.open(config_.checkpoint_path,
                        std::ios::binary | std::ios::app);
      if (!journal_out_)
        throw std::runtime_error("cannot append to fleet journal " +
                                 config_.checkpoint_path);
      return;
    }
    journal_out_.open(config_.checkpoint_path,
                      std::ios::binary | std::ios::trunc);
    if (!journal_out_)
      throw std::runtime_error("cannot write fleet journal " +
                               config_.checkpoint_path);
    ByteWriter header;
    for (unsigned char c : kJournalMagic) header.u8(c);
    header.u8(kJournalVersion);
    header.u64(config_hash_);
    journal_out_.write(reinterpret_cast<const char*>(header.bytes().data()),
                       static_cast<std::streamsize>(header.bytes().size()));
  }

  /// Returns false when no journal exists (fresh start); throws on a
  /// journal that exists but cannot be trusted. A valid journal with a
  /// torn or corrupt tail resumes from the newest record that still
  /// checks out -- per-batch reseeding makes the replay bit-identical.
  bool load_journal(std::size_t& next_batch, std::size_t& batches_run) {
    std::ifstream in(config_.checkpoint_path, std::ios::binary);
    if (!in) return false;
    std::vector<unsigned char> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

    if (bytes.size() < kJournalHeaderSize ||
        !std::equal(kJournalMagic, kJournalMagic + sizeof(kJournalMagic),
                    bytes.begin()))
      throw std::runtime_error(config_.checkpoint_path +
                               " is not a fleet journal (bad magic)");
    ByteReader header(bytes.data() + sizeof(kJournalMagic),
                      kJournalHeaderSize - sizeof(kJournalMagic));
    if (header.u8() != kJournalVersion)
      throw std::runtime_error(config_.checkpoint_path +
                               ": unsupported journal version");
    if (header.u64() != config_hash_)
      throw std::runtime_error(
          config_.checkpoint_path +
          ": journal belongs to a different fleet configuration");

    // Walk the records front to back; the newest one whose length and CRC
    // both check out is the checkpoint. The scan stops at the first bad
    // record -- appends are sequential, so anything past it is either a
    // torn tail (kill mid-append) or tampering, and is discarded either
    // way when the run continues the journal.
    const unsigned char* best = nullptr;
    std::size_t best_len = 0;
    std::size_t off = kJournalHeaderSize;
    std::size_t valid_end = kJournalHeaderSize;
    while (bytes.size() - off >= 8) {
      const std::uint32_t len = read_le32(bytes.data() + off);
      if (len == 0 || len > bytes.size() - off - 8) break;
      const unsigned char* body = bytes.data() + off + 4;
      if (crc32_bytes(body, len) != read_le32(body + len)) break;
      best = body;
      best_len = len;
      off += 8 + len;
      valid_end = off;
    }
    if (best == nullptr)
      throw std::runtime_error(config_.checkpoint_path +
                               ": journal contains no valid checkpoint");
    journal_valid_end_ = valid_end;
    journal_loaded_ = true;

    ByteReader r(best, best_len);
    next_batch = static_cast<std::size_t>(r.u64());
    batches_run = static_cast<std::size_t>(r.u64());
    if (r.u32() != states_.size())
      throw std::runtime_error(config_.checkpoint_path +
                               ": journal device count mismatch");
    for (DeviceState& st : states_) {
      const unsigned breaker = r.u8();
      if (breaker > static_cast<unsigned>(BreakerState::kHalfOpen))
        throw std::runtime_error(config_.checkpoint_path +
                                 ": journal holds an invalid breaker state");
      st.breaker = static_cast<BreakerState>(breaker);
      st.consecutive_failures = r.u32();
      st.cooldown_batches = r.u64();
      st.watchdog_trips = static_cast<std::size_t>(r.u64());
      st.patterns_skipped = static_cast<std::size_t>(r.u64());
      st.breaker_opens = static_cast<std::size_t>(r.u64());
      st.probes = static_cast<std::size_t>(r.u64());
      st.probe_successes = static_cast<std::size_t>(r.u64());
      SessionResult& s = st.session;
      s.patterns_applied = static_cast<std::size_t>(r.u64());
      s.failing_patterns = static_cast<std::size_t>(r.u64());
      s.ate_bits = static_cast<std::size_t>(r.u64());
      s.soc_cycles = static_cast<std::size_t>(r.u64());
      s.patterns_retried = static_cast<std::size_t>(r.u64());
      s.retries = static_cast<std::size_t>(r.u64());
      s.corruptions_detected = static_cast<std::size_t>(r.u64());
      s.corruptions_undetected = static_cast<std::size_t>(r.u64());
      s.patterns_unrecovered = static_cast<std::size_t>(r.u64());
      s.wasted_ate_bits = static_cast<std::size_t>(r.u64());
      s.aborted = r.u8() != 0;
      st.channel_base = read_channel_stats(r);
      s.pattern_failed = r.bools();
    }
    if (r.remaining() != 0)
      throw std::runtime_error(config_.checkpoint_path +
                               ": journal record has trailing bytes");
    return true;
  }

  const circuit::Netlist& netlist_;
  const TestSet& cubes_;
  const FleetConfig& config_;
  const std::vector<DeviceProfile>& profiles_;
  codec::NineCoded coder_;
  SingleScanDecoder decoder_;
  std::uint64_t config_hash_ = 0;
  std::vector<TritVector> te_;
  std::vector<DeviceState> states_;
  std::ofstream journal_out_;
  // Set by load_journal: append after the last valid record on resume.
  std::size_t journal_valid_end_ = 0;
  bool journal_loaded_ = false;
};

}  // namespace

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

const char* to_string(DeviceVerdict verdict) noexcept {
  switch (verdict) {
    case DeviceVerdict::kPassed: return "passed";
    case DeviceVerdict::kFailed: return "failed";
    case DeviceVerdict::kQuarantined: return "quarantined";
    case DeviceVerdict::kAborted: return "aborted";
  }
  return "unknown";
}

std::uint64_t fleet_fingerprint(const FleetResult& result) noexcept {
  Fnv fnv;
  fnv.u64(result.batches_run);
  fnv.b(result.complete);
  fnv.u64(result.devices.size());
  for (const DeviceResult& dr : result.devices) {
    fnv.u64(static_cast<std::uint64_t>(dr.verdict));
    fnv.u64(static_cast<std::uint64_t>(dr.breaker));
    fnv.u64(dr.watchdog_trips);
    fnv.u64(dr.patterns_skipped);
    fnv.u64(dr.breaker_opens);
    fnv.u64(dr.probes);
    fnv.u64(dr.probe_successes);
    const SessionResult& s = dr.session;
    fnv.u64(s.patterns_applied);
    fnv.u64(s.failing_patterns);
    fnv.u64(s.ate_bits);
    fnv.u64(s.soc_cycles);
    fnv.u64(s.patterns_retried);
    fnv.u64(s.retries);
    fnv.u64(s.corruptions_detected);
    fnv.u64(s.corruptions_undetected);
    fnv.u64(s.patterns_unrecovered);
    fnv.u64(s.wasted_ate_bits);
    fnv.b(s.aborted);
    hash_channel_stats(fnv, s.channel);
    fnv.u64(s.pattern_failed.size());
    for (const bool failed : s.pattern_failed) fnv.b(failed);
  }
  return fnv.value();
}

FleetResult run_fleet(const circuit::Netlist& netlist, const TestSet& cubes,
                      const FleetConfig& config,
                      const std::vector<DeviceProfile>& devices) {
  FleetRunner runner(netlist, cubes, config, devices);
  return runner.run();
}

}  // namespace nc::decomp
