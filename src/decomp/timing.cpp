#include "decomp/timing.h"

namespace nc::decomp {

std::size_t comp_soc_cycles(const codec::NineCodedStats& stats,
                            const codec::CodewordTable& table, unsigned p) {
  const std::size_t k = stats.block_size;
  // Stats from before the split field (or zero-initialized by hand) mean
  // the symmetric K/2 layout.
  const std::size_t split = stats.split == 0 ? k / 2 : stats.split;
  std::size_t cycles = 0;
  for (std::size_t c = 0; c < codec::kNumClasses; ++c) {
    const auto cls = static_cast<codec::BlockClass>(c);
    const std::size_t n = stats.counts[c];
    if (n == 0) continue;
    // Codeword bits arrive at ATE rate.
    std::size_t per_block = table.length(cls) * p;
    // Halves: uniform at SoC rate, mismatch at ATE rate.
    const std::size_t mismatch = codec::payload_trits(cls, k, split);
    per_block += mismatch * p;        // transmitted bits
    per_block += (k - mismatch);      // locally generated bits
    cycles += n * per_block;
  }
  return cycles;
}

double tat_percent(const codec::NineCodedStats& stats,
                   const codec::CodewordTable& table, unsigned p) {
  const double t_no =
      static_cast<double>(nocomp_soc_cycles(stats.original_bits, p));
  if (t_no == 0.0) return 0.0;
  const double t_c = static_cast<double>(comp_soc_cycles(stats, table, p));
  return 100.0 * (t_no - t_c) / t_no;
}

}  // namespace nc::decomp
