// Cycle-accurate model of the single-scan-chain decompressor (Fig. 1):
// FSM (Fig. 2) + log2(K/2) counter + K/2-bit shifter + 3-way MUX.
//
// The model is bit-serial and dual-clock: FSM recognition and mismatch
// payload streaming consume ATE cycles; uniform-half shifting consumes SoC
// cycles (f_scan = p * f_ate). The returned trace carries both clock-domain
// totals plus the exact stream that entered the scan chain, so tests can
// assert (a) data correctness against the software decoder and (b) cycle
// counts against the analytic model in timing.h.
#pragma once

#include <cstddef>

#include "bits/trit_vector.h"
#include "core/cancel.h"
#include "decomp/decoder_fsm.h"

namespace nc::decomp {

struct DecoderTrace {
  std::size_t ate_cycles = 0;  // cycles of the ATE clock consumed
  std::size_t soc_cycles = 0;  // total elapsed time, in SoC cycles
  std::size_t codewords = 0;   // codewords recognized
  bits::TritVector scan_stream;  // bits shifted into the chain, in order
};

class SingleScanDecoder {
 public:
  /// `block_size` is K (even, >= 2); `p` = f_scan / f_ate >= 1. The decoder
  /// hardware is independent of the test set; only K sizes the counter and
  /// shifter.
  SingleScanDecoder(std::size_t block_size, unsigned p);

  /// Decompresses TE until at least `original_bits` scan bits have been
  /// produced (whole blocks; the scan_stream is then truncated to
  /// `original_bits`, mirroring how the tail pad never leaves the chain).
  /// A corrupted TE (truncated, X in a codeword position, or symbols left
  /// over after the last block) raises codec::DecodeError with the TE
  /// offset and the index of the block in flight.
  ///
  /// `watchdog` (optional, borrowed) meters the run: one step per FSM
  /// transition and per scan bit streamed. A trip raises
  /// codec::DecodeError(kWatchdogExpired), so a runaway or crafted stream
  /// is stopped with bounded work instead of being allowed to spin.
  DecoderTrace run(const bits::TritVector& te, std::size_t original_bits,
                   core::Watchdog* watchdog = nullptr) const;

  std::size_t block_size() const noexcept { return k_; }
  unsigned p() const noexcept { return p_; }

 private:
  std::size_t k_;
  unsigned p_;
};

}  // namespace nc::decomp
