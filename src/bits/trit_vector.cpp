#include "bits/trit_vector.h"

#include <algorithm>
#include <bit>

namespace nc::bits {

TritVector TritVector::from_string(std::string_view s) {
  TritVector v;
  v.resize(s.size(), Trit::Zero);
  for (std::size_t i = 0; i < s.size(); ++i) v.set(i, trit_from_char(s[i]));
  return v;
}

void TritVector::append(const TritVector& other) {
  const std::size_t base = size_;
  resize(size_ + other.size_, Trit::Zero);
  for (std::size_t i = 0; i < other.size_; ++i) set(base + i, other.get(i));
}

void TritVector::append_run(std::size_t n, Trit t) {
  const std::size_t base = size_;
  resize(size_ + n, Trit::Zero);
  for (std::size_t i = 0; i < n; ++i) set(base + i, t);
}

void TritVector::resize(std::size_t n, Trit fill) {
  const std::size_t old = size_;
  words_.resize((n + 31) / 32, 0);
  size_ = n;
  for (std::size_t i = old; i < n; ++i) set(i, fill);
  if (n < old && n % 32 != 0) {
    // Zero the tail of the last word so equality can compare words directly.
    Word& w = words_.back();
    const unsigned used = static_cast<unsigned>((n & 31u) * 2);
    w &= (Word{1} << used) - 1;
  }
}

TritVector TritVector::slice(std::size_t begin, std::size_t len) const {
  TritVector out;
  if (begin >= size_) return out;
  len = std::min(len, size_ - begin);
  out.resize(len, Trit::Zero);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(begin + i));
  return out;
}

std::size_t TritVector::care_count() const noexcept {
  // An X packs as 0b10; a trit is specified iff its high bit is clear.
  std::size_t cares = 0;
  constexpr Word kHighBits = 0xAAAAAAAAAAAAAAAAull;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    Word highs = words_[wi] & kHighBits;
    cares += 32 - static_cast<std::size_t>(std::popcount(highs));
  }
  // Positions past size() in the last word were zeroed by resize(), so they
  // were counted as care; subtract them.
  const std::size_t slack = words_.size() * 32 - size_;
  return cares - slack;
}

double TritVector::x_fraction() const noexcept {
  return size_ == 0 ? 0.0 : static_cast<double>(x_count()) /
                                static_cast<double>(size_);
}

bool TritVector::compatible_with(const TritVector& other) const noexcept {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; ++i)
    if (!compatible(get(i), other.get(i))) return false;
  return true;
}

bool TritVector::covered_by(const TritVector& other) const noexcept {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; ++i) {
    const Trit mine = get(i);
    if (is_care(mine) && other.get(i) != mine) return false;
  }
  return true;
}

bool TritVector::operator==(const TritVector& other) const noexcept {
  return size_ == other.size_ && words_ == other.words_;
}

std::string TritVector::to_string() const {
  std::string s(size_, '?');
  for (std::size_t i = 0; i < size_; ++i) s[i] = to_char(get(i));
  return s;
}

}  // namespace nc::bits
