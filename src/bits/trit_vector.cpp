#include "bits/trit_vector.h"

#include <algorithm>
#include <bit>

namespace nc::bits {

TritVector TritVector::from_string(std::string_view s) {
  TritVector v;
  v.resize(s.size(), Trit::Zero);
  for (std::size_t i = 0; i < s.size(); ++i) v.set(i, trit_from_char(s[i]));
  return v;
}

void TritVector::append(const TritVector& other) {
  if (&other == this) {  // self-append would read words being reallocated
    const TritVector copy = other;
    append(copy);
    return;
  }
  if (other.size_ == 0) return;
  // Word-parallel shifted copy of the packed 2-bit representation. The
  // bit offset is even (trit-aligned), the source tail past other.size()
  // is zero, and this vector's tail is zero, so plain OR merges cleanly.
  const std::size_t dst_bit = size_ * 2;
  words_.resize((size_ + other.size_ + 31) / 32, 0);
  size_ += other.size_;
  const std::size_t w = dst_bit >> 6;
  const unsigned off = dst_bit & 63;
  if (off == 0) {
    for (std::size_t i = 0; i < other.words_.size(); ++i)
      words_[w + i] = other.words_[i];
  } else {
    for (std::size_t i = 0; i < other.words_.size(); ++i) {
      words_[w + i] |= other.words_[i] << off;
      if (w + i + 1 < words_.size())
        words_[w + i + 1] |= other.words_[i] >> (64 - off);
    }
  }
}

void TritVector::append_run(std::size_t n, Trit t) {
  if (n == 0) return;
  // New words arrive zeroed and the old tail is zero, so only non-Zero
  // fills need bits OR-ed in; the fill patterns repeat with period 2 bits,
  // matching any even (trit-aligned) offset.
  words_.resize((size_ + n + 31) / 32, 0);
  std::size_t pos = size_ * 2;
  const std::size_t end_bit = (size_ + n) * 2;
  size_ += n;
  if (t == Trit::Zero) return;
  const Word pattern =
      t == Trit::One ? 0x5555555555555555ull : 0xAAAAAAAAAAAAAAAAull;
  while (pos < end_bit) {
    const unsigned off = pos & 63;
    const std::size_t take = std::min<std::size_t>(end_bit - pos, 64 - off);
    const Word mask =
        (take == 64 ? ~Word{0} : (Word{1} << take) - 1) << off;
    words_[pos >> 6] |= pattern & mask;
    pos += take;
  }
}

void TritVector::resize(std::size_t n, Trit fill) {
  if (n >= size_) {
    append_run(n - size_, fill);
    return;
  }
  words_.resize((n + 31) / 32);
  size_ = n;
  if (n % 32 != 0) {
    // Zero the tail of the last word so equality can compare words directly.
    Word& w = words_.back();
    const unsigned used = static_cast<unsigned>((n & 31u) * 2);
    w &= (Word{1} << used) - 1;
  }
}

TritVector TritVector::slice(std::size_t begin, std::size_t len) const {
  TritVector out;
  if (begin >= size_) return out;
  len = std::min(len, size_ - begin);
  out.size_ = len;
  out.words_.assign((len + 31) / 32, 0);
  const std::size_t src_bit = begin * 2;
  const std::size_t w = src_bit >> 6;
  const unsigned off = src_bit & 63;
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    Word bits = words_[w + i] >> off;
    if (off != 0 && w + i + 1 < words_.size())
      bits |= words_[w + i + 1] << (64 - off);
    out.words_[i] = bits;
  }
  if (len % 32 != 0)
    out.words_.back() &= (Word{1} << ((len & 31u) * 2)) - 1;
  return out;
}

TritVector TritVector::from_packed(std::vector<std::uint64_t> words,
                                   std::size_t n) {
  TritVector v;
  v.words_ = std::move(words);
  v.words_.resize((n + 31) / 32, 0);
  v.size_ = n;
  if (n % 32 != 0)
    v.words_.back() &= (Word{1} << ((n & 31u) * 2)) - 1;
  return v;
}

std::size_t TritVector::care_count() const noexcept {
  // An X packs as 0b10; a trit is specified iff its high bit is clear.
  std::size_t cares = 0;
  constexpr Word kHighBits = 0xAAAAAAAAAAAAAAAAull;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    Word highs = words_[wi] & kHighBits;
    cares += 32 - static_cast<std::size_t>(std::popcount(highs));
  }
  // Positions past size() in the last word were zeroed by resize(), so they
  // were counted as care; subtract them.
  const std::size_t slack = words_.size() * 32 - size_;
  return cares - slack;
}

double TritVector::x_fraction() const noexcept {
  return size_ == 0 ? 0.0 : static_cast<double>(x_count()) /
                                static_cast<double>(size_);
}

bool TritVector::compatible_with(const TritVector& other) const noexcept {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; ++i)
    if (!compatible(get(i), other.get(i))) return false;
  return true;
}

bool TritVector::covered_by(const TritVector& other) const noexcept {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; ++i) {
    const Trit mine = get(i);
    if (is_care(mine) && other.get(i) != mine) return false;
  }
  return true;
}

bool TritVector::operator==(const TritVector& other) const noexcept {
  return size_ == other.size_ && words_ == other.words_;
}

std::string TritVector::to_string() const {
  std::string s(size_, '?');
  for (std::size_t i = 0; i < size_; ++i) s[i] = to_char(get(i));
  return s;
}

}  // namespace nc::bits
