// Sequential readers/writers over bit and trit streams.
//
// The run-length baseline coders (Golomb, FDR, ...) produce fully specified
// bitstreams; BitWriter/BitReader serve those. The 9C stream TE may carry X
// symbols inside mismatch payloads, so its reader walks a TritVector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bits/trit_vector.h"

namespace nc::bits {

/// A read past the end of a stream (truncated input). Derives from
/// std::out_of_range so legacy catch sites keep working; the structured
/// fields let decoders report *where* the stream ran dry.
class StreamOverrun : public std::out_of_range {
 public:
  StreamOverrun(std::size_t offset, std::size_t requested,
                std::size_t available)
      : std::out_of_range("stream overrun at symbol " +
                          std::to_string(offset) + ": need " +
                          std::to_string(requested) + ", have " +
                          std::to_string(available)),
        offset_(offset),
        requested_(requested),
        available_(available) {}

  /// Cursor position (in symbols) where the failing read started.
  std::size_t offset() const noexcept { return offset_; }
  std::size_t requested() const noexcept { return requested_; }
  std::size_t available() const noexcept { return available_; }

 private:
  std::size_t offset_;
  std::size_t requested_;
  std::size_t available_;
};

/// An X symbol at a position that must carry a specified 0/1 (every codeword
/// bit). Derives from std::runtime_error for legacy catch sites.
class InvalidSymbol : public std::runtime_error {
 public:
  explicit InvalidSymbol(std::size_t offset)
      : std::runtime_error("unspecified symbol (X) at stream offset " +
                           std::to_string(offset) +
                           " where a 0/1 bit is required"),
        offset_(offset) {}

  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Append-only bit sink backed by a TritVector restricted to 0/1.
/// Using TritVector as the carrier keeps one stream type across all coders.
class BitWriter {
 public:
  void put(bool bit) { out_.push_back(trit_from_bit(bit)); }

  /// Writes `n` bits of `value`, most significant first.
  void put_bits(std::uint64_t value, unsigned n) {
    for (unsigned i = n; i-- > 0;) put((value >> i) & 1u);
  }

  /// Writes `n` copies of `bit`.
  void put_run(std::size_t n, bool bit) {
    out_.append_run(n, trit_from_bit(bit));
  }

  std::size_t size() const noexcept { return out_.size(); }
  const TritVector& stream() const noexcept { return out_; }
  TritVector take() { return std::move(out_); }

 private:
  TritVector out_;
};

/// Sequential cursor over a trit stream. `next_bit` additionally enforces
/// that the symbol is specified, which every codeword position must be.
/// A reader can cover the whole vector or a [begin, begin+len) window of it
/// (the sharded container index hands each decode worker its own window);
/// position() is always absolute, so error offsets stay container-relative.
class TritReader {
 public:
  explicit TritReader(const TritVector& v)
      : v_(&v), pos_(0), end_(v.size()) {}

  /// Window over [begin, begin+len); clamps to the vector's size.
  TritReader(const TritVector& v, std::size_t begin, std::size_t len)
      : v_(&v),
        pos_(begin > v.size() ? v.size() : begin),
        end_(len > v.size() - pos_ ? v.size() : pos_ + len) {}

  bool done() const noexcept { return pos_ >= end_; }
  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return end_ - pos_; }

  /// Random access within the window: moves the cursor to absolute symbol
  /// offset `pos`. Seeking past the window throws StreamOverrun (a corrupt
  /// shard index must surface as the typed truncation error, not UB).
  void seek(std::size_t pos) {
    if (pos > end_) throw StreamOverrun(pos, 0, end_);
    pos_ = pos;
  }

  /// Advances the cursor by `n` symbols without reading them.
  void skip(std::size_t n) {
    if (n > remaining()) throw StreamOverrun(pos_, n, remaining());
    pos_ += n;
  }

  Trit next() {
    if (done()) throw StreamOverrun(pos_, 1, 0);
    return v_->get(pos_++);
  }

  /// Reads one symbol that must be 0 or 1 (e.g. a codeword bit).
  bool next_bit() {
    const Trit t = next();
    if (!is_care(t)) throw InvalidSymbol(pos_ - 1);
    return t == Trit::One;
  }

  /// Reads `n` specified bits, most significant first.
  std::uint64_t next_bits(unsigned n) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) v = (v << 1) | (next_bit() ? 1u : 0u);
    return v;
  }

  /// Reads `n` symbols (X allowed) into a fresh vector.
  TritVector next_trits(std::size_t n) {
    if (remaining() < n) throw StreamOverrun(pos_, n, remaining());
    TritVector out = v_->slice(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  const TritVector* v_;
  std::size_t pos_;
  std::size_t end_;
};

}  // namespace nc::bits
