// A precomputed scan test set TD: `pattern_count` test cubes, each
// `pattern_length` scan cells wide, over {0,1,X}.
//
// This is the object the ATE stores and the object every compression code in
// this library consumes. Helpers cover the two orderings the paper uses:
//  * `flatten()`        -- row-major scan order for a single scan chain;
//  * `flatten_sliced()` -- "vertical" m-bit slices for m scan chains
//    (Fig. 3/4b/4c), where consecutive stream symbols go to consecutive
//    chains.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "bits/trit_vector.h"

namespace nc::bits {

/// Malformed cube-file input: carries the 1-based line and column (column 0
/// when the whole line, not one character, is at fault; line 0 for
/// file-level problems such as an empty file).
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, std::size_t column, const std::string& what)
      : std::runtime_error(format(line, column, what)),
        line_(line),
        column_(column) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  static std::string format(std::size_t line, std::size_t column,
                            const std::string& what) {
    std::string s = "test set";
    if (line > 0) s += " line " + std::to_string(line);
    if (column > 0) s += ", column " + std::to_string(column);
    return s + ": " + what;
  }

  std::size_t line_;
  std::size_t column_;
};

class TestSet {
 public:
  TestSet() = default;
  TestSet(std::size_t pattern_count, std::size_t pattern_length)
      : width_(pattern_length),
        data_(pattern_count * pattern_length, Trit::X),
        rows_(pattern_count) {}

  /// Builds a test set from one string per pattern ("01X...", equal widths).
  static TestSet from_strings(const std::vector<std::string>& patterns);

  /// Parses the text format written by `save`: '#' comments, one pattern per
  /// line. Throws ParseError (with line/column) on a bad character, a ragged
  /// row width, or input with no pattern lines at all.
  static TestSet parse(std::istream& in);
  static TestSet load_file(const std::string& path);

  /// Writes one pattern per line, '0'/'1'/'X' characters.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  std::size_t pattern_count() const noexcept { return rows_; }
  std::size_t pattern_length() const noexcept { return width_; }
  /// Total number of symbols |TD| = patterns x length.
  std::size_t bit_count() const noexcept { return rows_ * width_; }
  bool empty() const noexcept { return bit_count() == 0; }

  Trit at(std::size_t pattern, std::size_t cell) const noexcept {
    return data_.get(pattern * width_ + cell);
  }
  void set(std::size_t pattern, std::size_t cell, Trit t) noexcept {
    data_.set(pattern * width_ + cell, t);
  }

  TritVector pattern(std::size_t i) const { return data_.slice(i * width_, width_); }
  void set_pattern(std::size_t i, const TritVector& p);
  void append_pattern(const TritVector& p);

  std::size_t x_count() const noexcept { return data_.x_count(); }
  /// Fraction of X symbols in [0,1].
  double x_fraction() const noexcept { return data_.x_fraction(); }

  /// Row-major stream: pattern 0 first, scan cell 0 first.
  const TritVector& flatten() const noexcept { return data_; }

  /// Vertical multi-scan ordering for `chains` scan chains of equal length
  /// ceil(width/chains): for each pattern, emits chain-0 cell-0, chain-1
  /// cell-0, ..., chain-(m-1) cell-0, then cell 1, and so on. Cells past the
  /// pattern width (when `chains` does not divide the width) pad as X.
  TritVector flatten_sliced(std::size_t chains) const;

  /// Inverse of `flatten`: reshapes a stream into `pattern_count` rows.
  static TestSet unflatten(const TritVector& stream, std::size_t pattern_count,
                           std::size_t pattern_length);

  bool operator==(const TestSet& other) const noexcept {
    return width_ == other.width_ && rows_ == other.rows_ &&
           data_ == other.data_;
  }

 private:
  std::size_t width_ = 0;
  TritVector data_;
  std::size_t rows_ = 0;
};

}  // namespace nc::bits
