// Packed vector of trits (2 bits per symbol) with stream-style append.
//
// TritVector is the universal carrier for test data in this library:
//  * the uncompressed stream TD (rows of a TestSet flattened in scan order),
//  * the compressed stream TE produced by the 9C encoder, which still
//    contains "leftover" X bits inside transmitted mismatch halves,
//  * decoder output, where surviving X positions are reported back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bits/trit.h"

namespace nc::bits {

/// Dynamically sized, densely packed sequence of trits.
class TritVector {
 public:
  TritVector() = default;

  /// Constructs `n` copies of `fill`.
  explicit TritVector(std::size_t n, Trit fill = Trit::X) { resize(n, fill); }

  /// Parses a string of '0'/'1'/'X' characters (whitespace not allowed).
  static TritVector from_string(std::string_view s);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  Trit get(std::size_t i) const noexcept {
    const std::uint8_t raw =
        static_cast<std::uint8_t>(words_[i >> kShift] >> shift_of(i)) & 0x3u;
    return static_cast<Trit>(raw);
  }

  void set(std::size_t i, Trit t) noexcept {
    Word& w = words_[i >> kShift];
    w &= ~(Word{0x3u} << shift_of(i));
    w |= static_cast<Word>(t) << shift_of(i);
  }

  Trit operator[](std::size_t i) const noexcept { return get(i); }

  /// Bounds-checked get: throws std::out_of_range instead of reading past
  /// the backing words (get() stays unchecked for hot loops).
  Trit at(std::size_t i) const {
    check_index(i);
    return get(i);
  }

  /// Bounds-checked set.
  void set_at(std::size_t i, Trit t) {
    check_index(i);
    set(i, t);
  }

  void push_back(Trit t) {
    resize(size_ + 1, Trit::Zero);
    set(size_ - 1, t);
  }

  /// Appends every trit of `other` (word-parallel shifted copy).
  void append(const TritVector& other);

  /// Appends `n` copies of `t`, whole packed words at a time.
  void append_run(std::size_t n, Trit t);

  void resize(std::size_t n, Trit fill = Trit::X);
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  /// Returns the sub-vector [begin, begin+len). Clamps to size().
  TritVector slice(std::size_t begin, std::size_t len) const;

  /// Number of specified (non-X) symbols.
  std::size_t care_count() const noexcept;
  /// Number of X symbols.
  std::size_t x_count() const noexcept { return size_ - care_count(); }
  /// Fraction of X symbols in [0,1]; 0 for an empty vector.
  double x_fraction() const noexcept;

  /// True if every specified bit of `*this` equals the corresponding bit of
  /// `other` wherever *both* are specified, sizes equal.
  bool compatible_with(const TritVector& other) const noexcept;

  /// True if `other` specifies at least the care bits of `*this` with equal
  /// values (i.e. `other` is a legal fill/expansion of this cube).
  bool covered_by(const TritVector& other) const noexcept;

  bool operator==(const TritVector& other) const noexcept;

  std::string to_string() const;

  // --- bitplane interop (bits/bitplane.h) ---
  // The packed representation is part of the bits-layer contract: 2-bit
  // fields, 32 trits per 64-bit word, low bit = value, high bit = X, every
  // bit at position >= size() zero. Bitplanes de-interleaves these words
  // for plane extraction and rebuilds them for injection.

  /// Number of backing 64-bit words (== ceil(size()/32)).
  std::size_t packed_word_count() const noexcept { return words_.size(); }

  /// The `wi`-th packed word, trit 32*wi at its low 2 bits.
  std::uint64_t packed_word(std::size_t wi) const noexcept {
    return words_[wi];
  }

  /// Adopts `words` as the packed representation of `n` trits. `words`
  /// must have exactly ceil(n/32) entries; bits past `n` are masked off so
  /// the canonical-tail invariant (and word-wise equality) holds.
  static TritVector from_packed(std::vector<std::uint64_t> words,
                                std::size_t n);

 private:
  void check_index(std::size_t i) const {
    if (i >= size_)
      throw std::out_of_range("TritVector index " + std::to_string(i) +
                              " out of range (size " + std::to_string(size_) +
                              ")");
  }

  using Word = std::uint64_t;
  static constexpr unsigned kShift = 5;  // 32 trits per 64-bit word
  static constexpr unsigned shift_of(std::size_t i) noexcept {
    return static_cast<unsigned>((i & 31u) * 2);
  }

  std::vector<Word> words_;
  std::size_t size_ = 0;
};

}  // namespace nc::bits
