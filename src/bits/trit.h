// Three-valued test-data symbol: 0, 1 or X (don't-care).
//
// Precomputed scan test sets ("test cubes") are partially specified: ATPG
// assigns only the bits needed to detect the targeted faults and leaves the
// rest as X. Every layer of this library -- encoders, decoders, simulators,
// fill strategies -- operates on trits so that don't-care information is
// never lost by accident.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace nc::bits {

/// One three-valued symbol. The numeric values are chosen so that a trit
/// packs into two bits and `Zero`/`One` match their bit value.
enum class Trit : std::uint8_t {
  Zero = 0,
  One = 1,
  X = 2,
};

/// True if `t` carries a specified (care) value.
constexpr bool is_care(Trit t) noexcept { return t != Trit::X; }

/// True if `t` may be interpreted as `bit` (i.e. equals it or is X).
constexpr bool compatible_with(Trit t, bool bit) noexcept {
  return t == Trit::X || (t == Trit::One) == bit;
}

/// True if two trits can coexist on the same scan cell (no 0-vs-1 conflict).
constexpr bool compatible(Trit a, Trit b) noexcept {
  return a == Trit::X || b == Trit::X || a == b;
}

/// Character form used by all text I/O: '0', '1', 'X'.
constexpr char to_char(Trit t) noexcept {
  return t == Trit::Zero ? '0' : t == Trit::One ? '1' : 'X';
}

/// Parses '0', '1', 'x' or 'X'. Throws std::invalid_argument otherwise.
inline Trit trit_from_char(char c) {
  switch (c) {
    case '0': return Trit::Zero;
    case '1': return Trit::One;
    case 'x':
    case 'X': return Trit::X;
    default:
      throw std::invalid_argument(std::string("not a trit character: '") + c +
                                  "'");
  }
}

/// Convenience constructor from a plain bit.
constexpr Trit trit_from_bit(bool bit) noexcept {
  return bit ? Trit::One : Trit::Zero;
}

}  // namespace nc::bits
