#include "bits/bitplane.h"

#include <algorithm>
#include <bit>

namespace nc::bits {

namespace {

/// Compacts the 32 even-position bits of `w` into the low 32 bits
/// (inverse Morton interleave). Each step may use | instead of ^ because
/// the shifted copies land on disjoint bit positions.
constexpr std::uint64_t compact_even(std::uint64_t w) noexcept {
  w &= 0x5555555555555555ull;
  w = (w | (w >> 1)) & 0x3333333333333333ull;
  w = (w | (w >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  w = (w | (w >> 4)) & 0x00FF00FF00FF00FFull;
  w = (w | (w >> 8)) & 0x0000FFFF0000FFFFull;
  w = (w | (w >> 16)) & 0x00000000FFFFFFFFull;
  return w;
}

/// Spreads the low 32 bits of `v` onto the even positions of a 64-bit
/// word (Morton interleave with zeros).
constexpr std::uint64_t expand_even(std::uint64_t v) noexcept {
  v &= 0x00000000FFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

}  // namespace

Bitplanes::Bitplanes(const TritVector& v) : size_(v.size()) {
  const std::size_t plane_words = (size_ + 63) / 64;
  value_.assign(plane_words, 0);
  x_.assign(plane_words, 0);
  // Each packed word holds 32 trits; two consecutive packed words fill one
  // plane word. TritVector keeps bits past size() zero, so the plane tails
  // come out zero without extra masking.
  for (std::size_t pw = 0; pw < v.packed_word_count(); ++pw) {
    const std::uint64_t w = v.packed_word(pw);
    const unsigned shift = (pw & 1u) ? 32u : 0u;
    value_[pw >> 1] |= compact_even(w) << shift;
    x_[pw >> 1] |= compact_even(w >> 1) << shift;
  }
}

TritVector Bitplanes::to_trits() const {
  std::vector<std::uint64_t> packed((size_ + 31) / 32, 0);
  for (std::size_t pw = 0; pw < packed.size(); ++pw) {
    const unsigned shift = (pw & 1u) ? 32u : 0u;
    const std::uint64_t val = value_[pw >> 1] >> shift;
    const std::uint64_t xs = x_[pw >> 1] >> shift;
    packed[pw] = expand_even(val) | (expand_even(xs) << 1);
  }
  return TritVector::from_packed(std::move(packed), size_);
}

void Bitplanes::append_bits_msb(std::uint32_t bits, unsigned len) {
  std::uint64_t value = 0;
  for (unsigned j = 0; j < len; ++j)
    value |= ((bits >> (len - 1 - j)) & 1ull) << j;
  append_word(value, 0, len);
}

void Bitplanes::append_run(std::size_t n, Trit t) {
  const std::uint64_t vpat = t == Trit::One ? ~std::uint64_t{0} : 0;
  const std::uint64_t xpat = t == Trit::X ? ~std::uint64_t{0} : 0;
  while (n > 0) {
    const unsigned take = static_cast<unsigned>(std::min<std::size_t>(n, 64));
    const std::uint64_t mask = low_mask(take);
    append_word(vpat & mask, xpat & mask, take);
    n -= take;
  }
}

}  // namespace nc::bits
