#include "bits/serialize.h"

#include <array>
#include <cstdint>
#include <fstream>
#include <string_view>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace nc::bits {

namespace {

constexpr char kMagic[4] = {'N', 'C', 'T', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  std::array<char, 8> buf;
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf.data(), buf.size());
}

std::uint64_t read_u64(std::istream& in) {
  std::array<char, 8> buf;
  in.read(buf.data(), buf.size());
  if (!in) throw std::runtime_error("trit stream file truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

void write_payload(std::ostream& out, const TritVector& v) {
  unsigned char byte = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    byte |= static_cast<unsigned char>(v.get(i)) << ((i % 4) * 2);
    if (i % 4 == 3) {
      out.put(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (v.size() % 4 != 0) out.put(static_cast<char>(byte));
}

TritVector read_payload(std::istream& in, std::size_t size) {
  // Grow as bytes arrive rather than allocating `size` upfront: a corrupt
  // header claiming petabytes then fails on the first missing byte instead
  // of exhausting memory.
  TritVector v;
  int byte = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (i % 4 == 0) {
      byte = in.get();
      if (byte == EOF) throw std::runtime_error("trit stream file truncated");
    }
    const unsigned raw = (static_cast<unsigned>(byte) >> ((i % 4) * 2)) & 0x3u;
    if (raw > 2) throw std::runtime_error("invalid trit in stream file");
    v.push_back(static_cast<Trit>(raw));
  }
  return v;
}

void write_header(std::ostream& out, unsigned char kind) {
  out.write(kMagic, sizeof kMagic);
  out.put(static_cast<char>(kind));
}

unsigned char read_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4))
    throw std::runtime_error("not a ninec trit stream file");
  const int kind = in.get();
  if (kind != 0 && kind != 1)
    throw std::runtime_error("unknown trit stream kind");
  return static_cast<unsigned char>(kind);
}

}  // namespace

void save_trits(std::ostream& out, const TritVector& v) {
  write_header(out, 0);
  write_u64(out, v.size());
  write_payload(out, v);
}

TritVector load_trits(std::istream& in) {
  if (read_header(in) != 0)
    throw std::runtime_error("file holds a test set, not a trit stream");
  const std::uint64_t size = read_u64(in);
  return read_payload(in, static_cast<std::size_t>(size));
}

void save_test_set(std::ostream& out, const TestSet& ts) {
  write_header(out, 1);
  write_u64(out, ts.pattern_count());
  write_u64(out, ts.pattern_length());
  write_payload(out, ts.flatten());
}

TestSet load_test_set(std::istream& in) {
  if (read_header(in) != 1)
    throw std::runtime_error("file holds a trit stream, not a test set");
  const std::uint64_t patterns = read_u64(in);
  const std::uint64_t width = read_u64(in);
  const TritVector data =
      read_payload(in, static_cast<std::size_t>(patterns * width));
  return TestSet::unflatten(data, static_cast<std::size_t>(patterns),
                            static_cast<std::size_t>(width));
}

namespace {

template <typename SaveFn, typename Value>
void save_file(const std::string& path, const Value& value, SaveFn fn) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write file: " + path);
  fn(out, value);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void save_trits_file(const std::string& path, const TritVector& v) {
  save_file(path, v, [](std::ostream& o, const TritVector& x) {
    save_trits(o, x);
  });
}

TritVector load_trits_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  return load_trits(in);
}

void save_test_set_file(const std::string& path, const TestSet& ts) {
  save_file(path, ts, [](std::ostream& o, const TestSet& x) {
    save_test_set(o, x);
  });
}

TestSet load_test_set_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  return load_test_set(in);
}

}  // namespace nc::bits
