// Word-parallel bitplane representation of a trit sequence.
//
// A TritVector packs trits as interleaved 2-bit fields (32 trits per
// 64-bit word), which is compact but forces per-symbol work on the codec
// hot path. Bitplanes de-interleaves the same sequence into two parallel
// bit planes of 64 trits per word each:
//
//   value plane  bit i == 1  iff  trit i is One
//   X plane      bit i == 1  iff  trit i is X (don't-care)
//
// (a specified Zero has both bits clear; value and X are disjoint by
// construction). In this form the 9C classification questions become
// plain word arithmetic over a masked range:
//
//   0-compatible  <=>  (value & mask) == 0          (no specified 1)
//   1-compatible  <=>  ((value | x) & mask) == mask (no specified 0)
//   X population  ==   popcount(x & mask)
//
// and the encoder/decoder fill/copy paths become shifted word copies
// instead of per-trit loops. The planes always keep every bit at position
// >= size() zero, so conversions back to TritVector are canonical and
// word-compare equal to scalar-built streams.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bits/bitstream.h"
#include "bits/trit_vector.h"

namespace nc::bits {

/// What one word-parallel pass over a range observed. The 9C encoder maps
/// this onto codec::HalfKind (any_one kills 0-compatibility, any_zero
/// kills 1-compatibility) and uses x_count for its filled/leftover
/// accounting.
struct PlaneScan {
  bool any_one = false;   // at least one specified 1 in the range
  bool any_zero = false;  // at least one specified 0 in the range
  std::size_t x_count = 0;
};

/// Two packed bitplanes over a trit sequence, with append-style building.
class Bitplanes {
 public:
  Bitplanes() = default;

  /// Plane extraction: de-interleaves the packed 2-bit words of `v`.
  explicit Bitplanes(const TritVector& v);

  /// Plane injection: re-interleaves into a canonical TritVector that is
  /// word-identical to one built trit by trit.
  TritVector to_trits() const;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool value_bit(std::size_t i) const noexcept {
    return (value_[i >> 6] >> (i & 63)) & 1u;
  }
  bool x_bit(std::size_t i) const noexcept {
    return (x_[i >> 6] >> (i & 63)) & 1u;
  }
  Trit get(std::size_t i) const noexcept {
    if (x_bit(i)) return Trit::X;
    return value_bit(i) ? Trit::One : Trit::Zero;
  }

  /// The `len` (<= 64) value-plane bits starting at `begin`, bit j of the
  /// result being trit begin+j; bits past `len` are zero.
  std::uint64_t value_bits(std::size_t begin, std::size_t len) const noexcept {
    return plane_bits(value_, begin, len);
  }
  /// Same for the X plane.
  std::uint64_t x_bits(std::size_t begin, std::size_t len) const noexcept {
    return plane_bits(x_, begin, len);
  }

  /// One word-parallel pass over [begin, begin+len): AND/OR/popcount per
  /// 64-trit word with correct masking at the boundaries, including a
  /// partial first word, a partial tail, and the degenerate empty range.
  /// Inline: this is the encoder's innermost loop, called twice per block.
  PlaneScan scan(std::size_t begin, std::size_t len) const noexcept {
    PlaneScan s;
    std::size_t pos = begin;
    std::size_t left = len;
    while (left > 0) {
      const unsigned off = pos & 63;
      const unsigned take =
          static_cast<unsigned>(std::min<std::size_t>(left, 64 - off));
      const std::uint64_t mask = low_mask(take) << off;
      const std::uint64_t val = value_[pos >> 6] & mask;
      const std::uint64_t xs = x_[pos >> 6] & mask;
      s.any_one |= val != 0;
      s.any_zero |= (val | xs) != mask;
      s.x_count += static_cast<std::size_t>(std::popcount(xs));
      pos += take;
      left -= take;
    }
    return s;
  }

  /// Appends `n` (<= 64) trits given as plane words: bit j of
  /// `value`/`x` is trit size()+j. Bits at positions >= n must be zero.
  void append_word(std::uint64_t value, std::uint64_t x, unsigned n) {
    if (n == 0) return;
    ensure(size_ + n);
    const std::size_t w = size_ >> 6;
    const unsigned off = size_ & 63;
    value_[w] |= value << off;
    x_[w] |= x << off;
    if (off + n > 64) {
      value_[w + 1] |= value >> (64 - off);
      x_[w + 1] |= x >> (64 - off);
    }
    size_ += n;
  }

  /// Appends a fully specified codeword, most significant bit of `bits`
  /// transmitted (appended) first. `len` <= 32.
  void append_bits_msb(std::uint32_t bits, unsigned len);

  /// Appends `n` copies of `t`, whole words at a time.
  void append_run(std::size_t n, Trit t);

  /// Appends src[begin, begin+len) -- the word-parallel payload copy.
  /// `begin + len` must be <= src.size(). Inline: one call per payload
  /// half/block on the encoder and decoder hot paths.
  void append_range(const Bitplanes& src, std::size_t begin,
                    std::size_t len) {
    std::size_t pos = begin;
    std::size_t left = len;
    while (left > 0) {
      const unsigned take =
          static_cast<unsigned>(std::min<std::size_t>(left, 64));
      append_word(src.value_bits(pos, take), src.x_bits(pos, take), take);
      pos += take;
      left -= take;
    }
  }

  /// Pre-sizes the backing planes for `n` total trits.
  void reserve(std::size_t n) {
    value_.reserve((n + 63) / 64);
    x_.reserve((n + 63) / 64);
  }

 private:
  static constexpr std::uint64_t low_mask(unsigned n) noexcept {
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  }
  std::uint64_t plane_bits(const std::vector<std::uint64_t>& plane,
                           std::size_t begin,
                           std::size_t len) const noexcept {
    if (len == 0) return 0;
    const std::size_t w = begin >> 6;
    const unsigned off = begin & 63;
    std::uint64_t bits = plane[w] >> off;
    // off + len > 64 implies off > 0 (len <= 64), so the shift is in range.
    if (off + len > 64) bits |= plane[w + 1] << (64 - off);
    return bits & low_mask(static_cast<unsigned>(len));
  }
  void ensure(std::size_t total_bits) {
    const std::size_t need = (total_bits + 63) / 64;
    if (value_.size() < need) {
      value_.resize(need, 0);
      x_.resize(need, 0);
    }
  }

  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> x_;
  std::size_t size_ = 0;
};

/// Sequential cursor over a Bitplanes stream, mirroring TritReader's
/// contract exactly: the same StreamOverrun/InvalidSymbol exceptions with
/// the same offsets, so the two decoder implementations raise identical
/// typed errors on identical corrupt inputs.
class BitplaneReader {
 public:
  explicit BitplaneReader(const Bitplanes& p) noexcept
      : p_(&p), pos_(0), end_(p.size()) {}

  bool done() const noexcept { return pos_ >= end_; }
  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return end_ - pos_; }

  /// Reads one symbol that must be 0 or 1 (a codeword bit).
  bool next_bit() {
    if (pos_ >= end_) throw StreamOverrun(pos_, 1, 0);
    const std::size_t i = pos_++;
    if (p_->x_bit(i)) throw InvalidSymbol(i);
    return p_->value_bit(i);
  }

  /// Consumes `n` symbols (X allowed) by appending them to `out` -- the
  /// decoder's word-parallel payload copy.
  void copy_to(Bitplanes& out, std::size_t n) {
    if (remaining() < n) throw StreamOverrun(pos_, n, remaining());
    out.append_range(*p_, pos_, n);
    pos_ += n;
  }

 private:
  const Bitplanes* p_;
  std::size_t pos_;
  std::size_t end_;
};

}  // namespace nc::bits
