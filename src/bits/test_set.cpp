#include "bits/test_set.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nc::bits {

TestSet TestSet::from_strings(const std::vector<std::string>& patterns) {
  TestSet ts;
  for (const auto& s : patterns) ts.append_pattern(TritVector::from_string(s));
  return ts;
}

TestSet TestSet::parse(std::istream& in) {
  TestSet ts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace, remembering how many
    // leading characters were dropped so columns refer to the raw line.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);

    TritVector row;
    row.resize(line.size(), Trit::Zero);
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      switch (c) {
        case '0': row.set(i, Trit::Zero); break;
        case '1': row.set(i, Trit::One); break;
        case 'x':
        case 'X': row.set(i, Trit::X); break;
        default:
          throw ParseError(lineno, first + i + 1,
                           std::string("invalid character '") + c +
                               "' (want 0/1/X)");
      }
    }
    if (ts.pattern_count() > 0 && row.size() != ts.pattern_length())
      throw ParseError(lineno, first + 1,
                       "ragged row: width " + std::to_string(row.size()) +
                           " != " + std::to_string(ts.pattern_length()));
    ts.append_pattern(row);
  }
  if (ts.pattern_count() == 0)
    throw ParseError(lineno, 0, "no pattern lines (empty test set)");
  return ts;
}

TestSet TestSet::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open test set file: " + path);
  return parse(in);
}

void TestSet::save(std::ostream& out) const {
  for (std::size_t i = 0; i < rows_; ++i)
    out << pattern(i).to_string() << '\n';
}

void TestSet::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write test set file: " + path);
  save(out);
}

void TestSet::set_pattern(std::size_t i, const TritVector& p) {
  if (p.size() != width_)
    throw std::invalid_argument("pattern width mismatch");
  for (std::size_t c = 0; c < width_; ++c) set(i, c, p.get(c));
}

void TestSet::append_pattern(const TritVector& p) {
  if (rows_ == 0 && width_ == 0) width_ = p.size();
  if (p.size() != width_)
    throw std::invalid_argument("ragged test set: pattern width " +
                                std::to_string(p.size()) + " != " +
                                std::to_string(width_));
  data_.append(p);
  ++rows_;
}

TritVector TestSet::flatten_sliced(std::size_t chains) const {
  if (chains == 0) throw std::invalid_argument("chains must be positive");
  const std::size_t depth = (width_ + chains - 1) / chains;  // cells per chain
  TritVector out;
  out.resize(rows_ * depth * chains, Trit::X);
  std::size_t pos = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t d = 0; d < depth; ++d) {
      for (std::size_t c = 0; c < chains; ++c, ++pos) {
        // Chain c holds cells [c*depth, (c+1)*depth); slice d picks its d-th.
        const std::size_t cell = c * depth + d;
        if (cell < width_) out.set(pos, at(r, cell));
      }
    }
  }
  return out;
}

TestSet TestSet::unflatten(const TritVector& stream, std::size_t pattern_count,
                           std::size_t pattern_length) {
  if (stream.size() != pattern_count * pattern_length)
    throw std::invalid_argument("unflatten: size mismatch");
  TestSet ts(pattern_count, pattern_length);
  ts.data_ = stream;
  return ts;
}

}  // namespace nc::bits
