// Binary serialization for trit streams and test sets.
//
// The ATE-side tooling (tools/ninec) stores compressed streams TE on disk;
// TE still carries X symbols (the leftover don't-cares), so the format packs
// four trits per byte rather than raw bits. Layout, little-endian:
//
//   magic "NCT1" | u8 kind (0 = TritVector, 1 = TestSet)
//   kind 0: u64 size                  | ceil(size/4) payload bytes
//   kind 1: u64 patterns, u64 width   | ceil(patterns*width/4) payload bytes
//
// Each payload byte holds trits at offsets 0..3, two bits each, value
// 0b00 = '0', 0b01 = '1', 0b10 = 'X'; 0b11 is invalid and rejected.
#pragma once

#include <iosfwd>
#include <string>

#include "bits/test_set.h"
#include "bits/trit_vector.h"

namespace nc::bits {

void save_trits(std::ostream& out, const TritVector& v);
TritVector load_trits(std::istream& in);

void save_test_set(std::ostream& out, const TestSet& ts);
TestSet load_test_set(std::istream& in);

/// File helpers; throw std::runtime_error on I/O or format errors.
void save_trits_file(const std::string& path, const TritVector& v);
TritVector load_trits_file(const std::string& path);
void save_test_set_file(const std::string& path, const TestSet& ts);
TestSet load_test_set_file(const std::string& path);

}  // namespace nc::bits
