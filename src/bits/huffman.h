// Canonical Huffman coding over a small symbol alphabet -- the machinery
// shared by the statistical baselines (VIHC, MTC, selective Huffman).
//
// Codes are canonical (sorted by length, then symbol) so a decoder needs
// only the length of every symbol's codeword; encoder and decoder built
// from the same frequencies always agree.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitstream.h"

namespace nc::bits {

class HuffmanCode {
 public:
  /// Builds an optimal prefix code for `frequencies` (index == symbol).
  /// Zero-frequency symbols get no codeword and must never be encoded.
  /// A single-symbol alphabet gets a 1-bit code.
  static HuffmanCode build(const std::vector<std::size_t>& frequencies);

  std::size_t symbol_count() const noexcept { return lengths_.size(); }
  bool has_code(std::size_t symbol) const noexcept {
    return symbol < lengths_.size() && lengths_[symbol] > 0;
  }
  unsigned length(std::size_t symbol) const noexcept {
    return lengths_[symbol];
  }
  std::uint64_t code(std::size_t symbol) const noexcept {
    return codes_[symbol];
  }

  /// Appends the codeword of `symbol`; throws std::invalid_argument if the
  /// symbol has no code.
  void encode(bits::BitWriter& out, std::size_t symbol) const;

  /// Reads one codeword and returns the symbol; throws std::runtime_error
  /// on a bit sequence matching no codeword.
  std::size_t decode(bits::TritReader& in) const;

  /// Total coded size of a stream with these symbol counts.
  std::size_t coded_bits(const std::vector<std::size_t>& frequencies) const;

 private:
  std::vector<unsigned> lengths_;
  std::vector<std::uint64_t> codes_;
  unsigned max_length_ = 0;
};

}  // namespace nc::bits
