#include "bits/huffman.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace nc::bits {

HuffmanCode HuffmanCode::build(const std::vector<std::size_t>& frequencies) {
  HuffmanCode hc;
  hc.lengths_.assign(frequencies.size(), 0);
  hc.codes_.assign(frequencies.size(), 0);

  // Collect used symbols.
  std::vector<std::size_t> used;
  for (std::size_t s = 0; s < frequencies.size(); ++s)
    if (frequencies[s] > 0) used.push_back(s);
  if (used.empty()) return hc;
  if (used.size() == 1) {
    hc.lengths_[used[0]] = 1;
    hc.codes_[used[0]] = 0;
    hc.max_length_ = 1;
    return hc;
  }

  // Standard heap Huffman over tree nodes; then read back depths.
  struct Node {
    std::size_t weight;
    int left = -1, right = -1;
    std::size_t symbol = static_cast<std::size_t>(-1);
  };
  std::vector<Node> nodes;
  using Entry = std::pair<std::size_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t s : used) {
    nodes.push_back(Node{frequencies[s], -1, -1, s});
    heap.emplace(frequencies[s], static_cast<int>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{wa + wb, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first traversal to get lengths.
  struct Frame {
    int node;
    unsigned depth;
  };
  std::vector<Frame> stack = {{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(f.node)];
    if (n.left < 0) {
      hc.lengths_[n.symbol] = std::max(1u, f.depth);
      hc.max_length_ = std::max(hc.max_length_, hc.lengths_[n.symbol]);
    } else {
      stack.push_back({n.left, f.depth + 1});
      stack.push_back({n.right, f.depth + 1});
    }
  }

  // Canonical assignment: sort by (length, symbol).
  std::vector<std::size_t> order = used;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (hc.lengths_[a] != hc.lengths_[b]) return hc.lengths_[a] < hc.lengths_[b];
    return a < b;
  });
  std::uint64_t code = 0;
  unsigned prev_len = hc.lengths_[order[0]];
  for (std::size_t s : order) {
    code <<= (hc.lengths_[s] - prev_len);
    prev_len = hc.lengths_[s];
    hc.codes_[s] = code++;
  }
  return hc;
}

void HuffmanCode::encode(bits::BitWriter& out, std::size_t symbol) const {
  if (!has_code(symbol))
    throw std::invalid_argument("symbol has no Huffman code");
  out.put_bits(codes_[symbol], lengths_[symbol]);
}

std::size_t HuffmanCode::decode(bits::TritReader& in) const {
  std::uint64_t acc = 0;
  unsigned len = 0;
  while (len < max_length_) {
    acc = (acc << 1) | (in.next_bit() ? 1u : 0u);
    ++len;
    for (std::size_t s = 0; s < lengths_.size(); ++s)
      if (lengths_[s] == len && codes_[s] == acc) return s;
  }
  throw std::runtime_error("Huffman stream corrupt: no codeword matches");
}

std::size_t HuffmanCode::coded_bits(
    const std::vector<std::size_t>& frequencies) const {
  std::size_t bits = 0;
  for (std::size_t s = 0; s < frequencies.size(); ++s)
    bits += frequencies[s] * lengths_[s];
  return bits;
}

}  // namespace nc::bits
