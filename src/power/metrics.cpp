#include "power/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nc::power {

std::size_t weighted_transitions(const bits::TritVector& pattern) {
  const std::size_t len = pattern.size();
  std::size_t wtm = 0;
  for (std::size_t j = 0; j + 1 < len; ++j) {
    const bits::Trit a = pattern.get(j);
    const bits::Trit b = pattern.get(j + 1);
    if (!bits::is_care(a) || !bits::is_care(b))
      throw std::invalid_argument("WTM needs a fully specified pattern");
    if (a != b) wtm += len - 1 - j;
  }
  return wtm;
}

std::size_t total_weighted_transitions(const bits::TestSet& patterns) {
  std::size_t total = 0;
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p)
    total += weighted_transitions(patterns.pattern(p));
  return total;
}

std::size_t transition_count(const bits::TritVector& pattern) {
  std::size_t n = 0;
  for (std::size_t j = 0; j + 1 < pattern.size(); ++j)
    if (bits::is_care(pattern.get(j)) && bits::is_care(pattern.get(j + 1)) &&
        pattern.get(j) != pattern.get(j + 1))
      ++n;
  return n;
}

std::vector<std::size_t> shift_power_profile(const bits::TritVector& pattern) {
  const std::size_t len = pattern.size();
  // Chain state, cell 0 nearest the scan input; starts all zero.
  std::vector<bool> chain(len, false);
  std::vector<std::size_t> profile(len, 0);
  for (std::size_t cycle = 0; cycle < len; ++cycle) {
    // Bits enter first-shifted-first: pattern bit `cycle` enters at cell 0
    // and everything already in the chain moves one cell deeper.
    const bits::Trit t = pattern.get(cycle);
    if (!bits::is_care(t))
      throw std::invalid_argument(
          "shift power needs a fully specified pattern");
    std::size_t toggles = 0;
    bool incoming = t == bits::Trit::One;
    for (std::size_t c = 0; c < len; ++c) {
      const bool old = chain[c];  // vector<bool> proxies do not std::swap
      if (old != incoming) ++toggles;
      chain[c] = incoming;
      incoming = old;
    }
    profile[cycle] = toggles;
  }
  return profile;
}

std::size_t peak_shift_power(const bits::TestSet& patterns) {
  std::size_t peak = 0;
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p)
    for (std::size_t t : shift_power_profile(patterns.pattern(p)))
      peak = std::max(peak, t);
  return peak;
}

}  // namespace nc::power
