// Scan-in power metrics.
//
// The standard weighted-transitions metric (WTM): a transition between scan
// cells j and j+1 of an L-cell pattern is shifted through L-1-j cells, so it
// costs proportionally more the earlier it enters the chain:
//
//   WTM(pattern) = sum_{j=0}^{L-2} (b_j != b_{j+1}) * (L - 1 - j)
#pragma once

#include <cstddef>
#include <vector>

#include "bits/test_set.h"
#include "bits/trit_vector.h"

namespace nc::power {

/// WTM of one fully specified pattern; throws std::invalid_argument if the
/// pattern still contains X.
std::size_t weighted_transitions(const bits::TritVector& pattern);

/// Sum of WTM over all patterns of a fully specified test set.
std::size_t total_weighted_transitions(const bits::TestSet& patterns);

/// Plain (unweighted) transition count of one pattern.
std::size_t transition_count(const bits::TritVector& pattern);

/// Per-shift-cycle switching activity of scanning one pattern into an
/// initially all-zero chain of `pattern.size()` cells: entry c is the number
/// of scan cells that toggle on shift cycle c (cycle 0 shifts in the first
/// bit). Peak power is the maximum entry; the sum is the total cell-toggle
/// count. Requires a fully specified pattern.
std::vector<std::size_t> shift_power_profile(const bits::TritVector& pattern);

/// Highest single-cycle toggle count while scanning the whole set in
/// (chains reset to zero between patterns -- the conservative model).
std::size_t peak_shift_power(const bits::TestSet& patterns);

}  // namespace nc::power
