// X-fill strategies for the leftover don't-cares.
//
// The paper keeps mismatch-half X bits alive in TE so they can later be
// filled: randomly (to catch non-modeled defects) or power-aware (to cut
// scan-in transitions). This library implements both sides of that
// trade-off plus the weighted-transitions metric used to compare them.
#pragma once

#include <cstdint>

#include "bits/test_set.h"

namespace nc::power {

enum class FillStrategy {
  kRandom,         // independent fair coin per X
  kZero,           // all X -> 0
  kOne,            // all X -> 1
  kMinTransition,  // X adopts the previous scan cell's value (MT-fill)
};

const char* fill_strategy_name(FillStrategy s) noexcept;

/// Returns a fully specified copy of `cubes`. `seed` matters only for
/// kRandom. MT-fill scans each pattern left to right; leading X's adopt the
/// first care bit (or 0 in an all-X pattern).
bits::TestSet fill(const bits::TestSet& cubes, FillStrategy strategy,
                   std::uint64_t seed = 1);

}  // namespace nc::power
