#include "power/fill.h"

#include <random>

namespace nc::power {

using bits::TestSet;
using bits::Trit;

const char* fill_strategy_name(FillStrategy s) noexcept {
  switch (s) {
    case FillStrategy::kRandom: return "random";
    case FillStrategy::kZero: return "0-fill";
    case FillStrategy::kOne: return "1-fill";
    case FillStrategy::kMinTransition: return "MT-fill";
  }
  return "?";
}

TestSet fill(const TestSet& cubes, FillStrategy strategy, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TestSet out = cubes;
  for (std::size_t p = 0; p < out.pattern_count(); ++p) {
    // MT-fill: leading X's adopt the first care bit.
    Trit last = Trit::Zero;
    if (strategy == FillStrategy::kMinTransition) {
      for (std::size_t c = 0; c < out.pattern_length(); ++c)
        if (bits::is_care(out.at(p, c))) {
          last = out.at(p, c);
          break;
        }
    }
    for (std::size_t c = 0; c < out.pattern_length(); ++c) {
      const Trit t = out.at(p, c);
      if (bits::is_care(t)) {
        last = t;
        continue;
      }
      switch (strategy) {
        case FillStrategy::kRandom:
          out.set(p, c, bits::trit_from_bit(rng() & 1u));
          break;
        case FillStrategy::kZero:
          out.set(p, c, Trit::Zero);
          break;
        case FillStrategy::kOne:
          out.set(p, c, Trit::One);
          break;
        case FillStrategy::kMinTransition:
          out.set(p, c, last);
          break;
      }
    }
  }
  return out;
}

}  // namespace nc::power
