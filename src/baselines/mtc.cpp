#include "baselines/mtc.h"

#include <stdexcept>

#include "bits/bitstream.h"

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

Mtc::Mtc(std::size_t group_size) : m_(group_size), log2m_(0) {
  if (m_ < 2 || (m_ & (m_ - 1)) != 0)
    throw std::invalid_argument("MTC group size must be a power of two >= 2");
  for (std::size_t v = m_; v > 1; v >>= 1) ++log2m_;
}

std::string Mtc::name() const { return "MTC(m=" + std::to_string(m_) + ")"; }

TritVector Mtc::encode(const TritVector& td) const {
  bits::BitWriter out;
  if (td.empty()) return out.take();

  // Minimum-transition fill: X adopts the value of the previous care bit.
  // The first run's polarity is transmitted explicitly.
  std::size_t i = 0;
  while (i < td.size() && !bits::is_care(td.get(i))) ++i;
  const bool first =
      i < td.size() ? td.get(i) == Trit::One : false;  // all-X: run of 0s
  out.put(first);

  bool current = first;
  std::size_t run = 0;
  auto emit_run = [&](std::size_t len) {
    // Golomb codeword: unary group count + log2(m) remainder bits. Runs are
    // at least 1 long, so code len-1.
    const std::size_t v = len - 1;
    out.put_run(v / m_, true);
    out.put(false);
    out.put_bits(v % m_, log2m_);
  };
  for (i = 0; i < td.size(); ++i) {
    const Trit t = td.get(i);
    if (t == Trit::X || t == bits::trit_from_bit(current)) {
      ++run;
    } else {
      emit_run(run);
      current = !current;
      run = 1;
    }
  }
  emit_run(run);
  return out.take();
}

TritVector Mtc::decode(const TritVector& te,
                       std::size_t original_bits) const {
  TritVector out;
  if (original_bits == 0) return out;
  bits::TritReader in(te);
  bool current = in.next_bit();
  while (out.size() < original_bits) {
    std::size_t groups = 0;
    while (in.next_bit()) ++groups;
    const std::size_t run = groups * m_ + in.next_bits(log2m_) + 1;
    out.append_run(run, bits::trit_from_bit(current));
    current = !current;
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::baselines
