#include "baselines/lzw.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bits/bitstream.h"

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

Lzw::Lzw(unsigned code_bits) : max_code_bits_(code_bits) {
  if (code_bits < 2 || code_bits > 20)
    throw std::invalid_argument("LZW code width must be 2..20");
}

std::string Lzw::name() const {
  return "LZW(w=" + std::to_string(max_code_bits_) + ")";
}

TritVector Lzw::encode(const TritVector& td) const {
  const std::size_t cap = std::size_t{1} << max_code_bits_;
  std::unordered_map<std::string, std::size_t> dict = {{"0", 0}, {"1", 1}};
  std::size_t next = 2;

  bits::BitWriter out;
  std::string cur;
  for (std::size_t i = 0; i < td.size(); ++i) {
    const char b = td.get(i) == Trit::One ? '1' : '0';  // X fills as 0
    cur.push_back(b);
    if (dict.count(cur)) continue;
    // cur = known prefix + b: emit the prefix, learn cur, restart from b.
    cur.pop_back();
    out.put_bits(dict.at(cur), max_code_bits_);
    cur.push_back(b);
    if (next < cap) dict.emplace(cur, next++);
    cur = b;
  }
  if (!cur.empty()) out.put_bits(dict.at(cur), max_code_bits_);
  return out.take();
}

TritVector Lzw::decode(const TritVector& te,
                       std::size_t original_bits) const {
  TritVector out;
  if (original_bits == 0) return out;
  const std::size_t cap = std::size_t{1} << max_code_bits_;
  std::vector<std::string> entries = {"0", "1"};
  bits::TritReader in(te);

  auto emit = [&](const std::string& s) {
    for (char c : s) out.push_back(bits::trit_from_bit(c == '1'));
  };

  std::size_t code = static_cast<std::size_t>(in.next_bits(max_code_bits_));
  if (code >= entries.size())
    throw std::runtime_error("LZW stream corrupt: bad first code");
  std::string prev = entries[code];
  emit(prev);
  while (out.size() < original_bits) {
    code = static_cast<std::size_t>(in.next_bits(max_code_bits_));
    std::string current;
    if (code < entries.size()) {
      current = entries[code];
    } else if (code == entries.size() && entries.size() < cap) {
      current = prev + prev[0];  // the KwKwK case
    } else {
      throw std::runtime_error("LZW stream corrupt: code out of range");
    }
    if (entries.size() < cap) entries.push_back(prev + current[0]);
    emit(current);
    prev = current;
  }
  if (out.size() != original_bits)
    throw std::runtime_error("LZW stream corrupt: phrase overruns length");
  return out;
}

}  // namespace nc::baselines
