// Golomb coding of scan test data (Chandra & Chakrabarty, TCAD 2001).
//
// TD's don't-cares are filled with 0 (maximizing the 0-runs the code feeds
// on); the resulting bit stream is viewed as runs of 0s each terminated by a
// single 1. A run of length L with group size m (a power of two here) codes
// as floor(L/m) ones + '0' (unary group id) followed by log2(m) bits of
// L mod m.
#pragma once

#include <cstddef>

#include "codec/codec.h"

namespace nc::baselines {

class Golomb final : public codec::Codec {
 public:
  /// `group_size` must be a power of two >= 2 (the paper's m; 4 is typical).
  explicit Golomb(std::size_t group_size = 4);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

  std::size_t group_size() const noexcept { return m_; }

 private:
  std::size_t m_;
  unsigned log2m_;
};

}  // namespace nc::baselines
