#include "baselines/dictionary.h"

#include <algorithm>
#include <stdexcept>

#include "bits/bitstream.h"

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

namespace {

struct Block {
  std::uint64_t care = 0;
  std::uint64_t value = 0;
};

Block read_block(const TritVector& td, std::size_t begin, std::size_t b) {
  Block blk;
  for (std::size_t i = 0; i < b; ++i) {
    const Trit t = begin + i < td.size() ? td.get(begin + i) : Trit::X;
    if (bits::is_care(t)) {
      blk.care |= 1ull << i;
      if (t == Trit::One) blk.value |= 1ull << i;
    }
  }
  return blk;
}

bool compatible(const Block& blk, std::uint64_t pattern) {
  return ((pattern ^ blk.value) & blk.care) == 0;
}

}  // namespace

FixedDictionary::FixedDictionary(std::size_t block_size, std::size_t entries)
    : b_(block_size), entries_(entries), index_bits_(0) {
  if (b_ < 1 || b_ > 64)
    throw std::invalid_argument("dictionary block size must be 1..64");
  if (entries_ < 2)
    throw std::invalid_argument("dictionary needs at least two entries");
  while ((std::size_t{1} << index_bits_) < entries_) ++index_bits_;
}

FixedDictionary FixedDictionary::trained(const TritVector& td,
                                         std::size_t block_size,
                                         std::size_t entries) {
  FixedDictionary coder(block_size, entries);
  // Greedy compatible frequency counting, as in selective Huffman.
  std::vector<std::uint64_t> patterns;
  std::vector<std::size_t> counts;
  for (std::size_t pos = 0; pos < td.size(); pos += block_size) {
    const Block blk = read_block(td, pos, block_size);
    std::size_t best = patterns.size();
    for (std::size_t c = 0; c < patterns.size(); ++c) {
      if (!compatible(blk, patterns[c])) continue;
      if (best == patterns.size() || counts[c] > counts[best]) best = c;
    }
    if (best == patterns.size()) {
      patterns.push_back(blk.value);
      counts.push_back(1);
    } else {
      ++counts[best];
    }
  }
  std::vector<std::size_t> order(patterns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return counts[a] > counts[b];
  });
  const std::size_t keep = std::min(entries, order.size());
  for (std::size_t i = 0; i < keep; ++i)
    coder.dictionary_.push_back(patterns[order[i]]);
  if (coder.dictionary_.empty()) coder.dictionary_.push_back(0);
  return coder;
}

std::string FixedDictionary::name() const {
  return "Dict(b=" + std::to_string(b_) + ",D=" + std::to_string(entries_) +
         ")";
}

TritVector FixedDictionary::encode(const TritVector& td) const {
  const FixedDictionary* coder = this;
  FixedDictionary local(b_, entries_);
  if (!is_trained()) {
    local = trained(td, b_, entries_);
    coder = &local;
  }
  bits::BitWriter out;
  for (std::size_t pos = 0; pos < td.size(); pos += b_) {
    const Block blk = read_block(td, pos, b_);
    std::size_t hit = coder->dictionary_.size();
    for (std::size_t d = 0; d < coder->dictionary_.size(); ++d)
      if (compatible(blk, coder->dictionary_[d])) {
        hit = d;
        break;
      }
    if (hit < coder->dictionary_.size()) {
      out.put(true);
      out.put_bits(hit, coder->index_bits_);
    } else {
      out.put(false);
      for (std::size_t i = 0; i < b_; ++i)
        out.put((blk.value >> i) & 1u);
    }
  }
  return out.take();
}

TritVector FixedDictionary::decode(const TritVector& te,
                                   std::size_t original_bits) const {
  if (!is_trained())
    throw std::logic_error(
        "dictionary decoder is customized per test set; use trained()");
  TritVector out;
  bits::TritReader in(te);
  while (out.size() < original_bits) {
    std::uint64_t pattern;
    if (in.next_bit()) {
      const std::size_t idx =
          static_cast<std::size_t>(in.next_bits(index_bits_));
      if (idx >= dictionary_.size())
        throw std::runtime_error("dictionary stream corrupt: bad index");
      pattern = dictionary_[idx];
    } else {
      pattern = 0;
      for (std::size_t i = 0; i < b_; ++i)
        if (in.next_bit()) pattern |= 1ull << i;
    }
    for (std::size_t i = 0; i < b_; ++i)
      out.push_back(bits::trit_from_bit((pattern >> i) & 1u));
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::baselines
