#include "baselines/fdr.h"

#include "bits/bitstream.h"

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

namespace fdr_detail {

namespace {

/// Group index k such that 2^k - 2 <= length <= 2^(k+1) - 3.
unsigned group_of(std::size_t length) {
  unsigned k = 1;
  while (length > (std::size_t{2} << k) - 3) ++k;
  return k;
}

}  // namespace

void encode_run(bits::BitWriter& out, std::size_t length) {
  const unsigned k = group_of(length);
  for (unsigned i = 0; i + 1 < k; ++i) out.put(true);
  out.put(false);
  out.put_bits(length - ((std::size_t{1} << k) - 2), k);
}

std::size_t decode_run(bits::TritReader& in) {
  unsigned k = 1;
  while (in.next_bit()) ++k;
  return in.next_bits(k) + ((std::size_t{1} << k) - 2);
}

std::size_t codeword_bits(std::size_t length) {
  return 2 * static_cast<std::size_t>(group_of(length));
}

}  // namespace fdr_detail

TritVector Fdr::encode(const TritVector& td) const {
  bits::BitWriter out;
  std::size_t run = 0;
  for (std::size_t i = 0; i < td.size(); ++i) {
    if (td.get(i) == Trit::One) {  // X fills as 0
      fdr_detail::encode_run(out, run);
      run = 0;
    } else {
      ++run;
    }
  }
  if (run > 0) fdr_detail::encode_run(out, run);
  return out.take();
}

TritVector Fdr::decode(const TritVector& te,
                       std::size_t original_bits) const {
  TritVector out;
  bits::TritReader in(te);
  while (out.size() < original_bits) {
    out.append_run(fdr_detail::decode_run(in), Trit::Zero);
    out.push_back(Trit::One);
  }
  out.resize(original_bits);
  return out;
}

TritVector Efdr::encode(const TritVector& td) const {
  bits::BitWriter out;
  // Runs alternate in the *filled* stream: a run of `current` values ends at
  // a specified opposite bit. X extends the current run (minimum-transition
  // fill). The stream conventionally starts in a 0-run.
  bool current = false;
  std::size_t run = 0;
  for (std::size_t i = 0; i < td.size(); ++i) {
    const Trit t = td.get(i);
    if (t == Trit::X || t == bits::trit_from_bit(current)) {
      ++run;
    } else {
      // Run of `current` terminated by this one opposite bit. The bits
      // after the terminator continue in the terminator's value, so the
      // next run starts empty with that polarity.
      out.put(current);  // type bit matches the run value
      fdr_detail::encode_run(out, run);
      current = t == Trit::One;
      run = 0;
    }
  }
  if (run > 0) {
    out.put(current);
    fdr_detail::encode_run(out, run);
  }
  return out.take();
}

TritVector Efdr::decode(const TritVector& te,
                        std::size_t original_bits) const {
  TritVector out;
  bits::TritReader in(te);
  while (out.size() < original_bits) {
    const bool type = in.next_bit();
    const std::size_t run = fdr_detail::decode_run(in);
    out.append_run(run, bits::trit_from_bit(type));
    out.push_back(bits::trit_from_bit(!type));
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::baselines
