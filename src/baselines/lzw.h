// LZW test-data compression (Knieser et al., DATE 2003 -- reference [25] of
// the paper). The 0-filled bit stream is compressed with a binary-alphabet
// LZW dictionary emitting fixed-width codes; the dictionary freezes at
// 2^code_bits entries, matching the fixed-size embedded decoder memory of
// the original scheme.
#pragma once

#include <cstddef>

#include "codec/codec.h"

namespace nc::baselines {

class Lzw final : public codec::Codec {
 public:
  /// `code_bits` in [2, 20]: every emitted code is this wide and the
  /// dictionary holds at most 2^code_bits entries.
  explicit Lzw(unsigned code_bits = 12);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

 private:
  unsigned max_code_bits_;
};

}  // namespace nc::baselines
