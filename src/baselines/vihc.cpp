#include "baselines/vihc.h"

#include <stdexcept>

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

Vihc::Vihc(std::size_t mh) : mh_(mh) {
  if (mh_ < 1) throw std::invalid_argument("VIHC group size must be >= 1");
}

Vihc Vihc::trained(const TritVector& td, std::size_t mh) {
  Vihc coder(mh);
  std::vector<std::size_t> freq(mh + 1, 0);
  for (std::size_t s : coder.tokenize(td)) ++freq[s];
  coder.table_ = bits::HuffmanCode::build(freq);
  return coder;
}

std::string Vihc::name() const { return "VIHC(mh=" + std::to_string(mh_) + ")"; }

std::vector<std::size_t> Vihc::tokenize(const TritVector& td) const {
  std::vector<std::size_t> symbols;
  std::size_t run = 0;
  auto flush_terminated = [&] {
    while (run >= mh_) {
      symbols.push_back(mh_);  // mh zeros, no terminator
      run -= mh_;
    }
    symbols.push_back(run);  // run zeros + '1'
    run = 0;
  };
  for (std::size_t i = 0; i < td.size(); ++i) {
    if (td.get(i) == Trit::One)
      flush_terminated();
    else
      ++run;  // 0 or X (filled as 0)
  }
  // Tail without a terminating 1: emit full-group symbols, then one final
  // terminated symbol whose phantom '1' the decoder truncates away.
  if (run > 0) flush_terminated();
  return symbols;
}

TritVector Vihc::encode(const TritVector& td) const {
  const std::vector<std::size_t> symbols = tokenize(td);
  bits::HuffmanCode local;
  const bits::HuffmanCode* code = table_ ? &*table_ : &local;
  if (!table_) {
    std::vector<std::size_t> freq(mh_ + 1, 0);
    for (std::size_t s : symbols) ++freq[s];
    local = bits::HuffmanCode::build(freq);
  }
  bits::BitWriter out;
  for (std::size_t s : symbols) code->encode(out, s);
  return out.take();
}

TritVector Vihc::decode(const TritVector& te,
                        std::size_t original_bits) const {
  if (!table_)
    throw std::logic_error(
        "VIHC decoder is customized per test set; use Vihc::trained");
  TritVector out;
  bits::TritReader in(te);
  while (out.size() < original_bits) {
    const std::size_t s = table_->decode(in);
    if (s == mh_) {
      out.append_run(mh_, Trit::Zero);
    } else {
      out.append_run(s, Trit::Zero);
      out.push_back(Trit::One);
    }
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::baselines
