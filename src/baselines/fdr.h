// Frequency-directed run-length (FDR) coding and its extension EFDR.
//
// FDR (Chandra & Chakrabarty, IEEE Trans. Computers 2003): runs of 0s
// terminated by a 1; run length L in group k (2^k - 2 <= L <= 2^(k+1) - 3)
// codes as a k-bit prefix ((k-1) ones then a 0) plus a k-bit tail
// (L - (2^k - 2)). Short runs -- the frequent ones in scan data -- get the
// short codewords:  0 -> 00, 1 -> 01, 2 -> 1000, ..., 6 -> 110000, ...
// Don't-cares fill with 0.
//
// EFDR (El-Maleh & Al-Abaji, ICECS 2002): each codeword carries a leading
// type bit and encodes a run of 0s ending in 1 (type 0) or a run of 1s
// ending in 0 (type 1); don't-cares extend the current run (minimum-
// transition fill), which is what gives EFDR its edge on 1-heavy data.
#pragma once

#include "bits/bitstream.h"
#include "codec/codec.h"

namespace nc::baselines {

class Fdr final : public codec::Codec {
 public:
  std::string name() const override { return "FDR"; }
  bits::TritVector encode(const bits::TritVector& td) const override;
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;
};

class Efdr final : public codec::Codec {
 public:
  std::string name() const override { return "EFDR"; }
  bits::TritVector encode(const bits::TritVector& td) const override;
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;
};

/// Shared FDR run-length codeword machinery (exposed for tests).
namespace fdr_detail {
/// Appends the FDR codeword for a run of `length` zeros.
void encode_run(bits::BitWriter& out, std::size_t length);
/// Reads one FDR codeword, returning the run length.
std::size_t decode_run(bits::TritReader& in);
/// Codeword length in bits for a given run length.
std::size_t codeword_bits(std::size_t length);
}  // namespace fdr_detail

}  // namespace nc::baselines
