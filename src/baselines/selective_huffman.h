// Selective Huffman coding (Jas, Ghosh-Dastidar, Ng, Touba, TCAD 2003).
//
// TD splits into fixed b-bit blocks. Only the N most frequent block
// patterns receive Huffman codewords; every other block travels raw behind
// a flag bit:
//
//   coded block:   '1' + Huffman(pattern index)
//   uncoded block: '0' + b raw bits
//
// Don't-cares raise the hit rate: when counting frequencies, each block is
// greedily matched to the most frequent already-seen pattern compatible
// with it (its X bits adopt that pattern). Like VIHC, the decoder carries
// the selected patterns and their codewords: `trained(td)` builds that
// configuration; an untrained coder encodes two-pass but cannot decode.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "bits/huffman.h"
#include "codec/codec.h"

namespace nc::baselines {

class SelectiveHuffman final : public codec::Codec {
 public:
  /// `block_size` = b (bits per block), `coded_patterns` = N.
  explicit SelectiveHuffman(std::size_t block_size = 8,
                            std::size_t coded_patterns = 8);

  static SelectiveHuffman trained(const bits::TritVector& td,
                                  std::size_t block_size = 8,
                                  std::size_t coded_patterns = 8);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  /// Requires a trained coder; throws std::logic_error otherwise.
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

  std::size_t block_size() const noexcept { return b_; }
  bool is_trained() const noexcept { return table_.has_value(); }
  /// The selected (fully specified) patterns, most frequent first.
  const std::vector<std::uint64_t>& selected_patterns() const noexcept {
    return selected_;
  }

 private:
  struct Dictionary;
  Dictionary build_dictionary(const bits::TritVector& td) const;

  std::size_t b_;
  std::size_t n_;
  std::vector<std::uint64_t> selected_;
  std::optional<bits::HuffmanCode> table_;
};

}  // namespace nc::baselines
