#include "baselines/golomb.h"

#include <stdexcept>

#include "bits/bitstream.h"

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

Golomb::Golomb(std::size_t group_size) : m_(group_size), log2m_(0) {
  if (m_ < 2 || (m_ & (m_ - 1)) != 0)
    throw std::invalid_argument("Golomb group size must be a power of two >= 2");
  for (std::size_t v = m_; v > 1; v >>= 1) ++log2m_;
}

std::string Golomb::name() const {
  return "Golomb(m=" + std::to_string(m_) + ")";
}

TritVector Golomb::encode(const TritVector& td) const {
  bits::BitWriter out;
  std::size_t run = 0;
  auto emit_run = [&](std::size_t len) {
    out.put_run(len / m_, true);
    out.put(false);
    out.put_bits(len % m_, log2m_);
  };
  for (std::size_t i = 0; i < td.size(); ++i) {
    // X counts as 0: the filled stream is what the decoder reproduces.
    if (td.get(i) == Trit::One) {
      emit_run(run);
      run = 0;
    } else {
      ++run;
    }
  }
  // Trailing zeros (no terminating 1): encode as a normal run; the decoder
  // drops the phantom terminator when it passes original_bits.
  if (run > 0) emit_run(run);
  return out.take();
}

TritVector Golomb::decode(const TritVector& te,
                          std::size_t original_bits) const {
  TritVector out;
  bits::TritReader in(te);
  while (out.size() < original_bits) {
    std::size_t groups = 0;
    while (in.next_bit()) ++groups;
    const std::size_t rem = in.next_bits(log2m_);
    out.append_run(groups * m_ + rem, Trit::Zero);
    out.push_back(Trit::One);
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::baselines
