// VIHC -- Variable-length Input Huffman Coding (Gonciari, Al-Hashimi,
// Nicolici, DATE 2002).
//
// The 0-filled stream is parsed into variable-length input patterns: runs of
// 0s terminated by a 1, capped at `mh` (the group size). A run longer than
// mh - 1 emits one or more "mh zeros, no terminator" symbols first. The
// resulting mh + 1 symbols are Huffman-coded by frequency.
//
// Like all statistical schemes the paper compares against, the decoder is
// *customized to the test set*: the Huffman table lives in the on-chip
// decoder, not in the stream (one of the 9C paper's criticisms). The
// software model mirrors that: `trained(td)` bakes the table into the coder;
// an untrained coder can encode (deriving the table on the fly, two-pass)
// but cannot decode.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "bits/huffman.h"
#include "codec/codec.h"

namespace nc::baselines {

class Vihc final : public codec::Codec {
 public:
  /// `mh` is the maximum input-pattern length (the paper's group size),
  /// >= 1. The alphabet has mh+1 symbols: runs 0..mh-1 with terminator,
  /// plus the unterminated all-zero run of mh.
  explicit Vihc(std::size_t mh = 8);

  /// Coder whose table is built from `td` -- the deployable configuration.
  static Vihc trained(const bits::TritVector& td, std::size_t mh = 8);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  /// Requires a trained coder; throws std::logic_error otherwise.
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

  std::size_t mh() const noexcept { return mh_; }
  bool is_trained() const noexcept { return table_.has_value(); }

  /// Parses the 0-filled stream into symbol indices (0..mh-1 = terminated
  /// run of that many zeros; mh = unterminated full-length run). Exposed
  /// for tests and for the decompressor-cost analyses.
  std::vector<std::size_t> tokenize(const bits::TritVector& td) const;

 private:
  std::size_t mh_;
  std::optional<bits::HuffmanCode> table_;
};

}  // namespace nc::baselines
