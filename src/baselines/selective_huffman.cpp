#include "baselines/selective_huffman.h"

#include <algorithm>
#include <stdexcept>

namespace nc::baselines {

using bits::Trit;
using bits::TritVector;

namespace {

/// A b-trit block as (care mask, value) pair packed into 64-bit words.
struct Block {
  std::uint64_t care = 0;   // bit set where the trit is specified
  std::uint64_t value = 0;  // specified value (0 where X)
};

Block read_block(const TritVector& td, std::size_t begin, std::size_t b) {
  Block blk;
  for (std::size_t i = 0; i < b; ++i) {
    const Trit t = begin + i < td.size() ? td.get(begin + i) : Trit::X;
    if (bits::is_care(t)) {
      blk.care |= 1ull << i;
      if (t == Trit::One) blk.value |= 1ull << i;
    }
  }
  return blk;
}

bool compatible(const Block& blk, std::uint64_t pattern) {
  return ((pattern ^ blk.value) & blk.care) == 0;
}

}  // namespace

struct SelectiveHuffman::Dictionary {
  std::vector<std::uint64_t> patterns;  // fully specified candidates
  std::vector<std::size_t> counts;      // matches per candidate
};

SelectiveHuffman::SelectiveHuffman(std::size_t block_size,
                                   std::size_t coded_patterns)
    : b_(block_size), n_(coded_patterns) {
  if (b_ < 1 || b_ > 64)
    throw std::invalid_argument("selective Huffman block size must be 1..64");
  if (n_ < 1) throw std::invalid_argument("need at least one coded pattern");
}

SelectiveHuffman::Dictionary SelectiveHuffman::build_dictionary(
    const TritVector& td) const {
  Dictionary dict;
  for (std::size_t pos = 0; pos < td.size(); pos += b_) {
    const Block blk = read_block(td, pos, b_);
    // Greedy: match the most frequent compatible candidate so far.
    std::size_t best = dict.patterns.size();
    for (std::size_t c = 0; c < dict.patterns.size(); ++c) {
      if (!compatible(blk, dict.patterns[c])) continue;
      if (best == dict.patterns.size() ||
          dict.counts[c] > dict.counts[best])
        best = c;
    }
    if (best == dict.patterns.size()) {
      dict.patterns.push_back(blk.value);  // X bits adopt 0
      dict.counts.push_back(1);
    } else {
      ++dict.counts[best];
    }
  }
  return dict;
}

SelectiveHuffman SelectiveHuffman::trained(const TritVector& td,
                                           std::size_t block_size,
                                           std::size_t coded_patterns) {
  SelectiveHuffman coder(block_size, coded_patterns);
  const Dictionary dict = coder.build_dictionary(td);

  // Select the N most frequent candidates.
  std::vector<std::size_t> order(dict.patterns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dict.counts[a] > dict.counts[b];
  });
  const std::size_t keep = std::min(coder.n_, order.size());
  std::vector<std::size_t> freq(keep, 0);
  for (std::size_t i = 0; i < keep; ++i) {
    coder.selected_.push_back(dict.patterns[order[i]]);
    freq[i] = dict.counts[order[i]];
  }
  coder.table_ = bits::HuffmanCode::build(freq);
  return coder;
}

std::string SelectiveHuffman::name() const {
  return "SelHuff(b=" + std::to_string(b_) + ",N=" + std::to_string(n_) + ")";
}

TritVector SelectiveHuffman::encode(const TritVector& td) const {
  const SelectiveHuffman* coder = this;
  SelectiveHuffman local(b_, n_);
  if (!table_) {
    local = trained(td, b_, n_);
    coder = &local;
  }
  bits::BitWriter out;
  for (std::size_t pos = 0; pos < td.size(); pos += b_) {
    const Block blk = read_block(td, pos, b_);
    std::size_t hit = coder->selected_.size();
    for (std::size_t s = 0; s < coder->selected_.size(); ++s)
      if (compatible(blk, coder->selected_[s])) {
        hit = s;
        break;  // selected_ is ordered most-frequent-first
      }
    if (hit < coder->selected_.size() && coder->table_->has_code(hit)) {
      out.put(true);
      coder->table_->encode(out, hit);
    } else {
      out.put(false);
      // Raw block, X filled with 0, LSB-first to match read_block.
      for (std::size_t i = 0; i < b_; ++i)
        out.put((blk.value >> i) & 1u);
    }
  }
  return out.take();
}

TritVector SelectiveHuffman::decode(const TritVector& te,
                                    std::size_t original_bits) const {
  if (!table_)
    throw std::logic_error(
        "selective Huffman decoder is customized per test set; use trained()");
  TritVector out;
  bits::TritReader in(te);
  while (out.size() < original_bits) {
    std::uint64_t pattern;
    if (in.next_bit()) {
      pattern = selected_[table_->decode(in)];
    } else {
      pattern = 0;
      for (std::size_t i = 0; i < b_; ++i)
        if (in.next_bit()) pattern |= 1ull << i;
    }
    for (std::size_t i = 0; i < b_; ++i)
      out.push_back(bits::trit_from_bit((pattern >> i) & 1u));
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::baselines
