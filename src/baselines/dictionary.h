// Dictionary compression with fixed-length indices (Li & Chakrabarty,
// VTS 2003 -- reference [26], the scheme the paper's Table VIII circuits
// came from). TD splits into b-bit blocks; a dictionary of D fully
// specified entries is selected by greedy compatible matching, and each
// block travels either as '1' + log2(D)-bit index (hit) or '0' + b raw bits
// (miss). The dictionary itself lives in the on-chip decoder -- another
// test-set-customized decompressor, so `trained(td)` is required to decode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codec/codec.h"

namespace nc::baselines {

class FixedDictionary final : public codec::Codec {
 public:
  /// `block_size` = b in [1, 64]; `entries` = D >= 2 (rounded up to a power
  /// of two index space; index width = clog2(D)).
  explicit FixedDictionary(std::size_t block_size = 16,
                           std::size_t entries = 128);

  static FixedDictionary trained(const bits::TritVector& td,
                                 std::size_t block_size = 16,
                                 std::size_t entries = 128);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  /// Requires a trained coder; throws std::logic_error otherwise.
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

  bool is_trained() const noexcept { return !dictionary_.empty(); }
  const std::vector<std::uint64_t>& dictionary() const noexcept {
    return dictionary_;
  }
  unsigned index_bits() const noexcept { return index_bits_; }

 private:
  std::size_t b_;
  std::size_t entries_;
  unsigned index_bits_;
  std::vector<std::uint64_t> dictionary_;
};

}  // namespace nc::baselines
