// MTC -- minimum-transition-count coding (after Rosinger, Gonciari,
// Al-Hashimi, Nicolici, Electronics Letters 2001).
//
// The scheme the 9C paper cites couples compression with scan-power
// reduction: don't-cares are filled to *extend the current run* (minimum-
// transition fill), and the resulting alternating runs of identical values
// are run-length coded. Our implementation codes each maximal run with a
// Golomb codeword (group size m); the run polarity alternates, with the
// first run's polarity carried as a single leading bit. The original paper
// is available to us only in summary form, so this is a faithful-in-spirit
// reconstruction (documented in DESIGN.md); its compression ratios land in
// the published ballpark between Golomb and FDR on MinTest-like data.
#pragma once

#include <cstddef>

#include "codec/codec.h"

namespace nc::baselines {

class Mtc final : public codec::Codec {
 public:
  /// `group_size` must be a power of two >= 2.
  explicit Mtc(std::size_t group_size = 4);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

 private:
  std::size_t m_;
  unsigned log2m_;
};

}  // namespace nc::baselines
