// Deterministic random circuit generator.
//
// Produces structurally valid full-scan netlists of a requested size so the
// ATPG -> compression flow can be exercised at scales between the bundled
// toy circuits and the paper's (unavailable) industrial designs.
#pragma once

#include <cstdint>

#include "circuit/netlist.h"

namespace nc::circuit {

struct GeneratorConfig {
  std::size_t num_inputs = 8;
  std::size_t num_flops = 8;
  std::size_t num_gates = 100;
  std::size_t num_outputs = 4;
  /// Fanin per gate is drawn uniformly from [2, max_fanin] (1 for NOT/BUF).
  std::size_t max_fanin = 4;
  /// Locality: each fanin is drawn from the most recent `locality_window`
  /// nodes with high probability, giving the cone structure of real logic
  /// rather than a uniform random DAG.
  std::size_t locality_window = 32;
  std::uint64_t seed = 1;
};

/// Generates a netlist; same config -> same netlist. The result always
/// passes Netlist::validate(): acyclic combinational core, DFFs fed by late
/// gates, every requested output driven.
Netlist generate_circuit(const GeneratorConfig& config);

}  // namespace nc::circuit
