// Gate-level netlist for ISCAS-style benchmark circuits.
//
// A netlist is a flat list of nodes. Each node is a primary input, a D
// flip-flop or a logic gate; its fanins reference other nodes by index.
// Sequential circuits are tested full-scan: every DFF is a scan cell, so the
// *combinational core* treats DFF outputs as pseudo primary inputs (PPIs)
// and DFF data inputs as pseudo primary outputs (PPOs). A test pattern is
// one value per PI plus one per scan cell -- exactly the row format of
// `nc::bits::TestSet`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nc::circuit {

enum class GateType : unsigned char {
  kInput,  // primary input (no fanin)
  kDff,    // scan cell; fanin[0] is the data (next-state) line
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Lower-case keyword as used in .bench files ("nand", "dff", ...).
const char* gate_type_name(GateType t) noexcept;

struct Gate {
  GateType type = GateType::kBuf;
  std::string name;
  std::vector<std::size_t> fanins;
};

/// Immutable-after-build gate-level circuit.
class Netlist {
 public:
  /// Adds a node and returns its index. Fanins may reference indices added
  /// later only via `add_named_placeholder` + `set_fanins` (the .bench
  /// parser needs forward references).
  std::size_t add_gate(GateType type, std::string name,
                       std::vector<std::size_t> fanins = {});
  void set_fanins(std::size_t gate, std::vector<std::size_t> fanins);
  void mark_output(std::size_t gate);

  std::size_t size() const noexcept { return gates_.size(); }
  const Gate& gate(std::size_t i) const noexcept { return gates_[i]; }

  const std::vector<std::size_t>& inputs() const noexcept { return inputs_; }
  const std::vector<std::size_t>& outputs() const noexcept { return outputs_; }
  const std::vector<std::size_t>& flops() const noexcept { return flops_; }

  /// Number of scan-pattern columns: |PI| + |DFF|. Pattern layout is all
  /// PIs in `inputs()` order followed by all scan cells in `flops()` order.
  std::size_t pattern_width() const noexcept {
    return inputs_.size() + flops_.size();
  }

  /// Number of observable columns in the response: |PO| + |DFF| (PPOs).
  std::size_t response_width() const noexcept {
    return outputs_.size() + flops_.size();
  }

  /// Count of logic gates (excludes PIs and DFFs), the "gate count" quoted
  /// in benchmark tables.
  std::size_t logic_gate_count() const noexcept;

  /// Topological order of the combinational core: every PI and DFF first
  /// (they have no combinational fanin), then gates in dependency order.
  /// Throws std::runtime_error on a combinational cycle.
  std::vector<std::size_t> levelize() const;

  /// Checks structural sanity: fanin arities match gate types, names are
  /// unique and non-empty, no dangling references. Throws on violation.
  void validate() const;

  /// Index lookup by name; npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const std::string& name) const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::size_t> inputs_;
  std::vector<std::size_t> outputs_;
  std::vector<std::size_t> flops_;
};

}  // namespace nc::circuit
