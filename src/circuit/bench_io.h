// Reader/writer for the ISCAS'85/'89 ".bench" netlist format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G5 = DFF(G10)
//   G10 = NAND(G0, G5)
//   G17 = NOT(G10)
//
// Keywords are case-insensitive; forward references are allowed.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace nc::circuit {

/// Parses a .bench netlist. Throws std::runtime_error with a line number on
/// malformed input, undefined signals or arity violations.
Netlist parse_bench(std::istream& in);
Netlist parse_bench_string(const std::string& text);
Netlist load_bench_file(const std::string& path);

/// Emits the netlist in .bench syntax (inverse of parse_bench).
void write_bench(std::ostream& out, const Netlist& netlist);
std::string to_bench_string(const Netlist& netlist);

}  // namespace nc::circuit
