#include "circuit/samples.h"

#include "circuit/bench_io.h"

namespace nc::circuit::samples {

const char* c17_bench_text() {
  return R"(# ISCAS'85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";
}

const char* s27_bench_text() {
  return R"(# ISCAS'89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
)";
}

Netlist c17() { return parse_bench_string(c17_bench_text()); }
Netlist s27() { return parse_bench_string(s27_bench_text()); }

}  // namespace nc::circuit::samples
