#include "circuit/generator.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace nc::circuit {

Netlist generate_circuit(const GeneratorConfig& config) {
  if (config.num_inputs == 0 && config.num_flops == 0)
    throw std::invalid_argument("circuit needs at least one input or flop");
  if (config.num_gates == 0)
    throw std::invalid_argument("circuit needs at least one gate");
  if (config.max_fanin < 2)
    throw std::invalid_argument("max_fanin must be >= 2");

  std::mt19937_64 rng(config.seed);
  Netlist netlist;

  std::vector<std::size_t> sources;  // candidate fanins, in creation order
  for (std::size_t i = 0; i < config.num_inputs; ++i)
    sources.push_back(netlist.add_gate(GateType::kInput,
                                       "I" + std::to_string(i)));
  std::vector<std::size_t> flops;
  for (std::size_t i = 0; i < config.num_flops; ++i) {
    const std::size_t f =
        netlist.add_gate(GateType::kDff, "F" + std::to_string(i));
    flops.push_back(f);
    sources.push_back(f);
  }

  // Signal-probability estimate per node (independence assumption). Keeping
  // outputs near p=0.5 prevents the constant-collapse that plagues naive
  // random logic and would make half the fault list untestable.
  std::vector<double> prob(netlist.size(), 0.5);
  auto pick_source = [&](std::size_t upto) {
    // 80%: recent window (local cones); 20%: anywhere (global nets).
    if (rng() % 5 != 0 && upto > config.locality_window) {
      const std::size_t lo = upto - config.locality_window;
      return sources[lo + rng() % config.locality_window];
    }
    return sources[rng() % upto];
  };

  auto output_prob = [](GateType t, const std::vector<double>& p) {
    double conj = 1.0, disj = 1.0;
    for (double pi : p) {
      conj *= pi;
      disj *= 1.0 - pi;
    }
    switch (t) {
      case GateType::kAnd: return conj;
      case GateType::kNand: return 1.0 - conj;
      case GateType::kOr: return 1.0 - disj;
      case GateType::kNor: return disj;
      case GateType::kXor:
        return p[0] * (1.0 - p[1]) + (1.0 - p[0]) * p[1];
      case GateType::kXnor:
        return 1.0 - (p[0] * (1.0 - p[1]) + (1.0 - p[0]) * p[1]);
      case GateType::kNot: return 1.0 - p[0];
      default: return p[0];
    }
  };

  std::vector<std::size_t> gates;
  for (std::size_t i = 0; i < config.num_gates; ++i) {
    const std::size_t arity =
        std::min<std::size_t>(2 + rng() % (config.max_fanin - 1),
                              sources.size());
    // Distinct fanins keep the logic non-degenerate (XOR(a,a) is constant,
    // AND(a,a) a buffer) -- degeneracy breeds untestable faults.
    std::vector<std::size_t> fanins;
    fanins.reserve(arity);
    while (fanins.size() < arity) {
      std::size_t pick = pick_source(sources.size());
      for (int tries = 0;
           std::find(fanins.begin(), fanins.end(), pick) != fanins.end() &&
           tries < 16;
           ++tries)
        pick = sources[rng() % sources.size()];
      if (std::find(fanins.begin(), fanins.end(), pick) != fanins.end())
        break;
      fanins.push_back(pick);
    }
    if (fanins.empty()) fanins.push_back(sources[rng() % sources.size()]);

    std::vector<double> pin_probs;
    for (std::size_t f : fanins) pin_probs.push_back(prob[f]);

    // Candidate types for this arity; pick randomly among the two whose
    // output probability stays closest to 1/2.
    std::vector<GateType> candidates;
    if (fanins.size() == 1) {
      candidates = {GateType::kNot, GateType::kBuf};
    } else {
      candidates = {GateType::kAnd, GateType::kNand, GateType::kOr,
                    GateType::kNor};
      if (fanins.size() == 2) {
        candidates.push_back(GateType::kXor);
        candidates.push_back(GateType::kXnor);
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](GateType a, GateType b) {
                       return std::abs(output_prob(a, pin_probs) - 0.5) <
                              std::abs(output_prob(b, pin_probs) - 0.5);
                     });
    const GateType type =
        candidates[rng() % std::min<std::size_t>(2, candidates.size())];

    const std::size_t g = netlist.add_gate(type, "N" + std::to_string(i),
                                           std::move(fanins));
    prob.push_back(output_prob(type, pin_probs));
    gates.push_back(g);
    sources.push_back(g);
  }

  // Feed each flop from one of the last gates so state depends on deep logic.
  const std::size_t tail = std::min<std::size_t>(gates.size(), 64);
  for (std::size_t f : flops) {
    const std::size_t src = gates[gates.size() - 1 - rng() % tail];
    netlist.set_fanins(f, {src});
  }

  // Primary outputs from distinct late gates where possible.
  std::vector<std::size_t> pool = gates;
  std::shuffle(pool.begin(), pool.end(), rng);
  const std::size_t outs = std::min(config.num_outputs, pool.size());
  std::vector<bool> is_output(netlist.size(), false);
  for (std::size_t i = 0; i < outs; ++i) {
    netlist.mark_output(pool[i]);
    is_output[pool[i]] = true;
  }

  // Dangling gates would make every fault in their cone unobservable; route
  // them to primary outputs like synthesis tools keep unused nets visible.
  std::vector<bool> used(netlist.size(), false);
  for (std::size_t g = 0; g < netlist.size(); ++g)
    for (std::size_t f : netlist.gate(g).fanins) used[f] = true;
  for (std::size_t g : gates)
    if (!used[g] && !is_output[g]) netlist.mark_output(g);

  netlist.validate();
  return netlist;
}

}  // namespace nc::circuit
