#include "circuit/scan_chains.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace nc::circuit {

using bits::Trit;
using bits::TritVector;

std::size_t ScanChains::depth() const noexcept {
  std::size_t d = 0;
  for (const auto& c : chains) d = std::max(d, c.size());
  return d;
}

std::size_t ScanChains::cell_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : chains) n += c.size();
  return n;
}

ScanChains stitch_scan_chains(const Netlist& netlist, std::size_t count) {
  const auto& flops = netlist.flops();
  if (count == 0) throw std::invalid_argument("need at least one scan chain");
  if (count > flops.size())
    throw std::invalid_argument("more chains than scan cells");

  ScanChains sc;
  sc.chains.resize(count);
  const std::size_t depth = (flops.size() + count - 1) / count;
  for (std::size_t i = 0; i < flops.size(); ++i)
    sc.chains[i / depth].push_back(flops[i]);
  // Drop empty tail chains (possible when count does not divide evenly).
  while (!sc.chains.empty() && sc.chains.back().empty()) sc.chains.pop_back();
  return sc;
}

std::vector<TritVector> chain_streams(const Netlist& netlist,
                                      const ScanChains& chains,
                                      const TritVector& pattern) {
  if (pattern.size() != netlist.pattern_width())
    throw std::invalid_argument("pattern width does not match circuit");
  // Column of each flop node in the pattern layout (PIs first).
  std::unordered_map<std::size_t, std::size_t> column;
  for (std::size_t i = 0; i < netlist.flops().size(); ++i)
    column[netlist.flops()[i]] = netlist.inputs().size() + i;

  const std::size_t depth = chains.depth();
  std::vector<TritVector> streams;
  streams.reserve(chains.chain_count());
  for (const auto& chain : chains.chains) {
    TritVector s(depth, Trit::X);
    for (std::size_t d = 0; d < chain.size(); ++d)
      s.set(d, pattern.get(column.at(chain[d])));
    streams.push_back(std::move(s));
  }
  return streams;
}

TritVector pattern_from_streams(const Netlist& netlist,
                                const ScanChains& chains,
                                const std::vector<TritVector>& streams) {
  if (streams.size() != chains.chain_count())
    throw std::invalid_argument("stream count does not match chains");
  std::unordered_map<std::size_t, std::size_t> column;
  for (std::size_t i = 0; i < netlist.flops().size(); ++i)
    column[netlist.flops()[i]] = netlist.inputs().size() + i;

  TritVector pattern(netlist.pattern_width(), Trit::X);
  for (std::size_t c = 0; c < streams.size(); ++c) {
    const auto& chain = chains.chains[c];
    if (streams[c].size() < chain.size())
      throw std::invalid_argument("stream shorter than its chain");
    for (std::size_t d = 0; d < chain.size(); ++d)
      pattern.set(column.at(chain[d]), streams[c].get(d));
  }
  return pattern;
}

}  // namespace nc::circuit
