// Scan-chain configuration: how a netlist's scan cells are stitched into m
// chains, and how test-pattern columns map onto per-chain scan-in streams.
//
// The multi-scan decompressors of Fig. 3/4 assume the l scan cells are
// "rearranged into m groups of l/m-bit scan chains"; this module performs
// that rearrangement on a concrete netlist so the abstract chain model and
// the gate-level view agree.
#pragma once

#include <cstddef>
#include <vector>

#include "bits/trit_vector.h"
#include "circuit/netlist.h"

namespace nc::circuit {

struct ScanChains {
  /// chains[c][d] is the flop node that receives scan-in bit d of chain c
  /// (d = 0 enters first and ends up deepest).
  std::vector<std::vector<std::size_t>> chains;

  std::size_t chain_count() const noexcept { return chains.size(); }
  /// Depth of the longest chain (= shift cycles per pattern).
  std::size_t depth() const noexcept;
  /// Total scan cells across chains.
  std::size_t cell_count() const noexcept;
};

/// Splits the netlist's flops (in Netlist::flops() order) into `count`
/// blocked chains of near-equal depth: chain 0 takes the first ceil(n/m)
/// flops, and so on. Throws if count is 0 or exceeds the flop count.
ScanChains stitch_scan_chains(const Netlist& netlist, std::size_t count);

/// Per-chain scan-in streams for one test pattern (TestSet row layout: PIs
/// then flops). Stream c has depth() trits; chains shorter than depth() are
/// padded with X at the end (those shifts fall off the short chain).
std::vector<bits::TritVector> chain_streams(const Netlist& netlist,
                                            const ScanChains& chains,
                                            const bits::TritVector& pattern);

/// Inverse mapping: rebuilds the flop-column part of a pattern from
/// per-chain streams. PIs come back as X (they are not scanned).
bits::TritVector pattern_from_streams(
    const Netlist& netlist, const ScanChains& chains,
    const std::vector<bits::TritVector>& streams);

}  // namespace nc::circuit
