#include "circuit/netlist.h"

#include <stdexcept>
#include <unordered_map>

namespace nc::circuit {

const char* gate_type_name(GateType t) noexcept {
  switch (t) {
    case GateType::kInput: return "input";
    case GateType::kDff: return "dff";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kNand: return "nand";
    case GateType::kOr: return "or";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
  }
  return "?";
}

std::size_t Netlist::add_gate(GateType type, std::string name,
                              std::vector<std::size_t> fanins) {
  const std::size_t idx = gates_.size();
  gates_.push_back(Gate{type, std::move(name), std::move(fanins)});
  if (type == GateType::kInput) inputs_.push_back(idx);
  if (type == GateType::kDff) flops_.push_back(idx);
  return idx;
}

void Netlist::set_fanins(std::size_t gate, std::vector<std::size_t> fanins) {
  gates_.at(gate).fanins = std::move(fanins);
}

void Netlist::mark_output(std::size_t gate) { outputs_.push_back(gate); }

std::size_t Netlist::logic_gate_count() const noexcept {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (g.type != GateType::kInput && g.type != GateType::kDff) ++n;
  return n;
}

std::vector<std::size_t> Netlist::levelize() const {
  // Kahn's algorithm over combinational edges; DFF data inputs are *not*
  // combinational dependencies of the DFF output (the flop breaks the loop).
  std::vector<std::size_t> indegree(gates_.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
    indegree[i] = g.fanins.size();
    for (std::size_t f : g.fanins) consumers[f].push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i)
    if (indegree[i] == 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (std::size_t c : consumers[order[head]])
      if (--indegree[c] == 0) order.push_back(c);
  }
  if (order.size() != gates_.size())
    throw std::runtime_error("netlist has a combinational cycle");
  return order;
}

void Netlist::validate() const {
  std::unordered_map<std::string, std::size_t> seen;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.name.empty())
      throw std::runtime_error("gate " + std::to_string(i) + " has no name");
    if (!seen.emplace(g.name, i).second)
      throw std::runtime_error("duplicate gate name: " + g.name);
    for (std::size_t f : g.fanins)
      if (f >= gates_.size())
        throw std::runtime_error("dangling fanin on " + g.name);
    const std::size_t arity = g.fanins.size();
    switch (g.type) {
      case GateType::kInput:
        if (arity != 0) throw std::runtime_error("input with fanin: " + g.name);
        break;
      case GateType::kDff:
      case GateType::kBuf:
      case GateType::kNot:
        if (arity != 1)
          throw std::runtime_error("unary gate arity != 1: " + g.name);
        break;
      case GateType::kXor:
      case GateType::kXnor:
        if (arity < 2)
          throw std::runtime_error("xor arity < 2: " + g.name);
        break;
      default:
        if (arity < 2)
          throw std::runtime_error("gate arity < 2: " + g.name);
        break;
    }
  }
  levelize();  // throws on cycles
}

std::size_t Netlist::find(const std::string& name) const {
  for (std::size_t i = 0; i < gates_.size(); ++i)
    if (gates_[i].name == name) return i;
  return npos;
}

}  // namespace nc::circuit
