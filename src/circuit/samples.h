// Small, well-known benchmark circuits bundled as .bench text so the test
// suite and examples run with no external data. The big ISCAS'89 circuits
// the paper uses are not redistributable here; `nc::gen` provides calibrated
// synthetic equivalents (see DESIGN.md, substitution table).
#pragma once

#include "circuit/netlist.h"

namespace nc::circuit::samples {

/// ISCAS'85 c17: 5 inputs, 2 outputs, 6 NAND gates. The canonical toy.
Netlist c17();

/// ISCAS'89 s27: 4 inputs, 1 output, 3 flip-flops, 10 gates.
Netlist s27();

/// .bench source text for the two circuits (useful for parser tests).
const char* c17_bench_text();
const char* s27_bench_text();

}  // namespace nc::circuit::samples
