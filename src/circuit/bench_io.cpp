#include "circuit/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace nc::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string strip(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

GateType gate_type_from_keyword(const std::string& kw, std::size_t lineno) {
  static const std::unordered_map<std::string, GateType> map = {
      {"dff", GateType::kDff},   {"buf", GateType::kBuf},
      {"buff", GateType::kBuf},  {"not", GateType::kNot},
      {"and", GateType::kAnd},   {"nand", GateType::kNand},
      {"or", GateType::kOr},     {"nor", GateType::kNor},
      {"xor", GateType::kXor},   {"xnor", GateType::kXnor},
  };
  const auto it = map.find(lower(kw));
  if (it == map.end())
    throw std::runtime_error("bench line " + std::to_string(lineno) +
                             ": unknown gate type '" + kw + "'");
  return it->second;
}

/// Splits "a, b ,c" into trimmed tokens.
std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!strip(cur).empty() || !out.empty()) out.push_back(strip(cur));
  return out;
}

}  // namespace

Netlist parse_bench(std::istream& in) {
  struct PendingGate {
    std::string name;
    GateType type;
    std::vector<std::string> fanin_names;
    std::size_t lineno;
  };
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    line = strip(line);
    if (line.empty()) continue;

    const auto open = line.find('(');
    const auto close = line.rfind(')');
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(name) or OUTPUT(name)
      if (open == std::string::npos || close == std::string::npos ||
          close < open)
        throw std::runtime_error("bench line " + std::to_string(lineno) +
                                 ": malformed declaration");
      const std::string kw = lower(strip(line.substr(0, open)));
      const std::string name = strip(line.substr(open + 1, close - open - 1));
      if (name.empty())
        throw std::runtime_error("bench line " + std::to_string(lineno) +
                                 ": empty signal name");
      if (kw == "input")
        input_names.push_back(name);
      else if (kw == "output")
        output_names.push_back(name);
      else
        throw std::runtime_error("bench line " + std::to_string(lineno) +
                                 ": expected INPUT/OUTPUT, got '" + kw + "'");
      continue;
    }
    // name = TYPE(args)
    if (open == std::string::npos || close == std::string::npos || open < eq)
      throw std::runtime_error("bench line " + std::to_string(lineno) +
                               ": malformed gate definition");
    PendingGate g;
    g.name = strip(line.substr(0, eq));
    g.type = gate_type_from_keyword(strip(line.substr(eq + 1, open - eq - 1)),
                                    lineno);
    g.fanin_names = split_args(line.substr(open + 1, close - open - 1));
    g.lineno = lineno;
    if (g.name.empty() || g.fanin_names.empty())
      throw std::runtime_error("bench line " + std::to_string(lineno) +
                               ": malformed gate definition");
    pending.push_back(std::move(g));
  }

  Netlist netlist;
  std::unordered_map<std::string, std::size_t> index;
  for (const std::string& name : input_names) {
    if (index.count(name))
      throw std::runtime_error("bench: duplicate definition of " + name);
    index[name] = netlist.add_gate(GateType::kInput, name);
  }
  for (const PendingGate& g : pending) {
    if (index.count(g.name))
      throw std::runtime_error("bench line " + std::to_string(g.lineno) +
                               ": duplicate definition of " + g.name);
    index[g.name] = netlist.add_gate(g.type, g.name);
  }
  for (const PendingGate& g : pending) {
    std::vector<std::size_t> fanins;
    fanins.reserve(g.fanin_names.size());
    for (const std::string& fn : g.fanin_names) {
      const auto it = index.find(fn);
      if (it == index.end())
        throw std::runtime_error("bench line " + std::to_string(g.lineno) +
                                 ": undefined signal '" + fn + "'");
      fanins.push_back(it->second);
    }
    netlist.set_fanins(index[g.name], std::move(fanins));
  }
  for (const std::string& name : output_names) {
    const auto it = index.find(name);
    if (it == index.end())
      throw std::runtime_error("bench: OUTPUT of undefined signal " + name);
    netlist.mark_output(it->second);
  }
  netlist.validate();
  return netlist;
}

Netlist parse_bench_string(const std::string& text) {
  std::istringstream in(text);
  return parse_bench(in);
}

Netlist load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  return parse_bench(in);
}

void write_bench(std::ostream& out, const Netlist& netlist) {
  for (std::size_t i : netlist.inputs())
    out << "INPUT(" << netlist.gate(i).name << ")\n";
  for (std::size_t i : netlist.outputs())
    out << "OUTPUT(" << netlist.gate(i).name << ")\n";
  for (std::size_t i = 0; i < netlist.size(); ++i) {
    const Gate& g = netlist.gate(i);
    if (g.type == GateType::kInput) continue;
    std::string kw = gate_type_name(g.type);
    std::transform(kw.begin(), kw.end(), kw.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    out << g.name << " = " << kw << "(";
    for (std::size_t f = 0; f < g.fanins.size(); ++f) {
      if (f > 0) out << ", ";
      out << netlist.gate(g.fanins[f]).name;
    }
    out << ")\n";
  }
}

std::string to_bench_string(const Netlist& netlist) {
  std::ostringstream os;
  write_bench(os, netlist);
  return os.str();
}

}  // namespace nc::circuit
