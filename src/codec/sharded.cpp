#include "codec/sharded.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "bits/bitstream.h"
#include "core/crc.h"
#include "core/parallel.h"
#include "core/thread_pool.h"

namespace nc::codec {

using bits::TestSet;
using bits::TritVector;

namespace {

// Header field geometry, in symbols (= specified bits).
constexpr std::size_t kMagicBits = 16;
constexpr std::size_t kVersionBits = 8;
constexpr std::size_t kCountBits = 32;
constexpr std::size_t kGeometryBits = 64;
constexpr std::size_t kRecordBits = 96;  // offset 32 | length 32 | crc 32
constexpr std::size_t kFixedHeaderBits =
    kMagicBits + kVersionBits + kCountBits + 2 * kGeometryBits;

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs == 0 ? core::ThreadPool::hardware_threads() : jobs;
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> shard_plan(
    std::size_t patterns, std::size_t shards) {
  if (patterns == 0) return {{0, 0}};  // one empty shard
  if (shards == 0) shards = 1;
  if (shards > patterns) shards = patterns;
  std::vector<std::pair<std::size_t, std::size_t>> plan;
  plan.reserve(shards);
  const std::size_t base = patterns / shards;
  const std::size_t extra = patterns % shards;
  std::size_t first = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    plan.emplace_back(first, count);
    first += count;
  }
  return plan;
}

std::uint32_t shard_crc(const TritVector& v, std::size_t begin,
                        std::size_t len) {
  // Streamed through the shared core CRC in small chunks: the trit symbols
  // have to be materialized as bytes anyway, and a stack buffer keeps the
  // slice-by-8 fast path fed without a heap allocation per shard.
  std::array<std::uint8_t, 256> chunk;
  std::uint32_t state = core::crc32_init();
  std::size_t done = 0;
  while (done < len) {
    const std::size_t n = std::min(len - done, chunk.size());
    for (std::size_t i = 0; i < n; ++i)
      chunk[i] = static_cast<std::uint8_t>(v.get(begin + done + i));
    state = core::crc32_update(state, chunk.data(), n);
    done += n;
  }
  return core::crc32_final(state);
}

bool is_sharded(const TritVector& stream) noexcept {
  if (stream.size() < kMagicBits) return false;
  std::uint32_t magic = 0;
  for (std::size_t i = 0; i < kMagicBits; ++i) {
    const bits::Trit t = stream.get(i);
    if (!bits::is_care(t)) return false;
    magic = (magic << 1) | (t == bits::Trit::One ? 1u : 0u);
  }
  return magic == kShardMagic;
}

ShardedHeader parse_sharded_header(const TritVector& container) {
  bits::TritReader reader(container);
  ShardedHeader header;
  try {
    if (reader.next_bits(kMagicBits) != kShardMagic)
      throw DecodeError(DecodeFault::kBadMagic, 0);
    if (reader.next_bits(kVersionBits) != kShardVersion)
      throw DecodeError(DecodeFault::kBadMagic, kMagicBits);
    header.shard_count =
        static_cast<std::size_t>(reader.next_bits(kCountBits));
    header.pattern_count =
        static_cast<std::size_t>(reader.next_bits(kGeometryBits));
    header.pattern_width =
        static_cast<std::size_t>(reader.next_bits(kGeometryBits));
    if (header.shard_count == 0)
      throw DecodeError(DecodeFault::kBadShardIndex,
                        kMagicBits + kVersionBits);
    const std::size_t max_shards =
        header.pattern_count == 0 ? 1 : header.pattern_count;
    if (header.shard_count > max_shards)
      throw DecodeError(DecodeFault::kBadShardIndex,
                        kMagicBits + kVersionBits);

    const auto plan = shard_plan(header.pattern_count, header.shard_count);
    header.header_symbols =
        kFixedHeaderBits + header.shard_count * kRecordBits;
    header.shards.reserve(header.shard_count);
    std::size_t expect_offset = 0;
    for (std::size_t i = 0; i < header.shard_count; ++i) {
      ShardRecord rec;
      rec.first_pattern = plan[i].first;
      rec.pattern_count = plan[i].second;
      const std::size_t field_pos = reader.position();
      rec.payload_offset = static_cast<std::size_t>(reader.next_bits(32));
      rec.payload_length = static_cast<std::size_t>(reader.next_bits(32));
      rec.crc = static_cast<std::uint32_t>(reader.next_bits(32));
      if (rec.payload_offset != expect_offset)
        throw DecodeError(DecodeFault::kBadShardIndex, field_pos)
            .with_shard(i);
      expect_offset += rec.payload_length;
      header.shards.push_back(rec);
    }
    // Payload accounting: the index must cover the rest of the container
    // exactly -- too little is truncation, too much is trailing data.
    const std::size_t expected_end = header.header_symbols + expect_offset;
    if (expected_end > container.size())
      throw DecodeError(DecodeFault::kTruncated, container.size());
    if (expected_end < container.size())
      throw DecodeError(DecodeFault::kTrailingData, expected_end);
  } catch (const bits::StreamOverrun& e) {
    throw DecodeError(DecodeFault::kTruncated, e.offset());
  } catch (const bits::InvalidSymbol& e) {
    // An X inside the magic is a non-container; one inside the index is a
    // corrupted container.
    throw DecodeError(e.offset() < kMagicBits ? DecodeFault::kBadMagic
                                              : DecodeFault::kBadShardIndex,
                      e.offset());
  }
  return header;
}

bits::TritVector encode_sharded(const Codec& codec, const TestSet& td,
                                std::size_t shards, std::size_t jobs,
                                ShardedStats* stats) {
  jobs = resolve_jobs(jobs);
  if (shards == 0) shards = jobs;
  const auto plan = shard_plan(td.pattern_count(), shards);
  const std::size_t count = plan.size();
  const std::size_t width = td.pattern_length();
  const TritVector& flat = td.flatten();

  // Stage 1: encode every shard independently. Workers write only their own
  // slot; jobs=1 runs the identical lambda inline, so the container is a
  // pure function of (codec, td, shard count).
  std::vector<TritVector> payloads(count);
  auto encode_shard = [&](std::size_t i) {
    const auto [first, patterns] = plan[i];
    payloads[i] = codec.encode(flat.slice(first * width, patterns * width));
  };
  if (jobs > 1 && count > 1) {
    core::ThreadPool pool(jobs < count ? jobs : count);
    core::parallel_for(pool, 0, count, encode_shard);
  } else {
    for (std::size_t i = 0; i < count; ++i) encode_shard(i);
  }

  // Stage 2: index + concatenation, strictly in shard order.
  bits::BitWriter header;
  header.put_bits(kShardMagic, kMagicBits);
  header.put_bits(kShardVersion, kVersionBits);
  header.put_bits(count, kCountBits);
  header.put_bits(td.pattern_count(), kGeometryBits);
  header.put_bits(width, kGeometryBits);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (offset + payloads[i].size() >
        std::numeric_limits<std::uint32_t>::max())
      throw std::length_error("sharded payload exceeds 2^32 symbols");
    header.put_bits(offset, 32);
    header.put_bits(payloads[i].size(), 32);
    header.put_bits(shard_crc(payloads[i], 0, payloads[i].size()), 32);
    offset += payloads[i].size();
  }

  TritVector container = header.take();
  const std::size_t header_bits = container.size();
  for (const TritVector& p : payloads) container.append(p);

  if (stats != nullptr) {
    stats->shard_count = count;
    stats->header_bits = header_bits;
    stats->payload_bits = offset;
    stats->total_bits = container.size();
  }
  return container;
}

TestSet decode_sharded(const Codec& codec, const TritVector& container,
                       std::size_t jobs) {
  jobs = resolve_jobs(jobs);
  const ShardedHeader header = parse_sharded_header(container);
  const std::size_t count = header.shard_count;

  // The index gives every worker its own [start, start+len) window; no
  // shared cursor exists, so workers are fully independent.
  std::vector<TritVector> decoded(count);
  auto decode_shard = [&](std::size_t i) {
    const ShardRecord& rec = header.shards[i];
    const std::size_t start = header.header_symbols + rec.payload_offset;
    if (shard_crc(container, start, rec.payload_length) != rec.crc)
      throw DecodeError(DecodeFault::kShardCrc, start).with_shard(i);
    const TritVector payload = container.slice(start, rec.payload_length);
    try {
      decoded[i] = codec.decode(
          payload, rec.pattern_count * header.pattern_width);
    } catch (const DecodeError& e) {
      // Re-base the shard-relative offset so the report points into the
      // container, and name the shard.
      throw DecodeError(e.fault(), e.stream_offset() + start, e.block_index(),
                        e.pin())
          .with_shard(i);
    }
  };
  if (jobs > 1 && count > 1) {
    core::ThreadPool pool(jobs < count ? jobs : count);
    core::parallel_for(pool, 0, count, decode_shard);
  } else {
    for (std::size_t i = 0; i < count; ++i) decode_shard(i);
  }

  TritVector stream;
  for (const TritVector& d : decoded) stream.append(d);
  return TestSet::unflatten(stream, header.pattern_count,
                            header.pattern_width);
}

TritVector strip_shard_index(const TritVector& container) {
  const ShardedHeader header = parse_sharded_header(container);
  return container.slice(header.header_symbols,
                         container.size() - header.header_symbols);
}

}  // namespace nc::codec
