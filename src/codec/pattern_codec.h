// Generalization of the 9C code -- the extension the paper sketches in
// Section II: "more uniform K-bit blocks (e.g. 0101..., 1010...) can be
// added ... a systematic coding in such cases requires 4-7 more codewords
// [and] may slightly improve the compression ratio but results in a more
// complicated and expensive decoder."
//
// PatternCodec implements that family. Each K/2-bit half is matched against
// an ordered list of uniform half-patterns -- all-0 and all-1 give exactly
// 9C; adding the alternating patterns 0101... and 1010... gives a 25-word
// code -- or falls through to a verbatim mismatch. Codeword lengths come
// from a Huffman code over the class frequencies of the training set, so
// the coder (like the paper's statistical baselines, and unlike plain 9C)
// carries a per-test-set table: `trained(td, ...)` builds the deployable
// configuration. The ablation bench weighs the CR gain against the decoder
// cost reported by nc::synth::synthesize_code_fsm.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "bits/huffman.h"
#include "codec/codec.h"

namespace nc::codec {

/// A K/2-bit uniform pattern a half can be matched against.
struct HalfPattern {
  enum class Kind : unsigned char {
    kConst0,  // 000...
    kConst1,  // 111...
    kAlt01,   // 0101...
    kAlt10,   // 1010...
  };
  Kind kind = Kind::kConst0;

  /// Bit at offset `i` within the half.
  bool bit_at(std::size_t i) const noexcept;
  /// One-character tag used in names: '0', '1', 'A', 'B'.
  char symbol() const noexcept;
};

/// The standard pattern sets.
std::vector<HalfPattern> nine_coded_patterns();      // {0, 1} -> 9 classes
std::vector<HalfPattern> extended_patterns();        // {0, 1, A, B} -> 25

class PatternCodec final : public Codec {
 public:
  /// `block_size` = K (even, >= 2). Untrained codecs can encode (two-pass)
  /// but not decode, mirroring the trained-decoder model of the statistical
  /// baselines.
  PatternCodec(std::size_t block_size, std::vector<HalfPattern> patterns);

  static PatternCodec trained(const bits::TritVector& td,
                              std::size_t block_size,
                              std::vector<HalfPattern> patterns);

  std::string name() const override;
  bits::TritVector encode(const bits::TritVector& td) const override;
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

  std::size_t block_size() const noexcept { return k_; }
  /// Number of block classes = (patterns + 1)^2 (mismatch included).
  std::size_t class_count() const noexcept;
  bool is_trained() const noexcept { return table_.has_value(); }
  const std::vector<HalfPattern>& patterns() const noexcept {
    return patterns_;
  }
  /// Trained Huffman table (codeword per class); throws if untrained.
  const bits::HuffmanCode& table() const;

  /// Class index of the block at [begin, begin+K): a pair of half classes
  /// (row-major; half class = first compatible pattern index, or
  /// patterns().size() for a mismatch).
  std::size_t classify(const bits::TritVector& v, std::size_t begin) const;

  /// Per-class frequencies over a stream (exposed for the ablation bench).
  std::vector<std::size_t> class_histogram(const bits::TritVector& td) const;

 private:
  std::size_t half_class(const bits::TritVector& v, std::size_t begin) const;
  bits::TritVector padded(const bits::TritVector& td) const;

  std::size_t k_;
  std::vector<HalfPattern> patterns_;
  std::optional<bits::HuffmanCode> table_;
};

}  // namespace nc::codec
