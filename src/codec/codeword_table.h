// The nine prefix-free codewords of the 9C code, plus the machinery for the
// paper's frequency-directed re-assignment (Table VII).
//
// The paper fixes the codeword *lengths* as |C1|=1, |C2|=2, |C3..C8|=5,
// |C9|=4 (Kraft sum exactly 1, maximum length 5 -- the FSM needs at most
// five ATE cycles per codeword). The concrete bit patterns are generated
// canonically from the lengths so that re-assigning lengths to classes
// (frequency-directed coding) reuses the identical encoder, decoder and
// hardware model.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "bits/bitstream.h"
#include "codec/block_class.h"

namespace nc::codec {

/// Why a codeword-length set cannot form a prefix code.
enum class CodeSpecFault : unsigned char {
  kLengthOutOfRange,  // a length is 0 or > 31
  kKraftViolation,    // sum 2^-len > 1: no prefix-free assignment exists
};

/// Typed rejection of an invalid code specification. Derives from
/// std::invalid_argument so callers that funnel construction failures into a
/// generic bad-input path (serve's make_coder -> kBadPayload) keep working,
/// while the tuner can read the fault kind to count, not crash on, the
/// invalid genomes its mutations constantly produce.
class CodeSpecError : public std::invalid_argument {
 public:
  CodeSpecError(CodeSpecFault fault, std::string what)
      : std::invalid_argument(std::move(what)), fault_(fault) {}
  CodeSpecFault fault() const noexcept { return fault_; }

 private:
  CodeSpecFault fault_;
};

/// One codeword: `length` bits of `bits`, most significant bit first
/// (bit length-1 is transmitted first).
struct Codeword {
  std::uint32_t bits = 0;
  unsigned length = 0;

  std::string to_string() const;
  bool operator==(const Codeword&) const = default;
};

/// Maps each BlockClass to its codeword. Always prefix-free by construction.
class CodewordTable {
 public:
  /// The paper's default assignment: lengths {1,2,5,5,5,5,5,5,4} for
  /// C1..C9 with canonical patterns (C1=0, C2=10, C9=1100, C3..C8=11010..).
  static CodewordTable standard();

  /// Builds a canonical prefix code from one length per class. Each length
  /// must lie in [1, 31] and the multiset must satisfy Kraft's inequality
  /// (checked exactly in integers); throws CodeSpecError otherwise. Shorter
  /// codewords get lexicographically smaller patterns.
  static CodewordTable from_lengths(const std::array<unsigned, kNumClasses>& lengths);

  /// The frequency-directed table: sorts classes by descending occurrence
  /// count and deals the sorted default lengths {1,2,4,5,5,5,5,5,5} to them,
  /// so the most frequent class always gets the 1-bit codeword. Ties keep
  /// the lower case number first (stable), matching the paper's convention
  /// that the default order is already best for most circuits.
  static CodewordTable frequency_directed(
      const std::array<std::size_t, kNumClasses>& counts);

  const Codeword& at(BlockClass c) const noexcept {
    return words_[static_cast<std::size_t>(c)];
  }

  unsigned length(BlockClass c) const noexcept { return at(c).length; }
  unsigned max_length() const noexcept;

  /// Decodes the codeword starting at the reader's cursor; consumes exactly
  /// its bits. Throws DecodeError (kInvalidCodeword) if no codeword matches,
  /// which is only possible for tables whose lengths leave Kraft slack; the
  /// reader itself throws on truncation (StreamOverrun) and on an X in a
  /// codeword position (InvalidSymbol).
  BlockClass match(bits::TritReader& reader) const;

  /// Same contract over a bitplane stream; raises the identical exception
  /// sequence so both decoder implementations fail identically.
  BlockClass match(bits::BitplaneReader& reader) const;

  /// True if no codeword is a prefix of another (checked in tests; holds by
  /// construction).
  bool prefix_free() const;

  bool operator==(const CodewordTable&) const = default;

 private:
  std::array<Codeword, kNumClasses> words_{};
};

}  // namespace nc::codec
