// Typed decode failures for the 9C stream.
//
// The 9C codeword lengths {1,2,5,5,5,5,5,5,4} satisfy Kraft with equality:
// the code is *complete*, so every 0/1 bit string parses as some codeword
// sequence and a corrupted-but-specified codeword bit is never detectable at
// the codeword layer. What IS detectable, and what this error type reports:
//
//   kTruncated   the stream ended mid-codeword or mid-payload
//   kXInCodeword an X symbol landed where a codeword bit must be specified
//                (a flip inside a payload can desynchronize the parse so a
//                payload X is read as a codeword bit)
//   kInvalidCodeword  no codeword matches (only possible for incomplete
//                     tables built from non-tight length sets)
//   kTrailingData     block/length accounting finished with symbols left
//                     over -- the parse consumed less than was transmitted
//
// The sharded container (codec/sharded.h) adds three container-level kinds:
//
//   kBadMagic      the stream does not start with the shard-container magic
//   kBadShardIndex the shard index is internally inconsistent (offsets not
//                  contiguous, lengths overrunning the payload, geometry
//                  that does not match the shard count)
//   kShardCrc      a shard's payload fails its CRC-32 -- the corruption is
//                  localized to that shard before any symbol is decoded
//
// The bounded-progress watchdog (core/cancel.h) adds one more:
//
//   kWatchdogExpired  the decode exceeded its step budget, wall-clock
//                     deadline, or was cancelled -- the run was stopped
//                     rather than allowed to spin or overrun its slot
//
// Everything else (a corrupted payload bit, a flip that aliases one whole
// parse onto another of identical total length) is undetectable at the
// codeword layer -- the per-shard CRC catches it with probability 1-2^-32,
// and the residue is caught -- or X-masked -- at the session layer by the
// response compare.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace nc::codec {

enum class DecodeFault : unsigned char {
  kTruncated = 0,
  kInvalidCodeword,
  kXInCodeword,
  kTrailingData,
  kBadMagic,
  kBadShardIndex,
  kShardCrc,
  kWatchdogExpired,
};

constexpr const char* to_string(DecodeFault f) noexcept {
  switch (f) {
    case DecodeFault::kTruncated: return "truncated stream";
    case DecodeFault::kInvalidCodeword: return "invalid codeword";
    case DecodeFault::kXInCodeword: return "X in codeword position";
    case DecodeFault::kTrailingData: return "trailing data after last block";
    case DecodeFault::kBadMagic: return "bad shard-container magic";
    case DecodeFault::kBadShardIndex: return "inconsistent shard index";
    case DecodeFault::kShardCrc: return "shard CRC mismatch";
    case DecodeFault::kWatchdogExpired: return "decode watchdog expired";
  }
  return "unknown decode fault";
}

/// A detected corruption: which check fired, where in TE it fired, and which
/// decoded block (and, for multi-pin architectures, which ATE pin) was in
/// flight. `block_index`/`pin` are kUnknown when the thrower cannot know.
class DecodeError : public std::runtime_error {
 public:
  static constexpr std::size_t kUnknown = static_cast<std::size_t>(-1);

  DecodeError(DecodeFault fault, std::size_t stream_offset,
              std::size_t block_index = kUnknown, std::size_t pin = kUnknown)
      : std::runtime_error(format(fault, stream_offset, block_index, pin)),
        fault_(fault),
        stream_offset_(stream_offset),
        block_index_(block_index),
        pin_(pin) {}

  DecodeFault fault() const noexcept { return fault_; }
  /// Offset into TE (in symbols) of the failing read.
  std::size_t stream_offset() const noexcept { return stream_offset_; }
  /// Index of the K-bit block being decoded when the check fired.
  std::size_t block_index() const noexcept { return block_index_; }
  /// ATE pin / bank for multi-pin architectures.
  std::size_t pin() const noexcept { return pin_; }
  /// Shard of the sharded container (codec/sharded.h) that failed.
  std::size_t shard() const noexcept { return shard_; }

  /// Copies with the block index filled in (callers that track block
  /// accounting annotate errors thrown by lower layers).
  DecodeError with_block(std::size_t block) const {
    DecodeError e(fault_, stream_offset_, block, pin_);
    e.shard_ = shard_;
    return e;
  }
  DecodeError with_pin(std::size_t pin) const {
    DecodeError e(fault_, stream_offset_, block_index_, pin);
    e.shard_ = shard_;
    return e;
  }
  /// Copies with the shard id filled in; the sharded decode path annotates
  /// every error escaping a shard worker.
  DecodeError with_shard(std::size_t shard) const {
    DecodeError e(fault_, stream_offset_, block_index_, pin_, shard);
    return e;
  }

 private:
  DecodeError(DecodeFault fault, std::size_t stream_offset, std::size_t block,
              std::size_t pin, std::size_t shard)
      : std::runtime_error(format(fault, stream_offset, block, pin, shard)),
        fault_(fault),
        stream_offset_(stream_offset),
        block_index_(block),
        pin_(pin),
        shard_(shard) {}

  static std::string format(DecodeFault fault, std::size_t offset,
                            std::size_t block, std::size_t pin,
                            std::size_t shard = kUnknown) {
    std::string s = "9C decode error: ";
    s += to_string(fault);
    s += " at TE offset " + std::to_string(offset);
    if (block != kUnknown) s += ", block " + std::to_string(block);
    if (pin != kUnknown) s += ", pin " + std::to_string(pin);
    if (shard != kUnknown) s += ", shard " + std::to_string(shard);
    return s;
  }

  DecodeFault fault_;
  std::size_t stream_offset_;
  std::size_t block_index_;
  std::size_t pin_;
  std::size_t shard_ = kUnknown;
};

}  // namespace nc::codec
