#include "codec/diff.h"

#include <stdexcept>

namespace nc::codec {

using bits::TestSet;
using bits::Trit;

namespace {

bool bit_at(const TestSet& ts, std::size_t p, std::size_t c) {
  const Trit t = ts.at(p, c);
  if (!bits::is_care(t))
    throw std::invalid_argument(
        "difference transform needs fully specified patterns");
  return t == Trit::One;
}

}  // namespace

TestSet difference_transform(const TestSet& td) {
  TestSet out(td.pattern_count(), td.pattern_length());
  for (std::size_t p = 0; p < td.pattern_count(); ++p)
    for (std::size_t c = 0; c < td.pattern_length(); ++c) {
      const bool prev = p > 0 && bit_at(td, p - 1, c);
      out.set(p, c, bits::trit_from_bit(bit_at(td, p, c) ^ prev));
    }
  return out;
}

TestSet inverse_difference_transform(const TestSet& diff) {
  TestSet out(diff.pattern_count(), diff.pattern_length());
  for (std::size_t c = 0; c < diff.pattern_length(); ++c) {
    bool acc = false;
    for (std::size_t p = 0; p < diff.pattern_count(); ++p) {
      acc ^= bit_at(diff, p, c);
      out.set(p, c, bits::trit_from_bit(acc));
    }
  }
  return out;
}

}  // namespace nc::codec
