#include "codec/codeword_table.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "codec/decode_error.h"

namespace nc::codec {

std::string Codeword::to_string() const {
  std::string s(length, '0');
  for (unsigned i = 0; i < length; ++i)
    if ((bits >> (length - 1 - i)) & 1u) s[i] = '1';
  return s;
}

namespace {

/// Lengths from Table I: C1=1, C2=2, C3..C8=5, C9=4.
constexpr std::array<unsigned, kNumClasses> kStandardLengths = {1, 2, 5, 5, 5,
                                                                5, 5, 5, 4};

}  // namespace

CodewordTable CodewordTable::standard() {
  return from_lengths(kStandardLengths);
}

CodewordTable CodewordTable::from_lengths(
    const std::array<unsigned, kNumClasses>& lengths) {
  // Exact integer Kraft check in units of 2^-31: sum of 2^(31-len) must not
  // exceed 2^31. No floating point, so adversarial length sets from the
  // optimizer cannot slip through on rounding slack.
  std::uint64_t kraft = 0;
  for (unsigned len : lengths) {
    if (len == 0 || len > 31)
      throw CodeSpecError(CodeSpecFault::kLengthOutOfRange,
                          "codeword length " + std::to_string(len) +
                              " out of range [1, 31]");
    kraft += std::uint64_t{1} << (31 - len);
  }
  if (kraft > (std::uint64_t{1} << 31))
    throw CodeSpecError(CodeSpecFault::kKraftViolation,
                        "codeword lengths violate Kraft inequality");

  // Canonical code: assign in order of (length, class index). The first code
  // of each length continues the previous code + 1, left-shifted.
  std::array<std::size_t, kNumClasses> order;
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return lengths[a] < lengths[b];
  });

  CodewordTable table;
  std::uint32_t code = 0;
  unsigned prev_len = lengths[order[0]];
  for (std::size_t cls : order) {
    code <<= (lengths[cls] - prev_len);
    prev_len = lengths[cls];
    table.words_[cls] = Codeword{code, lengths[cls]};
    ++code;
  }
  return table;
}

CodewordTable CodewordTable::frequency_directed(
    const std::array<std::size_t, kNumClasses>& counts) {
  std::array<std::size_t, kNumClasses> order;
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return counts[a] > counts[b];
  });

  std::array<unsigned, kNumClasses> sorted_lengths = kStandardLengths;
  std::sort(sorted_lengths.begin(), sorted_lengths.end());

  std::array<unsigned, kNumClasses> lengths{};
  for (std::size_t rank = 0; rank < kNumClasses; ++rank)
    lengths[order[rank]] = sorted_lengths[rank];
  return from_lengths(lengths);
}

unsigned CodewordTable::max_length() const noexcept {
  unsigned m = 0;
  for (const auto& w : words_) m = std::max(m, w.length);
  return m;
}

namespace {

/// One matcher body shared by both stream backends, so the scalar and
/// bitplane decoders recognize codewords -- and fail -- identically.
template <typename Reader>
BlockClass match_words(const std::array<Codeword, kNumClasses>& words,
                       unsigned maxlen, Reader& reader) {
  const std::size_t start = reader.position();
  std::uint32_t acc = 0;
  unsigned len = 0;
  while (len < maxlen) {
    acc = (acc << 1) | (reader.next_bit() ? 1u : 0u);
    ++len;
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (words[c].length == len && words[c].bits == acc)
        return static_cast<BlockClass>(c);
    }
  }
  throw DecodeError(DecodeFault::kInvalidCodeword, start);
}

}  // namespace

BlockClass CodewordTable::match(bits::TritReader& reader) const {
  return match_words(words_, max_length(), reader);
}

BlockClass CodewordTable::match(bits::BitplaneReader& reader) const {
  return match_words(words_, max_length(), reader);
}

bool CodewordTable::prefix_free() const {
  for (std::size_t a = 0; a < kNumClasses; ++a) {
    for (std::size_t b = 0; b < kNumClasses; ++b) {
      if (a == b) continue;
      const Codeword& wa = words_[a];
      const Codeword& wb = words_[b];
      if (wa.length <= wb.length &&
          (wb.bits >> (wb.length - wa.length)) == wa.bits)
        return false;
    }
  }
  return true;
}

}  // namespace nc::codec
