#include "codec/block_class.h"

#include <algorithm>

namespace nc::codec {

HalfKind classify_half(const bits::TritVector& v, std::size_t begin,
                       std::size_t len) noexcept {
  // Scalar walk with the packed word hoisted out of the inner loop: one
  // 64-bit load per 32 trits instead of a word index + shift per get().
  HalfKind kind;
  std::size_t i = begin;
  const std::size_t end = begin + len;
  while (i < end) {
    std::uint64_t w = v.packed_word(i >> 5) >> ((i & 31u) * 2);
    const std::size_t stop = std::min(end, (i & ~std::size_t{31}) + 32);
    for (; i < stop; ++i, w >>= 2) {
      switch (static_cast<bits::Trit>(w & 0x3u)) {
        case bits::Trit::Zero: kind.one_compatible = false; break;
        case bits::Trit::One: kind.zero_compatible = false; break;
        case bits::Trit::X: break;
      }
      if (kind.mismatch()) return kind;
    }
  }
  return kind;
}

HalfScan scan_half(const bits::TritVector& v, std::size_t begin,
                   std::size_t len) noexcept {
  // Same word hoist as classify_half; cannot early-exit (exact X count).
  HalfScan scan;
  std::size_t i = begin;
  const std::size_t end = begin + len;
  while (i < end) {
    std::uint64_t w = v.packed_word(i >> 5) >> ((i & 31u) * 2);
    const std::size_t stop = std::min(end, (i & ~std::size_t{31}) + 32);
    for (; i < stop; ++i, w >>= 2) {
      switch (static_cast<bits::Trit>(w & 0x3u)) {
        case bits::Trit::Zero: scan.kind.one_compatible = false; break;
        case bits::Trit::One: scan.kind.zero_compatible = false; break;
        case bits::Trit::X: ++scan.x_count; break;
      }
    }
  }
  return scan;
}

BlockClass classify_block(const bits::TritVector& v, std::size_t begin,
                          std::size_t k) noexcept {
  const std::size_t half = k / 2;
  return classify_halves(classify_half(v, begin, half),
                         classify_half(v, begin + half, half));
}

}  // namespace nc::codec
