#include "codec/block_class.h"

namespace nc::codec {

HalfKind classify_half(const bits::TritVector& v, std::size_t begin,
                       std::size_t len) noexcept {
  HalfKind kind;
  for (std::size_t i = 0; i < len; ++i) {
    switch (v.get(begin + i)) {
      case bits::Trit::Zero: kind.one_compatible = false; break;
      case bits::Trit::One: kind.zero_compatible = false; break;
      case bits::Trit::X: break;
    }
    if (kind.mismatch()) break;
  }
  return kind;
}

HalfScan scan_half(const bits::TritVector& v, std::size_t begin,
                   std::size_t len) noexcept {
  HalfScan scan;
  for (std::size_t i = 0; i < len; ++i) {
    switch (v.get(begin + i)) {
      case bits::Trit::Zero: scan.kind.one_compatible = false; break;
      case bits::Trit::One: scan.kind.zero_compatible = false; break;
      case bits::Trit::X: ++scan.x_count; break;
    }
  }
  return scan;
}

BlockClass classify_halves(const HalfKind& left,
                           const HalfKind& right) noexcept {
  // Cheapest-first: uniform pairs (codeword only), then one mismatch half
  // (codeword + K/2 payload), then full mismatch (codeword + K payload).
  if (left.zero_compatible && right.zero_compatible) return BlockClass::kC1;
  if (left.one_compatible && right.one_compatible) return BlockClass::kC2;
  if (left.zero_compatible && right.one_compatible) return BlockClass::kC3;
  if (left.one_compatible && right.zero_compatible) return BlockClass::kC4;
  if (left.zero_compatible && right.mismatch()) return BlockClass::kC5;
  if (left.mismatch() && right.zero_compatible) return BlockClass::kC6;
  if (left.one_compatible && right.mismatch()) return BlockClass::kC7;
  if (left.mismatch() && right.one_compatible) return BlockClass::kC8;
  return BlockClass::kC9;
}

BlockClass classify_block(const bits::TritVector& v, std::size_t begin,
                          std::size_t k) noexcept {
  const std::size_t half = k / 2;
  return classify_halves(classify_half(v, begin, half),
                         classify_half(v, begin + half, half));
}

}  // namespace nc::codec
