// Common interface implemented by the 9C coder and every baseline coder
// (Golomb, FDR, EFDR, VIHC, MTC, selective Huffman).
//
// A coder maps the uncompressed stream TD (trits, X allowed) to a compressed
// stream TE and back. Contract, checked by the property test suites:
//
//   decode(encode(td), td.size()) == d  such that  td.covered_by(d)
//
// i.e. every care bit of TD is reproduced exactly; an X position of TD may
// come back as 0, 1 (the coder filled it) or X (the coder preserved it --
// only 9C mismatch payloads do this).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "bits/trit_vector.h"

namespace nc::codec {

/// Which 9C hot-path implementation to run. Both produce byte-identical
/// streams and raise identical typed errors (enforced by the differential
/// fuzz suite); the selector exists so the scalar reference stays alive
/// and testable forever next to the word-parallel production path.
enum class CodecImpl : unsigned char {
  kAuto = 0,      // library picks (currently: bitplane)
  kScalar = 1,    // per-trit reference implementation
  kBitplane = 2,  // word-parallel packed-bitplane implementation
};

constexpr const char* to_string(CodecImpl impl) noexcept {
  switch (impl) {
    case CodecImpl::kScalar: return "scalar";
    case CodecImpl::kBitplane: return "bitplane";
    default: return "auto";
  }
}

/// Parses "auto" / "scalar" / "bitplane"; nullopt on anything else.
inline std::optional<CodecImpl> codec_impl_from_string(
    std::string_view text) noexcept {
  if (text == "auto") return CodecImpl::kAuto;
  if (text == "scalar") return CodecImpl::kScalar;
  if (text == "bitplane") return CodecImpl::kBitplane;
  return std::nullopt;
}

class Codec {
 public:
  virtual ~Codec() = default;

  /// Human-readable identifier used in comparison tables ("9C", "FDR", ...).
  virtual std::string name() const = 0;

  /// Compresses TD. The returned stream's size() is |TE| in *bits*
  /// (an X payload symbol still occupies one ATE channel slot).
  virtual bits::TritVector encode(const bits::TritVector& td) const = 0;

  /// Reconstructs a stream of `original_bits` symbols from TE.
  virtual bits::TritVector decode(const bits::TritVector& te,
                                  std::size_t original_bits) const = 0;
};

/// CR% = (|TD| - |TE|) / |TD| * 100, the figure every paper table reports.
/// Negative when the "compressed" stream is larger (data expansion).
inline double compression_ratio_percent(std::size_t original_bits,
                                        std::size_t encoded_bits) noexcept {
  if (original_bits == 0) return 0.0;
  return 100.0 *
         (static_cast<double>(original_bits) -
          static_cast<double>(encoded_bits)) /
         static_cast<double>(original_bits);
}

}  // namespace nc::codec
