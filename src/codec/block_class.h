// Classification of a K-bit block into one of the nine 9C cases (Table I).
//
// A block splits into a left and a right K/2-bit half. Each half is:
//  * 0-compatible  -- contains no specified 1 (so it can be emitted as 0...0)
//  * 1-compatible  -- contains no specified 0
//  * a mismatch    -- contains both a 0 and a 1 and must travel verbatim
// The nine combinations (Table I rows) and their payloads:
//
//   C1  left 0, right 0        no payload
//   C2  left 1, right 1        no payload
//   C3  left 0, right 1        no payload
//   C4  left 1, right 0        no payload
//   C5  left 0, right mismatch K/2-trit payload (right half)
//   C6  left mismatch, right 0 K/2-trit payload (left half)
//   C7  left 1, right mismatch K/2-trit payload (right half)
//   C8  left mismatch, right 1 K/2-trit payload (left half)
//   C9  both mismatch          K-trit payload (whole block)
#pragma once

#include <array>
#include <cstddef>

#include "bits/bitplane.h"
#include "bits/trit_vector.h"

namespace nc::codec {

/// The nine block cases. Values are 0-based (kC1 == 0 ... kC9 == 8) so they
/// index directly into codeword tables and N_i statistics arrays.
enum class BlockClass : unsigned char {
  kC1 = 0,
  kC2,
  kC3,
  kC4,
  kC5,
  kC6,
  kC7,
  kC8,
  kC9,
};

inline constexpr std::size_t kNumClasses = 9;

/// 1-based case number as printed in the paper's tables.
constexpr unsigned case_number(BlockClass c) noexcept {
  return static_cast<unsigned>(c) + 1;
}

/// How a half behaves with respect to uniform fills.
struct HalfKind {
  bool zero_compatible = true;  // no specified 1 present
  bool one_compatible = true;   // no specified 0 present
  bool mismatch() const noexcept { return !zero_compatible && !one_compatible; }
};

/// Inspects the `len` trits of `v` starting at `begin`.
HalfKind classify_half(const bits::TritVector& v, std::size_t begin,
                       std::size_t len) noexcept;

/// One full scan of a half: its kind plus its X population. The encoder hot
/// path scans each half exactly once and reuses the result for the class
/// decision, the N_i statistics and the filled-X accounting. Unlike
/// classify_half this cannot early-exit on the first 0/1 conflict -- the X
/// count must be exact -- but it replaces the encoder's second walk over
/// the block, which is a net win.
struct HalfScan {
  HalfKind kind;
  std::size_t x_count = 0;
};
HalfScan scan_half(const bits::TritVector& v, std::size_t begin,
                   std::size_t len) noexcept;

/// Word-parallel scan of a half over packed bitplanes: classifies the
/// whole range with AND/OR/popcount per 64-trit word instead of a
/// per-trit walk. Must agree with the scalar scan_half on every input
/// (checked by the differential fuzz suite). Inline so the plane scan
/// fuses into the encoder's block loop.
inline HalfScan scan_half(const bits::Bitplanes& planes, std::size_t begin,
                          std::size_t len) noexcept {
  const bits::PlaneScan s = planes.scan(begin, len);
  HalfScan scan;
  scan.kind.zero_compatible = !s.any_one;
  scan.kind.one_compatible = !s.any_zero;
  scan.x_count = s.x_count;
  return scan;
}

/// Combines two half kinds into the block case. When several cases apply
/// (halves of all-X are both 0- and 1-compatible) the cheapest case wins;
/// ties between equal-cost cases resolve to the lower case number, making
/// the encoder deterministic. Cheapest-first: uniform pairs (codeword
/// only), then one mismatch half (codeword + K/2 payload), then full
/// mismatch (codeword + K payload). Inline: one call per encoded block.
inline BlockClass classify_halves(const HalfKind& left,
                                  const HalfKind& right) noexcept {
  if (left.zero_compatible && right.zero_compatible) return BlockClass::kC1;
  if (left.one_compatible && right.one_compatible) return BlockClass::kC2;
  if (left.zero_compatible && right.one_compatible) return BlockClass::kC3;
  if (left.one_compatible && right.zero_compatible) return BlockClass::kC4;
  if (left.zero_compatible && right.mismatch()) return BlockClass::kC5;
  if (left.mismatch() && right.zero_compatible) return BlockClass::kC6;
  if (left.one_compatible && right.mismatch()) return BlockClass::kC7;
  if (left.mismatch() && right.one_compatible) return BlockClass::kC8;
  return BlockClass::kC9;
}

/// Classifies the K-trit block of `v` at [begin, begin+k); equivalent to
/// classify_halves over the two half scans. `k` must be even and >= 2.
BlockClass classify_block(const bits::TritVector& v, std::size_t begin,
                          std::size_t k) noexcept;

/// Payload length in trits that case `c` appends after its codeword, for a
/// K-trit block whose left half is `split` trits (right half is K - split).
/// C5/C7 transmit the right half, C6/C8 the left, C9 the whole block.
constexpr std::size_t payload_trits(BlockClass c, std::size_t k,
                                    std::size_t split) noexcept {
  switch (c) {
    case BlockClass::kC5:
    case BlockClass::kC7:
      return k - split;
    case BlockClass::kC6:
    case BlockClass::kC8:
      return split;
    case BlockClass::kC9:
      return k;
    default:
      return 0;
  }
}

/// The paper's symmetric split (K/2 | K/2).
constexpr std::size_t payload_trits(BlockClass c, std::size_t k) noexcept {
  return payload_trits(c, k, k / 2);
}

/// For the no-payload cases, the two uniform fill bits (left, right) the
/// decoder must expand: e.g. C3 -> {0,1}. Only valid for C1..C4.
constexpr std::array<bool, 2> uniform_fill(BlockClass c) noexcept {
  switch (c) {
    case BlockClass::kC1: return {false, false};
    case BlockClass::kC2: return {true, true};
    case BlockClass::kC3: return {false, true};
    default: return {true, false};  // kC4
  }
}

/// For C5..C8: value of the uniform half (false=0s, true=1s) and whether the
/// mismatch (transmitted) half is the left one.
struct MixedShape {
  bool uniform_value;
  bool mismatch_is_left;
};
constexpr MixedShape mixed_shape(BlockClass c) noexcept {
  switch (c) {
    case BlockClass::kC5: return {false, false};  // left 0s, right verbatim
    case BlockClass::kC6: return {false, true};   // left verbatim, right 0s
    case BlockClass::kC7: return {true, false};   // left 1s, right verbatim
    default: return {true, true};                 // kC8: left verbatim, right 1s
  }
}

}  // namespace nc::codec
