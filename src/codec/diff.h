// Difference-vector preprocessing (the transform behind "alternating
// run-length coding using FDR" in the paper's related work).
//
// Consecutive scan patterns are strongly correlated, so XOR-ing each
// pattern with its predecessor concentrates the 1s and lengthens the 0-runs
// that run-length codes feed on. The transform needs fully specified
// patterns (an X would poison every later pattern of the column on the
// inverse), so it composes with the fill strategies of nc::power:
// fill -> diff -> encode / decode -> undiff.
#pragma once

#include "bits/test_set.h"

namespace nc::codec {

/// diff[0] = td[0]; diff[i] = td[i] XOR td[i-1]. Throws
/// std::invalid_argument if any bit is X.
bits::TestSet difference_transform(const bits::TestSet& td);

/// Exact inverse: td[i] = diff[0] XOR ... XOR diff[i].
bits::TestSet inverse_difference_transform(const bits::TestSet& diff);

}  // namespace nc::codec
