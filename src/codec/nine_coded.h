// The 9C encoder/decoder (Section II of the paper) and its statistics.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "codec/codec.h"
#include "codec/codeword_table.h"
#include "codec/decode_error.h"
#include "core/cancel.h"

namespace nc::codec {

/// What a validated decode consumed and produced; `data` holds exactly the
/// requested original bits.
struct DecodeOutcome {
  bits::TritVector data;
  std::size_t blocks = 0;    // codewords consumed (= padded bits / K)
  std::size_t consumed = 0;  // TE symbols consumed
};

/// Everything the paper's tables derive from one encoding run.
struct NineCodedStats {
  std::size_t block_size = 0;     // K
  std::size_t split = 0;          // left-half length (K/2 unless tuned)
  std::size_t original_bits = 0;  // |TD| (before padding)
  std::size_t padded_bits = 0;    // |TD| rounded up to a whole block
  std::size_t encoded_bits = 0;   // |TE|

  /// Occurrence count N_i of each codeword (Table VI).
  std::array<std::size_t, kNumClasses> counts{};

  /// X symbols that survive into TE inside mismatch payloads (Table III
  /// numerator). These may later be filled for non-modeled-fault coverage
  /// or low power.
  std::size_t leftover_x = 0;

  /// X symbols of TD that the code forced to 0/1 (matched halves).
  std::size_t filled_x = 0;

  std::size_t blocks() const noexcept;
  /// CR% over the unpadded TD size, as the paper reports.
  double compression_ratio() const noexcept {
    return compression_ratio_percent(original_bits, encoded_bits);
  }
  /// LX% = leftover X / |TD| * 100 (Table III).
  double leftover_x_percent() const noexcept {
    return original_bits == 0
               ? 0.0
               : 100.0 * static_cast<double>(leftover_x) /
                     static_cast<double>(original_bits);
  }
};

/// Fixed-block nine-codeword coder. Stateless and reusable; one instance per
/// (K, codeword table) configuration.
class NineCoded final : public Codec {
 public:
  /// `block_size` is K. The default table is the paper's Table I
  /// assignment; pass a frequency-directed table for Table VII. `impl`
  /// selects the hot-path implementation (DESIGN.md section 13); kAuto
  /// resolves to the word-parallel bitplane path. `split` is the left-half
  /// length in trits: 0 (the default) means the paper's symmetric K/2 and
  /// requires K even >= 2; an explicit split in [1, K-1] allows asymmetric
  /// halves (and odd K), which the tuner searches over.
  explicit NineCoded(std::size_t block_size,
                     CodewordTable table = CodewordTable::standard(),
                     CodecImpl impl = CodecImpl::kAuto,
                     std::size_t split = 0);

  /// Convenience: standard table with an explicit implementation.
  NineCoded(std::size_t block_size, CodecImpl impl)
      : NineCoded(block_size, CodewordTable::standard(), impl) {}

  std::string name() const override;
  std::size_t block_size() const noexcept { return k_; }
  /// Left-half length (always resolved: K/2 when constructed with split 0).
  std::size_t split() const noexcept { return left_; }
  const CodewordTable& table() const noexcept { return table_; }
  CodecImpl impl() const noexcept { return impl_; }
  /// The implementation that actually runs (kAuto resolved).
  CodecImpl resolved_impl() const noexcept {
    return impl_ == CodecImpl::kScalar ? CodecImpl::kScalar
                                       : CodecImpl::kBitplane;
  }

  bits::TritVector encode(const bits::TritVector& td) const override;

  /// Strict decode: forwards to decode_checked and returns its data, so a
  /// corrupted TE raises a typed DecodeError instead of returning garbage.
  bits::TritVector decode(const bits::TritVector& te,
                          std::size_t original_bits) const override;

  /// Validating decode with full accounting. Checks, per block: codeword
  /// legality (prefix match, specified bits only) and payload availability;
  /// after the final block: that TE was consumed exactly. Throws DecodeError
  /// carrying the fault kind, the TE offset, and the failing block index.
  ///
  /// `watchdog` (optional, borrowed) is charged one step per consumed TE
  /// symbol and per produced output symbol; a trip throws
  /// DecodeError(kWatchdogExpired), bounding the work a crafted stream can
  /// extract from the decoder.
  DecodeOutcome decode_checked(const bits::TritVector& te,
                               std::size_t original_bits,
                               core::Watchdog* watchdog = nullptr) const;

  /// Encoding plus the full statistics bundle; `encode` forwards here.
  NineCodedStats analyze(const bits::TritVector& td,
                         bits::TritVector* out_stream = nullptr) const;

  /// Convenience: two-pass frequency-directed coder for this TD (first pass
  /// gathers N_i with the standard table, second pass encodes with the
  /// re-assigned table). Returns the coder to use.
  static NineCoded tuned_for(const bits::TritVector& td,
                             std::size_t block_size,
                             CodecImpl impl = CodecImpl::kAuto);

 private:
  NineCodedStats analyze_scalar(const bits::TritVector& td,
                                bits::TritVector* out_stream) const;
  NineCodedStats analyze_bitplane(const bits::TritVector& td,
                                  bits::TritVector* out_stream) const;
  DecodeOutcome decode_scalar(const bits::TritVector& te,
                              std::size_t original_bits,
                              core::Watchdog* watchdog) const;
  DecodeOutcome decode_bitplane(const bits::TritVector& te,
                                std::size_t original_bits,
                                core::Watchdog* watchdog) const;

  std::size_t k_;
  std::size_t left_;   // left-half trits
  std::size_t right_;  // right-half trits (k_ - left_)
  CodewordTable table_;
  CodecImpl impl_ = CodecImpl::kAuto;
};

}  // namespace nc::codec
