#include "codec/pattern_codec.h"

#include <stdexcept>

#include "bits/bitstream.h"

namespace nc::codec {

using bits::Trit;
using bits::TritVector;

bool HalfPattern::bit_at(std::size_t i) const noexcept {
  switch (kind) {
    case Kind::kConst0: return false;
    case Kind::kConst1: return true;
    case Kind::kAlt01: return i % 2 == 1;
    case Kind::kAlt10: return i % 2 == 0;
  }
  return false;
}

char HalfPattern::symbol() const noexcept {
  switch (kind) {
    case Kind::kConst0: return '0';
    case Kind::kConst1: return '1';
    case Kind::kAlt01: return 'A';
    case Kind::kAlt10: return 'B';
  }
  return '?';
}

std::vector<HalfPattern> nine_coded_patterns() {
  return {{HalfPattern::Kind::kConst0}, {HalfPattern::Kind::kConst1}};
}

std::vector<HalfPattern> extended_patterns() {
  return {{HalfPattern::Kind::kConst0},
          {HalfPattern::Kind::kConst1},
          {HalfPattern::Kind::kAlt01},
          {HalfPattern::Kind::kAlt10}};
}

PatternCodec::PatternCodec(std::size_t block_size,
                           std::vector<HalfPattern> patterns)
    : k_(block_size), patterns_(std::move(patterns)) {
  if (k_ < 2 || k_ % 2 != 0)
    throw std::invalid_argument("block size K must be even and >= 2");
  if (patterns_.empty())
    throw std::invalid_argument("need at least one half pattern");
}

PatternCodec PatternCodec::trained(const TritVector& td,
                                   std::size_t block_size,
                                   std::vector<HalfPattern> patterns) {
  PatternCodec codec(block_size, std::move(patterns));
  codec.table_ = bits::HuffmanCode::build(codec.class_histogram(td));
  return codec;
}

std::string PatternCodec::name() const {
  std::string tags;
  for (const HalfPattern& p : patterns_) tags += p.symbol();
  return "Pattern{" + tags + "}(K=" + std::to_string(k_) + ")";
}

std::size_t PatternCodec::class_count() const noexcept {
  const std::size_t per_half = patterns_.size() + 1;
  return per_half * per_half;
}

const bits::HuffmanCode& PatternCodec::table() const {
  if (!table_) throw std::logic_error("PatternCodec is untrained");
  return *table_;
}

std::size_t PatternCodec::half_class(const TritVector& v,
                                     std::size_t begin) const {
  const std::size_t half = k_ / 2;
  for (std::size_t p = 0; p < patterns_.size(); ++p) {
    bool ok = true;
    for (std::size_t i = 0; i < half && ok; ++i)
      ok = bits::compatible_with(v.get(begin + i), patterns_[p].bit_at(i));
    if (ok) return p;
  }
  return patterns_.size();  // mismatch
}

std::size_t PatternCodec::classify(const TritVector& v,
                                   std::size_t begin) const {
  const std::size_t per_half = patterns_.size() + 1;
  return half_class(v, begin) * per_half + half_class(v, begin + k_ / 2);
}

TritVector PatternCodec::padded(const TritVector& td) const {
  TritVector p = td;
  if (p.size() % k_ != 0) p.append_run(k_ - p.size() % k_, Trit::X);
  return p;
}

std::vector<std::size_t> PatternCodec::class_histogram(
    const TritVector& td) const {
  std::vector<std::size_t> hist(class_count(), 0);
  const TritVector p = padded(td);
  for (std::size_t b = 0; b < p.size(); b += k_) ++hist[classify(p, b)];
  return hist;
}

TritVector PatternCodec::encode(const TritVector& td) const {
  bits::HuffmanCode local;
  const bits::HuffmanCode* code = table_ ? &*table_ : &local;
  if (!table_) local = bits::HuffmanCode::build(class_histogram(td));

  const TritVector p = padded(td);
  const std::size_t half = k_ / 2;
  const std::size_t mismatch = patterns_.size();
  const std::size_t per_half = mismatch + 1;

  TritVector out;
  bits::BitWriter codeword;
  for (std::size_t b = 0; b < p.size(); b += k_) {
    const std::size_t cls = classify(p, b);
    codeword = {};
    code->encode(codeword, cls);
    out.append(codeword.stream());
    if (cls / per_half == mismatch)
      out.append(p.slice(b, half));
    if (cls % per_half == mismatch)
      out.append(p.slice(b + half, half));
  }
  return out;
}

TritVector PatternCodec::decode(const TritVector& te,
                                std::size_t original_bits) const {
  if (!table_)
    throw std::logic_error(
        "PatternCodec decoder is trained per test set; use trained()");
  const std::size_t half = k_ / 2;
  const std::size_t mismatch = patterns_.size();
  const std::size_t per_half = mismatch + 1;

  TritVector out;
  bits::TritReader in(te);
  auto emit_half = [&](std::size_t half_cls) {
    if (half_cls == mismatch) {
      out.append(in.next_trits(half));
    } else {
      for (std::size_t i = 0; i < half; ++i)
        out.push_back(bits::trit_from_bit(patterns_[half_cls].bit_at(i)));
    }
  };
  while (out.size() < original_bits) {
    const std::size_t cls = table_->decode(in);
    emit_half(cls / per_half);
    emit_half(cls % per_half);
  }
  out.resize(original_bits);
  return out;
}

}  // namespace nc::codec
