// Sharded stream container: pattern-parallel encode/decode for any Codec.
//
// 9C (and every baseline coder here) is a fixed-block code whose per-pattern
// encodings are independent, so the pattern dimension of a TestSet is
// embarrassingly parallel. This layer partitions the set into N
// pattern-aligned shards, encodes each shard independently (concurrently
// when jobs > 1) and concatenates the results behind a self-describing
// index. Decode reverses it: the index hands every worker the exact symbol
// window of its shard, so N workers decode with no shared cursor and the
// outputs splice back in shard order.
//
// Container layout (a TritVector whose header region is fully specified
// bits; payload symbols may carry leftover X):
//
//   magic          16 bits  0x9C5D
//   version         8 bits  (currently 1)
//   shard count    32 bits  S >= 1
//   pattern count  64 bits
//   pattern width  64 bits
//   S x shard record, 96 bits each:
//     payload offset 32 bits  (symbols, relative to the payload region)
//     payload length 32 bits  (symbols)
//     CRC-32         32 bits  (over the shard's payload symbol values)
//   payload        concatenated per-shard encoded streams
//
// Index overhead is 184 + 96*S bits -- under 2% of |TE| for practical shard
// counts on the paper's test sets (bench_parallel_scaling reports it).
//
// Guarantees (tests/parallel_pipeline_test.cpp):
//  * determinism -- the container depends only on (codec, test set, shard
//    count); jobs only changes wall-clock, never a bit of output;
//  * serial equivalence -- jobs=1 runs the identical per-shard code, and a
//    1-shard container's payload is byte-identical to codec.encode() of the
//    whole flattened set;
//  * typed failure -- corruption raises DecodeError (bits/decode taxonomy of
//    PR 1 extended with kBadMagic / kBadShardIndex / kShardCrc) carrying the
//    container-absolute symbol offset and the failing shard id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "bits/test_set.h"
#include "codec/codec.h"
#include "codec/decode_error.h"

namespace nc::codec {

inline constexpr std::uint32_t kShardMagic = 0x9C5D;
inline constexpr unsigned kShardVersion = 1;

/// Index record of one shard, as stored in (or parsed from) a container.
struct ShardRecord {
  std::size_t first_pattern = 0;   // derived from the balanced plan
  std::size_t pattern_count = 0;   // derived from the balanced plan
  std::size_t payload_offset = 0;  // symbols, relative to the payload region
  std::size_t payload_length = 0;  // symbols
  std::uint32_t crc = 0;
};

/// Parsed container header (everything but the payload symbols).
struct ShardedHeader {
  std::size_t shard_count = 0;
  std::size_t pattern_count = 0;
  std::size_t pattern_width = 0;
  std::size_t header_symbols = 0;  // where the payload region starts
  std::vector<ShardRecord> shards;
};

/// Encode-side accounting for the scaling bench and the CLI.
struct ShardedStats {
  std::size_t shard_count = 0;
  std::size_t header_bits = 0;   // index overhead in symbols
  std::size_t payload_bits = 0;  // sum of per-shard |TE|
  std::size_t total_bits = 0;    // container size

  double index_overhead_percent() const noexcept {
    return total_bits == 0
               ? 0.0
               : 100.0 * static_cast<double>(header_bits) /
                     static_cast<double>(total_bits);
  }
};

/// Balanced pattern-aligned partition: shard i gets patterns
/// [first, first+count). Deterministic: the first (patterns % shards)
/// shards carry one extra pattern. `shards` is clamped to [1, max(1,
/// patterns)], so every shard is non-empty (except the degenerate empty
/// test set, which yields one empty shard).
std::vector<std::pair<std::size_t, std::size_t>> shard_plan(
    std::size_t patterns, std::size_t shards);

/// CRC-32 (IEEE 802.3, reflected) over the symbol values of `v` restricted
/// to [begin, begin+len). Exposed so tests can forge/verify checksums.
std::uint32_t shard_crc(const bits::TritVector& v, std::size_t begin,
                        std::size_t len);

/// True if `stream` begins with the container magic (cheap format sniff;
/// a positive probe does not promise the rest of the header is sane).
bool is_sharded(const bits::TritVector& stream) noexcept;

/// Validates and parses the header: magic, version, geometry and the full
/// index consistency check (offsets contiguous from 0, lengths summing to
/// exactly the payload region). Throws DecodeError:
///   kBadMagic      wrong magic / unsupported version / X inside the magic
///   kTruncated     container shorter than the header or the indexed payload
///   kTrailingData  container longer than the indexed payload
///   kBadShardIndex any other inconsistency (X in the index, zero shards,
///                  offsets out of order, geometry/shard-count mismatch)
ShardedHeader parse_sharded_header(const bits::TritVector& container);

/// Encodes `td` into a sharded container. `shards` 0 means one shard per
/// job; `jobs` 0 means one job per hardware thread, 1 runs fully serial
/// (no pool, same bytes). Optional `stats` receives the size accounting.
bits::TritVector encode_sharded(const Codec& codec, const bits::TestSet& td,
                                std::size_t shards, std::size_t jobs = 1,
                                ShardedStats* stats = nullptr);

/// Decodes a container produced by encode_sharded with the same codec
/// configuration. Every shard's CRC is verified before its symbols are
/// decoded; any failure carries the shard id (DecodeError::shard()) and a
/// container-absolute stream offset. `jobs` as in encode_sharded.
bits::TestSet decode_sharded(const Codec& codec,
                             const bits::TritVector& container,
                             std::size_t jobs = 1);

/// The concatenated per-shard payload with the index stripped (validates
/// the header first). A 1-shard container's payload equals the plain
/// codec.encode() of the flattened test set.
bits::TritVector strip_shard_index(const bits::TritVector& container);

}  // namespace nc::codec
