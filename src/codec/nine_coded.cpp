#include "codec/nine_coded.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "bits/bitplane.h"
#include "bits/bitstream.h"

namespace nc::codec {

using bits::Bitplanes;
using bits::BitplaneReader;
using bits::Trit;
using bits::TritVector;

std::size_t NineCodedStats::blocks() const noexcept {
  std::size_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

NineCoded::NineCoded(std::size_t block_size, CodewordTable table,
                     CodecImpl impl, std::size_t split)
    : k_(block_size), table_(table), impl_(impl) {
  if (split == 0) {
    if (k_ < 2 || k_ % 2 != 0)
      throw std::invalid_argument("9C block size K must be even and >= 2");
    left_ = k_ / 2;
  } else {
    if (k_ < 2)
      throw std::invalid_argument("9C block size K must be >= 2");
    if (split >= k_)
      throw std::invalid_argument("9C split must be in [1, K-1]");
    left_ = split;
  }
  right_ = k_ - left_;
}

std::string NineCoded::name() const {
  std::string n = "9C(K=" + std::to_string(k_);
  if (left_ * 2 != k_) n += ",S=" + std::to_string(left_);
  return n + ")";
}

TritVector NineCoded::encode(const TritVector& td) const {
  TritVector stream;
  analyze(td, &stream);
  return stream;
}

NineCodedStats NineCoded::analyze(const TritVector& td,
                                  TritVector* out_stream) const {
  return resolved_impl() == CodecImpl::kScalar
             ? analyze_scalar(td, out_stream)
             : analyze_bitplane(td, out_stream);
}

// ------------------------------------------------------------ scalar path
// The per-trit reference implementation. Kept verbatim behind the
// CodecImpl selector so the word-parallel path below can be differentially
// tested against it forever.

NineCodedStats NineCoded::analyze_scalar(const TritVector& td,
                                         TritVector* out_stream) const {
  NineCodedStats stats;
  stats.block_size = k_;
  stats.split = left_;
  stats.original_bits = td.size();

  // Pad the tail to a whole block with X, which compresses maximally and is
  // discarded by the decoder (it knows the original length).
  TritVector padded = td;
  if (padded.size() % k_ != 0)
    padded.append_run(k_ - padded.size() % k_, Trit::X);
  stats.padded_bits = padded.size();

  TritVector stream;

  auto emit_codeword = [&](BlockClass c) {
    const Codeword& w = table_.at(c);
    for (unsigned i = w.length; i-- > 0;)
      stream.push_back(bits::trit_from_bit((w.bits >> i) & 1u));
  };
  auto emit_payload = [&](std::size_t begin, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) stream.push_back(padded.get(begin + i));
  };

  // Hot path: each half is scanned exactly once; the scan's kind drives the
  // class decision and its X count drives the filled/leftover accounting
  // (payload X symbols are leftover, uniform-half X symbols are filled), so
  // no symbol of TD is re-read after classification.
  for (std::size_t b = 0; b < padded.size(); b += k_) {
    const HalfScan left = scan_half(padded, b, left_);
    const HalfScan right = scan_half(padded, b + left_, right_);
    const BlockClass cls = classify_halves(left.kind, right.kind);
    ++stats.counts[static_cast<std::size_t>(cls)];
    emit_codeword(cls);
    switch (cls) {
      case BlockClass::kC1:
      case BlockClass::kC2:
      case BlockClass::kC3:
      case BlockClass::kC4:
        // No payload: every X in the block was forced to the uniform value.
        stats.filled_x += left.x_count + right.x_count;
        break;
      case BlockClass::kC5:
      case BlockClass::kC7:
        stats.filled_x += left.x_count;
        stats.leftover_x += right.x_count;
        emit_payload(b + left_, right_);
        break;
      case BlockClass::kC6:
      case BlockClass::kC8:
        stats.filled_x += right.x_count;
        stats.leftover_x += left.x_count;
        emit_payload(b, left_);
        break;
      case BlockClass::kC9:
        stats.leftover_x += left.x_count + right.x_count;
        emit_payload(b, k_);
        break;
    }
  }

  stats.encoded_bits = stream.size();
  if (out_stream != nullptr) *out_stream = std::move(stream);
  return stats;
}

// ---------------------------------------------------------- bitplane path
// Word-parallel implementation: TD is de-interleaved once into a value
// plane and an X plane, each half is classified with AND/OR/popcount on
// 64-bit words, and codewords/payloads are emitted as shifted word writes.
// Produces byte-identical TE and identical statistics to the scalar path.

NineCodedStats NineCoded::analyze_bitplane(const TritVector& td,
                                           TritVector* out_stream) const {
  NineCodedStats stats;
  stats.block_size = k_;
  stats.split = left_;
  stats.original_bits = td.size();

  Bitplanes planes(td);
  if (planes.size() % k_ != 0)
    planes.append_run(k_ - planes.size() % k_, Trit::X);
  stats.padded_bits = planes.size();

  // Codewords in stream order (first transmitted bit lowest), precomputed
  // once so emission is a single masked word write per block.
  struct StreamWord {
    std::uint64_t bits = 0;
    unsigned length = 0;
  };
  std::array<StreamWord, kNumClasses> codewords;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const Codeword& w = table_.at(static_cast<BlockClass>(c));
    for (unsigned j = 0; j < w.length; ++j)
      codewords[c].bits |= ((w.bits >> (w.length - 1 - j)) & 1ull) << j;
    codewords[c].length = w.length;
  }

  Bitplanes stream;
  stream.reserve(planes.size() / 2);
  for (std::size_t b = 0; b < planes.size(); b += k_) {
    const HalfScan left = scan_half(planes, b, left_);
    const HalfScan right = scan_half(planes, b + left_, right_);
    const BlockClass cls = classify_halves(left.kind, right.kind);
    ++stats.counts[static_cast<std::size_t>(cls)];
    const StreamWord& cw = codewords[static_cast<std::size_t>(cls)];
    stream.append_word(cw.bits, 0, cw.length);
    switch (cls) {
      case BlockClass::kC1:
      case BlockClass::kC2:
      case BlockClass::kC3:
      case BlockClass::kC4:
        stats.filled_x += left.x_count + right.x_count;
        break;
      case BlockClass::kC5:
      case BlockClass::kC7:
        stats.filled_x += left.x_count;
        stats.leftover_x += right.x_count;
        stream.append_range(planes, b + left_, right_);
        break;
      case BlockClass::kC6:
      case BlockClass::kC8:
        stats.filled_x += right.x_count;
        stats.leftover_x += left.x_count;
        stream.append_range(planes, b, left_);
        break;
      case BlockClass::kC9:
        stats.leftover_x += left.x_count + right.x_count;
        stream.append_range(planes, b, k_);
        break;
    }
  }

  stats.encoded_bits = stream.size();
  if (out_stream != nullptr) *out_stream = stream.to_trits();
  return stats;
}

// ----------------------------------------------------------------- decode

TritVector NineCoded::decode(const TritVector& te,
                             std::size_t original_bits) const {
  return decode_checked(te, original_bits).data;
}

DecodeOutcome NineCoded::decode_checked(const TritVector& te,
                                        std::size_t original_bits,
                                        core::Watchdog* watchdog) const {
  return resolved_impl() == CodecImpl::kScalar
             ? decode_scalar(te, original_bits, watchdog)
             : decode_bitplane(te, original_bits, watchdog);
}

DecodeOutcome NineCoded::decode_scalar(const TritVector& te,
                                       std::size_t original_bits,
                                       core::Watchdog* watchdog) const {
  const std::size_t expected_blocks = (original_bits + k_ - 1) / k_;
  DecodeOutcome outcome;
  TritVector& out = outcome.data;
  bits::TritReader reader(te);
  for (std::size_t block = 0; block < expected_blocks; ++block) {
    // Each block costs at most one codeword (<= 5 symbols) plus K output
    // symbols; charging K+5 per block keeps the meter conservative without
    // per-symbol overhead in this (software-side) decoder.
    if (watchdog != nullptr &&
        watchdog->tick(k_ + 5) != core::WatchdogTrip::kNone)
      throw DecodeError(DecodeFault::kWatchdogExpired, reader.position(),
                        block);
    try {
      const BlockClass cls = table_.match(reader);
      switch (cls) {
        case BlockClass::kC1:
        case BlockClass::kC2:
        case BlockClass::kC3:
        case BlockClass::kC4: {
          const auto fill = uniform_fill(cls);
          out.append_run(left_, bits::trit_from_bit(fill[0]));
          out.append_run(right_, bits::trit_from_bit(fill[1]));
          break;
        }
        case BlockClass::kC5:
        case BlockClass::kC6:
        case BlockClass::kC7:
        case BlockClass::kC8: {
          const MixedShape shape = mixed_shape(cls);
          if (shape.mismatch_is_left) {
            out.append(reader.next_trits(left_));
            out.append_run(right_, bits::trit_from_bit(shape.uniform_value));
          } else {
            const TritVector payload = reader.next_trits(right_);
            out.append_run(left_, bits::trit_from_bit(shape.uniform_value));
            out.append(payload);
          }
          break;
        }
        case BlockClass::kC9:
          out.append(reader.next_trits(k_));
          break;
      }
    } catch (const bits::StreamOverrun& e) {
      throw DecodeError(DecodeFault::kTruncated, e.offset(), block);
    } catch (const bits::InvalidSymbol& e) {
      throw DecodeError(DecodeFault::kXInCodeword, e.offset(), block);
    } catch (const DecodeError& e) {
      throw e.with_block(block);
    }
  }
  // Length accounting: a corruption that shortens the parse (e.g. a long
  // codeword aliased onto a short one) leaves TE symbols unconsumed.
  if (!reader.done())
    throw DecodeError(DecodeFault::kTrailingData, reader.position(),
                      expected_blocks);
  outcome.blocks = expected_blocks;
  outcome.consumed = reader.position();
  out.resize(original_bits);  // drop decoder output for the padded tail
  return outcome;
}

DecodeOutcome NineCoded::decode_bitplane(const TritVector& te,
                                         std::size_t original_bits,
                                         core::Watchdog* watchdog) const {
  const std::size_t expected_blocks = (original_bits + k_ - 1) / k_;
  DecodeOutcome outcome;
  const Bitplanes in(te);
  BitplaneReader reader(in);
  Bitplanes out;
  // Reservation is only a hint and must not trust `original_bits`: a
  // corrupted length header has to surface as the typed truncation error
  // after a bounded parse, not as bad_alloc here. Every block consumes at
  // least one TE symbol, so te.size()+1 blocks bounds any real decode.
  out.reserve(std::min(expected_blocks, te.size() + 1) * k_);
  // Same loop skeleton, watchdog schedule and exception mapping as the
  // scalar decoder -- only the fill/copy data paths differ (word-parallel
  // append_run/copy_to instead of per-trit appends).
  for (std::size_t block = 0; block < expected_blocks; ++block) {
    if (watchdog != nullptr &&
        watchdog->tick(k_ + 5) != core::WatchdogTrip::kNone)
      throw DecodeError(DecodeFault::kWatchdogExpired, reader.position(),
                        block);
    try {
      const BlockClass cls = table_.match(reader);
      switch (cls) {
        case BlockClass::kC1:
        case BlockClass::kC2:
        case BlockClass::kC3:
        case BlockClass::kC4: {
          const auto fill = uniform_fill(cls);
          out.append_run(left_, bits::trit_from_bit(fill[0]));
          out.append_run(right_, bits::trit_from_bit(fill[1]));
          break;
        }
        case BlockClass::kC5:
        case BlockClass::kC6:
        case BlockClass::kC7:
        case BlockClass::kC8: {
          const MixedShape shape = mixed_shape(cls);
          if (shape.mismatch_is_left) {
            reader.copy_to(out, left_);
            out.append_run(right_, bits::trit_from_bit(shape.uniform_value));
          } else {
            // Check the payload is available *before* emitting the uniform
            // half so a truncated stream reports the same offset as the
            // scalar decoder, which reads the payload first.
            if (reader.remaining() < right_)
              throw bits::StreamOverrun(reader.position(), right_,
                                        reader.remaining());
            out.append_run(left_, bits::trit_from_bit(shape.uniform_value));
            reader.copy_to(out, right_);
          }
          break;
        }
        case BlockClass::kC9:
          reader.copy_to(out, k_);
          break;
      }
    } catch (const bits::StreamOverrun& e) {
      throw DecodeError(DecodeFault::kTruncated, e.offset(), block);
    } catch (const bits::InvalidSymbol& e) {
      throw DecodeError(DecodeFault::kXInCodeword, e.offset(), block);
    } catch (const DecodeError& e) {
      throw e.with_block(block);
    }
  }
  if (!reader.done())
    throw DecodeError(DecodeFault::kTrailingData, reader.position(),
                      expected_blocks);
  outcome.blocks = expected_blocks;
  outcome.consumed = reader.position();
  outcome.data = out.to_trits();
  outcome.data.resize(original_bits);
  return outcome;
}

NineCoded NineCoded::tuned_for(const bits::TritVector& td,
                               std::size_t block_size, CodecImpl impl) {
  const NineCoded probe(block_size, CodewordTable::standard(), impl);
  const NineCodedStats stats = probe.analyze(td);
  return NineCoded(block_size, CodewordTable::frequency_directed(stats.counts),
                   impl);
}

}  // namespace nc::codec
