#include "codec/nine_coded.h"

#include <stdexcept>

#include "bits/bitstream.h"

namespace nc::codec {

using bits::Trit;
using bits::TritVector;

std::size_t NineCodedStats::blocks() const noexcept {
  std::size_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

NineCoded::NineCoded(std::size_t block_size, CodewordTable table)
    : k_(block_size), table_(table) {
  if (k_ < 2 || k_ % 2 != 0)
    throw std::invalid_argument("9C block size K must be even and >= 2");
}

std::string NineCoded::name() const {
  return "9C(K=" + std::to_string(k_) + ")";
}

TritVector NineCoded::encode(const TritVector& td) const {
  TritVector stream;
  analyze(td, &stream);
  return stream;
}

NineCodedStats NineCoded::analyze(const TritVector& td,
                                  TritVector* out_stream) const {
  NineCodedStats stats;
  stats.block_size = k_;
  stats.original_bits = td.size();

  // Pad the tail to a whole block with X, which compresses maximally and is
  // discarded by the decoder (it knows the original length).
  TritVector padded = td;
  if (padded.size() % k_ != 0)
    padded.append_run(k_ - padded.size() % k_, Trit::X);
  stats.padded_bits = padded.size();

  TritVector stream;
  const std::size_t half = k_ / 2;

  auto emit_codeword = [&](BlockClass c) {
    const Codeword& w = table_.at(c);
    for (unsigned i = w.length; i-- > 0;)
      stream.push_back(bits::trit_from_bit((w.bits >> i) & 1u));
  };
  auto emit_payload = [&](std::size_t begin, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) stream.push_back(padded.get(begin + i));
  };

  // Hot path: each half is scanned exactly once; the scan's kind drives the
  // class decision and its X count drives the filled/leftover accounting
  // (payload X symbols are leftover, uniform-half X symbols are filled), so
  // no symbol of TD is re-read after classification.
  for (std::size_t b = 0; b < padded.size(); b += k_) {
    const HalfScan left = scan_half(padded, b, half);
    const HalfScan right = scan_half(padded, b + half, half);
    const BlockClass cls = classify_halves(left.kind, right.kind);
    ++stats.counts[static_cast<std::size_t>(cls)];
    emit_codeword(cls);
    switch (cls) {
      case BlockClass::kC1:
      case BlockClass::kC2:
      case BlockClass::kC3:
      case BlockClass::kC4:
        // No payload: every X in the block was forced to the uniform value.
        stats.filled_x += left.x_count + right.x_count;
        break;
      case BlockClass::kC5:
      case BlockClass::kC7:
        stats.filled_x += left.x_count;
        stats.leftover_x += right.x_count;
        emit_payload(b + half, half);
        break;
      case BlockClass::kC6:
      case BlockClass::kC8:
        stats.filled_x += right.x_count;
        stats.leftover_x += left.x_count;
        emit_payload(b, half);
        break;
      case BlockClass::kC9:
        stats.leftover_x += left.x_count + right.x_count;
        emit_payload(b, k_);
        break;
    }
  }

  stats.encoded_bits = stream.size();
  if (out_stream != nullptr) *out_stream = std::move(stream);
  return stats;
}

TritVector NineCoded::decode(const TritVector& te,
                             std::size_t original_bits) const {
  return decode_checked(te, original_bits).data;
}

DecodeOutcome NineCoded::decode_checked(const TritVector& te,
                                        std::size_t original_bits,
                                        core::Watchdog* watchdog) const {
  const std::size_t half = k_ / 2;
  const std::size_t expected_blocks = (original_bits + k_ - 1) / k_;
  DecodeOutcome outcome;
  TritVector& out = outcome.data;
  bits::TritReader reader(te);
  for (std::size_t block = 0; block < expected_blocks; ++block) {
    // Each block costs at most one codeword (<= 5 symbols) plus K output
    // symbols; charging K+5 per block keeps the meter conservative without
    // per-symbol overhead in this (software-side) decoder.
    if (watchdog != nullptr &&
        watchdog->tick(k_ + 5) != core::WatchdogTrip::kNone)
      throw DecodeError(DecodeFault::kWatchdogExpired, reader.position(),
                        block);
    try {
      const BlockClass cls = table_.match(reader);
      switch (cls) {
        case BlockClass::kC1:
        case BlockClass::kC2:
        case BlockClass::kC3:
        case BlockClass::kC4: {
          const auto fill = uniform_fill(cls);
          out.append_run(half, bits::trit_from_bit(fill[0]));
          out.append_run(half, bits::trit_from_bit(fill[1]));
          break;
        }
        case BlockClass::kC5:
        case BlockClass::kC6:
        case BlockClass::kC7:
        case BlockClass::kC8: {
          const MixedShape shape = mixed_shape(cls);
          const TritVector payload = reader.next_trits(half);
          if (shape.mismatch_is_left) {
            out.append(payload);
            out.append_run(half, bits::trit_from_bit(shape.uniform_value));
          } else {
            out.append_run(half, bits::trit_from_bit(shape.uniform_value));
            out.append(payload);
          }
          break;
        }
        case BlockClass::kC9:
          out.append(reader.next_trits(k_));
          break;
      }
    } catch (const bits::StreamOverrun& e) {
      throw DecodeError(DecodeFault::kTruncated, e.offset(), block);
    } catch (const bits::InvalidSymbol& e) {
      throw DecodeError(DecodeFault::kXInCodeword, e.offset(), block);
    } catch (const DecodeError& e) {
      throw e.with_block(block);
    }
  }
  // Length accounting: a corruption that shortens the parse (e.g. a long
  // codeword aliased onto a short one) leaves TE symbols unconsumed.
  if (!reader.done())
    throw DecodeError(DecodeFault::kTrailingData, reader.position(),
                      expected_blocks);
  outcome.blocks = expected_blocks;
  outcome.consumed = reader.position();
  out.resize(original_bits);  // drop decoder output for the padded tail
  return outcome;
}

NineCoded NineCoded::tuned_for(const bits::TritVector& td,
                               std::size_t block_size) {
  const NineCoded probe(block_size);
  const NineCodedStats stats = probe.analyze(td);
  return NineCoded(block_size, CodewordTable::frequency_directed(stats.counts));
}

}  // namespace nc::codec
