#include "serve/cache.h"

#include "core/hash.h"

namespace nc::serve {

std::string CacheKey::hex() const {
  return core::Hash128{lo, hi}.hex();
}

CacheKey cache_key(FrameType kind, const CodecSpec& spec,
                   const std::uint8_t* payload, std::size_t len) {
  // The shared 128-bit FNV-1a (core/hash.h) -- byte-compatible with the
  // digest this file used to compute privately, pinned by hash_test.cpp.
  core::Fnv128 fnv;
  fnv.update(static_cast<std::uint8_t>(kind));
  fnv.update_u64(spec.k);
  for (const unsigned l : spec.lengths) fnv.update(static_cast<std::uint8_t>(l));
  fnv.update_u64(len);  // length-prefix the variable part
  fnv.update_bytes(payload, len);
  const core::Hash128 h = fnv.digest();
  return {h.lo, h.hi};
}

CacheKey signature_ref_key(const std::uint8_t* payload, std::size_t len) {
  core::Fnv128 fnv;
  fnv.update(
      static_cast<std::uint8_t>(FrameType::kSignaturePublishRequest));
  fnv.update_u64(len);
  fnv.update_bytes(payload, len);
  const core::Hash128 h = fnv.digest();
  return {h.lo, h.hi};
}

ArtifactCache::ArtifactCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::optional<std::vector<std::uint8_t>> ArtifactCache::get(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (crc32(entry.payload.data(), entry.payload.size()) != entry.crc) {
    stats_.bytes_stored -= entry.charged;
    lru_.erase(it->second);
    map_.erase(it);
    stats_.entries = map_.size();
    ++stats_.crc_drops;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  return entry.payload;
}

void ArtifactCache::put(const CacheKey& key,
                        const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: same content address implies same payload, so only recency
    // and the CRC (guarding against in-memory rot) need updating.
    it->second->crc = crc32(it->second->payload.data(),
                            it->second->payload.size());
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry entry;
  entry.key = key;
  entry.payload = payload;
  entry.crc = crc32(payload.data(), payload.size());
  entry.charged = charge(entry);
  if (entry.charged > capacity_) return;  // would never fit
  while (stats_.bytes_stored + entry.charged > capacity_ && !lru_.empty())
    evict_lru_locked();
  stats_.bytes_stored += entry.charged;
  lru_.push_front(std::move(entry));
  map_[key] = lru_.begin();
  stats_.entries = map_.size();
  ++stats_.insertions;
}

void ArtifactCache::evict_lru_locked() {
  const Entry& victim = lru_.back();
  stats_.bytes_stored -= victim.charged;
  map_.erase(victim.key);
  lru_.pop_back();
  stats_.entries = map_.size();
  ++stats_.evictions;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace nc::serve
