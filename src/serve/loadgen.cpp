#include "serve/loadgen.h"

#include <atomic>
#include <map>
#include <random>
#include <thread>

#include "bits/test_set.h"
#include "circuit/generator.h"
#include "compact/analyzer.h"
#include "core/cancel.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/fault.h"

namespace nc::serve {

namespace {

/// Frame bytes ride the trit channel as 8 binary trits per byte (MSB
/// first). The channel never sees an X on input; a post-channel X (a flip
/// landing on a don't-care cannot happen here, but a stuck pin may emit
/// one) maps back to 0 -- any concrete corruption is equally good.
bits::TritVector bytes_to_trits(const std::vector<std::uint8_t>& bytes) {
  bits::TritVector v;
  v.resize(bytes.size() * 8, bits::Trit::Zero);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    for (int b = 0; b < 8; ++b)
      v.set(i * 8 + b, ((bytes[i] >> (7 - b)) & 1) != 0 ? bits::Trit::One
                                                        : bits::Trit::Zero);
  return v;
}

std::vector<std::uint8_t> trits_to_bytes(const bits::TritVector& v) {
  std::vector<std::uint8_t> bytes(v.size() / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    for (int b = 0; b < 8; ++b)
      if (v.get(i * 8 + b) == bits::Trit::One)
        bytes[i] |= static_cast<std::uint8_t>(1u << (7 - b));
  return bytes;
}

bits::TestSet random_test_set(std::size_t patterns, std::size_t width,
                              double x_density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::bernoulli_distribution bit(0.5);
  bits::TestSet ts(patterns, width);
  for (std::size_t p = 0; p < patterns; ++p)
    for (std::size_t c = 0; c < width; ++c) {
      if (unit(rng) < x_density)
        ts.set(p, c, bits::Trit::X);
      else
        ts.set(p, c, bit(rng) ? bits::Trit::One : bits::Trit::Zero);
    }
  return ts;
}

class Client {
 public:
  Client(const LoadgenConfig& config, const std::vector<Workload>& pool,
         RetryingClient::Connect connect, std::size_t index)
      : config_(config),
        pool_(pool),
        connect_(std::move(connect)),
        index_(index),
        channel_(with_seed(config.channel, config.seed * 7919 + index)),
        fault_rng_(config.seed * 31337 + index) {}

  LoadgenStats run() {
    RetryPolicy policy;
    policy.max_attempts = config_.max_retransmits + 1;
    policy.initial_backoff = config_.retransmit_timeout;
    policy.backoff_cap = config_.retransmit_timeout * 8;
    policy.retry_budget = config_.retry_budget;
    policy.hedge_after = config_.hedge_after;
    policy.request_deadline_ms = config_.request_deadline_ms;
    policy.seed = config_.seed * 104729 + index_;
    policy.clock = config_.clock;
    RetryingClient client(connect_, policy);
    client.set_transmit_hook([this](std::vector<std::uint8_t> bytes) {
      return maybe_corrupt(std::move(bytes));
    });

    core::Watchdog watchdog(
        0, core::Deadline::after(config_.deadline, config_.clock));
    std::size_t issued = 0;
    std::map<std::uint64_t, std::size_t> seq_to_workload;

    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      if (watchdog.check() != core::WatchdogTrip::kNone) break;
      // Keep the pipeline full.
      while (client.inflight() < config_.pipeline &&
             issued < config_.requests_per_client) {
        const std::size_t widx = workload_index(issued);
        const Workload& w = pool_[widx];
        const std::uint64_t seq =
            client.submit(w.request_type, w.request_payload);
        seq_to_workload[seq] = widx;
        ++issued;
      }
      if (client.inflight() == 0 && issued >= config_.requests_per_client)
        break;

      for (auto& [seq, outcome] :
           client.poll(std::chrono::milliseconds(50))) {
        const Workload& w = pool_[seq_to_workload.at(seq)];
        seq_to_workload.erase(seq);
        switch (outcome.status) {
          case RetryingClient::Outcome::Status::kReply:
            if (outcome.reply.type != w.expected_type ||
                outcome.reply.payload != w.expected_payload)
              ++stats_.byte_mismatches;
            else
              ++stats_.requests;
            break;
          case RetryingClient::Outcome::Status::kTypedError:
            if (outcome.error == ErrorCode::kDecodeFailed)
              ++stats_.decode_failures;
            if (outcome.error == ErrorCode::kUnknownSignature)
              ++stats_.signature_unknowns;
            // A terminal typed error still resolves the request.
            ++stats_.requests;
            break;
          case RetryingClient::Outcome::Status::kExhausted:
            ++stats_.unresolved;
            break;
        }
      }
    }
    stats_.unresolved += client.inflight();
    const RetryingClient::Stats& cs = client.stats();
    stats_.typed_rejections += cs.typed_rejections;
    stats_.deadline_rejections += cs.deadline_rejections;
    stats_.frame_errors += cs.frame_errors;
    stats_.retransmits += cs.retransmits;
    stats_.timeouts += cs.timeouts;
    stats_.duplicates += cs.duplicates;
    stats_.hedges += cs.hedges;
    stats_.hedge_wins += cs.hedge_wins;
    stats_.reconnects += cs.reconnects;
    stats_.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    client.close();
    return stats_;
  }

 private:
  static decomp::ChannelConfig with_seed(decomp::ChannelConfig c,
                                         std::uint64_t seed) {
    c.seed = seed;
    return c;
  }

  std::size_t workload_index(std::size_t issued) const {
    return (index_ * 31 + issued) % pool_.size();
  }

  /// Seeded Bernoulli at rate 1/fault_period, NOT a strict every-Nth
  /// counter: a deterministic counter phase-locks with the retry loop
  /// (each stall interleaves a fixed number of fresh transmits between a
  /// victim's retransmits, so the victim lands on a faulted slot every
  /// time and exhausts its budget).
  std::vector<std::uint8_t> maybe_corrupt(std::vector<std::uint8_t> bytes) {
    if (config_.fault_period != 0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(fault_rng_) *
                static_cast<double>(config_.fault_period) <
            1.0) {
      bytes = trits_to_bytes(channel_.transmit(bytes_to_trits(bytes)));
      if (channel_.last_corrupted()) ++stats_.corrupted_sends;
    }
    return bytes;
  }

  const LoadgenConfig& config_;
  const std::vector<Workload>& pool_;
  RetryingClient::Connect connect_;
  std::size_t index_;
  decomp::ChannelModel channel_;
  std::mt19937_64 fault_rng_;
  LoadgenStats stats_;
};

}  // namespace

void LoadgenStats::merge(const LoadgenStats& other) noexcept {
  requests += other.requests;
  byte_mismatches += other.byte_mismatches;
  typed_rejections += other.typed_rejections;
  decode_failures += other.decode_failures;
  frame_errors += other.frame_errors;
  corrupted_sends += other.corrupted_sends;
  retransmits += other.retransmits;
  timeouts += other.timeouts;
  duplicates += other.duplicates;
  unresolved += other.unresolved;
  hedges += other.hedges;
  hedge_wins += other.hedge_wins;
  reconnects += other.reconnects;
  deadline_rejections += other.deadline_rejections;
  signature_unknowns += other.signature_unknowns;
  seconds = std::max(seconds, other.seconds);
}

std::vector<Workload> build_workloads(const LoadgenConfig& config) {
  const codec::NineCoded coder = config.spec.make_coder();
  std::vector<Workload> pool;
  pool.reserve(config.distinct * 2);
  for (std::size_t d = 0; d < config.distinct; ++d) {
    const bits::TestSet ts = random_test_set(
        config.patterns, config.width, config.x_density,
        config.seed * 1000003 + d);
    const bits::TritVector te = coder.encode(ts.flatten());

    Workload enc;
    enc.request_type = FrameType::kEncodeRequest;
    enc.request_payload = to_payload(EncodeRequest{config.spec, ts});
    enc.expected_type = FrameType::kEncodeReply;
    enc.expected_payload = trits_payload(te);
    pool.push_back(std::move(enc));

    Workload dec;
    dec.request_type = FrameType::kDecodeRequest;
    DecodeRequest dr;
    dr.spec = config.spec;
    dr.patterns = config.patterns;
    dr.width = config.width;
    dr.te = te;
    dec.request_payload = to_payload(dr);
    dec.expected_type = FrameType::kDecodeReply;
    // Reference computed with the server's exact path (same watchdog
    // budget, same unflatten), so verification is byte-identity.
    const std::size_t original = config.patterns * config.width;
    core::Watchdog watchdog(64 + 8 * (original + te.size()));
    const codec::DecodeOutcome outcome =
        coder.decode_checked(te, original, &watchdog);
    dec.expected_payload = test_set_payload(
        bits::TestSet::unflatten(outcome.data, config.patterns,
                                 config.width));
    pool.push_back(std::move(dec));
  }
  return pool;
}

SignatureWorkloads build_signature_workloads(const LoadgenConfig& config) {
  // A deterministic scan circuit wide enough that the Steiner code
  // actually compacts (32 response bits -> ~15 signature bits per cycle).
  circuit::GeneratorConfig gc;
  gc.num_inputs = 8;
  gc.num_flops = 24;
  gc.num_gates = 150;
  gc.num_outputs = 8;
  gc.seed = 17;
  const circuit::Netlist netlist = circuit::generate_circuit(gc);

  const bits::TestSet patterns =
      random_test_set(16, netlist.pattern_width(), 0.25,
                      config.seed * 52361 + 1);

  compact::XCodeSpec spec;
  spec.kind = compact::XCodeKind::kSteiner;
  spec.inputs = netlist.response_width();
  compact::AnalyzerConfig acfg;
  acfg.x_density = config.signature_x_density;
  acfg.x_seed = config.seed;
  acfg.with_misr = false;
  const compact::ResponseAnalyzer analyzer(netlist,
                                           compact::XCode::build(spec), acfg);

  SignaturePublish pub;
  pub.outputs_per_cycle =
      static_cast<std::uint32_t>(analyzer.compactor().code().outputs());
  pub.cycles = patterns.pattern_count();
  pub.expected = analyzer.expected_signatures(patterns);

  SignatureWorkloads out;
  out.publish.request_type = FrameType::kSignaturePublishRequest;
  out.publish.request_payload = to_payload(pub);
  out.publish.expected_type = FrameType::kSignaturePublishReply;
  const CacheKey key = signature_ref_key(out.publish.request_payload.data(),
                                         out.publish.request_payload.size());
  const SignatureRef ref{key.lo, key.hi};
  out.publish.expected_payload = signature_ref_payload(ref);

  const std::vector<sim::Fault> faults = sim::full_fault_list(netlist);
  out.checks.reserve(config.signature_checks);
  for (std::size_t i = 0; i < config.signature_checks; ++i) {
    // Device 0 is fault-free (its check must pass); the rest carry sampled
    // stuck-at faults whose verdicts the server must reproduce exactly.
    const sim::Fault* fault =
        i == 0 || faults.empty() ? nullptr : &faults[(i - 1) % faults.size()];
    SignatureCheck chk;
    chk.ref = ref;
    chk.observed =
        analyzer.observed_signatures(patterns, fault, config.seed * 77 + i);
    Workload w;
    w.request_type = FrameType::kSignatureCheckRequest;
    w.request_payload = to_payload(chk);
    w.expected_type = FrameType::kSignatureCheckReply;
    // The reference verdict runs the very routine the server runs; a reply
    // differing in one byte is a real divergence, not noise.
    w.expected_payload = check_verdict_payload(compact::check_signatures(
        pub.expected, chk.observed, pub.outputs_per_cycle));
    out.checks.push_back(std::move(w));
  }
  return out;
}

namespace {

/// Publishes the signature stream before any client starts, through the
/// same retrying machinery the clients use (the transport may be faulty).
/// A failed publish is not fatal here: the resulting kUnknownSignature
/// replies fail the clean() gate, which is the honest outcome.
void publish_signatures(const LoadgenConfig& config, const Workload& publish,
                        const RetryingClient::Connect& connect) {
  RetryPolicy policy;
  policy.max_attempts = config.max_retransmits + 1;
  policy.initial_backoff = config.retransmit_timeout;
  policy.backoff_cap = config.retransmit_timeout * 8;
  policy.seed = config.seed * 912367;
  policy.clock = config.clock;
  RetryingClient client(connect, policy);
  (void)client.call(publish.request_type, publish.request_payload,
                    config.deadline);
  client.close();
}

}  // namespace

LoadgenStats run_loadgen(
    const LoadgenConfig& config,
    const std::function<std::unique_ptr<ByteStream>()>& connect) {
  std::vector<Workload> pool = build_workloads(config);
  if (config.signature_checks > 0) {
    SignatureWorkloads sig = build_signature_workloads(config);
    publish_signatures(config, sig.publish, connect);
    // Republishing from the pool is idempotent (content-addressed), so the
    // publish itself stays under load too.
    pool.push_back(std::move(sig.publish));
    for (Workload& w : sig.checks) pool.push_back(std::move(w));
  }
  std::vector<LoadgenStats> results(config.clients);
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    threads.emplace_back([&, i] {
      // Each client owns the factory, not a stream: a transport fault
      // mid-run reconnects and retransmits instead of abandoning.
      Client client(config, pool, connect, i);
      results[i] = client.run();
    });
  }
  for (auto& t : threads) t.join();
  LoadgenStats total;
  for (const LoadgenStats& r : results) total.merge(r);
  return total;
}

LoadgenStats run_loadgen_inprocess(const LoadgenConfig& config,
                                   Server& server) {
  return run_loadgen(config, [&server] {
    auto [client_end, server_end] = make_pipe();
    server.serve(std::move(server_end));
    return std::move(client_end);
  });
}

}  // namespace nc::serve
