#include "serve/loadgen.h"

#include <atomic>
#include <map>
#include <random>
#include <thread>

#include "bits/test_set.h"
#include "core/cancel.h"
#include "serve/server.h"

namespace nc::serve {

namespace {

/// Frame bytes ride the trit channel as 8 binary trits per byte (MSB
/// first). The channel never sees an X on input; a post-channel X (a flip
/// landing on a don't-care cannot happen here, but a stuck pin may emit
/// one) maps back to 0 -- any concrete corruption is equally good.
bits::TritVector bytes_to_trits(const std::vector<std::uint8_t>& bytes) {
  bits::TritVector v;
  v.resize(bytes.size() * 8, bits::Trit::Zero);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    for (int b = 0; b < 8; ++b)
      v.set(i * 8 + b, ((bytes[i] >> (7 - b)) & 1) != 0 ? bits::Trit::One
                                                        : bits::Trit::Zero);
  return v;
}

std::vector<std::uint8_t> trits_to_bytes(const bits::TritVector& v) {
  std::vector<std::uint8_t> bytes(v.size() / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    for (int b = 0; b < 8; ++b)
      if (v.get(i * 8 + b) == bits::Trit::One)
        bytes[i] |= static_cast<std::uint8_t>(1u << (7 - b));
  return bytes;
}

bits::TestSet random_test_set(std::size_t patterns, std::size_t width,
                              double x_density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::bernoulli_distribution bit(0.5);
  bits::TestSet ts(patterns, width);
  for (std::size_t p = 0; p < patterns; ++p)
    for (std::size_t c = 0; c < width; ++c) {
      if (unit(rng) < x_density)
        ts.set(p, c, bits::Trit::X);
      else
        ts.set(p, c, bit(rng) ? bits::Trit::One : bits::Trit::Zero);
    }
  return ts;
}

struct Outstanding {
  std::size_t workload = 0;
  std::chrono::steady_clock::time_point sent;
  std::size_t transmits = 0;
};

class Client {
 public:
  Client(const LoadgenConfig& config, const std::vector<Workload>& pool,
         std::unique_ptr<ByteStream> stream, std::size_t index)
      : config_(config),
        pool_(pool),
        stream_(std::move(stream)),
        index_(index),
        channel_(with_seed(config.channel, config.seed * 7919 + index)),
        fault_rng_(config.seed * 31337 + index) {}

  LoadgenStats run() {
    FrameReader reader(*stream_, FrameLimits{});
    core::Watchdog watchdog(
        0, core::Deadline::after(config_.deadline));
    std::uint64_t next_seq = 1;
    std::size_t issued = 0;
    std::map<std::uint64_t, Outstanding> live;

    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      if (watchdog.check() != core::WatchdogTrip::kNone) break;
      // Keep the pipeline full.
      while (live.size() < config_.pipeline &&
             issued < config_.requests_per_client) {
        Outstanding o;
        o.workload = workload_index(issued);
        const std::uint64_t seq = next_seq++;
        live[seq] = o;
        transmit(seq, live[seq]);
        ++issued;
      }
      if (live.empty() && issued >= config_.requests_per_client) break;

      // Retransmit anything that has waited past the timeout.
      const auto now = std::chrono::steady_clock::now();
      bool gave_up = false;
      for (auto it = live.begin(); it != live.end();) {
        if (now - it->second.sent > config_.retransmit_timeout) {
          if (it->second.transmits > config_.max_retransmits) {
            ++stats_.unresolved;
            it = live.erase(it);
            gave_up = true;
            continue;
          }
          ++stats_.timeouts;
          ++stats_.retransmits;
          transmit(it->first, it->second);
        }
        ++it;
      }
      if (gave_up) continue;

      FrameReader::Result r = reader.read(std::chrono::milliseconds(50));
      if (r.status == FrameReader::Status::kEof) break;
      if (r.status != FrameReader::Status::kFrame) continue;
      handle_reply(std::move(r.frame), live);
    }
    stats_.unresolved += live.size();
    stats_.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    stream_->close();
    return stats_;
  }

 private:
  static decomp::ChannelConfig with_seed(decomp::ChannelConfig c,
                                         std::uint64_t seed) {
    c.seed = seed;
    return c;
  }

  std::size_t workload_index(std::size_t issued) const {
    return (index_ * 31 + issued) % pool_.size();
  }

  void transmit(std::uint64_t seq, Outstanding& o) {
    const Workload& w = pool_[o.workload];
    Frame frame;
    frame.type = w.request_type;
    frame.seq = seq;
    frame.payload = w.request_payload;
    std::vector<std::uint8_t> bytes = encode_frame(frame);
    // Seeded Bernoulli at rate 1/fault_period, NOT a strict every-Nth
    // counter: a deterministic counter phase-locks with the retry loop
    // (each stall interleaves a fixed number of fresh transmits between a
    // victim's retransmits, so the victim lands on a faulted slot every
    // time and exhausts its budget).
    if (config_.fault_period != 0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(fault_rng_) *
                static_cast<double>(config_.fault_period) <
            1.0) {
      bytes = trits_to_bytes(channel_.transmit(bytes_to_trits(bytes)));
      if (channel_.last_corrupted()) ++stats_.corrupted_sends;
    }
    try {
      stream_->write_all(bytes.data(), bytes.size());
    } catch (const std::exception&) {
      // Connection gone; outstanding requests will drain as unresolved.
    }
    o.sent = std::chrono::steady_clock::now();
    ++o.transmits;
  }

  void handle_reply(Frame frame, std::map<std::uint64_t, Outstanding>& live) {
    if (frame.type == FrameType::kError && frame.seq == 0) {
      // Frame-layer report: some transmit was mangled; the retransmit
      // timer recovers the victim.
      ++stats_.frame_errors;
      return;
    }
    const auto it = live.find(frame.seq);
    if (it == live.end()) {
      // A reply for a request already resolved: legitimate only when we
      // transmitted it more than once; otherwise the server duplicated.
      const auto done = done_transmits_.find(frame.seq);
      if (done != done_transmits_.end() && done->second < 2)
        ++stats_.duplicates;
      return;
    }
    Outstanding& o = it->second;
    const Workload& w = pool_[o.workload];
    if (frame.type == FrameType::kError) {
      ParsedError err;
      try {
        err = parse_error_payload(frame.payload);
      } catch (const std::exception&) {
        ++stats_.frame_errors;
        return;
      }
      if (err.code == ErrorCode::kOverloaded ||
          err.code == ErrorCode::kInflightLimit ||
          err.code == ErrorCode::kShuttingDown) {
        ++stats_.typed_rejections;
        ++stats_.retransmits;
        transmit(frame.seq, o);  // back off by virtue of the reply trip
        return;
      }
      if (err.code == ErrorCode::kDecodeFailed) ++stats_.decode_failures;
      // Any other typed error resolves the request as a typed reply.
      ++stats_.requests;
      finish(it, live);
      return;
    }
    if (frame.type != w.expected_type ||
        frame.payload != w.expected_payload) {
      ++stats_.byte_mismatches;
      finish(it, live);
      return;
    }
    ++stats_.requests;
    finish(it, live);
  }

  void finish(std::map<std::uint64_t, Outstanding>::iterator it,
              std::map<std::uint64_t, Outstanding>& live) {
    done_transmits_[it->first] = it->second.transmits;
    if (done_transmits_.size() > 512)
      done_transmits_.erase(done_transmits_.begin());
    live.erase(it);
  }

  const LoadgenConfig& config_;
  const std::vector<Workload>& pool_;
  std::unique_ptr<ByteStream> stream_;
  std::size_t index_;
  decomp::ChannelModel channel_;
  std::mt19937_64 fault_rng_;
  std::map<std::uint64_t, std::size_t> done_transmits_;
  LoadgenStats stats_;
};

}  // namespace

void LoadgenStats::merge(const LoadgenStats& other) noexcept {
  requests += other.requests;
  byte_mismatches += other.byte_mismatches;
  typed_rejections += other.typed_rejections;
  decode_failures += other.decode_failures;
  frame_errors += other.frame_errors;
  corrupted_sends += other.corrupted_sends;
  retransmits += other.retransmits;
  timeouts += other.timeouts;
  duplicates += other.duplicates;
  unresolved += other.unresolved;
  seconds = std::max(seconds, other.seconds);
}

std::vector<Workload> build_workloads(const LoadgenConfig& config) {
  const codec::NineCoded coder = config.spec.make_coder();
  std::vector<Workload> pool;
  pool.reserve(config.distinct * 2);
  for (std::size_t d = 0; d < config.distinct; ++d) {
    const bits::TestSet ts = random_test_set(
        config.patterns, config.width, config.x_density,
        config.seed * 1000003 + d);
    const bits::TritVector te = coder.encode(ts.flatten());

    Workload enc;
    enc.request_type = FrameType::kEncodeRequest;
    enc.request_payload = to_payload(EncodeRequest{config.spec, ts});
    enc.expected_type = FrameType::kEncodeReply;
    enc.expected_payload = trits_payload(te);
    pool.push_back(std::move(enc));

    Workload dec;
    dec.request_type = FrameType::kDecodeRequest;
    DecodeRequest dr;
    dr.spec = config.spec;
    dr.patterns = config.patterns;
    dr.width = config.width;
    dr.te = te;
    dec.request_payload = to_payload(dr);
    dec.expected_type = FrameType::kDecodeReply;
    // Reference computed with the server's exact path (same watchdog
    // budget, same unflatten), so verification is byte-identity.
    const std::size_t original = config.patterns * config.width;
    core::Watchdog watchdog(64 + 8 * (original + te.size()));
    const codec::DecodeOutcome outcome =
        coder.decode_checked(te, original, &watchdog);
    dec.expected_payload = test_set_payload(
        bits::TestSet::unflatten(outcome.data, config.patterns,
                                 config.width));
    pool.push_back(std::move(dec));
  }
  return pool;
}

LoadgenStats run_loadgen(
    const LoadgenConfig& config,
    const std::function<std::unique_ptr<ByteStream>()>& connect) {
  const std::vector<Workload> pool = build_workloads(config);
  std::vector<LoadgenStats> results(config.clients);
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    threads.emplace_back([&, i] {
      Client client(config, pool, connect(), i);
      results[i] = client.run();
    });
  }
  for (auto& t : threads) t.join();
  LoadgenStats total;
  for (const LoadgenStats& r : results) total.merge(r);
  return total;
}

LoadgenStats run_loadgen_inprocess(const LoadgenConfig& config,
                                   Server& server) {
  return run_loadgen(config, [&server] {
    auto [client_end, server_end] = make_pipe();
    server.serve(std::move(server_end));
    return std::move(client_end);
  });
}

}  // namespace nc::serve
