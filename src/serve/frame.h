// Frame protocol of the compression service.
//
// Every message between a client and the server travels as one length-
// prefixed, CRC-guarded frame over a ByteStream (transport.h). Layout
// (little-endian):
//
//   offset size
//   0      4    magic "NC9F"
//   4      1    version (1 or 2)
//   5      1    frame type (FrameType)
//   6      2    header CRC: low 16 bits of CRC-32 over the header bytes
//               [4, header_size) with this field zeroed
//   8      8    seq -- client-chosen request id, echoed in the reply
//   16     4    payload length N (<= FrameLimits::max_payload)
//   [20    4    version 2 only: request deadline budget in milliseconds,
//               relative to frame arrival (0 = no deadline); clocks are
//               never compared across hosts]
//   hdr    N    payload (hdr = 20 for v1, 24 for v2)
//   hdr+N  4    CRC-32 (IEEE 802.3) over bytes [4, hdr+N)
//
// Version 2 adds end-to-end deadlines: a client that knows it will abandon
// a reply after D ms says so in the header, and the server sheds the
// request -- before batching, before computing, and before writing the
// reply -- with a typed kDeadlineExceeded once D expires. The budget is
// RELATIVE (a duration, not a timestamp) because the two ends do not share
// a clock. Version 1 frames remain fully accepted (old clients simply have
// no deadline), and the writer emits v1 whenever no deadline is set, so
// pre-deadline byte streams are bit-identical to what they always were.
//
// Two checksums on purpose. The trailing CRC covers everything after the
// magic, so any bit flip in header, seq, length or payload is detected --
// but only once the full declared payload has arrived. The header CRC
// validates the length field the moment the 20-byte header is buffered: a
// bit flip in the length would otherwise leave the reader waiting
// megabytes for a payload that never comes, wedging a live connection that
// has no EOF to break the wait. The magic itself is the resync anchor.
// FrameReader is an incremental parser built for a faulty world:
//
//  * a frame whose magic/version/length/CRC check fails is reported as ONE
//    typed protocol error, then the reader silently scans forward to the
//    next magic (resync) -- a corrupted frame costs one error reply, never
//    the connection;
//  * a stream that ends mid-frame reports kTruncated, then clean EOF;
//  * an oversized declared length is rejected BEFORE buffering the payload
//    (a forged length cannot make the server allocate or stall);
//  * all scanning is metered by a core::Watchdog step budget, so crafted
//    input yields a typed error within a known bound -- never a hang.
//
// Request/reply payload schemas (EncodeRequest etc.) live here too, built
// on the serialized formats of bits/serialize.h so the service speaks the
// same byte formats as the on-disk tooling.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bits/test_set.h"
#include "bits/trit_vector.h"
#include "codec/nine_coded.h"
#include "compact/compactor.h"
#include "core/cancel.h"
#include "core/crc.h"
#include "serve/transport.h"
#include "tune/genome.h"

namespace nc::serve {

inline constexpr std::array<std::uint8_t, 4> kFrameMagic = {'N', 'C', '9',
                                                            'F'};
inline constexpr unsigned kFrameVersion = 1;
/// Version 2: header carries a relative deadline budget (u32 ms) after the
/// length field. Emitted only when a frame sets one; always accepted.
inline constexpr unsigned kFrameVersionDeadline = 2;
inline constexpr std::size_t kFrameHeaderSize = 20;
inline constexpr std::size_t kFrameHeaderSizeV2 = 24;
inline constexpr std::size_t kFrameTrailerSize = 4;

/// CRC-32 over raw bytes (the shared core::crc32); the frame trailer and
/// the artifact cache's hit validation both use it.
using core::crc32;

enum class FrameType : std::uint8_t {
  kSessionRequest = 1,  // open a named client session
  kSessionReply,
  kEncodeRequest,
  kEncodeReply,
  kDecodeRequest,
  kDecodeReply,
  kStatsRequest,
  kStatsReply,
  kError,  // typed error reply (ErrorCode + detail text)
  // Response-side signature checking (compact/): a tester publishes the
  // expected X-compacted response stream of a session once, then devices
  // upload only their m-bits-per-cycle signatures for a server-side
  // verdict -- response bandwidth drops with the same ratio the compactor
  // achieves on chip.
  kSignaturePublishRequest,  // expected stream -> content-addressed ref
  kSignaturePublishReply,    // the assigned SignatureRef
  kSignatureCheckRequest,    // ref + observed stream
  kSignatureCheckReply,      // serialized compact::CheckVerdict
  // Search-based code tuning (tune/): run the evolutionary optimizer over
  // coding parameters for an uploaded TD. The search is deterministic in
  // the payload bytes, so the winning genome is a content-addressed
  // artifact: a repeated request for the same (TD, weights, seed) is a
  // cache/store hit, surviving warm restart.
  kTuneRequest,
  kTuneReply,
};

/// Wire error codes carried by kError frames. The first group is emitted by
/// the frame layer (FrameReader), the second by the server's request
/// handling.
enum class ErrorCode : std::uint16_t {
  // frame layer
  kBadMagic = 1,    // junk where a frame should start; reader resynced
  kBadVersion,      // unsupported protocol version
  kBadCrc,          // frame failed its CRC
  kOversized,       // declared payload length above the limit
  kTruncated,       // stream ended mid-frame
  kResyncOverrun,   // resync scan exhausted its watchdog budget
  kBadHeader,       // header CRC failed (e.g. a flipped length field)
  // server layer
  kBadType = 32,    // frame type is not a request the server accepts
  kBadPayload,      // request payload failed to parse / validate
  kOverloaded,      // admission control: request queue at capacity
  kInflightLimit,   // admission control: per-client in-flight cap reached
  kDecodeFailed,    // typed codec::DecodeError while serving the request
  kShuttingDown,    // server is stopping
  kDeadlineExceeded,  // the request's deadline expired before its reply
  kSlowClient,      // connection dropped: peer below minimum progress rate
  kUnknownSignature,  // check names a signature ref no tier has
};

const char* to_string(ErrorCode code) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t seq = 0;
  /// Relative deadline budget in ms (0 = none). Non-zero makes the frame a
  /// version-2 frame on the wire; replies never carry one.
  std::uint32_t deadline_ms = 0;
  std::vector<std::uint8_t> payload;
};

struct FrameLimits {
  std::size_t max_payload = 16u << 20;  // 16 MiB
  /// Watchdog step budget per read() call: one step per byte scanned or
  /// buffered. 0 derives 4 * (header + max_payload + trailer), which a
  /// well-formed stream can never trip.
  std::size_t watchdog_steps = 0;
};

/// Serializes a frame (header + payload + CRC) ready for write_all.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Serializes and writes `frame` to `stream` as one write_all call (the
/// caller serializes concurrent writers).
void write_frame(ByteStream& stream, const Frame& frame);

/// Incremental, resyncing frame parser over one ByteStream.
class FrameReader {
 public:
  explicit FrameReader(ByteStream& stream, FrameLimits limits = {});

  enum class Status : std::uint8_t {
    kFrame,          // `frame` holds a validated frame
    kProtocolError,  // `error`/`detail` describe it; reader has resynced
    kTimeout,        // nothing parseable within the deadline
    kEof,            // orderly end of stream, buffer empty
  };

  struct Result {
    Status status = Status::kEof;
    Frame frame;
    ErrorCode error = ErrorCode::kBadMagic;
    std::string detail;
  };

  /// Returns the next frame, protocol error, timeout or EOF. Each call is
  /// bounded by `timeout` wall-clock and by the configured watchdog step
  /// budget; a single corrupted frame yields exactly one kProtocolError.
  Result read(std::chrono::milliseconds timeout);

  /// Bytes currently buffered (tests assert the oversized-length guard).
  std::size_t buffered() const noexcept { return buffer_.size(); }

  /// Total bytes ever pulled from the stream. The server's per-connection
  /// progress watchdog compares successive readings to tell a live peer
  /// dribbling a frame from a stalled one: any byte counts as progress,
  /// whether or not a whole frame has landed yet.
  std::uint64_t bytes_consumed() const noexcept { return bytes_consumed_; }

 private:
  Result parse_step(core::Watchdog& watchdog, bool& need_more);
  void consume(std::size_t n);

  ByteStream& stream_;
  FrameLimits limits_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t bytes_consumed_ = 0;
  bool eof_ = false;
  bool resyncing_ = false;  // a reported bad frame is being skipped
};

// ------------------------------------------------------- message payloads
//
// Parse functions throw std::runtime_error / std::invalid_argument on any
// malformed payload; the server maps both to ErrorCode::kBadPayload.

/// The codec configuration a request names: block size K plus the nine
/// codeword lengths (canonical prefix code, codec/codeword_table.h). The
/// batching scheduler groups requests with equal specs; the artifact cache
/// folds the spec into its content address.
struct CodecSpec {
  std::size_t k = 8;
  std::array<unsigned, codec::kNumClasses> lengths =
      {1, 2, 5, 5, 5, 5, 5, 5, 4};  // the paper's Table I assignment

  bool operator==(const CodecSpec&) const = default;

  /// Validates and instantiates the coder; throws std::invalid_argument on
  /// an illegal K or a length set violating Kraft's inequality. `impl` is a
  /// server-local execution choice (never on the wire): both impls produce
  /// byte-identical artifacts, so cache and store entries stay valid across
  /// it.
  codec::NineCoded make_coder(
      codec::CodecImpl impl = codec::CodecImpl::kAuto) const;
};

struct EncodeRequest {
  CodecSpec spec;
  bits::TestSet tests;
};

struct DecodeRequest {
  CodecSpec spec;
  std::size_t patterns = 0;
  std::size_t width = 0;
  bits::TritVector te;
};

std::vector<std::uint8_t> to_payload(const EncodeRequest& req);
EncodeRequest parse_encode_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> to_payload(const DecodeRequest& req);
DecodeRequest parse_decode_request(const std::vector<std::uint8_t>& payload);

/// Encode replies carry the serialized TE trit stream; decode replies the
/// serialized test set (both bits/serialize.h formats).
std::vector<std::uint8_t> trits_payload(const bits::TritVector& v);
bits::TritVector parse_trits_payload(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> test_set_payload(const bits::TestSet& ts);
bits::TestSet parse_test_set_payload(const std::vector<std::uint8_t>& payload);

/// Session request payload: the client's self-reported name.
std::vector<std::uint8_t> session_payload(const std::string& name);
std::string parse_session_payload(const std::vector<std::uint8_t>& payload);

/// Session reply payload: assigned client id + granted in-flight cap.
struct SessionGrant {
  std::uint64_t client_id = 0;
  std::uint32_t inflight_cap = 0;
};
std::vector<std::uint8_t> session_grant_payload(const SessionGrant& grant);
SessionGrant parse_session_grant(const std::vector<std::uint8_t>& payload);

/// Signature publish request: geometry plus the expected compacted trit
/// stream (`expected.size() == outputs_per_cycle * cycles`; X trits mark
/// outputs the tester cannot predict). The reply is the stream's content
/// address, so publishing is idempotent and any client that can derive the
/// same expected stream derives the same ref.
struct SignaturePublish {
  std::uint32_t outputs_per_cycle = 0;
  std::uint64_t cycles = 0;
  bits::TritVector expected;
};

std::vector<std::uint8_t> to_payload(const SignaturePublish& pub);
SignaturePublish parse_signature_publish(
    const std::vector<std::uint8_t>& payload);

/// Content address of a published signature stream: the 128-bit digest of
/// its publish payload (computed by `signature_ref`, cache.h).
struct SignatureRef {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const SignatureRef&) const = default;
};

std::vector<std::uint8_t> signature_ref_payload(const SignatureRef& ref);
SignatureRef parse_signature_ref(const std::vector<std::uint8_t>& payload);

/// Signature check request: a published ref plus the device's observed
/// signature stream (same geometry as the published one).
struct SignatureCheck {
  SignatureRef ref;
  bits::TritVector observed;
};

std::vector<std::uint8_t> to_payload(const SignatureCheck& chk);
SignatureCheck parse_signature_check(const std::vector<std::uint8_t>& payload);

/// Check reply payload: the verdict of compact::check_signatures, byte for
/// byte -- a client running the shared routine locally builds the exact
/// reply the server sends.
std::vector<std::uint8_t> check_verdict_payload(
    const compact::CheckVerdict& verdict);
compact::CheckVerdict parse_check_verdict(
    const std::vector<std::uint8_t>& payload);

/// Tune request: the optimizer knobs a client may set, plus the workload.
/// Weights travel as exact double bit patterns -- the payload bytes ARE the
/// artifact key, so two clients asking the same question must serialize it
/// identically. Bounds are enforced at parse time (kBadPayload) so a
/// request cannot buy unbounded search work.
struct TuneRequest {
  std::uint64_t seed = 1;
  std::uint32_t generations = 10;
  std::uint32_t population = 24;
  double weight_cr = 1.0;
  double weight_tat = 0.25;
  double weight_gates = 0.05;
  std::uint32_t p = 8;  // ATE:SoC clock ratio for the TAT model
  bits::TestSet tests;
};

/// Caps enforced by parse_tune_request: a tune request is CPU-bound compute,
/// so the server bounds generations * population like it bounds payload
/// bytes.
inline constexpr std::uint32_t kMaxTuneGenerations = 64;
inline constexpr std::uint32_t kMaxTunePopulation = 64;

std::vector<std::uint8_t> to_payload(const TuneRequest& req);
TuneRequest parse_tune_request(const std::vector<std::uint8_t>& payload);

/// Tune reply: the winning genome (tune/genome.h byte form) plus its
/// fitness summary. This is exactly the artifact value the cache/store
/// tiers hold.
struct TuneReplyData {
  tune::TuneGenome genome;
  double score = 0.0;
  double cr_percent = 0.0;
  double tat_percent = 0.0;
  std::uint64_t fsm_gates = 0;
  std::uint64_t datapath_gates = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t invalid_genomes = 0;
};

std::vector<std::uint8_t> to_payload(const TuneReplyData& reply);
TuneReplyData parse_tune_reply(const std::vector<std::uint8_t>& payload);

/// Error payload: wire code + human-readable detail.
std::vector<std::uint8_t> error_payload(ErrorCode code,
                                        const std::string& detail);
struct ParsedError {
  ErrorCode code = ErrorCode::kBadPayload;
  std::string detail;
};
ParsedError parse_error_payload(const std::vector<std::uint8_t>& payload);

}  // namespace nc::serve
