// The concurrent compression server.
//
// Threading model (per Server instance):
//
//   reader threads --------+                        +-- nc_core::ThreadPool
//   (one per connection)   |   bounded MPMC queue   |   (batch execution)
//     FrameReader ---------+-->  [ admission ] -----+--> coder per batch
//     parse + admit        |        scheduler       |    reply via conn
//     inline replies ------+     (grouping thread)  +--> write mutex
//
//  * Each accepted connection gets a reader thread running a FrameReader.
//    Protocol errors, session/stats requests and admission rejections are
//    answered inline; encode/decode requests enter the shared queue.
//  * Admission control is two-layered and applied before enqueue: a bounded
//    queue depth (reject with kOverloaded) and a per-client in-flight cap
//    (reject with kInflightLimit). A rejected request costs one error
//    frame, never a stall.
//  * The scheduler thread groups queued requests by CodecSpec -- block size
//    K plus the codeword table -- and hands each group to the thread pool
//    as one batch, so the coder construction and the scan_half/
//    classify_halves hot path run against a single coder instance per
//    batch instead of per request.
//  * Results are cached content-addressed (cache.h): a hit returns the
//    stored reply payload byte-identical to what a miss would compute.
//
// Every reply -- success or typed error -- echoes the request's seq, so
// clients correlate out-of-order replies. All waits are bounded; stop()
// always completes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "serve/cache.h"
#include "serve/frame.h"
#include "serve/metrics.h"
#include "serve/transport.h"
#include "store/store.h"

namespace nc::serve {

struct ServerConfig {
  std::size_t worker_threads = 0;   // 0 = ThreadPool::hardware_threads()
  std::size_t queue_capacity = 64;  // admission bound on queued requests
  std::uint32_t inflight_cap = 8;   // per-client outstanding requests
  std::size_t cache_capacity = 8u << 20;  // artifact cache bytes; 0 = off
  std::size_t max_batch = 16;             // requests per scheduler batch
  /// How long the scheduler lingers for more spec-compatible requests
  /// after the first one arrives.
  std::chrono::milliseconds batch_window{2};
  /// Directory of the persistent artifact store (L2 tier). Empty = no
  /// store: every cache miss recomputes. Lookups go L1 (in-memory LRU) ->
  /// L2 (store, CRC-revalidated; a corrupt record degrades to a miss) ->
  /// compute, and computed artifacts are written through to both tiers, so
  /// a restarted server on the same directory answers warm.
  std::string store_dir;
  /// Passed through to StoreConfig when store_dir is set.
  std::size_t store_segment_bytes = 4u << 20;
  double store_garbage_ratio = 0.35;
  FrameLimits limits;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopts a connected stream and serves it on a dedicated reader thread
  /// until EOF, transport fault, or stop().
  void serve(std::unique_ptr<ByteStream> stream);

  /// Stops accepting work, fails pending queued requests with
  /// kShuttingDown, closes every connection and joins all threads.
  /// Idempotent; called by the destructor.
  void stop();

  const Metrics& metrics() const noexcept { return metrics_; }
  Metrics::Snapshot metrics_snapshot() const { return metrics_.snapshot(); }
  CacheStats cache_stats() const { return cache_.stats(); }
  bool has_store() const noexcept { return store_ != nullptr; }
  /// Valid only when has_store().
  store::StoreStats store_stats() const { return store_->stats(); }

  /// The Stats reply payload: metrics + cache stats as compact JSON bytes.
  std::vector<std::uint8_t> stats_payload() const;

 private:
  struct Connection {
    explicit Connection(std::unique_ptr<ByteStream> s)
        : stream(std::move(s)) {}
    std::unique_ptr<ByteStream> stream;
    std::mutex write_mutex;
    std::atomic<std::uint32_t> inflight{0};
    std::atomic<bool> dead{false};
    std::uint64_t client_id = 0;
  };

  struct Request {
    std::shared_ptr<Connection> conn;
    FrameType type = FrameType::kEncodeRequest;
    std::uint64_t seq = 0;
    CodecSpec spec;
    std::vector<std::uint8_t> payload;  // raw request payload (cache key)
    std::chrono::steady_clock::time_point accepted;
  };

  void reader_loop(std::shared_ptr<Connection> conn);
  void handle_frame(const std::shared_ptr<Connection>& conn, Frame frame);
  void scheduler_loop();
  void run_batch(std::vector<Request> batch);
  void process_request(const codec::NineCoded& coder, const Request& req);
  void send_frame(const std::shared_ptr<Connection>& conn,
                  const Frame& frame);
  void send_error(const std::shared_ptr<Connection>& conn, std::uint64_t seq,
                  ErrorCode code, const std::string& detail);
  void finish_request(const Request& req);

  ServerConfig config_;
  Metrics metrics_;
  ArtifactCache cache_;
  core::ThreadPool pool_;
  // Declared after pool_: ~Store waits out its background compaction task,
  // which needs the pool still alive (members destroy in reverse order).
  std::unique_ptr<store::Store> store_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;

  std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> reader_threads_;
  std::uint64_t next_client_id_ = 1;

  std::mutex batch_mutex_;  // serializes run_batch completions accounting
  std::atomic<std::size_t> batches_inflight_{0};
  std::condition_variable batches_done_cv_;

  std::atomic<bool> stopping_{false};
  std::thread scheduler_;
};

}  // namespace nc::serve
