// The concurrent compression server.
//
// Threading model (per Server instance):
//
//   reader threads --------+                        +-- nc_core::ThreadPool
//   (one per connection)   |   bounded MPMC queue   |   (batch execution)
//     FrameReader ---------+-->  [ admission ] -----+--> coder per batch
//     parse + admit        |        scheduler       |    reply via conn
//     inline replies ------+     (grouping thread)  +--> write mutex
//
//  * Each accepted connection gets a reader thread running a FrameReader.
//    Protocol errors, session/stats requests and admission rejections are
//    answered inline; encode/decode requests enter the shared queue.
//  * Admission control is two-layered and applied before enqueue: a bounded
//    queue depth (reject with kOverloaded) and a per-client in-flight cap
//    (reject with kInflightLimit). A rejected request costs one error
//    frame, never a stall.
//  * The scheduler thread groups queued requests by CodecSpec -- block size
//    K plus the codeword table -- and hands each group to the thread pool
//    as one batch, so the coder construction and the scan_half/
//    classify_halves hot path run against a single coder instance per
//    batch instead of per request.
//  * Results are cached content-addressed (cache.h): a hit returns the
//    stored reply payload byte-identical to what a miss would compute.
//
// Every reply -- success or typed error -- echoes the request's seq, so
// clients correlate out-of-order replies. All waits are bounded; stop()
// always completes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/clock.h"
#include "core/thread_pool.h"
#include "serve/cache.h"
#include "serve/frame.h"
#include "serve/metrics.h"
#include "serve/transport.h"
#include "store/sharded_store.h"
#include "store/store.h"

namespace nc::serve {

struct ServerConfig {
  /// 9C hot-path implementation for every batch coder. Byte-identical
  /// output across choices, so cached/stored artifacts remain valid when
  /// the server restarts under a different impl.
  codec::CodecImpl codec_impl = codec::CodecImpl::kAuto;
  std::size_t worker_threads = 0;   // 0 = ThreadPool::hardware_threads()
  std::size_t queue_capacity = 64;  // admission bound on queued requests
  std::uint32_t inflight_cap = 8;   // per-client outstanding requests
  std::size_t cache_capacity = 8u << 20;  // artifact cache bytes; 0 = off
  std::size_t max_batch = 16;             // requests per scheduler batch
  /// How long the scheduler lingers for more spec-compatible requests
  /// after the first one arrives.
  std::chrono::milliseconds batch_window{2};
  /// Directory of the persistent artifact store (L2 tier). Empty = no
  /// store: every cache miss recomputes. Lookups go L1 (in-memory LRU) ->
  /// L2 (store, CRC-revalidated; a corrupt record degrades to a miss) ->
  /// compute, and computed artifacts are written through to both tiers, so
  /// a restarted server on the same directory answers warm.
  std::string store_dir;
  /// Passed through to StoreConfig when store_dir is set.
  std::size_t store_segment_bytes = 4u << 20;
  double store_garbage_ratio = 0.35;
  /// L2 tier shape. 0 or 1 = a single plain Store in store_dir (the
  /// pre-sharding layout); >= 2 = a store::ShardedStore with that many
  /// shards, `store_parity` of them parity, striping payloads at or above
  /// `store_stripe_threshold` bytes. Reads that lose up to store_parity
  /// shards still hit; the damage is visible only in the stats payload.
  unsigned store_shards = 0;
  unsigned store_parity = 1;
  std::size_t store_stripe_threshold = 4096;
  /// Background scrub period for the sharded tier; 0 = no scrub thread.
  std::uint32_t store_scrub_interval_ms = 0;
  /// Write-through durability: a transient store I/O failure is retried
  /// up to this many attempts (1 = no retry) with a capped backoff; after
  /// that -- or immediately on ENOSPC -- the store is benched and the
  /// server runs compute-only until the cooldown expires.
  unsigned store_put_attempts = 3;
  std::chrono::milliseconds store_cooldown{2000};
  /// Write-through retry backoff: doubles from `initial` up to `cap`, each
  /// sleep jittered (seeded, deterministic) so workers that failed together
  /// do not retry in lockstep against a recovering disk.
  std::chrono::milliseconds store_backoff_initial{1};
  std::chrono::milliseconds store_backoff_cap{64};
  std::uint64_t backoff_jitter_seed = 0x9e3779b97f4a7c15ull;

  // ---- timing robustness ------------------------------------------------
  /// Time source for deadlines, backoff sleeps and the progress watchdog.
  /// Null = the real steady clock; tests inject a core::VirtualClock so
  /// expiry is driven by the test, not the wall.
  core::Clock* clock = nullptr;
  /// Deadline applied to requests that carry none (0 = unlimited). A
  /// request whose deadline expires is shed -- before its batch computes,
  /// mid-decode and before its reply is written -- with a typed
  /// kDeadlineExceeded reply instead of burning compute nobody waits for.
  std::uint32_t default_deadline_ms = 0;
  /// Per-reply write budget: a reply that cannot be fully written within
  /// this (peer not draining its socket) abandons the write and drops the
  /// connection as a slow client. 0 = block forever (the old behavior).
  std::chrono::milliseconds write_deadline{5000};
  /// Minimum inbound progress once a partial frame is buffered, bytes/sec
  /// measured over ~1 s windows; a peer dribbling below it is disconnected
  /// (slowloris defense). 0 = off.
  std::uint64_t min_progress_bps = 0;
  /// Disconnect a connection with no inbound bytes and no in-flight work
  /// for this long. 0 = never.
  std::chrono::milliseconds idle_timeout{0};
  /// stop(): how long to wait for in-flight batches to drain before
  /// force-closing connections (which unwedges any writer stuck on a slow
  /// peer) and finishing the shutdown.
  std::chrono::milliseconds stop_drain{5000};
  FrameLimits limits;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopts a connected stream and serves it on a dedicated reader thread
  /// until EOF, transport fault, or stop().
  void serve(std::unique_ptr<ByteStream> stream);

  /// Stops accepting work, fails pending queued requests with
  /// kShuttingDown, closes every connection and joins all threads.
  /// Idempotent; called by the destructor.
  void stop();

  const Metrics& metrics() const noexcept { return metrics_; }
  Metrics::Snapshot metrics_snapshot() const { return metrics_.snapshot(); }
  CacheStats cache_stats() const { return cache_.stats(); }
  bool has_store() const noexcept { return tier_ != nullptr; }
  bool has_sharded_store() const noexcept { return sharded_store_ != nullptr; }
  /// Valid only when has_store() and the tier is a plain single store.
  store::StoreStats store_stats() const { return store_->stats(); }
  /// Valid only when has_sharded_store().
  store::ShardedStats sharded_store_stats() const {
    return sharded_store_->stats();
  }
  /// Test access to the plain single-store tier; null when absent or
  /// sharded. Maintenance (fsck/compact) may run through this while the
  /// server is serving -- the store serializes internally.
  store::Store* store() noexcept { return store_.get(); }
  /// Test/CLI access to the sharded tier; null when the tier is a plain
  /// store (or no store at all).
  store::ShardedStore* sharded_store() noexcept {
    return sharded_store_.get();
  }

  /// The Stats reply payload: metrics + cache stats as compact JSON bytes.
  std::vector<std::uint8_t> stats_payload() const;

 private:
  struct Connection {
    explicit Connection(std::unique_ptr<ByteStream> s)
        : stream(std::move(s)) {}
    std::unique_ptr<ByteStream> stream;
    std::mutex write_mutex;
    std::atomic<std::uint32_t> inflight{0};
    std::atomic<bool> dead{false};
    std::uint64_t client_id = 0;
  };

  struct Request {
    std::shared_ptr<Connection> conn;
    FrameType type = FrameType::kEncodeRequest;
    std::uint64_t seq = 0;
    CodecSpec spec;
    std::vector<std::uint8_t> payload;  // raw request payload (cache key)
    std::chrono::steady_clock::time_point accepted;
    core::Deadline deadline;  // unlimited when the frame carried none
  };

  void reader_loop(std::shared_ptr<Connection> conn);
  void handle_frame(const std::shared_ptr<Connection>& conn, Frame frame);
  void scheduler_loop();
  void run_batch(std::vector<Request> batch);
  void process_request(const codec::NineCoded& coder, const Request& req);
  /// Tune requests: resolve through the artifact tiers, else run the
  /// evolutionary search (serially -- it already occupies a pool worker).
  void process_tune(const Request& req);
  void send_frame(const std::shared_ptr<Connection>& conn,
                  const Frame& frame);
  void send_error(const std::shared_ptr<Connection>& conn, std::uint64_t seq,
                  ErrorCode code, const std::string& detail);
  void finish_request(const Request& req);
  /// Progress-watchdog disconnect: best-effort typed error frame (the peer
  /// is probably not reading it), then kill the connection.
  void drop_connection(const std::shared_ptr<Connection>& conn,
                       ErrorCode code, const std::string& detail);

  /// The L2 tier to use right now: null when no store is configured or the
  /// store is benched (cooling down after a failed write-through).
  store::ArtifactTier* store_tier();
  /// Write-through with bounded retries; failures bench the store for
  /// config_.store_cooldown instead of surfacing to the client.
  void store_write_through(const store::Key& key,
                           const std::vector<std::uint8_t>& payload);

  ServerConfig config_;
  Metrics metrics_;
  ArtifactCache cache_;
  core::ThreadPool pool_;
  // Declared after pool_: ~Store waits out its background compaction task,
  // which needs the pool still alive (members destroy in reverse order).
  // Exactly one of store_ / sharded_store_ is set when a store directory
  // is configured; tier_ points at it.
  std::unique_ptr<store::Store> store_;
  std::unique_ptr<store::ShardedStore> sharded_store_;
  store::ArtifactTier* tier_ = nullptr;
  // steady_clock ticks until which the store is benched; 0 = healthy.
  std::atomic<std::chrono::steady_clock::rep> store_resume_at_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;

  std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> reader_threads_;
  std::uint64_t next_client_id_ = 1;

  std::mutex batch_mutex_;  // serializes run_batch completions accounting
  std::atomic<std::size_t> batches_inflight_{0};
  std::condition_variable batches_done_cv_;

  std::atomic<bool> stopping_{false};
  std::thread scheduler_;

  // A second stop() caller waits here for the first to finish the joins
  // (its own mutex: the first caller needs conn_mutex_ during shutdown).
  std::mutex stop_mutex_;
  std::condition_variable stopped_cv_;
  bool stop_complete_ = false;
};

}  // namespace nc::serve
