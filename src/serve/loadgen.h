// Load generator for the compression service.
//
// Drives N concurrent clients at one Server (in-process pipes) or a Unix
// socket, each replaying a deterministic mix of encode and decode requests
// drawn from a shared pool of distinct workloads (shared on purpose: the
// pool is what makes the artifact cache earn hits).
//
// Every request's reply bytes are precomputed SERIALLY with the exact code
// path the server runs, so verification is byte-identity, not plausibility:
// a success reply that differs by one byte is a `byte_mismatches` failure.
//
// Fault injection: on average one in `fault_period` transmits of each
// client is pushed through a decomp::ChannelModel (frame bytes mapped to 8
// binary trits each), so the server-side FrameReader sees flipped,
// burst-corrupted and truncated frames. Selection is a seeded Bernoulli
// draw per transmit -- a strict every-Nth counter would phase-lock with
// the retry loop and starve a single victim request.
//
// Recovery is serve::RetryingClient (client.h): jittered exponential
// backoff, an optional per-client retry budget, optional hedged requests,
// and reconnect-on-fault through the connect factory -- so a chaos
// schedule full of resets and stalls still converges. A core::Watchdog
// deadline bounds the whole client; a protocol bug shows up as
// `unresolved` counts, never a hang.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/clock.h"
#include "decomp/channel.h"
#include "serve/frame.h"
#include "serve/transport.h"

namespace nc::serve {

class Server;

struct LoadgenConfig {
  std::size_t clients = 8;
  std::size_t requests_per_client = 50;
  std::size_t pipeline = 4;  // per-client in-flight requests
  /// Workload pool: `distinct` test sets of `patterns` x `width` trits at
  /// `x_density` don't-care fraction; each yields one encode and one decode
  /// request.
  std::size_t distinct = 6;
  std::size_t patterns = 16;
  std::size_t width = 64;
  double x_density = 0.6;
  CodecSpec spec;
  /// On average one in `fault_period` transmits goes through the channel
  /// (seeded Bernoulli per transmit; 0 = never).
  std::size_t fault_period = 0;
  decomp::ChannelConfig channel;
  std::size_t max_retransmits = 8;
  /// Initial retransmit backoff; doubles (jittered) up to 8x per request.
  std::chrono::milliseconds retransmit_timeout{250};
  /// Hard wall-clock bound per client; expiry abandons outstanding
  /// requests as `unresolved` instead of hanging.
  std::chrono::milliseconds deadline{30000};
  /// Relative per-request deadline stamped into frames (v2); 0 = none.
  std::uint32_t request_deadline_ms = 0;
  /// Hedge a request (one duplicate transmit) after this long without a
  /// reply; 0 = no hedging.
  std::chrono::milliseconds hedge_after{0};
  /// Per-client cap on total retransmits across all requests; 0 =
  /// unlimited.
  std::size_t retry_budget = 0;
  /// Time source for the retry machinery; null = real steady clock.
  core::Clock* clock = nullptr;
  std::uint64_t seed = 1;
  /// Response-side signature workloads: when nonzero, the expected
  /// X-compacted response stream of a small scan circuit is published
  /// serially up front, then `signature_checks` check requests (device
  /// signatures of a fault-free machine and of sampled stuck-at faults)
  /// join the workload pool. Expected check replies are precomputed with
  /// the shared compact::check_signatures, so verification stays
  /// byte-identity -- the server must return exactly the verdict a local
  /// analyzer computes.
  std::size_t signature_checks = 0;
  /// Environment X-overlay density on the signature circuit's responses.
  double signature_x_density = 0.02;
};

struct LoadgenStats {
  std::uint64_t requests = 0;         // logical requests resolved ok
  std::uint64_t byte_mismatches = 0;  // success reply != serial reference
  std::uint64_t typed_rejections = 0;  // kOverloaded / kInflightLimit seen
  std::uint64_t decode_failures = 0;   // kDecodeFailed replies
  std::uint64_t frame_errors = 0;     // frame-layer kError (seq 0) received
  std::uint64_t corrupted_sends = 0;  // transmits the channel altered
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates = 0;   // reply for a seq never retransmitted
  std::uint64_t unresolved = 0;   // abandoned at deadline/retry exhaustion
  std::uint64_t hedges = 0;       // duplicate transmits fired
  std::uint64_t hedge_wins = 0;   // requests resolved after their hedge
  std::uint64_t reconnects = 0;   // transport faults survived via factory
  std::uint64_t deadline_rejections = 0;  // kDeadlineExceeded replies seen
  std::uint64_t signature_unknowns = 0;  // kUnknownSignature replies seen
  double seconds = 0.0;
  double throughput_rps() const noexcept {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(requests) / seconds;
  }
  /// The soak acceptance gate: every request resolved, byte-identical. A
  /// kUnknownSignature reply means a check raced or outlived its publish
  /// -- a protocol ordering bug, so it fails the gate too.
  bool clean() const noexcept {
    return byte_mismatches == 0 && duplicates == 0 && unresolved == 0 &&
           signature_unknowns == 0;
  }
  void merge(const LoadgenStats& other) noexcept;
};

/// Runs the configured load against streams produced by `connect` (one call
/// per client). Blocks until all clients finish.
LoadgenStats run_loadgen(
    const LoadgenConfig& config,
    const std::function<std::unique_ptr<ByteStream>()>& connect);

/// Convenience: in-process run against `server` over pipes.
LoadgenStats run_loadgen_inprocess(const LoadgenConfig& config,
                                   Server& server);

/// Deterministic workload pool builder (exposed for tests/bench): returns
/// request payload + expected reply (type, payload) pairs, computed with
/// the same code path the server executes.
struct Workload {
  FrameType request_type = FrameType::kEncodeRequest;
  std::vector<std::uint8_t> request_payload;
  FrameType expected_type = FrameType::kEncodeReply;
  std::vector<std::uint8_t> expected_payload;
};
std::vector<Workload> build_workloads(const LoadgenConfig& config);

/// Signature workload builder (exposed for tests/bench): one publish of
/// the expected compacted stream of a deterministic generated scan
/// circuit, plus `config.signature_checks` check workloads whose expected
/// replies are serialized compact::check_signatures verdicts.
struct SignatureWorkloads {
  Workload publish;
  std::vector<Workload> checks;
};
SignatureWorkloads build_signature_workloads(const LoadgenConfig& config);

}  // namespace nc::serve
