// Deterministic chaos transport: a ByteStream wrapper that injects timing
// and fault behavior according to an ordered rule schedule.
//
// The serve tier's robustness claims -- deadlines shed, slow clients cut,
// retries converge -- are claims about behavior under bad networks, and bad
// networks do not show up in CI on demand. ChaosStream manufactures them on
// a schedule, the same way store::FaultInjectingIo manufactures disk
// faults: each rule names an operation (read/write/any), a skip count
// ("let N matching ops through first"), an affected count, and an action:
//
//   kLatency  -- delay the op, then perform it normally;
//   kStall    -- consume the caller's timeout and deliver nothing (a
//                mid-frame stall when a frame is partially delivered);
//   kDribble  -- deliver/accept at most one byte (byte-dribble);
//   kPartial  -- cap the op at `limit` bytes (short read/write);
//   kReset    -- close the stream and throw (connection reset by peer).
//
// An asymmetric partition is a composition: a kStall rule with
// count = kForever on exactly one direction. Every rule advances its own
// skip/count independently; the first *active* matching rule claims the
// operation. Latency durations are jittered within [d/2, d] by a seeded
// splitmix64 sequence, so runs are reproducible from (rules, seed) alone.
// Sleeps go through an injectable core::Clock: under a VirtualClock a
// "2-second stall" costs microseconds of wall time.
//
// A compact spec grammar drives the CLI (`ninec loadgen --chaos ...`) and
// keeps test schedules one-line:
//
//   spec   := rule (',' rule)*
//   rule   := op ':' action ['=' param] ['@' skip ['x' count]]
//   op     := 'read' | 'write' | 'any'
//   action := 'latency' | 'stall' | 'dribble' | 'partial' | 'reset'
//
// param is milliseconds for latency/stall, bytes for partial; count '*'
// means forever. Example: "write:dribble@4x64,read:stall=40@9,any:reset@199"
// dribbles writes 5..68, stalls the 10th read 40 ms, resets the 200th op.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.h"
#include "serve/transport.h"

namespace nc::serve {

struct ChaosRule {
  enum class Op : std::uint8_t { kRead, kWrite, kAny };
  enum class Action : std::uint8_t {
    kLatency,
    kStall,
    kDribble,
    kPartial,
    kReset,
  };

  static constexpr std::size_t kForever = static_cast<std::size_t>(-1);

  Op op = Op::kAny;
  Action action = Action::kLatency;
  std::size_t skip = 0;   // matching ops to let through before activating
  std::size_t count = 1;  // ops to affect once active (kForever = always)
  std::chrono::milliseconds latency{10};  // kLatency/kStall duration
  std::size_t limit = 1;                  // kPartial byte cap
};

/// Parses the spec grammar above. Throws std::invalid_argument with a
/// position-bearing message on any malformed rule.
std::vector<ChaosRule> parse_chaos_spec(const std::string& spec);

class ChaosStream final : public ByteStream {
 public:
  /// Wraps `inner`; `seed` drives latency jitter, `clock` the sleeps
  /// (null = real). The schedule is fixed for the stream's lifetime.
  ChaosStream(std::unique_ptr<ByteStream> inner, std::vector<ChaosRule> rules,
              std::uint64_t seed, core::Clock* clock = nullptr);

  std::optional<std::size_t> read_some(
      std::uint8_t* buf, std::size_t max,
      std::chrono::milliseconds timeout) override;
  void write_all(const std::uint8_t* data, std::size_t len) override;
  std::optional<std::size_t> write_some(
      const std::uint8_t* data, std::size_t len,
      std::chrono::milliseconds timeout) override;
  void close() override;

  /// How often each action fired (test/bench assertions that the schedule
  /// actually exercised what it promised).
  struct Counters {
    std::uint64_t latencies = 0;
    std::uint64_t stalls = 0;
    std::uint64_t dribbles = 0;
    std::uint64_t partials = 0;
    std::uint64_t resets = 0;
    std::uint64_t total() const noexcept {
      return latencies + stalls + dribbles + partials + resets;
    }
  };
  Counters counters() const;

 private:
  struct RuleState {
    ChaosRule rule;
    std::size_t skipped = 0;
    std::size_t applied = 0;
  };

  /// Claims the first active rule matching `op` (advancing every matching
  /// rule's skip phase) or nullptr when the op passes through clean.
  const ChaosRule* claim(ChaosRule::Op op);
  std::chrono::milliseconds jittered(std::chrono::milliseconds d);

  std::unique_ptr<ByteStream> inner_;
  core::Clock& clock_;
  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  std::uint64_t rng_;
  Counters counters_;
};

/// Convenience for tests: wrap both directions of a fresh pipe pair.
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
make_chaos_pipe(std::vector<ChaosRule> client_rules,
                std::vector<ChaosRule> server_rules, std::uint64_t seed,
                core::Clock* clock = nullptr, std::size_t capacity = 1 << 20);

}  // namespace nc::serve
