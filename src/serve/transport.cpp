#include "serve/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace nc::serve {

namespace {

// -------------------------------------------------------- in-process pipe

/// One direction of the pipe: a bounded byte queue. Closing either end of
/// the connection closes both directions, waking all waiters.
struct PipeChannel {
  explicit PipeChannel(std::size_t capacity) : capacity(capacity) {}

  std::mutex mutex;
  std::condition_variable readable;
  std::condition_variable writable;
  std::deque<std::uint8_t> bytes;
  const std::size_t capacity;
  bool closed = false;
};

struct PipeShared {
  explicit PipeShared(std::size_t capacity)
      : a_to_b(capacity), b_to_a(capacity) {}
  PipeChannel a_to_b;
  PipeChannel b_to_a;
};

class PipeEnd final : public ByteStream {
 public:
  PipeEnd(std::shared_ptr<PipeShared> shared, PipeChannel* in,
          PipeChannel* out)
      : shared_(std::move(shared)), in_(in), out_(out) {}

  ~PipeEnd() override { close(); }

  std::optional<std::size_t> read_some(
      std::uint8_t* buf, std::size_t max,
      std::chrono::milliseconds timeout) override {
    if (max == 0) return std::size_t{0};
    std::unique_lock<std::mutex> lock(in_->mutex);
    if (!in_->readable.wait_for(lock, timeout, [this] {
          return !in_->bytes.empty() || in_->closed;
        }))
      return std::nullopt;  // timed out
    if (in_->bytes.empty()) return std::size_t{0};  // closed and drained
    std::size_t n = 0;
    while (n < max && !in_->bytes.empty()) {
      buf[n++] = in_->bytes.front();
      in_->bytes.pop_front();
    }
    in_->writable.notify_all();
    return n;
  }

  void write_all(const std::uint8_t* data, std::size_t len) override {
    std::size_t written = 0;
    while (written < len) {
      std::unique_lock<std::mutex> lock(out_->mutex);
      out_->writable.wait(lock, [this] {
        return out_->bytes.size() < out_->capacity || out_->closed;
      });
      if (out_->closed) throw std::runtime_error("pipe closed by peer");
      while (written < len && out_->bytes.size() < out_->capacity)
        out_->bytes.push_back(data[written++]);
      out_->readable.notify_all();
    }
  }

  std::optional<std::size_t> write_some(
      const std::uint8_t* data, std::size_t len,
      std::chrono::milliseconds timeout) override {
    if (len == 0) return std::size_t{0};
    std::unique_lock<std::mutex> lock(out_->mutex);
    if (!out_->writable.wait_for(lock, timeout, [this] {
          return out_->bytes.size() < out_->capacity || out_->closed;
        }))
      return std::nullopt;  // peer is not draining
    if (out_->closed) throw std::runtime_error("pipe closed by peer");
    std::size_t written = 0;
    while (written < len && out_->bytes.size() < out_->capacity)
      out_->bytes.push_back(data[written++]);
    out_->readable.notify_all();
    return written;
  }

  void close() override {
    for (PipeChannel* ch : {in_, out_}) {
      std::lock_guard<std::mutex> lock(ch->mutex);
      ch->closed = true;
      ch->readable.notify_all();
      ch->writable.notify_all();
    }
  }

 private:
  std::shared_ptr<PipeShared> shared_;
  PipeChannel* in_;
  PipeChannel* out_;
};

// ---------------------------------------------------- unix-domain sockets

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

class UnixStream final : public ByteStream {
 public:
  explicit UnixStream(int fd) : fd_(fd) {}
  ~UnixStream() override { close(); }

  std::optional<std::size_t> read_some(
      std::uint8_t* buf, std::size_t max,
      std::chrono::milliseconds timeout) override {
    pollfd pfd{fd_, POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) throw_errno("poll");
    if (rc == 0) return std::nullopt;
    ssize_t n;
    do {
      n = ::recv(fd_, buf, max, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("recv");
    return static_cast<std::size_t>(n);
  }

  void write_all(const std::uint8_t* data, std::size_t len) override {
    std::size_t written = 0;
    while (written < len) {
      // MSG_NOSIGNAL: a peer that vanished surfaces as EPIPE, not SIGPIPE.
      const ssize_t n =
          ::send(fd_, data + written, len - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("send");
      }
      written += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::size_t> write_some(
      const std::uint8_t* data, std::size_t len,
      std::chrono::milliseconds timeout) override {
    if (len == 0) return std::size_t{0};
    pollfd pfd{fd_, POLLOUT, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) throw_errno("poll");
    if (rc == 0) return std::nullopt;
    // MSG_DONTWAIT: the socket could have filled again between poll and
    // send; a bounded write must never fall back to blocking.
    ssize_t n;
    do {
      n = ::send(fd_, data, len, MSG_NOSIGNAL | MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      throw_errno("send");
    }
    return static_cast<std::size_t>(n);
  }

  void close() override {
    std::lock_guard<std::mutex> lock(close_mutex_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  std::mutex close_mutex_;
};

}  // namespace

std::size_t write_all_within(ByteStream& stream, const std::uint8_t* data,
                             std::size_t len, const core::Deadline& deadline,
                             std::chrono::milliseconds slice) {
  std::size_t written = 0;
  while (written < len) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline.remaining());
    if (left <= std::chrono::milliseconds{0}) break;
    const auto wait = deadline.limited() ? std::min(left, slice) : slice;
    const auto n = stream.write_some(data + written, len - written,
                                     std::max(wait, std::chrono::milliseconds{1}));
    if (n.has_value()) written += *n;
  }
  return written;
}

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
make_pipe(std::size_t capacity) {
  auto shared = std::make_shared<PipeShared>(capacity == 0 ? 1 : capacity);
  auto a = std::make_unique<PipeEnd>(shared, &shared->b_to_a, &shared->a_to_b);
  auto b = std::make_unique<PipeEnd>(shared, &shared->a_to_b, &shared->b_to_a);
  return {std::move(a), std::move(b)};
}

std::unique_ptr<ByteStream> connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + path);
  }
  return std::make_unique<UnixStream>(fd);
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  ::unlink(path.c_str());  // a stale socket file from a dead server
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + path);
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen " + path);
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<ByteStream> UnixListener::accept(
    std::chrono::milliseconds timeout) {
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll");
  if (rc == 0) return nullptr;
  int client;
  do {
    client = ::accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) throw_errno("accept");
  return std::make_unique<UnixStream>(client);
}

}  // namespace nc::serve
