// Resilient request client for the compression service.
//
// The loadgen's original recovery story was a fixed-interval retransmit
// loop; this is its extraction into a reusable component with the three
// behaviors a client facing a faulty network actually needs:
//
//  * jittered exponential backoff -- each retransmit waits [b/2, b] with b
//    doubling up to a cap, seeded so runs are reproducible and clients that
//    timed out together do not retransmit in lockstep;
//  * a per-client retry budget -- a global cap on retransmits across all
//    requests, so a dead server fails a burst of requests fast instead of
//    every request independently grinding through max_attempts;
//  * hedged requests -- after `hedge_after` with no reply, send ONE
//    duplicate and take whichever reply lands first. Safe here by
//    construction: the server is idempotent (content-addressed replies are
//    byte-identical) and the protocol tolerates duplicate replies by seq.
//
// The client owns a connect factory, not a stream: a transport fault
// (reset, short bounded write) triggers a reconnect and re-arms every
// outstanding request for prompt retransmission, which is what lets a
// chaos schedule full of resets still converge to zero unresolved
// requests. Requests are stamped with a relative deadline (frame v2) when
// the policy sets one; a kDeadlineExceeded reply is retryable -- the
// retransmit carries a fresh budget and likely hits the server's cache.
//
// Threading: one owner thread per instance. submit() enqueues and
// transmits; poll() pumps I/O, fires due retransmits and hedges, and
// returns resolved requests. All waits are bounded; time is read through
// an injectable core::Clock so tests drive expiry explicitly.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/clock.h"
#include "serve/frame.h"
#include "serve/transport.h"

namespace nc::serve {

struct RetryPolicy {
  /// Transmits per request including the first; exhausting it resolves the
  /// request as kExhausted.
  std::size_t max_attempts = 8;
  /// First retransmit waits ~initial_backoff, doubling per attempt up to
  /// backoff_cap; each wait is jittered to [b/2, b].
  std::chrono::milliseconds initial_backoff{250};
  std::chrono::milliseconds backoff_cap{2000};
  /// Total retransmits the client may spend across all requests; 0 =
  /// unlimited. Once spent, requests fail at their next due retry.
  std::size_t retry_budget = 0;
  /// Send one duplicate transmit after this long without a reply; 0 = no
  /// hedging. Only safe against idempotent servers (this one is).
  std::chrono::milliseconds hedge_after{0};
  /// Relative deadline stamped into every request frame (v2); 0 = none.
  std::uint32_t request_deadline_ms = 0;
  std::uint64_t seed = 1;
  /// Per-transmit write budget; a short write is a transport fault and
  /// triggers a reconnect.
  std::chrono::milliseconds write_deadline{2000};
  core::Clock* clock = nullptr;  // null = real steady clock
};

class RetryingClient {
 public:
  using Connect = std::function<std::unique_ptr<ByteStream>()>;
  /// Applied to every encoded frame just before the wire -- the loadgen's
  /// channel-corruption hook. May return the bytes mangled.
  using TransmitHook =
      std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)>;

  /// Connects eagerly via `connect`; throws what the factory throws.
  RetryingClient(Connect connect, RetryPolicy policy = {});

  void set_transmit_hook(TransmitHook hook) { hook_ = std::move(hook); }

  struct Outcome {
    enum class Status : std::uint8_t {
      kReply,       // `reply` holds the success frame
      kTypedError,  // terminal typed error (`error`/`detail`)
      kExhausted,   // attempts or the client-wide retry budget ran out
    };
    Status status = Status::kExhausted;
    Frame reply;
    ErrorCode error = ErrorCode::kBadPayload;
    std::string detail;
    std::size_t transmits = 0;
    bool hedged = false;
    bool hedge_won = false;  // resolved by the hedge, not a timer retry
  };

  /// Enqueues and transmits a request; returns its seq.
  std::uint64_t submit(FrameType type, std::vector<std::uint8_t> payload);

  /// Pumps I/O for up to `wait`: fires due retransmits and hedges, reads
  /// replies, reconnects on transport faults. Returns every request that
  /// resolved during the call.
  std::vector<std::pair<std::uint64_t, Outcome>> poll(
      std::chrono::milliseconds wait);

  /// Convenience: submit one request and poll until it resolves or
  /// `overall` elapses (nullopt = still unresolved, left outstanding).
  std::optional<Outcome> call(FrameType type, std::vector<std::uint8_t> payload,
                              std::chrono::milliseconds overall);

  std::size_t inflight() const noexcept { return pending_.size(); }

  struct Stats {
    std::uint64_t transmits = 0;
    std::uint64_t retransmits = 0;  // timer- and rejection-driven resends
    std::uint64_t timeouts = 0;     // retransmits fired by the timer alone
    std::uint64_t typed_rejections = 0;  // retryable typed errors received
    std::uint64_t deadline_rejections = 0;  // of those, kDeadlineExceeded
    std::uint64_t frame_errors = 0;      // seq-0 frame-layer error frames
    std::uint64_t duplicates = 0;  // unexplained duplicate replies
    std::uint64_t hedges = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t budget_denied = 0;  // retries refused: budget spent
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Closes the current stream; outstanding requests stay pending and
  /// would reconnect on the next poll (used by shutdown paths).
  void close();

 private:
  struct Pending {
    FrameType type = FrameType::kEncodeRequest;
    std::vector<std::uint8_t> payload;
    std::size_t transmits = 0;
    bool hedged = false;
    core::Clock::time_point first_sent{};
    core::Clock::time_point hedge_sent{};
    core::Clock::time_point next_retry{};
    std::chrono::milliseconds backoff{0};
  };

  void reconnect();
  /// Encodes, runs the hook, writes bounded; returns false on a transport
  /// fault (after arranging the reconnect).
  bool transmit(std::uint64_t seq, Pending& p, bool is_hedge);
  void arm(Pending& p);  // schedules next_retry with jittered backoff
  std::uint64_t jitter(std::uint64_t span);
  void resolve(std::uint64_t seq, Outcome outcome,
               std::vector<std::pair<std::uint64_t, Outcome>>& out);

  Connect connect_;
  RetryPolicy policy_;
  core::Clock& clock_;
  std::unique_ptr<ByteStream> stream_;
  std::unique_ptr<FrameReader> reader_;
  TransmitHook hook_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t rng_;
  std::size_t budget_spent_ = 0;
  std::map<std::uint64_t, Pending> pending_;
  /// Recently resolved seq -> transmit count, to tell a benign duplicate
  /// (we really did send it twice) from a server-side duplication bug.
  std::map<std::uint64_t, std::size_t> done_transmits_;
  Stats stats_;
};

}  // namespace nc::serve
