#include "serve/chaos.h"

#include <algorithm>
#include <stdexcept>

namespace nc::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool matches(ChaosRule::Op rule, ChaosRule::Op op) noexcept {
  return rule == ChaosRule::Op::kAny || rule == op;
}

}  // namespace

// ------------------------------------------------------------ spec parsing

namespace {

[[noreturn]] void bad_spec(const std::string& rule, const char* why) {
  throw std::invalid_argument("bad chaos rule '" + rule + "': " + why);
}

ChaosRule parse_rule(const std::string& text) {
  ChaosRule rule;
  const auto colon = text.find(':');
  if (colon == std::string::npos) bad_spec(text, "missing ':' after op");
  const std::string op = text.substr(0, colon);
  if (op == "read") rule.op = ChaosRule::Op::kRead;
  else if (op == "write") rule.op = ChaosRule::Op::kWrite;
  else if (op == "any") rule.op = ChaosRule::Op::kAny;
  else bad_spec(text, "op must be read|write|any");

  std::string body = text.substr(colon + 1);
  // Split off the optional '@skip[xcount]' suffix first.
  std::string sched;
  if (const auto at = body.find('@'); at != std::string::npos) {
    sched = body.substr(at + 1);
    body = body.substr(0, at);
    if (sched.empty()) bad_spec(text, "'@' must be followed by a skip count");
  }
  std::string param;
  if (const auto eq = body.find('='); eq != std::string::npos) {
    param = body.substr(eq + 1);
    body = body.substr(0, eq);
  }
  if (body == "latency") rule.action = ChaosRule::Action::kLatency;
  else if (body == "stall") rule.action = ChaosRule::Action::kStall;
  else if (body == "dribble") rule.action = ChaosRule::Action::kDribble;
  else if (body == "partial") rule.action = ChaosRule::Action::kPartial;
  else if (body == "reset") rule.action = ChaosRule::Action::kReset;
  else bad_spec(text, "action must be latency|stall|dribble|partial|reset");

  try {
    if (!param.empty()) {
      const unsigned long long v = std::stoull(param);
      if (rule.action == ChaosRule::Action::kPartial)
        rule.limit = static_cast<std::size_t>(std::max(1ull, v));
      else
        rule.latency = std::chrono::milliseconds(v);
    }
    if (!sched.empty()) {
      const auto x = sched.find('x');
      rule.skip = static_cast<std::size_t>(
          std::stoull(x == std::string::npos ? sched : sched.substr(0, x)));
      if (x != std::string::npos) {
        const std::string cnt = sched.substr(x + 1);
        rule.count = cnt == "*" ? ChaosRule::kForever
                                : static_cast<std::size_t>(std::stoull(cnt));
        if (rule.count == 0) bad_spec(text, "count must be >= 1 or '*'");
      }
    }
  } catch (const std::invalid_argument&) {
    bad_spec(text, "malformed number");
  } catch (const std::out_of_range&) {
    bad_spec(text, "number out of range");
  }
  return rule;
}

}  // namespace

std::vector<ChaosRule> parse_chaos_spec(const std::string& spec) {
  std::vector<ChaosRule> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    auto end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string piece = spec.substr(start, end - start);
    if (!piece.empty()) rules.push_back(parse_rule(piece));
    start = end + 1;
  }
  if (rules.empty())
    throw std::invalid_argument("chaos spec names no rules: '" + spec + "'");
  return rules;
}

// ------------------------------------------------------------- ChaosStream

ChaosStream::ChaosStream(std::unique_ptr<ByteStream> inner,
                         std::vector<ChaosRule> rules, std::uint64_t seed,
                         core::Clock* clock)
    : inner_(std::move(inner)),
      clock_(core::Clock::or_steady(clock)),
      rng_(seed) {
  rules_.reserve(rules.size());
  for (ChaosRule& r : rules) rules_.push_back(RuleState{r, 0, 0});
}

const ChaosRule* ChaosStream::claim(ChaosRule::Op op) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ChaosRule* winner = nullptr;
  for (RuleState& rs : rules_) {
    if (!matches(rs.rule.op, op)) continue;
    if (rs.skipped < rs.rule.skip) {
      // Still in the skip phase: this op counts toward it regardless of
      // whether another rule claims the op.
      ++rs.skipped;
      continue;
    }
    if (rs.rule.count != ChaosRule::kForever && rs.applied >= rs.rule.count)
      continue;  // exhausted
    if (winner == nullptr) {
      ++rs.applied;
      winner = &rs.rule;
      switch (rs.rule.action) {
        case ChaosRule::Action::kLatency: ++counters_.latencies; break;
        case ChaosRule::Action::kStall: ++counters_.stalls; break;
        case ChaosRule::Action::kDribble: ++counters_.dribbles; break;
        case ChaosRule::Action::kPartial: ++counters_.partials; break;
        case ChaosRule::Action::kReset: ++counters_.resets; break;
      }
    }
  }
  return winner;
}

std::chrono::milliseconds ChaosStream::jittered(std::chrono::milliseconds d) {
  if (d.count() <= 1) return d;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto half = d.count() / 2;
  const auto span = static_cast<std::uint64_t>(d.count() - half + 1);
  return std::chrono::milliseconds(
      half + static_cast<std::int64_t>(splitmix64(rng_) % span));
}

std::optional<std::size_t> ChaosStream::read_some(
    std::uint8_t* buf, std::size_t max, std::chrono::milliseconds timeout) {
  const ChaosRule* rule = claim(ChaosRule::Op::kRead);
  if (rule == nullptr) return inner_->read_some(buf, max, timeout);
  switch (rule->action) {
    case ChaosRule::Action::kLatency:
      clock_.sleep_for(jittered(rule->latency));
      return inner_->read_some(buf, max, std::chrono::milliseconds{1});
    case ChaosRule::Action::kStall:
      // Deliver nothing: the caller experiences a timeout, exactly as if
      // the peer went quiet mid-frame.
      clock_.sleep_for(std::min(timeout, jittered(rule->latency)));
      return std::nullopt;
    case ChaosRule::Action::kDribble:
      return inner_->read_some(buf, 1, timeout);
    case ChaosRule::Action::kPartial:
      return inner_->read_some(buf, std::min(max, rule->limit), timeout);
    case ChaosRule::Action::kReset:
      inner_->close();
      throw std::runtime_error("chaos: connection reset");
  }
  return inner_->read_some(buf, max, timeout);
}

std::optional<std::size_t> ChaosStream::write_some(
    const std::uint8_t* data, std::size_t len,
    std::chrono::milliseconds timeout) {
  const ChaosRule* rule = claim(ChaosRule::Op::kWrite);
  if (rule == nullptr) return inner_->write_some(data, len, timeout);
  switch (rule->action) {
    case ChaosRule::Action::kLatency:
      clock_.sleep_for(jittered(rule->latency));
      return inner_->write_some(data, len, std::chrono::milliseconds{1});
    case ChaosRule::Action::kStall:
      clock_.sleep_for(std::min(timeout, jittered(rule->latency)));
      return std::nullopt;
    case ChaosRule::Action::kDribble:
      return inner_->write_some(data, 1, timeout);
    case ChaosRule::Action::kPartial:
      return inner_->write_some(data, std::min(len, rule->limit), timeout);
    case ChaosRule::Action::kReset:
      inner_->close();
      throw std::runtime_error("chaos: connection reset");
  }
  return inner_->write_some(data, len, timeout);
}

void ChaosStream::write_all(const std::uint8_t* data, std::size_t len) {
  // Built on write_some so every rule applies per slice. A stall costs its
  // latency and zero progress but still terminates (its count is spent),
  // so write_all stays total unless a rule stalls writes forever -- pair
  // such partition rules with deadline-bounded writers.
  std::size_t written = 0;
  while (written < len) {
    const auto n = write_some(data + written, len - written,
                              std::chrono::milliseconds{50});
    if (n.has_value()) written += *n;
  }
}

void ChaosStream::close() { inner_->close(); }

ChaosStream::Counters ChaosStream::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
make_chaos_pipe(std::vector<ChaosRule> client_rules,
                std::vector<ChaosRule> server_rules, std::uint64_t seed,
                core::Clock* clock, std::size_t capacity) {
  auto [client_end, server_end] = make_pipe(capacity);
  std::unique_ptr<ByteStream> client =
      client_rules.empty()
          ? std::move(client_end)
          : std::make_unique<ChaosStream>(std::move(client_end),
                                          std::move(client_rules), seed,
                                          clock);
  std::unique_ptr<ByteStream> server =
      server_rules.empty()
          ? std::move(server_end)
          : std::make_unique<ChaosStream>(std::move(server_end),
                                          std::move(server_rules), seed ^ 1,
                                          clock);
  return {std::move(client), std::move(server)};
}

}  // namespace nc::serve
