// Service metrics: lock-free counters and fixed-bucket latency histograms.
//
// Request handlers record on the hot path, so everything here is an atomic
// with relaxed ordering -- a snapshot is a consistent-enough view for
// reporting, never a synchronization point. Latencies land in power-of-two
// microsecond buckets; quantiles are read back as the upper bound of the
// bucket containing the target rank, which is exact to within one bucket
// (a factor of two) and needs no sample storage.
//
// A snapshot renders to report::Json for the Stats reply and the
// BENCH_serve_load.json artifact.
#pragma once

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "report/json.h"

namespace nc::store {
struct StoreStats;
struct ShardedStats;
}

namespace nc::serve {

/// Power-of-two-bucket histogram of microsecond latencies. Bucket i counts
/// samples in [2^(i-1), 2^i) µs (bucket 0: [0, 1)); the last bucket is
/// open-ended.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::uint64_t micros) noexcept {
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && (1ull << bucket) <= micros) ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum_micros = 0;

    /// Upper bound (µs) of the bucket holding the q-quantile sample,
    /// q in [0, 1]. 0 when empty.
    std::uint64_t quantile_micros(double q) const noexcept;
    double mean_micros() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_micros) /
                              static_cast<double>(count);
    }
  };

  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// All counters the server exposes. Incremented relaxed from any thread.
class Metrics {
 public:
  std::atomic<std::uint64_t> requests_accepted{0};
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> requests_rejected_queue{0};     // kOverloaded
  std::atomic<std::uint64_t> requests_rejected_inflight{0};  // kInflightLimit
  std::atomic<std::uint64_t> protocol_errors{0};  // frame-layer errors replied
  std::atomic<std::uint64_t> decode_failures{0};  // kDecodeFailed replies
  std::atomic<std::uint64_t> bad_payloads{0};     // kBadPayload replies
  std::atomic<std::uint64_t> batches{0};          // scheduler batches run
  std::atomic<std::uint64_t> batched_requests{0};  // requests inside batches
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  // Tiered artifact lookups. Monotonic, so a Stats reply distinguishes an
  // answer served from memory (l1), from the persistent store after a
  // restart (l2), and a full recompute (miss) -- the in-memory CacheStats
  // alone cannot tell the last two apart across restarts.
  std::atomic<std::uint64_t> l1_hits{0};
  std::atomic<std::uint64_t> l2_hits{0};
  std::atomic<std::uint64_t> misses{0};  // computed from scratch
  std::atomic<std::uint64_t> revalidation_failures{0};  // corrupt L2 records
  // Write-through durability. A transient store I/O error is retried with
  // a capped backoff (store_put_retries counts the extra attempts); a put
  // that exhausts its attempts or hits ENOSPC gives up and the server runs
  // compute-only for a cooldown (store_put_failures).
  std::atomic<std::uint64_t> store_put_retries{0};
  std::atomic<std::uint64_t> store_put_failures{0};
  // Timing robustness. Requests can carry an end-to-end deadline; the
  // server sheds expired work at three points (before batching, while
  // decoding, before writing the reply) rather than burning compute on a
  // reply nobody waits for. Slow or idle peers are disconnected by the
  // per-connection progress watchdog instead of wedging a writer thread.
  std::atomic<std::uint64_t> deadline_shed_queue{0};   // shed before compute
  std::atomic<std::uint64_t> deadline_shed_decode{0};  // cancelled mid-decode
  std::atomic<std::uint64_t> deadline_shed_write{0};   // shed at reply-write
  std::atomic<std::uint64_t> slow_client_disconnects{0};  // below min bps
  std::atomic<std::uint64_t> idle_disconnects{0};         // idle timeout
  std::atomic<std::uint64_t> write_timeouts{0};  // reply writes cut short
  // Response-side signature checking (compact/). A publish stores the
  // expected compacted stream under its content address; a check compares
  // an uploaded device signature against it server-side.
  std::atomic<std::uint64_t> signature_publishes{0};
  std::atomic<std::uint64_t> signature_checks{0};
  std::atomic<std::uint64_t> signature_mismatches{0};    // verdicts failing
  std::atomic<std::uint64_t> signature_unknown_refs{0};  // kUnknownSignature
  // Code tuning (tune/). A tune request either hits an artifact tier (the
  // search is deterministic in the payload) or runs the evolutionary loop.
  std::atomic<std::uint64_t> tune_requests{0};  // accepted tune requests
  std::atomic<std::uint64_t> tune_searches{0};  // actually searched (misses)

  LatencyHistogram request_latency;  // accept -> reply written
  LatencyHistogram batch_latency;    // batch formation -> all replies built

  struct Snapshot {
    std::uint64_t requests_accepted = 0;
    std::uint64_t requests_completed = 0;
    std::uint64_t requests_rejected_queue = 0;
    std::uint64_t requests_rejected_inflight = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t bad_payloads = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    std::uint64_t connections = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t revalidation_failures = 0;
    std::uint64_t store_put_retries = 0;
    std::uint64_t store_put_failures = 0;
    std::uint64_t deadline_shed_queue = 0;
    std::uint64_t deadline_shed_decode = 0;
    std::uint64_t deadline_shed_write = 0;
    std::uint64_t slow_client_disconnects = 0;
    std::uint64_t idle_disconnects = 0;
    std::uint64_t write_timeouts = 0;
    std::uint64_t signature_publishes = 0;
    std::uint64_t signature_checks = 0;
    std::uint64_t signature_mismatches = 0;
    std::uint64_t signature_unknown_refs = 0;
    std::uint64_t tune_requests = 0;
    std::uint64_t tune_searches = 0;
    LatencyHistogram::Snapshot request_latency;
    LatencyHistogram::Snapshot batch_latency;

    double rejection_rate() const noexcept;
    double mean_batch_size() const noexcept {
      return batches == 0 ? 0.0
                          : static_cast<double>(batched_requests) /
                                static_cast<double>(batches);
    }
  };

  Snapshot snapshot() const noexcept;
};

/// Stats-reply / bench-artifact rendering. `cache` fields come from the
/// server's ArtifactCache, `store` from the persistent L2 artifact store;
/// pass nullptr for a tier that is not attached.
struct CacheStats;
report::Json metrics_json(const Metrics::Snapshot& m, const CacheStats* cache,
                          const nc::store::StoreStats* store = nullptr,
                          const nc::store::ShardedStats* sharded = nullptr);

}  // namespace nc::serve
