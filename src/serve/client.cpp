#include "serve/client.h"

#include <algorithm>

namespace nc::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool retryable(ErrorCode code) noexcept {
  // Rejections that a later attempt can outlive: transient overload, a cap
  // the pipeline will free, a shutdown the factory may reconnect past, and
  // an expired deadline (the retransmit carries a fresh budget and likely
  // hits the server's cache).
  return code == ErrorCode::kOverloaded || code == ErrorCode::kInflightLimit ||
         code == ErrorCode::kShuttingDown ||
         code == ErrorCode::kDeadlineExceeded;
}

}  // namespace

RetryingClient::RetryingClient(Connect connect, RetryPolicy policy)
    : connect_(std::move(connect)),
      policy_(policy),
      clock_(core::Clock::or_steady(policy.clock)),
      rng_(policy.seed) {
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  if (policy_.initial_backoff.count() <= 0)
    policy_.initial_backoff = std::chrono::milliseconds{1};
  policy_.backoff_cap = std::max(policy_.backoff_cap, policy_.initial_backoff);
  stream_ = connect_();
  reader_ = std::make_unique<FrameReader>(*stream_, FrameLimits{});
}

std::uint64_t RetryingClient::jitter(std::uint64_t span) {
  return span <= 1 ? 0 : splitmix64(rng_) % span;
}

void RetryingClient::arm(Pending& p) {
  p.backoff = p.backoff.count() == 0
                  ? policy_.initial_backoff
                  : std::min(p.backoff * 2, policy_.backoff_cap);
  const auto half = p.backoff.count() / 2;
  const auto span = static_cast<std::uint64_t>(p.backoff.count() - half + 1);
  p.next_retry = clock_.now() + std::chrono::milliseconds(
                                    half + static_cast<std::int64_t>(
                                               jitter(span)));
}

void RetryingClient::reconnect() {
  ++stats_.reconnects;
  try {
    stream_->close();
  } catch (const std::exception&) {
  }
  stream_ = connect_();
  reader_ = std::make_unique<FrameReader>(*stream_, FrameLimits{});
  // Everything outstanding was possibly lost with the old connection:
  // re-arm for prompt retransmission (the timer, budget and attempt
  // accounting still apply).
  const auto now = clock_.now();
  for (auto& [seq, p] : pending_) p.next_retry = now;
}

bool RetryingClient::transmit(std::uint64_t seq, Pending& p, bool is_hedge) {
  Frame frame;
  frame.type = p.type;
  frame.seq = seq;
  frame.deadline_ms = policy_.request_deadline_ms;
  frame.payload = p.payload;
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  if (hook_) bytes = hook_(std::move(bytes));
  ++stats_.transmits;
  ++p.transmits;
  if (is_hedge) {
    p.hedged = true;
    p.hedge_sent = clock_.now();
  }
  try {
    const core::Deadline budget =
        core::Deadline::after(policy_.write_deadline, policy_.clock);
    const std::size_t n =
        write_all_within(*stream_, bytes.data(), bytes.size(), budget);
    if (n != bytes.size()) {
      reconnect();
      return false;
    }
  } catch (const std::exception&) {
    reconnect();
    return false;
  }
  return true;
}

std::uint64_t RetryingClient::submit(FrameType type,
                                     std::vector<std::uint8_t> payload) {
  const std::uint64_t seq = next_seq_++;
  Pending p;
  p.type = type;
  p.payload = std::move(payload);
  p.first_sent = clock_.now();
  auto [it, inserted] = pending_.emplace(seq, std::move(p));
  (void)inserted;
  transmit(seq, it->second, false);
  arm(it->second);
  return seq;
}

void RetryingClient::resolve(
    std::uint64_t seq, Outcome outcome,
    std::vector<std::pair<std::uint64_t, Outcome>>& out) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  outcome.transmits = it->second.transmits;
  outcome.hedged = it->second.hedged;
  done_transmits_[seq] = it->second.transmits;
  if (done_transmits_.size() > 1024)
    done_transmits_.erase(done_transmits_.begin());
  pending_.erase(it);
  out.emplace_back(seq, std::move(outcome));
}

std::vector<std::pair<std::uint64_t, RetryingClient::Outcome>>
RetryingClient::poll(std::chrono::milliseconds wait) {
  std::vector<std::pair<std::uint64_t, Outcome>> out;
  const auto now = clock_.now();

  // 1. Fire due retransmits (and give up on exhausted requests).
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (now < p.next_retry) {
      ++it;
      continue;
    }
    if (p.transmits >= policy_.max_attempts) {
      const std::uint64_t seq = it->first;
      ++it;
      Outcome o;
      o.status = Outcome::Status::kExhausted;
      o.detail = "retransmit attempts exhausted";
      resolve(seq, std::move(o), out);
      continue;
    }
    if (policy_.retry_budget != 0 && budget_spent_ >= policy_.retry_budget) {
      ++stats_.budget_denied;
      const std::uint64_t seq = it->first;
      ++it;
      Outcome o;
      o.status = Outcome::Status::kExhausted;
      o.detail = "client retry budget spent";
      resolve(seq, std::move(o), out);
      continue;
    }
    ++stats_.timeouts;
    ++stats_.retransmits;
    ++budget_spent_;
    if (!transmit(it->first, p, false)) return out;  // reconnected; re-armed
    arm(p);
    ++it;
  }

  // 2. Fire due hedges: one duplicate per request, not counted against the
  // retry budget (it races the original, it does not replace it).
  if (policy_.hedge_after.count() > 0) {
    for (auto& [seq, p] : pending_) {
      if (p.hedged || now - p.first_sent < policy_.hedge_after) continue;
      ++stats_.hedges;
      if (!transmit(seq, p, true)) return out;
    }
  }

  // 3. Read replies.
  FrameReader::Result r;
  try {
    r = reader_->read(wait);
  } catch (const std::exception&) {
    reconnect();
    return out;
  }
  switch (r.status) {
    case FrameReader::Status::kTimeout:
      return out;
    case FrameReader::Status::kEof:
      reconnect();
      return out;
    case FrameReader::Status::kProtocolError:
      ++stats_.frame_errors;
      return out;
    case FrameReader::Status::kFrame:
      break;
  }
  Frame& frame = r.frame;
  if (frame.type == FrameType::kError && frame.seq == 0) {
    // Frame-layer report from the server: some transmit of ours was
    // mangled in flight; the retransmit timer recovers the victim.
    ++stats_.frame_errors;
    return out;
  }
  const auto it = pending_.find(frame.seq);
  if (it == pending_.end()) {
    // Reply for an already-resolved request: benign when we transmitted it
    // more than once (retry or hedge); otherwise the server duplicated.
    const auto done = done_transmits_.find(frame.seq);
    if (done != done_transmits_.end() && done->second < 2)
      ++stats_.duplicates;
    return out;
  }
  Pending& p = it->second;
  if (frame.type == FrameType::kError) {
    ParsedError err;
    try {
      err = parse_error_payload(frame.payload);
    } catch (const std::exception&) {
      ++stats_.frame_errors;
      return out;
    }
    if (retryable(err.code)) {
      ++stats_.typed_rejections;
      if (err.code == ErrorCode::kDeadlineExceeded)
        ++stats_.deadline_rejections;
      // Do not retransmit inline: the request waits out its (already
      // armed) jittered backoff, which is the whole point under overload.
      return out;
    }
    Outcome o;
    o.status = Outcome::Status::kTypedError;
    o.error = err.code;
    o.detail = std::move(err.detail);
    resolve(frame.seq, std::move(o), out);
    return out;
  }
  Outcome o;
  o.status = Outcome::Status::kReply;
  o.hedge_won = p.hedged && clock_.now() >= p.hedge_sent;
  if (o.hedge_won) ++stats_.hedge_wins;
  o.reply = std::move(frame);
  resolve(r.frame.seq, std::move(o), out);
  return out;
}

std::optional<RetryingClient::Outcome> RetryingClient::call(
    FrameType type, std::vector<std::uint8_t> payload,
    std::chrono::milliseconds overall) {
  const std::uint64_t seq = submit(type, std::move(payload));
  const core::Deadline deadline = core::Deadline::after(overall, policy_.clock);
  while (!deadline.expired()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline.remaining());
    auto resolved =
        poll(std::clamp(left, std::chrono::milliseconds{1},
                        std::chrono::milliseconds{50}));
    for (auto& [s, o] : resolved)
      if (s == seq) return std::move(o);
  }
  return std::nullopt;
}

void RetryingClient::close() {
  try {
    stream_->close();
  } catch (const std::exception&) {
  }
}

}  // namespace nc::serve
